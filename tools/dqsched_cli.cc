// dqsched_cli — run any experiment from the command line.
//
//   dqsched_cli --query=paper --slow=A:5 --strategy=all
//   dqsched_cli --query=random --sources=7 --seed=3 --strategy=dse --trace
//   dqsched_cli --query=paper --scale=0.2 --memory-mb=4 --strategy=dse
//
// Flags:
//   --query=paper|tiny|chain|random   workload (default paper)
//   --scale=F                         cardinality multiplier (paper query)
//   --sources=N                       relations (random query)
//   --seed=N                          data + delay seed
//   --w=US                            mean inter-tuple delay for all sources
//   --slow=REL:FACTOR                 slow-delivery on one relation
//   --initial=REL:MS                  initial delay on one relation
//   --bursty=REL:LEN:GAPMS            bursty arrival on one relation
//   --strategy=seq|dse|ma|scr|dphj|all
//   --memory-mb=F  --bmt=F  --batch=N  --queue=N  --timeout-ms=F
//   --repeats=N                       seeds averaged per measurement
//   --trace                           print the DSE decision log + timeline
//   --csv                             machine-readable table

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/table_printer.h"
#include "core/mediator.h"
#include "plan/canonical_plans.h"
#include "plan/query_generator.h"

namespace {

using namespace dqsched;

struct CliOptions {
  std::string query = "paper";
  double scale = 0.3;
  int sources = 6;
  uint64_t seed = 42;
  double w_us = -1.0;
  std::string strategy = "all";
  double memory_mb = 256.0;
  double bmt = 1.0;
  int64_t batch = 128;
  int64_t queue = 1024;
  double scr_timeout_ms = 100.0;
  int repeats = 1;
  bool trace = false;
  bool csv = false;
  // Per-relation delay overrides: (relation, kind, p1, p2).
  struct DelayOverride {
    std::string relation;
    wrapper::DelayKind kind;
    double p1 = 0;
    double p2 = 0;
  };
  std::vector<DelayOverride> overrides;
};

[[noreturn]] void Usage(const char* argv0, const char* complaint) {
  std::fprintf(stderr, "error: %s\n(see the header of %s for flags)\n",
               complaint, argv0);
  std::exit(2);
}

double ParseDouble(const char* s) { return std::atof(s); }

/// Splits "A:5" / "B:1000:50" on ':'.
std::vector<std::string> SplitColons(const std::string& s) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos <= s.size()) {
    const size_t next = s.find(':', pos);
    if (next == std::string::npos) {
      out.push_back(s.substr(pos));
      break;
    }
    out.push_back(s.substr(pos, next - pos));
    pos = next + 1;
  }
  return out;
}

CliOptions Parse(int argc, char** argv) {
  CliOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      return arg.c_str() + std::strlen(prefix);
    };
    if (arg.rfind("--query=", 0) == 0) {
      o.query = value("--query=");
    } else if (arg.rfind("--scale=", 0) == 0) {
      o.scale = ParseDouble(value("--scale="));
    } else if (arg.rfind("--sources=", 0) == 0) {
      o.sources = std::atoi(value("--sources="));
    } else if (arg.rfind("--seed=", 0) == 0) {
      o.seed = static_cast<uint64_t>(std::atoll(value("--seed=")));
    } else if (arg.rfind("--w=", 0) == 0) {
      o.w_us = ParseDouble(value("--w="));
    } else if (arg.rfind("--strategy=", 0) == 0) {
      o.strategy = value("--strategy=");
    } else if (arg.rfind("--memory-mb=", 0) == 0) {
      o.memory_mb = ParseDouble(value("--memory-mb="));
    } else if (arg.rfind("--bmt=", 0) == 0) {
      o.bmt = ParseDouble(value("--bmt="));
    } else if (arg.rfind("--batch=", 0) == 0) {
      o.batch = std::atoll(value("--batch="));
    } else if (arg.rfind("--queue=", 0) == 0) {
      o.queue = std::atoll(value("--queue="));
    } else if (arg.rfind("--timeout-ms=", 0) == 0) {
      o.scr_timeout_ms = ParseDouble(value("--timeout-ms="));
    } else if (arg.rfind("--repeats=", 0) == 0) {
      o.repeats = std::atoi(value("--repeats="));
    } else if (arg == "--trace") {
      o.trace = true;
    } else if (arg == "--csv") {
      o.csv = true;
    } else if (arg.rfind("--slow=", 0) == 0 ||
               arg.rfind("--initial=", 0) == 0 ||
               arg.rfind("--bursty=", 0) == 0) {
      const bool slow = arg.rfind("--slow=", 0) == 0;
      const bool initial = arg.rfind("--initial=", 0) == 0;
      const auto parts = SplitColons(
          arg.substr(arg.find('=') + 1));
      if (parts.size() < 2) Usage(argv[0], "bad delay override");
      CliOptions::DelayOverride ov;
      ov.relation = parts[0];
      if (slow) {
        ov.kind = wrapper::DelayKind::kSlow;
        ov.p1 = ParseDouble(parts[1].c_str());
      } else if (initial) {
        ov.kind = wrapper::DelayKind::kInitial;
        ov.p1 = ParseDouble(parts[1].c_str());
      } else {
        if (parts.size() < 3) Usage(argv[0], "bursty needs REL:LEN:GAPMS");
        ov.kind = wrapper::DelayKind::kBursty;
        ov.p1 = ParseDouble(parts[1].c_str());
        ov.p2 = ParseDouble(parts[2].c_str());
      }
      o.overrides.push_back(ov);
    } else {
      Usage(argv[0], ("unknown flag " + arg).c_str());
    }
  }
  return o;
}

Result<plan::QuerySetup> BuildSetup(const CliOptions& o) {
  const double w = o.w_us > 0 ? o.w_us : 20.0;
  if (o.query == "paper") return plan::PaperFigure5Query(o.scale, w);
  if (o.query == "tiny") return plan::TinyTwoSourceQuery(20000, 15000, w);
  if (o.query == "chain") return plan::ChainThreeSourceQuery(w);
  if (o.query == "random") {
    plan::GeneratorConfig gen;
    gen.num_sources = o.sources;
    gen.seed = o.seed;
    gen.mean_delay_us = w;
    gen.min_cardinality = static_cast<int64_t>(5000 * o.scale / 0.3);
    gen.max_cardinality = static_cast<int64_t>(60000 * o.scale / 0.3);
    return plan::GenerateBushyQuery(gen, /*use_optimizer=*/true);
  }
  return Status::InvalidArgument("unknown --query=" + o.query);
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions o = Parse(argc, argv);
  Result<plan::QuerySetup> setup = BuildSetup(o);
  if (!setup.ok()) {
    std::fprintf(stderr, "%s\n", setup.status().ToString().c_str());
    return 2;
  }
  for (const auto& ov : o.overrides) {
    const SourceId s = setup->catalog.Find(ov.relation);
    if (s == kInvalidId) {
      std::fprintf(stderr, "no relation named %s\n", ov.relation.c_str());
      return 2;
    }
    wrapper::DelayConfig& d = setup->catalog.source(s).delay;
    d.kind = ov.kind;
    d.slow_factor = ov.kind == wrapper::DelayKind::kSlow ? ov.p1 : 1.0;
    d.initial_delay_ms =
        ov.kind == wrapper::DelayKind::kInitial ? ov.p1 : 0.0;
    if (ov.kind == wrapper::DelayKind::kBursty) {
      d.burst_length = static_cast<int64_t>(ov.p1);
      d.burst_gap_ms = ov.p2;
    }
  }

  core::MediatorConfig config;
  config.seed = o.seed;
  config.memory_budget_bytes =
      static_cast<int64_t>(o.memory_mb * 1024 * 1024);
  config.strategy.dqs.bmt = o.bmt;
  config.strategy.dqp.batch_size = o.batch;
  config.comm.queue_capacity = o.queue;

  std::printf("query: %s\n", setup->plan.ToString(setup->catalog).c_str());
  Result<core::Mediator> first = core::Mediator::Create(
      setup->catalog, setup->plan, config);
  if (!first.ok()) {
    std::fprintf(stderr, "%s\n", first.status().ToString().c_str());
    return 1;
  }
  std::printf("result: %lld tuples | LWB %.3f s\n\n",
              static_cast<long long>(first->reference().result_card),
              ToSecondsF(first->LowerBound().bound()));

  struct Row {
    const char* name;
    bool selected;
  };
  const bool all = o.strategy == "all";
  TablePrinter table({"strategy", "response (s)", "stalled (s)",
                      "peak mem (MB)", "disk pages W/R", "notes"});
  auto add = [&](const char* name,
                 Result<core::ExecutionMetrics> (*runner)(
                     const core::Mediator&, const CliOptions&)) {
    double total = 0;
    Result<core::ExecutionMetrics> last = Status::Internal("never ran");
    for (int r = 0; r < o.repeats; ++r) {
      core::MediatorConfig rc = config;
      rc.seed = config.seed + static_cast<uint64_t>(r) * 7919;
      Result<core::Mediator> m =
          core::Mediator::Create(setup->catalog, setup->plan, rc);
      if (!m.ok()) {
        last = m.status();
        break;
      }
      last = runner(*m, o);
      if (!last.ok()) break;
      total += ToSecondsF(last->response_time);
    }
    if (!last.ok()) {
      table.AddRow({name, "FAIL", "-", "-", "-",
                    last.status().ToString()});
      return;
    }
    table.AddRow(
        {name, TablePrinter::Num(total / o.repeats),
         TablePrinter::Num(ToSecondsF(last->stalled_time)),
         TablePrinter::Num(
             static_cast<double>(last->peak_memory_bytes) / 1048576.0, 1),
         std::to_string(last->disk.pages_written) + "/" +
             std::to_string(last->disk.pages_read),
         std::to_string(last->degradations) + " degr, " +
             std::to_string(last->dqo_splits) + " splits"});
  };

  if (all || o.strategy == "seq") {
    add("SEQ", +[](const core::Mediator& m, const CliOptions&) {
      return m.Execute(core::StrategyKind::kSeq);
    });
  }
  if (all || o.strategy == "dse") {
    add("DSE", +[](const core::Mediator& m, const CliOptions&) {
      return m.Execute(core::StrategyKind::kDse);
    });
  }
  if (all || o.strategy == "ma") {
    add("MA", +[](const core::Mediator& m, const CliOptions&) {
      return m.Execute(core::StrategyKind::kMa);
    });
  }
  if (all || o.strategy == "scr") {
    add("SCR", +[](const core::Mediator& m, const CliOptions& opt) {
      return m.ExecuteScrambling(Milliseconds(opt.scr_timeout_ms));
    });
  }
  if (all || o.strategy == "dphj") {
    add("DPHJ", +[](const core::Mediator& m, const CliOptions&) {
      return m.ExecuteDphj();
    });
  }
  if (table.row_count() == 0) Usage(argv[0], "unknown --strategy");
  if (o.csv) {
    table.PrintCsv(stdout);
  } else {
    table.Print(stdout);
  }

  if (o.trace) {
    Result<core::Mediator::TracedExecution> run =
        first->ExecuteTraced(core::StrategyKind::kDse);
    if (run.ok()) {
      std::printf("\n--- DSE decision log (first 40 events) ---\n%s",
                  run->trace.RenderEventLog(40).c_str());
      std::printf("\n%s",
                  run->trace.RenderTimeline(run->fragment_names).c_str());
    }
  }
  return 0;
}
