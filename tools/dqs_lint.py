#!/usr/bin/env python3
"""Convention linter for the dqsched tree (run as the `dqs_lint` ctest).

Checks, over src/**:

  guard          include guards are DQSCHED_<REL_PATH>_H_ with a matching
                 `#endif  // DQSCHED_..._H_` trailer
  own-header     every src/**/*.cc with a sibling header includes it first
  nodiscard      common/status.h keeps [[nodiscard]] on Status and Result
  check-on-input DQS_CHECK aborts inside Parse*/TryParse*/Validate* bodies
                 (user-input paths must return Status, not crash)
  raw-abort      abort()/exit() calls outside common/macros.h
  using-std      `using namespace std` at any scope
  queue-push     per-tuple TupleQueue::Push outside src/comm — the data
                 plane moves tuples with span PushBatch/PopBatch only
  kernel-push    per-tuple push_back/emplace_back/Add inside src/exec —
                 the operator kernels deliver spans (AppendBatch paths)
                 and refine selection vectors; only blessed expansion
                 helpers, marked `// dqs-lint: allow(kernel-push)` or
                 wrapped in begin-allow/end-allow(kernel-push) comments,
                 may walk tuples one at a time
  timeout-type   header fields named like durations (timeout/deadline/
                 cooldown/silence/backoff/stall) declared as naked integers
                 instead of SimDuration (plural event counters are exempt)
  ancestors-index  CompiledPlan::Ancestors() (allocating DFS reference)
                 called outside src/plan — hot paths must read the O(1)
                 closure-index span AncestorsOf() instead

Exits 0 when clean; prints findings as `path:line: [rule] message` and
exits 1 otherwise.
"""

import re
import sys
from pathlib import Path

FINDINGS = []


def finding(path, line, rule, msg):
    FINDINGS.append(f"{path}:{line}: [{rule}] {msg}")


def strip_comments(text):
    """Blanks out comments and string literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif ch == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join("\n" if c == "\n" else " " for c in text[i:j]))
            i = j
        elif ch in "\"'":
            quote = ch
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + quote if j - i >= 2 else ch)
            i = j
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def expected_guard(rel):
    stem = re.sub(r"[^A-Za-z0-9]", "_", str(rel.with_suffix("")))
    return f"DQSCHED_{stem.upper()}_H_"


def check_guard(path, rel, lines):
    guard = expected_guard(rel)
    ifndef = next(
        (i for i, l in enumerate(lines) if l.startswith("#ifndef")), None
    )
    if ifndef is None or lines[ifndef].split()[1:2] != [guard]:
        finding(path, (ifndef or 0) + 1, "guard", f"expected `#ifndef {guard}`")
        return
    if ifndef + 1 >= len(lines) or lines[ifndef + 1].split()[1:2] != [guard]:
        finding(path, ifndef + 2, "guard", f"expected `#define {guard}`")
    last_endif = next(
        (
            i
            for i in range(len(lines) - 1, -1, -1)
            if lines[i].startswith("#endif")
        ),
        None,
    )
    want = f"#endif  // {guard}"
    if last_endif is None or lines[last_endif].rstrip() != want:
        finding(path, (last_endif or 0) + 1, "guard", f"expected `{want}`")


def check_own_header_first(path, rel, lines, src_root):
    header = rel.with_suffix(".h")
    if not (src_root / header).exists():
        return
    for i, line in enumerate(lines):
        m = re.match(r'\s*#include\s+["<]([^">]+)[">]', line)
        if m:
            if m.group(1) != str(header):
                finding(
                    path,
                    i + 1,
                    "own-header",
                    f'first include must be "{header}"',
                )
            return


def check_nodiscard(status_h):
    text = status_h.read_text()
    for cls in ("Status", "Result"):
        if not re.search(rf"class\s+\[\[nodiscard\]\]\s+{cls}\b", text):
            line = next(
                (
                    i + 1
                    for i, l in enumerate(text.splitlines())
                    if re.search(rf"class\s.*\b{cls}\b", l)
                ),
                1,
            )
            finding(
                status_h,
                line,
                "nodiscard",
                f"class {cls} must be declared [[nodiscard]]",
            )


INPUT_FN = re.compile(
    r"\b(?:Status|Result<[^;{]*>)\s+(?:[A-Za-z_]\w*::)*"
    r"((?:Parse|TryParse|Validate)\w*)\s*\("
)


def check_input_paths(path, text):
    """DQS_CHECK inside a Parse*/TryParse*/Validate* body aborts the process
    on bad user input instead of surfacing a Status — flag it."""
    for m in INPUT_FN.finditer(text):
        brace = text.find("{", m.end())
        semi = text.find(";", m.end())
        if brace == -1 or (semi != -1 and semi < brace):
            continue  # declaration, not a definition
        depth, i = 0, brace
        while i < len(text):
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        body = text[brace:i]
        for cm in re.finditer(r"\bDQS_CHECK(_MSG)?\s*\(", body):
            line = text.count("\n", 0, brace + cm.start()) + 1
            finding(
                path,
                line,
                "check-on-input",
                f"DQS_CHECK in {m.group(1)}(): return a Status error "
                "instead of aborting on user input",
            )


def check_raw_abort(path, rel, text):
    if str(rel) == "common/macros.h":
        return
    for i, line in enumerate(text.splitlines()):
        if re.search(r"(?<![\w.])(?:std::)?(?:abort|exit|_Exit)\s*\(", line):
            finding(
                path,
                i + 1,
                "raw-abort",
                "call DQS_CHECK/DQS_CHECK_MSG (macros.h) instead of "
                "aborting directly",
            )


def check_using_std(path, text):
    for i, line in enumerate(text.splitlines()):
        if re.search(r"\busing\s+namespace\s+std\b", line):
            finding(path, i + 1, "using-std", "`using namespace std` banned")


def check_queue_push(path, rel, text):
    """Per-tuple `.Push(` on a TupleQueue outside the comm layer defeats the
    bulk transport: producers must deliver spans via PushBatch. TupleQueue
    is the only class in the tree with a `Push` method, so any member call
    spelled `.Push(`/`->Push(` outside src/comm is a violation (this also
    catches producers that reach the queue through transitive includes)."""
    if rel.parts[0] == "comm":
        return
    for i, line in enumerate(text.splitlines()):
        if re.search(r"(?:\.|->)Push\s*\(", line):
            finding(
                path,
                i + 1,
                "queue-push",
                "per-tuple TupleQueue::Push outside src/comm; deliver a "
                "span with PushBatch",
            )


KERNEL_PUSH = re.compile(r"(?:\.|->)(?:push_back|emplace_back|Add)\s*\(")


def kernel_push_allowed_lines(raw):
    """Line indexes (0-based) exempt from the kernel-push rule. Allow
    markers live in comments, so they are read from the RAW text (the
    matcher runs on comment-stripped text). Both a same-line marker and
    begin-allow/end-allow block markers are honored."""
    allowed = set()
    depth = 0
    for i, line in enumerate(raw.splitlines()):
        if "dqs-lint: begin-allow(kernel-push)" in line:
            depth += 1
        if depth > 0 or "dqs-lint: allow(kernel-push)" in line:
            allowed.add(i)
        if "dqs-lint: end-allow(kernel-push)" in line:
            depth -= 1
    return allowed


def check_kernel_push(path, rel, text, raw):
    """The vectorized kernels moved tuple delivery to spans: filters mark
    TupleIdList bits, probes expand into pre-sized buffers, sinks take one
    contiguous AppendBatch per batch. A per-tuple push_back/Add creeping
    back into src/exec reintroduces the branchy per-tuple loop this PR
    removed, so any such member call must be a blessed expansion helper
    carrying an explicit allow marker (mirrors the queue-push rule)."""
    if rel.parts[0] != "exec":
        return
    allowed = kernel_push_allowed_lines(raw)
    for i, line in enumerate(text.splitlines()):
        if i in allowed:
            continue
        if KERNEL_PUSH.search(line):
            finding(
                path,
                i + 1,
                "kernel-push",
                "per-tuple push_back/Add in an exec kernel; deliver a span "
                "(AppendBatch) or mark a blessed expansion helper with "
                "`dqs-lint: allow(kernel-push)`",
            )


def check_ancestors_index(path, rel, text):
    """`x.Ancestors(c)` allocates a vector and walks the blocker DAG on
    every call; Compile() flattens the transitive closure precisely so the
    scheduler never pays that. Outside src/plan (which owns the reference
    implementation and its validation) every call site must use the
    AncestorsOf() span. The regex requires a member call, so free
    functions and AncestorsOf itself do not match."""
    if rel.parts[0] == "plan":
        return
    for i, line in enumerate(text.splitlines()):
        if re.search(r"(?:\.|->)Ancestors\s*\(", line):
            finding(
                path,
                i + 1,
                "ancestors-index",
                "CompiledPlan::Ancestors() outside src/plan; read the "
                "closure-index span AncestorsOf() instead",
            )


DURATION_FIELD = re.compile(
    r"\b(?:u?int(?:8|16|32|64)_t|int|long(?:\s+long)?|unsigned|size_t)\s+"
    r"(\w*(?:timeout|deadline|cooldown|silence|backoff|stall)\w*)\s*"
    r"(?:=[^;]*)?;"
)


def check_timeout_type(path, text):
    """A timeout/deadline knob typed `int64_t` is a naked tick count whose
    unit the reader must guess; declare it SimDuration (sim_time.h) so the
    Milliseconds()/Seconds() constructors document the unit at every use.
    Plural names (`timeouts`) are event counters, not durations — exempt."""
    for i, line in enumerate(text.splitlines()):
        m = DURATION_FIELD.search(line)
        if m is None:
            continue
        name = m.group(1).rstrip("_")
        if re.search(
            r"(?:timeout|deadline|cooldown|silence|backoff|stall)s", name
        ):
            continue  # counter (`timeouts`, `stalls_injected`), not a duration
        finding(
            path,
            i + 1,
            "timeout-type",
            f"`{name}` looks like a duration; declare it SimDuration, "
            "not a naked integer",
        )


def main():
    root = Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    src = root / "src"
    if not src.is_dir():
        print(f"dqs_lint: no src/ under {root}", file=sys.stderr)
        return 2

    for path in sorted(src.rglob("*.h")) + sorted(src.rglob("*.cc")):
        rel = path.relative_to(src)
        raw = path.read_text()
        stripped = strip_comments(raw)  # no comment/string-literal matches
        if path.suffix == ".h":
            check_guard(path, rel, raw.splitlines())
            check_timeout_type(path, stripped)
        else:
            check_own_header_first(path, rel, raw.splitlines(), src)
        check_input_paths(path, stripped)
        check_raw_abort(path, rel, stripped)
        check_using_std(path, stripped)
        check_queue_push(path, rel, stripped)
        check_kernel_push(path, rel, stripped, raw)
        check_ancestors_index(path, rel, stripped)

    check_nodiscard(src / "common" / "status.h")

    if FINDINGS:
        print(f"dqs_lint: {len(FINDINGS)} finding(s)")
        for f in FINDINGS:
            print(f"  {f}")
        return 1
    print("dqs_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
