#!/usr/bin/env python3
"""Compatibility shim: the convention linter is now a rule subset of
tools/dqs_analyze.py (one analyzer, one marker syntax, one findings
format — see that file's docstring).

The ten legacy rules (guard, own-header, nodiscard, check-on-input,
raw-abort, using-std, queue-push, kernel-push, timeout-type,
ancestors-index) run on the shared C++ lexer and include-graph
infrastructure; suppression markers are spelled
`dqs-analyze: allow(<rule>)`. This entry point exists so the `dqs_lint`
ctest name and any muscle-memory invocations keep working.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import dqs_analyze  # noqa: E402


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    return dqs_analyze.run(root, rules=list(dqs_analyze.LEGACY_RULES))


if __name__ == "__main__":
    sys.exit(main())
