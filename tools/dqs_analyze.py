#!/usr/bin/env python3
"""dqs_analyze — C++-aware static analysis for the dqsched tree.

One analyzer, one marker syntax, one findings format. Runs as the
`dqs_analyze` ctest (full rule set) and behind the `dqs_lint` ctest
(legacy rule subset, via tools/dqs_lint.py). Unlike the line-regex linter
it replaces, it works on a token stream from a real C++ lexer (comments
and string literals can never produce findings, member calls are
distinguished from free calls and declarations) and on a cross-file
include graph (layer violations and include cycles are graph properties,
not line patterns).

Rule families
-------------
layer DAG (tree-wide, from the include graph):
  layer-dag        src/ subdirectories form the layer DAG
                       common -> {sim, storage} -> {comm, wrapper}
                              -> {plan, exec} -> core
                   A quoted include whose target's layer rank is higher
                   than the including file's rank is an upward edge and is
                   reported as such; the file-level include graph must
                   also be acyclic (the shortest cycle is reported).
                   Within-layer sibling edges (e.g. comm <-> wrapper) are
                   legal as long as no file-level cycle exists.

determinism contract (DESIGN §11 — non-wall ExecutionMetrics fields must
be byte-identical across --jobs, strategies, and kernels):
  wall-clock       wall-clock reads (std::chrono steady/system/
                   high_resolution clocks, time(), clock(), gettimeofday,
                   clock_gettime, and the <chrono>/<ctime> includes that
                   supply them) are banned everywhere except the blessed
                   helper src/common/host_clock.h.
  unordered-iter   iteration over std::unordered_{map,set,multimap,
                   multiset} variables (range-for, .begin()/.cbegin(),
                   .equal_range() walks): hash iteration order must never
                   escape into metrics, plan order, or output. Use sorted
                   (std::map) or vector-indexed containers instead.
  rng              all randomness comes from the seeded streams in
                   src/common/random.*; std RNG engines (mt19937, ...),
                   std::random_device, rand()/srand(), and <random> are
                   banned outside those files.

charge order (DESIGN §10 — every simulated charge is a pure function of
canonical-order cardinalities):
  charge-order     the charge-mutating calls (SimClock Advance/BusyUntil/
                   StallUntil, ExecContext::ChargeInstr, NetworkModel
                   ChargeReceive/ChargeSend) may appear only in the
                   blessed files that own the charge discipline; a new
                   call site anywhere else needs a review and an explicit
                   entry in CHARGE_BLESSED.

shard affinity (DESIGN §12 — the admission-control MemoryBroker is the
fleet's only cross-shard mutable state):
  shard-affinity   the broker API (its header and the MemoryBroker class
                   name) may appear only in core/memory_broker.* and
                   core/fleet_executor.*; any other src/ file taking a
                   broker dependency would couple shards outside the
                   arbitration barrier and break the jobs-invariance
                   argument.

breaker affinity (DESIGN §13 — circuit breakers are lifecycle policy,
confined to the layers that own it):
  breaker-affinity the breaker API (core/circuit_breaker.h and the
                   CircuitBreaker / BreakerPanel names) may appear only
                   under core/ and comm/; a wrapper or storage file
                   consulting a breaker would smuggle admission policy
                   into mechanism code and couple layers the DAG keeps
                   apart.

cache affinity (DESIGN §14 — the result cache touches the scheduler at
exactly two reviewed points):
  cache-affinity   the cache API (storage/result_cache.h,
                   core/cache_manager.h, and the ResultCache /
                   CacheManager names) may appear only in the cache
                   files themselves and the blessed integration sites
                   (dqs, shared loop, execution state, and the three
                   drivers); a new consumer anywhere else would add an
                   unreviewed hit point and erode the off-vs-cold
                   byte-identity argument.

legacy conventions (ported from dqs_lint.py, same semantics):
  guard            include guards are DQSCHED_<REL_PATH>_H_ with a
                   matching `#endif  // ...` trailer
  own-header       every src/**/*.cc with a sibling header includes it
                   first
  nodiscard        common/status.h keeps [[nodiscard]] on Status/Result
  check-on-input   no DQS_CHECK inside Parse*/TryParse*/Validate* bodies
  raw-abort        no abort()/exit() outside common/macros.h
  using-std        no `using namespace std`
  queue-push       no per-tuple TupleQueue::Push outside src/comm
  kernel-push      no per-tuple push_back/emplace_back/Add in src/exec
                   outside blessed expansion helpers
  timeout-type     duration-named header fields are SimDuration, not
                   naked integers
  ancestors-index  no CompiledPlan::Ancestors() outside src/plan

Suppression
-----------
A finding on line L of rule R is suppressed when a comment marker covers
that line:

    code;  // dqs-analyze: allow(R) optional rationale
    // dqs-analyze: begin-allow(R) — rationale
    ...block...
    // dqs-analyze: end-allow(R)

Markers naming an unknown rule, and unbalanced begin/end pairs, are
themselves findings (rule `marker`) so typos cannot silently disable a
check.

Output: `path:line: [rule] message`, one line per finding; exit 0 when
clean, 1 otherwise. `--self-test tests/analyze_fixtures` runs the
golden-finding fixture suite.
"""

import argparse
import sys
from collections import deque
from pathlib import Path

# --------------------------------------------------------------------------
# Configuration: the layer DAG and the blessed-file sets.
# --------------------------------------------------------------------------

# Layer ranks. An include edge from directory A to directory B is upward
# (banned) iff rank[B] > rank[A]. Same-rank sibling edges are legal; the
# file-level cycle check keeps them (and everything else) acyclic.
LAYER_RANK = {
    "common": 0,
    "sim": 1,
    "storage": 1,
    "comm": 2,
    "wrapper": 2,
    "plan": 3,
    "exec": 3,
    "core": 4,
}

LAYER_DIAGRAM = "common -> {sim,storage} -> {comm,wrapper} -> {plan,exec} -> core"

# The one file allowed to read host wall clocks (DESIGN §11).
WALL_CLOCK_BLESSED = {"common/host_clock.h"}

# The files allowed to construct raw RNG state (everything else forks a
# seeded dqsched::Rng stream).
RNG_BLESSED_PREFIX = "common/random"

# Owners of the canonical-charge discipline (DESIGN §10): the only files
# that may invoke the charge-mutating members. Adding a file here is a
# reviewed event — the new site must derive its charge from canonical-order
# cardinalities, never from host evaluation order.
CHARGE_BLESSED = {
    "sim/sim_clock.h",       # defines Advance/BusyUntil/StallUntil
    "sim/network.h",         # declares ChargeReceive
    "sim/network.cc",        # defines ChargeReceive
    "exec/exec_context.h",   # ChargeInstr = the one instr->clock bridge
    "exec/operand.cc",       # operand build/open charges
    "exec/chain_executor.cc",  # the fragment kernels
    "storage/temp_store.cc",   # per-I/O CPU + synchronous waits
    "core/dqp.cc",           # phase-boundary stalls
    "core/dphj.cc",          # the DPHJ comparison executor
    "core/multi_query.cc",   # shared-loop stalls
    "core/fleet_executor.cc",  # fleet shard stalls at grant boundaries
}

# Owners of the fleet's cross-shard state (DESIGN §12): the broker itself
# and the coordinator that arbitrates at the round barrier. Any other
# file naming the broker couples shards outside the barrier.
BROKER_BLESSED_PREFIXES = ("core/memory_broker", "core/fleet_executor")

# Layers allowed to consult the circuit breakers (DESIGN §13): lifecycle
# policy lives in core/, and comm/ surfaces the detector events that
# feed it. A wrapper or storage component naming a breaker would smuggle
# admission policy into mechanism code.
BREAKER_BLESSED_PREFIXES = ("core/", "comm/")
BREAKER_NAMES = {"CircuitBreaker", "BreakerPanel"}

# Owners and reviewed consumers of the result cache (DESIGN §14): the
# mechanism (storage/result_cache.*), the policy (core/cache_manager.*),
# and the blessed integration sites — the two scheduler touchpoints
# (plan-time segment hits in dqs.cc, result-digest hits via the shared
# loop / execution state) and the three drivers that own a CacheManager's
# lifetime. Any other file taking a cache dependency would add an
# unreviewed hit point outside the epoch-gating argument.
CACHE_BLESSED = {
    "storage/result_cache.h", "storage/result_cache.cc",
    "core/cache_manager.h", "core/cache_manager.cc",
    "core/dqs.cc",
    "core/execution_state.h",
    "core/shared_loop.h",
    "core/mediator.h", "core/mediator.cc",
    "core/multi_query.h", "core/multi_query.cc",
    "core/fleet_executor.h", "core/fleet_executor.cc",
}
CACHE_HEADERS = {"storage/result_cache.h", "core/cache_manager.h"}
CACHE_NAMES = {"ResultCache", "CacheManager"}

CHARGE_METHODS = {
    "Advance", "AdvanceTo", "BusyUntil", "StallUntil",
    "ChargeInstr", "ChargeReceive", "ChargeSend",
}

WALL_CLOCK_TYPES = {"steady_clock", "system_clock", "high_resolution_clock"}
WALL_CLOCK_CALLS = {
    "time", "clock", "gettimeofday", "clock_gettime", "timespec_get",
    "localtime", "gmtime", "mktime", "ftime",
}
WALL_CLOCK_INCLUDES = {"chrono", "ctime", "time.h", "sys/time.h"}

RNG_ENGINE_TYPES = {
    "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
    "default_random_engine", "random_device", "ranlux24", "ranlux48",
    "knuth_b", "subtract_with_carry_engine", "mersenne_twister_engine",
    "linear_congruential_engine",
}
RNG_CALLS = {"rand", "srand", "random", "srandom", "drand48", "lrand48",
             "mrand48", "rand_r"}
RNG_INCLUDES = {"random", "cstdlib"}  # cstdlib only flagged via rand() use

UNORDERED_CONTAINERS = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
}

INT_TYPE_TOKENS = {
    "int", "long", "unsigned", "short", "size_t", "ssize_t",
    "int8_t", "int16_t", "int32_t", "int64_t",
    "uint8_t", "uint16_t", "uint32_t", "uint64_t",
}
DURATION_WORDS = ("timeout", "deadline", "cooldown", "silence", "backoff",
                  "stall")

MARKER_PREFIX = "dqs-analyze:"

# --------------------------------------------------------------------------
# Lexer.
# --------------------------------------------------------------------------


class Token:
    """One C++ token: kind in {id, num, str, char, punct, pp}."""

    __slots__ = ("kind", "value", "line")

    def __init__(self, kind, value, line):
        self.kind = kind
        self.value = value
        self.line = line

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Token({self.kind!r}, {self.value!r}, L{self.line})"


_MULTI_PUNCT = (
    "...", "->*", "<<=", ">>=",
    "::", "->", "++", "--", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
)
# NOTE: `<` and `>` are always single tokens (so template argument lists
# can be brace-matched without the C++ `>>` ambiguity), and `<<`/`>>` are
# likewise left as two tokens.

_ID_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_ID_CONT = _ID_START | set("0123456789")
_RAW_PREFIXES = {"R", "u8R", "uR", "LR"}


def tokenize(text):
    """Lexes C++ source into tokens. Comments are skipped (they can never
    match a rule); preprocessor directives become single `pp` tokens
    (continuation lines folded in). Best-effort on purpose: the analyzer
    needs token *shapes*, not a full grammar."""
    tokens = []
    i, n = 0, len(text)
    line = 1
    at_line_start = True
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if ch in " \t\r\f\v":
            i += 1
            continue
        if ch == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            i = n if j == -1 else j
            continue
        if ch == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            line += text.count("\n", i, j)
            i = j
            at_line_start = False
            continue
        if ch == "#" and at_line_start:
            # Preprocessor directive; fold backslash continuations.
            start, start_line = i, line
            while i < n:
                j = text.find("\n", i)
                if j == -1:
                    i = n
                    break
                # A trailing backslash continues the directive.
                k = j - 1
                while k >= 0 and text[k] in " \t\r":
                    k -= 1
                if k >= 0 and text[k] == "\\":
                    line += 1
                    i = j + 1
                    continue
                i = j
                break
            tokens.append(Token("pp", text[start:i], start_line))
            at_line_start = False
            continue
        at_line_start = False
        if ch == '"':
            i, line = _scan_string(text, i, line, '"')
            tokens.append(Token("str", '""', line))
            continue
        if ch == "'":
            i, line = _scan_string(text, i, line, "'")
            tokens.append(Token("char", "''", line))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            start = i
            i += 1
            while i < n and (text[i] in _ID_CONT or text[i] in ".'"
                             or (text[i] in "+-" and text[i - 1] in "eEpP")):
                i += 1
            tokens.append(Token("num", text[start:i], line))
            continue
        if ch in _ID_START:
            start = i
            i += 1
            while i < n and text[i] in _ID_CONT:
                i += 1
            word = text[start:i]
            if word in _RAW_PREFIXES and i < n and text[i] == '"':
                i, line = _scan_raw_string(text, i, line)
                tokens.append(Token("str", '""', line))
                continue
            tokens.append(Token("id", word, line))
            continue
        matched = False
        for p in _MULTI_PUNCT:
            if text.startswith(p, i):
                tokens.append(Token("punct", p, line))
                i += len(p)
                matched = True
                break
        if not matched:
            tokens.append(Token("punct", ch, line))
            i += 1
    return tokens


def _scan_string(text, i, line, quote):
    """Scans a quoted literal starting at text[i] == quote; returns the
    index just past the closing quote."""
    n = len(text)
    i += 1
    while i < n:
        ch = text[i]
        if ch == "\\":
            i += 2
            continue
        if ch == "\n":  # unterminated; tolerate and resync
            return i, line
        if ch == quote:
            return i + 1, line
        i += 1
    return i, line


def _scan_raw_string(text, i, line):
    """Scans R"delim( ... )delim" with text[i] == '"'."""
    n = len(text)
    j = text.find("(", i + 1)
    if j == -1:
        return n, line
    delim = text[i + 1:j]
    close = ")" + delim + '"'
    k = text.find(close, j + 1)
    if k == -1:
        return n, line
    line += text.count("\n", i, k)
    return k + len(close), line


# --------------------------------------------------------------------------
# Source files, includes, suppression markers.
# --------------------------------------------------------------------------


class SourceFile:
    """One lexed file plus its include edges and suppression spans."""

    def __init__(self, path, rel, text):
        self.path = path
        self.rel = rel  # posix path relative to src/
        self.text = text
        self.lines = text.splitlines()
        self.tokens = tokenize(text)
        self.quoted_includes = []  # [(line, target)]
        self.angle_includes = []   # [(line, target)]
        for tok in self.tokens:
            if tok.kind != "pp":
                continue
            body = tok.value.lstrip("#").strip()
            if not body.startswith("include"):
                continue
            arg = body[len("include"):].strip()
            if arg.startswith('"') and arg.count('"') >= 2:
                self.quoted_includes.append(
                    (tok.line, arg[1:arg.index('"', 1)]))
            elif arg.startswith("<") and ">" in arg:
                self.angle_includes.append(
                    (tok.line, arg[1:arg.index(">")]))
        self._allow = {}          # rule -> set of 0-based line indexes
        self.marker_errors = []   # [(line, message)]
        self._scan_markers()

    def _scan_markers(self):
        self._open_blocks = {}  # rule -> [start line indexes]
        for idx, raw in enumerate(self.lines):
            pos = raw.find(MARKER_PREFIX)
            if pos == -1:
                continue
            directive = raw[pos + len(MARKER_PREFIX):].strip()
            for verb in ("begin-allow", "end-allow", "allow"):
                if directive.startswith(verb + "("):
                    close = directive.find(")", len(verb) + 1)
                    if close == -1:
                        self.marker_errors.append(
                            (idx + 1, "unclosed marker: missing `)`"))
                        break
                    rule_name = directive[len(verb) + 1:close].strip()
                    self._apply_marker(verb, rule_name, idx)
                    break
            else:
                self.marker_errors.append(
                    (idx + 1,
                     "unrecognized marker; use allow(<rule>), "
                     "begin-allow(<rule>), or end-allow(<rule>)"))
        # Unclosed begin-allow blocks suppress nothing past EOF — flag them.
        for rule_name, starts in self._open_blocks.items():
            for start in starts:
                self.marker_errors.append(
                    (start + 1,
                     f"begin-allow({rule_name}) never closed by "
                     f"end-allow({rule_name})"))

    def _apply_marker(self, verb, rule_name, idx):
        if rule_name not in RULES and rule_name != "marker":
            self.marker_errors.append(
                (idx + 1, f"marker names unknown rule `{rule_name}`"))
            return
        allowed = self._allow.setdefault(rule_name, set())
        if verb == "allow":
            allowed.add(idx)
        elif verb == "begin-allow":
            self._open_blocks.setdefault(rule_name, []).append(idx)
        else:  # end-allow
            starts = self._open_blocks.get(rule_name) or []
            if not starts:
                self.marker_errors.append(
                    (idx + 1,
                     f"end-allow({rule_name}) without a matching "
                     f"begin-allow({rule_name})"))
                return
            start = starts.pop()
            allowed.update(range(start, idx + 1))

    def allowed(self, rule_name, line):
        """True when 1-based `line` is covered by an allow marker."""
        return (line - 1) in self._allow.get(rule_name, ())


# --------------------------------------------------------------------------
# Rule registry and the analyzer driver.
# --------------------------------------------------------------------------

RULES = {}  # name -> (scope, fn); scope in {"file", "tree"}
LEGACY_RULES = (
    "guard", "own-header", "nodiscard", "check-on-input", "raw-abort",
    "using-std", "queue-push", "kernel-push", "timeout-type",
    "ancestors-index",
)


def rule(name, scope):
    def wrap(fn):
        RULES[name] = (scope, fn)
        return fn
    return wrap


class Analyzer:
    def __init__(self, root, rules=None):
        self.root = Path(root).resolve()
        self.src = self.root / "src"
        self.rules = set(rules) if rules else set(RULES)
        # `marker` is always-on infrastructure but may be named in --rules
        # (e.g. by fixtures that test only the marker hygiene itself).
        unknown = self.rules - set(RULES) - {"marker"}
        if unknown:
            raise ValueError(f"unknown rules: {sorted(unknown)}")
        self.files = []
        self.by_rel = {}
        self.findings = []  # [(rel, line, rule, message)]

    def load(self):
        paths = sorted(self.src.rglob("*.h")) + sorted(self.src.rglob("*.cc"))
        for path in paths:
            rel = path.relative_to(self.src).as_posix()
            f = SourceFile(path, rel, path.read_text())
            self.files.append(f)
            self.by_rel[rel] = f

    def emit(self, f, line, rule_name, message):
        if f is not None and f.allowed(rule_name, line):
            return
        rel = f.rel if f is not None else "<tree>"
        self.findings.append((rel, line, rule_name, message))

    def run(self):
        self.load()
        # Marker hygiene runs unconditionally: a broken marker can disable
        # any rule, so it is never filtered out by --rules.
        for f in self.files:
            for line, msg in f.marker_errors:
                self.findings.append((f.rel, line, "marker", msg))
        for name in sorted(self.rules & set(RULES)):
            scope, fn = RULES[name]
            if scope == "tree":
                fn(self)
            else:
                for f in self.files:
                    fn(self, f)
        self.findings.sort()
        return self.findings


# --------------------------------------------------------------------------
# Token-stream helpers.
# --------------------------------------------------------------------------


def is_free_call(tokens, i):
    """True when tokens[i] (an identifier followed by `(`) is a free call:
    not a member access, not `Qualifier::` other than std::, and not a
    declaration like `SimDuration time(...)`."""
    prev = tokens[i - 1] if i > 0 else None
    if prev is None:
        return True
    if prev.kind == "punct" and prev.value in (".", "->"):
        return False
    if prev.kind == "punct" and prev.value == "::":
        qual = tokens[i - 2] if i >= 2 else None
        return qual is not None and qual.kind == "id" and qual.value == "std"
    if prev.kind == "id":
        return False
    return True


def is_member_call(tokens, i):
    """True when tokens[i] is an identifier invoked as `.name(`/`->name(`."""
    if i == 0 or i + 1 >= len(tokens):
        return False
    nxt = tokens[i + 1]
    prev = tokens[i - 1]
    return (nxt.kind == "punct" and nxt.value == "("
            and prev.kind == "punct" and prev.value in (".", "->"))


def next_is(tokens, i, value):
    return (i + 1 < len(tokens) and tokens[i + 1].kind == "punct"
            and tokens[i + 1].value == value)


def skip_template_args(tokens, i):
    """With tokens[i] == `<`, returns the index just past the matching `>`
    (or len(tokens) if unbalanced)."""
    depth = 0
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if t.kind == "punct":
            if t.value == "<":
                depth += 1
            elif t.value == ">":
                depth -= 1
                if depth == 0:
                    return i + 1
            elif t.value in (";", "{", "}"):
                return i  # malformed; bail
        i += 1
    return n


def matching_paren(tokens, i):
    """With tokens[i] == `(`, returns the index of the matching `)`."""
    depth = 0
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if t.kind == "punct":
            if t.value == "(":
                depth += 1
            elif t.value == ")":
                depth -= 1
                if depth == 0:
                    return i
        i += 1
    return n - 1


def matching_brace(tokens, i):
    """With tokens[i] == `{`, returns the index of the matching `}`."""
    depth = 0
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if t.kind == "punct":
            if t.value == "{":
                depth += 1
            elif t.value == "}":
                depth -= 1
                if depth == 0:
                    return i
        i += 1
    return n - 1


def top_dir(rel):
    return rel.split("/", 1)[0] if "/" in rel else ""


# --------------------------------------------------------------------------
# Layer-DAG rules.
# --------------------------------------------------------------------------


@rule("layer-dag", "tree")
def check_layer_dag(an):
    # Upward edges by layer rank.
    for f in an.files:
        d = top_dir(f.rel)
        if d not in LAYER_RANK:
            continue
        for line, target in f.quoted_includes:
            td = top_dir(target)
            if td in LAYER_RANK and LAYER_RANK[td] > LAYER_RANK[d]:
                an.emit(
                    f, line, "layer-dag",
                    f"upward include edge src/{d} -> src/{td} "
                    f"(rank {LAYER_RANK[d]} -> {LAYER_RANK[td]}) violates "
                    f"the layer DAG {LAYER_DIAGRAM}")
    # File-level include cycles (shortest cycle per strongly connected
    # component, reported once at its lexicographically-first file).
    graph = {}
    for f in an.files:
        graph[f.rel] = sorted({t for _, t in f.quoted_includes
                               if t in an.by_rel})
    for comp in _tarjan_sccs(graph):
        nodes = set(comp)
        start = min(comp)
        if len(comp) == 1 and start not in graph.get(start, ()):
            continue  # trivial SCC, no self-loop
        cycle = _shortest_cycle(graph, nodes, start)
        f = an.by_rel[start]
        line = next((ln for ln, t in f.quoted_includes if t == cycle[1]), 1)
        an.emit(f, line, "layer-dag",
                "include cycle: " + " -> ".join(cycle))


def _tarjan_sccs(graph):
    """Iterative Tarjan; yields strongly connected components."""
    index = {}
    low = {}
    on_stack = set()
    stack = []
    counter = [0]
    sccs = []
    for root in sorted(graph):
        if root in index:
            continue
        work = [(root, iter(graph.get(root, ())))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index:
                    index[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(graph.get(nxt, ()))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                comp = []
                while True:
                    top = stack.pop()
                    on_stack.discard(top)
                    comp.append(top)
                    if top == node:
                        break
                sccs.append(comp)
    return sccs


def _shortest_cycle(graph, nodes, start):
    """BFS shortest path start -> ... -> start inside `nodes`; returns the
    node list with `start` repeated at the end."""
    prev = {}
    q = deque()
    for nxt in graph.get(start, ()):
        if nxt == start:
            return [start, start]
        if nxt in nodes and nxt not in prev:
            prev[nxt] = start
            q.append(nxt)
    while q:
        cur = q.popleft()
        for nxt in graph.get(cur, ()):
            if nxt == start:
                path = [cur]
                while path[-1] != start:
                    path.append(prev[path[-1]])
                path.reverse()
                path.append(start)
                return path
            if nxt in nodes and nxt not in prev:
                prev[nxt] = cur
                q.append(nxt)
    return [start, start]


# --------------------------------------------------------------------------
# Determinism-contract rules.
# --------------------------------------------------------------------------


@rule("wall-clock", "file")
def check_wall_clock(an, f):
    if f.rel in WALL_CLOCK_BLESSED:
        return
    for line, target in f.angle_includes:
        if target in WALL_CLOCK_INCLUDES:
            an.emit(f, line, "wall-clock",
                    f"#include <{target}> outside common/host_clock.h; "
                    "read host time through HostClock")
    tokens = f.tokens
    for i, tok in enumerate(tokens):
        if tok.kind != "id":
            continue
        if tok.value in WALL_CLOCK_TYPES:
            an.emit(f, tok.line, "wall-clock",
                    f"wall-clock read `{tok.value}` outside "
                    "common/host_clock.h; use HostClock::Now()")
        elif (tok.value in WALL_CLOCK_CALLS and next_is(tokens, i, "(")
              and is_free_call(tokens, i)):
            an.emit(f, tok.line, "wall-clock",
                    f"wall-clock call `{tok.value}()` outside "
                    "common/host_clock.h; use HostClock::Now()")


def _unordered_vars(tokens):
    """Names of variables declared with an unordered container type."""
    names = set()
    i, n = 0, len(tokens)
    while i < n:
        tok = tokens[i]
        if tok.kind == "id" and tok.value in UNORDERED_CONTAINERS:
            j = i + 1
            if j < n and tokens[j].kind == "punct" and tokens[j].value == "<":
                j = skip_template_args(tokens, j)
            while j < n and (
                    (tokens[j].kind == "punct" and tokens[j].value in "&*")
                    or (tokens[j].kind == "id" and tokens[j].value == "const")):
                j += 1
            if j < n and tokens[j].kind == "id":
                names.add(tokens[j].value)
            i = j
            continue
        i += 1
    return names


@rule("unordered-iter", "file")
def check_unordered_iter(an, f):
    tokens = f.tokens
    hashed = _unordered_vars(tokens)
    if not hashed:
        return
    n = len(tokens)
    for i, tok in enumerate(tokens):
        if tok.kind != "id":
            continue
        # Range-for whose range expression mentions a hashed variable.
        if tok.value == "for" and next_is(tokens, i, "("):
            close = matching_paren(tokens, i + 1)
            colon = None
            depth = 0
            for k in range(i + 2, close):
                t = tokens[k]
                if t.kind == "punct":
                    if t.value in "([{":
                        depth += 1
                    elif t.value in ")]}":
                        depth -= 1
                    elif t.value == ":" and depth == 0:
                        colon = k
                        break
            if colon is None:
                continue
            ranged = [tokens[k].value for k in range(colon + 1, close)
                      if tokens[k].kind == "id"]
            bad = sorted(hashed.intersection(ranged))
            if bad:
                an.emit(f, tok.line, "unordered-iter",
                        f"range-for over unordered container `{bad[0]}`: "
                        "hash iteration order is not deterministic; use a "
                        "sorted or vector-indexed container")
        # Explicit iterator walks: var.begin() / var.equal_range() etc.
        elif (tok.value in ("begin", "cbegin", "rbegin", "equal_range")
              and is_member_call(tokens, i) and i >= 2
              and tokens[i - 2].kind == "id"
              and tokens[i - 2].value in hashed):
            an.emit(f, tok.line, "unordered-iter",
                    f"`{tokens[i - 2].value}.{tok.value}()` iterates an "
                    "unordered container: hash order is not deterministic; "
                    "use a sorted or vector-indexed container")


@rule("rng", "file")
def check_rng(an, f):
    if f.rel.startswith(RNG_BLESSED_PREFIX):
        return
    for line, target in f.angle_includes:
        if target == "random":
            an.emit(f, line, "rng",
                    "#include <random> outside common/random.*; draw from "
                    "a seeded dqsched::Rng stream")
    tokens = f.tokens
    for i, tok in enumerate(tokens):
        if tok.kind != "id":
            continue
        if tok.value in RNG_ENGINE_TYPES:
            an.emit(f, tok.line, "rng",
                    f"raw RNG `{tok.value}` outside common/random.*; all "
                    "randomness must come from seeded dqsched::Rng streams")
        elif (tok.value in RNG_CALLS and next_is(tokens, i, "(")
              and is_free_call(tokens, i)):
            an.emit(f, tok.line, "rng",
                    f"`{tok.value}()` outside common/random.*; all "
                    "randomness must come from seeded dqsched::Rng streams")


# --------------------------------------------------------------------------
# Charge-order rule.
# --------------------------------------------------------------------------


@rule("charge-order", "file")
def check_charge_order(an, f):
    if f.rel in CHARGE_BLESSED:
        return
    tokens = f.tokens
    for i, tok in enumerate(tokens):
        if (tok.kind == "id" and tok.value in CHARGE_METHODS
                and is_member_call(tokens, i)):
            an.emit(f, tok.line, "charge-order",
                    f"charge-mutating call `{tok.value}()` outside the "
                    "blessed charge-discipline files (DESIGN §10); simulated "
                    "charges are derived only from canonical-order "
                    "cardinalities in reviewed sites")


# --------------------------------------------------------------------------
# Shard-affinity rule.
# --------------------------------------------------------------------------


@rule("shard-affinity", "file")
def check_shard_affinity(an, f):
    if f.rel.startswith(BROKER_BLESSED_PREFIXES):
        return
    for line, target in f.quoted_includes:
        if target == "core/memory_broker.h":
            an.emit(f, line, "shard-affinity",
                    '#include "core/memory_broker.h" outside the fleet '
                    "coordinator; the broker is the fleet's only "
                    "cross-shard state (DESIGN §12) and only "
                    "core/memory_broker.* and core/fleet_executor.* may "
                    "depend on it")
    for tok in f.tokens:
        if tok.kind == "id" and tok.value == "MemoryBroker":
            an.emit(f, tok.line, "shard-affinity",
                    "`MemoryBroker` named outside core/memory_broker.* and "
                    "core/fleet_executor.*; shards must stay affine — "
                    "cross-shard coupling goes through the coordinator's "
                    "arbitration barrier (DESIGN §12)")


# --------------------------------------------------------------------------
# Breaker-affinity rule.
# --------------------------------------------------------------------------


@rule("breaker-affinity", "file")
def check_breaker_affinity(an, f):
    if f.rel.startswith(BREAKER_BLESSED_PREFIXES):
        return
    for line, target in f.quoted_includes:
        if target == "core/circuit_breaker.h":
            an.emit(f, line, "breaker-affinity",
                    '#include "core/circuit_breaker.h" outside core/ and '
                    "comm/; breakers are lifecycle *policy* (DESIGN §13) — "
                    "wrapper and storage mechanism code must not consult "
                    "or mutate admission state")
    for tok in f.tokens:
        if tok.kind == "id" and tok.value in BREAKER_NAMES:
            an.emit(f, tok.line, "breaker-affinity",
                    f"`{tok.value}` named outside core/ and comm/; the "
                    "breaker state machine is confined to the lifecycle "
                    "layer (DESIGN §13) so storms and recoveries stay a "
                    "pure function of the virtual event stream")


# --------------------------------------------------------------------------
# Cache-affinity rule.
# --------------------------------------------------------------------------


@rule("cache-affinity", "file")
def check_cache_affinity(an, f):
    if f.rel in CACHE_BLESSED:
        return
    for line, target in f.quoted_includes:
        if target in CACHE_HEADERS:
            an.emit(f, line, "cache-affinity",
                    f'#include "{target}" outside the cache files and '
                    "their blessed integration sites (DESIGN §14); the "
                    "result cache touches the scheduler at exactly two "
                    "reviewed points, and a new consumer would erode the "
                    "off-vs-cold byte-identity argument")
    for tok in f.tokens:
        if tok.kind == "id" and tok.value in CACHE_NAMES:
            an.emit(f, tok.line, "cache-affinity",
                    f"`{tok.value}` named outside the cache files and "
                    "their blessed integration sites (DESIGN §14); cache "
                    "lookups and admissions are confined so epoch gating "
                    "stays the single visibility mechanism")


# --------------------------------------------------------------------------
# Legacy rules (ported from dqs_lint.py onto the shared infrastructure).
# --------------------------------------------------------------------------


def _expected_guard(rel):
    stem = "".join(c if c.isalnum() else "_" for c in rel.rsplit(".", 1)[0])
    return f"DQSCHED_{stem.upper()}_H_"


@rule("guard", "file")
def check_guard(an, f):
    if not f.rel.endswith(".h"):
        return
    guard = _expected_guard(f.rel)
    pps = [t for t in f.tokens if t.kind == "pp"]
    ifndef = next((t for t in pps if t.value.lstrip("# ").startswith("ifndef")),
                  None)
    if ifndef is None or ifndef.value.split()[1:2] != [guard]:
        an.emit(f, ifndef.line if ifndef else 1, "guard",
                f"expected `#ifndef {guard}`")
        return
    idx = pps.index(ifndef)
    define = pps[idx + 1] if idx + 1 < len(pps) else None
    if (define is None or not define.value.lstrip("# ").startswith("define")
            or define.value.split()[1:2] != [guard]):
        an.emit(f, ifndef.line + 1, "guard", f"expected `#define {guard}`")
    last_endif = next(
        (i for i in range(len(f.lines) - 1, -1, -1)
         if f.lines[i].startswith("#endif")), None)
    want = f"#endif  // {guard}"
    if last_endif is None or f.lines[last_endif].rstrip() != want:
        an.emit(f, (last_endif or 0) + 1, "guard", f"expected `{want}`")


@rule("own-header", "file")
def check_own_header(an, f):
    if not f.rel.endswith(".cc"):
        return
    header = f.rel[:-3] + ".h"
    if header not in an.by_rel:
        return
    first = None
    for tok in f.tokens:
        if tok.kind == "pp" and tok.value.lstrip("# ").startswith("include"):
            body = tok.value.lstrip("# ")[len("include"):].strip()
            target = body[1:-1] if len(body) >= 2 else ""
            first = (tok.line, target)
            break
    if first is not None and first[1] != header:
        an.emit(f, first[0], "own-header",
                f'first include must be "{header}"')


@rule("nodiscard", "tree")
def check_nodiscard(an):
    f = an.by_rel.get("common/status.h")
    if f is None:
        return
    tokens = f.tokens
    for cls in ("Status", "Result"):
        ok = False
        decl_line = 1
        for i, tok in enumerate(tokens):
            if tok.kind != "id" or tok.value != "class":
                continue
            # class [[nodiscard]] <cls>
            rest = tokens[i + 1:i + 8]
            vals = [t.value for t in rest]
            if vals[:6] == ["[", "[", "nodiscard", "]", "]", cls]:
                ok = True
                break
            if cls in vals[:2]:
                decl_line = tok.line
        if not ok:
            an.emit(f, decl_line, "nodiscard",
                    f"class {cls} must be declared [[nodiscard]]")


_INPUT_PREFIXES = ("TryParse", "Parse", "Validate")


@rule("check-on-input", "file")
def check_on_input(an, f):
    tokens = f.tokens
    n = len(tokens)
    i = 0
    while i < n:
        tok = tokens[i]
        if tok.kind != "id" or tok.value not in ("Status", "Result"):
            i += 1
            continue
        j = i + 1
        if j < n and tokens[j].kind == "punct" and tokens[j].value == "<":
            j = skip_template_args(tokens, j)
        # Optional qualifiers: Name:: ... ending in the function name.
        fname = None
        while (j + 1 < n and tokens[j].kind == "id"
               and tokens[j + 1].kind == "punct"
               and tokens[j + 1].value == "::"):
            j += 2
        if j < n and tokens[j].kind == "id":
            fname = tokens[j].value
            j += 1
        if (fname is None
                or not any(fname.startswith(p) for p in _INPUT_PREFIXES)
                or j >= n or tokens[j].kind != "punct"
                or tokens[j].value != "("):
            i += 1
            continue
        close = matching_paren(tokens, j)
        # Definition (next significant token opens a body), or declaration?
        k = close + 1
        while (k < n and tokens[k].kind == "id"
               and tokens[k].value in ("const", "noexcept", "override",
                                       "final")):
            k += 1
        if k >= n or tokens[k].kind != "punct" or tokens[k].value != "{":
            i = close + 1
            continue
        body_end = matching_brace(tokens, k)
        for b in range(k, body_end):
            t = tokens[b]
            if (t.kind == "id" and t.value in ("DQS_CHECK", "DQS_CHECK_MSG")
                    and next_is(tokens, b, "(")):
                an.emit(f, t.line, "check-on-input",
                        f"DQS_CHECK in {fname}(): return a Status error "
                        "instead of aborting on user input")
        i = body_end + 1


@rule("raw-abort", "file")
def check_raw_abort(an, f):
    if f.rel == "common/macros.h":
        return
    tokens = f.tokens
    for i, tok in enumerate(tokens):
        if (tok.kind == "id" and tok.value in ("abort", "exit", "_Exit")
                and next_is(tokens, i, "(") and is_free_call(tokens, i)):
            an.emit(f, tok.line, "raw-abort",
                    "call DQS_CHECK/DQS_CHECK_MSG (macros.h) instead of "
                    "aborting directly")


@rule("using-std", "file")
def check_using_std(an, f):
    tokens = f.tokens
    for i, tok in enumerate(tokens):
        if (tok.kind == "id" and tok.value == "using" and i + 2 < len(tokens)
                and tokens[i + 1].kind == "id"
                and tokens[i + 1].value == "namespace"
                and tokens[i + 2].kind == "id"
                and tokens[i + 2].value == "std"):
            an.emit(f, tok.line, "using-std",
                    "`using namespace std` banned")


@rule("queue-push", "file")
def check_queue_push(an, f):
    if top_dir(f.rel) == "comm":
        return
    tokens = f.tokens
    for i, tok in enumerate(tokens):
        if (tok.kind == "id" and tok.value == "Push"
                and is_member_call(tokens, i)):
            an.emit(f, tok.line, "queue-push",
                    "per-tuple TupleQueue::Push outside src/comm; deliver "
                    "a span with PushBatch")


@rule("kernel-push", "file")
def check_kernel_push(an, f):
    if top_dir(f.rel) != "exec":
        return
    tokens = f.tokens
    for i, tok in enumerate(tokens):
        if (tok.kind == "id"
                and tok.value in ("push_back", "emplace_back", "Add")
                and is_member_call(tokens, i)):
            an.emit(f, tok.line, "kernel-push",
                    "per-tuple push_back/Add in an exec kernel; deliver a "
                    "span (AppendBatch) or mark a blessed expansion helper "
                    "with `dqs-analyze: allow(kernel-push)`")


@rule("timeout-type", "file")
def check_timeout_type(an, f):
    if not f.rel.endswith(".h"):
        return
    tokens = f.tokens
    n = len(tokens)
    i = 0
    while i < n:
        tok = tokens[i]
        if tok.kind != "id" or tok.value not in INT_TYPE_TOKENS:
            i += 1
            continue
        j = i + 1
        while (j < n and tokens[j].kind == "id"
               and tokens[j].value in ("long", "int", "unsigned")):
            j += 1
        if j >= n or tokens[j].kind != "id":
            i = j
            continue
        name = tokens[j].value
        terminator = tokens[j + 1] if j + 1 < n else None
        if (terminator is None or terminator.kind != "punct"
                or terminator.value not in (";", "=", "{")):
            i = j
            continue
        stripped = name.rstrip("_")
        lowered = stripped.lower()
        hit = next((w for w in DURATION_WORDS if w in lowered), None)
        if hit is None:
            i = j + 1
            continue
        if any(w + "s" in lowered for w in DURATION_WORDS):
            i = j + 1  # plural => event counter, not a duration
            continue
        an.emit(f, tokens[j].line, "timeout-type",
                f"`{stripped}` looks like a duration; declare it "
                "SimDuration, not a naked integer")
        i = j + 1


@rule("ancestors-index", "file")
def check_ancestors_index(an, f):
    if top_dir(f.rel) == "plan":
        return
    tokens = f.tokens
    for i, tok in enumerate(tokens):
        if (tok.kind == "id" and tok.value == "Ancestors"
                and is_member_call(tokens, i)):
            an.emit(f, tok.line, "ancestors-index",
                    "CompiledPlan::Ancestors() outside src/plan; read the "
                    "closure-index span AncestorsOf() instead")


# --------------------------------------------------------------------------
# Driver, self-test, CLI.
# --------------------------------------------------------------------------


def run(root, rules=None, print_prefix=None):
    """Analyzes `root`/src with the given rule subset; prints findings and
    returns a process exit code."""
    an = Analyzer(root, rules)
    if not an.src.is_dir():
        print(f"dqs_analyze: no src/ under {an.root}", file=sys.stderr)
        return 2
    findings = an.run()
    label = "dqs_analyze" if rules is None else "dqs_analyze (subset)"
    if findings:
        print(f"{label}: {len(findings)} finding(s)")
        for rel, line, rule_name, msg in findings:
            prefix = print_prefix if print_prefix is not None else str(
                an.src) + "/"
            print(f"  {prefix}{rel}:{line}: [{rule_name}] {msg}")
        return 1
    print(f"{label}: clean ({len(an.files)} files, "
          f"{len(an.rules)} rules)")
    return 0


def self_test(fixtures_dir):
    """Golden-finding fixture suite: every case directory holds a small
    src/ tree, a RULES file (rules to enable), and an EXPECTED file whose
    lines are `src/<path>:<line>: [<rule>]` prefixes of the findings the
    case must produce — exactly those, no more, no less."""
    fixtures = Path(fixtures_dir)
    cases = sorted(p for p in fixtures.iterdir()
                   if p.is_dir() and (p / "EXPECTED").exists())
    if not cases:
        print(f"dqs_analyze --self-test: no cases under {fixtures}",
              file=sys.stderr)
        return 2
    failures = 0
    for case in cases:
        rules = [r.strip() for r in (case / "RULES").read_text().split()
                 if r.strip()] if (case / "RULES").exists() else None
        expected = sorted(
            line.strip() for line in (case / "EXPECTED").read_text()
            .splitlines() if line.strip())
        an = Analyzer(case, rules)
        got = sorted(f"src/{rel}:{line}: [{rule_name}]"
                     for rel, line, rule_name, _ in an.run())
        if got != expected:
            failures += 1
            print(f"FAIL {case.name}")
            for miss in sorted(set(expected) - set(got)):
                print(f"  missing:    {miss}")
            for extra in sorted(set(got) - set(expected)):
                print(f"  unexpected: {extra}")
        else:
            print(f"ok   {case.name} ({len(expected)} finding(s))")
    if failures:
        print(f"dqs_analyze --self-test: {failures}/{len(cases)} case(s) "
              "FAILED")
        return 1
    print(f"dqs_analyze --self-test: all {len(cases)} cases passed")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="dqs_analyze", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("root", nargs="?", default=".",
                        help="repository root (containing src/)")
    parser.add_argument("--rules",
                        help="comma-separated rule subset (default: all)")
    parser.add_argument("--legacy-only", action="store_true",
                        help="run only the ten rules ported from dqs_lint")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--self-test", metavar="FIXTURES_DIR",
                        help="run the golden-finding fixture suite")
    args = parser.parse_args(argv)

    if args.list_rules:
        for name in sorted(RULES):
            scope, _ = RULES[name]
            legacy = " (legacy)" if name in LEGACY_RULES else ""
            print(f"{name:16s} {scope}{legacy}")
        return 0
    if args.self_test:
        return self_test(args.self_test)
    rules = None
    if args.legacy_only:
        rules = list(LEGACY_RULES)
    elif args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    return run(args.root, rules)


if __name__ == "__main__":
    sys.exit(main())
