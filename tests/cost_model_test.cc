#include "sim/cost_model.h"

#include <gtest/gtest.h>

namespace dqsched::sim {
namespace {

TEST(CostModel, InstrTimeAtHundredMips) {
  CostModel cm;
  // 100 MIPS => 1 instruction = 10 ns.
  EXPECT_EQ(cm.InstrTime(1), 10);
  EXPECT_EQ(cm.InstrTime(100), 1000);
  EXPECT_EQ(cm.InstrTime(200000), Milliseconds(2.0));
}

TEST(CostModel, TuplesPerPageMatchesTableOne) {
  CostModel cm;
  // 8 KB page / 40 B tuple = 204 tuples.
  EXPECT_EQ(cm.TuplesPerPage(), 204);
}

TEST(CostModel, PagesForTuplesRoundsUp) {
  CostModel cm;
  EXPECT_EQ(cm.PagesForTuples(0), 0);
  EXPECT_EQ(cm.PagesForTuples(1), 1);
  EXPECT_EQ(cm.PagesForTuples(204), 1);
  EXPECT_EQ(cm.PagesForTuples(205), 2);
}

TEST(CostModel, PageTransferTimeAtSixMbPerSecond) {
  CostModel cm;
  // 8192 B / 6e6 B/s = 1.365 ms.
  EXPECT_NEAR(ToMillis(cm.PageTransferTime()), 1.365, 0.01);
}

TEST(CostModel, DiskPositionTimeIsSeekPlusLatency) {
  CostModel cm;
  EXPECT_EQ(cm.DiskPositionTime(), Milliseconds(22.0));
}

TEST(CostModel, MinWaitingTimeReproducesPaperTwentyMicros) {
  // Section 5.1.3: "we obtain a value of 20 us" for a wrapper reading
  // sequentially and shipping over a 100 Mb/s network.
  CostModel cm;
  EXPECT_NEAR(ToMicros(cm.MinWaitingTime()), 20.0, 1.0);
}

TEST(CostModel, ReceiveCpuPerTupleIsMessageCostAmortized) {
  CostModel cm;
  // 200000 instr / 204 tuples ~= 980 instr ~= 9.8 us.
  EXPECT_NEAR(ToMicros(cm.ReceiveTupleCpuTime()), 9.8, 0.2);
}

TEST(CostModel, TupleIoTimeIsTransferDominated) {
  CostModel cm;
  // ~6.7 us/tuple transfer plus amortized positioning and I/O CPU.
  const double us = ToMicros(cm.TupleIoTime());
  EXPECT_GT(us, 6.5);
  EXPECT_LT(us, 9.0);
}

TEST(CostModel, BmiExceedsOneAtPaperDefaults) {
  // w_min / (2 * IO_p) > 1: materialization is beneficial even at full
  // delivery speed (Section 5.2's "important result").
  CostModel cm;
  const double bmi = static_cast<double>(cm.MinWaitingTime()) /
                     (2.0 * static_cast<double>(cm.TupleIoTime()));
  EXPECT_GT(bmi, 1.0);
  EXPECT_LT(bmi, 2.0);
}

TEST(CostModel, OperandEntryBytes) {
  CostModel cm;
  EXPECT_EQ(cm.OperandEntryBytes(), 40 + 32);
}

TEST(CostModel, DefaultsValidate) {
  EXPECT_TRUE(CostModel{}.Validate().ok());
}

TEST(CostModel, ValidationCatchesBadValues) {
  CostModel cm;
  cm.cpu_mips = 0;
  EXPECT_FALSE(cm.Validate().ok());
  cm = CostModel{};
  cm.page_size_bytes = 10;  // smaller than a tuple
  EXPECT_FALSE(cm.Validate().ok());
  cm = CostModel{};
  cm.tuples_per_message = 0;
  EXPECT_FALSE(cm.Validate().ok());
  cm = CostModel{};
  cm.disk_transfer_mb_s = -1;
  EXPECT_FALSE(cm.Validate().ok());
  cm = CostModel{};
  cm.instr_move_tuple = -5;
  EXPECT_FALSE(cm.Validate().ok());
}

}  // namespace
}  // namespace dqsched::sim
