// Query-scrambling (phase 1) tests — the paper's Section 1.2 comparison
// strategy, including its two documented weaknesses.

#include "core/scrambling.h"

#include <gtest/gtest.h>

#include "core/mediator.h"
#include "plan/canonical_plans.h"

namespace dqsched::core {
namespace {

Mediator MakeMediator(plan::QuerySetup setup, MediatorConfig config = {}) {
  Result<Mediator> m = Mediator::Create(std::move(setup.catalog),
                                        std::move(setup.plan),
                                        std::move(config));
  EXPECT_TRUE(m.ok()) << m.status().ToString();
  return std::move(m.value());
}

TEST(Scrambling, AgreesWithReferenceEverywhere) {
  for (plan::QuerySetup setup :
       {plan::TinyTwoSourceQuery(), plan::ChainThreeSourceQuery(),
        plan::PaperFigure5Query(0.02)}) {
    Mediator m = MakeMediator(std::move(setup));
    Result<ExecutionMetrics> r = m.ExecuteScrambling();
    ASSERT_TRUE(r.ok()) << r.status().ToString();  // verified internally
    EXPECT_GE(r->response_time, m.LowerBound().bound());
  }
}

TEST(Scrambling, WithoutDelaysBehavesLikeSeq) {
  // No starvation past the timeout -> no scrambling steps -> the classic
  // iterator-model execution.
  Mediator m = MakeMediator(plan::PaperFigure5Query(0.05));
  Result<ExecutionMetrics> seq = m.Execute(StrategyKind::kSeq);
  Result<ExecutionMetrics> scr = m.ExecuteScrambling(Seconds(10));
  ASSERT_TRUE(seq.ok() && scr.ok());
  EXPECT_EQ(scr->timeouts, 0);
  EXPECT_NEAR(ToSecondsF(scr->response_time), ToSecondsF(seq->response_time),
              0.05);
}

TEST(Scrambling, ReactsToInitialDelay) {
  // The scenario scrambling was designed for (paper: [15] "only considers
  // initial delays"): the very first source hangs for a while.
  plan::QuerySetup setup = plan::PaperFigure5Query(0.05);
  setup.catalog.sources[0].delay.kind = wrapper::DelayKind::kInitial;
  setup.catalog.sources[0].delay.initial_delay_ms = 500.0;
  Mediator m = MakeMediator(std::move(setup));
  Result<ExecutionMetrics> seq = m.Execute(StrategyKind::kSeq);
  Result<ExecutionMetrics> scr = m.ExecuteScrambling(Milliseconds(20));
  ASSERT_TRUE(seq.ok() && scr.ok());
  EXPECT_GT(scr->timeouts, 0);  // scrambling steps fired
  EXPECT_LT(scr->response_time, seq->response_time);
}

TEST(Scrambling, BlindToSlowDelivery) {
  // The paper's key criticism: a steady trickle never starves the engine
  // past any reasonable timeout, so scrambling never reacts — while DSE's
  // rate monitoring does.
  plan::QuerySetup setup = plan::PaperFigure5Query(0.05);
  setup.catalog.sources[0].delay.kind = wrapper::DelayKind::kSlow;
  setup.catalog.sources[0].delay.slow_factor = 6.0;
  Mediator m = MakeMediator(std::move(setup));
  Result<ExecutionMetrics> seq = m.Execute(StrategyKind::kSeq);
  Result<ExecutionMetrics> scr = m.ExecuteScrambling(Milliseconds(20));
  Result<ExecutionMetrics> dse = m.Execute(StrategyKind::kDse);
  ASSERT_TRUE(seq.ok() && scr.ok() && dse.ok());
  // Inter-tuple gaps (~120 us) never trip a 20 ms timeout: SCR ~ SEQ.
  EXPECT_EQ(scr->timeouts, 0);
  EXPECT_NEAR(ToSecondsF(scr->response_time), ToSecondsF(seq->response_time),
              ToSecondsF(seq->response_time) * 0.05);
  EXPECT_LT(dse->response_time, scr->response_time);
}

TEST(Scrambling, LastSourceDelayFindsNothingToScramble) {
  // "if a single problem arises with the last accessed data source,
  // scrambling will be ineffective since there is no more work to
  // scramble" [1]. C feeds the final (result) chain.
  plan::QuerySetup setup = plan::PaperFigure5Query(0.05);
  setup.catalog.sources[2].delay.kind = wrapper::DelayKind::kInitial;
  setup.catalog.sources[2].delay.initial_delay_ms = 1000.0;
  Mediator m = MakeMediator(std::move(setup));
  Result<ExecutionMetrics> scr = m.ExecuteScrambling(Milliseconds(20));
  ASSERT_TRUE(scr.ok());
  // C's initial delay is only *hit* once everything else is done; the
  // response time absorbs nearly the full second of stall.
  EXPECT_GT(scr->stalled_time, Milliseconds(600));
}

TEST(Scrambling, RejectsBadConfig) {
  plan::QuerySetup setup = plan::TinyTwoSourceQuery();
  Mediator m = MakeMediator(std::move(setup));
  EXPECT_FALSE(m.ExecuteScrambling(/*timeout=*/0).ok());
}

}  // namespace
}  // namespace dqsched::core
