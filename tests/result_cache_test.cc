// Result-cache coverage (DESIGN.md §14): epoch-gated visibility, LRU and
// version-guarded eviction in the storage layer; the accountant's
// reclaimable grant class; and the end-to-end contracts — cache-off vs
// cold-cache byte-identity on every non-wall metric, warm runs serving
// hits without ever producing a different answer, staleness under
// version bumps (with rate drift and fault storms in the mix),
// broker-pressure reclaim, cancelled queries never admitting, and
// jobs=1/2/8 byte-identity with caching on.

#include "storage/result_cache.h"

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/fleet_executor.h"
#include "core/mediator.h"
#include "core/multi_query.h"
#include "plan/canonical_plans.h"
#include "storage/memory_accountant.h"

namespace dqsched::core {
namespace {

using storage::MemoryAccountant;
using storage::ResultCache;
using storage::Tuple;

std::vector<Tuple> Segment(int64_t n, uint64_t tag) {
  std::vector<Tuple> tuples(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    tuples[static_cast<size_t>(i)].rowid = storage::Mix64(tag ^ uint64_t(i));
  }
  return tuples;
}

// ---------------------------------------------------------------------------
// Storage layer: ResultCache.

TEST(ResultCache, EpochGatingHidesSameRunAdmissions) {
  ResultCache cache(1 << 20);
  cache.BeginEpoch();
  EXPECT_GT(cache.InsertSegment(1, 7, Segment(10, 1)), 0);
  EXPECT_GT(cache.InsertResult(2, 7, 42, 0xabc), 0);
  // Admitted during the current epoch: invisible to this run's lookups.
  int64_t count = 0;
  uint64_t checksum = 0;
  EXPECT_EQ(cache.LookupSegment(1, 7), nullptr);
  EXPECT_FALSE(cache.LookupResult(2, 7, &count, &checksum));
  EXPECT_EQ(cache.counters().segment_misses, 1);
  EXPECT_EQ(cache.counters().result_misses, 1);

  // The next run sees them.
  cache.BeginEpoch();
  const std::vector<Tuple>* seg = cache.LookupSegment(1, 7);
  ASSERT_NE(seg, nullptr);
  EXPECT_EQ(seg->size(), 10u);
  ASSERT_TRUE(cache.LookupResult(2, 7, &count, &checksum));
  EXPECT_EQ(count, 42);
  EXPECT_EQ(checksum, 0xabcu);
  EXPECT_EQ(cache.counters().segment_hits, 1);
  EXPECT_EQ(cache.counters().result_hits, 1);
}

TEST(ResultCache, StaleVersionLazilyEvicts) {
  ResultCache cache(1 << 20);
  int64_t freed = 0;
  cache.SetEvictHook([&freed](int64_t bytes) { freed += bytes; });
  cache.BeginEpoch();
  const int64_t bytes = cache.InsertSegment(1, /*version_hash=*/7,
                                            Segment(10, 1));
  ASSERT_GT(bytes, 0);
  cache.BeginEpoch();
  // Same fingerprint, different version hash: a stale miss that removes
  // the entry — invalidation is purely version-driven and lazy.
  EXPECT_EQ(cache.LookupSegment(1, /*version_hash=*/8), nullptr);
  EXPECT_EQ(cache.counters().stale_invalidations, 1);
  EXPECT_EQ(cache.counters().segment_misses, 1);
  EXPECT_EQ(cache.entries(), 0);
  EXPECT_EQ(cache.resident_bytes(), 0);
  EXPECT_EQ(freed, bytes);
  // A second lookup is a plain miss, not another stale invalidation.
  EXPECT_EQ(cache.LookupSegment(1, 8), nullptr);
  EXPECT_EQ(cache.counters().stale_invalidations, 1);
}

TEST(ResultCache, LruEvictsInDeterministicRecencyOrder) {
  // Budget fits two 10-tuple segments (10*40+64 = 464 bytes each).
  ResultCache cache(2 * ResultCache::SegmentBytes(10));
  cache.BeginEpoch();
  EXPECT_GT(cache.InsertSegment(1, 0, Segment(10, 1)), 0);
  EXPECT_GT(cache.InsertSegment(2, 0, Segment(10, 2)), 0);
  cache.BeginEpoch();
  // Touch 1 so 2 is the LRU victim when 3 needs room.
  ASSERT_NE(cache.LookupSegment(1, 0), nullptr);
  EXPECT_GT(cache.InsertSegment(3, 0, Segment(10, 3)), 0);
  EXPECT_EQ(cache.counters().evictions, 1);
  cache.BeginEpoch();
  EXPECT_NE(cache.LookupSegment(1, 0), nullptr);
  EXPECT_EQ(cache.LookupSegment(2, 0), nullptr);
  EXPECT_NE(cache.LookupSegment(3, 0), nullptr);

  // An entry larger than the whole budget is rejected outright.
  EXPECT_EQ(cache.InsertSegment(4, 0, Segment(1000, 4)), 0);
  EXPECT_EQ(cache.entries(), 2);
}

TEST(ResultCache, EvictLruAndTrimToFreeBytes) {
  ResultCache cache(1 << 20);
  cache.BeginEpoch();
  for (uint64_t f = 1; f <= 4; ++f) {
    ASSERT_GT(cache.InsertSegment(f, 0, Segment(10, f)), 0);
  }
  const int64_t one = ResultCache::SegmentBytes(10);
  // EvictLru frees at least the requested amount, oldest first.
  EXPECT_EQ(cache.EvictLru(1), one);
  EXPECT_EQ(cache.entries(), 3);
  cache.TrimTo(one);
  EXPECT_EQ(cache.entries(), 1);
  EXPECT_LE(cache.resident_bytes(), one);
  EXPECT_EQ(cache.counters().evictions, 3);
  cache.BeginEpoch();
  // The survivor is the most recently admitted fingerprint.
  EXPECT_NE(cache.LookupSegment(4, 0), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.entries(), 0);
  EXPECT_EQ(cache.resident_bytes(), 0);
}

// ---------------------------------------------------------------------------
// Accountant: the reclaimable grant class.

TEST(MemoryAccountant, FirmGrantsStealReclaimableBytes) {
  MemoryAccountant accountant(100);
  int64_t reclaimed = 0;
  accountant.SetReclaimer([&](int64_t deficit) {
    // The cache's steal path: free the deficit, report it back.
    reclaimed += deficit;
    accountant.ReleaseReclaimable(deficit);
  });
  accountant.GrantReclaimable(60);
  // Reclaimable bytes are invisible to the scheduling-facing accessors.
  EXPECT_EQ(accountant.available(), 100);
  EXPECT_EQ(accountant.peak(), 0);
  EXPECT_EQ(accountant.headroom(), 40);

  // A firm grant that fits the budget succeeds and steals the overlap.
  ASSERT_TRUE(accountant.Grant(80).ok());
  EXPECT_EQ(reclaimed, 40);
  EXPECT_EQ(accountant.reclaimable(), 20);
  EXPECT_EQ(accountant.granted(), 80);
  EXPECT_EQ(accountant.peak(), 80);

  // Over-budget firm grants still fail — the cache cannot extend the
  // budget, only yield back what it borrowed.
  EXPECT_FALSE(accountant.Grant(30).ok());
  EXPECT_EQ(accountant.reclaimable(), 20);
  accountant.Release(80);
  accountant.ReleaseReclaimable(20);
}

// ---------------------------------------------------------------------------
// End-to-end equivalence and warm-path tests.

/// Every simulated field of a MultiQueryMetrics except the CacheStats
/// counters (which, like planning_host_seconds, are outside the
/// off-vs-cold byte-identity contract).
std::string MqFingerprint(const MultiQueryMetrics& m) {
  std::ostringstream os;
  for (SimDuration t : m.response_times) os << t << '/';
  for (QueryStatus s : m.statuses) os << static_cast<int>(s) << '/';
  os << m.makespan << '/' << m.mean_response << '/'
     << m.total_degradations << '/' << m.total_result_tuples << '/'
     << m.peak_memory_bytes << '/' << m.disk.pages_read << '/'
     << m.disk.pages_written << '/' << m.network.tuples_received << '/'
     << m.temps.temps_created << '/' << m.fault.stalls_injected << '/'
     << m.fault.sources_killed << '/' << m.fault.sources_dead << '/'
     << m.fault.partial_result << '/' << m.fault.deadline_hit;
  return os.str();
}

/// Every virtual field of a fleet run except host wall time and the
/// CacheStats counters.
std::string FleetFingerprint(const FleetMetrics& m) {
  std::ostringstream os;
  for (const FleetQueryOutcome& q : m.queries) {
    os << q.uid << '/' << q.shard << '/' << q.est_bytes << '/' << q.arrival
       << '/' << q.admitted << '/' << q.joined << '/' << q.completed << '/'
       << q.completion_latency << '/' << q.metrics.response_time << '/'
       << q.metrics.busy_time << '/' << q.metrics.result_count << '/'
       << q.metrics.result_checksum << '/' << q.metrics.degradations << '/'
       << q.metrics.operand_spills << '/' << q.metrics.peak_memory_bytes
       << '/' << static_cast<int>(q.status) << '/' << q.attempts << '\n';
  }
  for (const FleetShardOutcome& s : m.shards) {
    os << s.queries << '/' << s.makespan << '/' << s.busy_time << '/'
       << s.peak_memory_bytes << '/' << s.disk.pages_read << '/'
       << s.network.tuples_received << '/' << s.temps.temps_created << '\n';
  }
  os << m.makespan << '/' << m.rounds << '/' << m.broker.grants_issued << '/'
     << m.broker.releases_applied << '/' << m.broker.queued_admissions << '/'
     << m.broker.forced_admissions << '/' << m.broker.peak_outstanding_bytes;
  for (int64_t c : m.status_counts) os << '/' << c;
  return os.str();
}

std::string CacheCounterString(const CacheStats& c) {
  std::ostringstream os;
  os << c.segment_hits << '/' << c.segment_misses << '/' << c.result_hits
     << '/' << c.result_misses << '/' << c.admitted_segments << '/'
     << c.admitted_results << '/' << c.stale_invalidations << '/'
     << c.evictions;
  return os.str();
}

std::vector<plan::QuerySetup> TinyTemplates() {
  std::vector<plan::QuerySetup> templates;
  templates.push_back(plan::TinyTwoSourceQuery(800, 1200));
  templates.push_back(plan::TinyTwoSourceQuery(1200, 600));
  return templates;
}

std::vector<FleetQuerySpec> Stream(int n) {
  std::vector<FleetQuerySpec> workload;
  for (int i = 0; i < n; ++i) {
    FleetQuerySpec spec;
    spec.template_idx = i % 2;
    spec.arrival = Milliseconds(5.0 * i);
    spec.fairness =
        i % 3 == 0 ? FairnessClass::kBatch : FairnessClass::kInteractive;
    workload.push_back(spec);
  }
  return workload;
}

FleetConfig CachingConfig() {
  FleetConfig config;
  config.seed = 7;
  config.num_shards = 4;
  config.sync_turns = 64;
  config.cache.enabled = true;
  return config;
}

TEST(ResultCacheEquivalence, MultiQueryOffVsColdByteIdentical) {
  std::vector<plan::QuerySetup> mix;
  for (int i = 0; i < 3; ++i) mix.push_back(plan::PaperFigure5Query(0.02));
  for (StrategyKind kind : {StrategyKind::kSeq, StrategyKind::kDse}) {
    for (MultiMode mode : {MultiMode::kSerial, MultiMode::kShared}) {
      MultiQueryConfig off;
      off.seed = 42;
      MultiQueryConfig cold = off;
      cold.cache.enabled = true;
      auto m_off = MultiQueryMediator::Create(mix, off);
      auto m_cold = MultiQueryMediator::Create(mix, cold);
      ASSERT_TRUE(m_off.ok() && m_cold.ok());
      auto r_off = m_off->Execute(kind, mode);
      auto r_cold = m_cold->Execute(kind, mode);
      ASSERT_TRUE(r_off.ok() && r_cold.ok());
      EXPECT_EQ(MqFingerprint(*r_off), MqFingerprint(*r_cold))
          << StrategyName(kind) << '/' << MultiModeName(mode);
      // The cold run recorded cache activity — but no hits: epoch gating
      // keeps its own admissions invisible.
      EXPECT_FALSE(r_off->cache.any());
      EXPECT_EQ(r_cold->cache.result_hits + r_cold->cache.segment_hits, 0);
      EXPECT_GT(r_cold->cache.result_misses, 0);
    }
  }
}

TEST(ResultCacheEquivalence, FleetOffVsColdByteIdentical) {
  for (StrategyKind kind : {StrategyKind::kSeq, StrategyKind::kDse}) {
    FleetConfig off = CachingConfig();
    off.cache.enabled = false;
    auto f_off = FleetExecutor::Create(TinyTemplates(), Stream(10), off);
    auto f_cold =
        FleetExecutor::Create(TinyTemplates(), Stream(10), CachingConfig());
    ASSERT_TRUE(f_off.ok() && f_cold.ok());
    auto r_off = f_off->Execute(kind, 2);
    auto r_cold = f_cold->Execute(kind, 2);
    ASSERT_TRUE(r_off.ok() && r_cold.ok());
    EXPECT_EQ(FleetFingerprint(*r_off), FleetFingerprint(*r_cold))
        << StrategyName(kind);
    EXPECT_FALSE(r_off->cache.any());
    EXPECT_EQ(r_cold->cache.result_hits + r_cold->cache.segment_hits, 0);
    EXPECT_GT(r_cold->cache.admitted_results, 0);
  }
}

TEST(ResultCacheEquivalence, ColdRunByteIdenticalAcrossJobs) {
  // Caching on, fresh fleet per job count: the cold run's virtual results
  // AND its cache counters are pure functions of the virtual history.
  std::string expected_fp;
  std::string expected_counters;
  for (int jobs : {1, 2, 8}) {
    auto fleet =
        FleetExecutor::Create(TinyTemplates(), Stream(10), CachingConfig());
    ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
    auto r = fleet->Execute(StrategyKind::kDse, jobs);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    if (expected_fp.empty()) {
      expected_fp = FleetFingerprint(*r);
      expected_counters = CacheCounterString(r->cache);
    } else {
      EXPECT_EQ(FleetFingerprint(*r), expected_fp) << "jobs=" << jobs;
      EXPECT_EQ(CacheCounterString(r->cache), expected_counters)
          << "jobs=" << jobs;
    }
  }
}

TEST(ResultCacheWarm, WarmRunByteIdenticalAcrossJobs) {
  // Warm-path determinism: warmup + measured run at each job count on
  // fresh fleets; the measured run serves hits and its every virtual
  // field (cache counters included) matches across jobs.
  std::string expected_fp;
  std::string expected_counters;
  for (int jobs : {1, 2, 8}) {
    auto fleet =
        FleetExecutor::Create(TinyTemplates(), Stream(10), CachingConfig());
    ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
    auto warmup = fleet->Execute(StrategyKind::kDse, jobs);
    ASSERT_TRUE(warmup.ok()) << warmup.status().ToString();
    auto r = fleet->Execute(StrategyKind::kDse, jobs);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_GT(r->cache.result_hits + r->cache.segment_hits, 0);
    if (expected_fp.empty()) {
      expected_fp = FleetFingerprint(*r);
      expected_counters = CacheCounterString(r->cache);
    } else {
      EXPECT_EQ(FleetFingerprint(*r), expected_fp) << "jobs=" << jobs;
      EXPECT_EQ(CacheCounterString(r->cache), expected_counters)
          << "jobs=" << jobs;
    }
  }
}

TEST(ResultCacheWarm, FleetWarmHitsAndNoWorseMakespan) {
  auto fleet =
      FleetExecutor::Create(TinyTemplates(), Stream(12), CachingConfig());
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  auto cold = fleet->Execute(StrategyKind::kSeq, 2);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  auto warm = fleet->Execute(StrategyKind::kSeq, 2);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_GT(warm->cache.result_hits, 0);
  EXPECT_LE(warm->makespan, cold->makespan);
  // Hits serve the verified reference answer: result counts/checksums of
  // resolved queries equal the cold run's.
  ASSERT_EQ(warm->queries.size(), cold->queries.size());
  for (size_t i = 0; i < warm->queries.size(); ++i) {
    EXPECT_EQ(warm->queries[i].metrics.result_count,
              cold->queries[i].metrics.result_count);
    EXPECT_EQ(warm->queries[i].metrics.result_checksum,
              cold->queries[i].metrics.result_checksum);
  }
  // ResetCache restores the cold regime.
  fleet->ResetCache();
  auto recold = fleet->Execute(StrategyKind::kSeq, 2);
  ASSERT_TRUE(recold.ok());
  EXPECT_EQ(recold->cache.result_hits + recold->cache.segment_hits, 0);
  EXPECT_EQ(FleetFingerprint(*recold), FleetFingerprint(*cold));
}

TEST(ResultCacheWarm, MultiQueryWarmResolvesEveryQuery) {
  std::vector<plan::QuerySetup> mix;
  for (int i = 0; i < 4; ++i) mix.push_back(plan::PaperFigure5Query(0.02));
  for (MultiMode mode : {MultiMode::kSerial, MultiMode::kShared}) {
    MultiQueryConfig config;
    config.seed = 42;
    config.cache.enabled = true;
    auto mediator = MultiQueryMediator::Create(mix, config);
    ASSERT_TRUE(mediator.ok());
    auto cold = mediator->Execute(StrategyKind::kDse, mode);
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    auto warm = mediator->Execute(StrategyKind::kDse, mode);
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
    // Identical queries in the mix: every one resolves from its digest
    // (the hit path re-verifies against the reference inside Execute).
    EXPECT_EQ(warm->cache.result_hits, 4) << MultiModeName(mode);
    EXPECT_LE(warm->makespan, cold->makespan);
    EXPECT_EQ(warm->total_result_tuples, cold->total_result_tuples);
    for (QueryStatus s : warm->statuses) EXPECT_EQ(s, QueryStatus::kOk);
  }
}

TEST(ResultCacheInvalidation, VersionBumpForcesStaleMissesUnderRateDrift) {
  // Bursty delivery on the first source = rate drift driving replans
  // while the cache is live; the mix still warms and still invalidates.
  std::vector<plan::QuerySetup> mix;
  for (int i = 0; i < 2; ++i) {
    plan::QuerySetup q = plan::PaperFigure5Query(0.02);
    q.catalog.sources[0].delay.kind = wrapper::DelayKind::kBursty;
    q.catalog.sources[0].delay.burst_length = 200;
    q.catalog.sources[0].delay.burst_gap_ms = 5.0;
    mix.push_back(std::move(q));
  }
  MultiQueryConfig config;
  config.seed = 42;
  config.cache.enabled = true;
  auto mediator = MultiQueryMediator::Create(std::move(mix), config);
  ASSERT_TRUE(mediator.ok());
  const int num_sources = 2 * 6;  // two paper queries, global ids 0..11
  auto cold = mediator->Execute(StrategyKind::kDse, MultiMode::kShared);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  auto warm = mediator->Execute(StrategyKind::kDse, MultiMode::kShared);
  ASSERT_TRUE(warm.ok());
  ASSERT_GT(warm->cache.result_hits, 0);

  // Declare churn on every source: all entries go stale, and the next
  // run is a (lazily re-populating) cold run again.
  for (int s = 0; s < num_sources; ++s) mediator->BumpCacheVersion(s);
  auto bumped = mediator->Execute(StrategyKind::kDse, MultiMode::kShared);
  ASSERT_TRUE(bumped.ok());
  EXPECT_EQ(bumped->cache.result_hits + bumped->cache.segment_hits, 0);
  EXPECT_GT(bumped->cache.stale_invalidations, 0);
  EXPECT_EQ(MqFingerprint(*bumped), MqFingerprint(*cold));

  // The re-admitted entries carry the bumped versions: warm again.
  auto rewarm = mediator->Execute(StrategyKind::kDse, MultiMode::kShared);
  ASSERT_TRUE(rewarm.ok());
  EXPECT_GT(rewarm->cache.result_hits, 0);
}

TEST(ResultCacheInvalidation, VersionBumpUnderFaultStorm) {
  // A correlated region outage runs over the caching fleet: storms and
  // the cache compose, and a bump still invalidates every entry.
  FleetConfig config = CachingConfig();
  config.storm.kind = wrapper::StormKind::kRegionOutage;
  config.storm.onset = Milliseconds(2);
  config.storm.outage = Milliseconds(20);
  auto fleet = FleetExecutor::Create(TinyTemplates(), Stream(10), config);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  auto cold = fleet->Execute(StrategyKind::kDse, 2);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  auto warm = fleet->Execute(StrategyKind::kDse, 2);
  ASSERT_TRUE(warm.ok());
  ASSERT_GT(warm->cache.result_hits + warm->cache.segment_hits, 0);

  // Two 2-source templates: logical keys 0..3 cover every entry.
  for (int64_t key = 0; key < 4; ++key) fleet->BumpCacheVersion(key);
  auto bumped = fleet->Execute(StrategyKind::kDse, 2);
  ASSERT_TRUE(bumped.ok());
  EXPECT_EQ(bumped->cache.result_hits + bumped->cache.segment_hits, 0);
  EXPECT_GT(bumped->cache.stale_invalidations, 0);
  EXPECT_EQ(FleetFingerprint(*bumped), FleetFingerprint(*cold));
}

TEST(ResultCacheBroker, TightBudgetReclaimsCachedBytes) {
  // Probe the admission estimates, then shrink the broker budget to the
  // largest single estimate: once anything is cached, outstanding grants
  // plus cached bytes exceed the budget at every barrier, so the broker's
  // reclaim pass trims the shard caches — work conservation measured as
  // evictions (and a warm run that lost entries to live queries).
  auto probe =
      FleetExecutor::Create(TinyTemplates(), Stream(8), CachingConfig());
  ASSERT_TRUE(probe.ok());
  auto probed = probe->Execute(StrategyKind::kDse, 1);
  ASSERT_TRUE(probed.ok());
  int64_t max_est = 1;
  for (const FleetQueryOutcome& q : probed->queries) {
    max_est = std::max(max_est, q.est_bytes);
  }

  FleetConfig config = CachingConfig();
  config.memory_budget_bytes = max_est;
  auto fleet = FleetExecutor::Create(TinyTemplates(), Stream(8), config);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  auto cold = fleet->Execute(StrategyKind::kDse, 2);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  auto warm = fleet->Execute(StrategyKind::kDse, 2);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_GT(cold->cache.evictions + warm->cache.evictions, 0);
  // Reclaim never blocks a query: everything still completes and
  // releases its grant.
  EXPECT_EQ(warm->broker.grants_issued, warm->broker.releases_applied);
  for (const FleetQueryOutcome& q : warm->queries) {
    EXPECT_TRUE(q.status == QueryStatus::kOk ||
                q.status == QueryStatus::kPartial)
        << static_cast<int>(q.status);
  }
}

TEST(ResultCacheLifecycle, CancelledQueriesAdmitNothing) {
  // Fleet: a tight per-attempt deadline cancels queries mid-flight; only
  // the cleanly finished (kOk) queries may admit result digests.
  FleetConfig config = CachingConfig();
  config.deadline_budget = Milliseconds(2);
  config.max_attempts = 2;
  auto fleet = FleetExecutor::Create(TinyTemplates(), Stream(10), config);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  auto r = fleet->Execute(StrategyKind::kDse, 2);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const int64_t ok =
      r->status_counts[static_cast<size_t>(QueryStatus::kOk)];
  EXPECT_LT(ok, 10);  // the deadline actually fired on someone
  EXPECT_EQ(r->cache.admitted_results, ok);
  // A later warm run can therefore hit at most the ok queries' digests.
  auto warm = fleet->Execute(StrategyKind::kDse, 2);
  ASSERT_TRUE(warm.ok());
  EXPECT_LE(warm->cache.result_hits, 10);
}

TEST(ResultCacheLifecycle, PartialMediatorRunAdmitsNoResultDigest) {
  // Single mediator, a source death abandoned under the partial-results
  // policy: the incomplete result digest must not be cached (segments of
  // cleanly completed MFs may be).
  MediatorConfig config;
  config.seed = 42;
  config.cache.enabled = true;
  {
    const plan::QuerySetup setup = plan::TinyTwoSourceQuery();
    auto mediator = Mediator::Create(setup.catalog, setup.plan, config);
    ASSERT_TRUE(mediator.ok());
    auto healthy = mediator->Execute(StrategyKind::kDse);
    ASSERT_TRUE(healthy.ok());
    EXPECT_FALSE(healthy->fault.partial_result);
    EXPECT_EQ(healthy->cache.admitted_results, 1);
  }
  plan::QuerySetup setup = plan::TinyTwoSourceQuery();
  wrapper::FaultSpec death;
  death.kind = wrapper::FaultKind::kDeath;
  death.at_tuple = 500;
  setup.catalog.sources[0].faults.events = {death};
  config.strategy.fault.partial_results = true;
  auto mediator = Mediator::Create(setup.catalog, setup.plan, config);
  ASSERT_TRUE(mediator.ok());
  auto partial = mediator->Execute(StrategyKind::kDse);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  ASSERT_TRUE(partial->fault.partial_result);
  EXPECT_EQ(partial->cache.admitted_results, 0);
}

}  // namespace
}  // namespace dqsched::core
