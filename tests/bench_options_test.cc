// Coverage for the bench harness's option parsing (bench/bench_common.h):
// the strict TryParseOptions behind every bench binary's command line.

#include "bench_common.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace dqsched::bench {
namespace {

std::optional<BenchOptions> Parse(std::vector<std::string> args,
                                  std::string* error,
                                  double default_scale = 1.0) {
  std::vector<std::string> storage;
  storage.push_back("bench_test");
  for (std::string& a : args) storage.push_back(std::move(a));
  std::vector<char*> argv;
  for (std::string& s : storage) argv.push_back(s.data());
  return TryParseOptions(static_cast<int>(argv.size()), argv.data(),
                         default_scale, error);
}

TEST(BenchOptionsTest, DefaultsAreSane) {
  std::string error;
  const auto options = Parse({}, &error);
  ASSERT_TRUE(options.has_value()) << error;
  EXPECT_DOUBLE_EQ(options->scale, 1.0);
  EXPECT_EQ(options->repeats, 1);
  EXPECT_EQ(options->seed, 42u);
  EXPECT_EQ(options->jobs, 0);  // 0 = hardware concurrency
  EXPECT_FALSE(options->csv);
  EXPECT_FALSE(options->walls);
}

TEST(BenchOptionsTest, DefaultScaleIsPerBench) {
  std::string error;
  const auto options = Parse({}, &error, 0.3);
  ASSERT_TRUE(options.has_value()) << error;
  EXPECT_DOUBLE_EQ(options->scale, 0.3);
}

TEST(BenchOptionsTest, AcceptsEveryFlag) {
  std::string error;
  const auto options =
      Parse({"--scale=0.5", "--repeats=3", "--seed=7", "--jobs=4", "--csv",
             "--walls"},
            &error);
  ASSERT_TRUE(options.has_value()) << error;
  EXPECT_DOUBLE_EQ(options->scale, 0.5);
  EXPECT_EQ(options->repeats, 3);
  EXPECT_EQ(options->seed, 7u);
  EXPECT_EQ(options->jobs, 4);
  EXPECT_TRUE(options->csv);
  EXPECT_TRUE(options->walls);
}

TEST(BenchOptionsTest, JobsZeroIsExplicitlyAllowed) {
  std::string error;
  const auto options = Parse({"--jobs=0"}, &error);
  ASSERT_TRUE(options.has_value()) << error;
  EXPECT_EQ(options->jobs, 0);
}

TEST(BenchOptionsTest, RejectsUnknownFlag) {
  std::string error;
  EXPECT_FALSE(Parse({"--bogus=1"}, &error).has_value());
  EXPECT_NE(error.find("--bogus=1"), std::string::npos);
}

TEST(BenchOptionsTest, RejectsGarbageValues) {
  std::string error;
  EXPECT_FALSE(Parse({"--jobs=two"}, &error).has_value());
  EXPECT_FALSE(Parse({"--jobs=3x"}, &error).has_value());
  EXPECT_FALSE(Parse({"--jobs="}, &error).has_value());
  EXPECT_FALSE(Parse({"--jobs=-2"}, &error).has_value());
  EXPECT_FALSE(Parse({"--scale=fast"}, &error).has_value());
  EXPECT_FALSE(Parse({"--repeats=1.5"}, &error).has_value());
  EXPECT_FALSE(Parse({"--seed=-1"}, &error).has_value());
}

TEST(BenchOptionsTest, RejectsOutOfRangeValues) {
  std::string error;
  EXPECT_FALSE(Parse({"--scale=0"}, &error).has_value());
  EXPECT_FALSE(Parse({"--scale=-1"}, &error).has_value());
  EXPECT_FALSE(Parse({"--repeats=0"}, &error).has_value());
}

}  // namespace
}  // namespace dqsched::bench
