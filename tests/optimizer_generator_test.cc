#include <gtest/gtest.h>

#include "plan/optimizer.h"
#include "plan/query_generator.h"

namespace dqsched::plan {
namespace {

wrapper::Catalog ThreeRelCatalog() {
  wrapper::Catalog catalog;
  const int64_t cards[] = {100000, 500, 40000};
  for (int i = 0; i < 3; ++i) {
    wrapper::SourceSpec s;
    s.relation.name = "R" + std::to_string(i);
    s.relation.cardinality = cards[i];
    catalog.sources.push_back(s);
  }
  return catalog;
}

TEST(Optimizer, SingleRelationIsAScan) {
  wrapper::Catalog catalog;
  wrapper::SourceSpec s;
  s.relation.name = "Solo";
  s.relation.cardinality = 10;
  catalog.sources.push_back(s);
  Result<Plan> plan = OptimizeBushy(catalog, {});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->ToString(catalog), "Solo");
}

TEST(Optimizer, ProducesValidPlan) {
  wrapper::Catalog catalog = ThreeRelCatalog();
  std::vector<JoinEdge> edges = {
      {0, 0, 1, 0, 1000},
      {1, 1, 2, 0, 400},
  };
  // Domains must be reflected in the catalog for downstream execution.
  catalog.source(0).relation.key_domain[0] = 1000;
  catalog.source(1).relation.key_domain[0] = 1000;
  catalog.source(1).relation.key_domain[1] = 400;
  catalog.source(2).relation.key_domain[0] = 400;
  Result<Plan> plan = OptimizeBushy(catalog, edges);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan->Validate(catalog).ok());
}

TEST(Optimizer, PrefersSmallBuildSides) {
  // R1 (500 tuples) joins both big relations; the optimizer should avoid
  // building hash tables over the 100K relation when a cheap order exists.
  wrapper::Catalog catalog = ThreeRelCatalog();
  std::vector<JoinEdge> edges = {
      {0, 0, 1, 0, 100000},  // selective: |R0 x R1| ~ 500
      {1, 1, 2, 0, 500},     // |.. x R2| ~ 40000
  };
  catalog.source(0).relation.key_domain[0] = 100000;
  catalog.source(1).relation.key_domain[0] = 100000;
  catalog.source(1).relation.key_domain[1] = 500;
  catalog.source(2).relation.key_domain[0] = 500;
  Result<Plan> plan = OptimizeBushy(catalog, edges);
  ASSERT_TRUE(plan.ok());
  const double cost = EstimatePlanCost(*plan, catalog);
  // A right-deep alternative that probes with R2 last:
  Plan naive;
  const NodeId r0 = naive.AddScan(0);
  const NodeId r1 = naive.AddScan(1);
  const NodeId r2 = naive.AddScan(2);
  const NodeId j1 = naive.AddHashJoin(r1, r0, /*R1.f0*/ 0, /*R0.f0*/ 0);
  naive.SetRoot(naive.AddHashJoin(r2, j1, 0, /*carrier R0... */ 0));
  // The naive plan may not even be key-correct; only compare when valid.
  EXPECT_GT(cost, 0.0);
  EXPECT_LE(cost, 500.0 + 40000.0 + 1.0);  // DP should find the cheap order
}

TEST(Optimizer, RejectsNonTreeGraphs) {
  wrapper::Catalog catalog = ThreeRelCatalog();
  // Too few edges (disconnected).
  EXPECT_FALSE(OptimizeBushy(catalog, {{0, 0, 1, 0, 10}}).ok());
  // A cycle.
  std::vector<JoinEdge> cyclic = {
      {0, 0, 1, 0, 10}, {1, 1, 2, 0, 10}, {2, 1, 0, 1, 10}};
  EXPECT_FALSE(OptimizeBushy(catalog, cyclic).ok());
}

TEST(Optimizer, RejectsFieldReuse) {
  wrapper::Catalog catalog = ThreeRelCatalog();
  std::vector<JoinEdge> edges = {
      {0, 0, 1, 0, 10},
      {1, 0, 2, 0, 10},  // R1 field 0 used twice
  };
  EXPECT_FALSE(OptimizeBushy(catalog, edges).ok());
}

TEST(Generator, JoinGraphIsSpanningTree) {
  GeneratorConfig config;
  config.num_sources = 8;
  config.seed = 3;
  const GeneratedGraph graph = GenerateJoinGraph(config);
  EXPECT_EQ(graph.edges.size(), 7u);
  EXPECT_EQ(graph.catalog.num_sources(), 8);
  EXPECT_TRUE(graph.catalog.Validate().ok());
}

TEST(Generator, OptimizerPipelineYieldsValidPlans) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    GeneratorConfig config;
    config.num_sources = 6;
    config.seed = seed;
    Result<QuerySetup> setup = GenerateBushyQuery(config, /*use_optimizer=*/true);
    ASSERT_TRUE(setup.ok()) << "seed " << seed << ": "
                            << setup.status().ToString();
    EXPECT_TRUE(setup->plan.Validate(setup->catalog).ok()) << "seed " << seed;
  }
}

TEST(Generator, RandomShapePipelineYieldsValidPlans) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    GeneratorConfig config;
    config.num_sources = 7;
    config.seed = seed;
    Result<QuerySetup> setup = GenerateBushyQuery(config, false);
    ASSERT_TRUE(setup.ok()) << "seed " << seed;
    EXPECT_TRUE(setup->plan.Validate(setup->catalog).ok()) << "seed " << seed;
  }
}

TEST(Generator, DeterministicForSeed) {
  GeneratorConfig config;
  config.num_sources = 5;
  config.seed = 77;
  Result<QuerySetup> a = GenerateBushyQuery(config, false);
  Result<QuerySetup> b = GenerateBushyQuery(config, false);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->plan.ToString(a->catalog), b->plan.ToString(b->catalog));
  for (int s = 0; s < 5; ++s) {
    EXPECT_EQ(a->catalog.source(s).relation.cardinality,
              b->catalog.source(s).relation.cardinality);
  }
}

TEST(Generator, CardinalitiesWithinConfiguredRange) {
  GeneratorConfig config;
  config.num_sources = 6;
  config.min_cardinality = 100;
  config.max_cardinality = 200;
  config.seed = 5;
  Result<QuerySetup> setup = GenerateBushyQuery(config, false);
  ASSERT_TRUE(setup.ok());
  for (const auto& s : setup->catalog.sources) {
    EXPECT_GE(s.relation.cardinality, 100);
    EXPECT_LE(s.relation.cardinality, 200);
  }
}

TEST(Generator, SingleSourceQuery) {
  GeneratorConfig config;
  config.num_sources = 1;
  Result<QuerySetup> setup = GenerateBushyQuery(config, false);
  ASSERT_TRUE(setup.ok());
  EXPECT_TRUE(setup->plan.Validate(setup->catalog).ok());
}

}  // namespace
}  // namespace dqsched::plan
