// Incremental-plan-cache equivalence: a warm Dqs (carrying its plan cache
// across phases) must emit exactly the SchedulingPlan a cold Dqs computes
// from scratch on the same state — through rate drift, degradations, CF
// activations, fragment completions, and DQO memory splits (DESIGN.md §9).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/dqp.h"
#include "core/dqs.h"
#include "core/multi_query.h"
#include "plan/canonical_plans.h"
#include "wrapper/wrapper.h"

namespace dqsched::core {
namespace {

class PlanCacheTest : public ::testing::Test {
 protected:
  void Init(plan::QuerySetup setup, int64_t memory = 64 << 20) {
    setup_ = std::move(setup);
    auto compiled = plan::Compile(setup_.plan, setup_.catalog);
    ASSERT_TRUE(compiled.ok());
    compiled_ = std::move(compiled.value());
    ASSERT_TRUE(plan::Annotate(&compiled_, setup_.catalog, cost_).ok());
    ctx_ = std::make_unique<exec::ExecContext>(&cost_, comm_config_, memory);
    data_.reserve(static_cast<size_t>(setup_.catalog.num_sources()));
    for (SourceId s = 0; s < setup_.catalog.num_sources(); ++s) {
      data_.push_back(storage::GenerateRelation(
          setup_.catalog.source(s).relation, s, Rng(s + 1)));
      ctx_->comm.AddSource(
          std::make_unique<wrapper::SimWrapper>(
              s, &data_.back(), setup_.catalog.source(s).delay, s + 11),
          static_cast<double>(cost_.MinWaitingTime()));
    }
    state_ = std::make_unique<ExecutionState>(&compiled_, ctx_.get(),
                                              ExecutionOptions{});
  }

  static void ExpectPlansIdentical(const SchedulingPlan& warm,
                                   const SchedulingPlan& cold, int phase) {
    ASSERT_EQ(warm.fragments, cold.fragments) << "planning phase " << phase;
    ASSERT_EQ(warm.critical_ns.size(), cold.critical_ns.size());
    for (size_t i = 0; i < warm.critical_ns.size(); ++i) {
      // Bitwise, not approximate: the cache claims byte-identity.
      EXPECT_EQ(warm.critical_ns[i], cold.critical_ns[i])
          << "phase " << phase << " priority " << i;
      EXPECT_EQ(std::signbit(warm.critical_ns[i]),
                std::signbit(cold.critical_ns[i]));
    }
  }

  /// Runs the single-query DSE loop with a warm scheduler, re-deriving
  /// every plan with a cold scheduler on the identical state. The cold
  /// call runs second: the warm call's state mutations (degradations, CF
  /// activations, splits) are idempotent fixed points by then, so both
  /// see the same state and comm estimates.
  void RunDseComparingWarmAndCold(Dqs& warm) {
    Dqp dqp{DqpConfig{}};
    Dqo dqo;
    int phase = 0;
    while (!state_->QueryDone()) {
      ASSERT_LT(++phase, 100000) << "livelock";
      Result<SchedulingPlan> warm_sp = warm.ComputePlan(*state_, *ctx_, dqo);
      ASSERT_TRUE(warm_sp.ok()) << warm_sp.status().ToString();
      Dqs cold{DqsConfig{}};
      Result<SchedulingPlan> cold_sp = cold.ComputePlan(*state_, *ctx_, dqo);
      ASSERT_TRUE(cold_sp.ok()) << cold_sp.status().ToString();
      ExpectPlansIdentical(*warm_sp, *cold_sp, phase);

      Result<Event> evt = dqp.RunPhase(*state_, *warm_sp, *ctx_);
      ASSERT_TRUE(evt.ok()) << evt.status().ToString();
      switch (evt->kind) {
        case EventKind::kEndOfQf:
          state_->OnFragmentFinished(evt->fragment, *ctx_);
          break;
        case EventKind::kMemoryOverflow:
          ASSERT_TRUE(dqo.HandleMemoryOverflow(
                          *state_, *ctx_,
                          state_->FragmentChain(evt->fragment))
                          .ok());
          break;
        case EventKind::kRateChange:
        case EventKind::kTimeout:
        case EventKind::kPlanExhausted:
          break;  // replan
        default:
          FAIL() << "unexpected event " << EventKindName(evt->kind);
      }
    }
  }

  sim::CostModel cost_;
  comm::CommConfig comm_config_;
  plan::QuerySetup setup_;
  plan::CompiledPlan compiled_;
  std::vector<storage::Relation> data_;
  std::unique_ptr<exec::ExecContext> ctx_;
  std::unique_ptr<ExecutionState> state_;
};

TEST_F(PlanCacheTest, WarmMatchesColdThroughDegradationAndCompletion) {
  // The paper workload exercises every invalidation source: estimator
  // warm-up rate drift, four degradations, CF activations as ancestors
  // finish, and fragment completions down to the result chain.
  Init(plan::PaperFigure5Query(0.05));
  Dqs warm{DqsConfig{}};
  RunDseComparingWarmAndCold(warm);
  EXPECT_TRUE(state_->QueryDone());
  EXPECT_GE(state_->degradations(), 1);
  EXPECT_GE(state_->cf_activations(), 1);
  // The cache must actually have been exercised, not rebuilt every phase.
  EXPECT_GT(warm.incremental_replans(), 0);
  EXPECT_GT(warm.full_replans(), 0);
  EXPECT_EQ(warm.full_replans() + warm.incremental_replans(),
            warm.planning_phases());
}

TEST_F(PlanCacheTest, WarmMatchesColdThroughDqoSplits) {
  // 600 KB over ChainThreeSourceQuery forces DQO memory splits (see
  // MemoryOverflowRecoversViaDqoSplit); every split bumps the structural
  // version and must flush the candidate cache.
  Init(plan::ChainThreeSourceQuery(2.0), /*memory=*/600000);
  Dqs warm{DqsConfig{}};
  RunDseComparingWarmAndCold(warm);
  EXPECT_TRUE(state_->QueryDone());
  EXPECT_GE(state_->dqo_splits(), 1);
}

TEST_F(PlanCacheTest, RateDriftReplanIsServedIncrementally) {
  Init(plan::PaperFigure5Query(0.05));
  Dqs warm{DqsConfig{}};
  Dqp dqp{DqpConfig{}};
  Dqo dqo;
  // Phase 1 (cold by definition), then run until the first RateChange.
  Result<SchedulingPlan> sp = warm.ComputePlan(*state_, *ctx_, dqo);
  ASSERT_TRUE(sp.ok());
  EXPECT_EQ(warm.full_replans(), 1);
  int guard = 0;
  for (;;) {
    ASSERT_LT(++guard, 100000);
    Result<Event> evt = dqp.RunPhase(*state_, *sp, *ctx_);
    ASSERT_TRUE(evt.ok());
    if (evt->kind == EventKind::kRateChange) break;
    ASSERT_NE(evt->kind, EventKind::kEndOfQf)
        << "query finished before any rate drift";
  }
  // The drift replan touches no structure: it must be incremental. (The
  // estimator warm-up typically degrades chains in the same call, which
  // bumps the structural version *inside* the phase — after the cache
  // check — so the phase itself still counts as incremental.)
  sp = warm.ComputePlan(*state_, *ctx_, dqo);
  ASSERT_TRUE(sp.ok());
  EXPECT_EQ(warm.incremental_replans(), 1);
}

TEST(TargetedReplans, SharedMixStaysCorrect) {
  // targeted_replans routes RateChange replans by source ownership; the
  // metrics may legitimately differ from the default, but every query's
  // result must still verify against its reference answer (Create()
  // enables verify_results by default).
  std::vector<plan::QuerySetup> mix;
  mix.push_back(plan::PaperFigure5Query(0.02));
  mix.push_back(plan::TinyTwoSourceQuery());
  mix.push_back(plan::ChainThreeSourceQuery());
  MultiQueryConfig config;
  config.targeted_replans = true;
  Result<MultiQueryMediator> mediator =
      MultiQueryMediator::Create(std::move(mix), config);
  ASSERT_TRUE(mediator.ok()) << mediator.status().ToString();
  for (StrategyKind kind : {StrategyKind::kSeq, StrategyKind::kDse}) {
    Result<MultiQueryMetrics> metrics =
        mediator->Execute(kind, MultiMode::kShared);
    ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
    EXPECT_EQ(metrics->response_times.size(), 3u);
    EXPECT_GT(metrics->total_result_tuples, 0);
  }
}

}  // namespace
}  // namespace dqsched::core
