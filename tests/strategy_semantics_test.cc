// Strategy-level semantic tests: the observable behaviours that define
// SEQ, DSE, and MA beyond "right answer".

#include <gtest/gtest.h>

#include "common/table_printer.h"
#include "core/mediator.h"
#include "plan/canonical_plans.h"

namespace dqsched::core {
namespace {

Mediator MakeMediator(plan::QuerySetup setup, MediatorConfig config = {}) {
  Result<Mediator> m = Mediator::Create(std::move(setup.catalog),
                                        std::move(setup.plan),
                                        std::move(config));
  EXPECT_TRUE(m.ok()) << m.status().ToString();
  return std::move(m.value());
}

TEST(SeqSemantics, NeverTouchesTheDiskOnPipelinedPlans) {
  // Pure iterator-model execution with ample memory: no temps, no I/O.
  Mediator m = MakeMediator(plan::PaperFigure5Query(0.05));
  Result<ExecutionMetrics> r = m.Execute(StrategyKind::kSeq);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->disk.pages_written, 0);
  EXPECT_EQ(r->disk.pages_read, 0);
  EXPECT_EQ(r->degradations, 0);
  EXPECT_EQ(r->planning_phases, 0);
}

TEST(SeqSemantics, StallsForTheSumOfDelays) {
  // Response >= sum of the slowed relation's extra delivery time: SEQ
  // cannot overlap it (the paper's "lower bound equal to the sum of the
  // times needed to retrieve the data").
  plan::QuerySetup base = plan::PaperFigure5Query(0.05);
  Mediator m0 = MakeMediator(base);
  plan::QuerySetup slowed = base;
  slowed.catalog.sources[0].delay.mean_us *= 4.0;  // A: +3x its baseline
  Mediator m1 = MakeMediator(std::move(slowed));
  Result<ExecutionMetrics> before = m0.Execute(StrategyKind::kSeq);
  Result<ExecutionMetrics> after = m1.Execute(StrategyKind::kSeq);
  ASSERT_TRUE(before.ok() && after.ok());
  const double extra_retrieval =
      7500 * 3 * 20e-6;  // n_A(scaled) * 3w in seconds
  EXPECT_GE(ToSecondsF(after->response_time),
            ToSecondsF(before->response_time) + extra_retrieval * 0.8);
}

TEST(DseSemantics, DegradesExactlyTheBlockedCriticalChains) {
  Mediator m = MakeMediator(plan::PaperFigure5Query(0.05));
  Result<ExecutionMetrics> r = m.Execute(StrategyKind::kDse);
  ASSERT_TRUE(r.ok());
  // p_B, p_F, p_D, p_C are blocked at start; p_A, p_E are not.
  EXPECT_EQ(r->degradations, 4);
  EXPECT_EQ(r->cf_activations, 4);
  EXPECT_GT(r->planning_phases, 0);
}

TEST(DseSemantics, NoDegradationWhenNothingIsCritical) {
  // On a very fast network (w << c), no chain is critical and DSE should
  // not materialize anything.
  Mediator m = MakeMediator(plan::PaperFigure5Query(0.05, /*w=*/2.0));
  Result<ExecutionMetrics> r = m.Execute(StrategyKind::kDse);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->degradations, 0);
  EXPECT_EQ(r->disk.pages_written, 0);
}

TEST(DseSemantics, StallsFarLessThanSeqUnderSlowSource) {
  plan::QuerySetup setup = plan::PaperFigure5Query(0.05);
  setup.catalog.sources[0].delay.mean_us *= 5.0;
  Mediator m = MakeMediator(std::move(setup));
  Result<ExecutionMetrics> seq = m.Execute(StrategyKind::kSeq);
  Result<ExecutionMetrics> dse = m.Execute(StrategyKind::kDse);
  ASSERT_TRUE(seq.ok() && dse.ok());
  // At this scale A's stretched retrieval dominates even the total CPU
  // work, so a hard stall floor exists for any strategy; DSE still
  // overlaps everything else.
  EXPECT_LT(dse->stalled_time, seq->stalled_time * 0.85);
  EXPECT_LT(dse->response_time, seq->response_time);
}

TEST(DseSemantics, PlanningIsCheapRelativeToExecution) {
  // Section 3.3's requirement, asserted: host-side planning microseconds
  // per phase, not milliseconds.
  Mediator m = MakeMediator(plan::PaperFigure5Query(0.1));
  Result<ExecutionMetrics> r = m.Execute(StrategyKind::kDse);
  ASSERT_TRUE(r.ok());
  ASSERT_GT(r->planning_phases, 0);
  EXPECT_LT(r->planning_host_seconds / static_cast<double>(r->planning_phases),
            1e-3);
}

TEST(MaSemantics, MaterializesEveryRelationOnce) {
  Mediator m = MakeMediator(plan::PaperFigure5Query(0.05));
  Result<ExecutionMetrics> r = m.Execute(StrategyKind::kMa);
  ASSERT_TRUE(r.ok());
  // Phase 1 writes every base tuple; phase 2 reads them back.
  const sim::CostModel cost;
  int64_t total_pages = 0;
  for (const auto& s : m.catalog().sources) {
    total_pages += cost.PagesForTuples(s.relation.cardinality);
  }
  EXPECT_GE(r->disk.pages_written, total_pages);
  EXPECT_GE(r->disk.pages_read, total_pages / 2);  // cache-served smalls
  EXPECT_EQ(r->degradations, 0);
}

TEST(MaSemantics, OverlapsDelaysAcrossSeveralSlowedRelations) {
  // MA's one virtue (paper Section 5.4): simultaneous materialization
  // overlaps several sources' delays. Slow FOUR relations; MA's response
  // should sit far below the sum of their retrieval times.
  plan::QuerySetup setup = plan::PaperFigure5Query(0.05);
  double sum_retrieval = 0;
  for (int s : {0, 1, 2, 3}) {
    setup.catalog.sources[static_cast<size_t>(s)].delay.mean_us *= 6.0;
    sum_retrieval +=
        static_cast<double>(
            setup.catalog.sources[static_cast<size_t>(s)].relation
                .cardinality) *
        setup.catalog.sources[static_cast<size_t>(s)].delay.mean_us * 6.0 /
        1e6;
  }
  Mediator m = MakeMediator(std::move(setup));
  Result<ExecutionMetrics> ma = m.Execute(StrategyKind::kMa);
  Result<ExecutionMetrics> seq = m.Execute(StrategyKind::kSeq);
  ASSERT_TRUE(ma.ok() && seq.ok());
  EXPECT_LT(ma->response_time, seq->response_time);  // finally, MA wins
}

TEST(TablePrinter, AlignsAndCounts) {
  TablePrinter t({"a", "bb"});
  t.AddRow({"1", "2"});
  t.AddRow({"333", "4"});
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_EQ(TablePrinter::Num(1.23456, 2), "1.23");
}

}  // namespace
}  // namespace dqsched::core
