#include "exec/operand.h"

#include <gtest/gtest.h>

#include "exec/exec_context.h"

namespace dqsched::exec {
namespace {

class OperandTest : public ::testing::Test {
 protected:
  OperandTest() : ctx_(&cost_, comm::CommConfig{}, /*memory=*/1 << 20) {}

  std::vector<storage::Tuple> MakeTuples(int64_t n) {
    std::vector<storage::Tuple> out(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      out[static_cast<size_t>(i)].keys[0] = i % 10;
      out[static_cast<size_t>(i)].rowid = static_cast<uint64_t>(i);
    }
    return out;
  }

  sim::CostModel cost_;
  ExecContext ctx_;
};

TEST_F(OperandTest, InMemoryLifecycle) {
  Operand op(0, "test", 0);
  const auto tuples = MakeTuples(100);
  op.Append(ctx_, tuples.data(), 100, true);
  EXPECT_FALSE(op.spilled());
  EXPECT_EQ(ctx_.memory.granted(), 100 * cost_.tuple_size_bytes);
  op.Seal(ctx_);
  ASSERT_TRUE(op.Load(ctx_, true).ok());
  EXPECT_TRUE(op.loaded());
  EXPECT_EQ(op.cardinality(), 100);
  // 10 matches for each key 0..9.
  int matches = 0;
  op.index().ForEachMatch(3, [&](size_t) { ++matches; });
  EXPECT_EQ(matches, 10);
  op.ReleaseAll(ctx_);
  EXPECT_EQ(ctx_.memory.granted(), 0);
}

TEST_F(OperandTest, LoadChargesInsertCpu) {
  Operand op(0, "cpu", 0);
  const auto tuples = MakeTuples(1000);
  op.Append(ctx_, tuples.data(), 1000, true);
  op.Seal(ctx_);
  const SimTime before = ctx_.clock.now();
  ASSERT_TRUE(op.Load(ctx_, true).ok());
  EXPECT_GE(ctx_.clock.now() - before,
            cost_.InstrTime(1000 * cost_.instr_hash_insert));
}

TEST_F(OperandTest, SpillsOnMemoryPressure) {
  ExecContext tight(&cost_, comm::CommConfig{}, /*memory=*/1000);
  Operand op(0, "spill", 0);
  const auto tuples = MakeTuples(100);  // 4000 bytes > 1000 budget
  op.Append(tight, tuples.data(), 100, true);
  EXPECT_TRUE(op.spilled());
  EXPECT_EQ(tight.memory.granted(), 0);  // grants returned after spilling
  op.Seal(tight);
  EXPECT_EQ(op.cardinality(), 100);
}

TEST_F(OperandTest, SpilledLoadFailsWithoutMemoryAndRollsBack) {
  ExecContext tight(&cost_, comm::CommConfig{}, /*memory=*/1000);
  Operand op(0, "fail", 0);
  const auto tuples = MakeTuples(100);
  op.Append(tight, tuples.data(), 100, true);
  op.Seal(tight);
  const Status s = tight.memory.Grant(0);  // sanity
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(op.Load(tight, true).code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(op.loaded());
  EXPECT_EQ(tight.memory.granted(), 0);  // full rollback
}

TEST_F(OperandTest, SpilledReloadWorks) {
  ExecContext ctx(&cost_, comm::CommConfig{}, /*memory=*/20000);
  Operand op(0, "reload", 0);
  // Squeeze memory so the append spills, then release the filler.
  const int64_t filler = ctx.memory.available() - 5000;
  ASSERT_TRUE(ctx.memory.Grant(filler).ok());
  const auto tuples = MakeTuples(200);  // 8000 B > the 5000 left
  op.Append(ctx, tuples.data(), 200, true);
  ASSERT_TRUE(op.spilled());
  op.Seal(ctx);
  ctx.memory.Release(filler);
  ASSERT_TRUE(op.Load(ctx, true).ok());
  EXPECT_EQ(op.cardinality(), 200);
  int matches = 0;
  op.index().ForEachMatch(5, [&](size_t) { ++matches; });
  EXPECT_EQ(matches, 20);  // keys cycle mod 10 over 200 tuples
}

TEST_F(OperandTest, BytesToLoadReflectsState) {
  Operand op(0, "btl", 0);
  const auto tuples = MakeTuples(100);
  op.Append(ctx_, tuples.data(), 100, true);
  op.Seal(ctx_);
  // In memory: only the index is needed.
  EXPECT_EQ(op.BytesToLoad(ctx_), HashIndex::EstimateBytes(100));
  ASSERT_TRUE(op.Load(ctx_, true).ok());
  EXPECT_EQ(op.BytesToLoad(ctx_), 0);
}

TEST_F(OperandTest, EmptyOperand) {
  Operand op(0, "empty", 0);
  op.Seal(ctx_);
  ASSERT_TRUE(op.Load(ctx_, true).ok());
  EXPECT_EQ(op.cardinality(), 0);
  int matches = 0;
  op.index().ForEachMatch(1, [&](size_t) { ++matches; });
  EXPECT_EQ(matches, 0);
  op.ReleaseAll(ctx_);
}

TEST_F(OperandTest, RegistryRegistersInOrder) {
  OperandRegistry registry(2);
  Operand& a = registry.Register(0, "first", 1);
  Operand& b = registry.Register(1, "second", 2);
  EXPECT_EQ(&registry.Get(0), &a);
  EXPECT_EQ(&registry.Get(1), &b);
  EXPECT_EQ(registry.Get(1).key_field(), 2);
}

}  // namespace
}  // namespace dqsched::exec
