// Determinism-under-parallelism and stress coverage for the bench-suite's
// work-stealing runner (src/common/parallel_runner.h). Enforces the
// one-Mediator-per-thread threading contract: the same cells run serially
// and on many threads must produce identical checksums and identical
// simulated seconds. Built under -fsanitize=thread by the `tsan` CMake
// preset, this is also the data-race gate for the runner itself.

#include "common/parallel_runner.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "bench_common.h"
#include "core/mediator.h"
#include "plan/canonical_plans.h"

namespace dqsched::bench {
namespace {

TEST(ParallelRunnerTest, RunsEveryTaskExactlyOnce) {
  const ParallelRunner runner(4);
  constexpr size_t kTasks = 257;  // not a multiple of the worker count
  std::vector<std::atomic<int>> hits(kTasks);
  std::vector<std::function<void()>> tasks;
  for (size_t i = 0; i < kTasks; ++i) {
    tasks.push_back([&hits, i] { hits[i].fetch_add(1); });
  }
  runner.Run(tasks);
  for (size_t i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelRunnerTest, RunIndexedPreservesOrder) {
  const ParallelRunner runner(8);
  const std::vector<int> results = RunIndexed<int>(
      runner, 100, [](size_t i) { return static_cast<int>(i) * 3; });
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i) * 3);
  }
}

TEST(ParallelRunnerTest, StealsFromLoadedWorker) {
  // All heavy tasks land on worker 0's queue (round-robin with 2 workers
  // and even indices heavy); the run finishing at all on 8 workers with a
  // skewed load exercises the stealing path. Verified by the sum.
  const ParallelRunner runner(8);
  std::atomic<int64_t> sum(0);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.push_back([&sum, i] {
      int64_t local = 0;
      const int spin = (i % 8 == 0) ? 200000 : 10;
      for (int k = 0; k < spin; ++k) local += k % 7;
      sum.fetch_add(local >= 0 ? i : 0);
    });
  }
  runner.Run(tasks);
  EXPECT_EQ(sum.load(), 64 * 63 / 2);
}

TEST(ParallelRunnerTest, ZeroJobsMeansHardwareConcurrency) {
  EXPECT_GE(ParallelRunner(0).jobs(), 1);
  EXPECT_EQ(ParallelRunner(3).jobs(), 3);
  EXPECT_GE(ParallelRunner::DefaultJobs(), 1);
}

/// The determinism contract behind --jobs: per-cell results of a strategy
/// grid are identical whether the cells run serially or on 4 threads.
TEST(ParallelRunnerTest, ParallelExecutionMatchesSerialExactly) {
  const plan::QuerySetup setup = plan::PaperFigure5Query(0.05);
  struct CellSpec {
    core::StrategyKind kind;
    uint64_t seed;
  };
  std::vector<CellSpec> grid;
  for (uint64_t seed : {42ULL, 1234ULL}) {
    for (core::StrategyKind kind :
         {core::StrategyKind::kSeq, core::StrategyKind::kDse,
          core::StrategyKind::kMa}) {
      grid.push_back({kind, seed});
    }
  }
  auto run_all = [&](int jobs) {
    const ParallelRunner runner(jobs);
    return RunIndexed<core::ExecutionMetrics>(
        runner, grid.size(), [&](size_t i) {
          core::MediatorConfig config;
          config.seed = grid[i].seed;
          auto mediator =
              core::Mediator::Create(setup.catalog, setup.plan, config);
          EXPECT_TRUE(mediator.ok());
          auto metrics = mediator->Execute(grid[i].kind);
          EXPECT_TRUE(metrics.ok());
          return *metrics;
        });
  };
  const auto serial = run_all(1);
  const auto parallel = run_all(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].result_checksum, parallel[i].result_checksum) << i;
    EXPECT_EQ(serial[i].result_count, parallel[i].result_count) << i;
    EXPECT_EQ(serial[i].response_time, parallel[i].response_time) << i;
    EXPECT_EQ(serial[i].busy_time, parallel[i].busy_time) << i;
  }
}

/// TSan stress: many mediators executing concurrently must not share any
/// mutable state (RNG, clocks, metrics, trace sinks are all per-Mediator).
TEST(ParallelRunnerTest, ConcurrentMediatorsStress) {
  const plan::QuerySetup setup = plan::PaperFigure5Query(0.03);
  const ParallelRunner runner(8);
  const auto checksums = RunIndexed<uint64_t>(runner, 24, [&](size_t i) {
    core::MediatorConfig config;
    config.seed = 42 + (i % 3);  // several threads share each workload
    auto mediator =
        core::Mediator::Create(setup.catalog, setup.plan, config);
    EXPECT_TRUE(mediator.ok());
    auto metrics = mediator->Execute(
        i % 2 == 0 ? core::StrategyKind::kDse : core::StrategyKind::kSeq);
    EXPECT_TRUE(metrics.ok());
    return metrics->result_checksum;
  });
  // Same seed -> same workload -> same checksum, regardless of thread.
  for (size_t i = 0; i < checksums.size(); ++i) {
    EXPECT_EQ(checksums[i], checksums[i % 3]) << i;
  }
}

}  // namespace
}  // namespace dqsched::bench
