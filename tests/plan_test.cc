#include "plan/plan_node.h"

#include <gtest/gtest.h>

#include "plan/canonical_plans.h"

namespace dqsched::plan {
namespace {

wrapper::Catalog TwoSourceCatalog() {
  wrapper::Catalog catalog;
  for (const char* name : {"A", "B"}) {
    wrapper::SourceSpec s;
    s.relation.name = name;
    s.relation.cardinality = 100;
    catalog.sources.push_back(s);
  }
  return catalog;
}

TEST(Plan, BuildsSimpleJoin) {
  const auto catalog = TwoSourceCatalog();
  Plan plan;
  const NodeId a = plan.AddScan(0);
  const NodeId b = plan.AddScan(1);
  const NodeId j = plan.AddHashJoin(a, b, 0, 0);
  plan.SetRoot(j);
  EXPECT_TRUE(plan.Validate(catalog).ok());
  EXPECT_EQ(plan.size(), 3);
  EXPECT_EQ(plan.node(j).type, OpType::kHashJoin);
  EXPECT_EQ(plan.ToString(catalog), "HJ(A,B)");
}

TEST(Plan, FilterRendersSelectivity) {
  const auto catalog = TwoSourceCatalog();
  Plan plan;
  const NodeId a = plan.AddScan(0);
  plan.SetRoot(plan.AddFilter(a, 0.5));
  // Single-scan plan over source 0 only; source 1 unused is fine.
  EXPECT_TRUE(plan.Validate(catalog).ok());
  EXPECT_EQ(plan.ToString(catalog), "F0.50(A)");
}

TEST(PlanValidation, RejectsEmptyPlan) {
  Plan plan;
  EXPECT_FALSE(plan.Validate(TwoSourceCatalog()).ok());
}

TEST(PlanValidation, RejectsUnsetRoot) {
  Plan plan;
  plan.AddScan(0);
  EXPECT_FALSE(plan.Validate(TwoSourceCatalog()).ok());
}

TEST(PlanValidation, RejectsUnknownSource) {
  Plan plan;
  plan.SetRoot(plan.AddScan(7));
  EXPECT_FALSE(plan.Validate(TwoSourceCatalog()).ok());
}

TEST(PlanValidation, RejectsDoubleScanOfOneSource) {
  Plan plan;
  const NodeId a1 = plan.AddScan(0);
  const NodeId a2 = plan.AddScan(0);
  plan.SetRoot(plan.AddHashJoin(a1, a2, 0, 0));
  EXPECT_FALSE(plan.Validate(TwoSourceCatalog()).ok());
}

TEST(PlanValidation, RejectsSharedChild) {
  Plan plan;
  const NodeId a = plan.AddScan(0);
  const NodeId b = plan.AddScan(1);
  const NodeId j1 = plan.AddHashJoin(a, b, 0, 0);
  const NodeId j2 = plan.AddHashJoin(j1, b, 0, 0);  // b referenced twice
  plan.SetRoot(j2);
  EXPECT_FALSE(plan.Validate(TwoSourceCatalog()).ok());
}

TEST(PlanValidation, RejectsSelfJoinNode) {
  Plan plan;
  const NodeId a = plan.AddScan(0);
  plan.SetRoot(plan.AddHashJoin(a, a, 0, 0));
  EXPECT_FALSE(plan.Validate(TwoSourceCatalog()).ok());
}

TEST(PlanValidation, RejectsBadSelectivity) {
  Plan plan;
  plan.SetRoot(plan.AddFilter(plan.AddScan(0), 1.5));
  EXPECT_FALSE(plan.Validate(TwoSourceCatalog()).ok());
}

TEST(PlanValidation, RejectsKeyFieldOutOfRange) {
  Plan plan;
  const NodeId a = plan.AddScan(0);
  const NodeId b = plan.AddScan(1);
  plan.SetRoot(plan.AddHashJoin(a, b, storage::kTupleKeyFields, 0));
  EXPECT_FALSE(plan.Validate(TwoSourceCatalog()).ok());
}

TEST(PlanValidation, RejectsDanglingNodes) {
  Plan plan;
  const NodeId a = plan.AddScan(0);
  plan.AddScan(1);  // orphan
  plan.SetRoot(a);
  EXPECT_FALSE(plan.Validate(TwoSourceCatalog()).ok());
}

TEST(CanonicalPlans, PaperFigure5Validates) {
  const QuerySetup q = PaperFigure5Query();
  EXPECT_TRUE(q.plan.Validate(q.catalog).ok());
  EXPECT_EQ(q.catalog.num_sources(), 6);
  EXPECT_EQ(q.plan.ToString(q.catalog), "HJ(HJ(HJ(HJ(A,B),F),HJ(E,D)),C)");
}

TEST(CanonicalPlans, ScalingAppliesToCardinalities) {
  const QuerySetup q = PaperFigure5Query(0.1);
  EXPECT_EQ(q.catalog.source(0).relation.cardinality, 15000);
  EXPECT_EQ(q.catalog.source(5).relation.cardinality, 1000);
}

TEST(CanonicalPlans, MediumAndSmallSizesMatchPaper) {
  // "4 medium size (100K-200K tuples) input relations and 2 small ones
  // (10K-20K tuples)".
  const QuerySetup q = PaperFigure5Query();
  int medium = 0, small = 0;
  for (const auto& s : q.catalog.sources) {
    const int64_t c = s.relation.cardinality;
    if (c >= 100000 && c <= 200000) ++medium;
    if (c >= 10000 && c < 100000) ++small;
  }
  EXPECT_EQ(medium, 4);
  EXPECT_EQ(small, 2);
}

TEST(CanonicalPlans, TinyAndChainValidate) {
  EXPECT_TRUE(
      TinyTwoSourceQuery().plan.Validate(TinyTwoSourceQuery().catalog).ok());
  const QuerySetup chain = ChainThreeSourceQuery();
  EXPECT_TRUE(chain.plan.Validate(chain.catalog).ok());
  EXPECT_EQ(chain.plan.ToString(chain.catalog), "HJ(A,HJ(B,C))");
}

TEST(Catalog, FindByName) {
  const QuerySetup q = PaperFigure5Query();
  EXPECT_EQ(q.catalog.Find("A"), 0);
  EXPECT_EQ(q.catalog.Find("F"), 5);
  EXPECT_EQ(q.catalog.Find("Z"), kInvalidId);
}

TEST(Catalog, ValidationRejectsDuplicatesAndBadValues) {
  wrapper::Catalog catalog = TwoSourceCatalog();
  catalog.sources[1].relation.name = "A";
  EXPECT_FALSE(catalog.Validate().ok());
  catalog = TwoSourceCatalog();
  catalog.sources[0].relation.cardinality = -1;
  EXPECT_FALSE(catalog.Validate().ok());
  catalog = TwoSourceCatalog();
  catalog.sources[0].relation.key_domain[2] = 0;
  EXPECT_FALSE(catalog.Validate().ok());
  EXPECT_FALSE(wrapper::Catalog{}.Validate().ok());
}

}  // namespace
}  // namespace dqsched::plan
