#include "wrapper/delay_model.h"

#include <gtest/gtest.h>

namespace dqsched::wrapper {
namespace {

double SampleMeanUs(DelayModel& model, int64_t n, uint64_t seed = 1) {
  Rng rng(seed);
  double total = 0;
  for (int64_t i = 0; i < n; ++i) {
    total += static_cast<double>(model.NextDelay(i, rng));
  }
  return total / static_cast<double>(n) / 1e3;
}

TEST(DelayModel, ConstantIsExact) {
  DelayConfig config;
  config.kind = DelayKind::kConstant;
  config.mean_us = 15.0;
  auto model = MakeDelayModel(config);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(model->NextDelay(i, rng), Microseconds(15.0));
  }
  EXPECT_DOUBLE_EQ(model->MeanDelayNs(), 15000.0);
}

TEST(DelayModel, UniformMatchesPaperDistribution) {
  // Section 5.1.3: delay uniform in [0, 2w], mean w.
  DelayConfig config;
  config.kind = DelayKind::kUniform;
  config.mean_us = 20.0;
  auto model = MakeDelayModel(config);
  Rng rng(2);
  double max_seen = 0;
  for (int i = 0; i < 50000; ++i) {
    const double d = static_cast<double>(model->NextDelay(i, rng));
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 40000.0);
    max_seen = std::max(max_seen, d);
  }
  EXPECT_GT(max_seen, 38000.0);  // the full range is actually used
  EXPECT_NEAR(SampleMeanUs(*model, 50000), 20.0, 0.5);
}

TEST(DelayModel, InitialDelayHitsOnlyFirstTuple) {
  DelayConfig config;
  config.kind = DelayKind::kInitial;
  config.mean_us = 10.0;
  config.initial_delay_ms = 500.0;
  auto model = MakeDelayModel(config);
  Rng rng(3);
  EXPECT_GE(model->NextDelay(0, rng), Milliseconds(500.0));
  for (int i = 1; i < 100; ++i) {
    EXPECT_LT(model->NextDelay(i, rng), Milliseconds(1.0));
  }
}

TEST(DelayModel, InitialDelayExpectedTotal) {
  DelayConfig config;
  config.kind = DelayKind::kInitial;
  config.mean_us = 10.0;
  config.initial_delay_ms = 100.0;
  auto model = MakeDelayModel(config);
  EXPECT_NEAR(model->ExpectedTotalNs(1000),
              100e6 + 1000 * 10e3, 1.0);
  EXPECT_DOUBLE_EQ(model->ExpectedTotalNs(0), 0.0);
}

TEST(DelayModel, BurstyInsertsGaps) {
  DelayConfig config;
  config.kind = DelayKind::kBursty;
  config.mean_us = 5.0;
  config.burst_length = 100;
  config.burst_gap_ms = 10.0;
  auto model = MakeDelayModel(config);
  Rng rng(4);
  int long_gaps = 0;
  for (int i = 1; i <= 1000; ++i) {
    if (model->NextDelay(i, rng) > Milliseconds(0.5)) ++long_gaps;
  }
  // Every 100th tuple waits out an exponential(10ms) burst gap; a couple
  // of draws may fall under the 0.5 ms detection threshold.
  EXPECT_GE(long_gaps, 8);
  EXPECT_LE(long_gaps, 10);
}

TEST(DelayModel, BurstyMeanAccountsForGaps) {
  DelayConfig config;
  config.kind = DelayKind::kBursty;
  config.mean_us = 5.0;
  config.burst_length = 1000;
  config.burst_gap_ms = 10.0;
  auto model = MakeDelayModel(config);
  // 5 us + 10 ms / 1000 = 15 us.
  EXPECT_NEAR(model->MeanDelayNs(), 15000.0, 1.0);
  EXPECT_NEAR(SampleMeanUs(*model, 100000), 15.0, 2.0);
}

TEST(DelayModel, SlowScalesUniform) {
  DelayConfig config;
  config.kind = DelayKind::kSlow;
  config.mean_us = 20.0;
  config.slow_factor = 4.0;
  auto model = MakeDelayModel(config);
  EXPECT_NEAR(model->MeanDelayNs(), 80000.0, 1.0);
  EXPECT_NEAR(SampleMeanUs(*model, 50000), 80.0, 2.0);
}

TEST(DelayModel, ExpectedTotalDefaultsToMeanTimesN) {
  DelayConfig config;
  config.mean_us = 20.0;
  auto model = MakeDelayModel(config);
  EXPECT_DOUBLE_EQ(model->ExpectedTotalNs(1000), 1000 * 20e3);
}

TEST(DelayConfig, Validation) {
  DelayConfig ok;
  EXPECT_TRUE(ok.Validate().ok());
  DelayConfig bad = ok;
  bad.mean_us = -1;
  EXPECT_FALSE(bad.Validate().ok());
  bad = ok;
  bad.kind = DelayKind::kBursty;
  bad.burst_length = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = ok;
  bad.kind = DelayKind::kSlow;
  bad.slow_factor = 0.5;
  EXPECT_FALSE(bad.Validate().ok());
  bad = ok;
  bad.initial_delay_ms = -1;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(DelayKind, NamesAreStable) {
  EXPECT_STREQ(DelayKindName(DelayKind::kUniform), "uniform");
  EXPECT_STREQ(DelayKindName(DelayKind::kBursty), "bursty");
  EXPECT_STREQ(DelayKindName(DelayKind::kInitial), "initial");
  EXPECT_STREQ(DelayKindName(DelayKind::kSlow), "slow");
  EXPECT_STREQ(DelayKindName(DelayKind::kConstant), "constant");
}

}  // namespace
}  // namespace dqsched::wrapper
