#include "exec/chain_executor.h"

#include <gtest/gtest.h>

#include <memory>

#include "exec/exec_context.h"
#include "storage/relation.h"
#include "wrapper/wrapper.h"

namespace dqsched::exec {
namespace {

class ChainExecutorTest : public ::testing::Test {
 protected:
  ChainExecutorTest()
      : ctx_(&cost_, MakeCommConfig(), 64 << 20), operands_(4) {}

  static comm::CommConfig MakeCommConfig() {
    comm::CommConfig c;
    c.queue_capacity = 256;
    return c;
  }

  /// A source whose tuples have keys[0] = seq % 10 (deterministic joins).
  void AddSource(int64_t n) {
    auto rel = std::make_unique<storage::Relation>();
    rel->name = "S";
    rel->tuples.resize(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      rel->tuples[static_cast<size_t>(i)].keys[0] = i % 10;
      rel->tuples[static_cast<size_t>(i)].rowid = storage::MakeRowid(
          static_cast<SourceId>(relations_.size()), i);
    }
    relations_.push_back(std::move(rel));
    wrapper::DelayConfig delay;
    delay.kind = wrapper::DelayKind::kConstant;
    delay.mean_us = 1.0;
    ctx_.comm.AddSource(
        std::make_unique<wrapper::SimWrapper>(
            static_cast<SourceId>(relations_.size() - 1),
            relations_.back().get(), delay, 1),
        1000.0);
  }

  /// Runs `frag` to completion, stalling on arrivals as needed.
  void Drain(FragmentRuntime& frag) {
    while (!frag.Finished(ctx_)) {
      if (frag.Available(ctx_) > 0) {
        ASSERT_TRUE(frag.ProcessBatch(ctx_, 64).ok());
      } else {
        const SimTime next = frag.NextArrival(ctx_);
        ASSERT_NE(next, kSimTimeNever);
        ctx_.clock.StallUntil(next);
      }
    }
    frag.Close(ctx_);
  }

  sim::CostModel cost_;
  ExecContext ctx_;
  OperandRegistry operands_;
  std::vector<std::unique_ptr<storage::Relation>> relations_;
};

TEST_F(ChainExecutorTest, ScanToResultCountsEverything) {
  AddSource(500);
  FragmentSpec spec;
  spec.name = "scan";
  spec.sink = SinkKind::kResult;
  FragmentRuntime frag(std::move(spec), std::make_unique<QueueSource>(0),
                       &operands_, &ctx_.result);
  Drain(frag);
  EXPECT_EQ(ctx_.result.count(), 500);
  EXPECT_EQ(frag.stats().consumed, 500);
  EXPECT_EQ(frag.stats().produced, 500);
  EXPECT_TRUE(frag.closed());
}

TEST_F(ChainExecutorTest, FilterDropsDeterministically) {
  AddSource(2000);
  FragmentSpec spec;
  spec.name = "filter";
  plan::ChainOp op;
  op.kind = plan::ChainOpKind::kFilter;
  op.node = 7;
  op.selectivity = 0.5;
  spec.ops.push_back(op);
  spec.sink = SinkKind::kResult;
  FragmentRuntime frag(std::move(spec), std::make_unique<QueueSource>(0),
                       &operands_, &ctx_.result);
  Drain(frag);
  EXPECT_NEAR(static_cast<double>(ctx_.result.count()), 1000.0, 100.0);
}

TEST_F(ChainExecutorTest, BuildThenProbeJoins) {
  AddSource(100);  // build side: keys 0..9, 10 each
  AddSource(50);   // probe side: keys 0..9, 5 each
  Operand& operand = operands_.Register(0, "J0", 0);

  FragmentSpec bspec;
  bspec.name = "build";
  bspec.sink = SinkKind::kOperand;
  bspec.sink_join = 0;
  FragmentRuntime build(std::move(bspec), std::make_unique<QueueSource>(0),
                        &operands_, &ctx_.result);
  Drain(build);
  EXPECT_TRUE(operand.sealed());
  EXPECT_EQ(operand.cardinality(), 100);

  FragmentSpec pspec;
  pspec.name = "probe";
  plan::ChainOp op;
  op.kind = plan::ChainOpKind::kProbe;
  op.join = 0;
  op.probe_key_field = 0;
  pspec.ops.push_back(op);
  pspec.sink = SinkKind::kResult;
  FragmentRuntime probe(std::move(pspec), std::make_unique<QueueSource>(1),
                        &operands_, &ctx_.result);
  Drain(probe);
  // Every probe tuple matches 10 build tuples: 50 * 10 results.
  EXPECT_EQ(ctx_.result.count(), 500);
}

TEST_F(ChainExecutorTest, ProbeChargesCpuPerTupleAndMatch) {
  AddSource(100);
  AddSource(50);
  operands_.Register(0, "J0", 0);
  FragmentSpec bspec;
  bspec.name = "build";
  bspec.sink = SinkKind::kOperand;
  bspec.sink_join = 0;
  FragmentRuntime build(std::move(bspec), std::make_unique<QueueSource>(0),
                        &operands_, &ctx_.result);
  Drain(build);

  FragmentSpec pspec;
  pspec.name = "probe";
  plan::ChainOp op;
  op.kind = plan::ChainOpKind::kProbe;
  op.join = 0;
  pspec.ops.push_back(op);
  pspec.sink = SinkKind::kResult;
  FragmentRuntime probe(std::move(pspec), std::make_unique<QueueSource>(1),
                        &operands_, &ctx_.result);
  const SimDuration busy_before = ctx_.clock.busy_time();
  Drain(probe);
  // At least: open (100 inserts) + 50 probes + 500 produces + moves.
  const int64_t min_instr = 100 * cost_.instr_hash_insert +
                            50 * cost_.instr_hash_probe +
                            500 * cost_.instr_produce_result;
  EXPECT_GE(ctx_.clock.busy_time() - busy_before, cost_.InstrTime(min_instr));
}

TEST_F(ChainExecutorTest, TempSinkMaterializes) {
  AddSource(300);
  const TempId temp = ctx_.temps.Create("mat");
  FragmentSpec spec;
  spec.name = "MF";
  spec.sink = SinkKind::kTemp;
  spec.sink_temp = temp;
  FragmentRuntime frag(std::move(spec), std::make_unique<QueueSource>(0),
                       &operands_, &ctx_.result);
  Drain(frag);
  EXPECT_TRUE(ctx_.temps.IsSealed(temp));
  EXPECT_EQ(ctx_.temps.Cardinality(temp), 300);
}

TEST_F(ChainExecutorTest, StopSealsPartialMaterialization) {
  AddSource(1000);
  const TempId temp = ctx_.temps.Create("partial");
  FragmentSpec spec;
  spec.name = "MF";
  spec.sink = SinkKind::kTemp;
  spec.sink_temp = temp;
  FragmentRuntime frag(std::move(spec), std::make_unique<QueueSource>(0),
                       &operands_, &ctx_.result);
  ctx_.clock.StallUntil(Microseconds(200));
  ASSERT_TRUE(frag.ProcessBatch(ctx_, 64).ok());
  frag.Stop(ctx_);
  EXPECT_TRUE(frag.closed());
  EXPECT_TRUE(ctx_.temps.IsSealed(temp));
  EXPECT_EQ(ctx_.temps.Cardinality(temp), 64);
  // The unconsumed remainder stays in the queue for a successor.
  EXPECT_GT(ctx_.comm.RemainingTuples(0), 0);
}

TEST_F(ChainExecutorTest, OpenFailsWithoutMemoryAndReportsResourceExhausted) {
  AddSource(10000);
  AddSource(10);
  ExecContext tight(&cost_, MakeCommConfig(), /*memory=*/200000);
  // Build the operand in the tight context via direct appends (spills).
  Operand& operand = operands_.Register(0, "big", 0);
  std::vector<storage::Tuple> tuples(10000);
  for (int i = 0; i < 10000; ++i) tuples[static_cast<size_t>(i)].keys[0] = i;
  operand.Append(tight, tuples.data(), 10000, true);
  operand.Seal(tight);
  ASSERT_TRUE(operand.spilled());

  // Fill the remaining budget so the reload cannot fit.
  ASSERT_TRUE(tight.memory.Grant(tight.memory.available()).ok());

  FragmentSpec spec;
  spec.name = "probe";
  plan::ChainOp op;
  op.kind = plan::ChainOpKind::kProbe;
  op.join = 0;
  spec.ops.push_back(op);
  spec.sink = SinkKind::kResult;
  FragmentRuntime frag(std::move(spec), std::make_unique<QueueSource>(1),
                       &operands_, &tight.result);
  EXPECT_EQ(frag.Open(tight).code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(frag.opened());
}

TEST_F(ChainExecutorTest, TakeSourceInvalidatesRuntime) {
  AddSource(10);
  FragmentSpec spec;
  spec.name = "husk";
  spec.sink = SinkKind::kResult;
  FragmentRuntime frag(std::move(spec), std::make_unique<QueueSource>(0),
                       &operands_, &ctx_.result);
  auto source = frag.TakeSource();
  EXPECT_NE(source, nullptr);
  EXPECT_TRUE(frag.closed());
}

TEST_F(ChainExecutorTest, CloseReleasesProbedOperands) {
  AddSource(100);
  AddSource(10);
  operands_.Register(0, "rel", 0);
  FragmentSpec bspec;
  bspec.name = "build";
  bspec.sink = SinkKind::kOperand;
  bspec.sink_join = 0;
  FragmentRuntime build(std::move(bspec), std::make_unique<QueueSource>(0),
                        &operands_, &ctx_.result);
  Drain(build);
  FragmentSpec pspec;
  pspec.name = "probe";
  plan::ChainOp op;
  op.kind = plan::ChainOpKind::kProbe;
  op.join = 0;
  pspec.ops.push_back(op);
  pspec.sink = SinkKind::kResult;
  FragmentRuntime probe(std::move(pspec), std::make_unique<QueueSource>(1),
                        &operands_, &ctx_.result);
  Drain(probe);
  EXPECT_EQ(ctx_.memory.granted(), 0);  // everything released at close
}

}  // namespace
}  // namespace dqsched::exec
