// Double-pipelined hash-join strategy tests (paper Section 1.1's
// operator-level alternative).

#include "core/dphj.h"

#include <gtest/gtest.h>

#include "core/mediator.h"
#include "plan/canonical_plans.h"
#include "plan/query_generator.h"

namespace dqsched::core {
namespace {

Mediator MakeMediator(plan::QuerySetup setup, MediatorConfig config = {}) {
  Result<Mediator> m = Mediator::Create(std::move(setup.catalog),
                                        std::move(setup.plan),
                                        std::move(config));
  EXPECT_TRUE(m.ok()) << m.status().ToString();
  return std::move(m.value());
}

TEST(Dphj, AgreesWithReferenceOnTinyQuery) {
  Mediator m = MakeMediator(plan::TinyTwoSourceQuery());
  Result<ExecutionMetrics> r = m.ExecuteDphj();
  ASSERT_TRUE(r.ok()) << r.status().ToString();  // Execute verifies
  EXPECT_EQ(r->result_count, m.reference().result_card);
  EXPECT_EQ(r->result_checksum, m.reference().checksum.value());
}

TEST(Dphj, AgreesOnChainAndPaperPlans) {
  for (plan::QuerySetup setup :
       {plan::ChainThreeSourceQuery(), plan::PaperFigure5Query(0.02)}) {
    Mediator m = MakeMediator(std::move(setup));
    Result<ExecutionMetrics> r = m.ExecuteDphj();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_GE(r->response_time, m.LowerBound().bound());
  }
}

TEST(Dphj, AgreesOnRandomQueries) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    plan::GeneratorConfig gen;
    gen.num_sources = 2 + static_cast<int>(seed % 5);
    gen.seed = seed;
    gen.min_cardinality = 500;
    gen.max_cardinality = 4000;
    Result<plan::QuerySetup> setup = plan::GenerateBushyQuery(gen, false);
    ASSERT_TRUE(setup.ok());
    Mediator m = MakeMediator(std::move(setup.value()));
    Result<ExecutionMetrics> r = m.ExecuteDphj();
    ASSERT_TRUE(r.ok()) << "seed " << seed << ": " << r.status().ToString();
  }
}

TEST(Dphj, AbsorbsInitialDelayWithoutScheduling) {
  // The DPHJ's selling point: a delayed input blocks nothing, with zero
  // scheduler involvement.
  plan::QuerySetup setup = plan::TinyTwoSourceQuery(3000, 3000, 20.0);
  setup.catalog.sources[0].delay.kind = wrapper::DelayKind::kInitial;
  setup.catalog.sources[0].delay.initial_delay_ms = 30.0;
  Mediator m = MakeMediator(std::move(setup));
  Result<ExecutionMetrics> seq = m.Execute(StrategyKind::kSeq);
  Result<ExecutionMetrics> dphj = m.ExecuteDphj();
  ASSERT_TRUE(seq.ok() && dphj.ok());
  EXPECT_LT(dphj->response_time, seq->response_time);
}

TEST(Dphj, UsesMoreMemoryThanDse) {
  // Both sides of every join stay resident: the paper's stated cost of
  // operator-level adaptation.
  Mediator m = MakeMediator(plan::PaperFigure5Query(0.05));
  Result<ExecutionMetrics> dse = m.Execute(StrategyKind::kDse);
  Result<ExecutionMetrics> dphj = m.ExecuteDphj();
  ASSERT_TRUE(dse.ok() && dphj.ok());
  EXPECT_GT(dphj->peak_memory_bytes, dse->peak_memory_bytes);
}

TEST(Dphj, FailsCleanlyWithoutMemory) {
  MediatorConfig config;
  config.memory_budget_bytes = 64 * 1024;  // far below the tables
  Mediator m = MakeMediator(plan::TinyTwoSourceQuery(5000, 5000), config);
  Result<ExecutionMetrics> r = m.ExecuteDphj();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(Dphj, SingleScanPlan) {
  wrapper::Catalog catalog;
  wrapper::SourceSpec s;
  s.relation.name = "Solo";
  s.relation.cardinality = 1000;
  catalog.sources.push_back(s);
  plan::Plan plan;
  plan.SetRoot(plan.AddScan(0));
  Result<Mediator> m = Mediator::Create(catalog, plan, MediatorConfig{});
  ASSERT_TRUE(m.ok());
  Result<ExecutionMetrics> r = m->ExecuteDphj();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->result_count, 1000);
}

TEST(Dphj, RejectsBadBatchSize) {
  plan::QuerySetup setup = plan::TinyTwoSourceQuery();
  auto compiled = plan::Compile(setup.plan, setup.catalog);
  ASSERT_TRUE(compiled.ok());
  exec::ExecContext ctx(nullptr, comm::CommConfig{}, 1);
  DphjConfig config;
  config.batch_size = 0;
  EXPECT_FALSE(RunDphj(*compiled, ctx, config).ok());
}

}  // namespace
}  // namespace dqsched::core
