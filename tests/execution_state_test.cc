#include "core/execution_state.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/mediator.h"
#include "plan/canonical_plans.h"
#include "wrapper/wrapper.h"

namespace dqsched::core {
namespace {

/// Harness that compiles + annotates a setup and wires a live context.
class ExecutionStateTest : public ::testing::Test {
 protected:
  void Init(plan::QuerySetup setup, int64_t memory = 64 << 20) {
    setup_ = std::move(setup);
    auto compiled = plan::Compile(setup_.plan, setup_.catalog);
    ASSERT_TRUE(compiled.ok());
    compiled_ = std::move(compiled.value());
    ASSERT_TRUE(plan::Annotate(&compiled_, setup_.catalog, cost_).ok());
    ctx_ = std::make_unique<exec::ExecContext>(&cost_, comm::CommConfig{},
                                               memory);
    data_.reserve(static_cast<size_t>(setup_.catalog.num_sources()));
    for (SourceId s = 0; s < setup_.catalog.num_sources(); ++s) {
      data_.push_back(storage::GenerateRelation(
          setup_.catalog.source(s).relation, s, Rng(s + 1)));
      ctx_->comm.AddSource(
          std::make_unique<wrapper::SimWrapper>(
              s, &data_.back(), setup_.catalog.source(s).delay, s + 10),
          static_cast<double>(cost_.MinWaitingTime()));
    }
    state_ = std::make_unique<ExecutionState>(&compiled_, ctx_.get(),
                                              ExecutionOptions{});
  }

  ChainId ChainOf(const char* name) {
    const SourceId src = setup_.catalog.Find(name);
    for (const auto& chain : compiled_.chains) {
      if (chain.source == src) return chain.id;
    }
    return kInvalidId;
  }

  sim::CostModel cost_;
  plan::QuerySetup setup_;
  plan::CompiledPlan compiled_;
  std::vector<storage::Relation> data_;
  std::unique_ptr<exec::ExecContext> ctx_;
  std::unique_ptr<ExecutionState> state_;
};

TEST_F(ExecutionStateTest, InitialFragmentsMirrorChains) {
  Init(plan::PaperFigure5Query(0.01));
  EXPECT_EQ(state_->num_fragments(), 6);
  for (ChainId c = 0; c < 6; ++c) {
    EXPECT_EQ(state_->ChainFragment(c), c);
    EXPECT_TRUE(state_->FragmentActive(c));
    EXPECT_FALSE(state_->ChainDone(c));
    EXPECT_FALSE(state_->IsMf(c));
  }
  EXPECT_FALSE(state_->QueryDone());
}

TEST_F(ExecutionStateTest, CSchedulabilityFollowsBlockers) {
  Init(plan::PaperFigure5Query(0.01));
  EXPECT_TRUE(state_->CSchedulable(ChainOf("A")));
  EXPECT_TRUE(state_->CSchedulable(ChainOf("E")));
  EXPECT_FALSE(state_->CSchedulable(ChainOf("B")));
  EXPECT_FALSE(state_->CSchedulable(ChainOf("C")));
}

TEST_F(ExecutionStateTest, DegradeCreatesMfFragment) {
  Init(plan::PaperFigure5Query(0.01));
  const ChainId pb = ChainOf("B");
  const int mf = state_->Degrade(pb, *ctx_);
  EXPECT_GE(mf, 6);
  EXPECT_TRUE(state_->Degraded(pb));
  EXPECT_TRUE(state_->IsMf(mf));
  EXPECT_EQ(state_->FragmentChain(mf), pb);
  EXPECT_EQ(state_->fragment(mf).spec().sink, exec::SinkKind::kTemp);
  EXPECT_EQ(state_->degradations(), 1);
}

TEST_F(ExecutionStateTest, CfActivationSwapsChainFragment) {
  Init(plan::PaperFigure5Query(0.01));
  const ChainId pb = ChainOf("B");
  const int mf = state_->Degrade(pb, *ctx_);
  // Let the MF materialize a little.
  ctx_->clock.StallUntil(Milliseconds(2));
  ASSERT_TRUE(state_->fragment(mf).ProcessBatch(*ctx_, 32).ok());

  state_->ActivateCf(pb, *ctx_);
  EXPECT_TRUE(state_->CfActivated(pb));
  EXPECT_FALSE(state_->FragmentActive(mf));  // MF stopped
  EXPECT_EQ(state_->cf_activations(), 1);
  exec::FragmentRuntime& cf = state_->fragment(state_->ChainFragment(pb));
  EXPECT_EQ(cf.name(), "CF(p_B)");
  EXPECT_FALSE(cf.closed());
}

TEST_F(ExecutionStateTest, FinishedFragmentMarksChainDone) {
  Init(plan::TinyTwoSourceQuery(200, 100, /*mean_delay_us=*/1.0));
  const int frag = state_->ChainFragment(1);  // the build chain (p_A)
  exec::FragmentRuntime& rt = state_->fragment(frag);
  while (!rt.Finished(*ctx_)) {
    if (rt.Available(*ctx_) > 0) {
      ASSERT_TRUE(rt.ProcessBatch(*ctx_, 64).ok());
    } else {
      ctx_->clock.StallUntil(rt.NextArrival(*ctx_));
    }
  }
  state_->OnFragmentFinished(frag, *ctx_);
  EXPECT_TRUE(state_->ChainDone(1));
  EXPECT_FALSE(state_->FragmentActive(frag));
  // The probe chain becomes C-schedulable.
  EXPECT_TRUE(state_->CSchedulable(0));
}

TEST_F(ExecutionStateTest, SplitForMemoryCreatesStages) {
  // p_D probes two operands (J3 and J4); force a split between them.
  Init(plan::PaperFigure5Query(0.01));
  // Pretend p_D's operands are sealed by sealing them manually: run the
  // ancestors for real instead — too heavy here; use the split validation
  // path on a synthetic budget instead.
  const ChainId pd = ChainOf("D");
  // Seal the operands p_D probes so BytesToLoad is defined.
  for (const auto& op : compiled_.chain(pd).ops) {
    if (op.kind == plan::ChainOpKind::kProbe) {
      auto& operand = state_->operands().Get(op.join);
      std::vector<storage::Tuple> tuples(100);
      operand.Append(*ctx_, tuples.data(), 100, true);
      operand.Seal(*ctx_);
    }
  }
  const int64_t one_operand =
      state_->operands()
          .Get(compiled_.chain(pd).ops[0].join)
          .BytesToLoad(*ctx_);
  ASSERT_TRUE(
      state_->SplitForMemory(pd, *ctx_, one_operand + 100).ok());
  EXPECT_EQ(state_->dqo_splits(), 1);
  exec::FragmentRuntime& stage0 = state_->fragment(state_->ChainFragment(pd));
  EXPECT_EQ(stage0.spec().name, "p_D/s0");
  EXPECT_EQ(stage0.spec().sink, exec::SinkKind::kTemp);
  EXPECT_EQ(stage0.spec().ops.size(), 1u);
}

TEST_F(ExecutionStateTest, SplitFailsWhenOneOperandExceedsBudget) {
  Init(plan::PaperFigure5Query(0.01));
  const ChainId pd = ChainOf("D");
  for (const auto& op : compiled_.chain(pd).ops) {
    if (op.kind == plan::ChainOpKind::kProbe) {
      auto& operand = state_->operands().Get(op.join);
      std::vector<storage::Tuple> tuples(100);
      operand.Append(*ctx_, tuples.data(), 100, true);
      operand.Seal(*ctx_);
    }
  }
  EXPECT_EQ(state_->SplitForMemory(pd, *ctx_, 16).code(),
            StatusCode::kResourceExhausted);
}

TEST_F(ExecutionStateTest, MaterializeAllTracksTemps) {
  Init(plan::TinyTwoSourceQuery(100, 100, 1.0));
  const int f0 = state_->CreateMaterializeAll(0, *ctx_);
  const int f1 = state_->CreateMaterializeAll(1, *ctx_);
  EXPECT_NE(state_->MaTempOf(0), kInvalidId);
  EXPECT_NE(state_->MaTempOf(1), kInvalidId);
  EXPECT_NE(state_->MaTempOf(0), state_->MaTempOf(1));
  EXPECT_TRUE(state_->IsMf(f0));
  EXPECT_EQ(state_->FragmentChain(f1), kInvalidId);
}

TEST_F(ExecutionStateTest, RebindChainToTempSwapsSource) {
  Init(plan::TinyTwoSourceQuery(100, 100, 1.0));
  const TempId temp = ctx_->temps.Create("local");
  std::vector<storage::Tuple> tuples(10);
  ctx_->temps.Append(temp, tuples.data(), 10, true);
  ctx_->temps.Seal(temp);
  state_->RebindChainToTemp(1, temp, *ctx_);
  exec::FragmentRuntime& rt = state_->fragment(1);
  EXPECT_EQ(rt.source().remote_source(), kInvalidId);
  EXPECT_EQ(rt.Available(*ctx_), 10);
}

TEST_F(ExecutionStateTest, CpuEstimatesDifferForMfAndChain) {
  Init(plan::PaperFigure5Query(0.01));
  const ChainId pc = ChainOf("C");
  const int mf = state_->Degrade(pc, *ctx_);
  // The MF only receives and writes; the full chain also probes.
  EXPECT_LT(state_->FragmentCpuPerTupleNs(mf),
            state_->FragmentCpuPerTupleNs(state_->ChainFragment(pc)));
}

TEST_F(ExecutionStateTest, RemainingLiveCountsWrapperTuples) {
  Init(plan::TinyTwoSourceQuery(500, 300, 1.0));
  EXPECT_EQ(state_->FragmentRemainingLive(0, *ctx_), 300);
  EXPECT_EQ(state_->FragmentRemainingLive(1, *ctx_), 500);
}

}  // namespace
}  // namespace dqsched::core
