#include "common/random.h"

#include <gtest/gtest.h>

namespace dqsched {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.Uniform(13), 13u);
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(9);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, UniformZeroToTwiceHasRequestedMean) {
  // The paper's delay distribution: uniform in [0, 2w] with mean w.
  Rng rng(13);
  double sum = 0;
  const double mean = 20.0;
  for (int i = 0; i < 50000; ++i) {
    const double d = rng.UniformZeroToTwice(mean);
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 2 * mean);
    sum += d;
  }
  EXPECT_NEAR(sum / 50000, mean, 0.5);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 50000; ++i) sum += rng.Exponential(5.0);
  EXPECT_NEAR(sum / 50000, 5.0, 0.2);
}

TEST(Rng, BernoulliRate) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.25);
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += parent.Next() == child.Next();
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedResetsSequence) {
  Rng rng(3);
  const uint64_t first = rng.Next();
  rng.Next();
  rng.Reseed(3);
  EXPECT_EQ(rng.Next(), first);
}

}  // namespace
}  // namespace dqsched
