// Scalar-vs-vectorized kernel determinism: the batch-at-a-time kernels
// (selection vectors, two-pass probes, bulk sinks, adaptive filter
// reordering) must produce ExecutionMetrics byte-identical to the
// tuple-at-a-time reference kernels on every non-wall field — DESIGN §10's
// canonical-charge-order contract. Every strategy runs the paper's
// fig6/fig7 setups plus a stacked-multi-filter variant (the only shape
// where the FilterManager may actually permute) under rate drift, in
// three kernel modes: scalar, vectorized with adaptive filters, and
// vectorized with canonical-order filters.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/mediator.h"
#include "exec/filter_manager.h"
#include "plan/canonical_plans.h"

namespace dqsched::core {
namespace {

enum class Setup { kFig6SlowA, kFig7SlowF, kStackedFiltersSlowA };
enum class Kernels { kScalar, kVectorized, kVectorizedCanonical };

MediatorConfig BaseConfig(Kernels kernels) {
  MediatorConfig config;
  config.memory_budget_bytes = 64LL * 1024 * 1024;
  config.seed = 7;
  config.kernels.scalar = kernels == Kernels::kScalar;
  config.kernels.adaptive_filters = kernels == Kernels::kVectorized;
  return config;
}

// The fig5 query with filter stacks on A (build side of J1: a trailing
// two-term run delivered to an operand sink) and C (probe side of J5: a
// three-term run feeding a probe, the scalar kernels' fusion path). Multi-
// term runs are what lets the adaptive FilterManager permute.
plan::QuerySetup StackedFilterSetup(double scale) {
  plan::QuerySetup q = plan::PaperFigure5Query(scale);
  plan::Plan p;
  const NodeId scan_a = p.AddScan(0);
  const NodeId scan_b = p.AddScan(1);
  const NodeId scan_c = p.AddScan(2);
  const NodeId scan_d = p.AddScan(3);
  const NodeId scan_e = p.AddScan(4);
  const NodeId scan_f = p.AddScan(5);
  NodeId a = p.AddFilter(scan_a, 0.85);
  a = p.AddFilter(a, 0.6);
  NodeId c = p.AddFilter(scan_c, 0.9);
  c = p.AddFilter(c, 0.45);
  c = p.AddFilter(c, 0.7);
  const NodeId j1 = p.AddHashJoin(a, scan_b, /*build_field=*/0,
                                  /*probe_field=*/0);
  const NodeId j2 = p.AddHashJoin(j1, scan_f, /*build_field=*/1,
                                  /*probe_field=*/0);
  const NodeId j3 = p.AddHashJoin(scan_e, scan_d, /*build_field=*/0,
                                  /*probe_field=*/0);
  const NodeId j4 = p.AddHashJoin(j2, j3, /*build_field=*/1,
                                  /*probe_field=*/1);
  const NodeId j5 = p.AddHashJoin(j4, c, /*build_field=*/2,
                                  /*probe_field=*/0);
  p.SetRoot(j5);
  EXPECT_TRUE(p.Validate(q.catalog).ok());
  q.plan = std::move(p);
  return q;
}

Mediator MakeMediator(Setup which, Kernels kernels) {
  // 5% scale, one slowed relation: rate drift triggers replanning (and on
  // the stacked setup, degradation of a chain with leading filters, so the
  // partial-run path through temp_skip_ops executes too).
  plan::QuerySetup setup = which == Setup::kStackedFiltersSlowA
                               ? StackedFilterSetup(/*scale=*/0.05)
                               : plan::PaperFigure5Query(/*scale=*/0.05);
  const size_t slowed = which == Setup::kFig7SlowF ? 5 : 0;  // F or A
  setup.catalog.sources[slowed].delay.mean_us *= 8.0;
  Result<Mediator> m = Mediator::Create(std::move(setup.catalog),
                                        std::move(setup.plan),
                                        BaseConfig(kernels));
  EXPECT_TRUE(m.ok()) << m.status().ToString();
  return std::move(m.value());
}

void ExpectIdentical(const ExecutionMetrics& a, const ExecutionMetrics& b,
                     const char* label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.response_time, b.response_time);
  EXPECT_EQ(a.busy_time, b.busy_time);
  EXPECT_EQ(a.stalled_time, b.stalled_time);
  EXPECT_EQ(a.result_count, b.result_count);
  EXPECT_EQ(a.result_checksum, b.result_checksum);
  EXPECT_EQ(a.planning_phases, b.planning_phases);
  EXPECT_EQ(a.execution_phases, b.execution_phases);
  EXPECT_EQ(a.degradations, b.degradations);
  EXPECT_EQ(a.cf_activations, b.cf_activations);
  EXPECT_EQ(a.dqo_splits, b.dqo_splits);
  EXPECT_EQ(a.operand_spills, b.operand_spills);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.rate_change_events, b.rate_change_events);
  EXPECT_EQ(a.peak_memory_bytes, b.peak_memory_bytes);
  EXPECT_EQ(a.disk.pages_read, b.disk.pages_read);
  EXPECT_EQ(a.disk.pages_written, b.disk.pages_written);
  EXPECT_EQ(a.disk.positionings, b.disk.positionings);
  EXPECT_EQ(a.disk.io_calls, b.disk.io_calls);
  EXPECT_EQ(a.disk.busy, b.disk.busy);
  EXPECT_EQ(a.network.tuples_received, b.network.tuples_received);
  EXPECT_EQ(a.network.messages_received, b.network.messages_received);
  EXPECT_EQ(a.network.receive_cpu, b.network.receive_cpu);
  EXPECT_EQ(a.temps.temps_created, b.temps.temps_created);
  EXPECT_EQ(a.temps.tuples_written, b.temps.tuples_written);
  EXPECT_EQ(a.temps.tuples_read, b.temps.tuples_read);
  EXPECT_EQ(a.temps.cache_served_reads, b.temps.cache_served_reads);
}

// Direct check of the FilterManager contract: the adaptive mode really
// permutes (the low-selectivity term is evaluated first regardless of
// canonical position), while the final selection and the per-term charge
// counts match a canonical-order evaluation exactly.
TEST(FilterManagerContract, PermutedModeMatchesCanonicalCountsExactly) {
  constexpr uint32_t kN = 5000;
  std::vector<storage::Tuple> tuples(kN);
  for (uint32_t i = 0; i < kN; ++i) {
    tuples[i].rowid = storage::Mix64(i + 1);
  }
  auto make_term = [](NodeId node, double sel) {
    plan::ChainOp op;
    op.kind = plan::ChainOpKind::kFilter;
    op.node = node;
    op.selectivity = sel;
    return op;
  };
  // Canonical order: permissive (0.9), selective (0.1), middling (0.5).
  const std::vector<plan::ChainOp> terms = {make_term(11, 0.9),
                                            make_term(12, 0.1),
                                            make_term(13, 0.5)};
  exec::FilterManager adaptive(terms, /*adaptive=*/true);
  exec::FilterManager canonical(terms, /*adaptive=*/false);
  EXPECT_EQ(adaptive.order()[0], 1u);  // most selective term ranks first

  for (int batch = 0; batch < 4; ++batch) {
    exec::TupleIdList sel_a;
    exec::TupleIdList sel_c;
    sel_a.Resize(kN);
    sel_a.AddAll();
    sel_c.Resize(kN);
    sel_c.AddAll();
    std::vector<int64_t> charges_a;
    std::vector<int64_t> charges_c;
    adaptive.Run(tuples.data(), &sel_a, &charges_a);
    canonical.Run(tuples.data(), &sel_c, &charges_c);
    EXPECT_EQ(charges_a, charges_c) << "batch " << batch;
    ASSERT_EQ(charges_a.size(), 3u);
    EXPECT_EQ(charges_a[0], static_cast<int64_t>(kN));
    EXPECT_EQ(sel_a.Count(), sel_c.Count());
    sel_a.IntersectWith(sel_c);
    EXPECT_EQ(sel_a.Count(), sel_c.Count());  // identical selections
  }
}

class KernelEquivalence : public ::testing::TestWithParam<Setup> {};

TEST_P(KernelEquivalence, AllStrategiesIdenticalAcrossKernelModes) {
  Mediator scalar = MakeMediator(GetParam(), Kernels::kScalar);
  Mediator vec = MakeMediator(GetParam(), Kernels::kVectorized);
  Mediator canon = MakeMediator(GetParam(), Kernels::kVectorizedCanonical);
  EXPECT_EQ(scalar.reference().checksum.value(),
            vec.reference().checksum.value());

  for (StrategyKind kind :
       {StrategyKind::kSeq, StrategyKind::kDse, StrategyKind::kMa}) {
    Result<ExecutionMetrics> rs = scalar.Execute(kind);
    Result<ExecutionMetrics> rv = vec.Execute(kind);
    Result<ExecutionMetrics> rc = canon.Execute(kind);
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    ASSERT_TRUE(rv.ok()) << rv.status().ToString();
    ASSERT_TRUE(rc.ok()) << rc.status().ToString();
    ExpectIdentical(*rs, *rv, StrategyName(kind));
    ExpectIdentical(*rs, *rc, StrategyName(kind));
  }

  Result<ExecutionMetrics> ss = scalar.ExecuteScrambling();
  Result<ExecutionMetrics> sv = vec.ExecuteScrambling();
  Result<ExecutionMetrics> sc = canon.ExecuteScrambling();
  ASSERT_TRUE(ss.ok() && sv.ok() && sc.ok());
  ExpectIdentical(*ss, *sv, "scrambling");
  ExpectIdentical(*ss, *sc, "scrambling-canonical");
}

INSTANTIATE_TEST_SUITE_P(Setups, KernelEquivalence,
                         ::testing::Values(Setup::kFig6SlowA,
                                           Setup::kFig7SlowF,
                                           Setup::kStackedFiltersSlowA),
                         [](const auto& info) {
                           switch (info.param) {
                             case Setup::kFig6SlowA:
                               return "Fig6SlowA";
                             case Setup::kFig7SlowF:
                               return "Fig7SlowF";
                             default:
                               return "StackedFiltersSlowA";
                           }
                         });

}  // namespace
}  // namespace dqsched::core
