// Serial-vs-bulk transport determinism: the ring-buffer bulk data plane
// (span PushBatch/PopBatch, batched OnArrivals, event-indexed pumping)
// must be observationally identical to per-tuple delivery. Every strategy
// runs the paper's fig6/fig7 setups (one slowed medium relation A, one
// slowed small relation F) both ways; the full ExecutionMetrics and the
// result checksum must coincide field by field.

#include <gtest/gtest.h>

#include <utility>

#include "core/mediator.h"
#include "plan/canonical_plans.h"

namespace dqsched::core {
namespace {

MediatorConfig BaseConfig(bool serial) {
  MediatorConfig config;
  config.memory_budget_bytes = 64LL * 1024 * 1024;
  config.seed = 7;
  config.comm.serial_transport = serial;
  return config;
}

enum class Setup { kFig6SlowA, kFig7SlowF };

Mediator MakeMediator(Setup which, bool serial) {
  // 5% scale keeps the run fast while still crossing queue wraparound and
  // backpressure suspensions many times (queue capacity stays at 1024).
  plan::QuerySetup setup = plan::PaperFigure5Query(/*scale=*/0.05);
  const size_t slowed = which == Setup::kFig6SlowA ? 0 : 5;  // A or F
  setup.catalog.sources[slowed].delay.mean_us *= 8.0;
  Result<Mediator> m = Mediator::Create(std::move(setup.catalog),
                                        std::move(setup.plan),
                                        BaseConfig(serial));
  EXPECT_TRUE(m.ok()) << m.status().ToString();
  return std::move(m.value());
}

void ExpectIdentical(const ExecutionMetrics& a, const ExecutionMetrics& b,
                     const char* label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.response_time, b.response_time);
  EXPECT_EQ(a.busy_time, b.busy_time);
  EXPECT_EQ(a.stalled_time, b.stalled_time);
  EXPECT_EQ(a.result_count, b.result_count);
  EXPECT_EQ(a.result_checksum, b.result_checksum);
  EXPECT_EQ(a.planning_phases, b.planning_phases);
  EXPECT_EQ(a.execution_phases, b.execution_phases);
  EXPECT_EQ(a.degradations, b.degradations);
  EXPECT_EQ(a.cf_activations, b.cf_activations);
  EXPECT_EQ(a.dqo_splits, b.dqo_splits);
  EXPECT_EQ(a.operand_spills, b.operand_spills);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.rate_change_events, b.rate_change_events);
  EXPECT_EQ(a.peak_memory_bytes, b.peak_memory_bytes);
  EXPECT_EQ(a.disk.pages_read, b.disk.pages_read);
  EXPECT_EQ(a.disk.pages_written, b.disk.pages_written);
  EXPECT_EQ(a.disk.positionings, b.disk.positionings);
  EXPECT_EQ(a.disk.io_calls, b.disk.io_calls);
  EXPECT_EQ(a.disk.busy, b.disk.busy);
  EXPECT_EQ(a.network.tuples_received, b.network.tuples_received);
  EXPECT_EQ(a.network.messages_received, b.network.messages_received);
  EXPECT_EQ(a.network.receive_cpu, b.network.receive_cpu);
  EXPECT_EQ(a.temps.temps_created, b.temps.temps_created);
  EXPECT_EQ(a.temps.tuples_written, b.temps.tuples_written);
  EXPECT_EQ(a.temps.tuples_read, b.temps.tuples_read);
  EXPECT_EQ(a.temps.cache_served_reads, b.temps.cache_served_reads);
}

class TransportDeterminism : public ::testing::TestWithParam<Setup> {};

TEST_P(TransportDeterminism, AllStrategiesIdenticalSerialVsBulk) {
  Mediator bulk = MakeMediator(GetParam(), /*serial=*/false);
  Mediator serial = MakeMediator(GetParam(), /*serial=*/true);
  EXPECT_EQ(bulk.reference().checksum.value(),
            serial.reference().checksum.value());

  for (StrategyKind kind :
       {StrategyKind::kSeq, StrategyKind::kDse, StrategyKind::kMa}) {
    Result<ExecutionMetrics> rb = bulk.Execute(kind);
    Result<ExecutionMetrics> rs = serial.Execute(kind);
    ASSERT_TRUE(rb.ok()) << rb.status().ToString();
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    ExpectIdentical(*rb, *rs, StrategyName(kind));
  }

  Result<ExecutionMetrics> sb = bulk.ExecuteScrambling();
  Result<ExecutionMetrics> ss = serial.ExecuteScrambling();
  ASSERT_TRUE(sb.ok() && ss.ok());
  ExpectIdentical(*sb, *ss, "scrambling");

  Result<ExecutionMetrics> db = bulk.ExecuteDphj();
  Result<ExecutionMetrics> ds = serial.ExecuteDphj();
  ASSERT_TRUE(db.ok() && ds.ok());
  ExpectIdentical(*db, *ds, "dphj");
}

INSTANTIATE_TEST_SUITE_P(Setups, TransportDeterminism,
                         ::testing::Values(Setup::kFig6SlowA,
                                           Setup::kFig7SlowF),
                         [](const auto& info) {
                           return info.param == Setup::kFig6SlowA
                                      ? "Fig6SlowA"
                                      : "Fig7SlowF";
                         });

}  // namespace
}  // namespace dqsched::core
