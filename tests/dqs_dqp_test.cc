// Scheduler (DQS) and processor (DQP) behaviour tests.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/dqp.h"
#include "core/dqs.h"
#include "plan/canonical_plans.h"
#include "wrapper/wrapper.h"

namespace dqsched::core {
namespace {

class DqsDqpTest : public ::testing::Test {
 protected:
  void Init(plan::QuerySetup setup, int64_t memory = 64 << 20) {
    setup_ = std::move(setup);
    auto compiled = plan::Compile(setup_.plan, setup_.catalog);
    ASSERT_TRUE(compiled.ok());
    compiled_ = std::move(compiled.value());
    ASSERT_TRUE(plan::Annotate(&compiled_, setup_.catalog, cost_).ok());
    ctx_ = std::make_unique<exec::ExecContext>(&cost_, comm_config_, memory);
    data_.reserve(static_cast<size_t>(setup_.catalog.num_sources()));
    for (SourceId s = 0; s < setup_.catalog.num_sources(); ++s) {
      data_.push_back(storage::GenerateRelation(
          setup_.catalog.source(s).relation, s, Rng(s + 1)));
      ctx_->comm.AddSource(
          std::make_unique<wrapper::SimWrapper>(
              s, &data_.back(), setup_.catalog.source(s).delay, s + 11),
          static_cast<double>(cost_.MinWaitingTime()));
    }
    state_ = std::make_unique<ExecutionState>(&compiled_, ctx_.get(),
                                              ExecutionOptions{});
  }

  ChainId ChainOf(const char* name) {
    const SourceId src = setup_.catalog.Find(name);
    for (const auto& chain : compiled_.chains) {
      if (chain.source == src) return chain.id;
    }
    return kInvalidId;
  }

  sim::CostModel cost_;
  comm::CommConfig comm_config_;
  plan::QuerySetup setup_;
  plan::CompiledPlan compiled_;
  std::vector<storage::Relation> data_;
  std::unique_ptr<exec::ExecContext> ctx_;
  std::unique_ptr<ExecutionState> state_;
};

TEST_F(DqsDqpTest, CriticalDegreeMatchesFormula) {
  Init(plan::TinyTwoSourceQuery(1000, 1000, /*mean_delay_us=*/50.0));
  // n_p = 1000; w (prior) = MinWaitingTime; c from annotation.
  const double w = static_cast<double>(cost_.MinWaitingTime());
  const double c = compiled_.chain(1).est_cpu_per_tuple_ns;
  EXPECT_DOUBLE_EQ(Dqs::ChainCritical(*state_, *ctx_, 1), 1000.0 * (w - c));
}

TEST_F(DqsDqpTest, BmiMatchesFormula) {
  Init(plan::TinyTwoSourceQuery());
  const double w = static_cast<double>(cost_.MinWaitingTime());
  const double io = static_cast<double>(cost_.TupleIoTime());
  EXPECT_DOUBLE_EQ(Dqs::Bmi(*state_, *ctx_, 0), w / (2.0 * io));
}

TEST_F(DqsDqpTest, DegradationWaitsForWarmEstimatesThenFires) {
  Init(plan::PaperFigure5Query(0.02));
  Dqs dqs(DqsConfig{});
  Dqp dqp(DqpConfig{});
  Dqo dqo;
  // Plan 1: no observations yet -> no irreversible degradations; only the
  // C-schedulable chains (p_A, p_E) are scheduled.
  Result<SchedulingPlan> sp = dqs.ComputePlan(*state_, *ctx_, dqo);
  ASSERT_TRUE(sp.ok()) << sp.status().ToString();
  EXPECT_EQ(state_->degradations(), 0);
  EXPECT_EQ(sp->fragments.size(), 2u);

  // Execution: the estimators warm within microseconds, each raising a
  // RateChange; within a handful of replans the four blocked critical
  // chains (p_B, p_F, p_D, p_C) all degrade into MFs.
  for (int round = 0; round < 8 && state_->degradations() < 4; ++round) {
    Result<Event> evt = dqp.RunPhase(*state_, sp.value(), *ctx_);
    ASSERT_TRUE(evt.ok());
    if (evt->kind == EventKind::kEndOfQf) {
      state_->OnFragmentFinished(evt->fragment, *ctx_);
    }
    sp = dqs.ComputePlan(*state_, *ctx_, dqo);
    ASSERT_TRUE(sp.ok());
  }
  EXPECT_EQ(state_->degradations(), 4);
  // p_A (+ p_E unless it already finished) plus the four MFs.
  EXPECT_GE(sp->fragments.size(), 5u);
  // Decisions landed long before any relation finished retrieval.
  EXPECT_LT(ctx_->clock.now(), Milliseconds(100));
}

TEST_F(DqsDqpTest, HighBmtSuppressesDegradation) {
  Init(plan::PaperFigure5Query(0.02));
  DqsConfig config;
  config.bmt = 1000.0;  // materialization never profitable
  Dqs dqs(config);
  Dqo dqo;
  Result<SchedulingPlan> sp = dqs.ComputePlan(*state_, *ctx_, dqo);
  ASSERT_TRUE(sp.ok());
  EXPECT_EQ(state_->degradations(), 0);
  EXPECT_EQ(sp->fragments.size(), 2u);  // only p_A and p_E
}

TEST_F(DqsDqpTest, PrioritiesDescend) {
  Init(plan::PaperFigure5Query(0.02));
  Dqs dqs(DqsConfig{});
  Dqo dqo;
  Result<SchedulingPlan> sp = dqs.ComputePlan(*state_, *ctx_, dqo);
  ASSERT_TRUE(sp.ok());
  for (size_t i = 1; i < sp->critical_ns.size(); ++i) {
    EXPECT_GE(sp->critical_ns[i - 1], sp->critical_ns[i]);
  }
  // The gating chain p_A tops the plan (subtree criticality).
  EXPECT_EQ(sp->fragments.front(), state_->ChainFragment(ChainOf("A")));
}

TEST_F(DqsDqpTest, SlowedSourceRisesInPriorityAfterRateChange) {
  plan::QuerySetup setup = plan::PaperFigure5Query(0.02);
  // Slow E dramatically: its critical degree should dominate eventually.
  setup.catalog.sources[4].delay.mean_us = 2000.0;
  Init(std::move(setup));
  Dqs dqs(DqsConfig{});
  Dqp dqp(DqpConfig{});
  Dqo dqo;
  // Run a few plan/execute cycles so the estimator observes E's slowness.
  for (int i = 0; i < 8; ++i) {
    Result<SchedulingPlan> sp = dqs.ComputePlan(*state_, *ctx_, dqo);
    ASSERT_TRUE(sp.ok());
    Result<Event> evt = dqp.RunPhase(*state_, *sp, *ctx_);
    ASSERT_TRUE(evt.ok());
    if (evt->kind == EventKind::kEndOfQf) {
      state_->OnFragmentFinished(evt->fragment, *ctx_);
    }
    if (state_->ChainDone(ChainOf("A"))) break;
  }
  // E's estimated wait should now reflect ~2000 us, far above the prior.
  EXPECT_GT(ctx_->comm.EstimatedWaitNs(4), 1e6);
}

TEST_F(DqsDqpTest, DqpReturnsEndOfQfAndChainsComplete) {
  Init(plan::TinyTwoSourceQuery(500, 300, 2.0));
  Dqs dqs(DqsConfig{});
  Dqp dqp(DqpConfig{});
  Dqo dqo;
  int guard = 0;
  while (!state_->QueryDone() && ++guard < 10000) {
    Result<SchedulingPlan> sp = dqs.ComputePlan(*state_, *ctx_, dqo);
    ASSERT_TRUE(sp.ok());
    Result<Event> evt = dqp.RunPhase(*state_, *sp, *ctx_);
    ASSERT_TRUE(evt.ok());
    if (evt->kind == EventKind::kEndOfQf) {
      state_->OnFragmentFinished(evt->fragment, *ctx_);
    }
  }
  EXPECT_TRUE(state_->QueryDone());
  // Expected fanout 1 per probe tuple (Poisson-distributed matches).
  EXPECT_NEAR(static_cast<double>(ctx_->result.count()), 300.0, 60.0);
}

TEST_F(DqsDqpTest, TimeoutEventFiresOnLongStall) {
  plan::QuerySetup setup = plan::TinyTwoSourceQuery(50, 50, 10.0);
  // The build source has an enormous initial delay.
  setup.catalog.sources[0].delay.kind = wrapper::DelayKind::kInitial;
  setup.catalog.sources[0].delay.initial_delay_ms = 1000.0;
  Init(std::move(setup));
  DqpConfig config;
  config.stall_timeout = Milliseconds(50);
  Dqp dqp(config);
  Dqs dqs(DqsConfig{});
  Dqo dqo;
  bool timed_out = false;
  int guard = 0;
  while (!state_->QueryDone() && ++guard < 10000) {
    Result<SchedulingPlan> sp = dqs.ComputePlan(*state_, *ctx_, dqo);
    ASSERT_TRUE(sp.ok());
    Result<Event> evt = dqp.RunPhase(*state_, *sp, *ctx_);
    ASSERT_TRUE(evt.ok());
    if (evt->kind == EventKind::kTimeout) {
      timed_out = true;
      break;
    }
    if (evt->kind == EventKind::kEndOfQf) {
      state_->OnFragmentFinished(evt->fragment, *ctx_);
    }
  }
  // Source A's one-second initial delay must starve the engine past the
  // 50 ms stall budget at some point.
  EXPECT_TRUE(timed_out);
  EXPECT_GE(ctx_->clock.stalled_time(), Milliseconds(50));
}

TEST_F(DqsDqpTest, BatchSizeOneStillCompletes) {
  Init(plan::TinyTwoSourceQuery(60, 40, 2.0));
  DqpConfig config;
  config.batch_size = 1;
  Dqp dqp(config);
  Dqs dqs(DqsConfig{});
  Dqo dqo;
  int guard = 0;
  while (!state_->QueryDone() && ++guard < 100000) {
    Result<SchedulingPlan> sp = dqs.ComputePlan(*state_, *ctx_, dqo);
    ASSERT_TRUE(sp.ok());
    Result<Event> evt = dqp.RunPhase(*state_, *sp, *ctx_);
    ASSERT_TRUE(evt.ok());
    if (evt->kind == EventKind::kEndOfQf) {
      state_->OnFragmentFinished(evt->fragment, *ctx_);
    }
  }
  EXPECT_TRUE(state_->QueryDone());
}

TEST_F(DqsDqpTest, MemoryOverflowRecoversViaDqoSplit) {
  // ChainThreeSourceQuery's result chain probes two operands (~393 KB of
  // indexes) over ~320 KB of resident operands; a 600 KB budget forces a
  // memory overflow that only a DQO split can relieve.
  Init(plan::ChainThreeSourceQuery(2.0), /*memory=*/600000);
  Dqs dqs(DqsConfig{});
  Dqp dqp(DqpConfig{});
  Dqo dqo;
  int guard = 0;
  while (!state_->QueryDone() && ++guard < 100000) {
    Result<SchedulingPlan> sp = dqs.ComputePlan(*state_, *ctx_, dqo);
    ASSERT_TRUE(sp.ok()) << sp.status().ToString();
    Result<Event> evt = dqp.RunPhase(*state_, *sp, *ctx_);
    ASSERT_TRUE(evt.ok()) << evt.status().ToString();
    switch (evt->kind) {
      case EventKind::kEndOfQf:
        state_->OnFragmentFinished(evt->fragment, *ctx_);
        break;
      case EventKind::kMemoryOverflow:
        ASSERT_TRUE(dqo.HandleMemoryOverflow(
                        *state_, *ctx_,
                        state_->FragmentChain(evt->fragment))
                        .ok());
        break;
      default:
        break;
    }
  }
  EXPECT_TRUE(state_->QueryDone());
  EXPECT_LE(ctx_->memory.peak(), 600000);
  EXPECT_GE(state_->dqo_splits(), 1);
}

}  // namespace
}  // namespace dqsched::core
