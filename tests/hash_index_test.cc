#include "exec/hash_index.h"

#include <gtest/gtest.h>

#include <vector>

namespace dqsched::exec {
namespace {

std::vector<storage::Tuple> TuplesWithKeys(std::vector<int64_t> keys,
                                           int field = 0) {
  std::vector<storage::Tuple> out(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    out[i].keys[field] = keys[i];
    out[i].rowid = i;
  }
  return out;
}

std::vector<size_t> Matches(const HashIndex& index, int64_t key) {
  std::vector<size_t> out;
  index.ForEachMatch(key, [&](size_t i) { out.push_back(i); });
  std::sort(out.begin(), out.end());
  return out;
}

TEST(HashIndex, FindsUniqueKeys) {
  const auto tuples = TuplesWithKeys({10, 20, 30});
  HashIndex index;
  index.Build(tuples, 0);
  EXPECT_EQ(Matches(index, 10), std::vector<size_t>{0});
  EXPECT_EQ(Matches(index, 30), std::vector<size_t>{2});
  EXPECT_TRUE(Matches(index, 99).empty());
}

TEST(HashIndex, FindsAllDuplicates) {
  const auto tuples = TuplesWithKeys({5, 5, 7, 5});
  HashIndex index;
  index.Build(tuples, 0);
  EXPECT_EQ(Matches(index, 5), (std::vector<size_t>{0, 1, 3}));
  EXPECT_EQ(Matches(index, 7), std::vector<size_t>{2});
}

TEST(HashIndex, EmptyBuild) {
  HashIndex index;
  index.Build({}, 0);
  EXPECT_TRUE(index.built());
  EXPECT_EQ(index.entry_count(), 0);
  EXPECT_TRUE(Matches(index, 1).empty());
}

TEST(HashIndex, UnbuiltIndexMatchesNothing) {
  HashIndex index;
  EXPECT_FALSE(index.built());
  EXPECT_TRUE(Matches(index, 1).empty());
}

TEST(HashIndex, RespectsKeyField) {
  auto tuples = TuplesWithKeys({1, 2, 3}, /*field=*/2);
  HashIndex index;
  index.Build(tuples, 2);
  EXPECT_EQ(Matches(index, 2), std::vector<size_t>{1});
}

TEST(HashIndex, LargeBuildCompleteAndConsistent) {
  std::vector<int64_t> keys;
  for (int64_t i = 0; i < 50000; ++i) keys.push_back(i % 1000);
  const auto tuples = TuplesWithKeys(keys);
  HashIndex index;
  index.Build(tuples, 0);
  for (int64_t k = 0; k < 1000; k += 97) {
    EXPECT_EQ(Matches(index, k).size(), 50u);
  }
}

TEST(HashIndex, MemoryEstimateMatchesAllocation) {
  const auto tuples = TuplesWithKeys(std::vector<int64_t>(1000, 1));
  HashIndex index;
  index.Build(tuples, 0);
  EXPECT_EQ(index.AllocatedBytes(), HashIndex::EstimateBytes(1000));
  // Load factor <= 0.5 at 16 bytes per slot: >= 32 bytes/entry.
  EXPECT_GE(HashIndex::EstimateBytes(1000), 32 * 1000);
}

TEST(HashIndex, ClearReleasesEverything) {
  const auto tuples = TuplesWithKeys({1, 2, 3});
  HashIndex index;
  index.Build(tuples, 0);
  index.Clear();
  EXPECT_FALSE(index.built());
  EXPECT_EQ(index.AllocatedBytes(), 0);
}

TEST(HashIndex, NegativeKeys) {
  const auto tuples = TuplesWithKeys({-5, -5, 0});
  HashIndex index;
  index.Build(tuples, 0);
  EXPECT_EQ(Matches(index, -5).size(), 2u);
  EXPECT_EQ(Matches(index, 0).size(), 1u);
}

}  // namespace
}  // namespace dqsched::exec
