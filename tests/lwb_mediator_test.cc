#include <gtest/gtest.h>

#include "core/lwb.h"
#include "core/mediator.h"
#include "plan/canonical_plans.h"

namespace dqsched::core {
namespace {

TEST(Lwb, CpuTermDominatesAtFullSpeed) {
  // At w_min the mediator CPU work exceeds the slowest retrieval.
  auto setup = plan::PaperFigure5Query(0.2);
  Result<Mediator> m = Mediator::Create(std::move(setup.catalog),
                                        std::move(setup.plan),
                                        MediatorConfig{});
  ASSERT_TRUE(m.ok());
  const LwbBreakdown lwb = m->LowerBound();
  EXPECT_GT(lwb.cpu_total, lwb.max_retrieval);
  EXPECT_EQ(lwb.bound(), lwb.cpu_total);
}

TEST(Lwb, RetrievalTermDominatesWithSlowSource) {
  auto setup = plan::PaperFigure5Query(0.2);
  setup.catalog.sources[0].delay.mean_us = 500.0;  // slow A: 15s retrieval
  Result<Mediator> m = Mediator::Create(std::move(setup.catalog),
                                        std::move(setup.plan),
                                        MediatorConfig{});
  ASSERT_TRUE(m.ok());
  const LwbBreakdown lwb = m->LowerBound();
  EXPECT_GT(lwb.max_retrieval, lwb.cpu_total);
  // 30000 tuples * 500 us = 15 s.
  EXPECT_NEAR(ToSecondsF(lwb.max_retrieval), 15.0, 0.1);
}

TEST(Lwb, ScalesWithCardinality) {
  auto small = plan::PaperFigure5Query(0.05);
  auto large = plan::PaperFigure5Query(0.2);
  Result<Mediator> ms = Mediator::Create(std::move(small.catalog),
                                         std::move(small.plan),
                                         MediatorConfig{});
  Result<Mediator> ml = Mediator::Create(std::move(large.catalog),
                                         std::move(large.plan),
                                         MediatorConfig{});
  ASSERT_TRUE(ms.ok() && ml.ok());
  EXPECT_NEAR(static_cast<double>(ml->LowerBound().cpu_total) /
                  static_cast<double>(ms->LowerBound().cpu_total),
              4.0, 0.5);
}

TEST(Mediator, CreateValidatesConfig) {
  auto setup = plan::TinyTwoSourceQuery();
  MediatorConfig config;
  config.memory_budget_bytes = 0;
  EXPECT_FALSE(Mediator::Create(setup.catalog, setup.plan, config).ok());
  config = MediatorConfig{};
  config.strategy.dqp.batch_size = 0;
  EXPECT_FALSE(Mediator::Create(setup.catalog, setup.plan, config).ok());
  config = MediatorConfig{};
  config.cost.cpu_mips = -1;
  EXPECT_FALSE(Mediator::Create(setup.catalog, setup.plan, config).ok());
}

TEST(Mediator, CreateValidatesPlan) {
  auto setup = plan::TinyTwoSourceQuery();
  plan::Plan empty;
  EXPECT_FALSE(Mediator::Create(setup.catalog, empty, MediatorConfig{}).ok());
}

TEST(Mediator, SameSeedSameWorkload) {
  auto s1 = plan::TinyTwoSourceQuery();
  auto s2 = plan::TinyTwoSourceQuery();
  MediatorConfig config;
  config.seed = 5;
  Result<Mediator> a = Mediator::Create(s1.catalog, s1.plan, config);
  Result<Mediator> b = Mediator::Create(s2.catalog, s2.plan, config);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->reference().result_card, b->reference().result_card);
  EXPECT_TRUE(a->reference().checksum == b->reference().checksum);
}

TEST(Mediator, DifferentSeedDifferentData) {
  auto s1 = plan::TinyTwoSourceQuery();
  MediatorConfig c1;
  c1.seed = 5;
  MediatorConfig c2;
  c2.seed = 6;
  Result<Mediator> a = Mediator::Create(s1.catalog, s1.plan, c1);
  Result<Mediator> b = Mediator::Create(s1.catalog, s1.plan, c2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(a->reference().checksum == b->reference().checksum);
}

TEST(Mediator, MetricsAreInternallyConsistent) {
  auto setup = plan::TinyTwoSourceQuery();
  Result<Mediator> m =
      Mediator::Create(setup.catalog, setup.plan, MediatorConfig{});
  ASSERT_TRUE(m.ok());
  Result<ExecutionMetrics> r = m->Execute(StrategyKind::kDse);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->response_time, r->busy_time + r->stalled_time);
  EXPECT_GT(r->planning_phases, 0);
  EXPECT_GT(r->execution_phases, 0);
  EXPECT_GT(r->peak_memory_bytes, 0);
  EXPECT_FALSE(r->ToString().empty());
}

TEST(Mediator, StrategyNamesStable) {
  EXPECT_STREQ(StrategyName(StrategyKind::kSeq), "SEQ");
  EXPECT_STREQ(StrategyName(StrategyKind::kDse), "DSE");
  EXPECT_STREQ(StrategyName(StrategyKind::kMa), "MA");
}

TEST(Mediator, MaUsesSynchronousIo) {
  EXPECT_TRUE(OptionsFor(StrategyKind::kDse).async_io);
  EXPECT_FALSE(OptionsFor(StrategyKind::kMa).async_io);
}

TEST(EventNames, Stable) {
  EXPECT_STREQ(EventKindName(EventKind::kEndOfQf), "EndOfQF");
  EXPECT_STREQ(EventKindName(EventKind::kRateChange), "RateChange");
  EXPECT_STREQ(EventKindName(EventKind::kTimeout), "TimeOut");
  EXPECT_STREQ(EventKindName(EventKind::kMemoryOverflow), "MemoryOverflow");
  EXPECT_STREQ(EventKindName(EventKind::kPlanExhausted), "PlanExhausted");
}

}  // namespace
}  // namespace dqsched::core
