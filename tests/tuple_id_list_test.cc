// TupleIdList semantics: bit-vector correctness across word boundaries,
// the full/partial fast-path transitions, and the ascending iteration
// order the kernels' determinism contract leans on.

#include "exec/tuple_id_list.h"

#include <gtest/gtest.h>

#include <vector>

namespace dqsched::exec {
namespace {

TEST(TupleIdList, StartsEmptyAndAddAllFills) {
  TupleIdList list;
  list.Resize(100);
  EXPECT_EQ(list.capacity(), 100u);
  EXPECT_EQ(list.Count(), 0u);
  EXPECT_TRUE(list.Empty());
  EXPECT_FALSE(list.Full());

  list.AddAll();
  EXPECT_EQ(list.Count(), 100u);
  EXPECT_TRUE(list.Full());
  for (uint32_t i = 0; i < 100; ++i) EXPECT_TRUE(list.Contains(i));
}

TEST(TupleIdList, AddAllMasksThePartialLastWord) {
  // Capacity 70 leaves 6 live bits in the second word; the 58 dead bits
  // must stay zero or Count/ForEach would invent tuples.
  TupleIdList list;
  list.Resize(70);
  list.AddAll();
  EXPECT_EQ(list.Count(), 70u);
  uint32_t seen = 0;
  list.ForEach([&](uint32_t id) {
    EXPECT_LT(id, 70u);
    ++seen;
  });
  EXPECT_EQ(seen, 70u);
}

TEST(TupleIdList, ExactWordCapacities) {
  for (uint32_t cap : {1u, 63u, 64u, 65u, 127u, 128u}) {
    TupleIdList list;
    list.Resize(cap);
    list.AddAll();
    EXPECT_EQ(list.Count(), cap) << cap;
    list.Refine([](uint32_t) { return true; });
    EXPECT_EQ(list.Count(), cap) << cap;
    EXPECT_TRUE(list.Full()) << cap;
  }
}

TEST(TupleIdList, AddIsIdempotentOnCount) {
  TupleIdList list;
  list.Resize(10);
  list.Add(3);
  list.Add(3);
  list.Add(7);
  EXPECT_EQ(list.Count(), 2u);
  EXPECT_TRUE(list.Contains(3));
  EXPECT_TRUE(list.Contains(7));
  EXPECT_FALSE(list.Contains(4));
}

TEST(TupleIdList, RefineFromFullUsesTheDensePathCorrectly) {
  TupleIdList list;
  list.Resize(200);
  list.AddAll();
  list.Refine([](uint32_t id) { return id % 3 == 0; });
  EXPECT_EQ(list.Count(), 67u);  // 0, 3, ..., 198
  EXPECT_FALSE(list.Full());
  for (uint32_t i = 0; i < 200; ++i) {
    EXPECT_EQ(list.Contains(i), i % 3 == 0) << i;
  }
}

TEST(TupleIdList, RefinePartialSkipsZeroWordsWithoutLosingBits) {
  TupleIdList list;
  list.Resize(512);
  // Only word 3 (ids 192..255) populated; words 0-2 and 4-7 are zero and
  // must be skipped, not misread.
  for (uint32_t i = 192; i < 256; ++i) list.Add(i);
  EXPECT_EQ(list.Count(), 64u);
  uint32_t calls = 0;
  list.Refine([&](uint32_t id) {
    ++calls;
    return id < 224;
  });
  EXPECT_EQ(calls, 64u);  // predicate ran only on selected ids
  EXPECT_EQ(list.Count(), 32u);
}

TEST(TupleIdList, FullToPartialToEmptyTransitions) {
  TupleIdList list;
  list.Resize(64);
  list.AddAll();
  EXPECT_TRUE(list.Full());
  list.Refine([](uint32_t id) { return id < 32; });
  EXPECT_FALSE(list.Full());
  EXPECT_FALSE(list.Empty());
  list.Refine([](uint32_t) { return false; });
  EXPECT_TRUE(list.Empty());
  uint32_t calls = 0;
  list.Refine([&](uint32_t) {
    ++calls;
    return true;
  });
  EXPECT_EQ(calls, 0u);  // nothing left to evaluate
  EXPECT_TRUE(list.Empty());
}

TEST(TupleIdList, ForEachAndMaterializeAreAscending) {
  TupleIdList list;
  list.Resize(300);
  // Insert out of order; iteration must still be ascending.
  for (uint32_t id : {299u, 0u, 65u, 64u, 128u, 13u}) list.Add(id);
  std::vector<uint32_t> seen;
  list.ForEach([&](uint32_t id) { seen.push_back(id); });
  const std::vector<uint32_t> want = {0, 13, 64, 65, 128, 299};
  EXPECT_EQ(seen, want);

  std::vector<uint32_t> mat(list.Count());
  EXPECT_EQ(list.Materialize(mat.data()), 6u);
  EXPECT_EQ(mat, want);
}

TEST(TupleIdList, IntersectWithRecomputesCount) {
  TupleIdList a;
  TupleIdList b;
  a.Resize(128);
  b.Resize(128);
  a.AddAll();
  for (uint32_t i = 0; i < 128; i += 2) b.Add(i);
  a.IntersectWith(b);
  EXPECT_EQ(a.Count(), 64u);
  for (uint32_t i = 0; i < 128; ++i) EXPECT_EQ(a.Contains(i), i % 2 == 0);
}

TEST(TupleIdList, AssignFromCopiesContents) {
  TupleIdList a;
  TupleIdList b;
  a.Resize(90);
  b.Resize(90);
  for (uint32_t i = 0; i < 90; i += 7) a.Add(i);
  b.AssignFrom(a);
  EXPECT_EQ(b.Count(), a.Count());
  for (uint32_t i = 0; i < 90; ++i) {
    EXPECT_EQ(b.Contains(i), a.Contains(i)) << i;
  }
}

TEST(TupleIdList, ResizeReusesStorageAndClears) {
  TupleIdList list;
  list.Resize(256);
  list.AddAll();
  list.Resize(32);  // shrink: must clear, not inherit stale bits
  EXPECT_EQ(list.capacity(), 32u);
  EXPECT_TRUE(list.Empty());
  list.AddAll();
  EXPECT_EQ(list.Count(), 32u);
  list.Resize(256);  // grow again within the old high-water mark
  EXPECT_TRUE(list.Empty());
}

TEST(TupleIdList, RecountAfterWordEdit) {
  TupleIdList list;
  list.Resize(128);
  list.mutable_words()[0] = 0xFFULL;
  list.mutable_words()[1] = 0x1ULL;
  list.RecountAfterWordEdit();
  EXPECT_EQ(list.Count(), 9u);
  EXPECT_TRUE(list.Contains(64));
  EXPECT_FALSE(list.Contains(63));
}

}  // namespace
}  // namespace dqsched::exec
