// Query-lifecycle tests (DESIGN.md §13): the circuit-breaker state
// machine, the storm → schedule compiler, and the fleet's end-to-end
// degradation envelope under correlated fault storms — zero wedged
// queries, a documented terminal status for every stream member, grant
// conservation on every terminal path, and byte-identical outcome
// taxonomies across --jobs.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "core/circuit_breaker.h"
#include "core/fleet_executor.h"
#include "plan/canonical_plans.h"
#include "wrapper/fault_model.h"

namespace dqsched::core {
namespace {

BreakerConfig TestBreaker() {
  BreakerConfig config;
  config.trip_suspicions = 2;
  config.cooldown = Seconds(1);
  config.cooldown_backoff = 2.0;
  config.max_cooldown = Seconds(30);
  return config;
}

TEST(CircuitBreaker, TripsAfterConsecutiveSuspicions) {
  CircuitBreaker b(TestBreaker());
  EXPECT_EQ(b.state(0), BreakerState::kClosed);
  b.OnSuspected(10);
  EXPECT_EQ(b.state(10), BreakerState::kClosed);
  b.OnSuspected(20);
  EXPECT_EQ(b.state(20), BreakerState::kOpen);
  EXPECT_FALSE(b.Allow(20));
  EXPECT_EQ(b.stats().trips, 1);
}

TEST(CircuitBreaker, RecoveryResetsSuspicionStreak) {
  CircuitBreaker b(TestBreaker());
  b.OnSuspected(10);
  b.OnRecovered(20);
  b.OnSuspected(30);  // streak restarted: still one short of the trip
  EXPECT_EQ(b.state(30), BreakerState::kClosed);
  EXPECT_TRUE(b.Allow(30));
  EXPECT_EQ(b.stats().trips, 0);
}

TEST(CircuitBreaker, DeathTripsImmediately) {
  CircuitBreaker b(TestBreaker());
  b.OnDead(5);
  EXPECT_EQ(b.state(5), BreakerState::kOpen);
  EXPECT_FALSE(b.Allow(5));
  EXPECT_EQ(b.stats().trips, 1);
}

TEST(CircuitBreaker, CooldownElapsesToHalfOpenAndAdmitsOneProbe) {
  CircuitBreaker b(TestBreaker());
  b.OnDead(0);
  EXPECT_EQ(b.state(Seconds(1) - 1), BreakerState::kOpen);
  EXPECT_EQ(b.state(Seconds(1)), BreakerState::kHalfOpen);
  // One probe is admitted; the second query must keep degrading.
  EXPECT_TRUE(b.Allow(Seconds(1)));
  EXPECT_FALSE(b.Allow(Seconds(1)));
  EXPECT_EQ(b.stats().probes, 1);
}

TEST(CircuitBreaker, ProbeSuccessResets) {
  CircuitBreaker b(TestBreaker());
  b.OnDead(0);
  ASSERT_TRUE(b.Allow(Seconds(1)));
  b.OnRecovered(Seconds(2));
  EXPECT_EQ(b.state(Seconds(2)), BreakerState::kClosed);
  EXPECT_TRUE(b.Allow(Seconds(2)));
  EXPECT_EQ(b.stats().resets, 1);
  // The cooldown backoff is forgotten after a successful probe: the next
  // trip starts from the configured base again.
  b.OnDead(Seconds(3));
  EXPECT_EQ(b.state(Seconds(3) + Seconds(1)), BreakerState::kHalfOpen);
}

TEST(CircuitBreaker, ProbeFailureReopensWithDoubledCooldown) {
  CircuitBreaker b(TestBreaker());
  b.OnDead(0);
  ASSERT_TRUE(b.Allow(Seconds(1)));  // probe in flight
  b.OnDead(Seconds(1) + Milliseconds(100));
  EXPECT_EQ(b.stats().reopens, 1);
  const SimTime reopened = Seconds(1) + Milliseconds(100);
  // Base cooldown no longer suffices — it was doubled by the failure.
  EXPECT_EQ(b.state(reopened + Seconds(1)), BreakerState::kOpen);
  EXPECT_EQ(b.state(reopened + Seconds(2)), BreakerState::kHalfOpen);
}

TEST(CircuitBreaker, SuspicionFailsAProbeToo) {
  CircuitBreaker b(TestBreaker());
  b.OnDead(0);
  ASSERT_TRUE(b.Allow(Seconds(1)));
  b.OnSuspected(Seconds(1) + 1);  // the probe ran into the outage again
  EXPECT_EQ(b.state(Seconds(1) + 1), BreakerState::kOpen);
  EXPECT_EQ(b.stats().reopens, 1);
}

TEST(CircuitBreaker, ProbeAbortReopens) {
  CircuitBreaker b(TestBreaker());
  b.OnDead(0);
  ASSERT_TRUE(b.Allow(Seconds(1)));
  // The probing query was cancelled (deadline) before proving anything:
  // the breaker must not stay wedged with a phantom probe slot.
  b.OnProbeAborted(Seconds(1) + 50);
  EXPECT_EQ(b.state(Seconds(1) + 50), BreakerState::kOpen);
  EXPECT_EQ(b.stats().reopens, 1);
  // A second abort without a probe is a no-op.
  b.OnProbeAborted(Seconds(1) + 60);
  EXPECT_EQ(b.stats().reopens, 1);
}

TEST(CircuitBreaker, MaxCooldownCaps) {
  BreakerConfig config = TestBreaker();
  config.max_cooldown = Seconds(2);
  CircuitBreaker b(config);
  SimTime now = 0;
  b.OnDead(now);
  for (int i = 0; i < 6; ++i) {
    // Walk to the next half-open window and fail the probe each time.
    now += Seconds(2);  // >= any capped cooldown
    ASSERT_EQ(b.state(now), BreakerState::kHalfOpen) << i;
    ASSERT_TRUE(b.Allow(now));
    b.OnDead(now + 1);
    now += 1;
  }
  // Cooldown is capped at 2s: the breaker still reaches half-open 2s
  // after the last reopen instead of backing off unboundedly.
  EXPECT_EQ(b.state(now + Seconds(2)), BreakerState::kHalfOpen);
}

TEST(BreakerPanel, SumsStatsInKeyOrder) {
  BreakerPanel panel(3, TestBreaker());
  panel.Of(0).OnDead(0);
  panel.Of(2).OnDead(0);
  EXPECT_EQ(panel.OpenCount(0), 2);
  ASSERT_TRUE(panel.Of(2).Allow(Seconds(1)));
  panel.Of(2).OnRecovered(Seconds(2));
  const BreakerStats total = panel.TotalStats();
  EXPECT_EQ(total.trips, 2);
  EXPECT_EQ(total.probes, 1);
  EXPECT_EQ(total.resets, 1);
  EXPECT_EQ(panel.OpenCount(Seconds(2)), 1);  // key 2 closed again
}

// ---------------------------------------------------------------------------

wrapper::StormConfig RegionStorm() {
  wrapper::StormConfig storm;
  storm.kind = wrapper::StormKind::kRegionOutage;
  storm.region_fraction = 0.5;
  storm.onset = Seconds(1);
  storm.outage = Seconds(2);
  storm.jitter = 0.0;  // exact index assertions below
  return storm;
}

constexpr double kMeanDelayNs = 1e6;  // 1 ms per tuple
constexpr int64_t kCard = 10000;

TEST(BuildStormSchedule, RegionOutageHitsOnlyTheRegion) {
  Rng rng(1);
  const wrapper::StormConfig storm = RegionStorm();
  // 4 sources at fraction 0.5: keys 0 and 1 are in the region.
  wrapper::FaultSchedule in_region = wrapper::BuildStormSchedule(
      storm, 0, 4, /*start=*/0, kMeanDelayNs, kCard, &rng);
  ASSERT_EQ(in_region.events.size(), 1u);
  EXPECT_EQ(in_region.events[0].kind, wrapper::FaultKind::kStall);
  EXPECT_EQ(in_region.events[0].at_tuple, 1000);  // 1 s / 1 ms
  EXPECT_EQ(in_region.events[0].stall, Seconds(2));

  wrapper::FaultSchedule outside = wrapper::BuildStormSchedule(
      storm, 2, 4, /*start=*/0, kMeanDelayNs, kCard, &rng);
  EXPECT_TRUE(outside.empty());
}

TEST(BuildStormSchedule, AttemptAfterStormPassesGetsEmptySchedule) {
  Rng rng(1);
  wrapper::FaultSchedule schedule = wrapper::BuildStormSchedule(
      RegionStorm(), 0, 4, /*start=*/Seconds(4), kMeanDelayNs, kCard, &rng);
  // onset + outage = 3 s < start: retry-after-recovery sees a healthy
  // source — the property the fleet's requeue path relies on.
  EXPECT_TRUE(schedule.empty());
}

TEST(BuildStormSchedule, AttemptMidWindowStallsAtTupleZero) {
  Rng rng(1);
  wrapper::FaultSchedule schedule = wrapper::BuildStormSchedule(
      RegionStorm(), 0, 4, /*start=*/Seconds(2), kMeanDelayNs, kCard, &rng);
  ASSERT_EQ(schedule.events.size(), 1u);
  EXPECT_EQ(schedule.events[0].at_tuple, 0);
  // Only the remaining window is injected: onset + outage - start = 1 s.
  EXPECT_EQ(schedule.events[0].stall, Seconds(1));
}

TEST(BuildStormSchedule, LethalOutageKillsRegardlessOfAttemptTime) {
  Rng rng(1);
  wrapper::StormConfig storm = RegionStorm();
  storm.lethal = true;
  wrapper::FaultSchedule first = wrapper::BuildStormSchedule(
      storm, 0, 4, /*start=*/0, kMeanDelayNs, kCard, &rng);
  ASSERT_EQ(first.events.size(), 1u);
  EXPECT_EQ(first.events[0].kind, wrapper::FaultKind::kDeath);
  EXPECT_EQ(first.events[0].at_tuple, 1000);
  // A retry long after the onset still finds the source dead — lethal
  // storms have no recovery.
  wrapper::FaultSchedule later = wrapper::BuildStormSchedule(
      storm, 0, 4, /*start=*/Seconds(9), kMeanDelayNs, kCard, &rng);
  ASSERT_EQ(later.events.size(), 1u);
  EXPECT_EQ(later.events[0].kind, wrapper::FaultKind::kDeath);
  EXPECT_EQ(later.events[0].at_tuple, 0);
}

TEST(BuildStormSchedule, CascadeSweepsEverySourceWithPropagationDelay) {
  wrapper::StormConfig storm;
  storm.kind = wrapper::StormKind::kCascadingSlowdown;
  storm.onset = Seconds(1);
  storm.jitter = 0.0;
  storm.wave_stall = Milliseconds(400);
  storm.propagation = Milliseconds(150);
  storm.waves = 3;
  Rng rng(1);
  for (int src : {0, 3}) {
    wrapper::FaultSchedule schedule = wrapper::BuildStormSchedule(
        storm, src, 4, /*start=*/0, kMeanDelayNs, kCard, &rng);
    ASSERT_EQ(schedule.events.size(), 3u) << src;
    // First wave reaches source k at onset + k * propagation.
    const SimTime first = Seconds(1) + src * Milliseconds(150);
    EXPECT_EQ(schedule.events[0].at_tuple, first / Milliseconds(1)) << src;
    for (const wrapper::FaultSpec& e : schedule.events) {
      EXPECT_EQ(e.kind, wrapper::FaultKind::kStall);
    }
    // Strictly increasing tuple indices (schedule validity).
    EXPECT_TRUE(schedule.Validate().ok());
  }
}

TEST(BuildStormSchedule, FlappingAlternatesInsideTheRegion) {
  wrapper::StormConfig storm;
  storm.kind = wrapper::StormKind::kFlapping;
  storm.region_fraction = 0.5;
  storm.onset = Seconds(1);
  storm.jitter = 0.0;
  storm.flap_period = Milliseconds(300);
  storm.flaps = 4;
  Rng rng(1);
  wrapper::FaultSchedule in_region = wrapper::BuildStormSchedule(
      storm, 1, 4, /*start=*/0, kMeanDelayNs, kCard, &rng);
  EXPECT_EQ(in_region.events.size(), 4u);
  EXPECT_TRUE(in_region.Validate().ok());
  wrapper::FaultSchedule outside = wrapper::BuildStormSchedule(
      storm, 3, 4, /*start=*/0, kMeanDelayNs, kCard, &rng);
  EXPECT_TRUE(outside.empty());
}

TEST(BuildStormSchedule, EventsPastCardinalityAreDropped) {
  Rng rng(1);
  // Cardinality 500 < the 1000-tuple onset index: nothing ever fires.
  wrapper::FaultSchedule schedule = wrapper::BuildStormSchedule(
      RegionStorm(), 0, 4, /*start=*/0, kMeanDelayNs, /*cardinality=*/500,
      &rng);
  EXPECT_TRUE(schedule.empty());
}

TEST(StormKindNames, RoundTrip) {
  for (wrapper::StormKind kind :
       {wrapper::StormKind::kNone, wrapper::StormKind::kRegionOutage,
        wrapper::StormKind::kCascadingSlowdown,
        wrapper::StormKind::kFlapping}) {
    wrapper::StormKind parsed;
    ASSERT_TRUE(wrapper::ParseStormKind(wrapper::StormKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  wrapper::StormKind parsed;
  EXPECT_FALSE(wrapper::ParseStormKind("hurricane", &parsed));
}

// ---------------------------------------------------------------------------

std::vector<plan::QuerySetup> TinyTemplates() {
  std::vector<plan::QuerySetup> templates;
  templates.push_back(plan::TinyTwoSourceQuery(800, 1200));
  templates.push_back(plan::TinyTwoSourceQuery(1200, 600));
  return templates;
}

std::vector<FleetQuerySpec> Stream(int n) {
  std::vector<FleetQuerySpec> workload;
  for (int i = 0; i < n; ++i) {
    FleetQuerySpec spec;
    spec.template_idx = i % 2;
    spec.arrival = Milliseconds(5.0 * i);
    spec.fairness =
        i % 3 == 0 ? FairnessClass::kBatch : FairnessClass::kInteractive;
    workload.push_back(spec);
  }
  return workload;
}

/// Probes the healthy run for its time scale: (median per-query latency,
/// fleet makespan).
std::pair<SimDuration, SimDuration> ProbeScale(const FleetConfig& config) {
  Result<FleetExecutor> probe =
      FleetExecutor::Create(TinyTemplates(), Stream(12), config);
  DQS_CHECK(probe.ok());
  Result<FleetMetrics> r = probe->Execute(StrategyKind::kDse, 1);
  DQS_CHECK(r.ok());
  std::vector<SimDuration> latencies;
  for (const FleetQueryOutcome& q : r->queries) {
    latencies.push_back(q.completed - q.joined);
  }
  std::sort(latencies.begin(), latencies.end());
  return {latencies[latencies.size() / 2], r->makespan};
}

FleetConfig StormConfigFor(SimDuration median, SimDuration makespan) {
  FleetConfig config;
  config.seed = 7;
  config.num_shards = 4;
  config.sync_turns = 64;
  config.deadline_budget = makespan;  // generous: deaths drive the kills
  config.max_attempts = 3;
  config.retry_backoff_initial = std::max<SimDuration>(1, median / 8);
  config.storm.kind = wrapper::StormKind::kRegionOutage;
  config.storm.onset = makespan / 16;
  config.storm.outage = makespan / 2;
  config.breaker.cooldown = std::max<SimDuration>(1, median);
  config.breaker.max_cooldown = makespan;
  return config;
}

/// The outcome taxonomy plus every per-query fault counter — the §13
/// byte-identity surface for storm runs.
std::string TaxonomyFingerprint(const FleetMetrics& m) {
  std::ostringstream os;
  for (const FleetQueryOutcome& q : m.queries) {
    const FaultStats& f = q.metrics.fault;
    os << q.uid << ':' << QueryStatusName(q.status) << '/' << q.attempts
       << '/' << q.deadline << '/' << q.completed << '/'
       << f.stalls_injected << '/' << f.disconnects_injected << '/'
       << f.sources_killed << '/' << f.sources_suspected << '/'
       << f.sources_dead << '/' << f.recoveries << '/'
       << f.sources_abandoned << '/' << f.replays_discarded << '/'
       << f.partial_result << '/' << f.deadline_hit << '\n';
  }
  for (int64_t c : m.status_counts) os << c << '/';
  os << '\n';
  os << m.breakers.trips << '/' << m.breakers.probes << '/'
     << m.breakers.reopens << '/' << m.breakers.resets << '\n';
  os << m.broker.grants_issued << '/' << m.broker.releases_applied << '/'
     << m.broker.shed_requests << '\n';
  return os.str();
}

TEST(FleetLifecycle, RegionOutageZeroWedgedQueries) {
  FleetConfig base;
  base.seed = 7;
  base.num_shards = 4;
  base.sync_turns = 64;
  const auto [median, makespan] = ProbeScale(base);
  ASSERT_GT(median, 0);

  const FleetConfig config = StormConfigFor(median, makespan);
  Result<FleetExecutor> fleet =
      FleetExecutor::Create(TinyTemplates(), Stream(12), config);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  for (StrategyKind kind : {StrategyKind::kSeq, StrategyKind::kDse}) {
    Result<FleetMetrics> r = fleet->Execute(kind, 2);
    // Zero wedged queries: the run itself must terminate cleanly ...
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    // ... with every query in a documented terminal status ...
    int64_t terminal = 0;
    for (int64_t c : r->status_counts) terminal += c;
    EXPECT_EQ(terminal, 12) << StrategyName(kind);
    // ... and grants == releases even on the cancel/retry/shed paths.
    EXPECT_EQ(r->broker.grants_issued, r->broker.releases_applied);
    // The storm must actually have been felt (injected silence on the
    // region sources) — otherwise this test proves nothing.
    EXPECT_TRUE(r->fault.any()) << StrategyName(kind);
  }
}

TEST(FleetLifecycle, StormTaxonomyByteIdenticalAcrossJobs) {
  FleetConfig base;
  base.seed = 7;
  base.num_shards = 4;
  base.sync_turns = 64;
  const auto [median, makespan] = ProbeScale(base);
  const FleetConfig config = StormConfigFor(median, makespan);
  Result<FleetExecutor> fleet =
      FleetExecutor::Create(TinyTemplates(), Stream(12), config);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  for (StrategyKind kind : {StrategyKind::kSeq, StrategyKind::kDse}) {
    Result<FleetMetrics> j1 = fleet->Execute(kind, 1);
    Result<FleetMetrics> j2 = fleet->Execute(kind, 2);
    Result<FleetMetrics> j8 = fleet->Execute(kind, 8);
    ASSERT_TRUE(j1.ok() && j2.ok() && j8.ok());
    const std::string f1 = TaxonomyFingerprint(*j1);
    EXPECT_EQ(f1, TaxonomyFingerprint(*j2)) << StrategyName(kind);
    EXPECT_EQ(f1, TaxonomyFingerprint(*j8)) << StrategyName(kind);
  }
}

TEST(FleetLifecycle, LethalOutageExhaustsRetriesOrDegrades) {
  FleetConfig base;
  base.seed = 7;
  base.num_shards = 4;
  base.sync_turns = 64;
  const auto [median, makespan] = ProbeScale(base);
  FleetConfig config = StormConfigFor(median, makespan);
  config.deadline_budget = 0;  // no deadlines: deaths alone drive it
  config.storm.lethal = true;
  config.storm.onset = 0;  // the region is dead from the first tuple
  config.max_attempts = 2;
  Result<FleetExecutor> fleet =
      FleetExecutor::Create(TinyTemplates(), Stream(12), config);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  Result<FleetMetrics> r = fleet->Execute(StrategyKind::kDse, 2);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  int64_t terminal = 0;
  for (int64_t c : r->status_counts) terminal += c;
  EXPECT_EQ(terminal, 12);
  // A permanent region death can never end kOk for the region queries:
  // they exhaust their retries, or a tripped breaker degrades the
  // later ones to partial at admission.
  const int64_t degraded =
      r->status_counts[static_cast<size_t>(QueryStatus::kPartial)] +
      r->status_counts[static_cast<size_t>(QueryStatus::kRetriesExhausted)];
  EXPECT_GT(degraded, 0);
  EXPECT_EQ(r->broker.grants_issued, r->broker.releases_applied);
  // The breaker layer saw the deaths.
  EXPECT_GT(r->breakers.trips, 0);
  // Retried queries consumed more than one attempt.
  int max_attempts_seen = 0;
  for (const FleetQueryOutcome& q : r->queries) {
    max_attempts_seen = std::max(max_attempts_seen, q.attempts);
  }
  EXPECT_EQ(max_attempts_seen, 2);
}

}  // namespace
}  // namespace dqsched::core
