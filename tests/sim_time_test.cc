#include "common/sim_time.h"

#include <gtest/gtest.h>

namespace dqsched {
namespace {

TEST(SimTime, UnitConversions) {
  EXPECT_EQ(Nanoseconds(5), 5);
  EXPECT_EQ(Microseconds(2.0), 2000);
  EXPECT_EQ(Milliseconds(3.0), 3000000);
  EXPECT_EQ(Seconds(1.5), 1500000000);
}

TEST(SimTime, BackConversions) {
  EXPECT_DOUBLE_EQ(ToMicros(Microseconds(7.0)), 7.0);
  EXPECT_DOUBLE_EQ(ToMillis(Milliseconds(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(ToSecondsF(Seconds(4.0)), 4.0);
}

TEST(SimTime, FormatPicksAdaptiveUnit) {
  EXPECT_EQ(FormatDuration(Nanoseconds(12)), "12 ns");
  EXPECT_EQ(FormatDuration(Microseconds(20)), "20.00 us");
  EXPECT_EQ(FormatDuration(Milliseconds(1.5)), "1.50 ms");
  EXPECT_EQ(FormatDuration(Seconds(2)), "2.000 s");
}

TEST(SimTime, FormatNever) {
  EXPECT_EQ(FormatDuration(kSimTimeNever), "never");
}

TEST(SimTime, NeverIsLargerThanAnyRealTime) {
  EXPECT_GT(kSimTimeNever, Seconds(1e6));
}

}  // namespace
}  // namespace dqsched
