// Property-based sweeps: over random queries, seeds, delay models, and
// memory budgets, the system-wide invariants of DESIGN.md Section 6 must
// hold — answer equivalence across strategies, LWB dominance, memory
// safety, determinism.

#include <gtest/gtest.h>

#include "core/mediator.h"
#include "plan/canonical_plans.h"
#include "plan/query_generator.h"

namespace dqsched::core {
namespace {

struct SweepCase {
  uint64_t seed;
  int num_sources;
  bool use_optimizer;
};

void PrintTo(const SweepCase& c, std::ostream* os) {
  *os << "seed" << c.seed << "_n" << c.num_sources
      << (c.use_optimizer ? "_opt" : "_rand");
}

class RandomQuerySweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(RandomQuerySweep, AllInvariantsHold) {
  const SweepCase& param = GetParam();
  plan::GeneratorConfig gen;
  gen.num_sources = param.num_sources;
  gen.seed = param.seed;
  gen.min_cardinality = 500;
  gen.max_cardinality = 6000;
  Result<plan::QuerySetup> setup =
      plan::GenerateBushyQuery(gen, param.use_optimizer);
  ASSERT_TRUE(setup.ok()) << setup.status().ToString();

  MediatorConfig config;
  config.seed = param.seed * 1000 + 1;
  config.memory_budget_bytes = 32LL << 20;
  Result<Mediator> mediator =
      Mediator::Create(std::move(setup->catalog), std::move(setup->plan),
                       std::move(config));
  ASSERT_TRUE(mediator.ok()) << mediator.status().ToString();

  const SimDuration lwb = mediator->LowerBound().bound();
  uint64_t checksum = 0;
  bool first = true;
  for (StrategyKind kind :
       {StrategyKind::kSeq, StrategyKind::kDse, StrategyKind::kMa}) {
    Result<ExecutionMetrics> r = mediator->Execute(kind);
    // Mediator::Execute verifies the result against the reference oracle.
    ASSERT_TRUE(r.ok()) << StrategyName(kind) << ": "
                        << r.status().ToString();
    EXPECT_GE(r->response_time, lwb) << StrategyName(kind);
    EXPECT_LE(r->peak_memory_bytes, 32LL << 20) << StrategyName(kind);
    if (first) {
      checksum = r->result_checksum;
      first = false;
    } else {
      EXPECT_EQ(r->result_checksum, checksum) << StrategyName(kind);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomQuerySweep,
    ::testing::Values(
        SweepCase{1, 2, false}, SweepCase{2, 3, false},
        SweepCase{3, 4, false}, SweepCase{4, 5, false},
        SweepCase{5, 6, false}, SweepCase{6, 7, false},
        SweepCase{7, 8, false}, SweepCase{8, 3, true},
        SweepCase{9, 5, true}, SweepCase{10, 6, true},
        SweepCase{11, 7, true}, SweepCase{12, 4, true},
        SweepCase{13, 1, false}, SweepCase{14, 2, true}),
    ::testing::PrintToStringParamName());

class DelayModelSweep
    : public ::testing::TestWithParam<wrapper::DelayKind> {};

TEST_P(DelayModelSweep, StrategiesAgreeUnderEveryDelayShape) {
  // The paper's three delay problems (initial, bursty, slow) plus the
  // baselines; applied to the slowed relation A of a scaled paper query.
  plan::QuerySetup setup = plan::PaperFigure5Query(0.02);
  wrapper::DelayConfig& delay = setup.catalog.sources[0].delay;
  delay.kind = GetParam();
  delay.initial_delay_ms = 20.0;
  delay.burst_length = 200;
  delay.burst_gap_ms = 5.0;
  delay.slow_factor = 5.0;

  MediatorConfig config;
  config.seed = 99;
  Result<Mediator> mediator = Mediator::Create(
      std::move(setup.catalog), std::move(setup.plan), std::move(config));
  ASSERT_TRUE(mediator.ok());
  const SimDuration lwb = mediator->LowerBound().bound();
  for (StrategyKind kind :
       {StrategyKind::kSeq, StrategyKind::kDse, StrategyKind::kMa}) {
    Result<ExecutionMetrics> r = mediator->Execute(kind);
    ASSERT_TRUE(r.ok()) << StrategyName(kind) << ": "
                        << r.status().ToString();
    EXPECT_GE(r->response_time, lwb);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Delays, DelayModelSweep,
    ::testing::Values(wrapper::DelayKind::kConstant,
                      wrapper::DelayKind::kUniform,
                      wrapper::DelayKind::kInitial,
                      wrapper::DelayKind::kBursty, wrapper::DelayKind::kSlow),
    [](const auto& info) {
      return std::string(wrapper::DelayKindName(info.param));
    });

class MemoryBudgetSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(MemoryBudgetSweep, CorrectUnderPressure) {
  // Shrinking budgets force operand spills and DQO splits; answers must
  // stay exact and the accountant must never exceed the budget.
  plan::QuerySetup setup = plan::ChainThreeSourceQuery(2.0);
  MediatorConfig config;
  config.memory_budget_bytes = GetParam();
  config.seed = 3;
  Result<Mediator> mediator = Mediator::Create(
      std::move(setup.catalog), std::move(setup.plan), std::move(config));
  ASSERT_TRUE(mediator.ok());
  for (StrategyKind kind : {StrategyKind::kSeq, StrategyKind::kDse}) {
    Result<ExecutionMetrics> r = mediator->Execute(kind);
    ASSERT_TRUE(r.ok()) << StrategyName(kind) << " at "
                        << GetParam() << " bytes: "
                        << r.status().ToString();
    EXPECT_LE(r->peak_memory_bytes, GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, MemoryBudgetSweep,
                         ::testing::Values(int64_t{550000}, int64_t{600000},
                                           int64_t{700000}, int64_t{1000000},
                                           int64_t{4000000}),
                         [](const auto& info) {
                           return std::to_string(info.param);
                         });

class BatchSizeSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(BatchSizeSweep, DseCorrectForAnyBatchSize) {
  plan::QuerySetup setup = plan::TinyTwoSourceQuery(800, 600, 5.0);
  MediatorConfig config;
  config.strategy.dqp.batch_size = GetParam();
  Result<Mediator> mediator = Mediator::Create(
      std::move(setup.catalog), std::move(setup.plan), std::move(config));
  ASSERT_TRUE(mediator.ok());
  Result<ExecutionMetrics> r = mediator->Execute(StrategyKind::kDse);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchSizeSweep,
                         ::testing::Values(int64_t{1}, int64_t{7}, int64_t{64},
                                           int64_t{128}, int64_t{1024},
                                           int64_t{100000}),
                         [](const auto& info) {
                           return std::to_string(info.param);
                         });

class QueueCapacitySweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(QueueCapacitySweep, WindowProtocolCorrectForAnyCapacity) {
  plan::QuerySetup setup = plan::ChainThreeSourceQuery(3.0);
  MediatorConfig config;
  config.comm.queue_capacity = GetParam();
  Result<Mediator> mediator = Mediator::Create(
      std::move(setup.catalog), std::move(setup.plan), std::move(config));
  ASSERT_TRUE(mediator.ok());
  for (StrategyKind kind : {StrategyKind::kSeq, StrategyKind::kDse}) {
    Result<ExecutionMetrics> r = mediator->Execute(kind);
    ASSERT_TRUE(r.ok()) << StrategyName(kind) << ": "
                        << r.status().ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Queues, QueueCapacitySweep,
                         ::testing::Values(int64_t{1}, int64_t{8},
                                           int64_t{256}, int64_t{4096}),
                         [](const auto& info) {
                           return std::to_string(info.param);
                         });

TEST(EmptyRelationProperty, AllStrategiesHandleEmptyBuildSide) {
  plan::QuerySetup setup = plan::TinyTwoSourceQuery(/*card_a=*/0,
                                                    /*card_b=*/500);
  Result<Mediator> mediator = Mediator::Create(
      std::move(setup.catalog), std::move(setup.plan), MediatorConfig{});
  ASSERT_TRUE(mediator.ok());
  for (StrategyKind kind :
       {StrategyKind::kSeq, StrategyKind::kDse, StrategyKind::kMa}) {
    Result<ExecutionMetrics> r = mediator->Execute(kind);
    ASSERT_TRUE(r.ok()) << StrategyName(kind);
    EXPECT_EQ(r->result_count, 0);
  }
}

TEST(EmptyRelationProperty, AllStrategiesHandleEmptyProbeSide) {
  plan::QuerySetup setup = plan::TinyTwoSourceQuery(/*card_a=*/500,
                                                    /*card_b=*/0);
  Result<Mediator> mediator = Mediator::Create(
      std::move(setup.catalog), std::move(setup.plan), MediatorConfig{});
  ASSERT_TRUE(mediator.ok());
  for (StrategyKind kind :
       {StrategyKind::kSeq, StrategyKind::kDse, StrategyKind::kMa}) {
    Result<ExecutionMetrics> r = mediator->Execute(kind);
    ASSERT_TRUE(r.ok()) << StrategyName(kind);
    EXPECT_EQ(r->result_count, 0);
  }
}

}  // namespace
}  // namespace dqsched::core
