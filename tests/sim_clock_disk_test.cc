#include <gtest/gtest.h>

#include "sim/cost_model.h"
#include "sim/disk.h"
#include "sim/network.h"
#include "sim/sim_clock.h"

namespace dqsched::sim {
namespace {

TEST(SimClock, AdvanceAccumulatesBusy) {
  SimClock clock;
  clock.Advance(100);
  clock.Advance(50);
  EXPECT_EQ(clock.now(), 150);
  EXPECT_EQ(clock.busy_time(), 150);
  EXPECT_EQ(clock.stalled_time(), 0);
}

TEST(SimClock, StallUntilAccumulatesStalled) {
  SimClock clock;
  clock.Advance(100);
  clock.StallUntil(400);
  EXPECT_EQ(clock.now(), 400);
  EXPECT_EQ(clock.busy_time(), 100);
  EXPECT_EQ(clock.stalled_time(), 300);
}

TEST(SimClock, StallUntilPastIsNoOp) {
  SimClock clock;
  clock.Advance(500);
  clock.StallUntil(300);
  EXPECT_EQ(clock.now(), 500);
  EXPECT_EQ(clock.stalled_time(), 0);
}

TEST(SimClock, BusyUntilWaitsAsBusy) {
  SimClock clock;
  clock.Advance(10);
  clock.BusyUntil(100);
  EXPECT_EQ(clock.now(), 100);
  EXPECT_EQ(clock.busy_time(), 100);
}

TEST(SimClock, ResetZeroesEverything) {
  SimClock clock;
  clock.Advance(10);
  clock.StallUntil(99);
  clock.Reset();
  EXPECT_EQ(clock.now(), 0);
  EXPECT_EQ(clock.busy_time(), 0);
  EXPECT_EQ(clock.stalled_time(), 0);
}

TEST(SimDisk, SequentialTransfersCostTransferOnly) {
  CostModel cm;
  SimDisk disk(&cm);
  const auto r1 = disk.Transfer(0, /*stream=*/1, /*pages=*/1, true);
  // First access positions, then transfers.
  EXPECT_EQ(r1.data_done, cm.DiskPositionTime() + cm.PageTransferTime());
  const auto r2 = disk.Transfer(r1.data_done, 1, 1, true);
  EXPECT_EQ(r2.data_done, r1.data_done + cm.PageTransferTime());
  EXPECT_EQ(disk.stats().positionings, 1);
}

TEST(SimDisk, StreamSwitchPaysPositioning) {
  CostModel cm;
  SimDisk disk(&cm);
  disk.Transfer(0, 1, 1, true);
  disk.Transfer(0, 2, 1, true);
  disk.Transfer(0, 1, 1, true);
  EXPECT_EQ(disk.stats().positionings, 3);
}

TEST(SimDisk, RequestsSerializeBehindBusyArm) {
  CostModel cm;
  SimDisk disk(&cm);
  const auto r1 = disk.Transfer(0, 1, 4, true);
  // Issued "now" but the arm is busy: starts after r1.
  const auto r2 = disk.Transfer(0, 1, 1, false);
  EXPECT_EQ(r2.data_done, r1.data_done + cm.PageTransferTime());
}

TEST(SimDisk, StatsCountPagesAndCalls) {
  CostModel cm;
  SimDisk disk(&cm);
  disk.Transfer(0, 1, 3, true);
  disk.Transfer(0, 1, 2, false);
  EXPECT_EQ(disk.stats().pages_written, 3);
  EXPECT_EQ(disk.stats().pages_read, 2);
  EXPECT_EQ(disk.stats().io_calls, 2);
  EXPECT_GT(disk.stats().busy, 0);
}

TEST(SimDisk, FreeAtReflectsBusyUntil) {
  CostModel cm;
  SimDisk disk(&cm);
  EXPECT_EQ(disk.FreeAt(42), 42);
  const auto r = disk.Transfer(42, 1, 1, true);
  EXPECT_EQ(disk.FreeAt(0), r.data_done);
}

TEST(NetworkModel, ChargesWholeMessagesWithCarry) {
  CostModel cm;
  NetworkModel net(&cm);
  // 204 tuples per message; 100 tuples => no whole message yet.
  EXPECT_EQ(net.ChargeReceive(0, 100), 0);
  // 104 more completes exactly one message.
  EXPECT_EQ(net.ChargeReceive(0, 104), cm.InstrTime(cm.instr_per_message));
  EXPECT_EQ(net.stats().messages_received, 1);
  EXPECT_EQ(net.stats().tuples_received, 204);
}

TEST(NetworkModel, CarryIsPerSource) {
  CostModel cm;
  NetworkModel net(&cm);
  net.ChargeReceive(0, 200);
  // A different source must not inherit source 0's carry.
  EXPECT_EQ(net.ChargeReceive(1, 10), 0);
  EXPECT_EQ(net.stats().messages_received, 0);
}

TEST(NetworkModel, LongRunChargesExactMessageCount) {
  CostModel cm;
  NetworkModel net(&cm);
  SimDuration total = 0;
  for (int i = 0; i < 1000; ++i) total += net.ChargeReceive(0, 51);
  // 51000 tuples = 250 messages worth of receive CPU.
  EXPECT_EQ(net.stats().messages_received, 51000 / 204);
  EXPECT_EQ(total, cm.InstrTime((51000 / 204) * cm.instr_per_message));
}

}  // namespace
}  // namespace dqsched::sim
