#include <gtest/gtest.h>

#include "storage/memory_accountant.h"
#include "storage/relation.h"
#include "storage/tuple.h"

namespace dqsched::storage {
namespace {

TEST(Tuple, IsFortyBytes) { EXPECT_EQ(sizeof(Tuple), 40u); }

TEST(Tuple, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(1), Mix64(1));
  EXPECT_NE(Mix64(1), Mix64(2));
  // Adjacent inputs should differ in many bits.
  const uint64_t x = Mix64(100) ^ Mix64(101);
  EXPECT_GT(__builtin_popcountll(x), 16);
}

TEST(Tuple, CombineRowidOrderSensitive) {
  EXPECT_NE(CombineRowid(1, 2), CombineRowid(2, 1));
  EXPECT_EQ(CombineRowid(7, 9), CombineRowid(7, 9));
}

TEST(Tuple, FilterPassesDeterministic) {
  for (uint64_t rowid = 0; rowid < 100; ++rowid) {
    EXPECT_EQ(FilterPasses(rowid, 3, 0.5), FilterPasses(rowid, 3, 0.5));
  }
}

TEST(Tuple, FilterPassesApproximatesSelectivity) {
  int hits = 0;
  for (uint64_t rowid = 0; rowid < 20000; ++rowid) {
    hits += FilterPasses(rowid, 11, 0.3);
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Tuple, FilterExtremes) {
  for (uint64_t rowid = 0; rowid < 100; ++rowid) {
    EXPECT_FALSE(FilterPasses(rowid, 1, 0.0));
    EXPECT_TRUE(FilterPasses(rowid, 1, 1.0));
  }
}

TEST(Tuple, FilterIdChangesOutcomeSet) {
  int diff = 0;
  for (uint64_t rowid = 0; rowid < 1000; ++rowid) {
    diff += FilterPasses(rowid, 1, 0.5) != FilterPasses(rowid, 2, 0.5);
  }
  EXPECT_GT(diff, 300);
}

TEST(ResultChecksum, OrderIndependent) {
  Tuple a, b, c;
  a.rowid = 1;
  b.rowid = 2;
  c.rowid = 3;
  a.keys[0] = 5;
  ResultChecksum x, y;
  x.Add(a);
  x.Add(b);
  x.Add(c);
  y.Add(c);
  y.Add(a);
  y.Add(b);
  EXPECT_TRUE(x == y);
  EXPECT_EQ(x.count(), 3);
}

TEST(ResultChecksum, DetectsDifferentMultisets) {
  Tuple a, b;
  a.rowid = 1;
  b.rowid = 2;
  ResultChecksum x, y;
  x.Add(a);
  y.Add(b);
  EXPECT_FALSE(x == y);
  // Duplicates matter.
  ResultChecksum z, w;
  z.Add(a);
  z.Add(a);
  w.Add(a);
  EXPECT_FALSE(z == w);
}

TEST(Relation, GenerationIsDeterministic) {
  RelationSpec spec;
  spec.name = "R";
  spec.cardinality = 500;
  spec.key_domain = {100, 50, 1, 1};
  const Relation a = GenerateRelation(spec, 3, Rng(42));
  const Relation b = GenerateRelation(spec, 3, Rng(42));
  ASSERT_EQ(a.cardinality(), 500);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.tuples[i].keys[0], b.tuples[i].keys[0]);
    EXPECT_EQ(a.tuples[i].rowid, b.tuples[i].rowid);
  }
}

TEST(Relation, KeysRespectDomains) {
  RelationSpec spec;
  spec.name = "R";
  spec.cardinality = 2000;
  spec.key_domain = {10, 1, 7, 1};
  const Relation r = GenerateRelation(spec, 0, Rng(1));
  for (const Tuple& t : r.tuples) {
    EXPECT_GE(t.keys[0], 0);
    EXPECT_LT(t.keys[0], 10);
    EXPECT_EQ(t.keys[1], 0);  // domain 1 => unused field
    EXPECT_LT(t.keys[2], 7);
    EXPECT_EQ(t.keys[3], 0);
  }
}

TEST(Relation, RowidsEncodeSourceAndSequence) {
  RelationSpec spec;
  spec.name = "R";
  spec.cardinality = 3;
  const Relation r = GenerateRelation(spec, 5, Rng(1));
  EXPECT_EQ(r.tuples[0].rowid, MakeRowid(5, 0));
  EXPECT_EQ(r.tuples[2].rowid, MakeRowid(5, 2));
  EXPECT_NE(MakeRowid(5, 0), MakeRowid(6, 0));
}

TEST(Relation, EmptyRelation) {
  RelationSpec spec;
  spec.name = "Empty";
  spec.cardinality = 0;
  EXPECT_EQ(GenerateRelation(spec, 0, Rng(1)).cardinality(), 0);
}

TEST(MemoryAccountant, GrantAndRelease) {
  MemoryAccountant mem(1000);
  EXPECT_TRUE(mem.Grant(400).ok());
  EXPECT_EQ(mem.granted(), 400);
  EXPECT_EQ(mem.available(), 600);
  mem.Release(100);
  EXPECT_EQ(mem.granted(), 300);
}

TEST(MemoryAccountant, RejectsOverBudget) {
  MemoryAccountant mem(1000);
  EXPECT_TRUE(mem.Grant(900).ok());
  const Status s = mem.Grant(200);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  // A failed grant reserves nothing.
  EXPECT_EQ(mem.granted(), 900);
}

TEST(MemoryAccountant, TracksPeak) {
  MemoryAccountant mem(1000);
  ASSERT_TRUE(mem.Grant(700).ok());
  mem.Release(700);
  ASSERT_TRUE(mem.Grant(100).ok());
  EXPECT_EQ(mem.peak(), 700);
}

TEST(MemoryAccountant, ExactBudgetFits) {
  MemoryAccountant mem(256);
  EXPECT_TRUE(mem.Grant(256).ok());
  EXPECT_EQ(mem.available(), 0);
  EXPECT_FALSE(mem.Grant(1).ok());
}

TEST(MemoryAccountant, ZeroGrantAlwaysSucceeds) {
  MemoryAccountant mem(0);
  EXPECT_TRUE(mem.Grant(0).ok());
}

}  // namespace
}  // namespace dqsched::storage
