// Sharded-fleet tests: the admission-control broker's arbitration
// semantics, deterministic shard placement, byte-identical virtual
// results across host thread counts, and grant/release conservation.

#include "core/fleet_executor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "core/memory_broker.h"
#include "plan/canonical_plans.h"

namespace dqsched::core {
namespace {

MemoryBroker::Request Req(int64_t uid, int shard, int64_t est,
                          FairnessClass cls, SimTime arrival) {
  MemoryBroker::Request r;
  r.uid = uid;
  r.shard = shard;
  r.est_bytes = est;
  r.fairness = cls;
  r.arrival = arrival;
  return r;
}

MemoryBroker::Release Rel(int64_t uid, int64_t bytes, SimTime completed) {
  MemoryBroker::Release r;
  r.uid = uid;
  r.bytes = bytes;
  r.completed_at = completed;
  return r;
}

std::vector<MemoryBroker::Grant> Flatten(
    const std::vector<std::vector<MemoryBroker::Grant>>& by_shard) {
  std::vector<MemoryBroker::Grant> all;
  for (const auto& shard : by_shard) {
    all.insert(all.end(), shard.begin(), shard.end());
  }
  return all;
}

TEST(MemoryBroker, ImmediateAdmissionStampsArrival) {
  MemoryBroker broker({/*total_budget_bytes=*/100});
  broker.Submit(Req(1, 0, 60, FairnessClass::kInteractive, 25));
  const auto grants = Flatten(broker.Arbitrate(2));
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].uid, 1);
  EXPECT_EQ(grants[0].granted_at, 25);
  EXPECT_EQ(broker.outstanding_bytes(), 60);
  EXPECT_EQ(broker.stats().queued_admissions, 0);
  EXPECT_FALSE(broker.HasQueued());
}

TEST(MemoryBroker, QueuedGrantStampsAtRelease) {
  MemoryBroker broker({100});
  broker.Submit(Req(1, 0, 80, FairnessClass::kInteractive, 0));
  broker.Submit(Req(2, 1, 50, FairnessClass::kInteractive, 10));
  auto grants = Flatten(broker.Arbitrate(2));
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].uid, 1);
  EXPECT_TRUE(broker.HasQueued());

  broker.Submit(Rel(1, 80, 500));
  grants = Flatten(broker.Arbitrate(2));
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].uid, 2);
  // The queued query is stamped when the budget freed, not when it asked.
  EXPECT_EQ(grants[0].granted_at, 500);
  EXPECT_EQ(broker.stats().queued_admissions, 1);
  EXPECT_EQ(broker.outstanding_bytes(), 50);
}

TEST(MemoryBroker, InteractiveAdmittedBeforeEarlierBatch) {
  MemoryBroker broker({100});
  broker.Submit(Req(1, 0, 100, FairnessClass::kBatch, 0));
  ASSERT_EQ(Flatten(broker.Arbitrate(2)).size(), 1u);
  // Batch asked first, but only one of the two fits after the release;
  // the interactive query must win the headroom.
  broker.Submit(Req(2, 0, 20, FairnessClass::kBatch, 1));
  broker.Submit(Req(3, 1, 90, FairnessClass::kInteractive, 2));
  ASSERT_EQ(Flatten(broker.Arbitrate(2)).size(), 0u);
  broker.Submit(Rel(1, 100, 300));
  const auto grants = Flatten(broker.Arbitrate(2));
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].uid, 3);
  EXPECT_TRUE(broker.HasQueued());  // the batch query keeps waiting
}

TEST(MemoryBroker, BatchFillsBudgetInteractiveCannotUse) {
  MemoryBroker broker({100});
  broker.Submit(Req(1, 0, 60, FairnessClass::kInteractive, 0));
  ASSERT_EQ(Flatten(broker.Arbitrate(1)).size(), 1u);
  // A huge interactive query queues; a small batch query still fits —
  // work conservation admits it rather than idling the headroom.
  broker.Submit(Req(2, 0, 90, FairnessClass::kInteractive, 1));
  broker.Submit(Req(3, 0, 30, FairnessClass::kBatch, 2));
  const auto grants = Flatten(broker.Arbitrate(1));
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].uid, 3);
  EXPECT_EQ(broker.outstanding_bytes(), 90);
}

TEST(MemoryBroker, OversizedLoneQueryAdmits) {
  MemoryBroker broker({10});
  broker.Submit(Req(1, 0, 5000, FairnessClass::kBatch, 0));
  const auto grants = Flatten(broker.Arbitrate(1));
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].uid, 1);
  EXPECT_EQ(broker.outstanding_bytes(), 5000);
}

TEST(MemoryBroker, ForceAdmitBreaksDeadlockAndCounts) {
  MemoryBroker broker({10});
  broker.Submit(Req(1, 0, 8, FairnessClass::kBatch, 0));
  ASSERT_EQ(Flatten(broker.Arbitrate(1)).size(), 1u);
  broker.Submit(Req(2, 0, 8, FairnessClass::kBatch, 1));
  ASSERT_EQ(Flatten(broker.Arbitrate(1)).size(), 0u);
  ASSERT_TRUE(broker.HasQueued());
  const auto grants = Flatten(broker.ForceAdmit(1));
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].uid, 2);
  EXPECT_EQ(broker.stats().forced_admissions, 1);
  EXPECT_FALSE(broker.HasQueued());
}

TEST(MemoryBroker, ArbitrationIndependentOfSubmissionOrder) {
  // Two brokers see the same round's events in opposite thread
  // interleavings; the sorted canonical order makes the grants equal.
  MemoryBroker a({100});
  MemoryBroker b({100});
  const auto r1 = Req(1, 0, 40, FairnessClass::kInteractive, 7);
  const auto r2 = Req(2, 1, 40, FairnessClass::kBatch, 3);
  const auto r3 = Req(3, 0, 40, FairnessClass::kInteractive, 5);
  a.Submit(r1);
  a.Submit(r2);
  a.Submit(r3);
  b.Submit(r3);
  b.Submit(r2);
  b.Submit(r1);
  const auto ga = Flatten(a.Arbitrate(2));
  const auto gb = Flatten(b.Arbitrate(2));
  ASSERT_EQ(ga.size(), gb.size());
  for (size_t i = 0; i < ga.size(); ++i) {
    EXPECT_EQ(ga[i].uid, gb[i].uid);
    EXPECT_EQ(ga[i].granted_at, gb[i].granted_at);
  }
  EXPECT_EQ(a.outstanding_bytes(), b.outstanding_bytes());
}

// ---------------------------------------------------------------------------

std::vector<plan::QuerySetup> TinyTemplates() {
  std::vector<plan::QuerySetup> templates;
  templates.push_back(plan::TinyTwoSourceQuery(800, 1200));
  templates.push_back(plan::TinyTwoSourceQuery(1200, 600));
  return templates;
}

std::vector<FleetQuerySpec> Stream(int n) {
  std::vector<FleetQuerySpec> workload;
  for (int i = 0; i < n; ++i) {
    FleetQuerySpec spec;
    spec.template_idx = i % 2;
    spec.arrival = Milliseconds(5.0 * i);
    spec.fairness =
        i % 3 == 0 ? FairnessClass::kBatch : FairnessClass::kInteractive;
    workload.push_back(spec);
  }
  return workload;
}

FleetConfig SmallConfig() {
  FleetConfig config;
  config.seed = 7;
  config.num_shards = 4;
  config.sync_turns = 64;
  return config;
}

/// Every virtual field of a fleet run, serialized. Excludes the two
/// host-wall quantities (metrics.planning_host_seconds) — everything
/// here must be byte-identical across --jobs (DESIGN.md §11/§12).
std::string Fingerprint(const FleetMetrics& m) {
  std::ostringstream os;
  for (const FleetQueryOutcome& q : m.queries) {
    os << q.uid << '/' << q.shard << '/' << q.template_idx << '/'
       << static_cast<int>(q.fairness) << '/' << q.est_bytes << '/'
       << q.arrival << '/' << q.admitted << '/' << q.joined << '/'
       << q.completed << '/' << q.completion_latency << '/'
       << q.metrics.response_time << '/' << q.metrics.busy_time << '/'
       << q.metrics.stalled_time << '/' << q.metrics.result_count << '/'
       << q.metrics.result_checksum << '/' << q.metrics.planning_phases << '/'
       << q.metrics.execution_phases << '/' << q.metrics.degradations << '/'
       << q.metrics.cf_activations << '/' << q.metrics.dqo_splits << '/'
       << q.metrics.operand_spills << '/' << q.metrics.timeouts << '/'
       << q.metrics.rate_change_events << '/' << q.metrics.peak_memory_bytes
       << '/' << static_cast<int>(q.status) << '/' << q.attempts << '/'
       << q.deadline << '/' << q.metrics.fault.stalls_injected << '/'
       << q.metrics.fault.disconnects_injected << '/'
       << q.metrics.fault.sources_killed << '/'
       << q.metrics.fault.sources_suspected << '/'
       << q.metrics.fault.sources_dead << '/'
       << q.metrics.fault.recoveries << '/'
       << q.metrics.fault.sources_abandoned << '/'
       << q.metrics.fault.replays_discarded << '/'
       << q.metrics.fault.partial_result << '/'
       << q.metrics.fault.deadline_hit << '\n';
  }
  for (const FleetShardOutcome& s : m.shards) {
    os << s.queries << '/' << s.makespan << '/' << s.busy_time << '/'
       << s.stalled_time << '/' << s.peak_memory_bytes << '/'
       << s.disk.pages_read << '/' << s.disk.pages_written << '/'
       << s.network.tuples_received << '/' << s.temps.temps_created << '\n';
  }
  os << m.makespan << '/' << m.rounds << '/' << m.broker.grants_issued << '/'
     << m.broker.releases_applied << '/' << m.broker.queued_admissions << '/'
     << m.broker.forced_admissions << '/' << m.broker.shed_requests << '/'
     << m.broker.peak_outstanding_bytes << '\n';
  for (int64_t c : m.status_counts) os << c << '/';
  os << m.breakers.trips << '/' << m.breakers.probes << '/'
     << m.breakers.reopens << '/' << m.breakers.resets << '/'
     << m.fault.stalls_injected << '/' << m.fault.sources_killed << '/'
     << m.fault.sources_dead << '/' << m.fault.deadline_hit << '\n';
  return os.str();
}

TEST(FleetExecutor, CreateValidates) {
  EXPECT_FALSE(
      FleetExecutor::Create({}, Stream(2), SmallConfig()).ok());
  EXPECT_FALSE(
      FleetExecutor::Create(TinyTemplates(), {}, SmallConfig()).ok());
  FleetConfig bad = SmallConfig();
  bad.num_shards = 0;
  EXPECT_FALSE(FleetExecutor::Create(TinyTemplates(), Stream(2), bad).ok());
  std::vector<FleetQuerySpec> unknown = Stream(2);
  unknown[1].template_idx = 9;
  EXPECT_FALSE(
      FleetExecutor::Create(TinyTemplates(), unknown, SmallConfig()).ok());
  std::vector<FleetQuerySpec> negative = Stream(2);
  negative[0].arrival = -1;
  EXPECT_FALSE(
      FleetExecutor::Create(TinyTemplates(), negative, SmallConfig()).ok());
}

TEST(FleetExecutor, MaIsRejected) {
  Result<FleetExecutor> fleet =
      FleetExecutor::Create(TinyTemplates(), Stream(4), SmallConfig());
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  EXPECT_FALSE(fleet->Execute(StrategyKind::kMa, 1).ok());
}

TEST(FleetExecutor, CompletesVerifiesAndAccountsEveryQuery) {
  Result<FleetExecutor> fleet =
      FleetExecutor::Create(TinyTemplates(), Stream(12), SmallConfig());
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  Result<FleetMetrics> r = fleet->Execute(StrategyKind::kDse, 2);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->queries.size(), 12u);

  SimTime max_shard_makespan = 0;
  int shard_query_total = 0;
  for (const FleetShardOutcome& s : r->shards) {
    max_shard_makespan = std::max(max_shard_makespan, s.makespan);
    shard_query_total += s.queries;
  }
  EXPECT_EQ(shard_query_total, 12);
  EXPECT_EQ(r->makespan, max_shard_makespan);

  for (const FleetQueryOutcome& q : r->queries) {
    // Admission chain: arrival <= admitted <= joined <= completed.
    EXPECT_GE(q.admitted, q.arrival);
    EXPECT_GE(q.joined, q.admitted);
    EXPECT_GT(q.completed, q.joined);
    EXPECT_EQ(q.completion_latency, q.completed - q.arrival);
    EXPECT_GT(q.metrics.result_count, 0);
    EXPECT_GE(q.est_bytes, 1);
    EXPECT_GE(q.shard, 0);
    EXPECT_LT(q.shard, 4);
  }

  // Grant/release conservation: every admitted query released its grant
  // and the broker ended the run with nothing outstanding.
  EXPECT_EQ(r->broker.grants_issued, 12);
  EXPECT_EQ(r->broker.releases_applied, 12);
  EXPECT_GT(r->broker.peak_outstanding_bytes, 0);
}

TEST(FleetExecutor, ShardPlacementIsDeterministicAndSpread) {
  Result<FleetExecutor> a =
      FleetExecutor::Create(TinyTemplates(), Stream(16), SmallConfig());
  Result<FleetExecutor> b =
      FleetExecutor::Create(TinyTemplates(), Stream(16), SmallConfig());
  ASSERT_TRUE(a.ok() && b.ok());
  Result<FleetMetrics> ra = a->Execute(StrategyKind::kSeq, 1);
  Result<FleetMetrics> rb = b->Execute(StrategyKind::kSeq, 1);
  ASSERT_TRUE(ra.ok() && rb.ok());
  std::vector<bool> used(4, false);
  for (size_t i = 0; i < ra->queries.size(); ++i) {
    EXPECT_EQ(ra->queries[i].shard, rb->queries[i].shard);
    used[static_cast<size_t>(ra->queries[i].shard)] = true;
  }
  // The uid hash must actually spread a 16-query stream.
  int shards_used = 0;
  for (bool u : used) shards_used += u ? 1 : 0;
  EXPECT_GE(shards_used, 2);
}

TEST(FleetExecutor, VirtualResultsByteIdenticalAcrossJobs) {
  Result<FleetExecutor> fleet =
      FleetExecutor::Create(TinyTemplates(), Stream(10), SmallConfig());
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  for (StrategyKind kind : {StrategyKind::kSeq, StrategyKind::kDse}) {
    Result<FleetMetrics> j1 = fleet->Execute(kind, 1);
    Result<FleetMetrics> j2 = fleet->Execute(kind, 2);
    Result<FleetMetrics> j8 = fleet->Execute(kind, 8);
    ASSERT_TRUE(j1.ok() && j2.ok() && j8.ok());
    const std::string f1 = Fingerprint(*j1);
    EXPECT_EQ(f1, Fingerprint(*j2)) << StrategyName(kind);
    EXPECT_EQ(f1, Fingerprint(*j8)) << StrategyName(kind);
  }
}

TEST(FleetExecutor, TightBudgetQueuesAdmissions) {
  // Probe the admission estimates with a roomy run, then set the budget
  // to the largest single estimate: only one query fits at a time, so
  // admissions serialize through the broker queue — while each shard's
  // runtime budget still covers the query it is executing.
  Result<FleetExecutor> probe =
      FleetExecutor::Create(TinyTemplates(), Stream(6), SmallConfig());
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  Result<FleetMetrics> probed = probe->Execute(StrategyKind::kDse, 1);
  ASSERT_TRUE(probed.ok()) << probed.status().ToString();
  int64_t max_est = 1;
  for (const FleetQueryOutcome& q : probed->queries) {
    max_est = std::max(max_est, q.est_bytes);
  }

  FleetConfig config = SmallConfig();
  config.memory_budget_bytes = max_est;
  Result<FleetExecutor> fleet =
      FleetExecutor::Create(TinyTemplates(), Stream(6), config);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  Result<FleetMetrics> r = fleet->Execute(StrategyKind::kDse, 2);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->broker.queued_admissions, 0);
  EXPECT_EQ(r->broker.grants_issued, 6);
  EXPECT_EQ(r->broker.releases_applied, 6);
  int waited = 0;
  for (const FleetQueryOutcome& q : r->queries) {
    if (q.admitted > q.arrival) ++waited;
    EXPECT_GE(q.joined, q.admitted);
  }
  EXPECT_GT(waited, 0);
  // Serialized admissions still finish every query with verified results
  // (verify_results is on in SmallConfig's default).
  for (const FleetQueryOutcome& q : r->queries) {
    EXPECT_GT(q.metrics.result_count, 0);
  }
}

TEST(FleetExecutor, SingleShardMatchesMultiShardResults) {
  // Result correctness is shard-placement-independent: every query's
  // (count, checksum) is the template's reference answer either way.
  FleetConfig one = SmallConfig();
  one.num_shards = 1;
  Result<FleetExecutor> a =
      FleetExecutor::Create(TinyTemplates(), Stream(8), one);
  Result<FleetExecutor> b =
      FleetExecutor::Create(TinyTemplates(), Stream(8), SmallConfig());
  ASSERT_TRUE(a.ok() && b.ok());
  Result<FleetMetrics> ra = a->Execute(StrategyKind::kDse, 2);
  Result<FleetMetrics> rb = b->Execute(StrategyKind::kDse, 2);
  ASSERT_TRUE(ra.ok() && rb.ok());
  ASSERT_EQ(ra->queries.size(), rb->queries.size());
  for (size_t i = 0; i < ra->queries.size(); ++i) {
    EXPECT_EQ(ra->queries[i].metrics.result_count,
              rb->queries[i].metrics.result_count);
    EXPECT_EQ(ra->queries[i].metrics.result_checksum,
              rb->queries[i].metrics.result_checksum);
  }
}

TEST(FleetExecutor, CancelMidFlightConservesGrants) {
  // Probe the healthy run for its latency scale, then arm a deadline at
  // roughly a third of the median: most queries get cancelled mid-flight
  // (some after retries), and every grant the broker ever issued must
  // still come back — cancellation releases the admission estimate just
  // like completion does.
  Result<FleetExecutor> probe =
      FleetExecutor::Create(TinyTemplates(), Stream(10), SmallConfig());
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  Result<FleetMetrics> probed = probe->Execute(StrategyKind::kDse, 1);
  ASSERT_TRUE(probed.ok()) << probed.status().ToString();
  std::vector<SimDuration> latencies;
  for (const FleetQueryOutcome& q : probed->queries) {
    latencies.push_back(q.completed - q.joined);
  }
  std::sort(latencies.begin(), latencies.end());
  const SimDuration median = latencies[latencies.size() / 2];
  ASSERT_GT(median, 0);

  FleetConfig config = SmallConfig();
  config.deadline_budget = std::max<SimDuration>(1, median / 3);
  config.max_attempts = 2;
  Result<FleetExecutor> fleet =
      FleetExecutor::Create(TinyTemplates(), Stream(10), config);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  Result<FleetMetrics> r = fleet->Execute(StrategyKind::kDse, 2);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  // Every query terminated in a documented status, and the taxonomy sums
  // to the stream size.
  int64_t terminal = 0;
  for (int64_t c : r->status_counts) terminal += c;
  EXPECT_EQ(terminal, 10);
  // The tight deadline must actually have fired: at least one query was
  // cancelled mid-flight (or shed by deadline-aware admission).
  const int64_t cancelled =
      r->status_counts[static_cast<size_t>(QueryStatus::kDeadlineCancelled)] +
      r->status_counts[static_cast<size_t>(QueryStatus::kShed)];
  EXPECT_GT(cancelled, 0);

  // Grant/release conservation on every terminal path: shed requests are
  // never granted, everything granted was released (by completion or by
  // mid-flight cancellation).
  EXPECT_EQ(r->broker.grants_issued, r->broker.releases_applied);
  for (const FleetQueryOutcome& q : r->queries) {
    if (q.status == QueryStatus::kShed) continue;
    EXPECT_GE(q.attempts, 1);
    EXPECT_LE(q.attempts, 2);
    EXPECT_GT(q.deadline, 0);
    if (q.status == QueryStatus::kDeadlineCancelled) {
      EXPECT_TRUE(q.metrics.fault.deadline_hit);
    }
  }
}

TEST(FleetExecutor, DeadlineLifecycleByteIdenticalAcrossJobs) {
  FleetConfig config = SmallConfig();
  config.deadline_budget = Milliseconds(2);
  config.max_attempts = 2;
  Result<FleetExecutor> fleet =
      FleetExecutor::Create(TinyTemplates(), Stream(10), config);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  Result<FleetMetrics> j1 = fleet->Execute(StrategyKind::kDse, 1);
  Result<FleetMetrics> j2 = fleet->Execute(StrategyKind::kDse, 2);
  Result<FleetMetrics> j8 = fleet->Execute(StrategyKind::kDse, 8);
  ASSERT_TRUE(j1.ok() && j2.ok() && j8.ok());
  const std::string f1 = Fingerprint(*j1);
  EXPECT_EQ(f1, Fingerprint(*j2));
  EXPECT_EQ(f1, Fingerprint(*j8));
}

}  // namespace
}  // namespace dqsched::core
