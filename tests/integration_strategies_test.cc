// Integration tests: every strategy produces the exact reference answer on
// every setup, respects the lower bound, and behaves deterministically.

#include <gtest/gtest.h>

#include "core/mediator.h"
#include "plan/canonical_plans.h"

namespace dqsched::core {
namespace {

MediatorConfig SmallConfig() {
  MediatorConfig config;
  config.memory_budget_bytes = 64LL * 1024 * 1024;
  config.seed = 7;
  return config;
}

Mediator MakeMediator(plan::QuerySetup setup, MediatorConfig config) {
  Result<Mediator> m = Mediator::Create(std::move(setup.catalog),
                                        std::move(setup.plan),
                                        std::move(config));
  EXPECT_TRUE(m.ok()) << m.status().ToString();
  return std::move(m.value());
}

TEST(IntegrationTiny, AllStrategiesAgreeWithReference) {
  Mediator m = MakeMediator(plan::TinyTwoSourceQuery(), SmallConfig());
  for (StrategyKind kind :
       {StrategyKind::kSeq, StrategyKind::kDse, StrategyKind::kMa}) {
    Result<ExecutionMetrics> r = m.Execute(kind);
    ASSERT_TRUE(r.ok()) << StrategyName(kind) << ": "
                        << r.status().ToString();
    EXPECT_EQ(r->result_count, m.reference().result_card)
        << StrategyName(kind);
    EXPECT_EQ(r->result_checksum, m.reference().checksum.value())
        << StrategyName(kind);
    EXPECT_GE(r->response_time, m.LowerBound().bound()) << StrategyName(kind);
  }
}

TEST(IntegrationChain, AllStrategiesAgreeWithReference) {
  Mediator m = MakeMediator(plan::ChainThreeSourceQuery(), SmallConfig());
  for (StrategyKind kind :
       {StrategyKind::kSeq, StrategyKind::kDse, StrategyKind::kMa}) {
    Result<ExecutionMetrics> r = m.Execute(kind);
    ASSERT_TRUE(r.ok()) << StrategyName(kind) << ": "
                        << r.status().ToString();
    EXPECT_GE(r->response_time, m.LowerBound().bound()) << StrategyName(kind);
  }
}

TEST(IntegrationPaperPlanScaled, DseBeatsSeqWithSlowSource) {
  // 5% scale paper plan with source A slowed: DSE should clearly win.
  plan::QuerySetup setup = plan::PaperFigure5Query(/*scale=*/0.05);
  setup.catalog.sources[0].delay.mean_us = 200.0;  // slow down A 10x
  Mediator m = MakeMediator(std::move(setup), SmallConfig());

  Result<ExecutionMetrics> seq = m.Execute(StrategyKind::kSeq);
  Result<ExecutionMetrics> dse = m.Execute(StrategyKind::kDse);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  ASSERT_TRUE(dse.ok()) << dse.status().ToString();
  EXPECT_EQ(seq->result_checksum, dse->result_checksum);
  EXPECT_LT(dse->response_time, seq->response_time);
  EXPECT_GE(dse->response_time, m.LowerBound().bound());
}

TEST(IntegrationDeterminism, RepeatedDseRunsIdentical) {
  Mediator m = MakeMediator(plan::TinyTwoSourceQuery(), SmallConfig());
  Result<ExecutionMetrics> a = m.Execute(StrategyKind::kDse);
  Result<ExecutionMetrics> b = m.Execute(StrategyKind::kDse);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->response_time, b->response_time);
  EXPECT_EQ(a->result_checksum, b->result_checksum);
  EXPECT_EQ(a->execution_phases, b->execution_phases);
}

}  // namespace
}  // namespace dqsched::core
