// Execution-trace tests (core/trace.h).

#include "core/trace.h"

#include <gtest/gtest.h>

#include "core/mediator.h"
#include "plan/canonical_plans.h"

namespace dqsched::core {
namespace {

TEST(Trace, DisabledRecordsNothing) {
  ExecutionTrace trace;
  trace.Record(10, TraceEventKind::kDegradation, 1, "x");
  trace.RecordBatch(10, 1, 5);
  EXPECT_TRUE(trace.events().empty());
  EXPECT_TRUE(trace.batches().empty());
}

TEST(Trace, EnabledRecordsInOrder) {
  ExecutionTrace trace;
  trace.set_enabled(true);
  trace.Record(10, TraceEventKind::kPlanningPhase, -1, "first");
  trace.Record(20, TraceEventKind::kEndOfQf, 3, "second");
  ASSERT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.events()[0].time, 10);
  EXPECT_EQ(trace.events()[1].fragment, 3);
  EXPECT_EQ(trace.CountOf(TraceEventKind::kEndOfQf), 1);
  EXPECT_EQ(trace.CountOf(TraceEventKind::kTimeout), 0);
}

TEST(Trace, EventLogRendersEveryLine) {
  ExecutionTrace trace;
  trace.set_enabled(true);
  trace.Record(Microseconds(5), TraceEventKind::kDegradation, 7, "MF(p_X)");
  const std::string log = trace.RenderEventLog();
  EXPECT_NE(log.find("degrade"), std::string::npos);
  EXPECT_NE(log.find("MF(p_X)"), std::string::npos);
  EXPECT_NE(log.find("frag 7"), std::string::npos);
}

TEST(Trace, EventLogTruncates) {
  ExecutionTrace trace;
  trace.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    trace.Record(i, TraceEventKind::kPlanningPhase, -1, "p");
  }
  const std::string log = trace.RenderEventLog(3);
  EXPECT_NE(log.find("7 more events"), std::string::npos);
}

TEST(Trace, TimelineBucketsActivity) {
  ExecutionTrace trace;
  trace.set_enabled(true);
  trace.RecordBatch(Seconds(0.1), 0, 100);
  trace.RecordBatch(Seconds(0.9), 0, 800);
  trace.RecordBatch(Seconds(0.5), 1, 50);
  const std::string timeline =
      trace.RenderTimeline({"alpha", "beta"}, /*columns=*/20);
  EXPECT_NE(timeline.find("alpha"), std::string::npos);
  EXPECT_NE(timeline.find("beta"), std::string::npos);
  EXPECT_NE(timeline.find('#'), std::string::npos);
}

TEST(Trace, TimelineHandlesEmpty) {
  ExecutionTrace trace;
  trace.set_enabled(true);
  EXPECT_NE(trace.RenderTimeline({}).find("no batch activity"),
            std::string::npos);
}

TEST(Trace, KindNamesStable) {
  EXPECT_STREQ(TraceEventKindName(TraceEventKind::kDegradation), "degrade");
  EXPECT_STREQ(TraceEventKindName(TraceEventKind::kCfActivation),
               "activate-cf");
  EXPECT_STREQ(TraceEventKindName(TraceEventKind::kDqoSplit), "dqo-split");
  EXPECT_STREQ(TraceEventKindName(TraceEventKind::kOperandSpill), "spill");
}

TEST(TracedExecution, DseRunRecordsTheStory) {
  plan::QuerySetup setup = plan::PaperFigure5Query(0.02);
  Result<Mediator> m = Mediator::Create(std::move(setup.catalog),
                                        std::move(setup.plan),
                                        MediatorConfig{});
  ASSERT_TRUE(m.ok());
  Result<Mediator::TracedExecution> run =
      m->ExecuteTraced(StrategyKind::kDse);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const ExecutionTrace& trace = run->trace;
  // All four blocked chains degrade, later resume as CFs, and every
  // fragment's end is recorded.
  EXPECT_EQ(trace.CountOf(TraceEventKind::kDegradation), 4);
  EXPECT_EQ(trace.CountOf(TraceEventKind::kCfActivation), 4);
  EXPECT_GE(trace.CountOf(TraceEventKind::kEndOfQf), 6);
  EXPECT_GT(trace.CountOf(TraceEventKind::kPlanningPhase), 4);
  EXPECT_FALSE(trace.batches().empty());
  // The trace is consistent with the metrics.
  EXPECT_EQ(run->metrics.degradations, 4);
  // Names cover every fragment id seen in batches.
  for (const TraceBatch& b : trace.batches()) {
    ASSERT_GE(b.fragment, 0);
    ASSERT_LT(static_cast<size_t>(b.fragment), run->fragment_names.size());
  }
  // Times are non-decreasing (the virtual clock is monotonic).
  for (size_t i = 1; i < trace.events().size(); ++i) {
    EXPECT_LE(trace.events()[i - 1].time, trace.events()[i].time);
  }
}

TEST(TracedExecution, PlainExecuteRecordsNothing) {
  plan::QuerySetup setup = plan::TinyTwoSourceQuery();
  Result<Mediator> m = Mediator::Create(std::move(setup.catalog),
                                        std::move(setup.plan),
                                        MediatorConfig{});
  ASSERT_TRUE(m.ok());
  // Execute() runs untraced; this simply must not blow up or slow down —
  // covered by the fact that every other test uses Execute().
  EXPECT_TRUE(m->Execute(StrategyKind::kDse).ok());
}

}  // namespace
}  // namespace dqsched::core
