#include <unordered_map>

int Sum(const std::unordered_map<int, int>& extra) {
  std::unordered_map<int, int> counts;
  int total = 0;
  for (const auto& kv : counts) {
    total += kv.second;
  }
  for (auto it = counts.begin(); it != counts.end(); ++it) {
    total += it->second;
  }
  for (const auto& kv : extra) {
    total += kv.second;
  }
  return total;
}
