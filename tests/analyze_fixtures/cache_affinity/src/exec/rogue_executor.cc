#include "storage/result_cache.h"

void Probe() {
  ResultCache* cache = nullptr;
  CacheManager* manager = nullptr;
  (void)cache;
  (void)manager;
}
