#include "core/cache_manager.h"

void PlanTimeHit() {
  CacheManager* manager = nullptr;
  (void)manager;
}
