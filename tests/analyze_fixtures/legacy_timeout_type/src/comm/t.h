struct Conf {
  long long timeout_ns = 0;
  int stalls = 0;
};
