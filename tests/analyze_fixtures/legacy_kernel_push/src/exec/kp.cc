void Copy(Vec& out, int t) {
  out.push_back(t);
  out.push_back(t);  // dqs-analyze: allow(kernel-push) blessed expansion
}
