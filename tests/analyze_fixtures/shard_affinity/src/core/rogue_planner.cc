#include "core/memory_broker.h"

void Plan() {
  MemoryBroker* broker = nullptr;
  (void)broker;
}
