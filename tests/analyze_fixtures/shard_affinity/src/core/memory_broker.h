// Blessed owner: the broker may of course name itself.
class MemoryBroker {
 public:
  void Arbitrate();
};
