// Blessed owner: the coordinator arbitrates at the round barrier.
#include "core/memory_broker.h"

static MemoryBroker broker;

void Round() { broker.Arbitrate(); }
