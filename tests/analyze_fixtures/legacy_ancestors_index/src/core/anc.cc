int CountAncestors(const Plan& plan, int c) {
  int n = 0;
  for (int a : plan.Ancestors(c)) {
    n += a;
  }
  return n;
}
