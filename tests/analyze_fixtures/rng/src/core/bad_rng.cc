#include <random>

unsigned Draw() {
  std::mt19937 gen(42);
  std::random_device rd;
  return gen() + rd() + static_cast<unsigned>(rand());
}
