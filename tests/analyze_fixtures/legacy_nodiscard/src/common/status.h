namespace dqsched {
class Status {};
class Result {};
}
