Status ParseCount(int n) {
  DQS_CHECK(n >= 0);
  return Status();
}

Status HandleCount(int n) {
  DQS_CHECK(n >= 0);
  return Status();
}
