#include "core/circuit_breaker.h"

void Consult() {
  CircuitBreaker* breaker = nullptr;
  (void)breaker;
}
