#include "core/circuit_breaker.h"

void Pump() {
  CircuitBreaker* breaker = nullptr;
  BreakerPanel* panel = nullptr;
  (void)breaker;
  (void)panel;
}
