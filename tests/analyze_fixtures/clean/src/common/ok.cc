#include "common/ok.h"

namespace dqsched {
int Ok() { return 1; }
}
