#ifndef DQSCHED_COMMON_OK_H_
#define DQSCHED_COMMON_OK_H_

namespace dqsched {
int Ok();
}

#endif  // DQSCHED_COMMON_OK_H_
