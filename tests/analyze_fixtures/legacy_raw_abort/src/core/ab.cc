void Die(bool hard) {
  if (hard) abort();
  std::exit(1);
}
