#include "core/other.h"
#include "core/foo.h"

namespace dqsched::core {
int Foo() { return Other(); }
}
