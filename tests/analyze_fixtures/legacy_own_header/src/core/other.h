namespace dqsched::core {
int Other();
}
