namespace dqsched::core {
int Foo();
}
