void F() {}  // dqs-analyze: allow(no-such-rule)
// dqs-analyze: begin-allow(rng)
void G() {}
