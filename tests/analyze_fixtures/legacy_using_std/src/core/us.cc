using namespace std;
