#include <chrono>

double Sample() {
  const auto t0 = std::chrono::steady_clock::now();
  const auto secs = time(nullptr);
  return static_cast<double>(secs) + std::chrono::duration<double>(
      std::chrono::steady_clock::now() - t0).count();
}
