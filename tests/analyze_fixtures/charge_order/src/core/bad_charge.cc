struct Clock {
  void Advance(long d);
  void ChargeInstr(long n);
};

void Tick(Clock& clock, Clock* ctx) {
  clock.Advance(3);
  ctx->ChargeInstr(5);
}
