void Drain(Queue& q, int t) {
  q.Push(t);
}
