#include "core/top.h"

namespace dqsched::sim {
int UsesCore();
}
