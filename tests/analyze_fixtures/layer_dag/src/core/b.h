#include "core/a.h"

namespace dqsched::core {
int B();
}
