#include "core/b.h"

namespace dqsched::core {
int A();
}
