namespace dqsched::core {
int Top();
}
