// Invariant auditor tests: canonical plans and real executions pass every
// audit; hand-corrupted plans and states are rejected with a precise
// Status. Each corruption case targets one violation class of
// src/core/invariant_auditor.h.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/dqp.h"
#include "core/dqs.h"
#include "core/invariant_auditor.h"
#include "plan/canonical_plans.h"
#include "wrapper/wrapper.h"

namespace dqsched::core {
namespace {

using ::testing::Test;

/// Expects `status` failed and its message carries `needle`.
void ExpectRejected(const Status& status, const std::string& needle) {
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find(needle), std::string::npos)
      << "status was: " << status.ToString();
}

class InvariantAuditorTest : public Test {
 protected:
  void Init(plan::QuerySetup setup, int64_t memory = 64 << 20) {
    setup_ = std::move(setup);
    auto compiled = plan::Compile(setup_.plan, setup_.catalog);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    compiled_ = std::move(compiled.value());
    ASSERT_TRUE(plan::Annotate(&compiled_, setup_.catalog, cost_).ok());
    ctx_ = std::make_unique<exec::ExecContext>(&cost_, comm_config_, memory);
    data_.reserve(static_cast<size_t>(setup_.catalog.num_sources()));
    for (SourceId s = 0; s < setup_.catalog.num_sources(); ++s) {
      data_.push_back(storage::GenerateRelation(
          setup_.catalog.source(s).relation, s, Rng(s + 1)));
      ctx_->comm.AddSource(
          std::make_unique<wrapper::SimWrapper>(
              s, &data_.back(), setup_.catalog.source(s).delay, s + 11),
          static_cast<double>(cost_.MinWaitingTime()));
    }
    state_ = std::make_unique<ExecutionState>(&compiled_, ctx_.get(),
                                              ExecutionOptions{});
  }

  /// One plan/execute/finish round; returns the plan for inspection.
  SchedulingPlan Round() {
    Result<SchedulingPlan> sp = dqs_.ComputePlan(*state_, *ctx_, dqo_);
    EXPECT_TRUE(sp.ok()) << sp.status().ToString();
    Result<Event> evt = dqp_.RunPhase(*state_, *sp, *ctx_);
    EXPECT_TRUE(evt.ok()) << evt.status().ToString();
    if (evt->kind == EventKind::kEndOfQf) {
      state_->OnFragmentFinished(evt->fragment, *ctx_);
    }
    return *std::move(sp);
  }

  sim::CostModel cost_;
  comm::CommConfig comm_config_;
  plan::QuerySetup setup_;
  plan::CompiledPlan compiled_;
  std::vector<storage::Relation> data_;
  std::unique_ptr<exec::ExecContext> ctx_;
  std::unique_ptr<ExecutionState> state_;
  Dqs dqs_{DqsConfig{}};
  Dqp dqp_{DqpConfig{}};
  Dqo dqo_;
};

// ---------------------------------------------------------------------------
// Happy paths: everything the engine actually produces must audit clean.

TEST_F(InvariantAuditorTest, CanonicalPlansPass) {
  for (auto setup :
       {plan::TinyTwoSourceQuery(), plan::ChainThreeSourceQuery(),
        plan::PaperFigure5Query(0.02)}) {
    Init(std::move(setup));
    EXPECT_TRUE(AuditCompiledPlan(compiled_).ok());
  }
}

TEST_F(InvariantAuditorTest, FreshAndRunningStatePasses) {
  Init(plan::PaperFigure5Query(0.02));
  EXPECT_TRUE(AuditExecutionState(*state_, *ctx_).ok());
  int guard = 0;
  while (!state_->QueryDone() && ++guard < 100000) {
    // Audit the plan while it is fresh — execution below may legitimately
    // finish (deactivate) fragments it scheduled.
    Result<SchedulingPlan> sp = dqs_.ComputePlan(*state_, *ctx_, dqo_);
    ASSERT_TRUE(sp.ok()) << sp.status().ToString();
    Status st = AuditAll(*state_, *sp, *ctx_);
    ASSERT_TRUE(st.ok()) << st.ToString();
    Result<Event> evt = dqp_.RunPhase(*state_, *sp, *ctx_);
    ASSERT_TRUE(evt.ok()) << evt.status().ToString();
    if (evt->kind == EventKind::kEndOfQf) {
      state_->OnFragmentFinished(evt->fragment, *ctx_);
    }
  }
  EXPECT_TRUE(state_->QueryDone());
  EXPECT_TRUE(AuditExecutionState(*state_, *ctx_).ok());
}

// ---------------------------------------------------------------------------
// Decomposition corruptions.

TEST_F(InvariantAuditorTest, RejectsFilterClaimedByTwoChains) {
  // Rebuild the tiny query with a filter on A's chain, then clone that
  // filter into B's chain: the decomposition is no longer a partition.
  plan::QuerySetup setup = plan::TinyTwoSourceQuery();
  setup.plan = plan::Plan{};
  const NodeId scan_a = setup.plan.AddScan(0);
  const NodeId filt = setup.plan.AddFilter(scan_a, 0.5);
  const NodeId scan_b = setup.plan.AddScan(1);
  setup.plan.SetRoot(setup.plan.AddHashJoin(filt, scan_b, 0, 0));
  Init(std::move(setup));
  ASSERT_TRUE(AuditCompiledPlan(compiled_).ok());

  plan::ChainOp stolen;
  ChainId owner = kInvalidId;
  for (const plan::ChainInfo& info : compiled_.chains) {
    for (const plan::ChainOp& op : info.ops) {
      if (op.kind == plan::ChainOpKind::kFilter) {
        stolen = op;
        owner = info.id;
      }
    }
  }
  ASSERT_NE(owner, kInvalidId);
  const ChainId thief = owner == 0 ? 1 : 0;
  compiled_.chains[static_cast<size_t>(thief)].ops.push_back(stolen);
  ExpectRejected(AuditCompiledPlan(compiled_),
                 "operator partition violated: filter node");
}

TEST_F(InvariantAuditorTest, RejectsProbeClaimedByTwoChains) {
  Init(plan::PaperFigure5Query(0.02));
  // Move chain 0's content aside: find any probe op and clone it into a
  // different chain.
  plan::ChainOp stolen;
  ChainId owner = kInvalidId;
  for (const plan::ChainInfo& info : compiled_.chains) {
    for (const plan::ChainOp& op : info.ops) {
      if (op.kind == plan::ChainOpKind::kProbe) {
        stolen = op;
        owner = info.id;
      }
    }
  }
  ASSERT_NE(owner, kInvalidId);
  const ChainId thief = owner == 0 ? 1 : 0;
  compiled_.chains[static_cast<size_t>(thief)].ops.push_back(stolen);
  ExpectRejected(AuditCompiledPlan(compiled_),
                 "operator partition violated: probe of join");
}

TEST_F(InvariantAuditorTest, RejectsCyclicBlockingEdges) {
  // Synthetic decomposition where p0 and p1 block each other: p0 probes
  // the join p1 builds and vice versa. Every per-chain table is kept
  // self-consistent so only the acyclicity audit can catch it.
  plan::CompiledPlan bad;
  bad.num_joins = 2;
  bad.operand_of_join = {0, 1};
  bad.join_build_field = {0, 0};
  bad.result_chain = 2;
  bad.chains.resize(3);
  for (ChainId c = 0; c < 3; ++c) {
    bad.chains[static_cast<size_t>(c)].id = c;
    bad.chains[static_cast<size_t>(c)].name = std::string(1, 'x') +
                                              std::to_string(c);
  }
  bad.chains[0].sink_join = 0;
  bad.chains[1].sink_join = 1;
  bad.chains[2].is_result = true;
  plan::ChainOp probe1{plan::ChainOpKind::kProbe, 0, 1.0, /*join=*/1, 0};
  plan::ChainOp probe0{plan::ChainOpKind::kProbe, 1, 1.0, /*join=*/0, 0};
  bad.chains[0].ops = {probe1};
  bad.chains[0].blockers = {1};
  bad.chains[1].ops = {probe0};
  bad.chains[1].blockers = {0};
  ExpectRejected(AuditCompiledPlan(bad), "blocking edges form a cycle");
}

// ---------------------------------------------------------------------------
// Runtime-state corruptions.

TEST_F(InvariantAuditorTest, RejectsMemoryAccountantImbalance) {
  Init(plan::TinyTwoSourceQuery());
  ASSERT_TRUE(AuditExecutionState(*state_, *ctx_).ok());
  // A grant that no operand accounts for: 4 KB leak.
  ASSERT_TRUE(ctx_->memory.Grant(4096).ok());
  ExpectRejected(AuditExecutionState(*state_, *ctx_),
                 "memory balance violated");
  ctx_->memory.Release(4096);
  EXPECT_TRUE(AuditExecutionState(*state_, *ctx_).ok());
}

TEST_F(InvariantAuditorTest, RejectsTupleTheftAfterDegradation) {
  Init(plan::PaperFigure5Query(0.02));
  // Run until the scheduler has degraded at least one chain and some
  // source queue holds buffered tuples to steal.
  SourceId victim = kInvalidId;
  int guard = 0;
  while (++guard < 100000 && !state_->QueryDone()) {
    Round();
    if (state_->degradations() == 0) continue;
    for (SourceId s = 0; s < ctx_->comm.num_sources(); ++s) {
      if (ctx_->comm.queue(s).size() > 0) {
        victim = s;
        break;
      }
    }
    if (victim != kInvalidId) break;
  }
  ASSERT_NE(victim, kInvalidId);
  ASSERT_GE(state_->degradations(), 1);
  ASSERT_TRUE(AuditExecutionState(*state_, *ctx_).ok());

  // Pop one tuple behind the engine's back: it is gone from the queue but
  // no fragment consumed it.
  storage::Tuple stolen;
  const_cast<comm::TupleQueue&>(ctx_->comm.queue(victim))
      .PopBatch(&stolen, 1);
  ExpectRejected(AuditExecutionState(*state_, *ctx_),
                 "tuple conservation violated for source " +
                     std::to_string(victim));
}

// ---------------------------------------------------------------------------
// Scheduling-plan corruptions.

TEST_F(InvariantAuditorTest, RejectsBlockedChainInPlan) {
  Init(plan::TinyTwoSourceQuery());
  // The probing chain waits for the build chain's operand, so it is not
  // C-schedulable at t=0.
  ChainId blocked = kInvalidId;
  for (ChainId c = 0; c < compiled_.num_chains(); ++c) {
    if (!state_->CSchedulable(c)) blocked = c;
  }
  ASSERT_NE(blocked, kInvalidId);
  SchedulingPlan sp;
  sp.fragments = {state_->ChainFragment(blocked)};
  sp.critical_ns = {1.0};
  ExpectRejected(AuditSchedulingPlan(*state_, sp, *ctx_),
                 "C-schedulability violated");
}

TEST_F(InvariantAuditorTest, RejectsPlanExceedingAvailableMemory) {
  Init(plan::PaperFigure5Query(0.02));
  // Run until some degraded chain resumed as a CF (unopened, with a real
  // operand to load) while another chain's MF is still materializing.
  int cf_frag = -1;
  int mf_frag = -1;
  int guard = 0;
  while (++guard < 100000 && !state_->QueryDone()) {
    Round();
    cf_frag = mf_frag = -1;
    for (ChainId c = 0; c < compiled_.num_chains(); ++c) {
      const int slot = state_->ChainFragment(c);
      if (state_->CfActivated(c) && !state_->ChainDone(c) &&
          state_->FragmentActive(slot) &&
          !state_->fragment(slot).opened() &&
          state_->fragment(slot).BytesToOpen(*ctx_) > 0) {
        cf_frag = slot;
      }
    }
    for (int f = compiled_.num_chains(); f < state_->num_fragments(); ++f) {
      if (state_->FragmentActive(f) &&
          state_->fragment(f).BytesToOpen(*ctx_) == 0) {
        mf_frag = f;
      }
    }
    if (cf_frag >= 0 && mf_frag >= 0) break;
  }
  ASSERT_GE(cf_frag, 0) << "no unopened CF materialized within the guard";
  ASSERT_GE(mf_frag, 0);

  // Steal memory until the CF's open cost no longer fits, then schedule it
  // together with the (free) MF: the pair must be rejected as
  // M-unschedulable. A single-fragment plan would be exempt (progress
  // guarantee), so the MF rides along.
  const int64_t need = state_->fragment(cf_frag).BytesToOpen(*ctx_);
  const int64_t steal = ctx_->memory.available() - need + 1;
  ASSERT_GT(steal, 0);
  ASSERT_TRUE(ctx_->memory.Grant(steal).ok());
  SchedulingPlan sp;
  sp.fragments = {cf_frag, mf_frag};
  sp.critical_ns = {2.0, 1.0};
  ExpectRejected(AuditSchedulingPlan(*state_, sp, *ctx_),
                 "M-schedulability violated");
  ctx_->memory.Release(steal);
  EXPECT_TRUE(AuditSchedulingPlan(*state_, sp, *ctx_).ok());
}

TEST_F(InvariantAuditorTest, RejectsInactiveAndDuplicateFragments) {
  Init(plan::TinyTwoSourceQuery());
  ChainId runnable = kInvalidId;
  for (ChainId c = 0; c < compiled_.num_chains(); ++c) {
    if (state_->CSchedulable(c)) runnable = c;
  }
  ASSERT_NE(runnable, kInvalidId);
  const int frag = state_->ChainFragment(runnable);
  SchedulingPlan sp;
  sp.fragments = {frag, frag};
  sp.critical_ns = {1.0, 1.0};
  ExpectRejected(AuditSchedulingPlan(*state_, sp, *ctx_),
                 "scheduled twice");
  // Mismatched parallel arrays.
  sp.fragments = {frag};
  sp.critical_ns = {1.0, 2.0};
  ExpectRejected(AuditSchedulingPlan(*state_, sp, *ctx_),
                 "scheduling plan arrays diverge");
}

}  // namespace
}  // namespace dqsched::core
