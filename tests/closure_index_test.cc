// Closure-index equivalence: the flattened ancestor/descendant arenas
// Compile() builds must agree with the reference DFS (Ancestors()) on
// every plan — canonical, randomized bushy, and optimizer-shaped.

#include "plan/compiled_plan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "plan/canonical_plans.h"
#include "plan/query_generator.h"

namespace dqsched::plan {
namespace {

CompiledPlan CompileSetup(const QuerySetup& setup) {
  Result<CompiledPlan> compiled = Compile(setup.plan, setup.catalog);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  return std::move(compiled.value());
}

// Reference descendant sets derived purely from the reference ancestor
// relation: d is a transitive dependent of a iff a is an ancestor of d.
std::vector<std::vector<ChainId>> ReferenceDescendants(
    const CompiledPlan& compiled) {
  std::vector<std::vector<ChainId>> desc(
      static_cast<size_t>(compiled.num_chains()));
  for (ChainId d = 0; d < compiled.num_chains(); ++d) {
    for (ChainId a : compiled.Ancestors(d)) {
      desc[static_cast<size_t>(a)].push_back(d);
    }
  }
  return desc;  // ascending d per a by construction
}

void ExpectIndexMatchesReference(const CompiledPlan& compiled) {
  ASSERT_TRUE(compiled.HasClosureIndex());
  const Status valid = compiled.ValidateClosureIndex();
  EXPECT_TRUE(valid.ok()) << valid.ToString();

  for (ChainId c = 0; c < compiled.num_chains(); ++c) {
    const std::vector<ChainId> ref = compiled.Ancestors(c);
    const auto span = compiled.AncestorsOf(c);
    ASSERT_EQ(span.size(), ref.size()) << "chain " << c;
    EXPECT_TRUE(std::equal(span.begin(), span.end(), ref.begin()))
        << "ancestor span of chain " << c << " diverges from the DFS";
    EXPECT_TRUE(std::is_sorted(span.begin(), span.end()));
  }

  const auto ref_desc = ReferenceDescendants(compiled);
  for (ChainId c = 0; c < compiled.num_chains(); ++c) {
    const auto& ref = ref_desc[static_cast<size_t>(c)];
    const auto span = compiled.TransitiveDependentsOf(c);
    ASSERT_EQ(span.size(), ref.size()) << "chain " << c;
    EXPECT_TRUE(std::equal(span.begin(), span.end(), ref.begin()))
        << "descendant span of chain " << c << " diverges from the DFS";
    EXPECT_EQ(compiled.NumTransitiveDependents(c),
              static_cast<int>(ref.size()));
  }
}

TEST(ClosureIndex, CanonicalPlans) {
  ExpectIndexMatchesReference(CompileSetup(TinyTwoSourceQuery()));
  ExpectIndexMatchesReference(CompileSetup(ChainThreeSourceQuery()));
  ExpectIndexMatchesReference(CompileSetup(PaperFigure5Query(0.01)));
}

TEST(ClosureIndex, RandomizedBushyPlans) {
  for (const int num_sources : {3, 6, 11, 24, 48}) {
    for (uint64_t seed = 1; seed <= 8; ++seed) {
      GeneratorConfig config;
      config.num_sources = num_sources;
      config.min_cardinality = 1000;
      config.max_cardinality = 2000;
      config.seed = seed * 131 + static_cast<uint64_t>(num_sources);
      Result<QuerySetup> setup = GenerateBushyQuery(config);
      ASSERT_TRUE(setup.ok()) << setup.status().ToString();
      ExpectIndexMatchesReference(CompileSetup(*setup));
    }
  }
}

TEST(ClosureIndex, OptimizerShapedPlans) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    GeneratorConfig config;
    config.num_sources = 9;
    config.min_cardinality = 1000;
    config.max_cardinality = 2000;
    config.seed = seed;
    Result<QuerySetup> setup = GenerateBushyQuery(config,
                                                  /*use_optimizer=*/true);
    ASSERT_TRUE(setup.ok()) << setup.status().ToString();
    ExpectIndexMatchesReference(CompileSetup(*setup));
  }
}

TEST(ClosureIndex, ValidateRejectsCorruption) {
  CompiledPlan compiled = CompileSetup(PaperFigure5Query(0.01));
  ASSERT_TRUE(compiled.ValidateClosureIndex().ok());

  CompiledPlan swapped = compiled;
  ASSERT_GE(swapped.anc_arena.size(), 1u);
  swapped.anc_arena[0] =
      static_cast<ChainId>((swapped.anc_arena[0] + 1) % swapped.num_chains());
  EXPECT_FALSE(swapped.ValidateClosureIndex().ok());

  CompiledPlan truncated = compiled;
  truncated.anc_offset.pop_back();
  EXPECT_FALSE(truncated.ValidateClosureIndex().ok());
  EXPECT_FALSE(truncated.HasClosureIndex());
}

TEST(ClosureIndex, RebuildIsIdempotent) {
  CompiledPlan compiled = CompileSetup(PaperFigure5Query(0.01));
  const auto anc_offset = compiled.anc_offset;
  const auto anc_arena = compiled.anc_arena;
  const auto desc_offset = compiled.desc_offset;
  const auto desc_arena = compiled.desc_arena;
  compiled.BuildClosureIndex();
  EXPECT_EQ(compiled.anc_offset, anc_offset);
  EXPECT_EQ(compiled.anc_arena, anc_arena);
  EXPECT_EQ(compiled.desc_offset, desc_offset);
  EXPECT_EQ(compiled.desc_arena, desc_arena);
}

}  // namespace
}  // namespace dqsched::plan
