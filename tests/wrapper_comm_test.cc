#include <gtest/gtest.h>

#include <memory>

#include "comm/comm_manager.h"
#include "comm/rate_estimator.h"
#include "comm/tuple_queue.h"
#include "storage/relation.h"
#include "wrapper/wrapper.h"

namespace dqsched {
namespace {

using comm::CommConfig;
using comm::CommManager;
using comm::RateEstimator;
using comm::TupleQueue;
using storage::Relation;
using storage::RelationSpec;
using storage::Tuple;
using wrapper::DelayConfig;
using wrapper::DelayKind;
using wrapper::SimWrapper;

Relation MakeRelation(int64_t n, SourceId src = 0) {
  RelationSpec spec;
  spec.name = "R";
  spec.cardinality = n;
  return GenerateRelation(spec, src, Rng(7));
}

DelayConfig ConstantDelay(double us) {
  DelayConfig d;
  d.kind = DelayKind::kConstant;
  d.mean_us = us;
  return d;
}

void FeedArrival(RateEstimator& est, SimTime t) { est.OnArrivals(&t, 1); }

/// Records every observer notification, preserving run boundaries.
struct Capture : wrapper::ArrivalObserver {
  std::vector<SimTime> times;
  std::vector<SimTime> suppressed;
  std::vector<int64_t> runs;
  void OnArrivals(const SimTime* ts, int64_t n) override {
    runs.push_back(n);
    times.insert(times.end(), ts, ts + n);
  }
  void OnArrivalSuppressed(SimTime t) override { suppressed.push_back(t); }
};

TEST(TupleQueue, PushPopFifo) {
  TupleQueue q(10);
  Tuple t;
  for (uint64_t i = 0; i < 5; ++i) {
    t.rowid = i;
    q.Push(t);
  }
  Tuple out[5];
  EXPECT_EQ(q.PopBatch(out, 5), 5);
  for (uint64_t i = 0; i < 5; ++i) EXPECT_EQ(out[i].rowid, i);
  EXPECT_TRUE(q.Empty());
}

TEST(TupleQueue, CapacityAndFull) {
  TupleQueue q(3);
  Tuple t;
  q.Push(t);
  q.Push(t);
  EXPECT_FALSE(q.Full());
  q.Push(t);
  EXPECT_TRUE(q.Full());
}

TEST(TupleQueue, PopBatchBounded) {
  TupleQueue q(10);
  Tuple t;
  q.Push(t);
  q.Push(t);
  Tuple out[8];
  EXPECT_EQ(q.PopBatch(out, 8), 2);
}

TEST(TupleQueue, ExhaustionSemantics) {
  TupleQueue q(4);
  Tuple t;
  q.Push(t);
  EXPECT_FALSE(q.Exhausted());
  q.CloseProducer();
  EXPECT_FALSE(q.Exhausted());  // data still buffered
  Tuple out[4];
  q.PopBatch(out, 4);
  EXPECT_TRUE(q.Exhausted());
}

TEST(TupleQueue, CountsPushedAndPopped) {
  TupleQueue q(10);
  Tuple t;
  q.Push(t);
  q.Push(t);
  Tuple out[1];
  q.PopBatch(out, 1);
  EXPECT_EQ(q.total_pushed(), 2);
  EXPECT_EQ(q.total_popped(), 1);
}

TEST(TupleQueue, WraparoundPreservesFifoOrder) {
  TupleQueue q(8);
  Tuple t;
  Tuple out[8];
  uint64_t next = 0;
  uint64_t expect = 0;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 5; ++i) {
      t.rowid = next++;
      q.Push(t);
    }
    ASSERT_EQ(q.PopBatch(out, 5), 5);
    for (int i = 0; i < 5; ++i) EXPECT_EQ(out[i].rowid, expect++);
    // Conservation holds at every ring position.
    EXPECT_EQ(q.total_pushed(), q.total_popped() + q.size());
  }
  EXPECT_EQ(q.total_pushed(), 50);
  EXPECT_EQ(q.total_popped(), 50);
}

TEST(TupleQueue, PushBatchAndPopBatchSpanTheSeam) {
  TupleQueue q(8);
  Tuple buf[8];
  Tuple out[8];
  // Advance the ring position to 5 so a 6-tuple batch wraps the seam.
  Tuple t;
  for (int i = 0; i < 5; ++i) q.Push(t);
  ASSERT_EQ(q.PopBatch(out, 5), 5);
  for (uint64_t i = 0; i < 6; ++i) buf[i].rowid = i;
  q.PushBatch(buf, 6);  // occupies slots 5,6,7 then wraps to 0,1,2
  EXPECT_EQ(q.size(), 6);
  ASSERT_EQ(q.PopBatch(out, 6), 6);
  for (uint64_t i = 0; i < 6; ++i) EXPECT_EQ(out[i].rowid, i);
}

TEST(TupleQueue, NonPowerOfTwoCapacityIsExact) {
  TupleQueue q(5);  // storage rounds up to 8; occupancy must cap at 5
  EXPECT_EQ(q.capacity(), 5);
  Tuple t;
  for (int i = 0; i < 5; ++i) q.Push(t);
  EXPECT_TRUE(q.Full());
  EXPECT_EQ(q.SpaceLeft(), 0);
  Tuple out[3];
  q.PopBatch(out, 3);
  EXPECT_EQ(q.SpaceLeft(), 3);
  EXPECT_FALSE(q.Full());
}

TEST(TupleQueue, CloseWhileWrappedDrainsToExhaustion) {
  TupleQueue q(4);
  Tuple t;
  Tuple out[4];
  q.Push(t);
  q.Push(t);
  q.Push(t);
  q.PopBatch(out, 3);  // subsequent pushes wrap the 4-slot storage
  for (uint64_t i = 0; i < 4; ++i) {
    t.rowid = i;
    q.Push(t);
  }
  q.CloseProducer();
  EXPECT_TRUE(q.Full());
  EXPECT_FALSE(q.Exhausted());  // data still buffered across the seam
  ASSERT_EQ(q.PopBatch(out, 4), 4);
  for (uint64_t i = 0; i < 4; ++i) EXPECT_EQ(out[i].rowid, i);
  EXPECT_TRUE(q.Exhausted());
  EXPECT_EQ(q.total_pushed(), 7);
  EXPECT_EQ(q.total_popped(), 7);
}

TEST(SimWrapper, DeliversOnSchedule) {
  const Relation rel = MakeRelation(10);
  SimWrapper w(0, &rel, ConstantDelay(10.0), 1);
  TupleQueue q(100);
  // At t=5us nothing is due; first tuple lands at 10us.
  w.PumpInto(q, Microseconds(5));
  EXPECT_TRUE(q.Empty());
  w.PumpInto(q, Microseconds(10));
  EXPECT_EQ(q.size(), 1);
  w.PumpInto(q, Microseconds(100));
  EXPECT_EQ(q.size(), 10);
  EXPECT_TRUE(w.Exhausted());
  EXPECT_TRUE(q.producer_closed());
}

TEST(SimWrapper, NextArrivalTracksSchedule) {
  const Relation rel = MakeRelation(3);
  SimWrapper w(0, &rel, ConstantDelay(10.0), 1);
  EXPECT_EQ(w.NextArrival(), Microseconds(10));
  TupleQueue q(100);
  w.PumpInto(q, Microseconds(10));
  EXPECT_EQ(w.NextArrival(), Microseconds(20));
}

TEST(SimWrapper, WindowProtocolSuspendsOnFullQueue) {
  const Relation rel = MakeRelation(10);
  SimWrapper w(0, &rel, ConstantDelay(10.0), 1);
  TupleQueue q(4);
  w.PumpInto(q, Microseconds(1000));
  EXPECT_EQ(q.size(), 4);  // suspended at capacity
  EXPECT_EQ(w.NextArrival(), kSimTimeNever);
  EXPECT_EQ(w.remaining(), 6);

  // Drain two tuples at t=1000us; the pending tuple enters at the drain
  // time and production resumes at its normal pace from there.
  Tuple out[2];
  q.PopBatch(out, 2);
  w.PumpInto(q, Microseconds(1000));
  EXPECT_EQ(q.size(), 3);
  EXPECT_EQ(w.NextArrival(), Microseconds(1010));
  EXPECT_GT(w.stats().blocked, 0);
}

TEST(SimWrapper, ResumedProductionContinuesFromDrainTime) {
  const Relation rel = MakeRelation(3);
  SimWrapper w(0, &rel, ConstantDelay(10.0), 1);
  TupleQueue q(1);
  w.PumpInto(q, Microseconds(10));  // tuple 0 in queue
  w.PumpInto(q, Microseconds(50));  // tuple 1 ready at 20us but blocked
  EXPECT_EQ(q.size(), 1);
  Tuple out[1];
  q.PopBatch(out, 1);
  // Resume at t=50: the pending tuple enters now, the next is due 10us on.
  w.PumpInto(q, Microseconds(50));
  EXPECT_EQ(q.size(), 1);
  EXPECT_EQ(w.NextArrival(), Microseconds(60));
}

TEST(SimWrapper, EmptyRelationClosesImmediately) {
  const Relation rel = MakeRelation(0);
  SimWrapper w(0, &rel, ConstantDelay(10.0), 1);
  TupleQueue q(4);
  w.PumpInto(q, 0);
  EXPECT_TRUE(q.producer_closed());
  EXPECT_TRUE(w.Exhausted());
  EXPECT_EQ(w.NextArrival(), kSimTimeNever);
}

TEST(SimWrapper, ObserverSeesArrivalTimes) {
  const Relation rel = MakeRelation(3);
  SimWrapper w(0, &rel, ConstantDelay(10.0), 1);
  TupleQueue q(10);
  Capture cap;
  w.PumpInto(q, Microseconds(100), &cap);
  ASSERT_EQ(cap.times.size(), 3u);
  EXPECT_EQ(cap.times[0], Microseconds(10));
  EXPECT_EQ(cap.times[2], Microseconds(30));
  // All three tuples were ready: one bulk run, one observer call.
  ASSERT_EQ(cap.runs.size(), 1u);
  EXPECT_EQ(cap.runs[0], 3);
}

TEST(SimWrapper, SerialDeliveryMatchesBulk) {
  // Drive the full window protocol (suspend, resume, suppressed arrival)
  // with runs capped at one tuple and uncapped; every observable — popped
  // rowids, observer samples, suppressed arrivals, wrapper stats — must
  // coincide. Queue of 4 drained 3-at-a-time against a 10 us producer
  // guarantees backpressure.
  const Relation rel = MakeRelation(50);
  struct Observed {
    std::vector<uint64_t> rowids;
    std::vector<SimTime> times;
    std::vector<SimTime> suppressed;
    int64_t delivered = 0;
    SimDuration blocked = 0;
    SimTime finished_at = kSimTimeNever;
  };
  auto run = [&rel](bool serial) {
    SimWrapper w(0, &rel, ConstantDelay(10.0), 1);
    w.set_serial_delivery(serial);
    TupleQueue q(4);
    Capture cap;
    Observed obs;
    SimTime t = 0;
    while (!q.Exhausted()) {
      t += Microseconds(35);
      w.PumpInto(q, t, &cap);
      Tuple out[3];
      const int64_t n = q.PopBatch(out, 3);
      for (int64_t i = 0; i < n; ++i) obs.rowids.push_back(out[i].rowid);
      w.PumpInto(q, t, &cap);  // resume a suspended producer
    }
    obs.times = cap.times;
    obs.suppressed = cap.suppressed;
    obs.delivered = w.stats().tuples_delivered;
    obs.blocked = w.stats().blocked;
    obs.finished_at = w.stats().finished_at;
    return obs;
  };
  const Observed serial = run(true);
  const Observed bulk = run(false);
  EXPECT_EQ(serial.rowids, bulk.rowids);
  EXPECT_EQ(serial.times, bulk.times);
  EXPECT_EQ(serial.suppressed, bulk.suppressed);
  EXPECT_EQ(serial.delivered, bulk.delivered);
  EXPECT_EQ(serial.blocked, bulk.blocked);
  EXPECT_EQ(serial.finished_at, bulk.finished_at);
  EXPECT_FALSE(serial.suppressed.empty());  // the protocol was exercised
}

TEST(RateEstimator, UsesPriorUntilWarmup) {
  RateEstimator est(0.1, /*warmup=*/4);
  est.SetPrior(5000.0);
  EXPECT_DOUBLE_EQ(est.MeanInterArrivalNs(), 5000.0);
  FeedArrival(est, 100);
  FeedArrival(est, 200);
  EXPECT_DOUBLE_EQ(est.MeanInterArrivalNs(), 5000.0);  // still warming up
}

TEST(RateEstimator, ConvergesToActualRate) {
  RateEstimator est(0.05, 4);
  est.SetPrior(1.0);
  SimTime t = 0;
  for (int i = 0; i < 500; ++i) {
    t += Microseconds(20);
    FeedArrival(est, t);
  }
  EXPECT_NEAR(est.MeanInterArrivalNs(), 20000.0, 100.0);
}

TEST(RateEstimator, TracksRateChanges) {
  RateEstimator est(0.05, 4);
  SimTime t = 0;
  for (int i = 0; i < 300; ++i) {
    t += Microseconds(20);
    FeedArrival(est, t);
  }
  const double before = est.MeanInterArrivalNs();
  for (int i = 0; i < 300; ++i) {
    t += Microseconds(100);
    FeedArrival(est, t);
  }
  EXPECT_GT(est.MeanInterArrivalNs(), before * 3);
}

class CommManagerTest : public ::testing::Test {
 protected:
  CommManagerTest() : rel_(MakeRelation(100)), manager_(MakeConfig()) {
    auto w = std::make_unique<SimWrapper>(0, &rel_, ConstantDelay(10.0), 1);
    manager_.AddSource(std::move(w), /*prior=*/10000.0);
  }
  static CommConfig MakeConfig() {
    CommConfig c;
    c.queue_capacity = 16;
    c.rate_change_min_samples = 8;
    c.rate_change_cooldown = 0;
    return c;
  }
  Relation rel_;
  CommManager manager_;
};

TEST_F(CommManagerTest, AvailablePumpsArrivals) {
  EXPECT_EQ(manager_.Available(0, Microseconds(35)), 3);
}

TEST_F(CommManagerTest, PopUnblocksSuspendedProducer) {
  // Fill the 16-slot queue and beyond.
  EXPECT_EQ(manager_.Available(0, Microseconds(10000)), 16);
  Tuple out[8];
  EXPECT_EQ(manager_.Pop(0, Microseconds(10000), out, 8), 8);
  // The pop re-pumps: the tuple pending since the suspension enters at the
  // drain time, and production resumes at its 10 us pace afterwards.
  EXPECT_EQ(manager_.queue(0).size(), 9);
  EXPECT_EQ(manager_.Available(0, Microseconds(10070)), 16);
}

TEST_F(CommManagerTest, ZeroPushSuspensionBumpsSourceVersion) {
  // 16 pushes fill the queue exactly; the producer is not yet suspended and
  // still advertises a real next arrival.
  EXPECT_EQ(manager_.Available(0, Microseconds(160)), 16);
  EXPECT_EQ(manager_.NextArrival(0), Microseconds(170));
  const uint64_t before = manager_.SourceVersion(0);
  // The next pump delivers nothing — the window protocol suspends the
  // producer on the full queue — yet it flips NextArrival to "never".
  // Version-guarded arrival caches must observe that transition; a stale
  // "arrival at 170 us" would be stalled on forever.
  manager_.PumpAll(Microseconds(170));
  EXPECT_EQ(manager_.queue(0).size(), 16);
  EXPECT_EQ(manager_.NextArrival(0), kSimTimeNever);
  EXPECT_NE(manager_.SourceVersion(0), before);
}

TEST_F(CommManagerTest, RemainingTuplesCountsQueueAndWrapper) {
  manager_.PumpAll(Microseconds(50));  // 5 delivered
  EXPECT_EQ(manager_.RemainingTuples(0), 100);
  Tuple out[5];
  manager_.Pop(0, Microseconds(50), out, 5);
  EXPECT_EQ(manager_.RemainingTuples(0), 95);
}

TEST_F(CommManagerTest, SourceExhaustedAfterFullDrain) {
  Tuple out[16];
  int64_t total = 0;
  SimTime t = 0;
  while (total < 100) {
    t += Microseconds(100);
    total += manager_.Pop(0, t, out, 16);
  }
  EXPECT_TRUE(manager_.SourceExhausted(0));
  EXPECT_EQ(manager_.NextArrival(0), kSimTimeNever);
}

TEST_F(CommManagerTest, RateChangeDetection) {
  manager_.MarkPlanned(0);
  Tuple out[16];
  SimTime t = 0;
  // The estimator warms up after its first samples: one warm-up signal
  // fires (the plan was computed on the prior), then — with delivery
  // matching the prior — silence.
  for (int i = 0; i < 24; ++i) {
    t += Microseconds(40);
    manager_.Pop(0, t, out, 16);
  }
  EXPECT_TRUE(manager_.RateChangedSincePlan(t));
  manager_.MarkPlanned(t);
  for (int i = 0; i < 20; ++i) {
    t += Microseconds(40);
    manager_.Pop(0, t, out, 16);
  }
  EXPECT_FALSE(manager_.RateChangedSincePlan(t));
}

DelayConfig InitialThenFast(double initial_ms, double mean_us) {
  DelayConfig d;
  d.kind = DelayKind::kInitial;
  d.initial_delay_ms = initial_ms;
  d.mean_us = mean_us;
  return d;
}

TEST(CommManagerRateChange, CooldownBoundaryIsNotSuppressed) {
  // now - last_signal_ == cooldown must NOT be suppressed: the gate is
  // strictly "elapsed < cooldown", so the boundary instant re-arms.
  CommConfig config;
  config.queue_capacity = 4096;
  config.rate_change_min_samples = 8;
  config.rate_change_cooldown = Milliseconds(10);
  CommManager manager(config);
  const Relation rel = MakeRelation(3000);
  // The 100 ms initial gap dominates the warm EWMA; the fast tail then
  // drags the live estimate far below the snapshot.
  auto w =
      std::make_unique<SimWrapper>(0, &rel, InitialThenFast(100.0, 10.0), 1);
  manager.AddSource(std::move(w), /*prior=*/10000.0);
  Tuple out[64];
  SimTime t = Milliseconds(100);
  while (!manager.EstimateWarm(0)) {
    t += Microseconds(100);
    manager.Pop(0, t, out, 64);
  }
  manager.MarkPlanned(t);
  const double ref = manager.EstimatedWaitNs(0);
  for (int i = 0; i < 40; ++i) {
    t += Microseconds(100);
    manager.Pop(0, t, out, 64);
  }
  ASSERT_LT(manager.EstimatedWaitNs(0), ref / config.rate_change_ratio);
  EXPECT_TRUE(manager.RateChangedSincePlan(t));  // ratio path fires
  const SimTime signal = t;
  // Fresh deliveries keep the deviation live through the cooldown window.
  t += Microseconds(100);
  manager.Pop(0, t, out, 64);
  EXPECT_FALSE(manager.RateChangedSincePlan(
      signal + config.rate_change_cooldown - 1));
  EXPECT_TRUE(
      manager.RateChangedSincePlan(signal + config.rate_change_cooldown));
}

TEST(CommManagerRateChange, WarmupPromotionBypassesCooldown) {
  // A source planned on its prior that has since warmed up must signal
  // immediately even inside another signal's cooldown window.
  CommConfig config;
  config.queue_capacity = 4096;
  config.rate_change_min_samples = 8;
  config.rate_change_cooldown = Seconds(1);
  CommManager manager(config);
  const Relation rel_a = MakeRelation(200, 0);
  const Relation rel_b = MakeRelation(200, 1);
  manager.AddSource(
      std::make_unique<SimWrapper>(0, &rel_a, ConstantDelay(10.0), 1),
      /*prior=*/10000.0);
  manager.AddSource(
      std::make_unique<SimWrapper>(1, &rel_b, ConstantDelay(500.0), 2),
      /*prior=*/500000.0);
  manager.MarkPlanned(0);  // both snapshots un-warm
  Tuple out[64];
  SimTime t = Microseconds(10 * 20);
  manager.Pop(0, t, out, 64);
  EXPECT_TRUE(manager.RateChangedSincePlan(t));  // source 0 warmed up
  manager.MarkPlanned(t);  // replan on the signal; source 1 still un-warm
  // Source 1 warms ~8 ms in, far inside the 1 s cooldown of the signal
  // above — the promotion fires regardless.
  t = Microseconds(500 * 20);
  manager.Pop(1, t, out, 64);
  ASSERT_TRUE(manager.EstimateWarm(1));
  EXPECT_TRUE(manager.RateChangedSincePlan(t));
  EXPECT_EQ(manager.rate_change_signals(), 2);
}

TEST(CommManagerRateChange, MemoizedFalseInvalidatedByNewDeliveries) {
  // A fully evaluated false verdict is memoized; new deliveries bump the
  // estimator version and force re-evaluation.
  CommConfig config;
  config.queue_capacity = 4096;
  config.rate_change_min_samples = 8;
  config.rate_change_cooldown = 0;
  CommManager manager(config);
  const Relation rel = MakeRelation(3000);
  manager.AddSource(
      std::make_unique<SimWrapper>(0, &rel, InitialThenFast(100.0, 10.0), 1),
      /*prior=*/10000.0);
  Tuple out[64];
  SimTime t = Milliseconds(100);
  while (!manager.EstimateWarm(0)) {
    t += Microseconds(100);
    manager.Pop(0, t, out, 64);
  }
  manager.MarkPlanned(t);
  // No samples since the snapshot: full evaluation, false, memoized.
  EXPECT_FALSE(manager.RateChangedSincePlan(t));
  EXPECT_FALSE(manager.RateChangedSincePlan(t + Microseconds(1)));
  // The fast tail collapses the estimate well below snapshot / ratio.
  for (int i = 0; i < 40; ++i) {
    t += Microseconds(100);
    manager.Pop(0, t, out, 64);
  }
  EXPECT_TRUE(manager.RateChangedSincePlan(t));
  EXPECT_EQ(manager.rate_change_signals(), 1);
}

TEST(CommManagerRateChange, FiresOnGenuineSlowdown) {
  CommConfig config;
  config.queue_capacity = 1024;
  config.rate_change_min_samples = 32;
  config.rate_change_cooldown = 0;
  config.rate_change_ratio = 2.0;
  CommManager manager(config);
  const Relation rel = MakeRelation(5000);
  // Delivery at 100 us/tuple while the planning snapshot assumed 10 us.
  auto w = std::make_unique<SimWrapper>(0, &rel, ConstantDelay(100.0), 1);
  manager.AddSource(std::move(w), /*prior=*/10000.0);
  manager.MarkPlanned(0);
  const SimTime t = Microseconds(100.0 * 200);
  manager.PumpAll(t);
  EXPECT_TRUE(manager.RateChangedSincePlan(t));
  EXPECT_EQ(manager.rate_change_signals(), 1);
  // After re-planning (snapshot refresh) the signal clears.
  manager.MarkPlanned(t);
  EXPECT_FALSE(manager.RateChangedSincePlan(t + 1));
}

}  // namespace
}  // namespace dqsched
