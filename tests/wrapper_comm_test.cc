#include <gtest/gtest.h>

#include <memory>

#include "comm/comm_manager.h"
#include "comm/rate_estimator.h"
#include "comm/tuple_queue.h"
#include "storage/relation.h"
#include "wrapper/wrapper.h"

namespace dqsched {
namespace {

using comm::CommConfig;
using comm::CommManager;
using comm::RateEstimator;
using comm::TupleQueue;
using storage::Relation;
using storage::RelationSpec;
using storage::Tuple;
using wrapper::DelayConfig;
using wrapper::DelayKind;
using wrapper::SimWrapper;

Relation MakeRelation(int64_t n, SourceId src = 0) {
  RelationSpec spec;
  spec.name = "R";
  spec.cardinality = n;
  return GenerateRelation(spec, src, Rng(7));
}

DelayConfig ConstantDelay(double us) {
  DelayConfig d;
  d.kind = DelayKind::kConstant;
  d.mean_us = us;
  return d;
}

TEST(TupleQueue, PushPopFifo) {
  TupleQueue q(10);
  Tuple t;
  for (uint64_t i = 0; i < 5; ++i) {
    t.rowid = i;
    q.Push(t);
  }
  Tuple out[5];
  EXPECT_EQ(q.PopBatch(out, 5), 5);
  for (uint64_t i = 0; i < 5; ++i) EXPECT_EQ(out[i].rowid, i);
  EXPECT_TRUE(q.Empty());
}

TEST(TupleQueue, CapacityAndFull) {
  TupleQueue q(3);
  Tuple t;
  q.Push(t);
  q.Push(t);
  EXPECT_FALSE(q.Full());
  q.Push(t);
  EXPECT_TRUE(q.Full());
}

TEST(TupleQueue, PopBatchBounded) {
  TupleQueue q(10);
  Tuple t;
  q.Push(t);
  q.Push(t);
  Tuple out[8];
  EXPECT_EQ(q.PopBatch(out, 8), 2);
}

TEST(TupleQueue, ExhaustionSemantics) {
  TupleQueue q(4);
  Tuple t;
  q.Push(t);
  EXPECT_FALSE(q.Exhausted());
  q.CloseProducer();
  EXPECT_FALSE(q.Exhausted());  // data still buffered
  Tuple out[4];
  q.PopBatch(out, 4);
  EXPECT_TRUE(q.Exhausted());
}

TEST(TupleQueue, CountsPushedAndPopped) {
  TupleQueue q(10);
  Tuple t;
  q.Push(t);
  q.Push(t);
  Tuple out[1];
  q.PopBatch(out, 1);
  EXPECT_EQ(q.total_pushed(), 2);
  EXPECT_EQ(q.total_popped(), 1);
}

TEST(SimWrapper, DeliversOnSchedule) {
  const Relation rel = MakeRelation(10);
  SimWrapper w(0, &rel, ConstantDelay(10.0), 1);
  TupleQueue q(100);
  // At t=5us nothing is due; first tuple lands at 10us.
  w.PumpInto(q, Microseconds(5));
  EXPECT_TRUE(q.Empty());
  w.PumpInto(q, Microseconds(10));
  EXPECT_EQ(q.size(), 1);
  w.PumpInto(q, Microseconds(100));
  EXPECT_EQ(q.size(), 10);
  EXPECT_TRUE(w.Exhausted());
  EXPECT_TRUE(q.producer_closed());
}

TEST(SimWrapper, NextArrivalTracksSchedule) {
  const Relation rel = MakeRelation(3);
  SimWrapper w(0, &rel, ConstantDelay(10.0), 1);
  EXPECT_EQ(w.NextArrival(), Microseconds(10));
  TupleQueue q(100);
  w.PumpInto(q, Microseconds(10));
  EXPECT_EQ(w.NextArrival(), Microseconds(20));
}

TEST(SimWrapper, WindowProtocolSuspendsOnFullQueue) {
  const Relation rel = MakeRelation(10);
  SimWrapper w(0, &rel, ConstantDelay(10.0), 1);
  TupleQueue q(4);
  w.PumpInto(q, Microseconds(1000));
  EXPECT_EQ(q.size(), 4);  // suspended at capacity
  EXPECT_EQ(w.NextArrival(), kSimTimeNever);
  EXPECT_EQ(w.remaining(), 6);

  // Drain two tuples at t=1000us; the pending tuple enters at the drain
  // time and production resumes at its normal pace from there.
  Tuple out[2];
  q.PopBatch(out, 2);
  w.PumpInto(q, Microseconds(1000));
  EXPECT_EQ(q.size(), 3);
  EXPECT_EQ(w.NextArrival(), Microseconds(1010));
  EXPECT_GT(w.stats().blocked, 0);
}

TEST(SimWrapper, ResumedProductionContinuesFromDrainTime) {
  const Relation rel = MakeRelation(3);
  SimWrapper w(0, &rel, ConstantDelay(10.0), 1);
  TupleQueue q(1);
  w.PumpInto(q, Microseconds(10));  // tuple 0 in queue
  w.PumpInto(q, Microseconds(50));  // tuple 1 ready at 20us but blocked
  EXPECT_EQ(q.size(), 1);
  Tuple out[1];
  q.PopBatch(out, 1);
  // Resume at t=50: the pending tuple enters now, the next is due 10us on.
  w.PumpInto(q, Microseconds(50));
  EXPECT_EQ(q.size(), 1);
  EXPECT_EQ(w.NextArrival(), Microseconds(60));
}

TEST(SimWrapper, EmptyRelationClosesImmediately) {
  const Relation rel = MakeRelation(0);
  SimWrapper w(0, &rel, ConstantDelay(10.0), 1);
  TupleQueue q(4);
  w.PumpInto(q, 0);
  EXPECT_TRUE(q.producer_closed());
  EXPECT_TRUE(w.Exhausted());
  EXPECT_EQ(w.NextArrival(), kSimTimeNever);
}

TEST(SimWrapper, ObserverSeesArrivalTimes) {
  struct Capture : wrapper::ArrivalObserver {
    std::vector<SimTime> times;
    void OnArrival(SimTime t) override { times.push_back(t); }
  };
  const Relation rel = MakeRelation(3);
  SimWrapper w(0, &rel, ConstantDelay(10.0), 1);
  TupleQueue q(10);
  Capture cap;
  w.PumpInto(q, Microseconds(100), &cap);
  ASSERT_EQ(cap.times.size(), 3u);
  EXPECT_EQ(cap.times[0], Microseconds(10));
  EXPECT_EQ(cap.times[2], Microseconds(30));
}

TEST(RateEstimator, UsesPriorUntilWarmup) {
  RateEstimator est(0.1, /*warmup=*/4);
  est.SetPrior(5000.0);
  EXPECT_DOUBLE_EQ(est.MeanInterArrivalNs(), 5000.0);
  est.OnArrival(100);
  est.OnArrival(200);
  EXPECT_DOUBLE_EQ(est.MeanInterArrivalNs(), 5000.0);  // still warming up
}

TEST(RateEstimator, ConvergesToActualRate) {
  RateEstimator est(0.05, 4);
  est.SetPrior(1.0);
  SimTime t = 0;
  for (int i = 0; i < 500; ++i) {
    t += Microseconds(20);
    est.OnArrival(t);
  }
  EXPECT_NEAR(est.MeanInterArrivalNs(), 20000.0, 100.0);
}

TEST(RateEstimator, TracksRateChanges) {
  RateEstimator est(0.05, 4);
  SimTime t = 0;
  for (int i = 0; i < 300; ++i) {
    t += Microseconds(20);
    est.OnArrival(t);
  }
  const double before = est.MeanInterArrivalNs();
  for (int i = 0; i < 300; ++i) {
    t += Microseconds(100);
    est.OnArrival(t);
  }
  EXPECT_GT(est.MeanInterArrivalNs(), before * 3);
}

class CommManagerTest : public ::testing::Test {
 protected:
  CommManagerTest() : rel_(MakeRelation(100)), manager_(MakeConfig()) {
    auto w = std::make_unique<SimWrapper>(0, &rel_, ConstantDelay(10.0), 1);
    manager_.AddSource(std::move(w), /*prior=*/10000.0);
  }
  static CommConfig MakeConfig() {
    CommConfig c;
    c.queue_capacity = 16;
    c.rate_change_min_samples = 8;
    c.rate_change_cooldown = 0;
    return c;
  }
  Relation rel_;
  CommManager manager_;
};

TEST_F(CommManagerTest, AvailablePumpsArrivals) {
  EXPECT_EQ(manager_.Available(0, Microseconds(35)), 3);
}

TEST_F(CommManagerTest, PopUnblocksSuspendedProducer) {
  // Fill the 16-slot queue and beyond.
  EXPECT_EQ(manager_.Available(0, Microseconds(10000)), 16);
  Tuple out[8];
  EXPECT_EQ(manager_.Pop(0, Microseconds(10000), out, 8), 8);
  // The pop re-pumps: the tuple pending since the suspension enters at the
  // drain time, and production resumes at its 10 us pace afterwards.
  EXPECT_EQ(manager_.queue(0).size(), 9);
  EXPECT_EQ(manager_.Available(0, Microseconds(10070)), 16);
}

TEST_F(CommManagerTest, RemainingTuplesCountsQueueAndWrapper) {
  manager_.PumpAll(Microseconds(50));  // 5 delivered
  EXPECT_EQ(manager_.RemainingTuples(0), 100);
  Tuple out[5];
  manager_.Pop(0, Microseconds(50), out, 5);
  EXPECT_EQ(manager_.RemainingTuples(0), 95);
}

TEST_F(CommManagerTest, SourceExhaustedAfterFullDrain) {
  Tuple out[16];
  int64_t total = 0;
  SimTime t = 0;
  while (total < 100) {
    t += Microseconds(100);
    total += manager_.Pop(0, t, out, 16);
  }
  EXPECT_TRUE(manager_.SourceExhausted(0));
  EXPECT_EQ(manager_.NextArrival(0), kSimTimeNever);
}

TEST_F(CommManagerTest, RateChangeDetection) {
  manager_.MarkPlanned(0);
  Tuple out[16];
  SimTime t = 0;
  // The estimator warms up after its first samples: one warm-up signal
  // fires (the plan was computed on the prior), then — with delivery
  // matching the prior — silence.
  for (int i = 0; i < 24; ++i) {
    t += Microseconds(40);
    manager_.Pop(0, t, out, 16);
  }
  EXPECT_TRUE(manager_.RateChangedSincePlan(t));
  manager_.MarkPlanned(t);
  for (int i = 0; i < 20; ++i) {
    t += Microseconds(40);
    manager_.Pop(0, t, out, 16);
  }
  EXPECT_FALSE(manager_.RateChangedSincePlan(t));
}

TEST(CommManagerRateChange, FiresOnGenuineSlowdown) {
  CommConfig config;
  config.queue_capacity = 1024;
  config.rate_change_min_samples = 32;
  config.rate_change_cooldown = 0;
  config.rate_change_ratio = 2.0;
  CommManager manager(config);
  const Relation rel = MakeRelation(5000);
  // Delivery at 100 us/tuple while the planning snapshot assumed 10 us.
  auto w = std::make_unique<SimWrapper>(0, &rel, ConstantDelay(100.0), 1);
  manager.AddSource(std::move(w), /*prior=*/10000.0);
  manager.MarkPlanned(0);
  const SimTime t = Microseconds(100.0 * 200);
  manager.PumpAll(t);
  EXPECT_TRUE(manager.RateChangedSincePlan(t));
  EXPECT_EQ(manager.rate_change_signals(), 1);
  // After re-planning (snapshot refresh) the signal clears.
  manager.MarkPlanned(t);
  EXPECT_FALSE(manager.RateChangedSincePlan(t + 1));
}

}  // namespace
}  // namespace dqsched
