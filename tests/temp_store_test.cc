#include "storage/temp_store.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/cost_model.h"
#include "sim/disk.h"
#include "sim/sim_clock.h"

namespace dqsched::storage {
namespace {

class TempStoreTest : public ::testing::Test {
 protected:
  TempStoreTest() : disk_(&cost_), store_(&cost_, &disk_, &clock_) {}

  std::vector<Tuple> MakeTuples(int64_t n, uint64_t base = 0) {
    std::vector<Tuple> out(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      out[static_cast<size_t>(i)].rowid = base + static_cast<uint64_t>(i);
    }
    return out;
  }

  sim::CostModel cost_;
  sim::SimClock clock_;
  sim::SimDisk disk_;
  TempStore store_;
};

TEST_F(TempStoreTest, AppendSealReadRoundTrip) {
  const TempId id = store_.Create("t");
  const auto tuples = MakeTuples(1000);
  store_.Append(id, tuples.data(), 1000, /*async_io=*/true);
  store_.Seal(id);
  EXPECT_TRUE(store_.IsSealed(id));
  EXPECT_EQ(store_.Cardinality(id), 1000);

  std::vector<Tuple> out(1000);
  SimTime ready = 0;
  const int64_t n =
      store_.Read(id, 0, out.data(), 1000, /*async_io=*/true, &ready);
  ASSERT_EQ(n, 1000);
  for (int64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)].rowid, static_cast<uint64_t>(i));
  }
}

TEST_F(TempStoreTest, SmallTempIsCacheServed) {
  // 1000 tuples = 5 pages <= 8-page I/O cache: reads are free.
  const TempId id = store_.Create("small");
  const auto tuples = MakeTuples(1000);
  store_.Append(id, tuples.data(), 1000, true);
  store_.Seal(id);
  const int64_t reads_before = disk_.stats().pages_read;
  std::vector<Tuple> out(1000);
  SimTime ready = 0;
  store_.Read(id, 0, out.data(), 1000, true, &ready);
  EXPECT_EQ(disk_.stats().pages_read, reads_before);
  EXPECT_EQ(store_.stats().cache_served_reads, 1);
  EXPECT_TRUE(store_.FitsIoCache(id));
}

TEST_F(TempStoreTest, LargeTempChargesDiskOnWriteAndRead) {
  // One chunk's worth: 64 pages * 204 tuples.
  const int64_t n = 64 * 204;
  const TempId id = store_.Create("big");
  const auto tuples = MakeTuples(n);
  store_.Append(id, tuples.data(), n, true);
  EXPECT_EQ(disk_.stats().pages_written, 64);
  store_.Seal(id);
  EXPECT_FALSE(store_.FitsIoCache(id));

  std::vector<Tuple> out(static_cast<size_t>(n));
  SimTime ready = 0;
  store_.Read(id, 0, out.data(), n, true, &ready);
  EXPECT_EQ(disk_.stats().pages_read, 64);
  EXPECT_GT(ready, 0);
}

TEST_F(TempStoreTest, SealFlushesRemainder) {
  const int64_t n = 64 * 204 + 100;  // one chunk + a partial page tail
  const TempId id = store_.Create("tail");
  const auto tuples = MakeTuples(n);
  store_.Append(id, tuples.data(), n, true);
  EXPECT_EQ(disk_.stats().pages_written, 64);
  store_.Seal(id);
  EXPECT_EQ(disk_.stats().pages_written, 65);
  EXPECT_EQ(store_.Pages(id), 65);
}

TEST_F(TempStoreTest, SynchronousIoAdvancesClock) {
  const int64_t n = 64 * 204;
  const TempId id = store_.Create("sync");
  const auto tuples = MakeTuples(n);
  const SimTime before = clock_.now();
  store_.Append(id, tuples.data(), n, /*async_io=*/false);
  EXPECT_GE(clock_.now() - before, 64 * cost_.PageTransferTime());
}

TEST_F(TempStoreTest, AsynchronousWriteDoesNotBlockCpu) {
  const int64_t n = 64 * 204;
  const TempId id = store_.Create("async");
  const auto tuples = MakeTuples(n);
  const SimTime before = clock_.now();
  store_.Append(id, tuples.data(), n, /*async_io=*/true);
  // Only the per-I/O instruction cost hits the clock.
  EXPECT_EQ(clock_.now() - before, cost_.InstrTime(cost_.instr_per_io));
}

TEST_F(TempStoreTest, IssueReadAndCopy) {
  const int64_t n = 64 * 204;
  const TempId id = store_.Create("prefetch");
  const auto tuples = MakeTuples(n, 100);
  store_.Append(id, tuples.data(), n, true);
  store_.Seal(id);
  const SimTime done = store_.IssueRead(id, n);
  EXPECT_GT(done, clock_.now());
  std::vector<Tuple> out(10);
  store_.Copy(id, 5, out.data(), 10);
  EXPECT_EQ(out[0].rowid, 105u);
}

TEST_F(TempStoreTest, ReadBeyondEndReturnsZero) {
  const TempId id = store_.Create("t");
  const auto tuples = MakeTuples(10);
  store_.Append(id, tuples.data(), 10, true);
  store_.Seal(id);
  std::vector<Tuple> out(10);
  SimTime ready = 0;
  EXPECT_EQ(store_.Read(id, 10, out.data(), 10, true, &ready), 0);
}

TEST_F(TempStoreTest, SealEmptyTemp) {
  const TempId id = store_.Create("empty");
  store_.Seal(id);
  EXPECT_EQ(store_.Cardinality(id), 0);
  EXPECT_EQ(store_.Pages(id), 0);
}

TEST_F(TempStoreTest, StatsAccumulate) {
  const TempId id = store_.Create("s");
  const auto tuples = MakeTuples(100);
  store_.Append(id, tuples.data(), 100, true);
  store_.Seal(id);
  std::vector<Tuple> out(100);
  SimTime ready = 0;
  store_.Read(id, 0, out.data(), 100, true, &ready);
  EXPECT_EQ(store_.stats().temps_created, 1);
  EXPECT_EQ(store_.stats().tuples_written, 100);
  EXPECT_EQ(store_.stats().tuples_read, 100);
}

}  // namespace
}  // namespace dqsched::storage
