#include "exec/chain_source.h"

#include <gtest/gtest.h>

#include <memory>

#include "exec/exec_context.h"
#include "storage/relation.h"
#include "wrapper/wrapper.h"

namespace dqsched::exec {
namespace {

class ChainSourceTest : public ::testing::Test {
 protected:
  ChainSourceTest() : ctx_(&cost_, MakeCommConfig(), 64 << 20) {}

  static comm::CommConfig MakeCommConfig() {
    comm::CommConfig c;
    c.queue_capacity = 32;
    return c;
  }

  /// Registers a constant-rate wrapper delivering `n` tuples every 10 us.
  void AddSource(int64_t n) {
    storage::RelationSpec spec;
    spec.name = "S" + std::to_string(relations_.size());
    spec.cardinality = n;
    relations_.push_back(std::make_unique<storage::Relation>(
        storage::GenerateRelation(spec, static_cast<SourceId>(relations_.size()),
                                  Rng(relations_.size() + 1))));
    wrapper::DelayConfig delay;
    delay.kind = wrapper::DelayKind::kConstant;
    delay.mean_us = 10.0;
    ctx_.comm.AddSource(
        std::make_unique<wrapper::SimWrapper>(
            static_cast<SourceId>(relations_.size() - 1),
            relations_.back().get(), delay, 1),
        10000.0);
  }

  TempId MakeSealedTemp(int64_t n) {
    const TempId id = ctx_.temps.Create("t");
    std::vector<storage::Tuple> tuples(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      tuples[static_cast<size_t>(i)].rowid = static_cast<uint64_t>(i);
    }
    ctx_.temps.Append(id, tuples.data(), n, true);
    ctx_.temps.Seal(id);
    return id;
  }

  sim::CostModel cost_;
  ExecContext ctx_;
  std::vector<std::unique_ptr<storage::Relation>> relations_;
};

TEST_F(ChainSourceTest, QueueSourceFollowsArrivals) {
  AddSource(10);
  QueueSource src(0);
  EXPECT_EQ(src.Available(ctx_), 0);
  EXPECT_FALSE(src.Exhausted(ctx_));
  EXPECT_EQ(src.NextArrival(ctx_), Microseconds(10));
  ctx_.clock.StallUntil(Microseconds(35));
  EXPECT_EQ(src.Available(ctx_), 3);
  storage::Tuple out[16];
  const auto pop = src.Pop(ctx_, out, 16);
  EXPECT_EQ(pop.count, 3);
  EXPECT_FALSE(pop.from_temp);
  EXPECT_EQ(src.remote_source(), 0);
}

TEST_F(ChainSourceTest, QueueSourceBackpressure) {
  AddSource(100);
  QueueSource src(0);
  ctx_.clock.StallUntil(Microseconds(10000));
  EXPECT_EQ(src.Available(ctx_), 32);  // capacity
  EXPECT_TRUE(src.Backpressured(ctx_));
  storage::Tuple out[32];
  src.Pop(ctx_, out, 32);
  // The producer resumed; it is no longer suspended on a full queue.
  EXPECT_FALSE(src.Backpressured(ctx_));
}

TEST_F(ChainSourceTest, QueueSourceExhaustion) {
  AddSource(5);
  QueueSource src(0);
  ctx_.clock.StallUntil(Microseconds(1000));
  storage::Tuple out[8];
  EXPECT_EQ(src.Pop(ctx_, out, 8).count, 5);
  EXPECT_TRUE(src.Exhausted(ctx_));
  EXPECT_EQ(src.NextArrival(ctx_), kSimTimeNever);
}

TEST_F(ChainSourceTest, SyncTempSourceBlocksOnChunks) {
  const int64_t n = 64 * 204;  // one full chunk, too big for the I/O cache
  const TempId id = MakeSealedTemp(n);
  TempSource src(id, /*async_io=*/false);
  EXPECT_EQ(src.Available(ctx_), n);
  storage::Tuple out[128];
  const SimTime before = ctx_.clock.now();
  const auto pop = src.Pop(ctx_, out, 128);
  EXPECT_EQ(pop.count, 128);
  EXPECT_TRUE(pop.from_temp);
  // Synchronous read: the whole chunk transfer hit the clock.
  EXPECT_GE(ctx_.clock.now() - before, 64 * cost_.PageTransferTime());
}

TEST_F(ChainSourceTest, AsyncTempSourcePrefetches) {
  const int64_t n = 3 * 64 * 204;
  const TempId id = MakeSealedTemp(n);
  TempSource src(id, /*async_io=*/true);
  // Nothing transferred yet: available 0, arrival = first chunk completion
  // (a small slow-start chunk of 4 pages, for low first-tuple latency).
  EXPECT_EQ(src.Available(ctx_), 0);
  const SimTime first_chunk = src.NextArrival(ctx_);
  EXPECT_GT(first_chunk, ctx_.clock.now());
  // The read queues behind the temp's own asynchronous write flushes; the
  // first (slow-start, 4-page) chunk lands shortly after the arm frees.
  EXPECT_LE(first_chunk, ctx_.disk.FreeAt(ctx_.clock.now()) +
                             cost_.DiskPositionTime() +
                             5 * cost_.PageTransferTime());
  ctx_.clock.StallUntil(first_chunk);
  EXPECT_EQ(src.Available(ctx_), 4 * 204);
  // Keep consuming: the pipeline ramps to full-size chunks.
  ctx_.clock.StallUntil(ctx_.clock.now() + Seconds(1));
  storage::Tuple out[256];
  const SimTime before = ctx_.clock.now();
  const auto pop = src.Pop(ctx_, out, 256);
  EXPECT_EQ(pop.count, 256);
  // Asynchronous: no device wait — only the prefetch pipeline's per-I/O
  // issue CPU may tick the clock.
  EXPECT_LE(ctx_.clock.now() - before,
            2 * cost_.InstrTime(cost_.instr_per_io));
  EXPECT_EQ(out[0].rowid, 0u);
  EXPECT_EQ(out[255].rowid, 255u);
}

TEST_F(ChainSourceTest, CacheSizedTempIsInstantlyAvailable) {
  const TempId id = MakeSealedTemp(500);  // 3 pages <= 8-page cache
  TempSource src(id, /*async_io=*/true);
  EXPECT_EQ(src.Available(ctx_), 500);
  storage::Tuple out[500];
  EXPECT_EQ(src.Pop(ctx_, out, 500).count, 500);
  EXPECT_TRUE(src.Exhausted(ctx_));
}

TEST_F(ChainSourceTest, ConcatReadsTempThenQueue) {
  AddSource(4);
  const TempId id = MakeSealedTemp(300);
  ConcatSource src(std::make_unique<TempSource>(id, true),
                   std::make_unique<QueueSource>(0));
  ctx_.clock.StallUntil(Microseconds(100));  // queue holds 4 live tuples
  storage::Tuple out[512];
  // First batches come from the temp, flagged from_temp.
  auto pop = src.Pop(ctx_, out, 512);
  EXPECT_EQ(pop.count, 300);
  EXPECT_TRUE(pop.from_temp);
  // Then the live remainder.
  pop = src.Pop(ctx_, out, 512);
  EXPECT_EQ(pop.count, 4);
  EXPECT_FALSE(pop.from_temp);
  EXPECT_TRUE(src.Exhausted(ctx_));
}

TEST_F(ChainSourceTest, ConcatNeverMixesOriginsInOneBatch) {
  AddSource(50);
  const TempId id = MakeSealedTemp(10);
  ConcatSource src(std::make_unique<TempSource>(id, true),
                   std::make_unique<QueueSource>(0));
  ctx_.clock.StallUntil(Microseconds(2000));
  storage::Tuple out[64];
  const auto pop = src.Pop(ctx_, out, 64);
  EXPECT_EQ(pop.count, 10);  // stops at the temp/live boundary
  EXPECT_TRUE(pop.from_temp);
}

TEST_F(ChainSourceTest, ConcatReportsSecondSourceIdentity) {
  AddSource(5);
  const TempId id = MakeSealedTemp(5);
  ConcatSource src(std::make_unique<TempSource>(id, true),
                   std::make_unique<QueueSource>(0));
  EXPECT_EQ(src.remote_source(), 0);
}

}  // namespace
}  // namespace dqsched::exec
