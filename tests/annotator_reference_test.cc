// Annotation (estimates) and reference execution (exact) tests.

#include <gtest/gtest.h>

#include "plan/canonical_plans.h"
#include "plan/compiled_plan.h"
#include "plan/reference_executor.h"
#include "sim/cost_model.h"
#include "storage/relation.h"

namespace dqsched::plan {
namespace {

CompiledPlan CompileAnnotated(const QuerySetup& setup) {
  Result<CompiledPlan> compiled = Compile(setup.plan, setup.catalog);
  EXPECT_TRUE(compiled.ok());
  sim::CostModel cost;
  EXPECT_TRUE(Annotate(&compiled.value(), setup.catalog, cost).ok());
  return std::move(compiled.value());
}

std::vector<storage::Relation> MakeData(const wrapper::Catalog& catalog,
                                        uint64_t seed) {
  std::vector<storage::Relation> data;
  for (SourceId s = 0; s < catalog.num_sources(); ++s) {
    data.push_back(
        storage::GenerateRelation(catalog.source(s).relation, s, Rng(seed + s)));
  }
  return data;
}

TEST(Annotator, InputCardsComeFromCatalog) {
  const QuerySetup setup = PaperFigure5Query(0.1);
  const CompiledPlan compiled = CompileAnnotated(setup);
  for (const ChainInfo& chain : compiled.chains) {
    EXPECT_DOUBLE_EQ(
        chain.est_input_card,
        static_cast<double>(
            setup.catalog.source(chain.source).relation.cardinality));
  }
}

TEST(Annotator, FanoutsProduceExpectedIntermediates) {
  // Canonical domains: |J1| ~ |B|, |J2| ~ 4|F|, result ~ |C|.
  const QuerySetup setup = PaperFigure5Query(1.0);
  const CompiledPlan compiled = CompileAnnotated(setup);
  auto output_of = [&](const char* name) {
    const SourceId src = setup.catalog.Find(name);
    for (const ChainInfo& chain : compiled.chains) {
      if (chain.source == src) return chain.est_output_card;
    }
    return -1.0;
  };
  EXPECT_NEAR(output_of("B"), 100000, 100);   // |J1| ~ |B|
  EXPECT_NEAR(output_of("F"), 40000, 100);    // |J2| ~ 4|F|
  EXPECT_NEAR(output_of("D"), 100000, 2000);  // |J4| ~ |J3| ~ |D|
  EXPECT_NEAR(output_of("C"), 200000, 5000);  // result ~ |C|
}

TEST(Annotator, CpuPerTupleIncludesReceiveFloor) {
  const QuerySetup setup = PaperFigure5Query(0.1);
  const CompiledPlan compiled = CompileAnnotated(setup);
  sim::CostModel cost;
  for (const ChainInfo& chain : compiled.chains) {
    EXPECT_GE(chain.est_cpu_per_tuple_ns,
              static_cast<double>(cost.ReceiveTupleCpuTime()));
  }
}

TEST(Annotator, ProbeChainsNeedMemoryForTheirOperands) {
  const QuerySetup setup = PaperFigure5Query(0.1);
  const CompiledPlan compiled = CompileAnnotated(setup);
  for (const ChainInfo& chain : compiled.chains) {
    int probes = 0;
    for (const ChainOp& op : chain.ops) {
      probes += op.kind == ChainOpKind::kProbe;
    }
    if (probes > 0) {
      EXPECT_GT(chain.est_mem_bytes, 0.0) << chain.name;
      EXPECT_GT(chain.est_open_cpu_ns, 0.0) << chain.name;
    } else {
      EXPECT_DOUBLE_EQ(chain.est_mem_bytes, 0.0) << chain.name;
    }
  }
}

TEST(Annotator, SinkMemoryOnlyForOperandChains) {
  const QuerySetup setup = PaperFigure5Query(0.1);
  const CompiledPlan compiled = CompileAnnotated(setup);
  for (const ChainInfo& chain : compiled.chains) {
    if (chain.is_result) {
      EXPECT_DOUBLE_EQ(chain.est_sink_mem_bytes, 0.0);
    } else {
      EXPECT_GT(chain.est_sink_mem_bytes, 0.0);
    }
  }
}

TEST(Reference, HandComputableJoin) {
  // Build side: 4 tuples with keys {0,0,1,2}; probe side: keys {0,1,3}.
  // Expected matches: probe 0 -> 2, probe 1 -> 1, probe 3 -> 0.
  wrapper::Catalog catalog;
  for (const char* name : {"Build", "Probe"}) {
    wrapper::SourceSpec s;
    s.relation.name = name;
    s.relation.cardinality = 0;  // data injected manually below
    catalog.sources.push_back(s);
  }
  Plan plan;
  const NodeId b = plan.AddScan(0);
  const NodeId p = plan.AddScan(1);
  plan.SetRoot(plan.AddHashJoin(b, p, 0, 0));
  Result<CompiledPlan> compiled = Compile(plan, catalog);
  ASSERT_TRUE(compiled.ok());

  std::vector<storage::Relation> data(2);
  auto add = [&](int rel, int64_t key, uint64_t rowid) {
    storage::Tuple t;
    t.keys[0] = key;
    t.rowid = rowid;
    data[static_cast<size_t>(rel)].tuples.push_back(t);
  };
  add(0, 0, 1);
  add(0, 0, 2);
  add(0, 1, 3);
  add(0, 2, 4);
  add(1, 0, 10);
  add(1, 1, 11);
  add(1, 3, 12);

  const ReferenceResult ref = ExecuteReference(*compiled, data);
  EXPECT_EQ(ref.result_card, 3);
  const auto& result_stats =
      ref.chains[static_cast<size_t>(compiled->result_chain)];
  EXPECT_EQ(result_stats.input_card, 3);
  EXPECT_EQ(result_stats.output_card, 3);
}

TEST(Reference, ExactCardsTrackEstimatesOnCanonicalPlan) {
  const QuerySetup setup = PaperFigure5Query(0.1);
  const CompiledPlan compiled = CompileAnnotated(setup);
  const auto data = MakeData(setup.catalog, 99);
  const ReferenceResult ref = ExecuteReference(compiled, data);
  for (const ChainInfo& chain : compiled.chains) {
    const auto& exact = ref.chains[static_cast<size_t>(chain.id)];
    EXPECT_EQ(exact.input_card, static_cast<int64_t>(chain.est_input_card));
    // Estimates should be within 15% of actuals for uniform data.
    EXPECT_NEAR(static_cast<double>(exact.output_card),
                chain.est_output_card, chain.est_output_card * 0.15 + 20)
        << chain.name;
  }
}

TEST(Reference, OpOutputsHaveOneEntryPerOp) {
  const QuerySetup setup = PaperFigure5Query(0.05);
  const CompiledPlan compiled = CompileAnnotated(setup);
  const auto data = MakeData(setup.catalog, 7);
  const ReferenceResult ref = ExecuteReference(compiled, data);
  for (const ChainInfo& chain : compiled.chains) {
    EXPECT_EQ(ref.op_outputs[static_cast<size_t>(chain.id)].size(),
              chain.ops.size());
  }
}

TEST(Reference, DeterministicForSameData) {
  const QuerySetup setup = TinyTwoSourceQuery();
  Result<CompiledPlan> compiled = Compile(setup.plan, setup.catalog);
  ASSERT_TRUE(compiled.ok());
  const auto data = MakeData(setup.catalog, 5);
  const ReferenceResult a = ExecuteReference(*compiled, data);
  const ReferenceResult b = ExecuteReference(*compiled, data);
  EXPECT_EQ(a.result_card, b.result_card);
  EXPECT_TRUE(a.checksum == b.checksum);
}

TEST(Reference, FiltersApplyDeterministicPredicate) {
  wrapper::Catalog catalog;
  wrapper::SourceSpec s;
  s.relation.name = "R";
  s.relation.cardinality = 10000;
  catalog.sources.push_back(s);
  Plan plan;
  plan.SetRoot(plan.AddFilter(plan.AddScan(0), 0.4));
  Result<CompiledPlan> compiled = Compile(plan, catalog);
  ASSERT_TRUE(compiled.ok());
  std::vector<storage::Relation> data;
  data.push_back(storage::GenerateRelation(s.relation, 0, Rng(1)));
  const ReferenceResult ref = ExecuteReference(*compiled, data);
  EXPECT_NEAR(static_cast<double>(ref.result_card), 4000.0, 200.0);
}

}  // namespace
}  // namespace dqsched::plan
