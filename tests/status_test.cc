#include "common/status.h"

#include <gtest/gtest.h>

namespace dqsched {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoryConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::InvalidArgument("bad arg").message(), "bad arg");
}

TEST(Status, ToStringIncludesCodeNameAndMessage) {
  EXPECT_EQ(Status::NotFound("widget").ToString(), "NotFound: widget");
  EXPECT_EQ(Status(StatusCode::kInternal, "").ToString(), "Internal");
}

TEST(Status, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
}

TEST(Status, FaultCodesRoundTripThroughToString) {
  EXPECT_EQ(Status::Unavailable("source 2 dead").ToString(),
            "Unavailable: source 2 dead");
  EXPECT_EQ(Status::DeadlineExceeded("budget spent").ToString(),
            "DeadlineExceeded: budget spent");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(Result, ArrowOperator) {
  struct Pair {
    int a = 1;
    int b = 2;
  };
  Result<Pair> r(Pair{});
  EXPECT_EQ(r->a, 1);
  EXPECT_EQ(r->b, 2);
}

TEST(Result, WorksWithMoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(9));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(**r, 9);
}

TEST(ReturnIfErrorMacro, PropagatesError) {
  auto fails = [] { return Status::Internal("boom"); };
  auto outer = [&]() -> Status {
    DQS_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

TEST(ReturnIfErrorMacro, PassesThroughOk) {
  auto ok = [] { return Status::Ok(); };
  auto outer = [&]() -> Status {
    DQS_RETURN_IF_ERROR(ok());
    return Status::InvalidArgument("reached");
  };
  EXPECT_EQ(outer().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dqsched
