// Multi-query execution tests (paper Section 6 future work): shared vs
// serial interleaving, correctness of every query in the mix, and the
// throughput/response-time tradeoff's direction.

#include "core/multi_query.h"

#include <gtest/gtest.h>

#include "plan/canonical_plans.h"
#include "plan/query_generator.h"

namespace dqsched::core {
namespace {

std::vector<plan::QuerySetup> MixOfTinyQueries(int n) {
  std::vector<plan::QuerySetup> mix;
  for (int i = 0; i < n; ++i) {
    mix.push_back(plan::TinyTwoSourceQuery(1500 + 400 * i, 1000 + 300 * i,
                                           /*mean_delay_us=*/20.0));
  }
  return mix;
}

MultiQueryConfig SmallConfig() {
  MultiQueryConfig config;
  config.seed = 11;
  return config;
}

TEST(MultiQuery, CreateValidates) {
  EXPECT_FALSE(MultiQueryMediator::Create({}, SmallConfig()).ok());
  MultiQueryConfig bad = SmallConfig();
  bad.slice_batches = 0;
  EXPECT_FALSE(MultiQueryMediator::Create(MixOfTinyQueries(2), bad).ok());
}

TEST(MultiQuery, MaIsRejected) {
  Result<MultiQueryMediator> m =
      MultiQueryMediator::Create(MixOfTinyQueries(2), SmallConfig());
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(m->Execute(StrategyKind::kMa, MultiMode::kShared).ok());
}

TEST(MultiQuery, SharedDseCompletesAndVerifiesEveryQuery) {
  Result<MultiQueryMediator> m =
      MultiQueryMediator::Create(MixOfTinyQueries(3), SmallConfig());
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  Result<MultiQueryMetrics> r =
      m->Execute(StrategyKind::kDse, MultiMode::kShared);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->response_times.size(), 3u);
  for (SimDuration t : r->response_times) {
    EXPECT_GT(t, 0);
    EXPECT_LE(t, r->makespan);
  }
  EXPECT_GT(r->total_result_tuples, 0);
}

TEST(MultiQuery, SerialMatchesSumOfIndividualRuns) {
  Result<MultiQueryMediator> m =
      MultiQueryMediator::Create(MixOfTinyQueries(2), SmallConfig());
  ASSERT_TRUE(m.ok());
  Result<MultiQueryMetrics> serial =
      m->Execute(StrategyKind::kDse, MultiMode::kSerial);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  // Serial responses are cumulative and strictly increasing.
  EXPECT_LT(serial->response_times[0], serial->response_times[1]);
  EXPECT_EQ(serial->response_times[1], serial->makespan);
}

TEST(MultiQuery, SharedSeqCompletesToo) {
  Result<MultiQueryMediator> m =
      MultiQueryMediator::Create(MixOfTinyQueries(3), SmallConfig());
  ASSERT_TRUE(m.ok());
  Result<MultiQueryMetrics> r =
      m->Execute(StrategyKind::kSeq, MultiMode::kShared);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->response_times.size(), 3u);
}

TEST(MultiQuery, SharingImprovesMakespanWhenSourcesAreSlow) {
  // Slow sources leave plenty of idle CPU per query: sharing should
  // overlap the retrievals and beat the serial makespan clearly.
  std::vector<plan::QuerySetup> mix;
  for (int i = 0; i < 3; ++i) {
    mix.push_back(plan::TinyTwoSourceQuery(3000, 2000,
                                           /*mean_delay_us=*/100.0));
  }
  Result<MultiQueryMediator> m =
      MultiQueryMediator::Create(std::move(mix), SmallConfig());
  ASSERT_TRUE(m.ok());
  Result<MultiQueryMetrics> serial =
      m->Execute(StrategyKind::kDse, MultiMode::kSerial);
  Result<MultiQueryMetrics> shared =
      m->Execute(StrategyKind::kDse, MultiMode::kShared);
  ASSERT_TRUE(serial.ok() && shared.ok());
  EXPECT_LT(shared->makespan, serial->makespan);
}

TEST(MultiQuery, SerialWinsFirstQueryLatency) {
  // The classical tradeoff's other side: serially, query 0 gets the whole
  // mediator and finishes no later than under sharing.
  Result<MultiQueryMediator> m =
      MultiQueryMediator::Create(MixOfTinyQueries(3), SmallConfig());
  ASSERT_TRUE(m.ok());
  Result<MultiQueryMetrics> serial =
      m->Execute(StrategyKind::kDse, MultiMode::kSerial);
  Result<MultiQueryMetrics> shared =
      m->Execute(StrategyKind::kDse, MultiMode::kShared);
  ASSERT_TRUE(serial.ok() && shared.ok());
  EXPECT_LE(serial->response_times[0], shared->response_times[0] * 1.05);
}

TEST(MultiQuery, DeterministicPerSeed) {
  Result<MultiQueryMediator> a =
      MultiQueryMediator::Create(MixOfTinyQueries(2), SmallConfig());
  Result<MultiQueryMediator> b =
      MultiQueryMediator::Create(MixOfTinyQueries(2), SmallConfig());
  ASSERT_TRUE(a.ok() && b.ok());
  Result<MultiQueryMetrics> ra =
      a->Execute(StrategyKind::kDse, MultiMode::kShared);
  Result<MultiQueryMetrics> rb =
      b->Execute(StrategyKind::kDse, MultiMode::kShared);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(ra->makespan, rb->makespan);
  EXPECT_EQ(ra->response_times, rb->response_times);
}

TEST(MultiQuery, MixedQueryShapes) {
  std::vector<plan::QuerySetup> mix;
  mix.push_back(plan::ChainThreeSourceQuery(10.0));
  mix.push_back(plan::TinyTwoSourceQuery(2000, 1500, 20.0));
  plan::GeneratorConfig gen;
  gen.num_sources = 4;
  gen.seed = 5;
  gen.min_cardinality = 500;
  gen.max_cardinality = 3000;
  Result<plan::QuerySetup> random = plan::GenerateBushyQuery(gen, false);
  ASSERT_TRUE(random.ok());
  mix.push_back(std::move(random.value()));

  Result<MultiQueryMediator> m =
      MultiQueryMediator::Create(std::move(mix), SmallConfig());
  ASSERT_TRUE(m.ok());
  for (MultiMode mode : {MultiMode::kSerial, MultiMode::kShared}) {
    Result<MultiQueryMetrics> r = m->Execute(StrategyKind::kDse, mode);
    ASSERT_TRUE(r.ok()) << MultiModeName(mode) << ": "
                        << r.status().ToString();
    EXPECT_EQ(r->response_times.size(), 3u);
  }
}

TEST(MultiQuery, ModeNamesStable) {
  EXPECT_STREQ(MultiModeName(MultiMode::kSerial), "serial");
  EXPECT_STREQ(MultiModeName(MultiMode::kShared), "shared");
}

}  // namespace
}  // namespace dqsched::core
