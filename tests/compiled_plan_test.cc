// Pipeline-chain decomposition tests (paper Section 2.2 semantics).

#include "plan/compiled_plan.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "plan/canonical_plans.h"

namespace dqsched::plan {
namespace {

const ChainInfo& ChainBySource(const CompiledPlan& compiled,
                               const wrapper::Catalog& catalog,
                               const std::string& name) {
  const SourceId src = catalog.Find(name);
  for (const ChainInfo& chain : compiled.chains) {
    if (chain.source == src) return chain;
  }
  ADD_FAILURE() << "no chain for source " << name;
  static ChainInfo dummy;
  return dummy;
}

CompiledPlan CompileSetup(const QuerySetup& setup) {
  Result<CompiledPlan> compiled = Compile(setup.plan, setup.catalog);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  return std::move(compiled.value());
}

TEST(Compile, TinyQueryYieldsTwoChains) {
  const QuerySetup setup = TinyTwoSourceQuery();
  const CompiledPlan compiled = CompileSetup(setup);
  ASSERT_EQ(compiled.num_chains(), 2);
  ASSERT_EQ(compiled.num_joins, 1);
  const ChainInfo& result = compiled.chain(compiled.result_chain);
  EXPECT_TRUE(result.is_result);
  EXPECT_EQ(result.ops.size(), 1u);  // the probe
  EXPECT_EQ(result.ops[0].kind, ChainOpKind::kProbe);
  ASSERT_EQ(result.blockers.size(), 1u);
  const ChainInfo& build = compiled.chain(result.blockers[0]);
  EXPECT_FALSE(build.is_result);
  EXPECT_EQ(build.sink_join, result.ops[0].join);
  EXPECT_TRUE(build.ops.empty());  // pure scan feeding the operand
}

TEST(Compile, PaperPlanHasSixChains) {
  const QuerySetup setup = PaperFigure5Query(0.01);
  const CompiledPlan compiled = CompileSetup(setup);
  EXPECT_EQ(compiled.num_chains(), 6);
  EXPECT_EQ(compiled.num_joins, 5);
  // One chain per source, each named after it.
  for (const char* name : {"A", "B", "C", "D", "E", "F"}) {
    const ChainInfo& chain = ChainBySource(compiled, setup.catalog, name);
    EXPECT_EQ(chain.name, std::string("p_") + name);
  }
}

TEST(Compile, PaperPlanBlockingStructureMatchesDesign) {
  // DESIGN.md: p_A -> p_B -> p_F -> p_D -> p_C and p_E -> p_D.
  const QuerySetup setup = PaperFigure5Query(0.01);
  const CompiledPlan compiled = CompileSetup(setup);
  const auto& cat = setup.catalog;
  auto blockers_of = [&](const char* name) {
    std::vector<std::string> out;
    for (ChainId b : ChainBySource(compiled, cat, name).blockers) {
      out.push_back(compiled.chain(b).name);
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_TRUE(blockers_of("A").empty());
  EXPECT_TRUE(blockers_of("E").empty());
  EXPECT_EQ(blockers_of("B"), std::vector<std::string>{"p_A"});
  EXPECT_EQ(blockers_of("F"), std::vector<std::string>{"p_B"});
  EXPECT_EQ(blockers_of("D"), (std::vector<std::string>{"p_E", "p_F"}));
  EXPECT_EQ(blockers_of("C"), std::vector<std::string>{"p_D"});
}

TEST(Compile, AncestorsIsTransitiveClosure) {
  const QuerySetup setup = PaperFigure5Query(0.01);
  const CompiledPlan compiled = CompileSetup(setup);
  const ChainInfo& pc = ChainBySource(compiled, setup.catalog, "C");
  // ancestors*(p_C) = every other chain (p_C is the result chain).
  EXPECT_EQ(compiled.Ancestors(pc.id).size(), 5u);
  const ChainInfo& pa = ChainBySource(compiled, setup.catalog, "A");
  EXPECT_TRUE(compiled.Ancestors(pa.id).empty());
  const ChainInfo& pf = ChainBySource(compiled, setup.catalog, "F");
  EXPECT_EQ(compiled.Ancestors(pf.id).size(), 2u);  // p_B, p_A
}

TEST(Compile, IteratorModelOrderRespectsBlocking) {
  const QuerySetup setup = PaperFigure5Query(0.01);
  const CompiledPlan compiled = CompileSetup(setup);
  const auto order = compiled.IteratorModelOrder();
  ASSERT_EQ(order.size(), 6u);
  auto position = [&](ChainId id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  for (const ChainInfo& chain : compiled.chains) {
    for (ChainId b : chain.blockers) {
      EXPECT_LT(position(b), position(chain.id))
          << compiled.chain(b).name << " must precede " << chain.name;
    }
  }
  // The result chain runs last.
  EXPECT_EQ(order.back(), compiled.result_chain);
}

TEST(Compile, DeepProbeChainCollectsAllOps) {
  const QuerySetup setup = PaperFigure5Query(0.01);
  const CompiledPlan compiled = CompileSetup(setup);
  // p_D probes J3 then J4 and builds J5's operand.
  const ChainInfo& pd = ChainBySource(compiled, setup.catalog, "D");
  ASSERT_EQ(pd.ops.size(), 2u);
  EXPECT_EQ(pd.ops[0].kind, ChainOpKind::kProbe);
  EXPECT_EQ(pd.ops[1].kind, ChainOpKind::kProbe);
  EXPECT_FALSE(pd.is_result);
  EXPECT_NE(pd.sink_join, kInvalidId);
}

TEST(Compile, FiltersLandInTheRightChain) {
  QuerySetup setup = TinyTwoSourceQuery();
  // Rebuild with filters over both scans.
  Plan plan;
  const NodeId a = plan.AddFilter(plan.AddScan(0), 0.5);
  const NodeId b = plan.AddFilter(plan.AddScan(1), 0.25);
  plan.SetRoot(plan.AddHashJoin(a, b, 0, 0));
  const Result<CompiledPlan> compiled = Compile(plan, setup.catalog);
  ASSERT_TRUE(compiled.ok());
  const ChainInfo& result = compiled->chain(compiled->result_chain);
  ASSERT_EQ(result.ops.size(), 2u);
  EXPECT_EQ(result.ops[0].kind, ChainOpKind::kFilter);
  EXPECT_DOUBLE_EQ(result.ops[0].selectivity, 0.25);
  EXPECT_EQ(result.ops[1].kind, ChainOpKind::kProbe);
  const ChainInfo& build = compiled->chain(result.blockers[0]);
  ASSERT_EQ(build.ops.size(), 1u);
  EXPECT_DOUBLE_EQ(build.ops[0].selectivity, 0.5);
}

TEST(Compile, SingleScanPlan) {
  wrapper::Catalog catalog;
  wrapper::SourceSpec s;
  s.relation.name = "Solo";
  s.relation.cardinality = 10;
  catalog.sources.push_back(s);
  Plan plan;
  plan.SetRoot(plan.AddScan(0));
  const Result<CompiledPlan> compiled = Compile(plan, catalog);
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(compiled->num_chains(), 1);
  EXPECT_EQ(compiled->num_joins, 0);
  EXPECT_TRUE(compiled->chain(0).is_result);
}

TEST(Compile, InvalidPlanIsRejected) {
  const QuerySetup setup = TinyTwoSourceQuery();
  Plan bad;  // empty
  EXPECT_FALSE(Compile(bad, setup.catalog).ok());
}

TEST(Compile, OperandOfJoinMapsBuildChains) {
  const QuerySetup setup = PaperFigure5Query(0.01);
  const CompiledPlan compiled = CompileSetup(setup);
  ASSERT_EQ(compiled.operand_of_join.size(), 5u);
  for (JoinId j = 0; j < compiled.num_joins; ++j) {
    const ChainId producer = compiled.operand_of_join[static_cast<size_t>(j)];
    ASSERT_NE(producer, kInvalidId);
    EXPECT_EQ(compiled.chain(producer).sink_join, j);
  }
}

}  // namespace
}  // namespace dqsched::plan
