// Source fault injection and the failure-tolerant communication layer:
// schedule validation, wrapper-level injection semantics (stall /
// disconnect / death, offset-resume and from-scratch replay), the CM's
// duplicate discarding and liveness detection, and the end-to-end strategy
// behavior — graceful degradation, partial results, deadlines (DESIGN.md
// §8). In DQSCHED_AUDIT builds every execution here also runs the
// invariant auditor, including the replay-aware conservation law.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "comm/comm_manager.h"
#include "comm/tuple_queue.h"
#include "core/mediator.h"
#include "plan/canonical_plans.h"
#include "storage/relation.h"
#include "wrapper/fault_model.h"
#include "wrapper/wrapper.h"

namespace dqsched {
namespace {

using comm::CommConfig;
using comm::CommManager;
using comm::FaultSignal;
using comm::TupleQueue;
using core::ExecutionMetrics;
using core::Mediator;
using core::MediatorConfig;
using core::StrategyKind;
using storage::Relation;
using storage::RelationSpec;
using storage::Tuple;
using wrapper::DelayConfig;
using wrapper::DelayKind;
using wrapper::FaultKind;
using wrapper::FaultModel;
using wrapper::FaultSchedule;
using wrapper::FaultSpec;
using wrapper::SimWrapper;

Relation MakeRelation(int64_t n, SourceId src = 0) {
  RelationSpec spec;
  spec.name = "R";
  spec.cardinality = n;
  return GenerateRelation(spec, src, Rng(7));
}

DelayConfig ConstantDelay(double us) {
  DelayConfig d;
  d.kind = DelayKind::kConstant;
  d.mean_us = us;
  return d;
}

FaultSpec StallAt(int64_t tuple, SimDuration duration) {
  FaultSpec s;
  s.kind = FaultKind::kStall;
  s.at_tuple = tuple;
  s.stall = duration;
  return s;
}

FaultSpec DisconnectAt(int64_t tuple, bool replay, int64_t failed_attempts,
                       SimDuration backoff, double jitter) {
  FaultSpec s;
  s.kind = FaultKind::kDisconnect;
  s.at_tuple = tuple;
  s.replay_from_scratch = replay;
  s.failed_attempts = failed_attempts;
  s.backoff_initial = backoff;
  s.backoff_jitter = jitter;
  return s;
}

FaultSpec DeathAt(int64_t tuple) {
  FaultSpec s;
  s.kind = FaultKind::kDeath;
  s.at_tuple = tuple;
  return s;
}

// ---------------------------------------------------------------- schedule

TEST(FaultScheduleValidation, RejectsBadSpecs) {
  EXPECT_FALSE(StallAt(-1, Milliseconds(1)).Validate().ok());
  EXPECT_FALSE(StallAt(0, 0).Validate().ok());
  EXPECT_FALSE(DisconnectAt(0, false, -1, Milliseconds(1), 0.0)
                   .Validate()
                   .ok());
  EXPECT_FALSE(DisconnectAt(0, false, 33, Milliseconds(1), 0.0)
                   .Validate()
                   .ok());
  EXPECT_FALSE(DisconnectAt(0, false, 1, 0, 0.0).Validate().ok());
  EXPECT_FALSE(DisconnectAt(0, false, 1, Milliseconds(1), 1.0)
                   .Validate()
                   .ok());
  EXPECT_TRUE(DeathAt(0).Validate().ok());
}

TEST(FaultScheduleValidation, RejectsBadOrdering) {
  FaultSchedule schedule;
  EXPECT_TRUE(schedule.Validate().ok());  // empty is fine
  schedule.events = {StallAt(5, Milliseconds(1)), StallAt(5, Milliseconds(1))};
  EXPECT_FALSE(schedule.Validate().ok());  // not strictly increasing
  schedule.events = {DeathAt(3), StallAt(5, Milliseconds(1))};
  EXPECT_FALSE(schedule.Validate().ok());  // nothing can follow a death
  schedule.events = {StallAt(3, Milliseconds(1)), DeathAt(5)};
  EXPECT_TRUE(schedule.Validate().ok());
}

TEST(FaultScheduleValidation, CatalogSurfacesScheduleErrors) {
  plan::QuerySetup setup = plan::TinyTwoSourceQuery();
  setup.catalog.sources[0].faults.events = {StallAt(0, 0)};
  EXPECT_FALSE(setup.catalog.Validate().ok());
}

TEST(FaultModelDeterminism, SameSeedSameOutage) {
  FaultSchedule schedule;
  schedule.events = {DisconnectAt(10, false, 3, Milliseconds(5), 0.25)};
  FaultModel a(schedule, 99);
  FaultModel b(schedule, 99);
  const auto act_a = a.OnProduce(10);
  const auto act_b = b.OnProduce(10);
  EXPECT_GT(act_a.extra_silence, 0);
  EXPECT_EQ(act_a.extra_silence, act_b.extra_silence);
}

// ----------------------------------------------------------------- wrapper

TEST(FaultWrapper, StallShiftsSubsequentArrivals) {
  const Relation rel = MakeRelation(8);
  SimWrapper w(0, &rel, ConstantDelay(10.0), 1);
  FaultSchedule schedule;
  schedule.events = {StallAt(3, Milliseconds(1))};
  w.SetFaultSchedule(schedule, 5);
  TupleQueue q(64);
  std::vector<SimTime> times;
  struct Obs : wrapper::ArrivalObserver {
    std::vector<SimTime>* out;
    void OnArrivals(const SimTime* ts, int64_t n) override {
      out->insert(out->end(), ts, ts + n);
    }
  } obs;
  obs.out = &times;
  w.PumpInto(q, Milliseconds(10), &obs);
  ASSERT_EQ(times.size(), 8u);
  EXPECT_EQ(times[2], Microseconds(30));
  EXPECT_EQ(times[3], Microseconds(40) + Milliseconds(1));
  EXPECT_EQ(times[4], Microseconds(50) + Milliseconds(1));
  EXPECT_TRUE(w.Exhausted());
  ASSERT_NE(w.fault_stats(), nullptr);
  EXPECT_EQ(w.fault_stats()->stalls, 1);
  EXPECT_EQ(w.fault_stats()->silence, Milliseconds(1));
}

TEST(FaultWrapper, DeathSilencesPermanently) {
  const Relation rel = MakeRelation(8);
  SimWrapper w(0, &rel, ConstantDelay(10.0), 1);
  FaultSchedule schedule;
  schedule.events = {DeathAt(5)};
  w.SetFaultSchedule(schedule, 5);
  TupleQueue q(64);
  w.PumpInto(q, Seconds(100));
  EXPECT_EQ(w.stats().tuples_delivered, 5);
  EXPECT_TRUE(w.dead());
  EXPECT_FALSE(w.Exhausted());
  EXPECT_EQ(w.NextArrival(), kSimTimeNever);
  // The stream does not end: the consumer cannot tell death from silence
  // (that is the failure detector's job).
  EXPECT_FALSE(q.producer_closed());
  ASSERT_NE(w.fault_stats(), nullptr);
  EXPECT_TRUE(w.fault_stats()->died);
}

TEST(FaultWrapper, DisconnectResumesFromOffset) {
  const Relation rel = MakeRelation(8);
  SimWrapper w(0, &rel, ConstantDelay(10.0), 1);
  FaultSchedule schedule;
  // failed_attempts=1, backoff 1 ms, no jitter: outage = 1 ms + 2 ms.
  schedule.events = {DisconnectAt(3, false, 1, Milliseconds(1), 0.0)};
  w.SetFaultSchedule(schedule, 5);
  TupleQueue q(64);
  std::vector<SimTime> times;
  struct Obs : wrapper::ArrivalObserver {
    std::vector<SimTime>* out;
    void OnArrivals(const SimTime* ts, int64_t n) override {
      out->insert(out->end(), ts, ts + n);
    }
  } obs;
  obs.out = &times;
  w.PumpInto(q, Seconds(1), &obs);
  ASSERT_EQ(times.size(), 8u);
  EXPECT_EQ(times[3], Microseconds(40) + Milliseconds(3));
  EXPECT_EQ(w.stats().tuples_delivered, 8);
  EXPECT_TRUE(w.replay_windows().empty());
  ASSERT_NE(w.fault_stats(), nullptr);
  EXPECT_EQ(w.fault_stats()->disconnects, 1);
  EXPECT_EQ(w.fault_stats()->reconnects, 1);
  EXPECT_EQ(w.fault_stats()->duplicates_scheduled, 0);
}

TEST(FaultWrapper, DisconnectReplaysFromScratch) {
  const Relation rel = MakeRelation(6);
  SimWrapper w(0, &rel, ConstantDelay(10.0), 1);
  FaultSchedule schedule;
  schedule.events = {DisconnectAt(3, true, 0, Milliseconds(1), 0.0)};
  w.SetFaultSchedule(schedule, 5);
  TupleQueue q(64);
  w.PumpInto(q, Seconds(1));
  // Delivery: fresh 0,1,2 — reconnect — replayed 0,1,2 — fresh 3,4,5.
  EXPECT_EQ(w.stats().tuples_delivered, 9);
  Tuple out[16];
  ASSERT_EQ(q.PopBatch(out, 16), 9);
  const int64_t expected[] = {0, 1, 2, 0, 1, 2, 3, 4, 5};
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(out[i].rowid, rel.tuples[static_cast<size_t>(expected[i])].rowid)
        << "position " << i;
  }
  // Positions [3, 6) of the delivery sequence are the duplicates.
  ASSERT_EQ(w.replay_windows().size(), 1u);
  EXPECT_EQ(w.replay_windows()[0].begin, 3);
  EXPECT_EQ(w.replay_windows()[0].end, 6);
  ASSERT_NE(w.fault_stats(), nullptr);
  EXPECT_EQ(w.fault_stats()->duplicates_scheduled, 3);
}

// -------------------------------------------------------------------- comm

TEST(FaultComm, ReplayDuplicatesDiscardedExactly) {
  // A from-scratch replay through the bounded-queue window protocol: the
  // consumer must observe exactly the fault-free sequence.
  CommConfig config;
  config.queue_capacity = 16;  // force suspensions mid-replay
  config.failure_detection = true;
  const Relation rel = MakeRelation(2000);

  auto run = [&rel, &config](bool faulty) {
    CommManager manager(config);
    auto w = std::make_unique<SimWrapper>(0, &rel, ConstantDelay(10.0), 1);
    if (faulty) {
      FaultSchedule schedule;
      schedule.events = {DisconnectAt(1000, true, 0, Milliseconds(1), 0.0)};
      w->SetFaultSchedule(schedule, 5);
    }
    manager.AddSource(std::move(w), /*prior=*/10000.0);
    std::vector<uint64_t> rowids;
    Tuple out[64];
    SimTime t = 0;
    int guard = 0;
    while (!manager.SourceExhausted(0)) {
      if (++guard > 1000000) {
        ADD_FAILURE() << "drain did not converge";
        break;
      }
      t += Microseconds(200);
      const int64_t n = manager.Pop(0, t, out, 64);
      for (int64_t i = 0; i < n; ++i) rowids.push_back(out[i].rowid);
    }
    EXPECT_EQ(manager.ReplayDiscarded(0), faulty ? 1000 : 0);
    EXPECT_EQ(manager.replay_discarded_total(), faulty ? 1000 : 0);
    EXPECT_EQ(manager.RemainingTuples(0), 0);
    return rowids;
  };
  const std::vector<uint64_t> clean = run(false);
  const std::vector<uint64_t> deduped = run(true);
  EXPECT_EQ(clean.size(), 2000u);
  EXPECT_EQ(clean, deduped);
}

TEST(FaultComm, QueueOfOnlyDuplicatesCannotWedge) {
  // Regression: a consumer that pops only when it *sees* fresh tuples
  // (as fragments do, via Available) must not deadlock when the bounded
  // queue fills entirely with replayed duplicates — the producer is
  // suspended on a full queue, Available reads 0, and without the eager
  // duplicate discard in the pump path nothing would ever drain.
  CommConfig config;
  config.queue_capacity = 64;
  config.failure_detection = true;
  CommManager manager(config);
  const Relation rel = MakeRelation(5000);
  auto w = std::make_unique<SimWrapper>(0, &rel, ConstantDelay(10.0), 1);
  FaultSchedule schedule;
  schedule.events = {DisconnectAt(2048, true, 0, Milliseconds(1), 0.0)};
  w->SetFaultSchedule(schedule, 5);
  manager.AddSource(std::move(w), /*prior=*/10000.0);
  Tuple out[64];
  SimTime t = 0;
  int64_t consumed = 0;
  int idle = 0;
  while (!manager.SourceExhausted(0) && idle < 1000000) {
    t += Microseconds(100);
    if (manager.Available(0, t) > 0) {
      consumed += manager.Pop(0, t, out, 64);
      idle = 0;
    } else {
      ++idle;
    }
  }
  EXPECT_EQ(consumed, 5000);
  EXPECT_EQ(manager.ReplayDiscarded(0), 2048);
}

TEST(FaultComm, DetectorSuspectsThenDeclaresDead) {
  CommConfig config;
  config.failure_detection = true;
  CommManager manager(config);
  const Relation rel = MakeRelation(100);
  auto w = std::make_unique<SimWrapper>(0, &rel, ConstantDelay(10.0), 1);
  FaultSchedule schedule;
  schedule.events = {DeathAt(5)};
  w->SetFaultSchedule(schedule, 5);
  manager.AddSource(std::move(w), /*prior=*/10000.0);
  Tuple out[16];
  EXPECT_EQ(manager.Pop(0, Microseconds(100), out, 16), 5);
  const SimTime last = Microseconds(50);  // arrival of the 5th tuple

  // Liveness thresholds: floors dominate at this rate (50 ms / 500 ms).
  EXPECT_EQ(manager.NextFaultDeadline(Microseconds(60)),
            last + Milliseconds(50));
  manager.UpdateFaultState(last + Milliseconds(50) - 1);
  EXPECT_FALSE(manager.SourceSuspected(0));
  manager.UpdateFaultState(last + Milliseconds(50));
  EXPECT_TRUE(manager.SourceSuspected(0));
  EXPECT_FALSE(manager.SourceDead(0));
  manager.UpdateFaultState(last + Milliseconds(500));
  EXPECT_TRUE(manager.SourceDead(0));
  EXPECT_EQ(manager.fault_suspicions(), 1);
  EXPECT_EQ(manager.fault_declared_dead(), 1);

  FaultSignal sig;
  ASSERT_TRUE(manager.TakeFaultSignal(&sig));
  EXPECT_EQ(sig.kind, FaultSignal::Kind::kDown);
  EXPECT_EQ(sig.source, 0);
  ASSERT_TRUE(manager.TakeFaultSignal(&sig));
  EXPECT_EQ(sig.kind, FaultSignal::Kind::kDead);
  EXPECT_FALSE(manager.TakeFaultSignal(&sig));

  // Abandonment closes the stream; the queued prefix stays consumable.
  manager.AbandonSource(0);
  EXPECT_EQ(manager.RemainingTuples(0), 0);
  EXPECT_TRUE(manager.SourceExhausted(0));
}

TEST(FaultComm, DeliveryAfterSuspicionRecovers) {
  CommConfig config;
  config.failure_detection = true;
  CommManager manager(config);
  const Relation rel = MakeRelation(100);
  auto w = std::make_unique<SimWrapper>(0, &rel, ConstantDelay(10.0), 1);
  FaultSchedule schedule;
  schedule.events = {StallAt(5, Milliseconds(100))};
  w->SetFaultSchedule(schedule, 5);
  manager.AddSource(std::move(w), /*prior=*/10000.0);
  Tuple out[16];
  EXPECT_EQ(manager.Pop(0, Microseconds(100), out, 16), 5);
  manager.UpdateFaultState(Microseconds(50) + Milliseconds(60));
  EXPECT_TRUE(manager.SourceSuspected(0));
  // The stalled tuple arrives at 60 us + 100 ms; popping past that point
  // delivers it and flips the source back to healthy.
  EXPECT_GT(manager.Pop(0, Milliseconds(101), out, 16), 0);
  EXPECT_FALSE(manager.SourceSuspected(0));
  EXPECT_EQ(manager.fault_recoveries(), 1);
  FaultSignal sig;
  ASSERT_TRUE(manager.TakeFaultSignal(&sig));
  EXPECT_EQ(sig.kind, FaultSignal::Kind::kDown);
  ASSERT_TRUE(manager.TakeFaultSignal(&sig));
  EXPECT_EQ(sig.kind, FaultSignal::Kind::kRecovered);
}

// ------------------------------------------------------------- end to end

MediatorConfig BaseConfig() {
  MediatorConfig config;
  config.memory_budget_bytes = 64LL * 1024 * 1024;
  config.seed = 7;
  return config;
}

Mediator MakeMediator(plan::QuerySetup setup, MediatorConfig config) {
  Result<Mediator> m = Mediator::Create(std::move(setup.catalog),
                                        std::move(setup.plan),
                                        std::move(config));
  EXPECT_TRUE(m.ok()) << m.status().ToString();
  return std::move(m.value());
}

TEST(FaultEndToEnd, FaultFreeRunReportsNoFaultStats) {
  Mediator m = MakeMediator(plan::TinyTwoSourceQuery(), BaseConfig());
  Result<ExecutionMetrics> r = m.Execute(StrategyKind::kDse);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->fault.any());
}

TEST(FaultEndToEnd, DormantScheduleIsBenign) {
  // A schedule whose only event sits past the relation's cardinality arms
  // the detector but never fires; the run completes exactly and clean.
  plan::QuerySetup setup = plan::TinyTwoSourceQuery();
  const int64_t card = setup.catalog.sources[0].relation.cardinality;
  setup.catalog.sources[0].faults.events = {StallAt(card, Milliseconds(1))};
  Mediator m = MakeMediator(std::move(setup), BaseConfig());
  for (StrategyKind kind :
       {StrategyKind::kSeq, StrategyKind::kDse, StrategyKind::kMa}) {
    Result<ExecutionMetrics> r = m.Execute(kind);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_FALSE(r->fault.any()) << core::StrategyName(kind);
  }
}

TEST(FaultEndToEnd, DisconnectReplayVerifiesAgainstReference) {
  plan::QuerySetup setup = plan::TinyTwoSourceQuery();
  // 5 + 10 ms outage: below the 50 ms suspicion floor — pure dedup path.
  setup.catalog.sources[0].faults.events = {
      DisconnectAt(500, true, 1, Milliseconds(5), 0.25)};
  Mediator m = MakeMediator(std::move(setup), BaseConfig());
  for (StrategyKind kind :
       {StrategyKind::kSeq, StrategyKind::kDse, StrategyKind::kMa}) {
    // Execute() verifies count and checksum against the oracle.
    Result<ExecutionMetrics> r = m.Execute(kind);
    ASSERT_TRUE(r.ok()) << core::StrategyName(kind) << ": "
                        << r.status().ToString();
    EXPECT_EQ(r->fault.disconnects_injected, 1) << core::StrategyName(kind);
    EXPECT_EQ(r->fault.reconnects, 1) << core::StrategyName(kind);
    EXPECT_EQ(r->fault.replays_discarded, 500) << core::StrategyName(kind);
    EXPECT_FALSE(r->fault.partial_result) << core::StrategyName(kind);
  }
}

TEST(FaultEndToEnd, TransientStallSuspectsThenRecovers) {
  plan::QuerySetup setup = plan::TinyTwoSourceQuery();
  // 100 ms of silence: over the 50 ms suspicion floor, under the 500 ms
  // death floor — the source must come back recovered, the query exact.
  setup.catalog.sources[0].faults.events = {StallAt(500, Milliseconds(100))};
  Mediator m = MakeMediator(std::move(setup), BaseConfig());
  for (StrategyKind kind : {StrategyKind::kSeq, StrategyKind::kDse}) {
    Result<ExecutionMetrics> r = m.Execute(kind);
    ASSERT_TRUE(r.ok()) << core::StrategyName(kind) << ": "
                        << r.status().ToString();
    EXPECT_EQ(r->fault.stalls_injected, 1) << core::StrategyName(kind);
    EXPECT_GE(r->fault.sources_suspected, 1) << core::StrategyName(kind);
    EXPECT_GE(r->fault.recoveries, 1) << core::StrategyName(kind);
    EXPECT_EQ(r->fault.sources_dead, 0) << core::StrategyName(kind);
    EXPECT_GE(r->fault.source_down_events, 1) << core::StrategyName(kind);
    EXPECT_GE(r->fault.source_recovered_events, 1)
        << core::StrategyName(kind);
    EXPECT_FALSE(r->fault.partial_result) << core::StrategyName(kind);
  }
}

TEST(FaultEndToEnd, DeathIsUnavailableUnderStrictPolicy) {
  plan::QuerySetup setup = plan::TinyTwoSourceQuery();
  setup.catalog.sources[0].faults.events = {DeathAt(500)};
  Mediator m = MakeMediator(std::move(setup), BaseConfig());
  for (StrategyKind kind :
       {StrategyKind::kSeq, StrategyKind::kDse, StrategyKind::kMa}) {
    Result<ExecutionMetrics> r = m.Execute(kind);
    ASSERT_FALSE(r.ok()) << core::StrategyName(kind);
    EXPECT_EQ(r.status().code(), StatusCode::kUnavailable)
        << core::StrategyName(kind) << ": " << r.status().ToString();
  }
}

TEST(FaultEndToEnd, DeathYieldsPartialResultUnderDse) {
  plan::QuerySetup setup = plan::TinyTwoSourceQuery();
  setup.catalog.sources[0].faults.events = {DeathAt(500)};
  MediatorConfig config = BaseConfig();
  config.strategy.fault.partial_results = true;
  Mediator m = MakeMediator(std::move(setup), config);
  Result<ExecutionMetrics> r = m.Execute(StrategyKind::kDse);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->fault.sources_killed, 1);
  EXPECT_EQ(r->fault.sources_dead, 1);
  EXPECT_EQ(r->fault.sources_abandoned, 1);
  EXPECT_TRUE(r->fault.partial_result);
  EXPECT_GT(r->result_count, 0);
  EXPECT_LT(r->result_count, m.reference().result_card);

  // SEQ and MA are all-or-nothing: the policy does not apply to them.
  Result<ExecutionMetrics> seq = m.Execute(StrategyKind::kSeq);
  ASSERT_FALSE(seq.ok());
  EXPECT_EQ(seq.status().code(), StatusCode::kUnavailable);
}

TEST(FaultEndToEnd, PartialResultRunsAreDeterministic) {
  plan::QuerySetup setup = plan::TinyTwoSourceQuery();
  setup.catalog.sources[0].faults.events = {DeathAt(500)};
  MediatorConfig config = BaseConfig();
  config.strategy.fault.partial_results = true;
  Mediator m = MakeMediator(std::move(setup), config);
  Result<ExecutionMetrics> a = m.Execute(StrategyKind::kDse);
  Result<ExecutionMetrics> b = m.Execute(StrategyKind::kDse);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->response_time, b->response_time);
  EXPECT_EQ(a->result_count, b->result_count);
  EXPECT_EQ(a->result_checksum, b->result_checksum);
  EXPECT_EQ(a->fault.sources_dead, b->fault.sources_dead);
  EXPECT_EQ(a->fault.replays_discarded, b->fault.replays_discarded);
  EXPECT_EQ(a->fault.source_down_events, b->fault.source_down_events);
}

TEST(FaultDeadline, StrictPolicyAborts) {
  plan::QuerySetup setup = plan::TinyTwoSourceQuery();
  MediatorConfig config = BaseConfig();
  config.query_deadline = Milliseconds(10);  // well under the ~80 ms run
  Mediator m = MakeMediator(std::move(setup), config);
  for (StrategyKind kind :
       {StrategyKind::kSeq, StrategyKind::kDse, StrategyKind::kMa}) {
    Result<ExecutionMetrics> r = m.Execute(kind);
    ASSERT_FALSE(r.ok()) << core::StrategyName(kind);
    EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
        << core::StrategyName(kind) << ": " << r.status().ToString();
  }
}

TEST(FaultDeadline, PartialPolicyReturnsWhatArrived) {
  plan::QuerySetup setup = plan::TinyTwoSourceQuery();
  MediatorConfig config = BaseConfig();
  config.query_deadline = Milliseconds(10);
  config.strategy.fault.partial_results = true;
  Mediator m = MakeMediator(std::move(setup), config);
  Result<ExecutionMetrics> r = m.Execute(StrategyKind::kDse);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->fault.deadline_hit);
  EXPECT_TRUE(r->fault.partial_result);
  EXPECT_GE(r->response_time, Milliseconds(10));
  EXPECT_LE(r->result_count, m.reference().result_card);
}

TEST(FaultDeadline, RejectsNegativeBudget) {
  plan::QuerySetup setup = plan::TinyTwoSourceQuery();
  MediatorConfig config = BaseConfig();
  config.query_deadline = -1;
  Result<Mediator> m = Mediator::Create(std::move(setup.catalog),
                                        std::move(setup.plan),
                                        std::move(config));
  EXPECT_FALSE(m.ok());
}

// The acceptance scenario: the paper's Figure 6 workload with the slowed
// relation A dying mid-stream. SEQ has no answer; DSE under the
// partial-result policy degrades gracefully.
TEST(FaultFig6, SlowSourceDeathSeqAbortsDseDegrades) {
  plan::QuerySetup setup = plan::PaperFigure5Query(/*scale=*/0.05);
  const SourceId a = setup.catalog.Find("A");
  ASSERT_NE(a, kInvalidId);
  setup.catalog.sources[static_cast<size_t>(a)].delay.mean_us = 200.0;
  setup.catalog.sources[static_cast<size_t>(a)].faults.events = {
      DeathAt(1000)};

  MediatorConfig strict = BaseConfig();
  Mediator m_strict = MakeMediator(setup, strict);
  Result<ExecutionMetrics> seq = m_strict.Execute(StrategyKind::kSeq);
  ASSERT_FALSE(seq.ok());
  EXPECT_EQ(seq.status().code(), StatusCode::kUnavailable);

  MediatorConfig partial = BaseConfig();
  partial.strategy.fault.partial_results = true;
  Mediator m_partial = MakeMediator(std::move(setup), partial);
  Result<ExecutionMetrics> dse = m_partial.Execute(StrategyKind::kDse);
  ASSERT_TRUE(dse.ok()) << dse.status().ToString();
  EXPECT_EQ(dse->fault.sources_dead, 1);
  EXPECT_EQ(dse->fault.sources_abandoned, 1);
  EXPECT_TRUE(dse->fault.partial_result);
  EXPECT_GT(dse->result_count, 0);
  EXPECT_LT(dse->result_count, m_partial.reference().result_card);
}

TEST(FaultFig6, PartialDegradationIsSeedStable) {
  for (uint64_t seed : {1ULL, 7ULL, 1337ULL}) {
    plan::QuerySetup setup = plan::PaperFigure5Query(/*scale=*/0.05);
    const SourceId a = setup.catalog.Find("A");
    setup.catalog.sources[static_cast<size_t>(a)].delay.mean_us = 200.0;
    setup.catalog.sources[static_cast<size_t>(a)].faults.events = {
        DeathAt(1000)};
    MediatorConfig config = BaseConfig();
    config.seed = seed;
    config.strategy.fault.partial_results = true;
    Mediator m = MakeMediator(std::move(setup), config);
    Result<ExecutionMetrics> r = m.Execute(StrategyKind::kDse);
    ASSERT_TRUE(r.ok()) << "seed " << seed << ": " << r.status().ToString();
    EXPECT_EQ(r->fault.sources_dead, 1) << "seed " << seed;
    EXPECT_TRUE(r->fault.partial_result) << "seed " << seed;
  }
}

}  // namespace
}  // namespace dqsched
