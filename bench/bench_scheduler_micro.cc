// Micro-benchmarks (google-benchmark) of the dynamic machinery's host-side
// cost. Paper Section 3.3: "the challenge is to produce a reasonable
// schedule in a short time interval compared to the average processing
// time of one execution phase" — BM_ComputePlan quantifies that interval
// for growing plan sizes; the hash-index benchmarks cover the hot probe
// path every tuple takes.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <memory>

#include "core/dqo.h"
#include "core/dqs.h"
#include "core/mediator.h"
#include "exec/hash_index.h"
#include "common/parallel_runner.h"
#include "plan/canonical_plans.h"
#include "plan/query_generator.h"
#include "wrapper/wrapper.h"

namespace dqsched {
namespace {

/// --jobs=N (parsed before google-benchmark sees argv): thread count for
/// BM_ParallelMediators, the scaling check of the bench-suite runner.
int g_jobs = 0;  // 0 = hardware concurrency

/// Fixture state for a random query of `num_sources` relations.
struct PlanningFixture {
  explicit PlanningFixture(int num_sources) {
    plan::GeneratorConfig gen;
    gen.num_sources = num_sources;
    gen.min_cardinality = 1000;
    gen.max_cardinality = 2000;
    gen.seed = static_cast<uint64_t>(num_sources);
    auto generated = plan::GenerateBushyQuery(gen, /*use_optimizer=*/false);
    DQS_CHECK(generated.ok());
    setup = std::move(generated.value());
    auto c = plan::Compile(setup.plan, setup.catalog);
    DQS_CHECK(c.ok());
    compiled = std::move(c.value());
    DQS_CHECK(plan::Annotate(&compiled, setup.catalog, cost).ok());
    ctx = std::make_unique<exec::ExecContext>(&cost, comm::CommConfig{},
                                              int64_t{1} << 30);
    data.reserve(static_cast<size_t>(setup.catalog.num_sources()));
    for (SourceId s = 0; s < setup.catalog.num_sources(); ++s) {
      data.push_back(storage::GenerateRelation(
          setup.catalog.source(s).relation, s, Rng(s + 1)));
      ctx->comm.AddSource(std::make_unique<wrapper::SimWrapper>(
                              s, &data.back(),
                              setup.catalog.source(s).delay, s + 3),
                          static_cast<double>(cost.MinWaitingTime()));
    }
  }

  sim::CostModel cost;
  plan::QuerySetup setup;
  plan::CompiledPlan compiled;
  std::vector<storage::Relation> data;
  std::unique_ptr<exec::ExecContext> ctx;
};

void BM_ComputePlan(benchmark::State& state) {
  PlanningFixture fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    // A fresh ExecutionState per iteration: the first (most expensive)
    // planning phase, including degradation decisions over every chain.
    state.PauseTiming();
    core::ExecutionState exec_state(&fixture.compiled, fixture.ctx.get(),
                                    core::ExecutionOptions{});
    core::Dqs dqs(core::DqsConfig{});
    core::Dqo dqo;
    state.ResumeTiming();
    auto sp = dqs.ComputePlan(exec_state, *fixture.ctx, dqo);
    benchmark::DoNotOptimize(sp);
  }
  state.SetLabel(std::to_string(fixture.compiled.num_chains()) + " chains");
}
BENCHMARK(BM_ComputePlan)
    ->Arg(3)
    ->Arg(6)
    ->Arg(12)
    ->Arg(24)
    ->Arg(48)
    ->Arg(96)
    ->Arg(192);

void BM_HashIndexBuild(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<storage::Tuple> tuples(static_cast<size_t>(n));
  Rng rng(7);
  for (auto& t : tuples) {
    t.keys[0] = static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(n)));
  }
  for (auto _ : state) {
    exec::HashIndex index;
    index.Build(tuples, 0);
    benchmark::DoNotOptimize(index);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HashIndexBuild)->Arg(1000)->Arg(100000);

void BM_HashIndexProbe(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<storage::Tuple> tuples(static_cast<size_t>(n));
  Rng rng(7);
  for (auto& t : tuples) {
    t.keys[0] = static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(n)));
  }
  exec::HashIndex index;
  index.Build(tuples, 0);
  int64_t probe_key = 0;
  size_t sink = 0;
  for (auto _ : state) {
    index.ForEachMatch(probe_key, [&](size_t i) { sink += i; });
    probe_key = (probe_key + 1) % n;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashIndexProbe)->Arg(1000)->Arg(100000);

/// End-to-end execution of the paper's Figure 5 query at toy scale: the
/// simulator's data plane (ProcessBatch's batch pipeline) dominates, so
/// this tracks the per-simulated-second host cost across PRs.
void BM_ExecuteStrategy(benchmark::State& state,
                        core::StrategyKind kind) {
  plan::QuerySetup setup = plan::PaperFigure5Query(0.05);
  core::MediatorConfig config;
  Result<core::Mediator> mediator =
      core::Mediator::Create(setup.catalog, setup.plan, config);
  DQS_CHECK(mediator.ok());
  for (auto _ : state) {
    auto metrics = mediator->Execute(kind);
    DQS_CHECK(metrics.ok());
    benchmark::DoNotOptimize(metrics);
  }
}
BENCHMARK_CAPTURE(BM_ExecuteStrategy, SEQ, core::StrategyKind::kSeq);
BENCHMARK_CAPTURE(BM_ExecuteStrategy, DSE, core::StrategyKind::kDse);

/// One iteration = `--jobs` independent mediator executions spread over
/// the work-stealing runner; items/sec should scale with cores under the
/// one-Mediator-per-thread contract.
void BM_ParallelMediators(benchmark::State& state) {
  const ParallelRunner runner(g_jobs);
  const int n = runner.jobs();
  plan::QuerySetup setup = plan::PaperFigure5Query(0.05);
  core::MediatorConfig config;
  std::vector<core::Mediator> mediators;
  for (int i = 0; i < n; ++i) {
    config.seed = 42 + static_cast<uint64_t>(i);
    auto m = core::Mediator::Create(setup.catalog, setup.plan, config);
    DQS_CHECK(m.ok());
    mediators.push_back(std::move(m.value()));
  }
  for (auto _ : state) {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(mediators.size());
    for (core::Mediator& m : mediators) {
      tasks.push_back([&m] {
        auto metrics = m.Execute(core::StrategyKind::kDse);
        DQS_CHECK(metrics.ok());
        benchmark::DoNotOptimize(metrics);
      });
    }
    runner.Run(tasks);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(std::to_string(n) + " jobs");
}
BENCHMARK(BM_ParallelMediators)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dqsched

int main(int argc, char** argv) {
  // Strip --jobs=N (bench-suite-wide flag) before google-benchmark's own
  // argv parsing, which rejects flags it does not know.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      dqsched::g_jobs = std::atoi(argv[i] + 7);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
