// Reproduces paper Table 1: the simulation parameters actually used by
// this build, plus the derived quantities the paper's analysis rests on
// (w_min ~ 20 us, the per-tuple materialization cost IO_p, and the bmi at
// full delivery speed).

#include <cstdio>

#include "bench_common.h"
#include "common/table_printer.h"
#include "sim/cost_model.h"

int main(int argc, char** argv) {
  using namespace dqsched;
  const auto options = bench::ParseOptions(argc, argv);
  bench::PrintPreamble("Simulation parameters",
                       "Table 1 (simulation parameters)", options);
  const sim::CostModel cm;

  TablePrinter table({"Parameter", "Value"});
  table.AddRow({"CPU Speed", TablePrinter::Num(cm.cpu_mips, 0) + " Mips"});
  table.AddRow({"Disk Latency - Seek Time - Transfer Rate",
                TablePrinter::Num(cm.disk_latency_ms, 0) + " ms - " +
                    TablePrinter::Num(cm.disk_seek_ms, 0) + " ms - " +
                    TablePrinter::Num(cm.disk_transfer_mb_s, 0) + " MB/s"});
  table.AddRow({"I/O Cache Size", std::to_string(cm.io_cache_pages) +
                                      " pages"});
  table.AddRow({"Perform an I/O", std::to_string(cm.instr_per_io) +
                                      " Instr."});
  table.AddRow({"Number of Local Disks", std::to_string(cm.num_disks)});
  table.AddRow({"Tuple Size - Page Size",
                std::to_string(cm.tuple_size_bytes) + " bytes - " +
                    std::to_string(cm.page_size_bytes / 1024) + " Kb"});
  table.AddRow({"Move a Tuple", std::to_string(cm.instr_move_tuple) +
                                    " Instr."});
  table.AddRow({"Search for Match in Hash Table",
                std::to_string(cm.instr_hash_probe) + " Instr."});
  table.AddRow({"Produce a Result Tuple",
                std::to_string(cm.instr_produce_result) + " Instr."});
  table.AddRow({"Network Bandwidth",
                TablePrinter::Num(cm.network_mb_s, 0) + " Mbs"});
  table.AddRow({"Send/Receive a Message",
                std::to_string(cm.instr_per_message) + " Instr."});
  if (options.csv) {
    table.PrintCsv(stdout);
  } else {
    table.Print(stdout);
  }

  std::printf("\nDerived quantities:\n");
  std::printf("  tuples per page / message : %d / %d\n", cm.TuplesPerPage(),
              cm.tuples_per_message);
  std::printf("  w_min (Section 5.1.3)     : %s (paper: ~20 us)\n",
              FormatDuration(cm.MinWaitingTime()).c_str());
  std::printf("  IO_p per tuple (mat cost) : %s\n",
              FormatDuration(cm.TupleIoTime()).c_str());
  std::printf("  receive CPU per tuple     : %s\n",
              FormatDuration(cm.ReceiveTupleCpuTime()).c_str());
  std::printf("  bmi at w_min              : %.2f (degradation profitable "
              "when > bmt = 1)\n",
              static_cast<double>(cm.MinWaitingTime()) /
                  (2.0 * static_cast<double>(cm.TupleIoTime())));
  return 0;
}
