// Reproduces paper Figure 7: the same slowdown sweep applied to relation
// F. F blocks far less downstream work than A, so DSE absorbs its delays
// better (paper Section 5.2's comparison of the two figures).

#include "bench_common.h"

int main(int argc, char** argv) {
  const auto options = dqsched::bench::ParseOptions(argc, argv);
  dqsched::bench::RunSlowOneRelationBench(
      "F", "Figure 7 (one slowed-down relation experiments, F)", options);
  return 0;
}
