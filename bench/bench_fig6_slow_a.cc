// Reproduces paper Figure 6: response time of SEQ / DSE / MA (plus the
// analytic LWB) while relation A — which gates half the plan — is
// increasingly slowed down.

#include "bench_common.h"

int main(int argc, char** argv) {
  const auto options = dqsched::bench::ParseOptions(argc, argv);
  dqsched::bench::RunSlowOneRelationBench(
      "A", "Figure 6 (one slowed-down relation experiments, A)", options);
  return 0;
}
