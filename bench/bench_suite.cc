// Runs the full paper-artifact grid (Figs 6-8, the Section 5.2 position
// sweep, the delay/scrambling/DPHJ comparisons, the ablations and the
// multi-query outlook) as one flat set of independent cells on the
// work-stealing parallel runner, and writes BENCH_suite.json — per-cell
// wall-clock and simulated seconds — so the perf trajectory of the engine
// is tracked across PRs. Simulated results are byte-identical for every
// --jobs value; only the wall-clock changes.
//
//   bench_suite [--scale=F] [--repeats=N] [--seed=N] [--jobs=N]
//               [--out=PATH] [--cache=off|cold]
//
// Each experiment keeps the default scale of its standalone binary;
// --scale multiplies all of them (e.g. --scale=0.05 is the tier-1 smoke
// grid).
//
// --cache picks the result-cache mode for the multi-query and fleet
// cells (single-query cells use per-run caches and are inherently
// cold). "cold" (the default) enables the cache on fresh executors, so
// every tracked cell is byte-identical to "off" on all non-wall fields
// — the CI perf-smoke step diffs exactly that. Cold mode additionally
// runs two warm-cache cells (experiment "cache_warm", a repeated
// multi-query mix and a repeated fleet stream) that are skipped under
// --cache=off; diff tooling must exclude that experiment.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "core/fleet_executor.h"
#include "core/multi_query.h"
#include "common/parallel_runner.h"

namespace dqsched::bench {
namespace {

struct SuiteCell {
  std::string experiment;
  std::string label;
  std::function<StrategyOutcome()> run;
};

struct SuiteResult {
  StrategyOutcome outcome;
  double wall_seconds = 0.0;
};

const char* KindLabel(core::StrategyKind kind) {
  return core::StrategyName(kind);
}

void AddStrategyCells(std::vector<SuiteCell>* cells,
                      const std::string& experiment,
                      const std::string& label,
                      const plan::QuerySetup& setup,
                      const core::MediatorConfig& config,
                      std::initializer_list<core::StrategyKind> kinds,
                      int repeats) {
  for (core::StrategyKind kind : kinds) {
    cells->push_back(
        {experiment, label + "/" + KindLabel(kind),
         [setup, config, kind, repeats] {
           return MeasureStrategy(setup, config, kind, repeats);
         }});
  }
}

/// Figures 6 and 7: one slowed-down relation, retrieval-time sweep.
void AddSlowRelationSweep(std::vector<SuiteCell>* cells,
                          const std::string& experiment,
                          const char* relation, double scale,
                          const core::MediatorConfig& config, int repeats) {
  plan::QuerySetup base = plan::PaperFigure5Query(scale);
  const SourceId slowed = base.catalog.Find(relation);
  const int64_t n = base.catalog.source(slowed).relation.cardinality;
  const double base_total_s =
      static_cast<double>(n) * base.catalog.source(slowed).delay.mean_us /
      1e6;
  std::vector<double> targets_s = {base_total_s};
  for (double t = 2.0; t <= 10.01; t += 2.0) {
    const double scaled = t * scale;
    if (scaled > base_total_s * 1.01) targets_s.push_back(scaled);
  }
  for (double target : targets_s) {
    plan::QuerySetup setup = base;
    setup.catalog.source(slowed).delay.mean_us =
        target * 1e6 / static_cast<double>(n);
    char label[64];
    std::snprintf(label, sizeof(label), "retrieval=%.2fs", target);
    AddStrategyCells(cells, experiment, label, setup, config,
                     {core::StrategyKind::kSeq, core::StrategyKind::kDse,
                      core::StrategyKind::kMa},
                     repeats);
  }
}

std::vector<SuiteCell> BuildSuite(const BenchOptions& options,
                                  bool cache_enabled) {
  std::vector<SuiteCell> cells;
  const core::MediatorConfig config = DefaultConfig(options);
  const int repeats = options.repeats;

  // Figures 6 and 7 (scale x1).
  AddSlowRelationSweep(&cells, "fig6_slow_a", "A", options.scale, config,
                       repeats);
  AddSlowRelationSweep(&cells, "fig7_slow_f", "F", options.scale, config,
                       repeats);

  // Figure 8: w_min sweep over every wrapper (scale x1).
  for (double w : {5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0, 50.0,
                   60.0, 80.0, 100.0, 120.0}) {
    plan::QuerySetup setup = plan::PaperFigure5Query(options.scale, w);
    char label[32];
    std::snprintf(label, sizeof(label), "w_min=%.0fus", w);
    AddStrategyCells(&cells, "fig8_wmin_sweep", label, setup, config,
                     {core::StrategyKind::kSeq, core::StrategyKind::kDse},
                     repeats);
  }

  // Section 5.2 text: slow each relation in turn (scale x1).
  for (const char* name : {"A", "B", "C", "D", "E", "F"}) {
    plan::QuerySetup setup = plan::PaperFigure5Query(options.scale);
    setup.catalog.source(setup.catalog.Find(name)).delay.mean_us *= 5.0;
    AddStrategyCells(&cells, "slow_each_relation",
                     std::string("slowed=") + name, setup, config,
                     {core::StrategyKind::kSeq, core::StrategyKind::kDse,
                      core::StrategyKind::kMa},
                     repeats);
  }

  // Delay-type comparison (binary default scale 0.5).
  {
    const double scale = 0.5 * options.scale;
    struct Case {
      const char* label;
      wrapper::DelayConfig delay;
    };
    std::vector<Case> cases;
    cases.push_back({"baseline", {}});
    {
      Case c{"initial", {}};
      c.delay.kind = wrapper::DelayKind::kInitial;
      c.delay.initial_delay_ms = 2000.0 * scale;
      cases.push_back(c);
    }
    {
      Case c{"bursty", {}};
      c.delay.kind = wrapper::DelayKind::kBursty;
      c.delay.burst_length = 2000;
      c.delay.burst_gap_ms = 100.0;
      cases.push_back(c);
    }
    {
      Case c{"slow", {}};
      c.delay.kind = wrapper::DelayKind::kSlow;
      c.delay.slow_factor = 4.0;
      cases.push_back(c);
    }
    for (const Case& c : cases) {
      plan::QuerySetup setup = plan::PaperFigure5Query(scale);
      setup.catalog.sources[0].delay = c.delay;
      AddStrategyCells(&cells, "delay_types", c.label, setup, config,
                       {core::StrategyKind::kSeq, core::StrategyKind::kDse,
                        core::StrategyKind::kMa},
                       repeats);
    }
  }

  // Ablations (binary default scale 0.5).
  {
    const double scale = 0.5 * options.scale;
    plan::QuerySetup slowed_a = plan::PaperFigure5Query(scale);
    slowed_a.catalog.sources[0].delay.mean_us *= 3.0;
    for (int64_t batch : {16, 64, 128, 512, 2048, 8192}) {
      core::MediatorConfig c = config;
      c.strategy.dqp.batch_size = batch;
      AddStrategyCells(&cells, "ablation_batch",
                       "batch=" + std::to_string(batch), slowed_a, c,
                       {core::StrategyKind::kDse}, repeats);
    }
    for (double bmt : {0.1, 0.5, 1.0, 1.5, 2.0, 5.0, 1e9}) {
      core::MediatorConfig c = config;
      c.strategy.dqs.bmt = bmt;
      char label[32];
      std::snprintf(label, sizeof(label), "bmt=%g", bmt);
      AddStrategyCells(&cells, "ablation_bmt", label, slowed_a, c,
                       {core::StrategyKind::kDse}, repeats);
    }
    plan::QuerySetup plain = plan::PaperFigure5Query(scale);
    for (int64_t capacity : {64, 256, 1024, 4096, 16384}) {
      core::MediatorConfig c = config;
      c.comm.queue_capacity = capacity;
      AddStrategyCells(&cells, "ablation_queue",
                       "capacity=" + std::to_string(capacity), plain, c,
                       {core::StrategyKind::kSeq, core::StrategyKind::kDse},
                       repeats);
    }
  }

  // Memory-limitation sweep (binary default scale 0.3). Infeasible budgets
  // report FAIL cells by design; they are still tracked.
  {
    plan::QuerySetup setup = plan::PaperFigure5Query(0.3 * options.scale);
    for (double mb : {1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 16.0, 32.0, 64.0}) {
      core::MediatorConfig c = config;
      c.memory_budget_bytes = static_cast<int64_t>(mb * 1024 * 1024);
      char label[32];
      std::snprintf(label, sizeof(label), "memory=%.0fMB", mb);
      AddStrategyCells(&cells, "memory_limit", label, setup, c,
                       {core::StrategyKind::kDse}, repeats);
    }
  }

  // Scrambling comparison + timeout sensitivity (scale 0.3).
  {
    const double scale = 0.3 * options.scale;
    struct Case {
      const char* label;
      wrapper::DelayConfig delay;
    };
    std::vector<Case> cases;
    {
      Case c{"initial", {}};
      c.delay.kind = wrapper::DelayKind::kInitial;
      c.delay.initial_delay_ms = 2000.0;
      cases.push_back(c);
    }
    {
      Case c{"bursty", {}};
      c.delay.kind = wrapper::DelayKind::kBursty;
      c.delay.burst_length = 1000;
      c.delay.burst_gap_ms = 200.0;
      cases.push_back(c);
    }
    {
      Case c{"slow", {}};
      c.delay.kind = wrapper::DelayKind::kSlow;
      c.delay.slow_factor = 6.0;
      cases.push_back(c);
    }
    for (const Case& c : cases) {
      plan::QuerySetup setup = plan::PaperFigure5Query(scale);
      setup.catalog.sources[0].delay = c.delay;
      AddStrategyCells(&cells, "scrambling", c.label, setup, config,
                       {core::StrategyKind::kSeq, core::StrategyKind::kDse},
                       repeats);
      cells.push_back({"scrambling", std::string(c.label) + "/SCR",
                       [setup, config, repeats] {
                         return MeasureScrambling(setup, config,
                                                  Milliseconds(20), repeats);
                       }});
    }
    plan::QuerySetup bursty = plan::PaperFigure5Query(scale);
    bursty.catalog.sources[0].delay.kind = wrapper::DelayKind::kBursty;
    bursty.catalog.sources[0].delay.burst_length = 500;
    bursty.catalog.sources[0].delay.burst_gap_ms = 120.0;
    for (double ms : {1.0, 5.0, 20.0, 60.0, 150.0, 1000.0}) {
      char label[40];
      std::snprintf(label, sizeof(label), "timeout=%.0fms/SCR", ms);
      cells.push_back({"scrambling_timeout", label,
                       [bursty, config, ms, repeats] {
                         return MeasureScrambling(bursty, config,
                                                  Milliseconds(ms), repeats);
                       }});
    }
  }

  // Operator-level vs scheduling-level adaptation (scale 0.3).
  {
    const double scale = 0.3 * options.scale;
    struct Case {
      const char* label;
      wrapper::DelayKind kind;
      double param;
    };
    const Case cases[] = {
        {"baseline", wrapper::DelayKind::kUniform, 0},
        {"initial", wrapper::DelayKind::kInitial, 2000.0},
        {"bursty", wrapper::DelayKind::kBursty, 50.0},
        {"slow", wrapper::DelayKind::kSlow, 4.0},
    };
    for (const Case& c : cases) {
      plan::QuerySetup setup = plan::PaperFigure5Query(scale);
      wrapper::DelayConfig& delay = setup.catalog.sources[0].delay;
      delay.kind = c.kind;
      delay.initial_delay_ms = c.param;
      delay.burst_length = 1000;
      delay.burst_gap_ms = c.param;
      delay.slow_factor = c.kind == wrapper::DelayKind::kSlow ? c.param : 1.0;
      AddStrategyCells(&cells, "operator_vs_scheduling", c.label, setup,
                       config,
                       {core::StrategyKind::kSeq, core::StrategyKind::kDse},
                       repeats);
      cells.push_back({"operator_vs_scheduling",
                       std::string(c.label) + "/DPHJ",
                       [setup, config, repeats] {
                         return MeasureDphj(setup, config, repeats);
                       }});
    }
  }

  // Multi-query outlook (binary default scale 0.1); the makespan is the
  // tracked "simulated seconds". Small mixes cover both interleavings;
  // the larger ones are shared-only, guarding the scheduler's large-mix
  // event loop (done-query skipping, arrival heap, incremental replans).
  {
    const double scale = 0.1 * options.scale;
    struct MixAxis {
      int n;
      core::MultiMode mode;
    };
    std::vector<MixAxis> axes;
    for (int n : {2, 4}) {
      axes.push_back({n, core::MultiMode::kSerial});
      axes.push_back({n, core::MultiMode::kShared});
    }
    for (int n : {8, 16}) {
      axes.push_back({n, core::MultiMode::kShared});
    }
    for (const MixAxis& axis : axes) {
      const int n = axis.n;
      const core::MultiMode mode = axis.mode;
      for (core::StrategyKind kind :
             {core::StrategyKind::kSeq, core::StrategyKind::kDse}) {
          const std::string label = "n=" + std::to_string(n) + "/" +
                                    core::MultiModeName(mode) + "/" +
                                    KindLabel(kind);
          const uint64_t seed = options.seed;
          cells.push_back({"multi_query", label,
                           [scale, n, mode, kind, seed, cache_enabled] {
                             StrategyOutcome outcome;
                             std::vector<plan::QuerySetup> mix;
                             for (int i = 0; i < n; ++i) {
                               mix.push_back(plan::PaperFigure5Query(scale));
                             }
                             core::MultiQueryConfig mq;
                             mq.seed = seed;
                             mq.cache.enabled = cache_enabled;
                             auto mediator = core::MultiQueryMediator::Create(
                                 std::move(mix), mq);
                             if (!mediator.ok()) {
                               outcome.error =
                                   mediator.status().ToString();
                               return outcome;
                             }
                             auto r = mediator->Execute(kind, mode);
                             if (!r.ok()) {
                               outcome.error = r.status().ToString();
                               return outcome;
                             }
                             outcome.ok = true;
                             outcome.seconds = ToSecondsF(r->makespan);
                             return outcome;
                           }});
      }
    }
  }

  // Sharded fleet (bench_fleet's open-loop stream at reduced scale); the
  // tracked "simulated seconds" is the fleet makespan. Each cell runs its
  // fleet on one host thread — the suite's own runner provides the
  // cross-cell parallelism, and fleet results are jobs-invariant anyway.
  {
    const double scale = 0.1 * options.scale;
    struct FleetAxis {
      int shards;
      int n;
    };
    for (const FleetAxis axis : {FleetAxis{4, 12}, FleetAxis{8, 24}}) {
      for (core::StrategyKind kind :
           {core::StrategyKind::kSeq, core::StrategyKind::kDse}) {
        const std::string label = "shards=" + std::to_string(axis.shards) +
                                  "/n=" + std::to_string(axis.n) + "/" +
                                  KindLabel(kind);
        const uint64_t seed = options.seed;
        cells.push_back({"fleet", label,
                         [scale, axis, kind, seed, cache_enabled] {
                           StrategyOutcome outcome;
                           std::vector<plan::QuerySetup> templates;
                           templates.push_back(
                               plan::PaperFigure5Query(0.25 * scale));
                           plan::QuerySetup slow =
                               plan::PaperFigure5Query(0.25 * scale);
                           slow.catalog.source(slow.catalog.Find("A"))
                               .delay.mean_us *= 3.0;
                           templates.push_back(std::move(slow));
                           Rng stream(seed ^ 0xF1EE7ULL);
                           std::vector<core::FleetQuerySpec> workload;
                           SimTime at = 0;
                           for (int i = 0; i < axis.n; ++i) {
                             at += Seconds(
                                 stream.Exponential(0.05 * scale));
                             core::FleetQuerySpec spec;
                             spec.arrival = at;
                             const bool interactive =
                                 stream.NextDouble() < 0.6;
                             spec.template_idx = interactive ? 0 : 1;
                             spec.fairness =
                                 interactive
                                     ? core::FairnessClass::kInteractive
                                     : core::FairnessClass::kBatch;
                             workload.push_back(spec);
                           }
                           core::FleetConfig fc;
                           fc.seed = seed;
                           fc.num_shards = axis.shards;
                           fc.cache.enabled = cache_enabled;
                           auto fleet = core::FleetExecutor::Create(
                               std::move(templates), std::move(workload), fc);
                           if (!fleet.ok()) {
                             outcome.error = fleet.status().ToString();
                             return outcome;
                           }
                           auto r = fleet->Execute(kind, /*jobs=*/1);
                           if (!r.ok()) {
                             outcome.error = r.status().ToString();
                             return outcome;
                           }
                           outcome.ok = true;
                           outcome.seconds = ToSecondsF(r->makespan);
                           return outcome;
                         }});
      }
    }
  }

  // Lifecycle storm cells (DESIGN.md §13): the small fleet axis under a
  // correlated fault storm with deadlines armed. The tracked seconds is
  // still the makespan — its value now folds in deadline kills, retries
  // and breaker degradation, all byte-identical across --jobs like every
  // other fleet quantity.
  {
    const double scale = 0.1 * options.scale;
    struct StormCell {
      wrapper::StormKind storm;
      core::StrategyKind kind;
      const char* label;
    };
    for (const StormCell sc :
         {StormCell{wrapper::StormKind::kRegionOutage, core::StrategyKind::kDse,
                    "region-outage/DSE"},
          StormCell{wrapper::StormKind::kCascadingSlowdown,
                    core::StrategyKind::kSeq, "cascade/SEQ"}}) {
      const uint64_t seed = options.seed;
      cells.push_back({"storm", sc.label, [scale, sc, seed, cache_enabled] {
                         StrategyOutcome outcome;
                         std::vector<plan::QuerySetup> templates;
                         templates.push_back(
                             plan::PaperFigure5Query(0.25 * scale));
                         plan::QuerySetup slow =
                             plan::PaperFigure5Query(0.25 * scale);
                         slow.catalog.source(slow.catalog.Find("A"))
                             .delay.mean_us *= 3.0;
                         templates.push_back(std::move(slow));
                         Rng stream(seed ^ 0xF1EE7ULL);
                         std::vector<core::FleetQuerySpec> workload;
                         SimTime at = 0;
                         for (int i = 0; i < 12; ++i) {
                           at += Seconds(stream.Exponential(0.05 * scale));
                           core::FleetQuerySpec spec;
                           spec.arrival = at;
                           const bool interactive = stream.NextDouble() < 0.6;
                           spec.template_idx = interactive ? 0 : 1;
                           spec.fairness =
                               interactive ? core::FairnessClass::kInteractive
                                           : core::FairnessClass::kBatch;
                           workload.push_back(spec);
                         }
                         core::FleetConfig fc;
                         fc.seed = seed;
                         fc.num_shards = 4;
                         auto scaled = [scale](SimDuration d) {
                           return static_cast<SimDuration>(
                               static_cast<double>(d) * scale);
                         };
                         fc.deadline_budget = scaled(Seconds(40));
                         fc.storm.kind = sc.storm;
                         fc.storm.onset = scaled(Seconds(0.3));
                         fc.storm.outage = scaled(Seconds(2.0));
                         fc.storm.wave_stall = scaled(Milliseconds(400));
                         fc.storm.propagation = scaled(Milliseconds(150));
                         fc.storm.flap_period = scaled(Milliseconds(300));
                         fc.breaker.cooldown = scaled(Seconds(1));
                         fc.breaker.max_cooldown = scaled(Seconds(30));
                         fc.retry_backoff_initial =
                             std::max<SimDuration>(1, scaled(Milliseconds(50)));
                         fc.cache.enabled = cache_enabled;
                         auto fleet = core::FleetExecutor::Create(
                             std::move(templates), std::move(workload), fc);
                         if (!fleet.ok()) {
                           outcome.error = fleet.status().ToString();
                           return outcome;
                         }
                         auto r = fleet->Execute(sc.kind, /*jobs=*/1);
                         if (!r.ok()) {
                           outcome.error = r.status().ToString();
                           return outcome;
                         }
                         outcome.ok = true;
                         outcome.seconds = ToSecondsF(r->makespan);
                         return outcome;
                       }});
    }
  }

  // Warm-cache cells (DESIGN.md §14): the same executor runs its workload
  // twice and the tracked seconds is the SECOND run's makespan — the
  // repeated-template regime the result cache targets. Only present with
  // the cache on (there is no meaningful "warm" off-cache cell), so the
  // off-vs-cold diff in CI excludes the "cache_warm" experiment.
  if (cache_enabled) {
    const double scale = 0.1 * options.scale;
    const uint64_t seed = options.seed;
    cells.push_back(
        {"cache_warm", "multi/n=4/shared/DSE/warm", [scale, seed] {
           StrategyOutcome outcome;
           std::vector<plan::QuerySetup> mix;
           for (int i = 0; i < 4; ++i) {
             mix.push_back(plan::PaperFigure5Query(scale));
           }
           core::MultiQueryConfig mq;
           mq.seed = seed;
           mq.cache.enabled = true;
           auto mediator =
               core::MultiQueryMediator::Create(std::move(mix), mq);
           if (!mediator.ok()) {
             outcome.error = mediator.status().ToString();
             return outcome;
           }
           auto cold = mediator->Execute(core::StrategyKind::kDse,
                                         core::MultiMode::kShared);
           if (!cold.ok()) {
             outcome.error = cold.status().ToString();
             return outcome;
           }
           auto warm = mediator->Execute(core::StrategyKind::kDse,
                                         core::MultiMode::kShared);
           if (!warm.ok()) {
             outcome.error = warm.status().ToString();
             return outcome;
           }
           if (warm->cache.result_hits + warm->cache.segment_hits == 0) {
             outcome.error = "warm multi-query run served no cache hits";
             return outcome;
           }
           outcome.ok = true;
           outcome.seconds = ToSecondsF(warm->makespan);
           return outcome;
         }});
    cells.push_back({"cache_warm", "fleet/shards=4/n=12/DSE/warm",
                     [scale, seed] {
                       StrategyOutcome outcome;
                       std::vector<plan::QuerySetup> templates;
                       templates.push_back(
                           plan::PaperFigure5Query(0.25 * scale));
                       plan::QuerySetup slow =
                           plan::PaperFigure5Query(0.25 * scale);
                       slow.catalog.source(slow.catalog.Find("A"))
                           .delay.mean_us *= 3.0;
                       templates.push_back(std::move(slow));
                       Rng stream(seed ^ 0xF1EE7ULL);
                       std::vector<core::FleetQuerySpec> workload;
                       SimTime at = 0;
                       for (int i = 0; i < 12; ++i) {
                         at += Seconds(stream.Exponential(0.05 * scale));
                         core::FleetQuerySpec spec;
                         spec.arrival = at;
                         const bool interactive = stream.NextDouble() < 0.6;
                         spec.template_idx = interactive ? 0 : 1;
                         spec.fairness =
                             interactive ? core::FairnessClass::kInteractive
                                         : core::FairnessClass::kBatch;
                         workload.push_back(spec);
                       }
                       core::FleetConfig fc;
                       fc.seed = seed;
                       fc.num_shards = 4;
                       fc.cache.enabled = true;
                       auto fleet = core::FleetExecutor::Create(
                           std::move(templates), std::move(workload), fc);
                       if (!fleet.ok()) {
                         outcome.error = fleet.status().ToString();
                         return outcome;
                       }
                       auto cold = fleet->Execute(core::StrategyKind::kDse,
                                                  /*jobs=*/1);
                       if (!cold.ok()) {
                         outcome.error = cold.status().ToString();
                         return outcome;
                       }
                       auto warm = fleet->Execute(core::StrategyKind::kDse,
                                                  /*jobs=*/1);
                       if (!warm.ok()) {
                         outcome.error = warm.status().ToString();
                         return outcome;
                       }
                       if (warm->cache.result_hits +
                               warm->cache.segment_hits == 0) {
                         outcome.error = "warm fleet run served no cache hits";
                         return outcome;
                       }
                       outcome.ok = true;
                       outcome.seconds = ToSecondsF(warm->makespan);
                       return outcome;
                     }});
  }

  return cells;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

int Main(int argc, char** argv) {
  // Split off --out= and --cache=; everything else is standard options.
  std::string out_path = "BENCH_suite.json";
  bool cache_enabled = true;  // "cold" — identical to off on every cell
  std::vector<char*> rest = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--cache=off") == 0) {
      cache_enabled = false;
    } else if (std::strcmp(argv[i], "--cache=cold") == 0) {
      cache_enabled = true;
    } else {
      rest.push_back(argv[i]);
    }
  }
  std::string error;
  std::optional<BenchOptions> parsed = TryParseOptions(
      static_cast<int>(rest.size()), rest.data(), 1.0, &error);
  if (!parsed) {
    std::fprintf(stderr,
                 "%s\nusage: %s [--scale=F] [--repeats=N] [--seed=N] "
                 "[--jobs=N] [--out=PATH] [--cache=off|cold]\n",
                 error.c_str(), argv[0]);
    return 2;
  }
  const BenchOptions options = *parsed;
  const ParallelRunner runner(options.jobs);

  // Open the output up front: a bad --out path must not cost a full run.
  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }

  std::vector<SuiteCell> cells = BuildSuite(options, cache_enabled);
  std::printf("bench_suite: %zu cells, scale=%.3g, jobs=%d, cache=%s\n",
              cells.size(), options.scale, runner.jobs(),
              cache_enabled ? "cold" : "off");

  const auto suite_start = std::chrono::steady_clock::now();
  const std::vector<SuiteResult> results = RunIndexed<SuiteResult>(
      runner, cells.size(), [&cells](size_t i) {
        const auto start = std::chrono::steady_clock::now();
        SuiteResult r;
        r.outcome = cells[i].run();
        r.wall_seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
        return r;
      });
  const double total_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    suite_start)
          .count();

  double simulated_total = 0.0;
  size_t failed = 0;
  for (const SuiteResult& r : results) {
    if (r.outcome.ok) {
      simulated_total += r.outcome.seconds;
    } else {
      ++failed;
    }
  }

  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"dqsched-bench-suite-v1\",\n");
  std::fprintf(out, "  \"scale\": %.9g,\n", options.scale);
  std::fprintf(out, "  \"repeats\": %d,\n", options.repeats);
  std::fprintf(out, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(options.seed));
  std::fprintf(out, "  \"jobs\": %d,\n", runner.jobs());
  std::fprintf(out, "  \"cache\": \"%s\",\n", cache_enabled ? "cold" : "off");
  std::fprintf(out, "  \"cell_count\": %zu,\n", results.size());
  std::fprintf(out, "  \"failed_cells\": %zu,\n", failed);
  std::fprintf(out, "  \"simulated_seconds_total\": %.9g,\n",
               simulated_total);
  std::fprintf(out, "  \"wall_seconds_total\": %.6f,\n", total_wall);
  std::fprintf(out, "  \"cells\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const SuiteCell& cell = cells[i];
    const SuiteResult& r = results[i];
    std::fprintf(out,
                 "    {\"experiment\": \"%s\", \"label\": \"%s\", "
                 "\"ok\": %s, \"simulated_seconds\": %.9g, "
                 "\"wall_seconds\": %.6f%s%s%s}%s\n",
                 JsonEscape(cell.experiment).c_str(),
                 JsonEscape(cell.label).c_str(),
                 r.outcome.ok ? "true" : "false",
                 r.outcome.ok ? r.outcome.seconds : -1.0, r.wall_seconds,
                 r.outcome.ok ? "" : ", \"error\": \"",
                 r.outcome.ok ? "" : JsonEscape(r.outcome.error).c_str(),
                 r.outcome.ok ? "" : "\"",
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);

  std::printf(
      "bench_suite: %zu cells (%zu expected-infeasible FAILs), "
      "%.1f simulated s, %.2f wall s -> %s\n",
      results.size(), failed, simulated_total, total_wall,
      out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace dqsched::bench

int main(int argc, char** argv) { return dqsched::bench::Main(argc, argv); }
