// Operator-level vs scheduling-level adaptation (paper Section 1.1): the
// double-pipelined hash join (DPHJ, refs [8,16]) absorbs delivery delays
// inside the join operator itself; DSE absorbs them by scheduling. This
// bench compares both (and SEQ) across delay shapes, with the memory
// price of each — the paper's reasons for choosing the scheduling level
// were DPHJ's restriction to hash-based plans and its memory appetite.

#include <cstdio>

#include "bench_common.h"
#include "common/table_printer.h"

int main(int argc, char** argv) {
  using namespace dqsched;
  const auto options = bench::ParseOptions(argc, argv, /*default_scale=*/0.3);
  bench::PrintPreamble("Operator-level (DPHJ) vs scheduling-level (DSE)",
                       "Section 1.1 (levels of dynamic adaptation)",
                       options);
  const core::MediatorConfig config = bench::DefaultConfig(options);

  struct Case {
    const char* label;
    wrapper::DelayKind kind;
    double param;
  };
  const Case cases[] = {
      {"baseline (w_min)", wrapper::DelayKind::kUniform, 0},
      {"initial delay on A (+2 s)", wrapper::DelayKind::kInitial, 2000.0},
      {"bursty A (1000 x 50 ms)", wrapper::DelayKind::kBursty, 50.0},
      {"slow A (4x)", wrapper::DelayKind::kSlow, 4.0},
  };

  std::vector<plan::QuerySetup> setups;
  for (const Case& c : cases) {
    plan::QuerySetup setup = plan::PaperFigure5Query(options.scale);
    wrapper::DelayConfig& delay = setup.catalog.sources[0].delay;
    delay.kind = c.kind;
    delay.initial_delay_ms = c.param;
    delay.burst_length = 1000;
    delay.burst_gap_ms = c.param;
    delay.slow_factor = c.kind == wrapper::DelayKind::kSlow ? c.param : 1.0;
    setups.push_back(std::move(setup));
  }
  std::vector<bench::MeasureCell> cells;
  for (const plan::QuerySetup& setup : setups) {
    for (core::StrategyKind kind :
         {core::StrategyKind::kSeq, core::StrategyKind::kDse}) {
      cells.push_back([&setup, &config, kind, &options] {
        return bench::MeasureStrategy(setup, config, kind, options.repeats);
      });
    }
    cells.push_back([&setup, &config, &options] {
      return bench::MeasureDphj(setup, config, options.repeats);
    });
  }
  const auto results = bench::RunCells(options, cells);

  TablePrinter table({"delay", "SEQ (s)", "DSE (s)", "DPHJ (s)",
                      "DSE peak (MB)", "DPHJ peak (MB)"});
  for (size_t i = 0; i < std::size(cases); ++i) {
    const auto& seq = results[3 * i];
    const auto& dse = results[3 * i + 1];
    const auto& dphj = results[3 * i + 2];
    table.AddRow(
        {cases[i].label, bench::Cell(seq), bench::Cell(dse),
         bench::Cell(dphj),
         TablePrinter::Num(
             static_cast<double>(dse.metrics.peak_memory_bytes) / 1048576.0,
             1),
         dphj.ok ? TablePrinter::Num(
                       static_cast<double>(dphj.metrics.peak_memory_bytes) /
                           1048576.0,
                       1)
                 : "-"});
  }
  if (options.csv) {
    table.PrintCsv(stdout);
  } else {
    table.Print(stdout);
  }
  std::printf(
      "\nExpected shape: both adaptive strategies beat SEQ under delays;\n"
      "DPHJ holds BOTH sides of every join resident (roughly 2x+ the\n"
      "memory), and only exists for hash-based plans — the paper's case\n"
      "for adapting at the scheduling level instead.\n");
  return 0;
}
