// Operator-level vs scheduling-level adaptation (paper Section 1.1): the
// double-pipelined hash join (DPHJ, refs [8,16]) absorbs delivery delays
// inside the join operator itself; DSE absorbs them by scheduling. This
// bench compares both (and SEQ) across delay shapes, with the memory
// price of each — the paper's reasons for choosing the scheduling level
// were DPHJ's restriction to hash-based plans and its memory appetite.

#include <cstdio>

#include "bench_common.h"
#include "common/table_printer.h"

int main(int argc, char** argv) {
  using namespace dqsched;
  const auto options = bench::ParseOptions(argc, argv, /*default_scale=*/0.3);
  bench::PrintPreamble("Operator-level (DPHJ) vs scheduling-level (DSE)",
                       "Section 1.1 (levels of dynamic adaptation)",
                       options);
  const core::MediatorConfig config = bench::DefaultConfig(options);

  struct Case {
    const char* label;
    wrapper::DelayKind kind;
    double param;
  };
  const Case cases[] = {
      {"baseline (w_min)", wrapper::DelayKind::kUniform, 0},
      {"initial delay on A (+2 s)", wrapper::DelayKind::kInitial, 2000.0},
      {"bursty A (1000 x 50 ms)", wrapper::DelayKind::kBursty, 50.0},
      {"slow A (4x)", wrapper::DelayKind::kSlow, 4.0},
  };

  TablePrinter table({"delay", "SEQ (s)", "DSE (s)", "DPHJ (s)",
                      "DSE peak (MB)", "DPHJ peak (MB)"});
  for (const Case& c : cases) {
    plan::QuerySetup setup = plan::PaperFigure5Query(options.scale);
    wrapper::DelayConfig& delay = setup.catalog.sources[0].delay;
    delay.kind = c.kind;
    delay.initial_delay_ms = c.param;
    delay.burst_length = 1000;
    delay.burst_gap_ms = c.param;
    delay.slow_factor = c.kind == wrapper::DelayKind::kSlow ? c.param : 1.0;

    const auto seq = bench::MeasureStrategy(
        setup, config, core::StrategyKind::kSeq, options.repeats);
    const auto dse = bench::MeasureStrategy(
        setup, config, core::StrategyKind::kDse, options.repeats);

    Result<core::Mediator> mediator =
        core::Mediator::Create(setup.catalog, setup.plan, config);
    std::string dphj_cell = "FAIL";
    std::string dphj_mem = "-";
    int64_t dphj_peak = 0;
    if (mediator.ok()) {
      Result<core::ExecutionMetrics> dphj = mediator->ExecuteDphj();
      if (dphj.ok()) {
        dphj_cell = TablePrinter::Num(ToSecondsF(dphj->response_time));
        dphj_peak = dphj->peak_memory_bytes;
        dphj_mem = TablePrinter::Num(
            static_cast<double>(dphj_peak) / 1048576.0, 1);
      } else {
        dphj_cell = "FAIL(" + dphj.status().ToString() + ")";
      }
    }
    table.AddRow({c.label, bench::Cell(seq), bench::Cell(dse), dphj_cell,
                  TablePrinter::Num(
                      static_cast<double>(dse.metrics.peak_memory_bytes) /
                          1048576.0,
                      1),
                  dphj_mem});
  }
  if (options.csv) {
    table.PrintCsv(stdout);
  } else {
    table.Print(stdout);
  }
  std::printf(
      "\nExpected shape: both adaptive strategies beat SEQ under delays;\n"
      "DPHJ holds BOTH sides of every join resident (roughly 2x+ the\n"
      "memory), and only exists for hash-based plans — the paper's case\n"
      "for adapting at the scheduling level instead.\n");
  return 0;
}
