// Shared harness for the table/figure reproduction benchmarks. Each bench
// binary builds query setups, runs the strategies through this helper, and
// prints one table matching a paper artifact (see DESIGN.md's experiment
// index and EXPERIMENTS.md for paper-vs-measured notes).

#ifndef DQSCHED_BENCH_BENCH_COMMON_H_
#define DQSCHED_BENCH_BENCH_COMMON_H_

#include <optional>
#include <string>

#include "core/mediator.h"
#include "plan/canonical_plans.h"

namespace dqsched::bench {

/// Command-line options shared by every bench binary.
///   --scale=<f>    cardinality multiplier (default per bench)
///   --repeats=<n>  measurements averaged per point, distinct seeds
///                  (the paper averaged 3; the simulator is deterministic
///                  per seed, so 1 is representative)
///   --seed=<n>     base seed
///   --csv          machine-readable output
struct BenchOptions {
  double scale = 1.0;
  int repeats = 1;
  uint64_t seed = 42;
  bool csv = false;
};

/// Parses argv; unknown flags abort with usage.
BenchOptions ParseOptions(int argc, char** argv, double default_scale = 1.0);

/// Average response time of one strategy over `repeats` seeds, seconds.
/// Creation or execution failures surface as an error string.
struct StrategyOutcome {
  bool ok = false;
  double seconds = 0.0;
  std::string error;
  /// Metrics of the last repeat (diagnostics).
  core::ExecutionMetrics metrics;
};

StrategyOutcome MeasureStrategy(const plan::QuerySetup& setup,
                                const core::MediatorConfig& config,
                                core::StrategyKind kind, int repeats);

/// The analytic lower bound for the setup, seconds (first seed's data).
double LwbSeconds(const plan::QuerySetup& setup,
                  const core::MediatorConfig& config);

/// "1.234" or "FAIL(<reason>)".
std::string Cell(const StrategyOutcome& outcome);

/// Percentage gain of dse over seq, as "37.5" (empty on failure).
std::string GainCell(const StrategyOutcome& seq, const StrategyOutcome& dse);

/// Prints the standard bench preamble.
void PrintPreamble(const char* title, const char* paper_artifact,
                   const BenchOptions& options);

/// A MediatorConfig with the paper's defaults and the options' seed.
core::MediatorConfig DefaultConfig(const BenchOptions& options);

/// The full Figure 6/7 experiment: slow down `relation` of the paper's
/// query so that its total retrieval time sweeps from the w_min baseline
/// up to ~10 s (scaled), and compare SEQ / DSE / MA / LWB at every point.
void RunSlowOneRelationBench(const char* relation,
                             const char* paper_artifact,
                             const BenchOptions& options);

}  // namespace dqsched::bench

#endif  // DQSCHED_BENCH_BENCH_COMMON_H_
