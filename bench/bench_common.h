// Shared harness for the table/figure reproduction benchmarks. Each bench
// binary builds query setups, runs the strategies through this helper, and
// prints one table matching a paper artifact (see DESIGN.md's experiment
// index and EXPERIMENTS.md for paper-vs-measured notes).

#ifndef DQSCHED_BENCH_BENCH_COMMON_H_
#define DQSCHED_BENCH_BENCH_COMMON_H_

#include <array>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/parallel_runner.h"
#include "core/mediator.h"
#include "plan/canonical_plans.h"

namespace dqsched::bench {

/// Command-line options shared by every bench binary.
///   --scale=<f>    cardinality multiplier (default per bench)
///   --repeats=<n>  measurements averaged per point, distinct seeds
///                  (the paper averaged 3; the simulator is deterministic
///                  per seed, so 1 is representative)
///   --seed=<n>     base seed
///   --jobs=<n>     worker threads for the cell grid (0 = hardware
///                  concurrency); results are identical for every value
///   --csv          machine-readable output
///   --walls        append per-cell host wall-time columns where the bench
///                  supports them; off by default because wall time is the
///                  one column that is NOT byte-identical across runs or
///                  --jobs values
struct BenchOptions {
  double scale = 1.0;
  int repeats = 1;
  uint64_t seed = 42;
  int jobs = 0;  // 0 = hardware concurrency
  bool csv = false;
  bool walls = false;
};

/// Parses argv strictly (malformed numbers are rejected, not coerced to
/// zero). On failure returns the offending diagnostic in `error`.
std::optional<BenchOptions> TryParseOptions(int argc, char** argv,
                                            double default_scale,
                                            std::string* error);

/// Parses argv; unknown flags abort with usage.
BenchOptions ParseOptions(int argc, char** argv, double default_scale = 1.0);

/// Average response time of one strategy over `repeats` seeds, seconds.
/// Creation or execution failures surface as an error string.
struct StrategyOutcome {
  bool ok = false;
  double seconds = 0.0;
  std::string error;
  /// Metrics of the last repeat (diagnostics).
  core::ExecutionMetrics metrics;
};

StrategyOutcome MeasureStrategy(const plan::QuerySetup& setup,
                                const core::MediatorConfig& config,
                                core::StrategyKind kind, int repeats);

/// Like MeasureStrategy, for query scrambling with the given timeout.
StrategyOutcome MeasureScrambling(const plan::QuerySetup& setup,
                                  const core::MediatorConfig& config,
                                  SimDuration timeout, int repeats);

/// Like MeasureStrategy, for double-pipelined hash joins.
StrategyOutcome MeasureDphj(const plan::QuerySetup& setup,
                            const core::MediatorConfig& config, int repeats);

/// One deferred measurement of a bench grid.
using MeasureCell = std::function<StrategyOutcome()>;

/// Executes the cells on options.jobs workers (work stealing, see
/// common/parallel_runner.h) and returns the outcomes in input order — the
/// printed tables are byte-identical for every --jobs value.
std::vector<StrategyOutcome> RunCells(const BenchOptions& options,
                                      const std::vector<MeasureCell>& cells);

/// The analytic lower bound for the setup, seconds (first seed's data).
double LwbSeconds(const plan::QuerySetup& setup,
                  const core::MediatorConfig& config);

/// "1.234" or "FAIL(<reason>)".
std::string Cell(const StrategyOutcome& outcome);

/// Percentage gain of dse over seq, as "37.5" (empty on failure).
std::string GainCell(const StrategyOutcome& seq, const StrategyOutcome& dse);

/// Percentile summary of per-query completion latencies (nearest-rank on
/// a sorted copy, so the summary is deterministic and allocation-cheap).
/// Used by bench_multi_query and bench_fleet.
struct LatencySummary {
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
};

LatencySummary SummarizeLatencies(const std::vector<SimDuration>& latencies);

/// "ok=7 partial=1" — the non-zero per-status counts in enum order, or
/// "ok=0" when every count is zero. Used by the bench_fleet and
/// bench_multi_query status columns (§13 lifecycle taxonomy).
std::string FormatStatusCounts(
    const std::array<int64_t, core::kNumQueryStatuses>& counts);

/// Prints the standard bench preamble.
void PrintPreamble(const char* title, const char* paper_artifact,
                   const BenchOptions& options);

/// A MediatorConfig with the paper's defaults and the options' seed.
core::MediatorConfig DefaultConfig(const BenchOptions& options);

/// The full Figure 6/7 experiment: slow down `relation` of the paper's
/// query so that its total retrieval time sweeps from the w_min baseline
/// up to ~10 s (scaled), and compare SEQ / DSE / MA / LWB at every point.
void RunSlowOneRelationBench(const char* relation,
                             const char* paper_artifact,
                             const BenchOptions& options);

}  // namespace dqsched::bench

#endif  // DQSCHED_BENCH_BENCH_COMMON_H_
