// The sharded mediator fleet under an open-loop Poisson query stream:
// the paper's Section 6 throughput-vs-response-time tradeoff at fleet
// scale. A skewed template mix (prepared once — the warm plan cache)
// arrives open-loop; queries hash onto mediator shards running on real
// threads, gated by the admission-control memory broker. The table
// reports the throughput side (makespan, queries/s) and the latency
// side (p50/p95/p99 completion latency, overall and per fairness
// class), plus the broker's admission-queueing counters.
//
// --jobs only picks the host thread count for the shard advances; every
// virtual column is byte-identical across job counts (DESIGN.md §12).

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "common/table_printer.h"
#include "core/fleet_executor.h"

int main(int argc, char** argv) {
  using namespace dqsched;
  // Lifecycle flags (this bench only) are peeled off before the shared
  // parser sees the rest:
  //   --storm=<kind>    correlated fault storm: region-outage | cascade |
  //                     flapping (default none)
  //   --deadline=<sec>  per-attempt deadline budget in scale-1 virtual
  //                     seconds, multiplied by --scale like the query
  //                     durations (default 0 = no deadlines)
  //   --cache=<mode>    result cache: off | cold (enabled, reset before
  //                     every run — byte-identical to off on every
  //                     non-wall column) | warm (one unmeasured warmup
  //                     run per strategy, then measure the repeat)
  wrapper::StormKind storm_kind = wrapper::StormKind::kNone;
  double deadline_s = 0.0;
  enum class CacheMode { kOff, kCold, kWarm };
  CacheMode cache_mode = CacheMode::kCold;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--storm=", 0) == 0) {
      if (!wrapper::ParseStormKind(arg.substr(8), &storm_kind)) {
        std::fprintf(stderr, "unknown --storm kind: %s\n", arg.c_str() + 8);
        return 2;
      }
    } else if (arg.rfind("--cache=", 0) == 0) {
      const std::string mode = arg.substr(8);
      if (mode == "off") {
        cache_mode = CacheMode::kOff;
      } else if (mode == "cold") {
        cache_mode = CacheMode::kCold;
      } else if (mode == "warm") {
        cache_mode = CacheMode::kWarm;
      } else {
        std::fprintf(stderr, "unknown --cache mode: %s\n", mode.c_str());
        return 2;
      }
    } else if (arg.rfind("--deadline=", 0) == 0) {
      char* end = nullptr;
      deadline_s = std::strtod(arg.c_str() + 11, &end);
      if (end == nullptr || *end != '\0' || arg.size() == 11 ||
          deadline_s < 0) {
        std::fprintf(stderr, "bad --deadline value: %s\n", arg.c_str());
        return 2;
      }
    } else {
      rest.push_back(argv[i]);
    }
  }
  const auto options = bench::ParseOptions(static_cast<int>(rest.size()),
                                           rest.data(), /*default_scale=*/1.0);
  bench::PrintPreamble(
      "Sharded mediator fleet (open-loop Poisson stream)",
      "Section 6 (multi-query execution: throughput vs response time)",
      options);
  if (storm_kind != wrapper::StormKind::kNone || deadline_s > 0) {
    std::printf("lifecycle: storm=%s deadline=%s\n\n",
                wrapper::StormKindName(storm_kind),
                deadline_s > 0 ? TablePrinter::Num(deadline_s).c_str()
                               : "none");
  }
  std::printf("cache: %s\n\n",
              cache_mode == CacheMode::kOff
                  ? "off"
                  : (cache_mode == CacheMode::kCold ? "cold" : "warm"));

  // Warm plan cache: three templates. t0 is the paper query at quarter
  // scale (the interactive mix); t1/t2 slow one relation 3x — the
  // Figure 6/7 perturbations — and run as batch analytics.
  const double qscale = 0.25 * options.scale;
  std::vector<plan::QuerySetup> templates;
  templates.push_back(plan::PaperFigure5Query(qscale));
  for (const char* slowed : {"A", "F"}) {
    plan::QuerySetup t = plan::PaperFigure5Query(qscale);
    const SourceId s = t.catalog.Find(slowed);
    if (s == kInvalidId) {
      std::fprintf(stderr, "unknown relation %s\n", slowed);
      return 2;
    }
    t.catalog.source(s).delay.mean_us *= 3.0;
    templates.push_back(std::move(t));
  }

  // Open-loop arrivals: exponential inter-arrival times over a skewed
  // mix — 60% interactive paper queries, 25% slow-A and 15% slow-F
  // batch variants. The stream is part of the workload definition, so
  // it draws from its own seeded generator.
  const int kQueries = 48;
  const double mean_interarrival_s = 0.05 * options.scale;
  Rng stream(options.seed ^ 0xF1EE7ULL);
  std::vector<core::FleetQuerySpec> workload;
  SimTime at = 0;
  for (int q = 0; q < kQueries; ++q) {
    at += Seconds(stream.Exponential(mean_interarrival_s));
    core::FleetQuerySpec spec;
    spec.arrival = at;
    const double mix = stream.NextDouble();
    spec.template_idx = mix < 0.60 ? 0 : (mix < 0.85 ? 1 : 2);
    spec.fairness = spec.template_idx == 0 ? core::FairnessClass::kInteractive
                                           : core::FairnessClass::kBatch;
    workload.push_back(spec);
  }

  core::FleetConfig config;
  config.seed = options.seed;
  config.num_shards = 8;
  // Tight enough that the stream contends for admission at every scale:
  // the estimates grow linearly with --scale, so the budget does too.
  config.memory_budget_bytes = std::max<int64_t>(
      1 << 20, static_cast<int64_t>(64.0 * 1024 * 1024 * options.scale));
  // Lifecycle: the storm's absolute times scale with the query durations
  // so the scenario hits the same phase of the stream at every --scale.
  auto scaled = [&](SimDuration d) {
    return static_cast<SimDuration>(static_cast<double>(d) * options.scale);
  };
  if (deadline_s > 0) config.deadline_budget = scaled(Seconds(deadline_s));
  config.storm.kind = storm_kind;
  config.storm.onset = scaled(Seconds(0.3));
  config.storm.outage = scaled(Seconds(2.0));
  config.storm.wave_stall = scaled(Milliseconds(400));
  config.storm.propagation = scaled(Milliseconds(150));
  config.storm.flap_period = scaled(Milliseconds(300));
  config.breaker.cooldown = scaled(Seconds(1));
  config.breaker.max_cooldown = scaled(Seconds(30));
  config.retry_backoff_initial =
      std::max<SimDuration>(1, scaled(Milliseconds(50)));
  config.cache.enabled = cache_mode != CacheMode::kOff;

  Result<core::FleetExecutor> fleet = core::FleetExecutor::Create(
      std::move(templates), std::move(workload), config);
  if (!fleet.ok()) {
    std::fprintf(stderr, "fleet setup: %s\n",
                 fleet.status().ToString().c_str());
    return 1;
  }

  std::vector<std::string> headers = {
      "per-query", "class",   "queries",  "makespan (s)", "throughput (q/s)",
      "p50 (s)",   "p95 (s)", "p99 (s)",  "statuses",     "queued",
      "forced",    "c-hits",  "c-miss",   "c-stale",      "c-evict"};
  if (options.walls) headers.push_back("wall (ms)");
  TablePrinter table(std::move(headers));

  for (core::StrategyKind kind :
       {core::StrategyKind::kSeq, core::StrategyKind::kDse}) {
    // Cold runs start from an empty cache every time; warm runs repeat
    // the identical stream once unmeasured so the measured run serves
    // hits (the mediator fleet answering a recurring template mix).
    if (cache_mode != CacheMode::kOff) fleet->ResetCache();
    if (cache_mode == CacheMode::kWarm) {
      Result<core::FleetMetrics> warmup = fleet->Execute(kind, options.jobs);
      if (!warmup.ok()) {
        std::fprintf(stderr, "%s warmup: %s\n", core::StrategyName(kind),
                     warmup.status().ToString().c_str());
        return 1;
      }
    }
    const auto t0 = std::chrono::steady_clock::now();
    Result<core::FleetMetrics> r = fleet->Execute(kind, options.jobs);
    const auto t1 = std::chrono::steady_clock::now();
    if (!r.ok()) {
      std::fprintf(stderr, "%s: %s\n", core::StrategyName(kind),
                   r.status().ToString().c_str());
      return 1;
    }
    const double wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    // Overall row plus one per fairness class; the class rows report
    // the latency split only (the makespan and broker counters are
    // fleet-wide quantities).
    struct ClassFilter {
      const char* name;
      bool all;
      core::FairnessClass cls;
    };
    const ClassFilter filters[] = {
        {"all", true, core::FairnessClass::kInteractive},
        {core::FairnessClassName(core::FairnessClass::kInteractive), false,
         core::FairnessClass::kInteractive},
        {core::FairnessClassName(core::FairnessClass::kBatch), false,
         core::FairnessClass::kBatch},
    };
    for (const ClassFilter& filter : filters) {
      // Percentiles summarize queries that produced an answer (ok or
      // partial); every other terminal status shows up in the statuses
      // column instead of polluting the latency distribution — the whole
      // point of the taxonomy is that a failed query is not a slow one.
      std::vector<SimDuration> latencies;
      std::array<int64_t, core::kNumQueryStatuses> counts{};
      int matched = 0;
      for (const core::FleetQueryOutcome& q : r->queries) {
        if (!filter.all && q.fairness != filter.cls) continue;
        ++matched;
        ++counts[static_cast<size_t>(q.status)];
        if (q.status == core::QueryStatus::kOk ||
            q.status == core::QueryStatus::kPartial) {
          latencies.push_back(q.completion_latency);
        }
      }
      const bench::LatencySummary lat = bench::SummarizeLatencies(latencies);
      const double makespan_s = ToSecondsF(r->makespan);
      std::vector<std::string> row = {
          core::StrategyName(kind),
          filter.name,
          std::to_string(matched),
          filter.all ? TablePrinter::Num(makespan_s) : "",
          filter.all && makespan_s > 0
              ? TablePrinter::Num(static_cast<double>(latencies.size()) /
                                  makespan_s)
              : "",
          TablePrinter::Num(lat.p50_s),
          TablePrinter::Num(lat.p95_s),
          TablePrinter::Num(lat.p99_s),
          bench::FormatStatusCounts(counts),
          filter.all ? std::to_string(r->broker.queued_admissions) : "",
          filter.all ? std::to_string(r->broker.forced_admissions) : "",
          filter.all ? std::to_string(r->cache.segment_hits +
                                      r->cache.result_hits)
                     : "",
          filter.all ? std::to_string(r->cache.segment_misses +
                                      r->cache.result_misses)
                     : "",
          filter.all ? std::to_string(r->cache.stale_invalidations) : "",
          filter.all ? std::to_string(r->cache.evictions) : ""};
      if (options.walls) {
        row.push_back(filter.all ? TablePrinter::Num(wall_ms) : "");
      }
      table.AddRow(std::move(row));
    }
  }
  if (options.csv) {
    table.PrintCsv(stdout);
  } else {
    table.Print(stdout);
  }
  std::printf(
      "\nExpected shape: interactive queries see lower tail latency than\n"
      "batch (the broker admits them first). Under a tight admission\n"
      "budget, sharing itself absorbs source stalls, so DSE's\n"
      "materializations can cost more than they save (the paper's\n"
      "throughput-vs-response tradeoff). Virtual columns are\n"
      "byte-identical for every --jobs value; only wall time varies.\n");
  return 0;
}
