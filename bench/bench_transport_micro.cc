// Micro-benchmarks (google-benchmark) isolating the simulation data
// plane: ring-buffer queue throughput, wrapper->queue bulk pumping under
// the window protocol, and the event-indexed idle pump. These are the
// primitives every strategy run pays per tuple; bench_suite measures their
// end-to-end effect, this binary isolates them.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "comm/comm_manager.h"
#include "comm/tuple_queue.h"
#include "storage/relation.h"
#include "wrapper/wrapper.h"

namespace dqsched {
namespace {

storage::Relation MakeRelation(int64_t n, SourceId src) {
  storage::RelationSpec spec;
  spec.name = "R";
  spec.cardinality = n;
  return GenerateRelation(spec, src, Rng(7));
}

wrapper::DelayConfig ConstantDelay(double us) {
  wrapper::DelayConfig d;
  d.kind = wrapper::DelayKind::kConstant;
  d.mean_us = us;
  return d;
}

/// Raw ring-buffer throughput: span pushes and pops of `batch` tuples
/// cycling through a 1024-slot queue (wraparound every iteration).
void BM_QueuePushPopBatch(benchmark::State& state) {
  const int64_t batch = state.range(0);
  const storage::Relation rel = MakeRelation(batch, 0);
  comm::TupleQueue q(1024);
  std::vector<storage::Tuple> out(static_cast<size_t>(batch));
  for (auto _ : state) {
    q.PushBatch(rel.tuples.data(), batch);
    benchmark::DoNotOptimize(q.PopBatch(out.data(), batch));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_QueuePushPopBatch)->Arg(1)->Arg(64)->Arg(512);

/// Full wrapper->queue->consumer transport of a relation through the
/// window protocol (queue smaller than the relation, so production
/// suspends and resumes throughout).
void BM_WrapperTransport(benchmark::State& state) {
  const int64_t card = state.range(0);
  const storage::Relation rel = MakeRelation(card, 0);
  std::vector<storage::Tuple> out(256);
  for (auto _ : state) {
    comm::CommConfig config;
    config.queue_capacity = 1024;
    comm::CommManager cm(config);
    cm.AddSource(std::make_unique<wrapper::SimWrapper>(0, &rel,
                                                       ConstantDelay(1.0), 1),
                 /*prior_wait_ns=*/1000.0);
    SimTime t = 0;
    int64_t drained = 0;
    while (drained < card) {
      t += Microseconds(400);
      drained += cm.Pop(0, t, out.data(), 256);
    }
    benchmark::DoNotOptimize(drained);
  }
  state.SetItemsProcessed(state.iterations() * card);
}
BENCHMARK(BM_WrapperTransport)->Arg(4096)->Arg(65536);

/// Idle pump over many registered sources whose next arrival is far in
/// the future: the min-heap event index makes this O(1) instead of a
/// per-source scan.
void BM_PumpAllIdle(benchmark::State& state) {
  const int sources = static_cast<int>(state.range(0));
  std::vector<storage::Relation> rels;
  rels.reserve(static_cast<size_t>(sources));
  for (int s = 0; s < sources; ++s) {
    rels.push_back(MakeRelation(1024, s));
  }
  comm::CommConfig config;
  comm::CommManager cm(config);
  for (int s = 0; s < sources; ++s) {
    cm.AddSource(std::make_unique<wrapper::SimWrapper>(
                     s, &rels[static_cast<size_t>(s)],
                     ConstantDelay(1.0e6), 1),
                 /*prior_wait_ns=*/1.0e9);
  }
  SimTime now = 0;
  for (auto _ : state) {
    ++now;  // always before the first arrival (1 s away)
    cm.PumpAll(now);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PumpAllIdle)->Arg(6)->Arg(64);

}  // namespace
}  // namespace dqsched

BENCHMARK_MAIN();
