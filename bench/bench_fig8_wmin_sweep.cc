// Reproduces paper Figure 8: performance gain of DSE over SEQ as a
// function of w_min — the mean inter-tuple delay applied to EVERY wrapper
// simultaneously (Section 5.3). Low w_min models fast networks (little to
// gain), high w_min slow networks (gain approaches the paper's ~70%).
// The paper's 100 Mb/s operating point (~20 us) is marked.

#include <cstdio>

#include "bench_common.h"
#include "common/table_printer.h"

int main(int argc, char** argv) {
  using namespace dqsched;
  const auto options = bench::ParseOptions(argc, argv);
  bench::PrintPreamble("DSE gain over SEQ vs w_min",
                       "Figure 8 (several slowed-down input relations)",
                       options);
  const core::MediatorConfig config = bench::DefaultConfig(options);

  const double w_values_us[] = {5,  10, 15, 20, 25, 30, 35,
                                40, 50, 60, 80, 100, 120};
  // Three independent cells per w_min point: SEQ, DSE, and the LWB.
  std::vector<plan::QuerySetup> setups;
  for (double w : w_values_us) {
    setups.push_back(plan::PaperFigure5Query(options.scale, w));
  }
  std::vector<bench::MeasureCell> cells;
  for (const plan::QuerySetup& setup : setups) {
    for (core::StrategyKind kind :
         {core::StrategyKind::kSeq, core::StrategyKind::kDse}) {
      cells.push_back([&setup, &config, kind, &options] {
        return bench::MeasureStrategy(setup, config, kind, options.repeats);
      });
    }
    cells.push_back([&setup, &config] {
      bench::StrategyOutcome lwb;
      lwb.ok = true;
      lwb.seconds = bench::LwbSeconds(setup, config);
      return lwb;
    });
  }
  const auto results = bench::RunCells(options, cells);

  TablePrinter table({"w_min (us)", "SEQ (s)", "DSE (s)", "LWB (s)",
                      "DSE gain (%)", ""});
  for (size_t i = 0; i < setups.size(); ++i) {
    const double w = w_values_us[i];
    const auto& seq = results[3 * i];
    const auto& dse = results[3 * i + 1];
    table.AddRow({TablePrinter::Num(w, 0), bench::Cell(seq),
                  bench::Cell(dse), TablePrinter::Num(results[3 * i + 2].seconds),
                  bench::GainCell(seq, dse),
                  w == 20 ? "<- 100 Mb/s network (paper's w_min)" : ""});
  }
  if (options.csv) {
    table.PrintCsv(stdout);
  } else {
    table.Print(stdout);
  }
  std::printf(
      "\nExpected shape (paper Section 5.3): the gain rises with w_min\n"
      "toward ~60-70%%; it shrinks toward zero on very fast networks where\n"
      "chains stop being critical. Occasional non-monotonic dips reflect\n"
      "the heuristic scheduler (the paper saw one at ~35 us).\n");
  return 0;
}
