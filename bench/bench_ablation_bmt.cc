// Ablation: sensitivity of DSE to the benefit materialization threshold
// bmt (paper Section 4.4 defines bmi/bmt; Section 5.1.3 fixes bmt = 1 for
// the single-query experiments; Section 6 plans tuning experiments — this
// bench is that experiment). Low bmt degrades eagerly; a huge bmt disables
// degradation entirely, leaving only direct chain interleaving.

#include <cstdio>

#include "bench_common.h"
#include "common/table_printer.h"

int main(int argc, char** argv) {
  using namespace dqsched;
  const auto options = bench::ParseOptions(argc, argv, /*default_scale=*/0.5);
  bench::PrintPreamble("bmt sensitivity (relation A slowed 3x)",
                       "ablation of Section 4.4's threshold", options);

  plan::QuerySetup setup = plan::PaperFigure5Query(options.scale);
  setup.catalog.sources[0].delay.mean_us *= 3.0;

  const double bmt_values[] = {0.1, 0.5, 1.0, 1.5, 2.0, 5.0, 1e9};
  std::vector<bench::MeasureCell> cells;
  for (double bmt : bmt_values) {
    core::MediatorConfig config = bench::DefaultConfig(options);
    config.strategy.dqs.bmt = bmt;
    cells.push_back([&setup, config, &options] {
      return bench::MeasureStrategy(setup, config, core::StrategyKind::kDse,
                                    options.repeats);
    });
  }
  const auto results = bench::RunCells(options, cells);

  TablePrinter table({"bmt", "DSE (s)", "degradations", "disk pages written",
                      "stalled (s)"});
  for (size_t i = 0; i < cells.size(); ++i) {
    const double bmt = bmt_values[i];
    const auto& dse = results[i];
    table.AddRow({bmt > 1e6 ? "inf" : TablePrinter::Num(bmt, 1),
                  bench::Cell(dse),
                  std::to_string(dse.metrics.degradations),
                  std::to_string(dse.metrics.disk.pages_written),
                  TablePrinter::Num(ToSecondsF(dse.metrics.stalled_time))});
  }
  if (options.csv) {
    table.PrintCsv(stdout);
  } else {
    table.Print(stdout);
  }
  std::printf(
      "\nExpected shape: around bmt=1 (the paper's setting) degradation is\n"
      "selective and response time is lowest; disabling degradation (inf)\n"
      "forfeits the overlap and stalls the engine behind blocked chains.\n");
  return 0;
}
