// Reproduces the sweep described in paper Section 5.2's text: "We perform
// this experiment slowing down successively each input relation of the QEP
// to observe the influence of the position of the slowed-down relation".
// Each relation in turn is slowed 5x while the others stay at w_min.

#include <cstdio>

#include "bench_common.h"
#include "common/table_printer.h"

int main(int argc, char** argv) {
  using namespace dqsched;
  const auto options = bench::ParseOptions(argc, argv);
  bench::PrintPreamble(
      "Slowing down each input relation in turn (5x w_min)",
      "Section 5.2 text (position of the slowed-down relation)", options);
  const core::MediatorConfig config = bench::DefaultConfig(options);

  const char* names[] = {"A", "B", "C", "D", "E", "F"};
  std::vector<plan::QuerySetup> setups;
  std::vector<SourceId> slowed_ids;
  std::vector<int> dependents_count;
  for (const char* name : names) {
    plan::QuerySetup setup = plan::PaperFigure5Query(options.scale);
    const SourceId slowed = setup.catalog.Find(name);
    setup.catalog.source(slowed).delay.mean_us *= 5.0;

    // How much of the plan the slowed chain gates (diagnostic column).
    auto compiled = plan::Compile(setup.plan, setup.catalog);
    int dependents = 0;
    if (compiled.ok()) {
      ChainId slowed_chain = kInvalidId;
      for (const auto& chain : compiled->chains) {
        if (chain.source == slowed) slowed_chain = chain.id;
      }
      for (const auto& chain : compiled->chains) {
        for (ChainId a : compiled->AncestorsOf(chain.id)) {
          if (a == slowed_chain) ++dependents;
        }
      }
    }
    slowed_ids.push_back(slowed);
    dependents_count.push_back(dependents);
    setups.push_back(std::move(setup));
  }

  std::vector<bench::MeasureCell> cells;
  for (const plan::QuerySetup& setup : setups) {
    for (core::StrategyKind kind :
         {core::StrategyKind::kSeq, core::StrategyKind::kDse,
          core::StrategyKind::kMa}) {
      cells.push_back([&setup, &config, kind, &options] {
        return bench::MeasureStrategy(setup, config, kind, options.repeats);
      });
    }
    cells.push_back([&setup, &config] {
      bench::StrategyOutcome lwb;
      lwb.ok = true;
      lwb.seconds = bench::LwbSeconds(setup, config);
      return lwb;
    });
  }
  const auto results = bench::RunCells(options, cells);

  TablePrinter table({"slowed", "cardinality", "blocks (transitively)",
                      "SEQ (s)", "DSE (s)", "MA (s)", "LWB (s)",
                      "DSE gain (%)"});
  for (size_t i = 0; i < setups.size(); ++i) {
    const auto& seq = results[4 * i];
    const auto& dse = results[4 * i + 1];
    const auto& ma = results[4 * i + 2];
    table.AddRow(
        {names[i],
         std::to_string(
             setups[i].catalog.source(slowed_ids[i]).relation.cardinality),
         std::to_string(dependents_count[i]), bench::Cell(seq),
         bench::Cell(dse), bench::Cell(ma),
         TablePrinter::Num(results[4 * i + 3].seconds),
         bench::GainCell(seq, dse)});
  }
  if (options.csv) {
    table.PrintCsv(stdout);
  } else {
    table.Print(stdout);
  }
  std::printf(
      "\nExpected shape: the gain is larger when the slowed relation gates\n"
      "less downstream work (C blocks nothing; A gates half the plan).\n");
  return 0;
}
