// Reproduces the sweep described in paper Section 5.2's text: "We perform
// this experiment slowing down successively each input relation of the QEP
// to observe the influence of the position of the slowed-down relation".
// Each relation in turn is slowed 5x while the others stay at w_min.

#include <cstdio>

#include "bench_common.h"
#include "common/table_printer.h"

int main(int argc, char** argv) {
  using namespace dqsched;
  const auto options = bench::ParseOptions(argc, argv);
  bench::PrintPreamble(
      "Slowing down each input relation in turn (5x w_min)",
      "Section 5.2 text (position of the slowed-down relation)", options);
  const core::MediatorConfig config = bench::DefaultConfig(options);

  TablePrinter table({"slowed", "cardinality", "blocks (transitively)",
                      "SEQ (s)", "DSE (s)", "MA (s)", "LWB (s)",
                      "DSE gain (%)"});
  for (const char* name : {"A", "B", "C", "D", "E", "F"}) {
    plan::QuerySetup setup = plan::PaperFigure5Query(options.scale);
    const SourceId slowed = setup.catalog.Find(name);
    setup.catalog.source(slowed).delay.mean_us *= 5.0;

    // How much of the plan the slowed chain gates (diagnostic column).
    auto compiled = plan::Compile(setup.plan, setup.catalog);
    int dependents = 0;
    if (compiled.ok()) {
      ChainId slowed_chain = kInvalidId;
      for (const auto& chain : compiled->chains) {
        if (chain.source == slowed) slowed_chain = chain.id;
      }
      for (const auto& chain : compiled->chains) {
        for (ChainId a : compiled->Ancestors(chain.id)) {
          if (a == slowed_chain) ++dependents;
        }
      }
    }

    const auto seq = bench::MeasureStrategy(
        setup, config, core::StrategyKind::kSeq, options.repeats);
    const auto dse = bench::MeasureStrategy(
        setup, config, core::StrategyKind::kDse, options.repeats);
    const auto ma = bench::MeasureStrategy(
        setup, config, core::StrategyKind::kMa, options.repeats);
    table.AddRow(
        {name,
         std::to_string(setup.catalog.source(slowed).relation.cardinality),
         std::to_string(dependents), bench::Cell(seq), bench::Cell(dse),
         bench::Cell(ma), TablePrinter::Num(bench::LwbSeconds(setup, config)),
         bench::GainCell(seq, dse)});
  }
  if (options.csv) {
    table.PrintCsv(stdout);
  } else {
    table.Print(stdout);
  }
  std::printf(
      "\nExpected shape: the gain is larger when the slowed relation gates\n"
      "less downstream work (C blocks nothing; A gates half the plan).\n");
  return 0;
}
