// Ablation: the DQP's batch size (paper Section 3.2: batches amortize
// fragment-switch overheads; footnote 1 notes the size can vary). In the
// simulator switching is free, so the visible effect is scheduling
// granularity: how promptly the processor returns to the highest-priority
// fragment and how well queues are kept drained.
//
// The kernel columns ablate the operator kernels themselves: the same DSE
// run with the vectorized (selection-vector) kernels and with the scalar
// tuple-at-a-time kernels. Simulated seconds are byte-identical by the
// determinism contract (DESIGN §10); only host wall time (--walls)
// separates them, and more so as batches grow.

#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "common/table_printer.h"

int main(int argc, char** argv) {
  using namespace dqsched;
  const auto options = bench::ParseOptions(argc, argv, /*default_scale=*/0.5);
  bench::PrintPreamble("Batch-size sensitivity of the DQP",
                       "ablation of Section 3.2's batching", options);

  plan::QuerySetup setup = plan::PaperFigure5Query(options.scale);
  setup.catalog.sources[0].delay.mean_us *= 3.0;  // give DSE work to overlap

  const int64_t batch_sizes[] = {16, 64, 128, 512, 2048, 8192};
  const size_t points = sizeof(batch_sizes) / sizeof(batch_sizes[0]);
  std::vector<double> walls_ms(points * 2, 0.0);
  std::vector<bench::MeasureCell> cells;
  for (size_t i = 0; i < points; ++i) {
    for (int scalar = 0; scalar < 2; ++scalar) {
      core::MediatorConfig config = bench::DefaultConfig(options);
      config.strategy.dqp.batch_size = batch_sizes[i];
      config.kernels.scalar = scalar != 0;
      double* wall_out = &walls_ms[i * 2 + static_cast<size_t>(scalar)];
      cells.push_back([&setup, config, &options, wall_out] {
        const auto start = std::chrono::steady_clock::now();
        auto outcome = bench::MeasureStrategy(
            setup, config, core::StrategyKind::kDse, options.repeats);
        *wall_out = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
        return outcome;
      });
    }
  }
  const auto results = bench::RunCells(options, cells);

  std::vector<std::string> headers = {"batch (tuples)", "DSE (s)",
                                      "DSE scalar-kernels (s)",
                                      "execution phases", "stalled (s)"};
  if (options.walls) {
    headers.push_back("wall vec (ms)");
    headers.push_back("wall scalar (ms)");
  }
  TablePrinter table(headers);
  for (size_t i = 0; i < points; ++i) {
    const auto& dse = results[i * 2];
    const auto& dse_scalar = results[i * 2 + 1];
    std::vector<std::string> row = {
        std::to_string(batch_sizes[i]), bench::Cell(dse),
        bench::Cell(dse_scalar),
        std::to_string(dse.metrics.execution_phases),
        TablePrinter::Num(ToSecondsF(dse.metrics.stalled_time))};
    if (options.walls) {
      row.push_back(TablePrinter::Num(walls_ms[i * 2]));
      row.push_back(TablePrinter::Num(walls_ms[i * 2 + 1]));
    }
    table.AddRow(row);
  }
  if (options.csv) {
    table.PrintCsv(stdout);
  } else {
    table.Print(stdout);
  }
  std::printf(
      "\nExpected shape: broad plateau — response time is insensitive over\n"
      "a wide range (the paper's rationale for batching), degrading only\n"
      "at extreme sizes where scheduling becomes too coarse. The two DSE\n"
      "columns must agree exactly (kernel determinism contract); only the\n"
      "--walls columns may separate them.\n");
  return 0;
}
