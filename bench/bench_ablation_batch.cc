// Ablation: the DQP's batch size (paper Section 3.2: batches amortize
// fragment-switch overheads; footnote 1 notes the size can vary). In the
// simulator switching is free, so the visible effect is scheduling
// granularity: how promptly the processor returns to the highest-priority
// fragment and how well queues are kept drained.

#include <cstdio>

#include "bench_common.h"
#include "common/table_printer.h"

int main(int argc, char** argv) {
  using namespace dqsched;
  const auto options = bench::ParseOptions(argc, argv, /*default_scale=*/0.5);
  bench::PrintPreamble("Batch-size sensitivity of the DQP",
                       "ablation of Section 3.2's batching", options);

  plan::QuerySetup setup = plan::PaperFigure5Query(options.scale);
  setup.catalog.sources[0].delay.mean_us *= 3.0;  // give DSE work to overlap

  const int64_t batch_sizes[] = {16, 64, 128, 512, 2048, 8192};
  std::vector<bench::MeasureCell> cells;
  for (int64_t batch : batch_sizes) {
    core::MediatorConfig config = bench::DefaultConfig(options);
    config.strategy.dqp.batch_size = batch;
    cells.push_back([&setup, config, &options] {
      return bench::MeasureStrategy(setup, config, core::StrategyKind::kDse,
                                    options.repeats);
    });
  }
  const auto results = bench::RunCells(options, cells);

  TablePrinter table({"batch (tuples)", "DSE (s)", "execution phases",
                      "planning phases", "stalled (s)"});
  for (size_t i = 0; i < cells.size(); ++i) {
    const auto& dse = results[i];
    table.AddRow({std::to_string(batch_sizes[i]), bench::Cell(dse),
                  std::to_string(dse.metrics.execution_phases),
                  std::to_string(dse.metrics.planning_phases),
                  TablePrinter::Num(ToSecondsF(dse.metrics.stalled_time))});
  }
  if (options.csv) {
    table.PrintCsv(stdout);
  } else {
    table.Print(stdout);
  }
  std::printf(
      "\nExpected shape: broad plateau — response time is insensitive over\n"
      "a wide range (the paper's rationale for batching), degrading only\n"
      "at extreme sizes where scheduling becomes too coarse.\n");
  return 0;
}
