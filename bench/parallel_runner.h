// Forwarding shim: the work-stealing runner moved into the library
// (src/common/parallel_runner.h) so the fleet executor can drive shard
// threads through it. Bench binaries and tests keep their historical
// `dqsched::bench::ParallelRunner` spelling via this header.

#ifndef DQSCHED_BENCH_PARALLEL_RUNNER_H_
#define DQSCHED_BENCH_PARALLEL_RUNNER_H_

#include "common/parallel_runner.h"

namespace dqsched::bench {

using dqsched::ParallelRunner;
using dqsched::RunIndexed;

}  // namespace dqsched::bench

#endif  // DQSCHED_BENCH_PARALLEL_RUNNER_H_
