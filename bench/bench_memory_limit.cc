// Memory-limitation experiment (paper Section 4.2): the total memory
// available for the query is swept downward until operands spill and the
// DQO must split chains (the technique of the paper's [4]); below the
// feasibility floor (one join's operand + hash index alone exceeding the
// budget) execution is rejected rather than thrashing.

#include <cstdio>

#include "bench_common.h"
#include "common/table_printer.h"

int main(int argc, char** argv) {
  using namespace dqsched;
  const auto options = bench::ParseOptions(argc, argv, /*default_scale=*/0.3);
  bench::PrintPreamble("Memory-limitation sweep",
                       "Section 4.2 (handling memory limitations)", options);

  plan::QuerySetup setup = plan::PaperFigure5Query(options.scale);

  const double budgets_mb[] = {1, 2, 3, 4, 6, 8, 16, 32, 64};
  std::vector<bench::MeasureCell> cells;
  for (double mb : budgets_mb) {
    core::MediatorConfig config = bench::DefaultConfig(options);
    config.memory_budget_bytes = static_cast<int64_t>(mb * 1024 * 1024);
    cells.push_back([&setup, config, &options] {
      return bench::MeasureStrategy(setup, config, core::StrategyKind::kDse,
                                    options.repeats);
    });
  }
  const auto results = bench::RunCells(options, cells);

  TablePrinter table({"memory (MB)", "DSE (s)", "DQO splits",
                      "operand spills", "peak (MB)", "disk pages W",
                      "note"});
  for (size_t i = 0; i < std::size(budgets_mb); ++i) {
    const double mb = budgets_mb[i];
    const auto& dse = results[i];
    if (!dse.ok) {
      table.AddRow({TablePrinter::Num(mb, 0), "-", "-", "-", "-", "-",
                    "infeasible: " + dse.error});
      continue;
    }
    table.AddRow(
        {TablePrinter::Num(mb, 0), bench::Cell(dse),
         std::to_string(dse.metrics.dqo_splits),
         std::to_string(dse.metrics.operand_spills),
         TablePrinter::Num(
             static_cast<double>(dse.metrics.peak_memory_bytes) / 1048576.0,
             1),
         std::to_string(dse.metrics.disk.pages_written), ""});
  }
  if (options.csv) {
    table.PrintCsv(stdout);
  } else {
    table.Print(stdout);
  }
  std::printf(
      "\nExpected shape: ample memory -> no splits, fastest; shrinking\n"
      "memory -> spills and DQO splits add disk traffic and response time;\n"
      "below the feasibility floor execution is cleanly rejected.\n");
  return 0;
}
