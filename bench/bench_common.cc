#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/table_printer.h"

namespace dqsched::bench {

BenchOptions ParseOptions(int argc, char** argv, double default_scale) {
  BenchOptions options;
  options.scale = default_scale;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      options.scale = std::atof(arg + 8);
    } else if (std::strncmp(arg, "--repeats=", 10) == 0) {
      options.repeats = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      options.seed = static_cast<uint64_t>(std::atoll(arg + 7));
    } else if (std::strcmp(arg, "--csv") == 0) {
      options.csv = true;
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nusage: %s [--scale=F] [--repeats=N] "
                   "[--seed=N] [--csv]\n",
                   arg, argv[0]);
      std::exit(2);
    }
  }
  if (options.scale <= 0 || options.repeats < 1) {
    std::fprintf(stderr, "scale must be > 0 and repeats >= 1\n");
    std::exit(2);
  }
  return options;
}

core::MediatorConfig DefaultConfig(const BenchOptions& options) {
  core::MediatorConfig config;
  config.seed = options.seed;
  return config;
}

StrategyOutcome MeasureStrategy(const plan::QuerySetup& setup,
                                const core::MediatorConfig& config,
                                core::StrategyKind kind, int repeats) {
  StrategyOutcome outcome;
  double total = 0.0;
  for (int r = 0; r < repeats; ++r) {
    core::MediatorConfig run_config = config;
    run_config.seed = config.seed + static_cast<uint64_t>(r) * 7919;
    Result<core::Mediator> mediator =
        core::Mediator::Create(setup.catalog, setup.plan, run_config);
    if (!mediator.ok()) {
      outcome.error = mediator.status().ToString();
      return outcome;
    }
    Result<core::ExecutionMetrics> metrics = mediator->Execute(kind);
    if (!metrics.ok()) {
      outcome.error = metrics.status().ToString();
      return outcome;
    }
    total += ToSecondsF(metrics->response_time);
    outcome.metrics = *metrics;
  }
  outcome.ok = true;
  outcome.seconds = total / repeats;
  return outcome;
}

double LwbSeconds(const plan::QuerySetup& setup,
                  const core::MediatorConfig& config) {
  Result<core::Mediator> mediator =
      core::Mediator::Create(setup.catalog, setup.plan, config);
  if (!mediator.ok()) return -1.0;
  return ToSecondsF(mediator->LowerBound().bound());
}

std::string Cell(const StrategyOutcome& outcome) {
  if (!outcome.ok) return "FAIL(" + outcome.error + ")";
  return TablePrinter::Num(outcome.seconds);
}

std::string GainCell(const StrategyOutcome& seq, const StrategyOutcome& dse) {
  if (!seq.ok || !dse.ok || seq.seconds <= 0) return "";
  return TablePrinter::Num(100.0 * (seq.seconds - dse.seconds) / seq.seconds,
                           1);
}

void PrintPreamble(const char* title, const char* paper_artifact,
                   const BenchOptions& options) {
  std::printf("== %s ==\n", title);
  std::printf("reproduces: %s\n", paper_artifact);
  std::printf("scale=%.2f repeats=%d seed=%llu\n\n", options.scale,
              options.repeats,
              static_cast<unsigned long long>(options.seed));
}

void RunSlowOneRelationBench(const char* relation,
                             const char* paper_artifact,
                             const BenchOptions& options) {
  PrintPreamble(
      (std::string("One slowed-down input relation: ") + relation).c_str(),
      paper_artifact, options);
  const core::MediatorConfig config = DefaultConfig(options);

  plan::QuerySetup base = plan::PaperFigure5Query(options.scale);
  const SourceId slowed = base.catalog.Find(relation);
  if (slowed == kInvalidId) {
    std::fprintf(stderr, "unknown relation %s\n", relation);
    std::exit(2);
  }
  const int64_t n = base.catalog.source(slowed).relation.cardinality;
  const double base_total_s =
      static_cast<double>(n) * base.catalog.source(slowed).delay.mean_us /
      1e6;

  // X axis: total time to retrieve the slowed relation (paper's axis),
  // from the unslowed baseline up to ~10 s at scale 1.
  std::vector<double> targets_s = {base_total_s};
  for (double t = 2.0; t <= 10.01; t += 2.0) {
    const double scaled = t * options.scale;
    if (scaled > base_total_s * 1.01) targets_s.push_back(scaled);
  }

  TablePrinter table({"retrieval of " + std::string(relation) + " (s)",
                      "w (us)", "SEQ (s)", "DSE (s)", "MA (s)", "LWB (s)",
                      "DSE gain over SEQ (%)"});
  for (double target : targets_s) {
    plan::QuerySetup setup = base;
    const double w_us = target * 1e6 / static_cast<double>(n);
    setup.catalog.source(slowed).delay.mean_us = w_us;
    const StrategyOutcome seq =
        MeasureStrategy(setup, config, core::StrategyKind::kSeq,
                        options.repeats);
    const StrategyOutcome dse =
        MeasureStrategy(setup, config, core::StrategyKind::kDse,
                        options.repeats);
    const StrategyOutcome ma = MeasureStrategy(
        setup, config, core::StrategyKind::kMa, options.repeats);
    const double lwb = LwbSeconds(setup, config);
    table.AddRow({TablePrinter::Num(target, 2), TablePrinter::Num(w_us, 1),
                  Cell(seq), Cell(dse), Cell(ma), TablePrinter::Num(lwb),
                  GainCell(seq, dse)});
  }
  if (options.csv) {
    table.PrintCsv(stdout);
  } else {
    table.Print(stdout);
  }
  std::printf(
      "\nExpected shape (paper Section 5.2): SEQ grows linearly with the\n"
      "slowdown; MA is roughly flat and worst until SEQ crosses it; DSE\n"
      "stays well below SEQ and tracks LWB.\n");
}

}  // namespace dqsched::bench
