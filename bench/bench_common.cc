#include "bench_common.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/table_printer.h"

namespace dqsched::bench {

namespace {

/// Strict numeric parsers: the whole value must convert, so "--jobs=two"
/// is a usage error instead of a silent zero.
bool ParseDoubleArg(const char* text, double* out) {
  if (*text == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text, &end);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseIntArg(const char* text, long long* out) {
  if (*text == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(text, &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

std::optional<BenchOptions> TryParseOptions(int argc, char** argv,
                                            double default_scale,
                                            std::string* error) {
  BenchOptions options;
  options.scale = default_scale;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    long long n = 0;
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      if (!ParseDoubleArg(arg + 8, &options.scale)) {
        *error = std::string("bad value in ") + arg;
        return std::nullopt;
      }
    } else if (std::strncmp(arg, "--repeats=", 10) == 0) {
      if (!ParseIntArg(arg + 10, &n)) {
        *error = std::string("bad value in ") + arg;
        return std::nullopt;
      }
      options.repeats = static_cast<int>(n);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      if (!ParseIntArg(arg + 7, &n) || n < 0) {
        *error = std::string("bad value in ") + arg;
        return std::nullopt;
      }
      options.seed = static_cast<uint64_t>(n);
    } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
      if (!ParseIntArg(arg + 7, &n) || n < 0) {
        *error = std::string("bad value in ") + arg;
        return std::nullopt;
      }
      options.jobs = static_cast<int>(n);
    } else if (std::strcmp(arg, "--csv") == 0) {
      options.csv = true;
    } else if (std::strcmp(arg, "--walls") == 0) {
      options.walls = true;
    } else {
      *error = std::string("unknown flag ") + arg;
      return std::nullopt;
    }
  }
  if (options.scale <= 0) {
    *error = "scale must be > 0";
    return std::nullopt;
  }
  if (options.repeats < 1) {
    *error = "repeats must be >= 1";
    return std::nullopt;
  }
  return options;
}

BenchOptions ParseOptions(int argc, char** argv, double default_scale) {
  std::string error;
  std::optional<BenchOptions> options =
      TryParseOptions(argc, argv, default_scale, &error);
  if (!options) {
    std::fprintf(stderr,
                 "%s\nusage: %s [--scale=F] [--repeats=N] [--seed=N] "
                 "[--jobs=N] [--csv] [--walls]\n",
                 error.c_str(), argv[0]);
    std::exit(2);
  }
  return *options;
}

core::MediatorConfig DefaultConfig(const BenchOptions& options) {
  core::MediatorConfig config;
  config.seed = options.seed;
  return config;
}

StrategyOutcome MeasureStrategy(const plan::QuerySetup& setup,
                                const core::MediatorConfig& config,
                                core::StrategyKind kind, int repeats) {
  StrategyOutcome outcome;
  double total = 0.0;
  for (int r = 0; r < repeats; ++r) {
    core::MediatorConfig run_config = config;
    run_config.seed = config.seed + static_cast<uint64_t>(r) * 7919;
    Result<core::Mediator> mediator =
        core::Mediator::Create(setup.catalog, setup.plan, run_config);
    if (!mediator.ok()) {
      outcome.error = mediator.status().ToString();
      return outcome;
    }
    Result<core::ExecutionMetrics> metrics = mediator->Execute(kind);
    if (!metrics.ok()) {
      outcome.error = metrics.status().ToString();
      return outcome;
    }
    total += ToSecondsF(metrics->response_time);
    outcome.metrics = *metrics;
  }
  outcome.ok = true;
  outcome.seconds = total / repeats;
  return outcome;
}

StrategyOutcome MeasureScrambling(const plan::QuerySetup& setup,
                                  const core::MediatorConfig& config,
                                  SimDuration timeout, int repeats) {
  StrategyOutcome outcome;
  double total = 0.0;
  for (int r = 0; r < repeats; ++r) {
    core::MediatorConfig run_config = config;
    run_config.seed = config.seed + static_cast<uint64_t>(r) * 7919;
    Result<core::Mediator> mediator =
        core::Mediator::Create(setup.catalog, setup.plan, run_config);
    if (!mediator.ok()) {
      outcome.error = mediator.status().ToString();
      return outcome;
    }
    Result<core::ExecutionMetrics> metrics =
        mediator->ExecuteScrambling(timeout);
    if (!metrics.ok()) {
      outcome.error = metrics.status().ToString();
      return outcome;
    }
    total += ToSecondsF(metrics->response_time);
    outcome.metrics = *metrics;
  }
  outcome.ok = true;
  outcome.seconds = total / repeats;
  return outcome;
}

StrategyOutcome MeasureDphj(const plan::QuerySetup& setup,
                            const core::MediatorConfig& config,
                            int repeats) {
  StrategyOutcome outcome;
  double total = 0.0;
  for (int r = 0; r < repeats; ++r) {
    core::MediatorConfig run_config = config;
    run_config.seed = config.seed + static_cast<uint64_t>(r) * 7919;
    Result<core::Mediator> mediator =
        core::Mediator::Create(setup.catalog, setup.plan, run_config);
    if (!mediator.ok()) {
      outcome.error = mediator.status().ToString();
      return outcome;
    }
    Result<core::ExecutionMetrics> metrics = mediator->ExecuteDphj();
    if (!metrics.ok()) {
      outcome.error = metrics.status().ToString();
      return outcome;
    }
    total += ToSecondsF(metrics->response_time);
    outcome.metrics = *metrics;
  }
  outcome.ok = true;
  outcome.seconds = total / repeats;
  return outcome;
}

std::vector<StrategyOutcome> RunCells(const BenchOptions& options,
                                      const std::vector<MeasureCell>& cells) {
  const ParallelRunner runner(options.jobs);
  return RunIndexed<StrategyOutcome>(
      runner, cells.size(), [&cells](size_t i) { return cells[i](); });
}

double LwbSeconds(const plan::QuerySetup& setup,
                  const core::MediatorConfig& config) {
  Result<core::Mediator> mediator =
      core::Mediator::Create(setup.catalog, setup.plan, config);
  if (!mediator.ok()) return -1.0;
  return ToSecondsF(mediator->LowerBound().bound());
}

std::string Cell(const StrategyOutcome& outcome) {
  if (!outcome.ok) return "FAIL(" + outcome.error + ")";
  return TablePrinter::Num(outcome.seconds);
}

std::string GainCell(const StrategyOutcome& seq, const StrategyOutcome& dse) {
  if (!seq.ok || !dse.ok || seq.seconds <= 0) return "";
  return TablePrinter::Num(100.0 * (seq.seconds - dse.seconds) / seq.seconds,
                           1);
}

LatencySummary SummarizeLatencies(const std::vector<SimDuration>& latencies) {
  LatencySummary summary;
  if (latencies.empty()) return summary;
  std::vector<SimDuration> sorted = latencies;
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank: the smallest value with at least p% of the sample at or
  // below it — ceil(p * n) in 1-based ranks.
  auto rank = [&](double p) {
    const size_t n = sorted.size();
    size_t r = static_cast<size_t>(std::ceil(p * static_cast<double>(n)));
    if (r < 1) r = 1;
    if (r > n) r = n;
    return ToSecondsF(sorted[r - 1]);
  };
  summary.p50_s = rank(0.50);
  summary.p95_s = rank(0.95);
  summary.p99_s = rank(0.99);
  return summary;
}

std::string FormatStatusCounts(
    const std::array<int64_t, core::kNumQueryStatuses>& counts) {
  std::string out;
  for (int i = 0; i < core::kNumQueryStatuses; ++i) {
    if (counts[static_cast<size_t>(i)] == 0) continue;
    if (!out.empty()) out += ' ';
    out += core::QueryStatusName(static_cast<core::QueryStatus>(i));
    out += '=';
    out += std::to_string(counts[static_cast<size_t>(i)]);
  }
  if (out.empty()) out = "ok=0";
  return out;
}

void PrintPreamble(const char* title, const char* paper_artifact,
                   const BenchOptions& options) {
  std::printf("== %s ==\n", title);
  std::printf("reproduces: %s\n", paper_artifact);
  std::printf("scale=%.2f repeats=%d seed=%llu jobs=%d\n\n", options.scale,
              options.repeats,
              static_cast<unsigned long long>(options.seed),
              options.jobs > 0 ? options.jobs : ParallelRunner::DefaultJobs());
}

void RunSlowOneRelationBench(const char* relation,
                             const char* paper_artifact,
                             const BenchOptions& options) {
  PrintPreamble(
      (std::string("One slowed-down input relation: ") + relation).c_str(),
      paper_artifact, options);
  const core::MediatorConfig config = DefaultConfig(options);

  plan::QuerySetup base = plan::PaperFigure5Query(options.scale);
  const SourceId slowed = base.catalog.Find(relation);
  if (slowed == kInvalidId) {
    std::fprintf(stderr, "unknown relation %s\n", relation);
    std::exit(2);
  }
  const int64_t n = base.catalog.source(slowed).relation.cardinality;
  const double base_total_s =
      static_cast<double>(n) * base.catalog.source(slowed).delay.mean_us /
      1e6;

  // X axis: total time to retrieve the slowed relation (paper's axis),
  // from the unslowed baseline up to ~10 s at scale 1.
  std::vector<double> targets_s = {base_total_s};
  for (double t = 2.0; t <= 10.01; t += 2.0) {
    const double scaled = t * options.scale;
    if (scaled > base_total_s * 1.01) targets_s.push_back(scaled);
  }

  // Every (target, strategy) point and every LWB is an independent cell.
  std::vector<plan::QuerySetup> setups;
  std::vector<MeasureCell> cells;
  std::vector<double> w_values;
  for (double target : targets_s) {
    plan::QuerySetup setup = base;
    const double w_us = target * 1e6 / static_cast<double>(n);
    setup.catalog.source(slowed).delay.mean_us = w_us;
    w_values.push_back(w_us);
    setups.push_back(std::move(setup));
  }
  for (const plan::QuerySetup& setup : setups) {
    for (core::StrategyKind kind :
         {core::StrategyKind::kSeq, core::StrategyKind::kDse,
          core::StrategyKind::kMa}) {
      cells.push_back([&setup, &config, kind, &options] {
        return MeasureStrategy(setup, config, kind, options.repeats);
      });
    }
    cells.push_back([&setup, &config] {
      StrategyOutcome lwb;
      lwb.ok = true;
      lwb.seconds = LwbSeconds(setup, config);
      return lwb;
    });
  }
  const std::vector<StrategyOutcome> results = RunCells(options, cells);

  TablePrinter table({"retrieval of " + std::string(relation) + " (s)",
                      "w (us)", "SEQ (s)", "DSE (s)", "MA (s)", "LWB (s)",
                      "DSE gain over SEQ (%)"});
  for (size_t i = 0; i < targets_s.size(); ++i) {
    const StrategyOutcome& seq = results[4 * i];
    const StrategyOutcome& dse = results[4 * i + 1];
    const StrategyOutcome& ma = results[4 * i + 2];
    const StrategyOutcome& lwb = results[4 * i + 3];
    table.AddRow({TablePrinter::Num(targets_s[i], 2),
                  TablePrinter::Num(w_values[i], 1), Cell(seq), Cell(dse),
                  Cell(ma), TablePrinter::Num(lwb.seconds),
                  GainCell(seq, dse)});
  }
  if (options.csv) {
    table.PrintCsv(stdout);
  } else {
    table.Print(stdout);
  }
  std::printf(
      "\nExpected shape (paper Section 5.2): SEQ grows linearly with the\n"
      "slowdown; MA is roughly flat and worst until SEQ crosses it; DSE\n"
      "stays well below SEQ and tracks LWB.\n");
}

}  // namespace dqsched::bench
