// The paper's Section 6 outlook, measured: multi-query execution and the
// "classical tradeoff between throughput and response time". A mix of N
// paper-shaped queries runs serial vs shared, with SEQ vs DSE per query;
// the table reports the makespan (throughput side) and the mean response
// time (latency side).

#include <array>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/table_printer.h"
#include "core/multi_query.h"

int main(int argc, char** argv) {
  using namespace dqsched;
  // Peeled before the shared parser:
  //   --cache=<mode>  result cache: off | cold (enabled, every cell runs
  //                   on a fresh cache — byte-identical to off on every
  //                   non-wall column) | warm (one unmeasured run per
  //                   cell, then measure the repeat)
  enum class CacheMode { kOff, kCold, kWarm };
  CacheMode cache_mode = CacheMode::kCold;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--cache=", 0) == 0) {
      const std::string mode = arg.substr(8);
      if (mode == "off") {
        cache_mode = CacheMode::kOff;
      } else if (mode == "cold") {
        cache_mode = CacheMode::kCold;
      } else if (mode == "warm") {
        cache_mode = CacheMode::kWarm;
      } else {
        std::fprintf(stderr, "unknown --cache mode: %s\n", mode.c_str());
        return 2;
      }
    } else {
      rest.push_back(argv[i]);
    }
  }
  const auto options = bench::ParseOptions(static_cast<int>(rest.size()),
                                           rest.data(), /*default_scale=*/0.1);
  bench::PrintPreamble("Multi-query execution (throughput vs response time)",
                       "Section 6 (future work: multi-query execution)",
                       options);
  std::printf("cache: %s\n\n",
              cache_mode == CacheMode::kOff
                  ? "off"
                  : (cache_mode == CacheMode::kCold ? "cold" : "warm"));

  // One cell per (n, mode, strategy); each builds its own mix + mediator
  // so cells stay independent across worker threads.
  struct MultiCell {
    int n;
    core::MultiMode mode;
    core::StrategyKind kind;
  };
  std::vector<MultiCell> grid;
  for (int n : {1, 2, 4, 8}) {
    for (core::MultiMode mode :
         {core::MultiMode::kSerial, core::MultiMode::kShared}) {
      for (core::StrategyKind kind :
           {core::StrategyKind::kSeq, core::StrategyKind::kDse}) {
        grid.push_back({n, mode, kind});
      }
    }
  }
  // Large mixes stress the shared mediator's event loop (done-query
  // skipping, the all-starved arrival heap, incremental replans); serial
  // mode scales trivially in n and would dominate the wall clock, so the
  // wide axis is shared-only.
  for (int n : {16, 32, 64}) {
    for (core::StrategyKind kind :
         {core::StrategyKind::kSeq, core::StrategyKind::kDse}) {
      grid.push_back({n, core::MultiMode::kShared, kind});
    }
  }
  struct MultiOutcome {
    bool ok = false;
    std::string error;
    core::MultiQueryMetrics metrics;
    /// Host wall time of Execute — the only column that varies run to run
    /// (and with --jobs); every simulated metric is deterministic.
    double wall_ms = 0.0;
  };
  const ParallelRunner runner(options.jobs);
  const auto results = RunIndexed<MultiOutcome>(
      runner, grid.size(), [&grid, &options, cache_mode](size_t i) {
        const MultiCell& cell = grid[i];
        MultiOutcome out;
        std::vector<plan::QuerySetup> mix;
        for (int q = 0; q < cell.n; ++q) {
          // Stagger seeds so the queries are distinct workload instances.
          mix.push_back(plan::PaperFigure5Query(options.scale));
        }
        core::MultiQueryConfig config;
        config.seed = options.seed;
        config.cache.enabled = cache_mode != CacheMode::kOff;
        Result<core::MultiQueryMediator> mediator =
            core::MultiQueryMediator::Create(std::move(mix), config);
        if (!mediator.ok()) {
          out.error = mediator.status().ToString();
          return out;
        }
        // Each cell's mediator is fresh, so its first run is always cold;
        // warm mode repeats the identical mix once unmeasured so the
        // measured run serves hits.
        if (cache_mode == CacheMode::kWarm) {
          Result<core::MultiQueryMetrics> warmup =
              mediator->Execute(cell.kind, cell.mode);
          if (!warmup.ok()) {
            out.error = warmup.status().ToString();
            return out;
          }
        }
        const auto t0 = std::chrono::steady_clock::now();
        Result<core::MultiQueryMetrics> r =
            mediator->Execute(cell.kind, cell.mode);
        const auto t1 = std::chrono::steady_clock::now();
        if (!r.ok()) {
          out.error = r.status().ToString();
          return out;
        }
        out.ok = true;
        out.metrics = *r;
        out.wall_ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        return out;
      });

  // The latency distribution next to its mean: per-query completion
  // times summarized as nearest-rank percentiles (SummarizeLatencies).
  std::vector<std::string> headers = {
      "queries", "mode",    "per-query", "makespan (s)",
      "mean response (s)",  "p50 (s)",   "p95 (s)",
      "p99 (s)", "statuses", "total degradations",
      "c-hits",  "c-miss",  "c-stale",   "c-evict"};
  if (options.walls) headers.push_back("wall (ms)");
  TablePrinter table(std::move(headers));
  for (size_t i = 0; i < grid.size(); ++i) {
    const MultiCell& cell = grid[i];
    const MultiOutcome& r = results[i];
    if (!r.ok) {
      std::fprintf(stderr, "n=%d %s/%s: %s\n", cell.n,
                   core::MultiModeName(cell.mode),
                   core::StrategyName(cell.kind), r.error.c_str());
      return 1;
    }
    const bench::LatencySummary lat =
        bench::SummarizeLatencies(r.metrics.response_times);
    std::array<int64_t, core::kNumQueryStatuses> counts{};
    for (core::QueryStatus st : r.metrics.statuses) {
      ++counts[static_cast<size_t>(st)];
    }
    std::vector<std::string> row = {
        std::to_string(cell.n), core::MultiModeName(cell.mode),
        core::StrategyName(cell.kind),
        TablePrinter::Num(ToSecondsF(r.metrics.makespan)),
        TablePrinter::Num(ToSecondsF(r.metrics.mean_response)),
        TablePrinter::Num(lat.p50_s), TablePrinter::Num(lat.p95_s),
        TablePrinter::Num(lat.p99_s), bench::FormatStatusCounts(counts),
        std::to_string(r.metrics.total_degradations),
        std::to_string(r.metrics.cache.segment_hits +
                       r.metrics.cache.result_hits),
        std::to_string(r.metrics.cache.segment_misses +
                       r.metrics.cache.result_misses),
        std::to_string(r.metrics.cache.stale_invalidations),
        std::to_string(r.metrics.cache.evictions)};
    if (options.walls) row.push_back(TablePrinter::Num(r.wall_ms));
    table.AddRow(std::move(row));
  }
  if (options.csv) {
    table.PrintCsv(stdout);
  } else {
    table.Print(stdout);
  }
  std::printf(
      "\nExpected shape (paper Section 6): sharing improves the makespan\n"
      "(delays of one query absorbed by another's work) at some cost in\n"
      "early queries' response times; DSE compounds with sharing because\n"
      "it keeps every wrapper of every query flowing.\n");
  return 0;
}
