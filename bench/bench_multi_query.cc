// The paper's Section 6 outlook, measured: multi-query execution and the
// "classical tradeoff between throughput and response time". A mix of N
// paper-shaped queries runs serial vs shared, with SEQ vs DSE per query;
// the table reports the makespan (throughput side) and the mean response
// time (latency side).

#include <cstdio>

#include "bench_common.h"
#include "common/table_printer.h"
#include "core/multi_query.h"

int main(int argc, char** argv) {
  using namespace dqsched;
  const auto options = bench::ParseOptions(argc, argv, /*default_scale=*/0.1);
  bench::PrintPreamble("Multi-query execution (throughput vs response time)",
                       "Section 6 (future work: multi-query execution)",
                       options);

  TablePrinter table({"queries", "mode", "per-query", "makespan (s)",
                      "mean response (s)", "total degradations"});
  for (int n : {1, 2, 4, 8}) {
    std::vector<plan::QuerySetup> mix;
    for (int i = 0; i < n; ++i) {
      // Stagger seeds so the queries are distinct workload instances.
      mix.push_back(plan::PaperFigure5Query(options.scale));
    }
    core::MultiQueryConfig config;
    config.seed = options.seed;
    Result<core::MultiQueryMediator> mediator =
        core::MultiQueryMediator::Create(std::move(mix), config);
    if (!mediator.ok()) {
      std::fprintf(stderr, "%s\n", mediator.status().ToString().c_str());
      return 1;
    }
    for (core::MultiMode mode :
         {core::MultiMode::kSerial, core::MultiMode::kShared}) {
      for (core::StrategyKind kind :
           {core::StrategyKind::kSeq, core::StrategyKind::kDse}) {
        Result<core::MultiQueryMetrics> r = mediator->Execute(kind, mode);
        if (!r.ok()) {
          std::fprintf(stderr, "n=%d %s/%s: %s\n", n,
                       core::MultiModeName(mode), core::StrategyName(kind),
                       r.status().ToString().c_str());
          return 1;
        }
        table.AddRow({std::to_string(n), core::MultiModeName(mode),
                      core::StrategyName(kind),
                      TablePrinter::Num(ToSecondsF(r->makespan)),
                      TablePrinter::Num(ToSecondsF(r->mean_response)),
                      std::to_string(r->total_degradations)});
      }
    }
  }
  if (options.csv) {
    table.PrintCsv(stdout);
  } else {
    table.Print(stdout);
  }
  std::printf(
      "\nExpected shape (paper Section 6): sharing improves the makespan\n"
      "(delays of one query absorbed by another's work) at some cost in\n"
      "early queries' response times; DSE compounds with sharing because\n"
      "it keeps every wrapper of every query flowing.\n");
  return 0;
}
