// Reproduces the claim of paper Sections 1.3 and 6: DSE "applies to any
// kind of delay (initial delay, bursty arrival and slow delivery)" — the
// three delay classes of [2] — whereas scrambling-style reactions target
// only specific ones. Relation A receives each delay shape in turn.

#include <cstdio>

#include "bench_common.h"
#include "common/table_printer.h"

int main(int argc, char** argv) {
  using namespace dqsched;
  const auto options = bench::ParseOptions(argc, argv, /*default_scale=*/0.5);
  bench::PrintPreamble("Delay-type comparison on relation A",
                       "Sections 1.2/1.3/6 (initial / bursty / slow delays)",
                       options);
  const core::MediatorConfig config = bench::DefaultConfig(options);

  struct Case {
    const char* label;
    wrapper::DelayConfig delay;
  };
  std::vector<Case> cases;
  {
    Case c{"baseline (uniform w_min)", {}};
    cases.push_back(c);
  }
  {
    Case c{"initial delay (+2 s first tuple)", {}};
    c.delay.kind = wrapper::DelayKind::kInitial;
    c.delay.initial_delay_ms = 2000.0 * options.scale;
    cases.push_back(c);
  }
  {
    Case c{"bursty (2000-tuple bursts, 100 ms gaps)", {}};
    c.delay.kind = wrapper::DelayKind::kBursty;
    c.delay.burst_length = 2000;
    c.delay.burst_gap_ms = 100.0;
    cases.push_back(c);
  }
  {
    Case c{"slow delivery (4x w_min)", {}};
    c.delay.kind = wrapper::DelayKind::kSlow;
    c.delay.slow_factor = 4.0;
    cases.push_back(c);
  }

  std::vector<plan::QuerySetup> setups;
  for (const Case& c : cases) {
    plan::QuerySetup setup = plan::PaperFigure5Query(options.scale);
    setup.catalog.sources[0].delay = c.delay;
    setups.push_back(std::move(setup));
  }
  std::vector<bench::MeasureCell> cells;
  for (const plan::QuerySetup& setup : setups) {
    for (core::StrategyKind kind :
         {core::StrategyKind::kSeq, core::StrategyKind::kDse,
          core::StrategyKind::kMa}) {
      cells.push_back([&setup, &config, kind, &options] {
        return bench::MeasureStrategy(setup, config, kind, options.repeats);
      });
    }
    cells.push_back([&setup, &config] {
      bench::StrategyOutcome lwb;
      lwb.ok = true;
      lwb.seconds = bench::LwbSeconds(setup, config);
      return lwb;
    });
  }
  const auto results = bench::RunCells(options, cells);

  TablePrinter table({"delay type of A", "SEQ (s)", "DSE (s)", "MA (s)",
                      "LWB (s)", "DSE gain (%)"});
  for (size_t i = 0; i < cases.size(); ++i) {
    const auto& seq = results[4 * i];
    const auto& dse = results[4 * i + 1];
    table.AddRow({cases[i].label, bench::Cell(seq), bench::Cell(dse),
                  bench::Cell(results[4 * i + 2]),
                  TablePrinter::Num(results[4 * i + 3].seconds),
                  bench::GainCell(seq, dse)});
  }
  if (options.csv) {
    table.PrintCsv(stdout);
  } else {
    table.Print(stdout);
  }
  std::printf(
      "\nExpected shape: DSE improves on SEQ under every delay type —\n"
      "including slow delivery, which timeout-based scrambling cannot\n"
      "address (paper Section 5.4).\n");
  return 0;
}
