// DSE vs query scrambling (the paper's Section 1.2 comparison, made
// measurable). Two tables:
//  1. the three delay classes of [2] under SEQ / SCR / DSE — scrambling
//     reacts to initial and (long) bursty gaps but is blind to slow
//     delivery, DSE handles all three (paper Sections 1.3, 5.4);
//  2. the timeout-tuning problem: SCR's response under a slowed source as
//     the timeout sweeps from hair-trigger to never-fires.

#include <cstdio>

#include "bench_common.h"
#include "common/table_printer.h"

int main(int argc, char** argv) {
  using namespace dqsched;
  const auto options = bench::ParseOptions(argc, argv, /*default_scale=*/0.3);
  bench::PrintPreamble("DSE vs query scrambling (phase 1)",
                       "Sections 1.2/1.3/5.4 (comparison with scrambling)",
                       options);
  const core::MediatorConfig config = bench::DefaultConfig(options);

  struct Case {
    const char* label;
    wrapper::DelayConfig delay;
  };
  std::vector<Case> cases;
  {
    Case c{"initial delay on A (+2 s)", {}};
    c.delay.kind = wrapper::DelayKind::kInitial;
    c.delay.initial_delay_ms = 2000.0;
    cases.push_back(c);
  }
  {
    Case c{"bursty A (1000-tuple bursts, 200 ms gaps)", {}};
    c.delay.kind = wrapper::DelayKind::kBursty;
    c.delay.burst_length = 1000;
    c.delay.burst_gap_ms = 200.0;
    cases.push_back(c);
  }
  {
    Case c{"slow delivery A (6x w_min)", {}};
    c.delay.kind = wrapper::DelayKind::kSlow;
    c.delay.slow_factor = 6.0;
    cases.push_back(c);
  }

  std::vector<plan::QuerySetup> setups;
  for (const Case& c : cases) {
    plan::QuerySetup setup = plan::PaperFigure5Query(options.scale);
    setup.catalog.sources[0].delay = c.delay;
    setups.push_back(std::move(setup));
  }
  std::vector<bench::MeasureCell> cells;
  for (const plan::QuerySetup& setup : setups) {
    for (core::StrategyKind kind :
         {core::StrategyKind::kSeq, core::StrategyKind::kDse}) {
      cells.push_back([&setup, &config, kind, &options] {
        return bench::MeasureStrategy(setup, config, kind, options.repeats);
      });
    }
    cells.push_back([&setup, &config, &options] {
      return bench::MeasureScrambling(setup, config, Milliseconds(20),
                                      options.repeats);
    });
  }
  const auto results = bench::RunCells(options, cells);

  TablePrinter table({"delay type of A", "SEQ (s)", "SCR (s)",
                      "SCR steps", "DSE (s)"});
  for (size_t i = 0; i < cases.size(); ++i) {
    const auto& seq = results[3 * i];
    const auto& dse = results[3 * i + 1];
    const auto& scr = results[3 * i + 2];
    table.AddRow({cases[i].label, bench::Cell(seq),
                  scr.ok ? TablePrinter::Num(scr.seconds) : "FAIL",
                  scr.ok ? std::to_string(scr.metrics.timeouts) : "-",
                  bench::Cell(dse)});
  }
  if (options.csv) {
    table.PrintCsv(stdout);
  } else {
    table.Print(stdout);
  }
  std::printf(
      "\nExpected shape: SCR ~ DSE on initial delays (its home turf), SCR\n"
      "~ SEQ on slow delivery (no gap ever trips the timeout; 0 steps),\n"
      "DSE good everywhere (paper Section 5.4).\n\n");

  // Table 2: the timeout knob.
  std::printf("-- timeout sensitivity (A slowed 6x) --\n");
  plan::QuerySetup setup = plan::PaperFigure5Query(options.scale);
  setup.catalog.sources[0].delay.kind = wrapper::DelayKind::kBursty;
  setup.catalog.sources[0].delay.burst_length = 500;
  setup.catalog.sources[0].delay.burst_gap_ms = 120.0;
  const double timeouts_ms[] = {1.0, 5.0, 20.0, 60.0, 150.0, 1000.0};
  std::vector<bench::MeasureCell> sweep_cells;
  for (double ms : timeouts_ms) {
    sweep_cells.push_back([&setup, &config, ms, &options] {
      return bench::MeasureScrambling(setup, config, Milliseconds(ms),
                                      options.repeats);
    });
  }
  const auto sweep_results = bench::RunCells(options, sweep_cells);

  TablePrinter sweep({"SCR timeout (ms)", "response (s)", "scrambling steps",
                      "materializations"});
  for (size_t i = 0; i < std::size(timeouts_ms); ++i) {
    const double ms = timeouts_ms[i];
    const auto& scr = sweep_results[i];
    if (!scr.ok) {
      sweep.AddRow({TablePrinter::Num(ms, 0), "FAIL", "-", "-"});
      continue;
    }
    sweep.AddRow({TablePrinter::Num(ms, 0), TablePrinter::Num(scr.seconds),
                  std::to_string(scr.metrics.timeouts),
                  std::to_string(scr.metrics.degradations)});
  }
  if (options.csv) {
    sweep.PrintCsv(stdout);
  } else {
    sweep.Print(stdout);
  }
  std::printf(
      "\nExpected shape: too large a timeout never reacts and collapses\n"
      "toward SEQ; small timeouts trigger orders of magnitude more\n"
      "scrambling steps for the same outcome (pure overhead in a real\n"
      "engine, where every step re-plans). The workable setting depends on\n"
      "the burst gap, unknown in advance — the configuration difficulty\n"
      "the paper cites (Section 1.2).\n");
  return 0;
}
