// Ablation: per-wrapper queue capacity (paper Section 2.1's window
// protocol: "a queue of a given size"). Small queues throttle wrappers
// aggressively (retrievals stretch); large queues buffer bursts at the
// cost of mediator memory.

#include <cstdio>

#include "bench_common.h"
#include "common/table_printer.h"

int main(int argc, char** argv) {
  using namespace dqsched;
  const auto options = bench::ParseOptions(argc, argv, /*default_scale=*/0.5);
  bench::PrintPreamble("Queue-capacity sensitivity (window protocol)",
                       "ablation of Section 2.1's flow control", options);

  plan::QuerySetup setup = plan::PaperFigure5Query(options.scale);

  const int64_t capacities[] = {64, 256, 1024, 4096, 16384};
  std::vector<bench::MeasureCell> cells;
  for (int64_t capacity : capacities) {
    core::MediatorConfig config = bench::DefaultConfig(options);
    config.comm.queue_capacity = capacity;
    for (core::StrategyKind kind :
         {core::StrategyKind::kSeq, core::StrategyKind::kDse}) {
      cells.push_back([&setup, config, kind, &options] {
        return bench::MeasureStrategy(setup, config, kind, options.repeats);
      });
    }
  }
  const auto results = bench::RunCells(options, cells);

  TablePrinter table(
      {"queue capacity (tuples)", "SEQ (s)", "DSE (s)", "DSE gain (%)"});
  for (size_t i = 0; i < std::size(capacities); ++i) {
    const auto& seq = results[2 * i];
    const auto& dse = results[2 * i + 1];
    table.AddRow({std::to_string(capacities[i]), bench::Cell(seq),
                  bench::Cell(dse), bench::GainCell(seq, dse)});
  }
  if (options.csv) {
    table.PrintCsv(stdout);
  } else {
    table.Print(stdout);
  }
  std::printf(
      "\nExpected shape: SEQ benefits from larger queues (other wrappers\n"
      "prefill while it drains one stream); DSE is largely insensitive —\n"
      "it keeps every queue moving regardless of capacity.\n");
  return 0;
}
