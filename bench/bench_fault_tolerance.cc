// Source fault injection on the paper's Figure 6 workload (DESIGN.md §8):
// relation A — which gates half the plan — is slowed to the bench target
// and then hit with each fault scenario. All-or-nothing strategies (SEQ,
// strict DSE, SCR) must survive transient faults exactly and abort
// Unavailable on permanent death; DSE under the partial-result policy
// degrades gracefully and reports how much of the answer survived.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/table_printer.h"

int main(int argc, char** argv) {
  using namespace dqsched;
  const auto options = bench::ParseOptions(argc, argv, /*default_scale=*/0.25);
  bench::PrintPreamble("Source faults on the slowed-A workload",
                       "Section 5.2 workload under injected source faults",
                       options);
  const core::MediatorConfig strict = bench::DefaultConfig(options);
  core::MediatorConfig partial = strict;
  partial.strategy.fault.partial_results = true;

  plan::QuerySetup base = plan::PaperFigure5Query(options.scale);
  const SourceId a = base.catalog.Find("A");
  if (a == kInvalidId) {
    std::fprintf(stderr, "relation A missing from the figure-5 query\n");
    return 2;
  }
  const int64_t card = base.catalog.source(a).relation.cardinality;
  // Fig6 idiom: retrieval of A targets 4 s at scale 1.
  base.catalog.source(a).delay.mean_us =
      4.0 * options.scale * 1e6 / static_cast<double>(card);
  const int64_t fault_at = card / 5;

  struct Scenario {
    const char* label;
    wrapper::FaultSchedule faults;
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back({"none", {}});
  {
    Scenario s{"stall 300 ms", {}};
    wrapper::FaultSpec f;
    f.kind = wrapper::FaultKind::kStall;
    f.at_tuple = fault_at;
    f.stall = Milliseconds(300);
    s.faults.events = {f};
    scenarios.push_back(s);
  }
  {
    Scenario s{"disconnect + replay", {}};
    wrapper::FaultSpec f;
    f.kind = wrapper::FaultKind::kDisconnect;
    f.at_tuple = fault_at;
    f.failed_attempts = 2;
    f.backoff_initial = Milliseconds(20);
    f.replay_from_scratch = true;
    s.faults.events = {f};
    scenarios.push_back(s);
  }
  {
    Scenario s{"permanent death", {}};
    wrapper::FaultSpec f;
    f.kind = wrapper::FaultKind::kDeath;
    f.at_tuple = fault_at;
    s.faults.events = {f};
    scenarios.push_back(s);
  }

  std::vector<plan::QuerySetup> setups;
  for (const Scenario& s : scenarios) {
    plan::QuerySetup setup = base;
    setup.catalog.source(a).faults = s.faults;
    setups.push_back(std::move(setup));
  }

  // The exact answer's cardinality, for the completeness column.
  int64_t reference_card = -1;
  {
    Result<core::Mediator> m =
        core::Mediator::Create(base.catalog, base.plan, strict);
    if (m.ok()) reference_card = m->reference().result_card;
  }

  std::vector<bench::MeasureCell> cells;
  for (const plan::QuerySetup& setup : setups) {
    for (core::StrategyKind kind :
         {core::StrategyKind::kSeq, core::StrategyKind::kDse}) {
      cells.push_back([&setup, &strict, kind, &options] {
        return bench::MeasureStrategy(setup, strict, kind, options.repeats);
      });
    }
    cells.push_back([&setup, &partial, &options] {
      return bench::MeasureStrategy(setup, partial, core::StrategyKind::kDse,
                                    options.repeats);
    });
    cells.push_back([&setup, &strict, &options] {
      return bench::MeasureScrambling(setup, strict, Milliseconds(20),
                                      options.repeats);
    });
  }
  const auto results = bench::RunCells(options, cells);

  TablePrinter table({"fault on A", "SEQ (s)", "DSE (s)", "DSE partial (s)",
                      "SCR (s)", "answer kept", "fault summary"});
  for (size_t i = 0; i < scenarios.size(); ++i) {
    const auto& seq = results[4 * i];
    const auto& dse = results[4 * i + 1];
    const auto& dse_partial = results[4 * i + 2];
    const auto& scr = results[4 * i + 3];
    std::string kept = "-";
    std::string summary = "-";
    if (dse_partial.ok) {
      const core::FaultStats& f = dse_partial.metrics.fault;
      if (reference_card > 0) {
        kept = TablePrinter::Num(
            static_cast<double>(dse_partial.metrics.result_count) /
                static_cast<double>(reference_card),
            3);
      }
      if (f.any()) {
        summary = "suspected=" + std::to_string(f.sources_suspected) +
                  " dead=" + std::to_string(f.sources_dead) +
                  " dup-dropped=" + std::to_string(f.replays_discarded) +
                  (f.partial_result ? " partial" : "");
      }
    }
    table.AddRow({scenarios[i].label, bench::Cell(seq), bench::Cell(dse),
                  bench::Cell(dse_partial), bench::Cell(scr), kept, summary});
  }
  if (options.csv) {
    table.PrintCsv(stdout);
  } else {
    table.Print(stdout);
  }
  std::printf(
      "\nExpected shape: transient faults (stall, disconnect) cost every\n"
      "strategy some stalled time but all finish with the exact answer;\n"
      "permanent death fails SEQ / strict DSE / SCR with Unavailable while\n"
      "DSE under the partial-result policy returns the surviving fraction\n"
      "of the answer and names the dead source in the fault summary.\n");
  return 0;
}
