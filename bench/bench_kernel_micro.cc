// Micro-benchmarks (google-benchmark) isolating the operator kernels the
// executor spins on: filter evaluation (tuple-at-a-time push_back vs
// selection-vector refine), hash-join probes (branchy per-tuple walk vs
// the two-pass vectorized hash+count/expand pipeline), and the adaptive
// FilterManager's permuted multi-term evaluation. Sweeps batch size,
// filter selectivity, and probe match fanout; bench_suite measures the
// end-to-end effect, this binary isolates the kernels.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "exec/filter_manager.h"
#include "exec/hash_index.h"
#include "exec/tuple_id_list.h"
#include "storage/tuple.h"

namespace dqsched {
namespace {

using exec::FilterManager;
using exec::HashIndex;
using exec::TupleIdList;
using storage::Tuple;

constexpr int32_t kFilterNode = 11;

std::vector<Tuple> MakeBatch(int64_t n, uint64_t seed) {
  std::vector<Tuple> batch(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    Tuple& t = batch[static_cast<size_t>(i)];
    t.rowid = storage::Mix64(seed + static_cast<uint64_t>(i));
    for (int k = 0; k < storage::kTupleKeyFields; ++k) {
      t.keys[k] = static_cast<int64_t>(
          storage::Mix64(t.rowid + static_cast<uint64_t>(k)));
    }
  }
  return batch;
}

/// Build-side tuples with `fanout` duplicates of each key the probe batch
/// uses, so every probe finds exactly `fanout` matches.
std::vector<Tuple> MakeBuildSide(const std::vector<Tuple>& probes,
                                 int key_field, int64_t fanout) {
  std::vector<Tuple> build;
  build.reserve(probes.size() * static_cast<size_t>(fanout));
  for (const Tuple& p : probes) {
    for (int64_t d = 0; d < fanout; ++d) {
      Tuple t = p;
      t.rowid = storage::Mix64(p.rowid + static_cast<uint64_t>(d) + 7);
      t.keys[key_field] = p.keys[key_field];
      build.push_back(t);
    }
  }
  return build;
}

double SelectivityArg(int64_t permille) {
  return static_cast<double>(permille) / 1000.0;
}

/// Scalar filter: the pre-vectorization kernel — evaluate, push_back.
void BM_FilterScalar(benchmark::State& state) {
  const int64_t batch = state.range(0);
  const double sel = SelectivityArg(state.range(1));
  const std::vector<Tuple> in = MakeBatch(batch, 42);
  std::vector<Tuple> out;
  out.reserve(in.size());
  for (auto _ : state) {
    out.clear();
    for (const Tuple& t : in) {
      if (storage::FilterPasses(t.rowid, kFilterNode, sel)) {
        out.push_back(t);
      }
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_FilterScalar)
    ->ArgsProduct({{256, 2048, 8192}, {50, 500, 950}});

/// Vectorized filter: refine the selection vector in place; tuples are
/// not copied (the sink compaction, when needed, happens once per batch).
void BM_FilterVectorized(benchmark::State& state) {
  const int64_t batch = state.range(0);
  const double sel = SelectivityArg(state.range(1));
  const std::vector<Tuple> in = MakeBatch(batch, 42);
  TupleIdList list;
  for (auto _ : state) {
    list.Resize(static_cast<uint32_t>(batch));
    list.AddAll();
    list.Refine([&](uint32_t id) {
      return storage::FilterPasses(in[id].rowid, kFilterNode, sel);
    });
    benchmark::DoNotOptimize(list.Count());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_FilterVectorized)
    ->ArgsProduct({{256, 2048, 8192}, {50, 500, 950}});

/// Scalar probe: per-tuple prefetch-one-ahead, walk, push_back per match.
void BM_ProbeScalar(benchmark::State& state) {
  const int64_t batch = state.range(0);
  const int64_t fanout = state.range(1);
  const int key_field = 0;
  const std::vector<Tuple> probes = MakeBatch(batch, 42);
  const std::vector<Tuple> build = MakeBuildSide(probes, key_field, fanout);
  HashIndex index;
  index.Build(build, key_field);
  std::vector<Tuple> out;
  out.reserve(static_cast<size_t>(batch * (fanout ? fanout : 1)));
  for (auto _ : state) {
    out.clear();
    for (size_t i = 0; i < probes.size(); ++i) {
      if (i + 1 < probes.size()) {
        index.Prefetch(probes[i + 1].keys[key_field]);
      }
      const Tuple& t = probes[i];
      index.ForEachMatch(t.keys[key_field], [&](size_t idx) {
        Tuple r = t;
        r.rowid = storage::CombineRowid(build[idx].rowid, t.rowid);
        out.push_back(r);
      });
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ProbeScalar)->ArgsProduct({{256, 2048, 8192}, {0, 1, 4}});

/// Vectorized probe: hash the whole batch (prefetching home slots),
/// resolve each probe to its first-match slot + build-time duplicate
/// count with the prefetcher running ahead, expand into a pre-sized
/// buffer — the executor's two-pass kernel.
void BM_ProbeVectorized(benchmark::State& state) {
  const int64_t batch = state.range(0);
  const int64_t fanout = state.range(1);
  const int key_field = 0;
  const std::vector<Tuple> probes = MakeBatch(batch, 42);
  const std::vector<Tuple> build = MakeBuildSide(probes, key_field, fanout);
  HashIndex index;
  index.Build(build, key_field);
  constexpr uint32_t kDist = 8;
  const uint32_t n = static_cast<uint32_t>(batch);
  std::vector<uint64_t> homes(n);
  std::vector<uint32_t> counts(n);
  std::vector<Tuple> out;
  for (auto _ : state) {
    for (uint32_t i = 0; i < n; ++i) {
      homes[i] = index.HomeSlot(probes[i].keys[key_field]);
    }
    for (uint32_t i = 0; i < (n < kDist ? n : kDist); ++i) {
      index.PrefetchSlot(homes[i]);
    }
    int64_t total = 0;
    for (uint32_t i = 0; i < n; ++i) {
      if (i + kDist < n) index.PrefetchSlot(homes[i + kDist]);
      homes[i] = index.FindFirstMatchFrom(homes[i], probes[i].keys[key_field]);
      counts[i] =
          homes[i] == HashIndex::kNoMatch ? 0 : index.MatchCountAt(homes[i]);
      total += counts[i];
    }
    if (static_cast<int64_t>(out.size()) < total) {
      out.resize(static_cast<size_t>(total));
    }
    Tuple* dst = out.data();
    int64_t off = 0;
    for (uint32_t i = 0; i < n; ++i) {
      if (counts[i] == 0) continue;
      const Tuple& t = probes[i];
      index.ForEachMatchFromN(homes[i], t.keys[key_field], counts[i],
                              [&](size_t idx) {
                                Tuple r = t;
                                r.rowid = storage::CombineRowid(
                                    build[idx].rowid, t.rowid);
                                dst[off++] = r;
                              });
    }
    benchmark::DoNotOptimize(dst);
    benchmark::DoNotOptimize(off);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ProbeVectorized)->ArgsProduct({{256, 2048, 8192}, {0, 1, 4}});

plan::ChainOp FilterTerm(int32_t node, double selectivity) {
  plan::ChainOp op;
  op.kind = plan::ChainOpKind::kFilter;
  op.node = node;
  op.selectivity = selectivity;
  return op;
}

/// Multi-term filter run through the FilterManager: adaptive (permuted
/// dense bitmaps with canonical charge recovery) vs canonical-order
/// short-circuit, over a mix of cheap selective and permissive terms.
void BM_FilterManagerRun(benchmark::State& state) {
  const int64_t batch = state.range(0);
  const bool adaptive = state.range(1) != 0;
  const std::vector<Tuple> in = MakeBatch(batch, 42);
  FilterManager manager(
      {FilterTerm(11, 0.9), FilterTerm(12, 0.1), FilterTerm(13, 0.5)},
      adaptive);
  TupleIdList sel;
  std::vector<int64_t> charges;
  for (auto _ : state) {
    sel.Resize(static_cast<uint32_t>(batch));
    sel.AddAll();
    charges.clear();
    manager.Run(in.data(), &sel, &charges);
    benchmark::DoNotOptimize(sel.Count());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_FilterManagerRun)
    ->ArgsProduct({{2048, 8192}, {0, 1}});

}  // namespace
}  // namespace dqsched

BENCHMARK_MAIN();
