#include "common/table_printer.h"

#include <algorithm>

#include "common/macros.h"

namespace dqsched {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  DQS_CHECK_MSG(cells.size() == header_.size(),
                "row arity %zu != header arity %zu", cells.size(),
                header_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void TablePrinter::Print(std::FILE* out) const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%-*s", c == 0 ? "| " : " | ",
                   static_cast<int>(width[c]), row[c].c_str());
    }
    std::fprintf(out, " |\n");
  };
  print_row(header_);
  for (size_t c = 0; c < header_.size(); ++c) {
    std::fprintf(out, "%s%s", c == 0 ? "|-" : "-|-",
                 std::string(width[c], '-').c_str());
  }
  std::fprintf(out, "-|\n");
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv(std::FILE* out) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%s", c == 0 ? "" : ",", row[c].c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace dqsched
