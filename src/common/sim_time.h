// Virtual (simulated) time. All timing in dqsched is discrete-event
// simulated; SimTime counts nanoseconds of virtual time since the start of a
// query execution. Using an integer tick avoids the accumulation drift a
// double-based clock would suffer over hundreds of millions of events.

#ifndef DQSCHED_COMMON_SIM_TIME_H_
#define DQSCHED_COMMON_SIM_TIME_H_

#include <cstdint>
#include <limits>
#include <string>

namespace dqsched {

/// Virtual time in nanoseconds.
using SimTime = int64_t;

/// Virtual duration in nanoseconds (same representation as SimTime).
using SimDuration = int64_t;

/// Sentinel meaning "no scheduled event" / "never".
inline constexpr SimTime kSimTimeNever = std::numeric_limits<int64_t>::max();

inline constexpr SimDuration Nanoseconds(int64_t n) { return n; }
inline constexpr SimDuration Microseconds(double us) {
  return static_cast<SimDuration>(us * 1e3);
}
inline constexpr SimDuration Milliseconds(double ms) {
  return static_cast<SimDuration>(ms * 1e6);
}
inline constexpr SimDuration Seconds(double s) {
  return static_cast<SimDuration>(s * 1e9);
}

inline constexpr double ToMicros(SimDuration d) { return d / 1e3; }
inline constexpr double ToMillis(SimDuration d) { return d / 1e6; }
inline constexpr double ToSecondsF(SimDuration d) { return d / 1e9; }

/// Human-readable rendering with an adaptive unit, e.g. "12.3 ms", "4.56 s".
std::string FormatDuration(SimDuration d);

}  // namespace dqsched

#endif  // DQSCHED_COMMON_SIM_TIME_H_
