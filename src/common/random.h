// Deterministic pseudo-random number generation.
//
// Every stochastic component of the simulator (delay models, data
// generation, the query generator) draws from an explicitly seeded Rng so
// that a (configuration, seed) pair fully determines an execution — a core
// requirement for the reproducibility tests in tests/.

#ifndef DQSCHED_COMMON_RANDOM_H_
#define DQSCHED_COMMON_RANDOM_H_

#include <cstdint>

#include "common/macros.h"

namespace dqsched {

/// xoshiro256** generator seeded via SplitMix64. Fast, high quality, and —
/// unlike std::mt19937 + std::uniform_*_distribution — bit-identical across
/// standard library implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Reseed(seed); }

  /// Reinitializes the state from `seed`.
  void Reseed(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling to avoid modulo bias.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [0, 2*mean): the paper's per-tuple delay model
  /// (Section 5.1.3), which has the given mean.
  double UniformZeroToTwice(double mean);

  /// Bernoulli draw with probability p of true.
  bool Bernoulli(double p);

  /// Exponential with the given mean (used by the bursty delay model).
  double Exponential(double mean);

  /// Derives an independent child generator; convenient for giving each
  /// wrapper / component its own stream from one top-level seed.
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace dqsched

#endif  // DQSCHED_COMMON_RANDOM_H_
