#include "common/parallel_runner.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <mutex>
#include <thread>

namespace dqsched {

namespace {

/// One worker's task deque. The owner pops newest-first from the back;
/// thieves take oldest-first from the front, which keeps stolen work
/// coarse (early cells of a bench's grid tend to be the big sweeps).
struct WorkQueue {
  std::mutex mu;
  std::deque<size_t> tasks;
};

}  // namespace

ParallelRunner::ParallelRunner(int jobs)
    : jobs_(jobs > 0 ? jobs : DefaultJobs()) {}

int ParallelRunner::DefaultJobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ParallelRunner::Run(
    const std::vector<std::function<void()>>& tasks) const {
  if (tasks.empty()) return;
  const size_t workers =
      std::min(static_cast<size_t>(jobs_), tasks.size());
  if (workers <= 1) {
    for (const auto& task : tasks) task();
    return;
  }

  std::vector<WorkQueue> queues(workers);
  for (size_t i = 0; i < tasks.size(); ++i) {
    queues[i % workers].tasks.push_back(i);
  }
  // Cells never spawn cells, so a simple countdown is a complete
  // termination detector: a worker exits once every queue it scanned is
  // empty AND nothing remains unfinished that could repopulate them
  // (nothing ever does).
  std::atomic<size_t> remaining(tasks.size());

  auto worker = [&](size_t self) {
    for (;;) {
      size_t task_index = tasks.size();  // sentinel: none found
      {
        WorkQueue& own = queues[self];
        std::lock_guard<std::mutex> lock(own.mu);
        if (!own.tasks.empty()) {
          task_index = own.tasks.back();
          own.tasks.pop_back();
        }
      }
      if (task_index == tasks.size()) {
        // Steal from the victim with the most queued work.
        size_t victim = workers;
        size_t victim_load = 0;
        for (size_t v = 0; v < workers; ++v) {
          if (v == self) continue;
          std::lock_guard<std::mutex> lock(queues[v].mu);
          if (queues[v].tasks.size() > victim_load) {
            victim_load = queues[v].tasks.size();
            victim = v;
          }
        }
        if (victim < workers) {
          std::lock_guard<std::mutex> lock(queues[victim].mu);
          if (!queues[victim].tasks.empty()) {
            task_index = queues[victim].tasks.front();
            queues[victim].tasks.pop_front();
          }
        }
      }
      if (task_index == tasks.size()) {
        if (remaining.load(std::memory_order_acquire) == 0) return;
        std::this_thread::yield();
        continue;
      }
      tasks[task_index]();
      remaining.fetch_sub(1, std::memory_order_acq_rel);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (size_t w = 1; w < workers; ++w) threads.emplace_back(worker, w);
  worker(0);
  for (std::thread& t : threads) t.join();
}

}  // namespace dqsched
