// Runtime-check macros used throughout dqsched.
//
// The library does not use exceptions for control flow; unrecoverable
// programming errors abort with a diagnostic, recoverable conditions flow
// through dqsched::Status (see common/status.h).

#ifndef DQSCHED_COMMON_MACROS_H_
#define DQSCHED_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Aborts the process with a message when `cond` is false. Used for internal
// invariants whose violation indicates a bug in the library, never for
// user-input validation (which returns Status).
#define DQS_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "DQS_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

// Like DQS_CHECK but with a printf-style explanation.
#define DQS_CHECK_MSG(cond, ...)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "DQS_CHECK failed at %s:%d: %s: ", __FILE__,     \
                   __LINE__, #cond);                                        \
      std::fprintf(stderr, __VA_ARGS__);                                    \
      std::fprintf(stderr, "\n");                                           \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

// Debug-mode check: compiled to nothing (operands unevaluated) unless the
// build defines DQSCHED_AUDIT (the `audit`, `asan`, and `ubsan` presets).
// Use for invariant checks on hot paths that release benches must not pay
// for; DQS_CHECK stays for cheap always-on checks.
#ifdef DQSCHED_AUDIT
#define DQS_DCHECK(cond) DQS_CHECK(cond)
#define DQS_DCHECK_MSG(cond, ...) DQS_CHECK_MSG(cond, __VA_ARGS__)
#else
#define DQS_DCHECK(cond) \
  do {                   \
  } while (0)
#define DQS_DCHECK_MSG(cond, ...) \
  do {                            \
  } while (0)
#endif

// Propagates a non-OK Status from the current function.
#define DQS_RETURN_IF_ERROR(expr)                                           \
  do {                                                                      \
    ::dqsched::Status dqs_status_ = (expr);                                 \
    if (!dqs_status_.ok()) return dqs_status_;                              \
  } while (0)

#endif  // DQSCHED_COMMON_MACROS_H_
