#include "common/sim_time.h"

#include <cstdio>

namespace dqsched {

std::string FormatDuration(SimDuration d) {
  char buf[64];
  const double abs = d < 0 ? -static_cast<double>(d) : static_cast<double>(d);
  if (d == kSimTimeNever) {
    return "never";
  } else if (abs < 1e3) {
    std::snprintf(buf, sizeof(buf), "%lld ns", static_cast<long long>(d));
  } else if (abs < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f us", d / 1e3);
  } else if (abs < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", d / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s", d / 1e9);
  }
  return buf;
}

}  // namespace dqsched
