// The single blessed wall-clock entry point of the tree.
//
// The determinism contract (DESIGN §11) requires every non-wall
// `ExecutionMetrics` field to be byte-identical across `--jobs`,
// strategies, and scalar-vs-vectorized kernels. Host wall-clock reads are
// therefore *advisory only*: they may feed `*_host_seconds` reporting
// fields and adaptive rank orders (FilterManager's EWMAs), but never a
// simulated charge, a scheduling decision input, or anything checksummed.
// `tools/dqs_analyze.py` (rule `wall-clock`) bans every other wall-clock
// read in src/ — `std::chrono::{steady,system,high_resolution}_clock`,
// `time()`, `clock()`, `gettimeofday` — so that new timing sites are
// forced through this header, where the contract is stated once.

#ifndef DQSCHED_COMMON_HOST_CLOCK_H_
#define DQSCHED_COMMON_HOST_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace dqsched {

/// Monotonic host time. Wraps std::chrono::steady_clock so call sites
/// never spell a clock name (the analyzer would flag them if they did).
class HostClock {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  /// Current monotonic host time.
  static TimePoint Now() { return std::chrono::steady_clock::now(); }

  /// Seconds elapsed since `start`, as a double (reporting granularity).
  static double SecondsSince(TimePoint start) {
    return std::chrono::duration<double>(Now() - start).count();
  }

  /// Nanoseconds elapsed since `start` (adaptive-cost granularity).
  static int64_t NanosSince(TimePoint start) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Now() -
                                                                start)
        .count();
  }
};

}  // namespace dqsched

#endif  // DQSCHED_COMMON_HOST_CLOCK_H_
