#include "common/random.h"

#include <cmath>

namespace dqsched {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Reseed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  DQS_CHECK(bound > 0);
  // Rejection sampling over the largest multiple of bound.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  DQS_CHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0,1).
  return (Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformZeroToTwice(double mean) { return NextDouble() * 2.0 * mean; }

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Exponential(double mean) {
  // Inverse transform; guard against log(0).
  double u = NextDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace dqsched
