// Work-stealing thread pool shared by the bench suite and the fleet
// executor.
//
// Callers hand over a grid of independent tasks — bench cells are one
// (QuerySetup, MediatorConfig, StrategyKind, seed) point each; fleet
// rounds are one shard advance each. The runner executes them across
// threads while the caller keeps deterministic output order by writing
// each task's result into a caller-owned slot indexed by task position.
//
// Threading contract (see DESIGN.md "Threading"): a Mediator / shard and
// its ExecContext are confined to the task that created them — one
// simulation per thread at a time, nothing shared between tasks. The
// simulator has no global mutable state (RNG, clocks, metrics and trace
// sinks all live inside the Mediator / ExecContext), so tasks need no
// synchronization beyond the runner's own queues.
// tests/parallel_runner_test.cc enforces this with a TSan-clean stress
// test.

#ifndef DQSCHED_COMMON_PARALLEL_RUNNER_H_
#define DQSCHED_COMMON_PARALLEL_RUNNER_H_

#include <functional>
#include <vector>

namespace dqsched {

class ParallelRunner {
 public:
  /// `jobs` <= 0 selects DefaultJobs().
  explicit ParallelRunner(int jobs);

  /// Executes every task and returns once all have finished. Tasks are
  /// dealt round-robin to per-worker deques; idle workers steal from the
  /// busiest victim, so one long cell cannot serialize the grid. With one
  /// job the tasks run inline on the calling thread, in order.
  void Run(const std::vector<std::function<void()>>& tasks) const;

  int jobs() const { return jobs_; }

  /// Hardware concurrency (at least 1).
  static int DefaultJobs();

 private:
  int jobs_;
};

/// Runs fn(0..n-1) and returns the results indexed by call position —
/// parallel execution, deterministic order.
template <typename R>
std::vector<R> RunIndexed(const ParallelRunner& runner, size_t n,
                          const std::function<R(size_t)>& fn) {
  std::vector<R> results(n);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    tasks.push_back([&results, &fn, i] { results[i] = fn(i); });
  }
  runner.Run(tasks);
  return results;
}

}  // namespace dqsched

#endif  // DQSCHED_COMMON_PARALLEL_RUNNER_H_
