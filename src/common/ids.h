// Shared identifier types. Plain integer ids keep the plan/runtime
// structures POD-ish and cheap to copy; -1 is "none" everywhere.

#ifndef DQSCHED_COMMON_IDS_H_
#define DQSCHED_COMMON_IDS_H_

#include <cstdint>

namespace dqsched {

/// Index of a data source (wrapper) in the catalog.
using SourceId = int32_t;
/// Node id within a logical plan.
using NodeId = int32_t;
/// Id of a compiled pipeline chain / query fragment.
using ChainId = int32_t;
/// Id of a join within a compiled plan (dense, compile order).
using JoinId = int32_t;
/// Id of a temporary relation in the temp store.
using TempId = int32_t;

inline constexpr int32_t kInvalidId = -1;

}  // namespace dqsched

#endif  // DQSCHED_COMMON_IDS_H_
