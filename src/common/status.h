// Lightweight Status / Result error handling, in the style of Abseil and
// Arrow. All fallible public APIs in dqsched return Status or Result<T>.

#ifndef DQSCHED_COMMON_STATUS_H_
#define DQSCHED_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/macros.h"

namespace dqsched {

// Error taxonomy for the library. Kept small on purpose: callers mostly
// branch on ok() vs not, the code is for diagnostics and tests.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed plan, bad configuration value
  kNotFound,          // unknown source / node / fragment id
  kResourceExhausted, // memory budget cannot accommodate the request
  kFailedPrecondition,// operation invoked in the wrong engine state
  kInternal,          // invariant violation surfaced as a recoverable error
  kUnavailable,       // a remote source was declared dead mid-query
  kDeadlineExceeded,  // the query's virtual-time budget expired
};

/// Returns a short stable name for `code` ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Value-type result of a fallible operation: either OK or a code+message.
/// [[nodiscard]] at class level: a dropped Status is a swallowed error, so
/// every call site must either branch on it or cast to void with a reason.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status Ok() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  [[nodiscard]] static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a T or an error Status. Accessing the value of an error result
/// aborts (programming error), mirroring absl::StatusOr semantics.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    DQS_CHECK_MSG(!std::get<Status>(rep_).ok(),
                  "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(rep_);
  }

  T& value() & {
    DQS_CHECK_MSG(ok(), "value() on error Result: %s",
                  std::get<Status>(rep_).ToString().c_str());
    return std::get<T>(rep_);
  }
  const T& value() const& {
    DQS_CHECK_MSG(ok(), "value() on error Result: %s",
                  std::get<Status>(rep_).ToString().c_str());
    return std::get<T>(rep_);
  }
  T&& value() && {
    DQS_CHECK_MSG(ok(), "value() on error Result: %s",
                  std::get<Status>(rep_).ToString().c_str());
    return std::move(std::get<T>(rep_));
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace dqsched

#endif  // DQSCHED_COMMON_STATUS_H_
