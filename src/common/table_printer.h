// Fixed-width ASCII table rendering for benchmark harnesses and examples.
// Every figure/table reproduction binary prints its series through this so
// output is uniform and trivially diffable.

#ifndef DQSCHED_COMMON_TABLE_PRINTER_H_
#define DQSCHED_COMMON_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace dqsched {

/// Collects rows of string cells and renders them with aligned columns.
///
/// Usage:
///   TablePrinter t({"w (us)", "SEQ (s)", "DSE (s)"});
///   t.AddRow({"20", "11.62", "7.9"});
///   t.Print(stdout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats a double with the given precision.
  static std::string Num(double v, int precision = 3);

  /// Renders the table (header, separator, rows) to `out`.
  void Print(std::FILE* out) const;

  /// Renders as comma-separated values (no alignment), for machine use.
  void PrintCsv(std::FILE* out) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dqsched

#endif  // DQSCHED_COMMON_TABLE_PRINTER_H_
