// The catalog: static description of every participating data source —
// its relation spec (cardinality, key domains) and its delivery behaviour
// (delay model). A (catalog, plan, seed) triple fully determines an
// execution.

#ifndef DQSCHED_WRAPPER_CATALOG_H_
#define DQSCHED_WRAPPER_CATALOG_H_

#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "storage/relation.h"
#include "wrapper/delay_model.h"
#include "wrapper/fault_model.h"

namespace dqsched::wrapper {

/// One remote source: data distribution + delivery behaviour.
struct SourceSpec {
  storage::RelationSpec relation;
  DelayConfig delay;
  /// Scheduled misbehaviour (empty = a perfectly reliable source). Any
  /// non-empty schedule makes the mediator arm failure detection.
  FaultSchedule faults;
};

/// All sources of an integration query.
struct Catalog {
  std::vector<SourceSpec> sources;

  int num_sources() const { return static_cast<int>(sources.size()); }

  const SourceSpec& source(SourceId id) const {
    return sources[static_cast<size_t>(id)];
  }
  SourceSpec& source(SourceId id) { return sources[static_cast<size_t>(id)]; }

  /// Looks a source up by relation name; kInvalidId when absent.
  SourceId Find(const std::string& name) const;

  /// Checks ids, cardinalities and delay configs.
  Status Validate() const;
};

}  // namespace dqsched::wrapper

#endif  // DQSCHED_WRAPPER_CATALOG_H_
