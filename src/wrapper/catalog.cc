#include "wrapper/catalog.h"

namespace dqsched::wrapper {

SourceId Catalog::Find(const std::string& name) const {
  for (size_t i = 0; i < sources.size(); ++i) {
    if (sources[i].relation.name == name) return static_cast<SourceId>(i);
  }
  return kInvalidId;
}

Status Catalog::Validate() const {
  if (sources.empty()) {
    return Status::InvalidArgument("catalog has no sources");
  }
  for (size_t i = 0; i < sources.size(); ++i) {
    const SourceSpec& s = sources[i];
    if (s.relation.name.empty()) {
      return Status::InvalidArgument("source " + std::to_string(i) +
                                     " has no name");
    }
    if (s.relation.cardinality < 0) {
      return Status::InvalidArgument("source " + s.relation.name +
                                     " has negative cardinality");
    }
    for (int64_t d : s.relation.key_domain) {
      if (d < 1) {
        return Status::InvalidArgument("source " + s.relation.name +
                                       " has key domain < 1");
      }
    }
    Status delay = s.delay.Validate();
    if (!delay.ok()) return delay;
    Status faults = s.faults.Validate();
    if (!faults.ok()) {
      return Status::InvalidArgument("source " + s.relation.name + ": " +
                                     faults.message());
    }
    for (size_t j = 0; j < i; ++j) {
      if (sources[j].relation.name == s.relation.name) {
        return Status::InvalidArgument("duplicate source name " +
                                       s.relation.name);
      }
    }
  }
  return Status::Ok();
}

}  // namespace dqsched::wrapper
