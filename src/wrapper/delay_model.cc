#include "wrapper/delay_model.h"

#include "common/macros.h"

namespace dqsched::wrapper {

const char* DelayKindName(DelayKind kind) {
  switch (kind) {
    case DelayKind::kConstant:
      return "constant";
    case DelayKind::kUniform:
      return "uniform";
    case DelayKind::kInitial:
      return "initial";
    case DelayKind::kBursty:
      return "bursty";
    case DelayKind::kSlow:
      return "slow";
  }
  return "unknown";
}

Status DelayConfig::Validate() const {
  if (mean_us < 0) return Status::InvalidArgument("mean_us must be >= 0");
  if (initial_delay_ms < 0) {
    return Status::InvalidArgument("initial_delay_ms must be >= 0");
  }
  if (kind == DelayKind::kBursty && burst_length <= 0) {
    return Status::InvalidArgument("burst_length must be > 0");
  }
  if (burst_gap_ms < 0) {
    return Status::InvalidArgument("burst_gap_ms must be >= 0");
  }
  if (kind == DelayKind::kSlow && slow_factor < 1.0) {
    return Status::InvalidArgument("slow_factor must be >= 1");
  }
  return Status::Ok();
}

namespace {

class ConstantDelay final : public DelayModel {
 public:
  explicit ConstantDelay(double mean_us) : delay_(Microseconds(mean_us)) {}
  SimDuration NextDelay(int64_t, Rng&) override { return delay_; }
  double MeanDelayNs() const override { return static_cast<double>(delay_); }

 private:
  SimDuration delay_;
};

class UniformDelay final : public DelayModel {
 public:
  explicit UniformDelay(double mean_us) : mean_ns_(mean_us * 1e3) {}
  SimDuration NextDelay(int64_t, Rng& rng) override {
    return static_cast<SimDuration>(rng.UniformZeroToTwice(mean_ns_));
  }
  double MeanDelayNs() const override { return mean_ns_; }

 private:
  double mean_ns_;
};

class InitialDelay final : public DelayModel {
 public:
  InitialDelay(double initial_ms, double mean_us)
      : initial_ns_(initial_ms * 1e6), mean_ns_(mean_us * 1e3) {}
  SimDuration NextDelay(int64_t index, Rng& rng) override {
    const double base = rng.UniformZeroToTwice(mean_ns_);
    return static_cast<SimDuration>(index == 0 ? base + initial_ns_ : base);
  }
  double MeanDelayNs() const override { return mean_ns_; }
  double ExpectedTotalNs(int64_t n) const override {
    return n == 0 ? 0.0 : initial_ns_ + static_cast<double>(n) * mean_ns_;
  }

 private:
  double initial_ns_;
  double mean_ns_;
};

class BurstyDelay final : public DelayModel {
 public:
  BurstyDelay(int64_t burst_length, double gap_ms, double mean_us)
      : burst_length_(burst_length),
        gap_ns_(gap_ms * 1e6),
        mean_ns_(mean_us * 1e3) {}
  SimDuration NextDelay(int64_t index, Rng& rng) override {
    const double base = rng.UniformZeroToTwice(mean_ns_);
    if (index > 0 && index % burst_length_ == 0) {
      return static_cast<SimDuration>(base + rng.Exponential(gap_ns_));
    }
    return static_cast<SimDuration>(base);
  }
  double MeanDelayNs() const override {
    // Mean over one burst period: (burst_length-1 normal gaps + one long).
    return mean_ns_ + gap_ns_ / static_cast<double>(burst_length_);
  }

 private:
  int64_t burst_length_;
  double gap_ns_;
  double mean_ns_;
};

}  // namespace

std::unique_ptr<DelayModel> MakeDelayModel(const DelayConfig& config) {
  DQS_CHECK_MSG(config.Validate().ok(), "invalid DelayConfig: %s",
                config.Validate().ToString().c_str());
  switch (config.kind) {
    case DelayKind::kConstant:
      return std::make_unique<ConstantDelay>(config.mean_us);
    case DelayKind::kUniform:
      return std::make_unique<UniformDelay>(config.mean_us);
    case DelayKind::kInitial:
      return std::make_unique<InitialDelay>(config.initial_delay_ms,
                                            config.mean_us);
    case DelayKind::kBursty:
      return std::make_unique<BurstyDelay>(config.burst_length,
                                           config.burst_gap_ms,
                                           config.mean_us);
    case DelayKind::kSlow:
      return std::make_unique<UniformDelay>(config.mean_us *
                                            config.slow_factor);
  }
  DQS_CHECK_MSG(false, "unreachable delay kind");
  return nullptr;
}

}  // namespace dqsched::wrapper
