// Deterministic, seeded source-fault injection. A FaultSchedule describes
// when a source misbehaves (in tuple-index space, so it composes with any
// delay model); FaultModel interprets the schedule with its own Rng stream,
// independent from the delay draws, so a run with an empty schedule is
// bit-identical to one without the subsystem at all.
//
// Fault taxonomy (DESIGN.md §8):
//   stall       transient silence; delivery resumes where it left off.
//   disconnect  the connection drops at a tuple; the wrapper reconnects
//               after exponential backoff with deterministic jitter and
//               either resumes from the disconnect offset or replays the
//               relation from scratch (the CM discards the duplicates).
//   death       permanent: the source never delivers again.

#ifndef DQSCHED_WRAPPER_FAULT_MODEL_H_
#define DQSCHED_WRAPPER_FAULT_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/sim_time.h"
#include "common/status.h"

namespace dqsched::wrapper {

enum class FaultKind {
  kStall,
  kDisconnect,
  kDeath,
};

/// Short stable name ("stall", "disconnect", "death").
const char* FaultKindName(FaultKind kind);

/// One scheduled fault. Value type; lives in the catalog's SourceSpec.
struct FaultSpec {
  FaultKind kind = FaultKind::kStall;
  /// Fires when the source is about to produce this fresh tuple index
  /// (0 = before the first tuple). An index at or past the relation's
  /// cardinality never fires.
  int64_t at_tuple = 0;
  /// kStall: duration of the silence.
  SimDuration stall = Milliseconds(200);
  /// kDisconnect: reconnect attempts that fail before the one that
  /// succeeds (0 = first attempt reconnects).
  int64_t failed_attempts = 1;
  /// kDisconnect: wait before attempt k is backoff_initial * 2^k ...
  SimDuration backoff_initial = Milliseconds(20);
  /// ... scaled by a jitter factor drawn uniformly from [1-j, 1+j].
  double backoff_jitter = 0.25;
  /// kDisconnect: on reconnect the source restarts its cursor from tuple
  /// 0, re-delivering everything already sent (the CM discards those
  /// duplicates); false resumes from the disconnect offset.
  bool replay_from_scratch = false;

  /// Checks the per-kind parameters.
  Status Validate() const;
};

/// A source's fault schedule. Events must be strictly increasing in
/// at_tuple; after a kDeath event nothing further can fire.
struct FaultSchedule {
  std::vector<FaultSpec> events;

  bool empty() const { return events.empty(); }
  Status Validate() const;
};

/// Correlated fault storms (DESIGN.md §13). A storm is specified in
/// absolute virtual time over a *logical* source population and compiled
/// into per-source tuple-index FaultSchedules at install time, using the
/// source's analytic mean inter-tuple delay as the time→index map. The
/// compilation is pure given (storm, source index, start time, jitter
/// rng), so schedules are byte-identical across host thread counts.
enum class StormKind {
  kNone,
  /// A contiguous region of sources goes silent together at `onset` and
  /// recovers together `outage` later (or never, if `lethal`).
  kRegionOutage,
  /// Stall waves sweep the population with a propagation delay between
  /// neighbouring sources — the upstream slowdown cascading downstream.
  kCascadingSlowdown,
  /// Region sources alternate short silences and recoveries, keeping the
  /// failure detector oscillating between suspected and healthy.
  kFlapping,
};

/// Short stable name ("none", "region-outage", "cascade", "flapping").
const char* StormKindName(StormKind kind);

/// Parses a StormKindName back; returns false on unknown names.
bool ParseStormKind(const std::string& name, StormKind* out);

struct StormConfig {
  StormKind kind = StormKind::kNone;

  /// Fraction of the logical source population (the lowest-indexed
  /// contiguous block) inside the storm region.
  double region_fraction = 0.5;
  /// Virtual time the storm begins.
  SimTime onset = Seconds(0.5);
  /// Deterministic jitter factor applied to injected silences, drawn
  /// uniformly from [1-j, 1+j] off the dedicated fault rng.
  double jitter = 0.25;

  // kRegionOutage.
  SimDuration outage = Seconds(2);
  /// Kill region sources (kDeath) instead of a recoverable silence.
  bool lethal = false;

  // kCascadingSlowdown.
  SimDuration wave_stall = Milliseconds(400);
  SimDuration propagation = Milliseconds(150);
  int waves = 3;

  // kFlapping.
  SimDuration flap_period = Milliseconds(300);
  int flaps = 4;

  bool active() const { return kind != StormKind::kNone; }
  Status Validate() const;
};

/// Compiles the storm into the FaultSchedule one delivery attempt of one
/// logical source observes. `start` is the virtual time the attempt
/// begins delivering; `mean_delay_ns` is the source's analytic mean
/// inter-tuple delay (> 0) used as the absolute-time → tuple-index map;
/// events landing at or past `cardinality` are dropped. `rng` supplies
/// jitter only and must be a dedicated stream salted by (source,
/// attempt) so data/delay draws are untouched. An attempt that starts
/// after the storm has passed gets an empty schedule — which is exactly
/// what makes retry-after-recovery succeed.
FaultSchedule BuildStormSchedule(const StormConfig& storm, int source_index,
                                 int num_sources, SimTime start,
                                 double mean_delay_ns, int64_t cardinality,
                                 Rng* rng);

/// Positions [begin, end) of a source's delivery sequence occupied by
/// replayed duplicates. Positions count delivered tuples, which equals the
/// queue's absolute pushed counter (a conservation invariant), so the CM
/// can discard exactly these positions on pop.
struct ReplayWindow {
  int64_t begin = 0;
  int64_t end = 0;
};

/// Raw injection counts, wrapper-side. The detection-side view (suspected
/// / declared dead / discarded) lives in the CM and ExecutionMetrics.
struct FaultInjectionStats {
  int64_t stalls = 0;
  int64_t disconnects = 0;
  int64_t reconnects = 0;
  bool died = false;
  /// Total injected silence (stalls plus reconnect backoffs).
  SimDuration silence = 0;
  /// Duplicate tuples scheduled for re-delivery by from-scratch replays.
  int64_t duplicates_scheduled = 0;
};

/// What the wrapper applies before producing a tuple.
struct FaultAction {
  SimDuration extra_silence = 0;
  bool die = false;
  bool replay_from_scratch = false;
};

/// Interprets a FaultSchedule deterministically: (schedule, seed) fully
/// determine every action, independent of pump timing.
class FaultModel {
 public:
  FaultModel(FaultSchedule schedule, uint64_t seed);

  /// The wrapper is about to produce fresh tuple `index`; returns the
  /// scheduled action if the next pending event fires at or before it.
  /// Must be called with strictly increasing fresh indices.
  FaultAction OnProduce(int64_t index);

  const FaultInjectionStats& stats() const { return stats_; }

 private:
  FaultSchedule schedule_;
  Rng rng_;
  size_t cursor_ = 0;
  FaultInjectionStats stats_;
};

}  // namespace dqsched::wrapper

#endif  // DQSCHED_WRAPPER_FAULT_MODEL_H_
