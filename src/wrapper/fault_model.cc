#include "wrapper/fault_model.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace dqsched::wrapper {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kStall:
      return "stall";
    case FaultKind::kDisconnect:
      return "disconnect";
    case FaultKind::kDeath:
      return "death";
  }
  return "unknown";
}

Status FaultSpec::Validate() const {
  if (at_tuple < 0) {
    return Status::InvalidArgument("fault at_tuple must be >= 0");
  }
  switch (kind) {
    case FaultKind::kStall:
      if (stall <= 0) {
        return Status::InvalidArgument("fault stall duration must be > 0");
      }
      break;
    case FaultKind::kDisconnect:
      if (failed_attempts < 0) {
        return Status::InvalidArgument("fault failed_attempts must be >= 0");
      }
      if (failed_attempts > 32) {
        return Status::InvalidArgument(
            "fault failed_attempts > 32 overflows the exponential backoff");
      }
      if (backoff_initial <= 0) {
        return Status::InvalidArgument("fault backoff_initial must be > 0");
      }
      if (backoff_jitter < 0.0 || backoff_jitter >= 1.0) {
        return Status::InvalidArgument("fault backoff_jitter must be in [0, 1)");
      }
      break;
    case FaultKind::kDeath:
      break;
  }
  return Status::Ok();
}

Status FaultSchedule::Validate() const {
  int64_t prev = -1;
  for (size_t i = 0; i < events.size(); ++i) {
    DQS_RETURN_IF_ERROR(events[i].Validate());
    if (events[i].at_tuple <= prev) {
      return Status::InvalidArgument(
          "fault events must have strictly increasing at_tuple");
    }
    if (i + 1 < events.size() && events[i].kind == FaultKind::kDeath) {
      return Status::InvalidArgument(
          "no fault event can follow a death event");
    }
    prev = events[i].at_tuple;
  }
  return Status::Ok();
}

const char* StormKindName(StormKind kind) {
  switch (kind) {
    case StormKind::kNone:
      return "none";
    case StormKind::kRegionOutage:
      return "region-outage";
    case StormKind::kCascadingSlowdown:
      return "cascade";
    case StormKind::kFlapping:
      return "flapping";
  }
  return "unknown";
}

bool ParseStormKind(const std::string& name, StormKind* out) {
  for (StormKind kind :
       {StormKind::kNone, StormKind::kRegionOutage,
        StormKind::kCascadingSlowdown, StormKind::kFlapping}) {
    if (name == StormKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

Status StormConfig::Validate() const {
  if (kind == StormKind::kNone) return Status::Ok();
  if (region_fraction <= 0.0 || region_fraction > 1.0) {
    return Status::InvalidArgument("storm region_fraction must be in (0, 1]");
  }
  if (onset < 0) {
    return Status::InvalidArgument("storm onset must be >= 0");
  }
  if (jitter < 0.0 || jitter >= 1.0) {
    return Status::InvalidArgument("storm jitter must be in [0, 1)");
  }
  switch (kind) {
    case StormKind::kNone:
      break;
    case StormKind::kRegionOutage:
      if (!lethal && outage <= 0) {
        return Status::InvalidArgument("storm outage must be > 0");
      }
      break;
    case StormKind::kCascadingSlowdown:
      if (wave_stall <= 0 || propagation < 0 || waves <= 0) {
        return Status::InvalidArgument(
            "cascade needs wave_stall > 0, propagation >= 0, waves > 0");
      }
      break;
    case StormKind::kFlapping:
      if (flap_period <= 0 || flaps <= 0) {
        return Status::InvalidArgument(
            "flapping needs flap_period > 0, flaps > 0");
      }
      break;
  }
  return Status::Ok();
}

namespace {

// Absolute virtual time -> fresh-tuple index for an attempt that starts
// delivering at `start` with mean inter-tuple delay `mean_delay_ns`.
int64_t TupleIndexAt(SimTime when, SimTime start, double mean_delay_ns) {
  if (when <= start) return 0;
  return static_cast<int64_t>(static_cast<double>(when - start) /
                              mean_delay_ns);
}

double JitterScale(double jitter, Rng* rng) {
  return 1.0 + jitter * (2.0 * rng->NextDouble() - 1.0);
}

// Appends the stall this attempt observes at tuple index `at` (bumped to
// keep the schedule strictly increasing, dropped once past cardinality).
void AppendStall(std::vector<FaultSpec>* events, int64_t at,
                 SimDuration stall, int64_t cardinality) {
  if (stall <= 0) return;
  int64_t idx = at;
  if (!events->empty()) idx = std::max(idx, events->back().at_tuple + 1);
  if (idx >= cardinality) return;
  FaultSpec spec;
  spec.kind = FaultKind::kStall;
  spec.at_tuple = idx;
  spec.stall = stall;
  events->push_back(spec);
}

// Appends what this attempt observes of an absolute-time silence window
// [from, from + len): nothing if the window has already passed, the
// remaining silence from tuple 0 if the attempt starts mid-window, or
// the full silence at the mapped tuple index if the window is ahead.
void AppendWindow(std::vector<FaultSpec>* events, SimTime start,
                  double mean_delay_ns, int64_t cardinality, SimTime from,
                  SimDuration len) {
  if (len <= 0) return;
  const SimTime until = from + len;
  if (start >= until) return;
  if (start >= from) {
    AppendStall(events, 0, until - start, cardinality);
  } else {
    AppendStall(events, TupleIndexAt(from, start, mean_delay_ns), len,
                cardinality);
  }
}

}  // namespace

FaultSchedule BuildStormSchedule(const StormConfig& storm, int source_index,
                                 int num_sources, SimTime start,
                                 double mean_delay_ns, int64_t cardinality,
                                 Rng* rng) {
  FaultSchedule schedule;
  if (!storm.active() || num_sources <= 0 || cardinality <= 0 ||
      mean_delay_ns <= 0.0) {
    return schedule;
  }
  const int width = std::max(
      1, static_cast<int>(std::ceil(storm.region_fraction * num_sources)));
  const bool in_region = source_index < width;
  switch (storm.kind) {
    case StormKind::kNone:
      break;
    case StormKind::kRegionOutage: {
      if (!in_region) break;
      if (storm.lethal) {
        const int64_t at = TupleIndexAt(storm.onset, start, mean_delay_ns);
        if (at < cardinality) {
          FaultSpec spec;
          spec.kind = FaultKind::kDeath;
          spec.at_tuple = at;
          schedule.events.push_back(spec);
        }
        break;
      }
      const SimDuration len = static_cast<SimDuration>(
          static_cast<double>(storm.outage) * JitterScale(storm.jitter, rng));
      AppendWindow(&schedule.events, start, mean_delay_ns, cardinality,
                   storm.onset, len);
      break;
    }
    case StormKind::kCascadingSlowdown: {
      // The wave sweeps the whole population: source i is hit
      // propagation later than source i-1, `waves` times over.
      const SimTime first =
          storm.onset + static_cast<SimDuration>(source_index) *
                            storm.propagation;
      for (int w = 0; w < storm.waves; ++w) {
        const SimTime from =
            first + static_cast<SimDuration>(w) *
                        (storm.wave_stall + storm.propagation);
        const SimDuration len = static_cast<SimDuration>(
            static_cast<double>(storm.wave_stall) *
            JitterScale(storm.jitter, rng));
        AppendWindow(&schedule.events, start, mean_delay_ns, cardinality,
                     from, len);
      }
      break;
    }
    case StormKind::kFlapping: {
      if (!in_region) break;
      for (int k = 0; k < storm.flaps; ++k) {
        const SimTime from =
            storm.onset + static_cast<SimDuration>(2 * k) * storm.flap_period;
        const SimDuration len = static_cast<SimDuration>(
            static_cast<double>(storm.flap_period) *
            JitterScale(storm.jitter, rng));
        AppendWindow(&schedule.events, start, mean_delay_ns, cardinality,
                     from, len);
      }
      break;
    }
  }
  return schedule;
}

FaultModel::FaultModel(FaultSchedule schedule, uint64_t seed)
    : schedule_(std::move(schedule)), rng_(seed) {}

FaultAction FaultModel::OnProduce(int64_t index) {
  FaultAction action;
  if (cursor_ >= schedule_.events.size()) return action;
  const FaultSpec& e = schedule_.events[cursor_];
  if (index < e.at_tuple) return action;
  ++cursor_;
  switch (e.kind) {
    case FaultKind::kStall:
      action.extra_silence = e.stall;
      ++stats_.stalls;
      break;
    case FaultKind::kDisconnect: {
      // The outage is the sum of the waits before each reconnect attempt:
      // failed_attempts failures plus the attempt that succeeds, each
      // doubling the previous backoff and jittered deterministically.
      SimDuration outage = 0;
      SimDuration backoff = e.backoff_initial;
      for (int64_t a = 0; a <= e.failed_attempts; ++a) {
        const double scale =
            1.0 + e.backoff_jitter * (2.0 * rng_.NextDouble() - 1.0);
        outage += static_cast<SimDuration>(
            static_cast<double>(backoff) * scale);
        backoff *= 2;
      }
      action.extra_silence = outage;
      action.replay_from_scratch = e.replay_from_scratch;
      ++stats_.disconnects;
      ++stats_.reconnects;
      if (e.replay_from_scratch) stats_.duplicates_scheduled += index;
      break;
    }
    case FaultKind::kDeath:
      action.die = true;
      stats_.died = true;
      break;
  }
  stats_.silence += action.extra_silence;
  return action;
}

}  // namespace dqsched::wrapper
