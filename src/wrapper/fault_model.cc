#include "wrapper/fault_model.h"

#include <utility>

namespace dqsched::wrapper {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kStall:
      return "stall";
    case FaultKind::kDisconnect:
      return "disconnect";
    case FaultKind::kDeath:
      return "death";
  }
  return "unknown";
}

Status FaultSpec::Validate() const {
  if (at_tuple < 0) {
    return Status::InvalidArgument("fault at_tuple must be >= 0");
  }
  switch (kind) {
    case FaultKind::kStall:
      if (stall <= 0) {
        return Status::InvalidArgument("fault stall duration must be > 0");
      }
      break;
    case FaultKind::kDisconnect:
      if (failed_attempts < 0) {
        return Status::InvalidArgument("fault failed_attempts must be >= 0");
      }
      if (failed_attempts > 32) {
        return Status::InvalidArgument(
            "fault failed_attempts > 32 overflows the exponential backoff");
      }
      if (backoff_initial <= 0) {
        return Status::InvalidArgument("fault backoff_initial must be > 0");
      }
      if (backoff_jitter < 0.0 || backoff_jitter >= 1.0) {
        return Status::InvalidArgument("fault backoff_jitter must be in [0, 1)");
      }
      break;
    case FaultKind::kDeath:
      break;
  }
  return Status::Ok();
}

Status FaultSchedule::Validate() const {
  int64_t prev = -1;
  for (size_t i = 0; i < events.size(); ++i) {
    DQS_RETURN_IF_ERROR(events[i].Validate());
    if (events[i].at_tuple <= prev) {
      return Status::InvalidArgument(
          "fault events must have strictly increasing at_tuple");
    }
    if (i + 1 < events.size() && events[i].kind == FaultKind::kDeath) {
      return Status::InvalidArgument(
          "no fault event can follow a death event");
    }
    prev = events[i].at_tuple;
  }
  return Status::Ok();
}

FaultModel::FaultModel(FaultSchedule schedule, uint64_t seed)
    : schedule_(std::move(schedule)), rng_(seed) {}

FaultAction FaultModel::OnProduce(int64_t index) {
  FaultAction action;
  if (cursor_ >= schedule_.events.size()) return action;
  const FaultSpec& e = schedule_.events[cursor_];
  if (index < e.at_tuple) return action;
  ++cursor_;
  switch (e.kind) {
    case FaultKind::kStall:
      action.extra_silence = e.stall;
      ++stats_.stalls;
      break;
    case FaultKind::kDisconnect: {
      // The outage is the sum of the waits before each reconnect attempt:
      // failed_attempts failures plus the attempt that succeeds, each
      // doubling the previous backoff and jittered deterministically.
      SimDuration outage = 0;
      SimDuration backoff = e.backoff_initial;
      for (int64_t a = 0; a <= e.failed_attempts; ++a) {
        const double scale =
            1.0 + e.backoff_jitter * (2.0 * rng_.NextDouble() - 1.0);
        outage += static_cast<SimDuration>(
            static_cast<double>(backoff) * scale);
        backoff *= 2;
      }
      action.extra_silence = outage;
      action.replay_from_scratch = e.replay_from_scratch;
      ++stats_.disconnects;
      ++stats_.reconnects;
      if (e.replay_from_scratch) stats_.duplicates_scheduled += index;
      break;
    }
    case FaultKind::kDeath:
      action.die = true;
      stats_.died = true;
      break;
  }
  stats_.silence += action.extra_silence;
  return action;
}

}  // namespace dqsched::wrapper
