// Simulated wrapper (remote data source).
//
// A wrapper owns (a pointer to) its relation's tuples and a delay model.
// It produces tuple i at virtual time r_i = r_{i-1} + d_i, where d_i is
// drawn from the delay model — unless the destination queue is full, in
// which case production suspends (window protocol) and resumes from the
// moment the mediator drains the queue.

#ifndef DQSCHED_WRAPPER_WRAPPER_H_
#define DQSCHED_WRAPPER_WRAPPER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "comm/tuple_queue.h"
#include "common/ids.h"
#include "common/random.h"
#include "common/sim_time.h"
#include "storage/relation.h"
#include "wrapper/delay_model.h"
#include "wrapper/fault_model.h"

namespace dqsched::wrapper {

/// Receives the virtual arrival timestamp of every tuple a wrapper pushes.
/// Implemented by the communication manager's rate estimators.
class ArrivalObserver {
 public:
  virtual ~ArrivalObserver() = default;
  /// A run of `n` tuples entered the queue at non-decreasing virtual times
  /// `ts[0..n)`. One virtual call per delivered run, not per tuple; the
  /// observer must process the timestamps in order, exactly as if each had
  /// been reported individually.
  virtual void OnArrivals(const SimTime* ts, int64_t n) = 0;
  /// A tuple entered the queue at `t` after a window-protocol suspension:
  /// its gap measures the mediator's backpressure, not the source's rate,
  /// so rate estimators advance their reference time without sampling.
  virtual void OnArrivalSuppressed(SimTime t) { (void)t; }
};

/// Per-wrapper delivery statistics.
struct WrapperStats {
  int64_t tuples_delivered = 0;
  /// Virtual time production spent suspended on a full queue.
  SimDuration blocked = 0;
  /// When the last tuple entered the queue; kSimTimeNever until the first
  /// delivery, so a source that never finishes is distinguishable from one
  /// that finished at t=0.
  SimTime finished_at = kSimTimeNever;
};

/// One simulated source feeding one TupleQueue.
class SimWrapper {
 public:
  /// `relation` must outlive the wrapper. Production of the first tuple is
  /// scheduled from time 0 using the delay model.
  SimWrapper(SourceId id, const storage::Relation* relation,
             const DelayConfig& delay, uint64_t seed);

  SimWrapper(const SimWrapper&) = delete;
  SimWrapper& operator=(const SimWrapper&) = delete;

  SourceId id() const { return id_; }
  int64_t cardinality() const { return relation_->cardinality(); }
  /// Tuples not yet pushed into the queue.
  int64_t remaining() const { return cardinality() - next_index_; }
  bool Exhausted() const { return next_index_ >= cardinality(); }
  /// Production suspended on a full queue; resumes via PumpInto after a
  /// drain (window protocol).
  bool Suspended() const { return suspended_; }

  /// Delivers every tuple whose production time is <= `now` into `queue`,
  /// stopping (suspended) if the queue fills. Call again after draining the
  /// queue to resume production from the drain time. Closes the queue's
  /// producer side after the last tuple. `observer` (may be null) sees each
  /// tuple's arrival timestamp. Ready tuples are delivered as contiguous
  /// runs (one PushBatch + one OnArrivals per run).
  void PumpInto(comm::TupleQueue& queue, SimTime now,
                ArrivalObserver* observer = nullptr);

  /// Caps delivery runs at one tuple, forcing the pre-bulk per-tuple
  /// transport path. Observable state (queue contents, stats, observer
  /// sample sequence, rng stream) must be identical either way; the
  /// serial-vs-bulk determinism test relies on this switch.
  void set_serial_delivery(bool serial) {
    max_run_ = serial ? 1 : kNoRunCap;
  }

  /// Earliest virtual time the next tuple can enter the queue given space,
  /// or kSimTimeNever when exhausted, suspended (a suspended wrapper only
  /// resumes via PumpInto after a drain, and its queue is non-empty by
  /// definition), or held.
  SimTime NextArrival() const;

  /// Gates production on an explicit Start: a held wrapper delivers
  /// nothing and answers NextArrival with kSimTimeNever. Must precede any
  /// pumping — the fleet holds every wrapper of a not-yet-admitted query.
  void Hold();
  /// Releases a hold at virtual time `at`: the source behaves as if it
  /// came online then, so its already-drawn first-tuple offset (and any
  /// fault-schedule silence) lands relative to `at`, keeping the delay
  /// stream bit-identical to an unheld wrapper started at t=0 shifted by
  /// `at`.
  void Start(SimTime at);
  bool held() const { return held_; }

  /// Installs a fault schedule; must precede any pumping. `seed` feeds the
  /// model's own Rng stream, so the delay draws are bit-identical with and
  /// without faults. An event at tuple 0 takes effect immediately.
  void SetFaultSchedule(FaultSchedule schedule, uint64_t seed);

  bool has_faults() const { return fault_ != nullptr; }
  /// Permanently silent: killed by a kDeath fault or abandoned by the CM.
  bool dead() const { return dead_; }
  /// Consumer-side giveup: the source never delivers again. Unlike a
  /// kDeath fault this can hit any wrapper (the CM abandons declared-dead
  /// sources under the partial-result policy).
  void Abandon() { dead_ = true; }
  /// Injection counters; null without a schedule.
  const FaultInjectionStats* fault_stats() const {
    return fault_ == nullptr ? nullptr : &fault_->stats();
  }
  /// From-scratch replay windows in delivered-tuple positions (== the
  /// queue's absolute push positions), appended as reconnects happen. The
  /// CM ingests these to discard duplicates.
  const std::vector<ReplayWindow>& replay_windows() const {
    return replay_windows_;
  }

  /// Analytic mean inter-tuple delay of this source (scheduler prior).
  double MeanDelayNs() const { return model_->MeanDelayNs(); }
  /// Analytic expected total delivery time for the full relation.
  double ExpectedTotalNs() const {
    return model_->ExpectedTotalNs(cardinality());
  }

  const WrapperStats& stats() const { return stats_; }

 private:
  static constexpr int64_t kNoRunCap = INT64_MAX;

  /// Consults the fault model for the fresh tuple `next_index_` is about
  /// to name, applying silence / replay / death. No-op during a replay or
  /// for an index already consulted. `pending_in_run` is the size of the
  /// collected-but-not-yet-pushed run, needed to place replay windows in
  /// absolute delivery positions.
  void ApplyFaults(int64_t pending_in_run);

  SourceId id_;
  const storage::Relation* relation_;
  std::unique_ptr<DelayModel> model_;
  Rng rng_;
  int64_t next_index_ = 0;
  SimTime next_ready_ = 0;
  bool suspended_ = false;
  bool held_ = false;
  int64_t max_run_ = kNoRunCap;
  /// Arrival timestamps of the run being delivered (reused across pumps).
  std::vector<SimTime> ts_scratch_;
  WrapperStats stats_;

  // Fault-injection state (inert — and cost-free on the pump path —
  // without a schedule).
  std::unique_ptr<FaultModel> fault_;
  bool dead_ = false;
  /// During a from-scratch replay, indices < replay_until_ are duplicates:
  /// no fault consultation until the cursor passes the disconnect point.
  int64_t replay_until_ = 0;
  /// Faults consulted for all fresh indices < fault_applied_upto_.
  int64_t fault_applied_upto_ = 0;
  std::vector<ReplayWindow> replay_windows_;
};

}  // namespace dqsched::wrapper

#endif  // DQSCHED_WRAPPER_WRAPPER_H_
