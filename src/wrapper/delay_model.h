// Per-tuple delivery-delay models for simulated wrappers.
//
// The paper defines three problematic delay classes (Section 1.2, after
// [2]): initial delay, bursty arrival, and slow delivery, and evaluates its
// own strategy with per-tuple delays uniformly distributed in [0, 2w]
// (Section 5.1.3). All four are implemented here, plus a constant model for
// deterministic unit tests.

#ifndef DQSCHED_WRAPPER_DELAY_MODEL_H_
#define DQSCHED_WRAPPER_DELAY_MODEL_H_

#include <cstdint>
#include <memory>

#include "common/random.h"
#include "common/sim_time.h"
#include "common/status.h"

namespace dqsched::wrapper {

/// Which delay model a source uses.
enum class DelayKind {
  kConstant,  // exactly mean_us between tuples
  kUniform,   // uniform in [0, 2*mean_us] (the paper's experiments)
  kInitial,   // one long initial delay, then uniform at mean_us
  kBursty,    // bursts of fast tuples separated by long silent gaps
  kSlow,      // uniform, scaled by slow_factor (slow-delivery problem)
};

const char* DelayKindName(DelayKind kind);

/// Value-type configuration of a source's delay behaviour. Lives in the
/// catalog so query setups are copyable and serializable.
struct DelayConfig {
  DelayKind kind = DelayKind::kUniform;
  /// Mean inter-tuple time (the paper's `w`), microseconds. For kSlow this
  /// is the pre-slowdown base.
  double mean_us = 20.0;
  /// kInitial: delay before the first tuple, milliseconds.
  double initial_delay_ms = 0.0;
  /// kBursty: tuples per burst.
  int64_t burst_length = 1000;
  /// kBursty: silent gap between bursts, milliseconds (drawn exponential
  /// with this mean). Intra-burst spacing uses mean_us.
  double burst_gap_ms = 50.0;
  /// kSlow: multiplier applied to mean_us.
  double slow_factor = 1.0;

  Status Validate() const;
};

/// Stateful sampler of inter-tuple delays. One instance per wrapper per
/// execution; deterministic given (config, seed).
class DelayModel {
 public:
  virtual ~DelayModel() = default;

  /// Delay between tuple `index`-1 and tuple `index` (index 0 = delay from
  /// query start to the first tuple).
  virtual SimDuration NextDelay(int64_t index, Rng& rng) = 0;

  /// Analytic mean inter-tuple delay, for the scheduler's priors and the
  /// LWB computation.
  virtual double MeanDelayNs() const = 0;

  /// Analytic expected total time to deliver `n` tuples. Defaults to
  /// n * mean; overridden where the first tuple is special.
  virtual double ExpectedTotalNs(int64_t n) const {
    return static_cast<double>(n) * MeanDelayNs();
  }
};

/// Instantiates the sampler for `config`. `config` must validate.
std::unique_ptr<DelayModel> MakeDelayModel(const DelayConfig& config);

}  // namespace dqsched::wrapper

#endif  // DQSCHED_WRAPPER_DELAY_MODEL_H_
