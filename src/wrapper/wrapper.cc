#include "wrapper/wrapper.h"

#include "common/macros.h"

namespace dqsched::wrapper {

SimWrapper::SimWrapper(SourceId id, const storage::Relation* relation,
                       const DelayConfig& delay, uint64_t seed)
    : id_(id),
      relation_(relation),
      model_(MakeDelayModel(delay)),
      rng_(seed) {
  DQS_CHECK(relation_ != nullptr);
  if (!Exhausted()) {
    next_ready_ = model_->NextDelay(0, rng_);
  }
}

void SimWrapper::PumpInto(comm::TupleQueue& queue, SimTime now,
                          ArrivalObserver* observer) {
  if (Exhausted()) {
    // Covers empty relations, where the stream closes without any push.
    if (!queue.producer_closed()) queue.CloseProducer();
    return;
  }
  bool resumed = false;
  if (suspended_) {
    if (queue.Full()) return;
    // Resumption: the pending tuple enters at the drain time; it had been
    // ready since next_ready_ — the difference is blocked time.
    if (now > next_ready_) stats_.blocked += now - next_ready_;
    next_ready_ = now > next_ready_ ? now : next_ready_;
    suspended_ = false;
    resumed = true;
  }
  while (next_index_ < cardinality() && next_ready_ <= now) {
    if (queue.Full()) {
      suspended_ = true;
      return;
    }
    queue.Push(relation_->tuples[static_cast<size_t>(next_index_)]);
    if (observer != nullptr) {
      // The first post-suspension gap reflects mediator backpressure, not
      // the source's delivery rate: advance the observer without sampling.
      if (resumed) {
        observer->OnArrivalSuppressed(next_ready_);
        resumed = false;
      } else {
        observer->OnArrival(next_ready_);
      }
    }
    ++stats_.tuples_delivered;
    stats_.finished_at = next_ready_;
    ++next_index_;
    if (next_index_ < cardinality()) {
      next_ready_ += model_->NextDelay(next_index_, rng_);
    }
  }
  if (Exhausted() && !queue.producer_closed()) queue.CloseProducer();
}

SimTime SimWrapper::NextArrival() const {
  if (Exhausted() || suspended_) return kSimTimeNever;
  return next_ready_;
}

}  // namespace dqsched::wrapper
