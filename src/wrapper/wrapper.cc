#include "wrapper/wrapper.h"

#include <memory>
#include <utility>

#include "common/macros.h"

namespace dqsched::wrapper {

SimWrapper::SimWrapper(SourceId id, const storage::Relation* relation,
                       const DelayConfig& delay, uint64_t seed)
    : id_(id),
      relation_(relation),
      model_(MakeDelayModel(delay)),
      rng_(seed) {
  DQS_CHECK(relation_ != nullptr);
  if (!Exhausted()) {
    next_ready_ = model_->NextDelay(0, rng_);
  }
}

void SimWrapper::SetFaultSchedule(FaultSchedule schedule, uint64_t seed) {
  DQS_CHECK_MSG(next_index_ == 0 && stats_.tuples_delivered == 0,
                "fault schedule installed after pumping started");
  if (schedule.empty()) return;
  fault_ = std::make_unique<FaultModel>(std::move(schedule), seed);
  // Consult for tuple 0 now: an event at at_tuple 0 delays (or kills) the
  // source before its first delivery.
  if (!Exhausted()) ApplyFaults(/*pending_in_run=*/0);
}

void SimWrapper::ApplyFaults(int64_t pending_in_run) {
  if (fault_ == nullptr || dead_) return;
  if (next_index_ >= cardinality()) return;
  // Replayed duplicates and already-consulted indices see no new events.
  if (next_index_ < replay_until_ || next_index_ < fault_applied_upto_) {
    return;
  }
  const FaultAction action = fault_->OnProduce(next_index_);
  fault_applied_upto_ = next_index_ + 1;
  if (action.die) {
    dead_ = true;
    return;
  }
  next_ready_ += action.extra_silence;
  if (action.replay_from_scratch && next_index_ > 0) {
    // The reconnected source restarts its cursor: indices [0, next_index_)
    // are re-delivered as duplicates. They occupy the delivery positions
    // right after everything delivered so far — including the current
    // uncommitted run — which the CM will discard. The already-drawn
    // arrival offset of the disconnected tuple carries over to replayed
    // tuple 0; later replays re-draw from the delay model.
    const int64_t base = stats_.tuples_delivered + pending_in_run;
    replay_windows_.push_back(ReplayWindow{base, base + next_index_});
    replay_until_ = next_index_;
    next_index_ = 0;
  }
}

void SimWrapper::Hold() {
  DQS_CHECK_MSG(next_index_ == 0 && !suspended_ &&
                    stats_.tuples_delivered == 0,
                "wrapper held after pumping started");
  held_ = true;
}

void SimWrapper::Start(SimTime at) {
  DQS_CHECK_MSG(held_, "Start on a wrapper that was never held");
  held_ = false;
  next_ready_ += at;
}

void SimWrapper::PumpInto(comm::TupleQueue& queue, SimTime now,
                          ArrivalObserver* observer) {
  if (held_) return;  // gated: nothing happens until Start
  if (dead_) return;  // a dead source neither delivers nor ends its stream
  if (Exhausted()) {
    // Covers empty relations, where the stream closes without any push.
    if (!queue.producer_closed()) queue.CloseProducer();
    return;
  }
  bool resumed = false;
  if (suspended_) {
    if (queue.Full()) return;
    // Resumption: the pending tuple enters at the drain time; it had been
    // ready since next_ready_ — the difference is blocked time.
    if (now > next_ready_) stats_.blocked += now - next_ready_;
    next_ready_ = now > next_ready_ ? now : next_ready_;
    suspended_ = false;
    resumed = true;
  }
  while (!dead_ && next_index_ < cardinality() && next_ready_ <= now) {
    if (queue.Full()) {
      suspended_ = true;
      return;
    }
    // Collect the longest run of tuples ready <= now that fits in the
    // queue, drawing each delay exactly as per-tuple delivery would, then
    // move the run as one contiguous span (the relation's tuple array is
    // the source) with a single observer notification. A fault that kills
    // the source or rewinds its cursor (from-scratch replay) breaks the
    // run: the contiguity condition below ends it.
    int64_t space = queue.SpaceLeft();
    if (space > max_run_) space = max_run_;
    const int64_t start = next_index_;
    ts_scratch_.clear();
    do {
      ts_scratch_.push_back(next_ready_);
      ++next_index_;
      if (next_index_ < cardinality()) {
        next_ready_ += model_->NextDelay(next_index_, rng_);
      }
      ApplyFaults(static_cast<int64_t>(ts_scratch_.size()));
    } while (!dead_ && next_index_ < cardinality() && next_ready_ <= now &&
             next_index_ ==
                 start + static_cast<int64_t>(ts_scratch_.size()) &&
             static_cast<int64_t>(ts_scratch_.size()) < space);
    const int64_t run = static_cast<int64_t>(ts_scratch_.size());
    queue.PushBatch(&relation_->tuples[static_cast<size_t>(start)], run);
    if (observer != nullptr) {
      const SimTime* ts = ts_scratch_.data();
      int64_t n = run;
      // The first post-suspension gap reflects mediator backpressure, not
      // the source's delivery rate: advance the observer without sampling.
      if (resumed) {
        observer->OnArrivalSuppressed(ts[0]);
        ++ts;
        --n;
      }
      if (n > 0) observer->OnArrivals(ts, n);
    }
    resumed = false;
    stats_.tuples_delivered += run;
    stats_.finished_at = ts_scratch_.back();
  }
  if (Exhausted() && !queue.producer_closed()) queue.CloseProducer();
}

SimTime SimWrapper::NextArrival() const {
  if (held_ || dead_ || Exhausted() || suspended_) return kSimTimeNever;
  return next_ready_;
}

}  // namespace dqsched::wrapper
