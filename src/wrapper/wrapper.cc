#include "wrapper/wrapper.h"

#include "common/macros.h"

namespace dqsched::wrapper {

SimWrapper::SimWrapper(SourceId id, const storage::Relation* relation,
                       const DelayConfig& delay, uint64_t seed)
    : id_(id),
      relation_(relation),
      model_(MakeDelayModel(delay)),
      rng_(seed) {
  DQS_CHECK(relation_ != nullptr);
  if (!Exhausted()) {
    next_ready_ = model_->NextDelay(0, rng_);
  }
}

void SimWrapper::PumpInto(comm::TupleQueue& queue, SimTime now,
                          ArrivalObserver* observer) {
  if (Exhausted()) {
    // Covers empty relations, where the stream closes without any push.
    if (!queue.producer_closed()) queue.CloseProducer();
    return;
  }
  bool resumed = false;
  if (suspended_) {
    if (queue.Full()) return;
    // Resumption: the pending tuple enters at the drain time; it had been
    // ready since next_ready_ — the difference is blocked time.
    if (now > next_ready_) stats_.blocked += now - next_ready_;
    next_ready_ = now > next_ready_ ? now : next_ready_;
    suspended_ = false;
    resumed = true;
  }
  while (next_index_ < cardinality() && next_ready_ <= now) {
    if (queue.Full()) {
      suspended_ = true;
      return;
    }
    // Collect the longest run of tuples ready <= now that fits in the
    // queue, drawing each delay exactly as per-tuple delivery would, then
    // move the run as one contiguous span (the relation's tuple array is
    // the source) with a single observer notification.
    int64_t space = queue.SpaceLeft();
    if (space > max_run_) space = max_run_;
    const int64_t start = next_index_;
    ts_scratch_.clear();
    do {
      ts_scratch_.push_back(next_ready_);
      ++next_index_;
      if (next_index_ < cardinality()) {
        next_ready_ += model_->NextDelay(next_index_, rng_);
      }
    } while (next_index_ < cardinality() && next_ready_ <= now &&
             static_cast<int64_t>(ts_scratch_.size()) < space);
    const int64_t run = static_cast<int64_t>(ts_scratch_.size());
    queue.PushBatch(&relation_->tuples[static_cast<size_t>(start)], run);
    if (observer != nullptr) {
      const SimTime* ts = ts_scratch_.data();
      int64_t n = run;
      // The first post-suspension gap reflects mediator backpressure, not
      // the source's delivery rate: advance the observer without sampling.
      if (resumed) {
        observer->OnArrivalSuppressed(ts[0]);
        ++ts;
        --n;
      }
      if (n > 0) observer->OnArrivals(ts, n);
    }
    resumed = false;
    stats_.tuples_delivered += run;
    stats_.finished_at = ts_scratch_.back();
  }
  if (Exhausted() && !queue.producer_closed()) queue.CloseProducer();
}

SimTime SimWrapper::NextArrival() const {
  if (Exhausted() || suspended_) return kSimTimeNever;
  return next_ready_;
}

}  // namespace dqsched::wrapper
