#include "core/invariant_auditor.h"

#include <cmath>
#include <map>
#include <string>
#include <vector>

namespace dqsched::core {

namespace {

std::string ChainLabel(const plan::CompiledPlan& compiled, ChainId id) {
  return "chain " + std::to_string(id) + " (" +
         compiled.chain(id).name + ")";
}

/// Depth-first cycle detection over the blocker relation. Returns the id
/// of a chain on a blocking cycle, or kInvalidId when the DAG is acyclic.
ChainId FindBlockingCycle(const plan::CompiledPlan& compiled) {
  enum class Color { kWhite, kGray, kBlack };
  const size_t n = static_cast<size_t>(compiled.num_chains());
  std::vector<Color> color(n, Color::kWhite);
  // Explicit stack of (chain, next-blocker-index) frames.
  std::vector<std::pair<ChainId, size_t>> stack;
  for (ChainId root = 0; root < compiled.num_chains(); ++root) {
    if (color[static_cast<size_t>(root)] != Color::kWhite) continue;
    stack.push_back({root, 0});
    color[static_cast<size_t>(root)] = Color::kGray;
    while (!stack.empty()) {
      auto& [c, next] = stack.back();
      const auto& blockers = compiled.chain(c).blockers;
      if (next >= blockers.size()) {
        color[static_cast<size_t>(c)] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      const ChainId b = blockers[next++];
      if (color[static_cast<size_t>(b)] == Color::kGray) return b;
      if (color[static_cast<size_t>(b)] == Color::kWhite) {
        color[static_cast<size_t>(b)] = Color::kGray;
        stack.push_back({b, 0});
      }
    }
  }
  return kInvalidId;
}

bool NonNegativeFinite(double v) { return std::isfinite(v) && v >= 0.0; }

}  // namespace

Status AuditCompiledPlan(const plan::CompiledPlan& compiled) {
  if (compiled.num_chains() == 0) {
    return Status::Internal("compiled plan has no chains");
  }
  if (compiled.result_chain < 0 ||
      compiled.result_chain >= compiled.num_chains()) {
    return Status::Internal("result_chain " +
                            std::to_string(compiled.result_chain) +
                            " out of range [0, " +
                            std::to_string(compiled.num_chains()) + ")");
  }
  if (static_cast<int>(compiled.operand_of_join.size()) !=
          compiled.num_joins ||
      static_cast<int>(compiled.join_build_field.size()) !=
          compiled.num_joins) {
    return Status::Internal(
        "join tables sized " + std::to_string(compiled.operand_of_join.size()) +
        "/" + std::to_string(compiled.join_build_field.size()) +
        " for " + std::to_string(compiled.num_joins) + " joins");
  }

  // Positional ids, a single result chain, valid sinks.
  int result_chains = 0;
  for (ChainId c = 0; c < compiled.num_chains(); ++c) {
    const plan::ChainInfo& info = compiled.chain(c);
    if (info.id != c) {
      return Status::Internal("chain at index " + std::to_string(c) +
                              " carries id " + std::to_string(info.id));
    }
    if (info.is_result) {
      ++result_chains;
      if (c != compiled.result_chain) {
        return Status::Internal(ChainLabel(compiled, c) +
                                " is marked is_result but result_chain is " +
                                std::to_string(compiled.result_chain));
      }
    } else if (info.sink_join < 0 || info.sink_join >= compiled.num_joins) {
      return Status::Internal(ChainLabel(compiled, c) +
                              " sinks to invalid join " +
                              std::to_string(info.sink_join));
    }
  }
  if (result_chains != 1) {
    return Status::Internal(std::to_string(result_chains) +
                            " result chains; a plan must have exactly one");
  }

  // Operator partition: every filter node and every probed join belongs to
  // exactly one chain (paper Section 2.2: the decomposition is a partition
  // of the physical operators).
  // Sorted map (not unordered): the first-reported duplicate owner must
  // not depend on hash iteration order (dqs-analyze rule unordered-iter).
  std::map<NodeId, ChainId> filter_owner;
  std::vector<ChainId> probe_owner(static_cast<size_t>(compiled.num_joins),
                                   kInvalidId);
  for (ChainId c = 0; c < compiled.num_chains(); ++c) {
    for (const plan::ChainOp& op : compiled.chain(c).ops) {
      switch (op.kind) {
        case plan::ChainOpKind::kFilter: {
          auto [it, inserted] = filter_owner.emplace(op.node, c);
          if (!inserted) {
            return Status::Internal(
                "operator partition violated: filter node " +
                std::to_string(op.node) + " appears in " +
                ChainLabel(compiled, it->second) + " and " +
                ChainLabel(compiled, c));
          }
          if (!(op.selectivity >= 0.0 && op.selectivity <= 1.0)) {
            return Status::Internal("filter node " + std::to_string(op.node) +
                                    " in " + ChainLabel(compiled, c) +
                                    " has selectivity " +
                                    std::to_string(op.selectivity) +
                                    " outside [0, 1]");
          }
          break;
        }
        case plan::ChainOpKind::kProbe: {
          if (op.join < 0 || op.join >= compiled.num_joins) {
            return Status::Internal(ChainLabel(compiled, c) +
                                    " probes invalid join " +
                                    std::to_string(op.join));
          }
          ChainId& owner = probe_owner[static_cast<size_t>(op.join)];
          if (owner != kInvalidId) {
            return Status::Internal(
                "operator partition violated: probe of join " +
                std::to_string(op.join) + " appears in " +
                ChainLabel(compiled, owner) + " and " +
                ChainLabel(compiled, c));
          }
          owner = c;
          break;
        }
      }
    }
  }

  // Every join has exactly one build producer and exactly one prober, and
  // the producer's sink agrees with the join table.
  for (JoinId j = 0; j < compiled.num_joins; ++j) {
    const ChainId producer = compiled.operand_of_join[static_cast<size_t>(j)];
    if (producer < 0 || producer >= compiled.num_chains()) {
      return Status::Internal("join " + std::to_string(j) +
                              " has invalid operand producer " +
                              std::to_string(producer));
    }
    const plan::ChainInfo& pinfo = compiled.chain(producer);
    if (pinfo.is_result || pinfo.sink_join != j) {
      return Status::Internal(ChainLabel(compiled, producer) +
                              " is recorded as the operand producer of join " +
                              std::to_string(j) + " but sinks to " +
                              (pinfo.is_result
                                   ? std::string("the result")
                                   : "join " + std::to_string(pinfo.sink_join)));
    }
    if (pinfo.build_key_field !=
        compiled.join_build_field[static_cast<size_t>(j)]) {
      return Status::Internal(
          "join " + std::to_string(j) + " build field mismatch: table says " +
          std::to_string(compiled.join_build_field[static_cast<size_t>(j)]) +
          ", producer " + ChainLabel(compiled, producer) + " says " +
          std::to_string(pinfo.build_key_field));
    }
    if (probe_owner[static_cast<size_t>(j)] == kInvalidId) {
      return Status::Internal("join " + std::to_string(j) +
                              " is probed by no chain");
    }
  }

  // Blocker complementarity: blockers(c) is exactly the set of operand
  // producers of c's probe ops ("p1 blocks p2", paper Section 4.1).
  for (ChainId c = 0; c < compiled.num_chains(); ++c) {
    const plan::ChainInfo& info = compiled.chain(c);
    std::vector<bool> expected(static_cast<size_t>(compiled.num_chains()),
                               false);
    for (const plan::ChainOp& op : info.ops) {
      if (op.kind == plan::ChainOpKind::kProbe) {
        expected[static_cast<size_t>(
            compiled.operand_of_join[static_cast<size_t>(op.join)])] = true;
      }
    }
    std::vector<bool> listed(static_cast<size_t>(compiled.num_chains()),
                             false);
    for (ChainId b : info.blockers) {
      if (b < 0 || b >= compiled.num_chains() || b == c) {
        return Status::Internal(ChainLabel(compiled, c) +
                                " lists invalid blocker " +
                                std::to_string(b));
      }
      if (listed[static_cast<size_t>(b)]) {
        return Status::Internal(ChainLabel(compiled, c) +
                                " lists blocker " + std::to_string(b) +
                                " twice");
      }
      listed[static_cast<size_t>(b)] = true;
    }
    for (ChainId b = 0; b < compiled.num_chains(); ++b) {
      if (expected[static_cast<size_t>(b)] != listed[static_cast<size_t>(b)]) {
        return Status::Internal(
            "blocker mismatch: " + ChainLabel(compiled, c) +
            (expected[static_cast<size_t>(b)]
                 ? " probes an operand of " + ChainLabel(compiled, b) +
                       " but does not list it as a blocker"
                 : " lists " + ChainLabel(compiled, b) +
                       " as a blocker but probes none of its operands"));
      }
    }
  }

  // Acyclicity of the blocking-edge DAG (ancestors* must terminate).
  const ChainId on_cycle = FindBlockingCycle(compiled);
  if (on_cycle != kInvalidId) {
    return Status::Internal("blocking edges form a cycle through " +
                            ChainLabel(compiled, on_cycle));
  }

  // Annotation sanity: the critical degree and the memory admission read
  // these; negative or non-finite values poison the scheduler silently.
  for (ChainId c = 0; c < compiled.num_chains(); ++c) {
    const plan::ChainInfo& info = compiled.chain(c);
    if (!NonNegativeFinite(info.est_input_card) ||
        !NonNegativeFinite(info.est_output_card) ||
        !NonNegativeFinite(info.est_cpu_per_tuple_ns) ||
        !NonNegativeFinite(info.est_open_cpu_ns) ||
        !NonNegativeFinite(info.est_mem_bytes) ||
        !NonNegativeFinite(info.est_sink_mem_bytes)) {
      return Status::Internal(ChainLabel(compiled, c) +
                              " carries a negative or non-finite annotation");
    }
  }

  // Closure-index coherence: the flattened ancestor/descendant arenas the
  // scheduler's hot paths read must agree with the reference DFS. Plans
  // hand-built without Compile() carry no index and are exempt.
  if (compiled.HasClosureIndex()) {
    DQS_RETURN_IF_ERROR(compiled.ValidateClosureIndex());
  }
  return Status::Ok();
}

Status AuditSchedulingPlan(const ExecutionState& state,
                           const SchedulingPlan& sp,
                           const exec::ExecContext& ctx) {
  if (sp.fragments.size() != sp.critical_ns.size()) {
    return Status::Internal(
        "scheduling plan arrays diverge: " +
        std::to_string(sp.fragments.size()) + " fragments vs " +
        std::to_string(sp.critical_ns.size()) + " priorities");
  }
  if (sp.empty()) {
    if (!state.QueryDone()) {
      return Status::Internal("empty scheduling plan with the query "
                              "unfinished");
    }
    return Status::Ok();
  }

  std::vector<bool> seen(static_cast<size_t>(state.num_fragments()), false);
  int64_t unopened_bytes = 0;
  for (size_t i = 0; i < sp.fragments.size(); ++i) {
    const int id = sp.fragments[i];
    if (id < 0 || id >= state.num_fragments()) {
      return Status::Internal("scheduled fragment " + std::to_string(id) +
                              " out of range [0, " +
                              std::to_string(state.num_fragments()) + ")");
    }
    if (seen[static_cast<size_t>(id)]) {
      return Status::Internal("fragment " + std::to_string(id) +
                              " scheduled twice");
    }
    seen[static_cast<size_t>(id)] = true;
    if (!state.FragmentActive(id)) {
      return Status::Internal("scheduled fragment " + std::to_string(id) +
                              " (" + state.fragment(id).name() +
                              ") is not active");
    }
    if (!std::isfinite(sp.critical_ns[i])) {
      return Status::Internal("fragment " + std::to_string(id) +
                              " has a non-finite priority");
    }
    // C-schedulability (paper Section 4.1): a chain-slot fragment runs
    // only when all ancestor chains finished. MFs and MA materializations
    // are exempt — materializing ahead of schedulability is their point.
    if (id < state.num_chains() && !state.IsMf(id)) {
      const ChainId chain = state.FragmentChain(id);
      if (state.ChainDone(chain)) {
        return Status::Internal("finished chain " + std::to_string(chain) +
                                " is scheduled");
      }
      if (!state.CSchedulable(chain)) {
        return Status::Internal(
            "C-schedulability violated: chain " + std::to_string(chain) +
            " (" + state.compiled().chain(chain).name +
            ") is scheduled with unfinished ancestors");
      }
    }
    if (!state.fragment(id).opened()) {
      unopened_bytes += state.fragment(id).BytesToOpen(ctx);
    }
  }

  // M-schedulability of the admitted set (paper Section 4.2). A
  // single-fragment plan may exceed the remaining memory by design: the
  // progress guarantee runs the top candidate alone and the DQO revises
  // the plan when its Open fails.
  if (sp.fragments.size() > 1 && unopened_bytes > ctx.memory.available()) {
    return Status::Internal(
        "M-schedulability violated: scheduled fragments need " +
        std::to_string(unopened_bytes) + " bytes to open but only " +
        std::to_string(ctx.memory.available()) + " of the " +
        std::to_string(ctx.memory.budget()) + "-byte budget is available");
  }
  return Status::Ok();
}

Status AuditExecutionState(const ExecutionState& state,
                           const exec::ExecContext& ctx) {
  const plan::CompiledPlan& compiled = state.compiled();

  // --- Memory balance (paper Section 3.3) -------------------------------
  const int64_t granted = ctx.memory.granted();
  if (granted < 0 || granted > ctx.memory.budget()) {
    return Status::Internal("memory accountant granted " +
                            std::to_string(granted) +
                            " bytes outside the budget " +
                            std::to_string(ctx.memory.budget()));
  }
  if (ctx.memory.peak() > ctx.memory.budget()) {
    return Status::Internal("memory accountant peak " +
                            std::to_string(ctx.memory.peak()) +
                            " exceeded the budget " +
                            std::to_string(ctx.memory.budget()));
  }
  int64_t operand_grants = 0;
  for (JoinId j = 0; j < compiled.num_joins; ++j) {
    const int64_t bytes = state.operands().Get(j).granted_bytes();
    if (bytes < 0) {
      return Status::Internal("operand of join " + std::to_string(j) +
                              " holds a negative grant");
    }
    operand_grants += bytes;
  }
  if (state.options().shared_context ? operand_grants > granted
                                     : operand_grants != granted) {
    return Status::Internal(
        "memory balance violated: accountant granted " +
        std::to_string(granted) + " bytes but live operand reservations sum "
        "to " + std::to_string(operand_grants));
  }

  // --- Tuple conservation across queues and fragments -------------------
  // Every tuple popped from a source's queue must be consumed by a
  // fragment runtime of that source — current, or retired by a DQO stage
  // advance. Sources of other queries sharing the context are untouched:
  // source id spaces are disjoint by construction.
  // Sorted by SourceId so the conservation sweep below (and therefore
  // which violation is reported first) is deterministic across runs and
  // standard libraries.
  std::map<SourceId, int64_t> consumed_by_source;
  for (ChainId c = 0; c < compiled.num_chains(); ++c) {
    const SourceId s = compiled.chain(c).source;
    if (s < 0 || s >= ctx.comm.num_sources()) {
      return Status::Internal("chain " + std::to_string(c) +
                              " reads invalid source " + std::to_string(s));
    }
    consumed_by_source[s] += state.RetiredLiveConsumed(c);
  }
  for (int f = 0; f < state.num_fragments(); ++f) {
    const exec::FragmentRuntime& rt = state.fragment(f);
    const SourceId s = rt.source().remote_source();
    if (s == kInvalidId) continue;
    if (s < 0 || s >= ctx.comm.num_sources()) {
      return Status::Internal("fragment " + rt.name() +
                              " reads invalid source " + std::to_string(s));
    }
    consumed_by_source[s] += rt.stats().consumed_live;
  }
  for (const auto& [s, consumed] : consumed_by_source) {
    const comm::TupleQueue& queue = ctx.comm.queue(s);
    if (queue.total_pushed() != queue.total_popped() + queue.size()) {
      return Status::Internal(
          "queue of source " + std::to_string(s) + " lost tuples: pushed " +
          std::to_string(queue.total_pushed()) + ", popped " +
          std::to_string(queue.total_popped()) + ", holding " +
          std::to_string(queue.size()));
    }
    const auto& wstats = ctx.comm.wrapper(s).stats();
    if (wstats.tuples_delivered != queue.total_pushed()) {
      return Status::Internal(
          "source " + std::to_string(s) + " delivered " +
          std::to_string(wstats.tuples_delivered) + " tuples but its queue "
          "recorded " + std::to_string(queue.total_pushed()) + " pushes");
    }
    // Replayed duplicates are popped by the CM's dedup filter but never
    // handed to a fragment, so conservation holds modulo the discards.
    const int64_t discarded = ctx.comm.ReplayDiscarded(s);
    if (queue.total_popped() != consumed + discarded) {
      return Status::Internal(
          "tuple conservation violated for source " + std::to_string(s) +
          ": queue popped " + std::to_string(queue.total_popped()) +
          " tuples but fragments consumed " + std::to_string(consumed) +
          " with " + std::to_string(discarded) + " replay discards");
    }
  }

  // --- Per-chain structure, MF/CF complementarity (Section 4.4) ---------
  for (ChainId c = 0; c < compiled.num_chains(); ++c) {
    const plan::ChainInfo& info = compiled.chain(c);
    const int slot = state.ChainFragment(c);
    if (state.ChainDone(c) && state.FragmentActive(slot)) {
      return Status::Internal("chain " + std::to_string(c) + " (" +
                              info.name + ") is done but its fragment is "
                              "still active");
    }
    if (state.CfActivated(c) && !state.Degraded(c)) {
      return Status::Internal("chain " + std::to_string(c) +
                              " has an activated CF without a degradation");
    }
    if (!state.Degraded(c)) continue;

    const int mf = state.MfFragment(c);
    if (mf < state.num_chains() || mf >= state.num_fragments() ||
        !state.IsMf(mf) || state.FragmentChain(mf) != c) {
      return Status::Internal("chain " + std::to_string(c) +
                              " is degraded but its MF fragment " +
                              std::to_string(mf) + " is inconsistent");
    }
    const exec::FragmentRuntime& mf_rt = state.fragment(mf);
    const int leading = state.LeadingFilters(c);
    if (static_cast<int>(mf_rt.spec().ops.size()) != leading) {
      return Status::Internal(
          "MF/CF complementarity violated: MF(" + info.name + ") applies " +
          std::to_string(mf_rt.spec().ops.size()) + " operators, expected "
          "the chain's " + std::to_string(leading) + " leading filters");
    }
    // MF output goes to its temp; filters only drop tuples.
    if (mf_rt.stats().produced > mf_rt.stats().consumed) {
      return Status::Internal("MF(" + info.name + ") produced more than it "
                              "consumed");
    }
    // A cancelled query's temps are dropped; a dropped temp holds no
    // tuples and is exempt from the cardinality law. IsDropped must be
    // checked first — every other accessor (IsSealed, Cardinality)
    // hard-fails on a dropped temp.
    const TempId mf_temp = state.MfTemp(c);
    if (!ctx.temps.IsDropped(mf_temp) && ctx.temps.IsSealed(mf_temp) &&
        ctx.temps.Cardinality(mf_temp) != mf_rt.stats().produced) {
      return Status::Internal(
          "degradation lost tuples: MF(" + info.name + ") produced " +
          std::to_string(mf_rt.stats().produced) + " but its temp holds " +
          std::to_string(ctx.temps.Cardinality(mf_temp)));
    }
    if (state.CfActivated(c)) {
      if (state.FragmentActive(mf)) {
        return Status::Internal("MF(" + info.name + ") still active after "
                                "CF activation");
      }
      // The CF (or its first DQO split stage, which inherits the source)
      // must skip exactly the filters the MF pre-applied.
      const exec::FragmentRuntime& cf_rt = state.fragment(slot);
      if (!state.ChainDone(c) &&
          cf_rt.source().remote_source() == info.source &&
          cf_rt.spec().temp_skip_ops != leading) {
        return Status::Internal(
            "MF/CF complementarity violated: CF(" + info.name + ") skips " +
            std::to_string(cf_rt.spec().temp_skip_ops) +
            " operators on materialized batches, expected " +
            std::to_string(leading));
      }
    }
  }

  // --- Fragment/slot consistency ----------------------------------------
  for (int f = 0; f < state.num_fragments(); ++f) {
    const exec::FragmentRuntime& rt = state.fragment(f);
    const ChainId origin = state.FragmentChain(f);
    if (rt.spec().origin_chain != origin) {
      return Status::Internal("fragment " + rt.name() + " slot chain " +
                              std::to_string(origin) +
                              " disagrees with its spec origin " +
                              std::to_string(rt.spec().origin_chain));
    }
    if (rt.stats().consumed < 0 || rt.stats().produced < 0 ||
        rt.stats().consumed_live > rt.stats().consumed) {
      return Status::Internal("fragment " + rt.name() +
                              " has inconsistent consumption counters");
    }
  }

  // --- Critical-degree inputs (Section 4.3) -----------------------------
  for (ChainId c = 0; c < compiled.num_chains(); ++c) {
    if (state.ChainDone(c)) continue;
    const SourceId s = compiled.chain(c).source;
    if (ctx.comm.RemainingTuples(s) < 0) {
      return Status::Internal("source " + std::to_string(s) +
                              " reports negative remaining tuples");
    }
    const double w = ctx.comm.EstimatedWaitNs(s);
    if (!NonNegativeFinite(w)) {
      return Status::Internal("source " + std::to_string(s) +
                              " reports a negative or non-finite estimated "
                              "wait");
    }
  }
  return Status::Ok();
}

Status AuditAll(const ExecutionState& state, const SchedulingPlan& sp,
                const exec::ExecContext& ctx) {
  DQS_RETURN_IF_ERROR(AuditCompiledPlan(state.compiled()));
  DQS_RETURN_IF_ERROR(AuditExecutionState(state, ctx));
  return AuditSchedulingPlan(state, sp, ctx);
}

}  // namespace dqsched::core
