// Multi-query execution — the paper's Section 6 future work made
// concrete: "we plan to study the behavior of our approach in the context
// of multi-query execution. As soon as we consider such context, we face
// the classical tradeoff between throughput and response time."
//
// N integration queries share one mediator: one virtual clock, one memory
// budget, one local disk, one communication manager holding every query's
// wrappers. Two execution modes:
//
//  * kSerial  — queries run one after another (each with the given
//    per-query strategy): the classical admission-controlled mediator.
//  * kShared  — queries run concurrently, time-sliced batch-wise through
//    their own DQS/DQP instances; the global clock stalls only when every
//    query starves.
//
// The metrics expose both sides of the tradeoff: per-query response
// times (latency) and the makespan (throughput).

#ifndef DQSCHED_CORE_MULTI_QUERY_H_
#define DQSCHED_CORE_MULTI_QUERY_H_

#include <memory>
#include <vector>

#include "core/cache_manager.h"
#include "core/mediator.h"
#include "core/metrics.h"
#include "core/strategy.h"
#include "plan/canonical_plans.h"

namespace dqsched::core {

/// How the query mix is interleaved.
enum class MultiMode {
  kSerial,  // one query at a time
  kShared,  // concurrent, batch-sliced
};

const char* MultiModeName(MultiMode mode);

/// Configuration of a multi-query mediator.
struct MultiQueryConfig {
  sim::CostModel cost;
  int64_t memory_budget_bytes = 256LL * 1024 * 1024;
  comm::CommConfig comm;
  StrategyConfig strategy;
  /// Batches one query executes before yielding to the next (kShared).
  int64_t slice_batches = 32;
  uint64_t seed = 42;
  bool verify_results = true;
  /// kShared: route a RateChange replan only to the queries actually
  /// reading the drifting source (CommManager::LastRateChangeSource)
  /// instead of replanning the query that happened to observe it.
  /// Changes replan timing and therefore degradation decisions and
  /// metrics; off by default to keep the baseline byte-identical
  /// (DESIGN.md §9).
  bool targeted_replans = false;
  /// Operator kernels (vectorized by default; scalar for A/B runs).
  exec::KernelConfig kernels;
  /// Result cache (DESIGN.md §14). Entries admitted in one Execute become
  /// visible to the next Execute on the same mediator (epoch gating), so
  /// a single run is byte-identical to cache=off on every non-wall metric
  /// except the CacheStats counters themselves.
  CacheConfig cache;
};

/// Results of one multi-query execution.
struct MultiQueryMetrics {
  /// Virtual completion time of each query (kShared: from the common
  /// start; kSerial: cumulative — still "when did this query's user get
  /// the answer").
  std::vector<SimDuration> response_times;
  /// Terminal status per query, parallel to response_times. The
  /// single-mediator modes never shed or retry, so only kOk — or
  /// kPartial, when a fault policy degraded the answer — appear here;
  /// the column exists so a degraded query is distinguishable from a
  /// slow one in the bench tables (§13).
  std::vector<QueryStatus> statuses;
  /// Completion of the whole mix (the throughput side of the tradeoff).
  SimDuration makespan = 0;
  /// Mean response time across queries (the latency side).
  SimDuration mean_response = 0;
  int64_t total_degradations = 0;
  int64_t total_result_tuples = 0;
  int64_t peak_memory_bytes = 0;
  /// Shared-device aggregates. Merge order is stable and documented:
  /// kSerial sums per-query stats in ascending query index; kShared reads
  /// the one shared context (per-wrapper fault injection counters are
  /// folded in ascending source id either way).
  sim::DiskStats disk;
  sim::NetworkStats network;
  storage::TempStoreStats temps;
  FaultStats fault;
  /// Result-cache activity of this run. Excluded from the cache-off
  /// byte-identity contract (like planning_host_seconds).
  CacheStats cache;
};

/// A mix of integration queries sharing one mediator.
class MultiQueryMediator {
 public:
  /// Validates and prepares every query (compile, annotate, generate
  /// data, reference answers). Queries keep independent catalogs; their
  /// sources are distinct wrappers at the shared mediator.
  static Result<MultiQueryMediator> Create(
      std::vector<plan::QuerySetup> queries, MultiQueryConfig config);

  MultiQueryMediator(MultiQueryMediator&&) = default;
  MultiQueryMediator& operator=(MultiQueryMediator&&) = default;

  /// Runs the mix. `strategy` selects the per-query machinery (kSeq's
  /// iterator order or kDse's dynamic scheduling); `mode` the
  /// interleaving. Deterministic per (config, seed).
  Result<MultiQueryMetrics> Execute(StrategyKind strategy,
                                    MultiMode mode) const;

  int num_queries() const { return static_cast<int>(queries_.size()); }

  /// Drops the cache (entries and counters): the next Execute runs cold,
  /// byte-identical to cache=off on every non-wall metric.
  void ResetCache() const;
  /// Declares source-data churn on global source id `logical_key` (the
  /// multi-query modes map sources to themselves): dependent entries
  /// become stale misses.
  void BumpCacheVersion(int64_t logical_key) const;

 private:
  struct PreparedQuery {
    wrapper::Catalog catalog;
    plan::CompiledPlan compiled;  // chain sources remapped to global ids
    std::vector<storage::Relation> data;
    plan::ReferenceResult reference;
    SourceId source_offset = 0;
  };

  MultiQueryMediator(std::vector<PreparedQuery> queries,
                     MultiQueryConfig config)
      : queries_(std::move(queries)), config_(std::move(config)) {}

  Result<MultiQueryMetrics> ExecuteShared(StrategyKind strategy) const;
  Result<MultiQueryMetrics> ExecuteSerial(StrategyKind strategy) const;

  std::vector<PreparedQuery> queries_;
  MultiQueryConfig config_;
  /// Created lazily on the first cache-enabled Execute and retained
  /// across Execute calls (warm runs). mutable: a memo, not identity —
  /// Execute stays const.
  mutable std::unique_ptr<CacheManager> cache_;
};

}  // namespace dqsched::core

#endif  // DQSCHED_CORE_MULTI_QUERY_H_
