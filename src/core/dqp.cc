#include "core/dqp.h"

#include <algorithm>
#include <vector>

#include "common/macros.h"

namespace dqsched::core {

Result<Event> Dqp::RunPhase(ExecutionState& state, const SchedulingPlan& sp,
                            exec::ExecContext& ctx) {
  ++execution_phases_;
  SimDuration stalled_this_phase = 0;
  int64_t batches_this_phase = 0;
  const size_t n = sp.fragments.size();

  // The active set is constant within a phase (degradation, CF activation,
  // DQO splits and fragment completion all return to the scheduler), so
  // resolve each scheduled fragment's runtime once; a null slot marks an
  // inactive fragment. The selection passes below must keep their exact
  // per-iteration call sequence: Available() on temp-backed sources issues
  // charged disk reads that advance the virtual clock, so pass order and
  // short-circuiting are observable in the simulated metrics.
  std::vector<exec::FragmentRuntime*> frags(n, nullptr);
  bool any_active = false;
  for (size_t k = 0; k < n; ++k) {
    if (state.FragmentActive(sp.fragments[k])) {
      frags[k] = &state.fragment(sp.fragments[k]);
      any_active = true;
    }
  }

  for (;;) {
    ctx.Pump();

    // Abnormal interruption: the query's virtual-time budget expired.
    if (config_.deadline > 0 && ctx.clock.now() >= config_.deadline) {
      state.trace().Record(ctx.clock.now(), TraceEventKind::kDeadline, -1,
                           "query deadline expired");
      return Event{EventKind::kDeadlineExceeded, -1};
    }

    // Abnormal interruption: a liveness transition from the failure
    // detector (armed only for fault-injection runs).
    if (ctx.comm.failure_detection()) {
      ctx.comm.UpdateFaultState(ctx.clock.now());
      comm::FaultSignal sig;
      if (ctx.comm.TakeFaultSignal(&sig)) {
        const bool down = sig.kind != comm::FaultSignal::Kind::kRecovered;
        state.trace().Record(
            ctx.clock.now(),
            down ? TraceEventKind::kSourceDown
                 : TraceEventKind::kSourceRecovered,
            -1,
            "source " + std::to_string(sig.source) +
                (sig.kind == comm::FaultSignal::Kind::kDead
                     ? " declared dead"
                     : (down ? " suspected down" : " recovered")));
        Event evt{down ? EventKind::kSourceDown : EventKind::kSourceRecovered,
                  -1};
        evt.source = sig.source;
        return evt;
      }
    }

    // Abnormal interruption: delivery rates drifted from the planning
    // snapshot; the scheduling plan may be stale.
    if (ctx.comm.RateChangedSincePlan(ctx.clock.now())) {
      state.trace().Record(ctx.clock.now(), TraceEventKind::kRateChange, -1,
                           "delivery-rate estimates drifted");
      return Event{EventKind::kRateChange, -1};
    }

    // Normal interruption: a fragment's input is exhausted and drained.
    for (size_t k = 0; k < n; ++k) {
      exec::FragmentRuntime* frag = frags[k];
      if (frag != nullptr && frag->Finished(ctx) && frag->Available(ctx) == 0) {
        return Event{EventKind::kEndOfQf, sp.fragments[k]};
      }
    }
    if (!any_active) return Event{EventKind::kPlanExhausted, -1};

    // Pick a fragment. Two disciplines alternate batch-by-batch:
    //  * priority: highest-priority fragment with a full batch (or a
    //    stream that will never grow) — the paper's rule;
    //  * backpressure relief: a wrapper suspended on a full queue has its
    //    relation's total retrieval time stretched for every moment it
    //    stays suspended, so throttled streams (in priority order) get
    //    every other turn when the CPU is oversubscribed.
    // Fallback: any fragment with data. With round_robin (MA phase 1) the
    // priority discipline rotates instead.
    int chosen = -1;
    exec::FragmentRuntime* chosen_frag = nullptr;
    const bool relief_turn = (batches_ & 1) != 0;
    if (relief_turn) {
      for (size_t k = 0; k < n && chosen < 0; ++k) {
        exec::FragmentRuntime* frag = frags[k];
        if (frag == nullptr) continue;
        if (frag->Backpressured(ctx) && frag->Available(ctx) > 0) {
          chosen = sp.fragments[k];
          chosen_frag = frag;
        }
      }
    }
    for (size_t k = 0; k < n && chosen < 0; ++k) {
      const size_t slot = config_.round_robin ? (rr_cursor_ + k) % n : k;
      exec::FragmentRuntime* frag = frags[slot];
      if (frag == nullptr) continue;
      const int64_t avail = frag->Available(ctx);
      if (avail <= 0) continue;
      if (avail >= config_.batch_size ||
          frag->NextArrival(ctx) == kSimTimeNever) {
        chosen = sp.fragments[slot];
        chosen_frag = frag;
        if (config_.round_robin) rr_cursor_ = static_cast<int>(slot + 1);
      }
    }
    for (size_t k = 0; k < n && chosen < 0; ++k) {
      exec::FragmentRuntime* frag = frags[k];
      if (frag == nullptr) continue;
      if (frag->Backpressured(ctx) && frag->Available(ctx) > 0) {
        chosen = sp.fragments[k];
        chosen_frag = frag;
      }
    }
    for (size_t k = 0; k < n && chosen < 0; ++k) {
      exec::FragmentRuntime* frag = frags[k];
      if (frag == nullptr) continue;
      if (frag->Available(ctx) > 0) {
        chosen = sp.fragments[k];
        chosen_frag = frag;
      }
    }

    if (chosen >= 0) {
      exec::FragmentRuntime& frag = *chosen_frag;
      Result<int64_t> consumed = frag.ProcessBatch(ctx, config_.batch_size);
      if (!consumed.ok()) {
        if (consumed.status().code() == StatusCode::kResourceExhausted) {
          // M-schedulability violated at open: hand to the DQO.
          state.trace().Record(ctx.clock.now(),
                               TraceEventKind::kMemoryOverflow, chosen,
                               frag.name() + ": " +
                                   consumed.status().message());
          return Event{EventKind::kMemoryOverflow, chosen};
        }
        return consumed.status();
      }
      ++batches_;
      stalled_this_phase = 0;  // the timeout measures *consecutive* starvation
      state.trace().RecordBatch(ctx.clock.now(), chosen, consumed.value());
      if (frag.Finished(ctx)) {
        state.trace().Record(ctx.clock.now(), TraceEventKind::kEndOfQf,
                             chosen, frag.name() + " finished");
        return Event{EventKind::kEndOfQf, chosen};
      }
      if (config_.slice_batches > 0 &&
          ++batches_this_phase >= config_.slice_batches) {
        return Event{EventKind::kSliceEnd, -1};
      }
      continue;
    }

    // Everything starved. In multi-query mode, yield: another query may
    // have work, and only the driver can see across queries.
    if (config_.yield_on_starvation) return Event{EventKind::kStarved, -1};
    // Stall until the earliest possible arrival of any scheduled fragment
    // ("the DQP is stalled only if there is no available data for all the
    // fragments that are scheduled").
    SimTime next = kSimTimeNever;
    for (size_t k = 0; k < n; ++k) {
      if (frags[k] == nullptr) continue;
      next = std::min(next, frags[k]->NextArrival(ctx));
    }
    // A silent (possibly failed) source never schedules an arrival, so the
    // detector's thresholds bound the stall: the clock must reach them for
    // suspicion/death to be declared. Same for the query deadline.
    if (ctx.comm.failure_detection()) {
      next = std::min(next, ctx.comm.NextFaultDeadline(ctx.clock.now()));
    }
    if (config_.deadline > 0) next = std::min(next, config_.deadline);
    if (next == kSimTimeNever) {
      // No arrival will ever come, yet nothing was finished above: the
      // plan cannot make progress — let the scheduler revise it.
      return Event{EventKind::kPlanExhausted, -1};
    }
    DQS_CHECK_MSG(next > ctx.clock.now(),
                  "stall target not in the future (deadlock?)");
    const SimDuration wait = next - ctx.clock.now();
    if (stalled_this_phase + wait > config_.stall_timeout) {
      ctx.clock.StallUntil(ctx.clock.now() +
                           (config_.stall_timeout - stalled_this_phase));
      state.trace().Record(ctx.clock.now(), TraceEventKind::kTimeout, -1,
                           "all scheduled fragments starved");
      return Event{EventKind::kTimeout, -1};
    }
    stalled_this_phase += wait;
    ctx.clock.StallUntil(next);
  }
}

}  // namespace dqsched::core
