// The Dynamic Query Scheduler (paper Sections 3.3 and 4).
//
// At each planning phase the DQS:
//   1. snapshots delivery-rate estimates (future RateChange baseline),
//   2. activates complement fragments of degraded chains that became
//      C-schedulable,
//   3. collects schedulable fragments (C-schedulable chains + running MFs),
//   4. degrades critical non-C-schedulable chains whose benefit
//      materialization indicator exceeds the threshold bmt (Section 4.4),
//   5. orders fragments by descending critical degree (Section 4.3),
//   6. admits fragments greedily under the memory budget (M-schedulability
//      and scheduling-plan admission, Sections 4.1-4.2), invoking the DQO
//      to split a chain that cannot fit even alone.
//
// The result is the *scheduling plan*: a totally ordered set of query
// fragments the DQP executes concurrently.

#ifndef DQSCHED_CORE_DQS_H_
#define DQSCHED_CORE_DQS_H_

#include <vector>

#include "common/status.h"
#include "core/dqo.h"
#include "core/execution_state.h"
#include "exec/exec_context.h"

namespace dqsched::core {

/// Scheduler tunables.
struct DqsConfig {
  /// Benefit materialization threshold: a chain degrades only when
  /// bmi = w_p / (2*IO_p) exceeds this (paper fixes it to 1 for
  /// single-query experiments).
  double bmt = 1.0;
};

/// The totally ordered fragment set of one execution phase.
struct SchedulingPlan {
  /// Fragment ids, highest priority first.
  std::vector<int> fragments;
  /// Critical degree of each fragment at planning time (parallel array,
  /// nanoseconds of projected idle time; diagnostics).
  std::vector<double> critical_ns;

  bool empty() const { return fragments.empty(); }
};

/// The scheduler. Stateless between phases apart from counters.
class Dqs {
 public:
  explicit Dqs(const DqsConfig& config) : config_(config) {}

  /// Produces the next scheduling plan, mutating `state` (degradations, CF
  /// activations, DQO-mediated splits). An empty plan with the query
  /// unfinished is an internal error.
  Result<SchedulingPlan> ComputePlan(ExecutionState& state,
                                     exec::ExecContext& ctx, Dqo& dqo);

  /// Critical degree of chain p: n_p * (w_p - c_p) in nanoseconds (paper
  /// Section 4.3) with n_p the tuples still to arrive, w_p the estimated
  /// mean waiting time, c_p the estimated per-tuple processing time.
  static double ChainCritical(const ExecutionState& state,
                              const exec::ExecContext& ctx, ChainId chain);

  /// Benefit materialization indicator of chain p: w_p / (2 * IO_p)
  /// (paper Section 4.4).
  static double Bmi(const ExecutionState& state, const exec::ExecContext& ctx,
                    ChainId chain);

  int64_t planning_phases() const { return planning_phases_; }
  double planning_host_seconds() const { return planning_host_seconds_; }

 private:
  DqsConfig config_;
  int64_t planning_phases_ = 0;
  double planning_host_seconds_ = 0.0;
};

}  // namespace dqsched::core

#endif  // DQSCHED_CORE_DQS_H_
