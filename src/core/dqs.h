// The Dynamic Query Scheduler (paper Sections 3.3 and 4).
//
// At each planning phase the DQS:
//   1. snapshots delivery-rate estimates (future RateChange baseline),
//   2. activates complement fragments of degraded chains that became
//      C-schedulable,
//   3. degrades critical non-C-schedulable chains whose benefit
//      materialization indicator exceeds the threshold bmt (Section 4.4),
//      then invokes the DQO to split any schedulable chain that cannot fit
//      the memory budget even alone (M-schedulability, Section 4.2),
//   4. computes per-chain criticality and subtree priorities (Section 4.3),
//   5. collects schedulable fragments (C-schedulable chains + running MFs)
//      and orders them by descending priority,
//   6. admits fragments greedily under the memory budget (scheduling-plan
//      admission, Sections 4.1-4.2).
//
// The result is the *scheduling plan*: a totally ordered set of query
// fragments the DQP executes concurrently.
//
// Replanning is incremental (DESIGN.md §9): steps 4-5 are served from a
// per-scheduler cache invalidated by ExecutionState::structural_version()
// (degradations, CF activations, fragment completions, DQO splits) and by
// CommManager::SourceVersion() per source, so a replan triggered by one
// source's drift recomputes only the chains reading that source and
// repairs the sorted order. Emitted plans are byte-identical to a cold
// recompute (tests/plan_cache_test.cc).

#ifndef DQSCHED_CORE_DQS_H_
#define DQSCHED_CORE_DQS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/dqo.h"
#include "core/execution_state.h"
#include "exec/exec_context.h"

namespace dqsched::core {

/// Scheduler tunables.
struct DqsConfig {
  /// Benefit materialization threshold: a chain degrades only when
  /// bmi = w_p / (2*IO_p) exceeds this (paper fixes it to 1 for
  /// single-query experiments).
  double bmt = 1.0;
};

/// The totally ordered fragment set of one execution phase.
struct SchedulingPlan {
  /// Fragment ids, highest priority first.
  std::vector<int> fragments;
  /// Critical degree of each fragment at planning time (parallel array,
  /// nanoseconds of projected idle time; diagnostics).
  std::vector<double> critical_ns;

  bool empty() const { return fragments.empty(); }
};

/// The scheduler. Carries the incremental plan cache between phases; one
/// Dqs instance serves exactly one ExecutionState over its lifetime.
class Dqs {
 public:
  explicit Dqs(const DqsConfig& config) : config_(config) {}

  /// Produces the next scheduling plan, mutating `state` (degradations, CF
  /// activations, DQO-mediated splits). An empty plan with the query
  /// unfinished is an internal error.
  Result<SchedulingPlan> ComputePlan(ExecutionState& state,
                                     exec::ExecContext& ctx, Dqo& dqo);

  /// Critical degree of chain p: n_p * (w_p - c_p) in nanoseconds (paper
  /// Section 4.3) with n_p the tuples still to arrive, w_p the estimated
  /// mean waiting time, c_p the estimated per-tuple processing time.
  static double ChainCritical(const ExecutionState& state,
                              const exec::ExecContext& ctx, ChainId chain);

  /// Benefit materialization indicator of chain p: w_p / (2 * IO_p)
  /// (paper Section 4.4).
  static double Bmi(const ExecutionState& state, const exec::ExecContext& ctx,
                    ChainId chain);

  int64_t planning_phases() const { return planning_phases_; }
  double planning_host_seconds() const { return planning_host_seconds_; }
  /// Planning phases that rebuilt the cache from scratch (first plan,
  /// structural change) vs. phases served incrementally. Diagnostics;
  /// their sum is planning_phases().
  int64_t full_replans() const { return full_replans_; }
  int64_t incremental_replans() const { return incremental_replans_; }

 private:
  /// One schedulable fragment in canonical (construction) order: chain
  /// slots ascending, then auxiliary fragments ascending. `origin` is the
  /// chain whose subtree priority the fragment inherits (kInvalidId for
  /// origin-less auxiliaries, which rank at priority 0).
  struct Candidate {
    int fragment = kInvalidId;
    ChainId origin = kInvalidId;
    int dependents = 0;
    double priority = 0.0;
  };

  /// Everything reusable across planning phases while the structural
  /// version holds. Source-version stamps track per-chain delivery drift.
  struct PlanCache {
    bool valid = false;
    const ExecutionState* state = nullptr;
    uint64_t structural_version = 0;
    std::vector<double> critical;           // per chain
    std::vector<double> subtree;            // per chain
    std::vector<uint64_t> source_version;   // per chain, comm stamp
    std::vector<Candidate> candidates;      // canonical order
    std::vector<int> order;                 // candidate indices, sorted
  };

  DqsConfig config_;
  PlanCache cache_;
  // Scratch buffers (avoid per-phase allocation on the warm path).
  std::vector<uint8_t> dirty_mark_;
  std::vector<ChainId> dirty_chains_;
  std::vector<int> changed_order_;
  std::vector<int> kept_order_;
  int64_t planning_phases_ = 0;
  int64_t full_replans_ = 0;
  int64_t incremental_replans_ = 0;
  double planning_host_seconds_ = 0.0;
};

}  // namespace dqsched::core

#endif  // DQSCHED_CORE_DQS_H_
