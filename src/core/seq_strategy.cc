// SEQ: the classical iterator-model execution (paper Sections 2.3 and
// 5.1.2). Chains run strictly sequentially in build-before-probe order;
// the engine consumes exactly one input at a time and stalls whenever that
// input is delayed — "a response time with a lower bound equal to the sum
// of the times needed to retrieve the data produced by each wrapper".

#include "core/strategy_internal.h"

namespace dqsched::core::internal {

Result<ExecutionMetrics> RunSeqImpl(ExecutionState& state,
                                    exec::ExecContext& ctx,
                                    const StrategyConfig& config) {
  Dqp dqp(config.dqp);
  Dqo dqo;
  StrategyCounters counters;
  for (ChainId chain : state.compiled().IteratorModelOrder()) {
    DQS_RETURN_IF_ERROR(
        DriveChain(chain, state, ctx, dqp, dqo, &counters));
  }
  if (!state.QueryDone()) {
    return Status::Internal("SEQ finished every chain but the query is "
                            "not done");
  }
  return CollectMetrics(ctx, state, /*dqs=*/nullptr, dqp, dqo, counters);
}

}  // namespace dqsched::core::internal
