#include "core/events.h"

namespace dqsched::core {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kEndOfQf:
      return "EndOfQF";
    case EventKind::kRateChange:
      return "RateChange";
    case EventKind::kTimeout:
      return "TimeOut";
    case EventKind::kMemoryOverflow:
      return "MemoryOverflow";
    case EventKind::kPlanExhausted:
      return "PlanExhausted";
    case EventKind::kSliceEnd:
      return "SliceEnd";
    case EventKind::kStarved:
      return "Starved";
    case EventKind::kSourceDown:
      return "SourceDown";
    case EventKind::kSourceRecovered:
      return "SourceRecovered";
    case EventKind::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

}  // namespace dqsched::core
