#include "core/scrambling.h"

#include <algorithm>
#include <vector>

#include "common/macros.h"
#include "core/dqo.h"
#include "core/dqp.h"
#include "core/strategy_internal.h"

namespace dqsched::core {

Result<ExecutionMetrics> RunScrambling(ExecutionState& state,
                                       exec::ExecContext& ctx,
                                       const ScramblingConfig& config) {
  if (config.batch_size <= 0 || config.timeout <= 0) {
    return Status::InvalidArgument("scrambling batch/timeout must be > 0");
  }
  DqpConfig dqp_config;
  dqp_config.batch_size = config.batch_size;
  dqp_config.stall_timeout = config.timeout;
  dqp_config.deadline = config.deadline;
  Dqp dqp(dqp_config);
  Dqo dqo;
  internal::StrategyCounters counters;

  const std::vector<ChainId> order = state.compiled().IteratorModelOrder();
  size_t cursor = 0;
  // Fragments picked by scrambling steps, oldest first (they run whenever
  // the current operator starves, mirroring "O1 resumes as soon as data
  // arrives" — the DQP's priority rule gives exactly that).
  std::vector<int> scrambled;

  int64_t guard = 0;
  while (!state.QueryDone()) {
    DQS_CHECK_MSG(++guard < (1LL << 40), "scrambling livelock");
    // Degraded chains whose ancestors finished resume from their
    // materialized prefix, as in DSE.
    for (ChainId c = 0; c < state.num_chains(); ++c) {
      if (!state.ChainDone(c) && state.Degraded(c) &&
          !state.CfActivated(c) && state.CSchedulable(c)) {
        state.ActivateCf(c, ctx);
      }
    }
    while (cursor < order.size() && state.ChainDone(order[cursor])) {
      ++cursor;
    }
    DQS_CHECK_MSG(cursor < order.size(), "cursor past end with query "
                                         "unfinished");

    SchedulingPlan sp;
    sp.fragments.push_back(state.ChainFragment(order[cursor]));
    sp.critical_ns.push_back(0.0);
    for (int frag : scrambled) {
      if (!state.FragmentActive(frag)) continue;
      sp.fragments.push_back(frag);
      sp.critical_ns.push_back(0.0);
    }

    Result<Event> evt = dqp.RunPhase(state, sp, ctx);
    if (!evt.ok()) return evt.status();
    switch (evt->kind) {
      case EventKind::kEndOfQf:
        state.OnFragmentFinished(evt->fragment, ctx);
        break;
      case EventKind::kTimeout: {
        // A scrambling step: suspend the starving current operator
        // (implicit — it has no data) and pick other work.
        ++counters.timeouts;
        dqo.OnTimeout();
        bool found = false;
        // (i) another runnable pipeline chain, in iterator order.
        for (size_t k = cursor + 1; k < order.size() && !found; ++k) {
          const ChainId c = order[k];
          if (state.ChainDone(c) || !state.CSchedulable(c)) continue;
          const int frag = state.ChainFragment(c);
          if (!state.FragmentActive(frag)) continue;
          if (std::find(scrambled.begin(), scrambled.end(), frag) !=
              scrambled.end()) {
            continue;
          }
          scrambled.push_back(frag);
          found = true;
        }
        // (ii) otherwise materialize some blocked wrapper's output.
        for (size_t k = cursor + 1; k < order.size() && !found; ++k) {
          const ChainId c = order[k];
          if (state.ChainDone(c) || state.CSchedulable(c) ||
              state.Degraded(c)) {
            continue;
          }
          if (ctx.comm.RemainingTuples(state.compiled().chain(c).source) ==
              0) {
            continue;
          }
          scrambled.push_back(state.Degrade(c, ctx));
          found = true;
        }
        // (iii) "there is no more work to scramble" [1]: wait it out.
        break;
      }
      case EventKind::kMemoryOverflow:
        DQS_RETURN_IF_ERROR(dqo.HandleMemoryOverflow(
            state, ctx, state.FragmentChain(evt->fragment)));
        break;
      case EventKind::kRateChange:
        // Scrambling is timeout-driven; it ignores rate estimates.
        ++counters.rate_changes;
        ctx.comm.MarkPlanned(ctx.clock.now());
        break;
      case EventKind::kPlanExhausted:
        break;  // rebuild the plan (scrambled set may have gone stale)
      case EventKind::kSourceDown:
        // Scrambling reacts to silence through its timeout machinery; the
        // detector's verdict only matters when it is terminal.
        ++counters.source_down_events;
        if (ctx.comm.SourceDead(evt->source)) {
          return Status::Unavailable("source " + std::to_string(evt->source) +
                                     " declared dead under scrambling");
        }
        break;
      case EventKind::kSourceRecovered:
        ++counters.source_recovered_events;
        break;
      case EventKind::kDeadlineExceeded:
        counters.deadline_hit = true;
        return Status::DeadlineExceeded(
            "query deadline expired under scrambling");
      case EventKind::kSliceEnd:
      case EventKind::kStarved:
        return Status::Internal("multi-query event in scrambling");
    }
  }
  return internal::CollectMetrics(ctx, state, /*dqs=*/nullptr, dqp, dqo,
                                  counters);
}

}  // namespace dqsched::core
