#include "core/dqs.h"

#include <algorithm>

#include "common/host_clock.h"
#include "common/macros.h"
#include "core/cache_manager.h"
#include "core/invariant_auditor.h"

namespace dqsched::core {

namespace {

/// Some unfinished ancestor of `chain` reads a source the failure detector
/// suspects: the chain's unblocking is delayed indefinitely, not just by
/// the ancestor's normal drain time.
bool BlockedOnSuspectedSource(const ExecutionState& state,
                              const exec::ExecContext& ctx, ChainId chain) {
  const plan::CompiledPlan& compiled = state.compiled();
  for (ChainId a : compiled.AncestorsOf(chain)) {
    if (state.ChainDone(a)) continue;
    if (ctx.comm.SourceSuspected(compiled.chain(a).source)) return true;
  }
  return false;
}

}  // namespace

double Dqs::ChainCritical(const ExecutionState& state,
                          const exec::ExecContext& ctx, ChainId chain) {
  const plan::ChainInfo& info = state.compiled().chain(chain);
  const int64_t n = ctx.comm.RemainingTuples(info.source);
  if (n <= 0) return 0.0;
  // A suspected-down source's effective wait is unbounded: scheduling its
  // chain early buys no overlap, so it loses critical priority entirely
  // until the detector signals recovery (graceful degradation, §4.4
  // applied to faults).
  if (ctx.comm.SourceSuspected(info.source)) return 0.0;
  const double w = ctx.comm.EstimatedWaitNs(info.source);
  const double c = info.est_cpu_per_tuple_ns;
  return static_cast<double>(n) * (w - c);
}

double Dqs::Bmi(const ExecutionState& state, const exec::ExecContext& ctx,
                ChainId chain) {
  const plan::ChainInfo& info = state.compiled().chain(chain);
  const double w = ctx.comm.EstimatedWaitNs(info.source);
  const double io = static_cast<double>(ctx.cost->TupleIoTime());
  return w / (2.0 * io);
}

Result<SchedulingPlan> Dqs::ComputePlan(ExecutionState& state,
                                        exec::ExecContext& ctx, Dqo& dqo) {
  const auto host_start = HostClock::Now();
  ++planning_phases_;
  // Step 1: snapshot the delivery-rate estimates; future RateChange
  // signals compare against this plan's view.
  ctx.comm.MarkPlanned(ctx.clock.now());

  const plan::CompiledPlan& compiled = state.compiled();
  const int num_chains = compiled.num_chains();

  // Audit point (DQSCHED_AUDIT builds): the decomposition and the runtime
  // conservation laws must hold before a new plan is derived from them.
  DQS_AUDIT(AuditCompiledPlan(compiled));
  DQS_AUDIT(AuditExecutionState(state, ctx));

  // Step 2: degraded chains whose ancestors finished resume as CF(p).
  for (ChainId c = 0; c < num_chains; ++c) {
    if (!state.ChainDone(c) && state.Degraded(c) && !state.CfActivated(c) &&
        state.CSchedulable(c)) {
      state.ActivateCf(c, ctx);
    }
  }

  // Cache probe (DESIGN.md §14): untouched chains whose (source, leading
  // filters, version) segment is cached are rebound to the cached temp
  // and their sources closed, BEFORE the degradation pass reads critical
  // degrees — a rebound chain has no remaining live tuples, so neither
  // degradation trigger below can fire on it. Runs at most once per chain
  // per run; a no-op (with deterministic miss counters) on a cold cache.
  if (state.options().cache != nullptr) {
    state.options().cache->TrySegmentHits(state, ctx);
  }

  // Step 3: degrade critical, blocked, not-yet-degraded chains when
  // materialization is beneficial (bmi > bmt). Degradation is
  // irreversible, so it waits for an *observed* delivery rate: until a
  // source's estimator warms up, its w is just the compile-time prior (the
  // CM signals a RateChange the moment initial observations land, so the
  // decision is only deferred by a fraction of a millisecond).
  for (ChainId c = 0; c < num_chains; ++c) {
    if (state.ChainDone(c) || state.Degraded(c) || state.CSchedulable(c)) {
      continue;
    }
    const SourceId src = compiled.chain(c).source;
    // Fault-driven degradation: a chain gated by a suspected-down source
    // waits unboundedly, so materializing its own live stream pays off
    // regardless of bmi — provided its own source is up and delivering.
    // (SourceSuspected is constant-false without failure detection.)
    if (ctx.comm.failure_detection() &&
        BlockedOnSuspectedSource(state, ctx, c)) {
      if (!ctx.comm.SourceSuspected(src) &&
          ctx.comm.RemainingTuples(src) > 0) {
        state.Degrade(c, ctx);
      }
      continue;
    }
    if (!ctx.comm.EstimateWarm(src)) continue;
    if (ChainCritical(state, ctx, c) > 0.0 &&
        Bmi(state, ctx, c) > config_.bmt) {
      state.Degrade(c, ctx);
    }
  }

  // Memory-overflow revision (M-schedulability of the chain in isolation,
  // Section 4.2; exact operand sizes are known because ancestors
  // finished): a C-schedulable chain that cannot open within the whole
  // budget is split by the DQO before candidates are collected.
  for (ChainId c = 0; c < num_chains; ++c) {
    if (state.ChainDone(c) || !state.CSchedulable(c)) continue;
    const int frag = state.ChainFragment(c);
    if (!state.FragmentActive(frag)) continue;
    exec::FragmentRuntime& rt = state.fragment(frag);
    if (!rt.opened() && rt.BytesToOpen(ctx) > ctx.memory.budget()) {
      DQS_RETURN_IF_ERROR(dqo.HandleMemoryOverflow(state, ctx, c));
      // The slot now holds the first split stage.
    }
  }

  // All structural mutation of this phase is behind us; everything below
  // is a pure function of (state, comm estimates) and cacheable.
  const uint64_t structural = state.structural_version();
  const bool fresh = !cache_.valid || cache_.state != &state ||
                     cache_.structural_version != structural;

  // Step 4: recursive priorities (the heuristic of the paper's companion
  // report [6]: "recursively computes the QFs' priorities, beginning with
  // the most critical PC"). A chain's *subtree criticality* is its own
  // critical degree plus that of every chain it transitively blocks:
  // starving a gating chain delays all of its dependents' scheduling, so
  // its urgency accumulates theirs. On a warm cache only chains whose
  // source version drifted recompute; the subtree sums they feed re-sum
  // their descendant span in the same ascending order the full rebuild
  // uses, so warm and cold results are bit-identical.
  auto resum_subtree = [&](ChainId c) {
    double acc = cache_.critical[static_cast<size_t>(c)];
    for (ChainId d : compiled.TransitiveDependentsOf(c)) {
      acc += cache_.critical[static_cast<size_t>(d)];
    }
    cache_.subtree[static_cast<size_t>(c)] = acc;
  };
  dirty_chains_.clear();
  if (fresh) {
    ++full_replans_;
    cache_.critical.resize(static_cast<size_t>(num_chains));
    cache_.subtree.resize(static_cast<size_t>(num_chains));
    cache_.source_version.resize(static_cast<size_t>(num_chains));
    dirty_mark_.assign(static_cast<size_t>(num_chains), 0);
    for (ChainId c = 0; c < num_chains; ++c) {
      cache_.source_version[static_cast<size_t>(c)] =
          ctx.comm.SourceVersion(compiled.chain(c).source);
      cache_.critical[static_cast<size_t>(c)] =
          state.ChainDone(c) ? 0.0 : ChainCritical(state, ctx, c);
    }
    for (ChainId c = 0; c < num_chains; ++c) resum_subtree(c);
  } else {
    ++incremental_replans_;
    for (ChainId c = 0; c < num_chains; ++c) {
      const uint64_t v = ctx.comm.SourceVersion(compiled.chain(c).source);
      if (v == cache_.source_version[static_cast<size_t>(c)]) continue;
      cache_.source_version[static_cast<size_t>(c)] = v;
      const double crit =
          state.ChainDone(c) ? 0.0 : ChainCritical(state, ctx, c);
      if (crit == cache_.critical[static_cast<size_t>(c)]) continue;
      cache_.critical[static_cast<size_t>(c)] = crit;
      // The chain's own subtree and every ancestor's sum include this
      // term: mark them all for re-summation and order repair.
      if (dirty_mark_[static_cast<size_t>(c)] == 0) {
        dirty_mark_[static_cast<size_t>(c)] = 1;
        dirty_chains_.push_back(c);
      }
      for (ChainId a : compiled.AncestorsOf(c)) {
        if (dirty_mark_[static_cast<size_t>(a)] == 0) {
          dirty_mark_[static_cast<size_t>(a)] = 1;
          dirty_chains_.push_back(a);
        }
      }
    }
    for (ChainId c : dirty_chains_) resum_subtree(c);
  }

  // Step 5: collect candidates — C-schedulable chain fragments and live
  // materialization fragments — and order them by subtree criticality,
  // then unblocking power. Ties beyond those two keys resolve by the
  // canonical construction order (what a stable sort preserves), making
  // the order a strict total order: the warm path merely repositions the
  // candidates whose priority drifted and lands on the same sequence a
  // cold sort produces.
  auto candidate_before = [this](int i, int j) {
    const Candidate& a = cache_.candidates[static_cast<size_t>(i)];
    const Candidate& b = cache_.candidates[static_cast<size_t>(j)];
    if (a.priority != b.priority) return a.priority > b.priority;
    if (a.dependents != b.dependents) return a.dependents > b.dependents;
    return i < j;
  };
  if (fresh) {
    cache_.candidates.clear();
    for (ChainId c = 0; c < num_chains; ++c) {
      if (state.ChainDone(c) || !state.CSchedulable(c)) continue;
      const int frag = state.ChainFragment(c);
      if (!state.FragmentActive(frag)) continue;
      cache_.candidates.push_back(
          {frag, c, compiled.NumTransitiveDependents(c),
           cache_.subtree[static_cast<size_t>(c)]});
    }
    for (int f = num_chains; f < state.num_fragments(); ++f) {
      if (!state.FragmentActive(f)) continue;
      const ChainId origin = state.FragmentChain(f);
      Candidate cand;
      cand.fragment = f;
      cand.origin = origin;
      cand.dependents =
          origin == kInvalidId ? 0 : compiled.NumTransitiveDependents(origin);
      cand.priority = origin == kInvalidId
                          ? 0.0
                          : cache_.subtree[static_cast<size_t>(origin)];
      cache_.candidates.push_back(cand);
    }
    cache_.order.resize(cache_.candidates.size());
    for (size_t i = 0; i < cache_.order.size(); ++i) {
      cache_.order[i] = static_cast<int>(i);
    }
    std::sort(cache_.order.begin(), cache_.order.end(), candidate_before);
  } else if (!dirty_chains_.empty()) {
    changed_order_.clear();
    kept_order_.clear();
    for (Candidate& cand : cache_.candidates) {
      if (cand.origin != kInvalidId &&
          dirty_mark_[static_cast<size_t>(cand.origin)] != 0) {
        cand.priority = cache_.subtree[static_cast<size_t>(cand.origin)];
      }
    }
    for (int idx : cache_.order) {
      const ChainId origin =
          cache_.candidates[static_cast<size_t>(idx)].origin;
      if (origin != kInvalidId &&
          dirty_mark_[static_cast<size_t>(origin)] != 0) {
        changed_order_.push_back(idx);
      } else {
        kept_order_.push_back(idx);
      }
    }
    std::sort(changed_order_.begin(), changed_order_.end(),
              candidate_before);
    std::merge(kept_order_.begin(), kept_order_.end(),
               changed_order_.begin(), changed_order_.end(),
               cache_.order.begin(), candidate_before);
  }
  for (ChainId c : dirty_chains_) dirty_mark_[static_cast<size_t>(c)] = 0;
  cache_.valid = true;
  cache_.state = &state;
  cache_.structural_version = structural;

  // Step 6: greedy memory admission. Fragments already holding grants are
  // free; unopened ones reserve their open cost against what is left.
  SchedulingPlan sp;
  int64_t remaining = ctx.memory.available();
  for (int idx : cache_.order) {
    const Candidate& cand = cache_.candidates[static_cast<size_t>(idx)];
    exec::FragmentRuntime& rt = state.fragment(cand.fragment);
    const int64_t need = rt.opened() ? 0 : rt.BytesToOpen(ctx);
    if (need <= remaining) {
      remaining -= need;
      sp.fragments.push_back(cand.fragment);
      sp.critical_ns.push_back(cand.priority);
    }
  }
  // Progress guarantee: never return an empty plan while work exists. The
  // top candidate runs alone; if its Open still fails, the DQP raises
  // MemoryOverflow and the DQO revises the plan.
  if (sp.fragments.empty() && !cache_.order.empty()) {
    const Candidate& top =
        cache_.candidates[static_cast<size_t>(cache_.order.front())];
    sp.fragments.push_back(top.fragment);
    sp.critical_ns.push_back(top.priority);
  }

  planning_host_seconds_ += HostClock::SecondsSince(host_start);

  if (sp.fragments.empty() && !state.QueryDone()) {
    return Status::Internal(
        "scheduler produced an empty plan with the query unfinished");
  }
  state.trace().Record(ctx.clock.now(), TraceEventKind::kPlanningPhase, -1,
                       std::to_string(sp.fragments.size()) +
                           " fragments scheduled");
  // Audit point: the plan just derived must itself be C-/M-schedulable.
  DQS_AUDIT(AuditSchedulingPlan(state, sp, ctx));
  return sp;
}

}  // namespace dqsched::core
