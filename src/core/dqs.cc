#include "core/dqs.h"

#include <algorithm>
#include <chrono>

#include "common/macros.h"
#include "core/invariant_auditor.h"

namespace dqsched::core {

namespace {

/// Number of chains transitively blocked by `chain` — the tie-breaker when
/// critical degrees are close (unblocking more downstream work first).
int TransitiveDependents(const plan::CompiledPlan& compiled, ChainId chain) {
  int count = 0;
  for (ChainId c = 0; c < compiled.num_chains(); ++c) {
    if (c == chain) continue;
    for (ChainId a : compiled.Ancestors(c)) {
      if (a == chain) {
        ++count;
        break;
      }
    }
  }
  return count;
}

/// Some unfinished ancestor of `chain` reads a source the failure detector
/// suspects: the chain's unblocking is delayed indefinitely, not just by
/// the ancestor's normal drain time.
bool BlockedOnSuspectedSource(const ExecutionState& state,
                              const exec::ExecContext& ctx, ChainId chain) {
  const plan::CompiledPlan& compiled = state.compiled();
  for (ChainId a : compiled.Ancestors(chain)) {
    if (state.ChainDone(a)) continue;
    if (ctx.comm.SourceSuspected(compiled.chain(a).source)) return true;
  }
  return false;
}

}  // namespace

double Dqs::ChainCritical(const ExecutionState& state,
                          const exec::ExecContext& ctx, ChainId chain) {
  const plan::ChainInfo& info = state.compiled().chain(chain);
  const int64_t n = ctx.comm.RemainingTuples(info.source);
  if (n <= 0) return 0.0;
  // A suspected-down source's effective wait is unbounded: scheduling its
  // chain early buys no overlap, so it loses critical priority entirely
  // until the detector signals recovery (graceful degradation, §4.4
  // applied to faults).
  if (ctx.comm.SourceSuspected(info.source)) return 0.0;
  const double w = ctx.comm.EstimatedWaitNs(info.source);
  const double c = info.est_cpu_per_tuple_ns;
  return static_cast<double>(n) * (w - c);
}

double Dqs::Bmi(const ExecutionState& state, const exec::ExecContext& ctx,
                ChainId chain) {
  const plan::ChainInfo& info = state.compiled().chain(chain);
  const double w = ctx.comm.EstimatedWaitNs(info.source);
  const double io = static_cast<double>(ctx.cost->TupleIoTime());
  return w / (2.0 * io);
}

Result<SchedulingPlan> Dqs::ComputePlan(ExecutionState& state,
                                        exec::ExecContext& ctx, Dqo& dqo) {
  const auto host_start = std::chrono::steady_clock::now();
  ++planning_phases_;
  ctx.comm.MarkPlanned(ctx.clock.now());

  const plan::CompiledPlan& compiled = state.compiled();

  // Audit point (DQSCHED_AUDIT builds): the decomposition and the runtime
  // conservation laws must hold before a new plan is derived from them.
  DQS_AUDIT(AuditCompiledPlan(compiled));
  DQS_AUDIT(AuditExecutionState(state, ctx));

  // Step 1: degraded chains whose ancestors finished resume as CF(p).
  for (ChainId c = 0; c < compiled.num_chains(); ++c) {
    if (!state.ChainDone(c) && state.Degraded(c) && !state.CfActivated(c) &&
        state.CSchedulable(c)) {
      state.ActivateCf(c, ctx);
    }
  }

  // Step 2: degrade critical, blocked, not-yet-degraded chains when
  // materialization is beneficial (bmi > bmt). Degradation is
  // irreversible, so it waits for an *observed* delivery rate: until a
  // source's estimator warms up, its w is just the compile-time prior (the
  // CM signals a RateChange the moment initial observations land, so the
  // decision is only deferred by a fraction of a millisecond).
  for (ChainId c = 0; c < compiled.num_chains(); ++c) {
    if (state.ChainDone(c) || state.Degraded(c) || state.CSchedulable(c)) {
      continue;
    }
    const SourceId src = compiled.chain(c).source;
    // Fault-driven degradation: a chain gated by a suspected-down source
    // waits unboundedly, so materializing its own live stream pays off
    // regardless of bmi — provided its own source is up and delivering.
    // (SourceSuspected is constant-false without failure detection.)
    if (ctx.comm.failure_detection() &&
        BlockedOnSuspectedSource(state, ctx, c)) {
      if (!ctx.comm.SourceSuspected(src) &&
          ctx.comm.RemainingTuples(src) > 0) {
        state.Degrade(c, ctx);
      }
      continue;
    }
    if (!ctx.comm.EstimateWarm(src)) continue;
    if (ChainCritical(state, ctx, c) > 0.0 &&
        Bmi(state, ctx, c) > config_.bmt) {
      state.Degrade(c, ctx);
    }
  }

  // Step 3: recursive priorities (the heuristic of the paper's companion
  // report [6]: "recursively computes the QFs' priorities, beginning with
  // the most critical PC"). A chain's *subtree criticality* is its own
  // critical degree plus that of every chain it transitively blocks:
  // starving a gating chain delays all of its dependents' scheduling, so
  // its urgency accumulates theirs.
  std::vector<double> critical(static_cast<size_t>(compiled.num_chains()));
  for (ChainId c = 0; c < compiled.num_chains(); ++c) {
    critical[static_cast<size_t>(c)] =
        state.ChainDone(c) ? 0.0 : ChainCritical(state, ctx, c);
  }
  std::vector<double> subtree = critical;
  for (ChainId c = 0; c < compiled.num_chains(); ++c) {
    for (ChainId a : compiled.Ancestors(c)) {
      subtree[static_cast<size_t>(a)] += critical[static_cast<size_t>(c)];
    }
  }

  // Step 4: collect candidates — C-schedulable chain fragments and live
  // materialization fragments.
  struct Candidate {
    int fragment;
    double priority;
    int dependents;
  };
  std::vector<Candidate> candidates;
  for (ChainId c = 0; c < compiled.num_chains(); ++c) {
    if (state.ChainDone(c) || !state.CSchedulable(c)) continue;
    const int frag = state.ChainFragment(c);
    if (!state.FragmentActive(frag)) continue;

    // M-schedulability of the chain in isolation (Section 4.2): exact
    // operand sizes are known here because ancestors finished.
    exec::FragmentRuntime& rt = state.fragment(frag);
    if (!rt.opened() && rt.BytesToOpen(ctx) > ctx.memory.budget()) {
      DQS_RETURN_IF_ERROR(dqo.HandleMemoryOverflow(state, ctx, c));
      // The slot now holds the first split stage.
    }
    candidates.push_back({state.ChainFragment(c),
                          subtree[static_cast<size_t>(c)],
                          TransitiveDependents(compiled, c)});
  }
  for (int f = compiled.num_chains(); f < state.num_fragments(); ++f) {
    if (!state.FragmentActive(f)) continue;
    const ChainId origin = state.FragmentChain(f);
    const double crit =
        origin == kInvalidId ? 0.0 : subtree[static_cast<size_t>(origin)];
    const int deps =
        origin == kInvalidId ? 0 : TransitiveDependents(compiled, origin);
    candidates.push_back({f, crit, deps});
  }

  // Step 5: priority order — subtree criticality, then unblocking power.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     if (a.priority != b.priority) {
                       return a.priority > b.priority;
                     }
                     return a.dependents > b.dependents;
                   });

  // Step 5: greedy memory admission. Fragments already holding grants are
  // free; unopened ones reserve their open cost against what is left.
  SchedulingPlan sp;
  int64_t remaining = ctx.memory.available();
  for (const Candidate& cand : candidates) {
    exec::FragmentRuntime& rt = state.fragment(cand.fragment);
    const int64_t need = rt.opened() ? 0 : rt.BytesToOpen(ctx);
    if (need <= remaining) {
      remaining -= need;
      sp.fragments.push_back(cand.fragment);
      sp.critical_ns.push_back(cand.priority);
    }
  }
  // Progress guarantee: never return an empty plan while work exists. The
  // top candidate runs alone; if its Open still fails, the DQP raises
  // MemoryOverflow and the DQO revises the plan.
  if (sp.fragments.empty() && !candidates.empty()) {
    sp.fragments.push_back(candidates.front().fragment);
    sp.critical_ns.push_back(candidates.front().priority);
  }

  planning_host_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    host_start)
          .count();

  if (sp.fragments.empty() && !state.QueryDone()) {
    return Status::Internal(
        "scheduler produced an empty plan with the query unfinished");
  }
  state.trace().Record(ctx.clock.now(), TraceEventKind::kPlanningPhase, -1,
                       std::to_string(sp.fragments.size()) +
                           " fragments scheduled");
  // Audit point: the plan just derived must itself be C-/M-schedulable.
  DQS_AUDIT(AuditSchedulingPlan(state, sp, ctx));
  return sp;
}

}  // namespace dqsched::core
