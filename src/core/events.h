// Interruption events returned by the dynamic query processor to the
// scheduler/optimizer (paper Section 3.2): "Normal interruptions,
// signaling the end of a QF ... and abnormal interruptions, signaling any
// significant change in the system".

#ifndef DQSCHED_CORE_EVENTS_H_
#define DQSCHED_CORE_EVENTS_H_

#include "common/ids.h"

namespace dqsched::core {

enum class EventKind {
  /// A query fragment consumed all of its input (normal; handled by DQS).
  kEndOfQf,
  /// A wrapper's delivery-rate estimate deviated significantly from the
  /// last planning snapshot (abnormal; triggers replanning).
  kRateChange,
  /// Every scheduled fragment starved for longer than the stall timeout
  /// (abnormal; would hand control to phase-2 re-optimization [15] in a
  /// full DQO — recorded and replanned here).
  kTimeout,
  /// A fragment failed to open within the memory budget; the DQO must
  /// revise the plan (paper Section 4.2).
  kMemoryOverflow,
  /// Every fragment of the current scheduling plan is closed or stale;
  /// the DQS must produce a new plan.
  kPlanExhausted,
  /// The phase's batch slice is used up (multi-query time slicing; only
  /// raised when DqpConfig::slice_batches > 0).
  kSliceEnd,
  /// Nothing is available right now and the processor was told to yield
  /// instead of stalling (multi-query mode; only raised when
  /// DqpConfig::yield_on_starvation is set). The caller decides whether
  /// other work exists or the global clock must advance.
  kStarved,
  /// The failure detector suspects (or declared) a source down (abnormal;
  /// only raised with CommConfig::failure_detection). The strategy checks
  /// CommManager::SourceDead to distinguish suspicion from declared death.
  kSourceDown,
  /// A suspected/dead source delivered again (abnormal; replanning
  /// restores its chain's critical priority).
  kSourceRecovered,
  /// The query's virtual-time budget (DqpConfig::deadline) expired
  /// (abnormal; the strategy aborts or returns a partial result).
  kDeadlineExceeded,
};

const char* EventKindName(EventKind kind);

/// One interruption: what happened and to which fragment (when relevant).
struct Event {
  EventKind kind = EventKind::kPlanExhausted;
  int fragment = -1;
  /// Subject source for kSourceDown / kSourceRecovered (kInvalidId else).
  SourceId source = kInvalidId;
};

}  // namespace dqsched::core

#endif  // DQSCHED_CORE_EVENTS_H_
