#include "core/dphj.h"

#include <algorithm>
#include <map>
#include <vector>

#include "common/macros.h"

namespace dqsched::core {

namespace {

using plan::ChainInfo;
using plan::ChainOp;
using plan::ChainOpKind;
using storage::Tuple;

/// Bytes accounted per resident tuple of a side table (tuple + multimap
/// node overhead).
constexpr int64_t kDphjEntryBytes = 88;

/// One side of a symmetric join: resident tuples plus an insertable index.
struct SideTable {
  int key_field = 0;
  std::vector<Tuple> tuples;
  // Ordered multimap, not unordered: EnterJoin emits one combined tuple
  // per `equal_range` element, so the within-key match order escapes into
  // result rowids. std::multimap inserts equal keys at the upper bound
  // (C++11), making that order exactly insertion order on every standard
  // library (dqs-analyze rule unordered-iter).
  std::multimap<int64_t, size_t> index;

  void Insert(const Tuple& t) {
    index.emplace(t.keys[static_cast<size_t>(key_field)], tuples.size());
    tuples.push_back(t);
  }
};

/// The whole-query symmetric executor.
class DphjRun {
 public:
  DphjRun(const plan::CompiledPlan& compiled, exec::ExecContext& ctx,
          const DphjConfig& config)
      : compiled_(compiled), ctx_(ctx), config_(config) {}

  Result<ExecutionMetrics> Run();

 private:
  struct JoinState {
    SideTable build;
    SideTable probe;
    /// Continuation of a match: the chain owning this join's probe op,
    /// starting at the op after it.
    ChainId chain = kInvalidId;
    size_t next_op = 0;
  };

  /// Charges `bytes` of table growth, amortized through chunked grants.
  Status GrantTableBytes(int64_t bytes) {
    pending_bytes_ += bytes;
    constexpr int64_t kChunk = 256 * 1024;
    while (pending_bytes_ >= kChunk) {
      DQS_RETURN_IF_ERROR(ctx_.memory.Grant(kChunk));
      granted_ += kChunk;
      pending_bytes_ -= kChunk;
    }
    return Status::Ok();
  }

  /// Routes `t` along chain `c` starting at op `from`; accumulates CPU
  /// instructions into instr_.
  Status RouteAlongChain(ChainId c, size_t from, const Tuple& t);

  /// A tuple arrives at join `j` on one side: insert, probe the other
  /// side, and push every match along the join's continuation.
  Status EnterJoin(JoinId j, bool on_build_side, const Tuple& t);

  const plan::CompiledPlan& compiled_;
  exec::ExecContext& ctx_;
  DphjConfig config_;
  std::vector<JoinState> joins_;
  int64_t instr_ = 0;
  int64_t pending_bytes_ = 0;
  int64_t granted_ = 0;
};

Status DphjRun::EnterJoin(JoinId j, bool on_build_side, const Tuple& t) {
  JoinState& join = joins_[static_cast<size_t>(j)];
  SideTable& own = on_build_side ? join.build : join.probe;
  const SideTable& other = on_build_side ? join.probe : join.build;

  DQS_RETURN_IF_ERROR(GrantTableBytes(kDphjEntryBytes));
  own.Insert(t);
  instr_ += ctx_.cost->instr_hash_insert + ctx_.cost->instr_hash_probe;

  const int64_t key = t.keys[static_cast<size_t>(own.key_field)];
  auto [lo, hi] = other.index.equal_range(key);
  for (auto it = lo; it != hi; ++it) {
    const Tuple& match = other.tuples[it->second];
    // The combined tuple carries the probe side's attributes and the
    // canonical build-then-probe rowid, whatever the arrival order.
    const Tuple& build_tuple = on_build_side ? t : match;
    const Tuple& probe_tuple = on_build_side ? match : t;
    Tuple combined = probe_tuple;
    combined.rowid =
        storage::CombineRowid(build_tuple.rowid, probe_tuple.rowid);
    instr_ += ctx_.cost->instr_produce_result;
    DQS_RETURN_IF_ERROR(
        RouteAlongChain(join.chain, join.next_op, combined));
  }
  return Status::Ok();
}

Status DphjRun::RouteAlongChain(ChainId c, size_t from, const Tuple& t) {
  const ChainInfo& chain = compiled_.chain(c);
  Tuple cur = t;
  for (size_t i = from; i < chain.ops.size(); ++i) {
    const ChainOp& op = chain.ops[i];
    if (op.kind == ChainOpKind::kFilter) {
      instr_ += ctx_.cost->instr_move_tuple;
      if (!storage::FilterPasses(cur.rowid, op.node, op.selectivity)) {
        return Status::Ok();
      }
    } else {  // probe op: enter that join on the probe side
      return EnterJoin(op.join, /*on_build_side=*/false, cur);
    }
  }
  // Chain end: the operand of the sink join (its build side) or a result.
  instr_ += ctx_.cost->instr_move_tuple;
  if (chain.is_result) {
    ctx_.result.Add(cur);
    return Status::Ok();
  }
  return EnterJoin(chain.sink_join, /*on_build_side=*/true, cur);
}

Result<ExecutionMetrics> DphjRun::Run() {
  // Wire continuations: join j's matches continue after the probe op that
  // references j, in the chain that owns it.
  joins_.resize(static_cast<size_t>(compiled_.num_joins));
  for (const ChainInfo& chain : compiled_.chains) {
    for (size_t i = 0; i < chain.ops.size(); ++i) {
      const ChainOp& op = chain.ops[i];
      if (op.kind != ChainOpKind::kProbe) continue;
      JoinState& join = joins_[static_cast<size_t>(op.join)];
      join.chain = chain.id;
      join.next_op = i + 1;
      join.probe.key_field = op.probe_key_field;
      join.build.key_field =
          compiled_.join_build_field[static_cast<size_t>(op.join)];
    }
  }

  // Source -> (chain, leading filter prefix is part of the chain walk).
  // Vector-indexed (source ids are dense 0..num_sources-1), replacing an
  // unordered_map: O(1) lookups with no hash order anywhere near the
  // tuple path.
  std::vector<ChainId> chain_of_source(
      static_cast<size_t>(ctx_.comm.num_sources()), kInvalidId);
  for (const ChainInfo& chain : compiled_.chains) {
    chain_of_source[static_cast<size_t>(chain.source)] = chain.id;
  }

  std::vector<Tuple> buffer(static_cast<size_t>(config_.batch_size));
  const int num_sources = ctx_.comm.num_sources();
  int64_t guard = 0;
  for (;;) {
    DQS_CHECK_MSG(++guard < (1LL << 40), "DPHJ livelock");
    ctx_.Pump();
    bool all_done = true;
    bool worked = false;
    for (SourceId s = 0; s < num_sources; ++s) {
      if (ctx_.comm.SourceExhausted(s)) continue;
      all_done = false;
      const int64_t n = ctx_.comm.Pop(s, ctx_.clock.now(), buffer.data(),
                                      config_.batch_size);
      if (n == 0) continue;
      worked = true;
      instr_ = n * ctx_.cost->instr_move_tuple;  // the scan's moves
      ctx_.clock.Advance(ctx_.net.ChargeReceive(s, n));
      const ChainId c = chain_of_source.at(s);
      for (int64_t i = 0; i < n; ++i) {
        Status routed = RouteAlongChain(c, 0, buffer[static_cast<size_t>(i)]);
        if (!routed.ok()) {
          ctx_.memory.Release(granted_);
          return routed;
        }
      }
      ctx_.ChargeInstr(instr_);
    }
    if (all_done) break;
    if (!worked) {
      SimTime next = kSimTimeNever;
      for (SourceId s = 0; s < num_sources; ++s) {
        next = std::min(next, ctx_.comm.NextArrival(s));
      }
      if (next == kSimTimeNever) break;  // everything delivered
      ctx_.clock.StallUntil(next);
    }
  }
  ctx_.memory.Release(granted_);

  ExecutionMetrics m;
  m.response_time = ctx_.clock.now();
  m.busy_time = ctx_.clock.busy_time();
  m.stalled_time = ctx_.clock.stalled_time();
  m.result_count = ctx_.result.count();
  m.result_checksum = ctx_.result.checksum().value();
  m.peak_memory_bytes = ctx_.memory.peak();
  m.disk = ctx_.disk.stats();
  m.network = ctx_.net.stats();
  m.temps = ctx_.temps.stats();
  return m;
}

}  // namespace

Result<ExecutionMetrics> RunDphj(const plan::CompiledPlan& compiled,
                                 exec::ExecContext& ctx,
                                 const DphjConfig& config) {
  if (config.batch_size <= 0) {
    return Status::InvalidArgument("batch_size must be > 0");
  }
  return DphjRun(compiled, ctx, config).Run();
}

}  // namespace dqsched::core
