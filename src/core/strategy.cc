#include "core/strategy.h"

#include "common/macros.h"
#include "core/strategy_internal.h"

namespace dqsched::core {

const char* StrategyName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kSeq:
      return "SEQ";
    case StrategyKind::kDse:
      return "DSE";
    case StrategyKind::kMa:
      return "MA";
  }
  return "unknown";
}

ExecutionOptions OptionsFor(StrategyKind kind) {
  ExecutionOptions options;
  // MA, as described in [1], is a simple two-phase strategy; it performs
  // its materialization and re-read I/O synchronously. DSE's fragments
  // overlap I/O with CPU (the assumption behind the paper's bmi formula).
  options.async_io = kind != StrategyKind::kMa;
  return options;
}

Result<ExecutionMetrics> RunStrategy(StrategyKind kind, ExecutionState& state,
                                     exec::ExecContext& ctx,
                                     const StrategyConfig& config) {
  switch (kind) {
    case StrategyKind::kSeq:
      return internal::RunSeqImpl(state, ctx, config);
    case StrategyKind::kDse:
      return internal::RunDseImpl(state, ctx, config);
    case StrategyKind::kMa:
      return internal::RunMaImpl(state, ctx, config);
  }
  return Status::InvalidArgument("unknown strategy");
}

namespace internal {

ExecutionMetrics CollectMetrics(const exec::ExecContext& ctx,
                                const ExecutionState& state, const Dqs* dqs,
                                const Dqp& dqp, const Dqo& dqo,
                                const StrategyCounters& counters) {
  ExecutionMetrics m;
  m.response_time = ctx.clock.now();
  m.busy_time = ctx.clock.busy_time();
  m.stalled_time = ctx.clock.stalled_time();
  m.result_count = ctx.result.count();
  m.result_checksum = ctx.result.checksum().value();
  if (dqs != nullptr) {
    m.planning_phases = dqs->planning_phases();
    m.planning_host_seconds = dqs->planning_host_seconds();
  }
  m.execution_phases = dqp.execution_phases();
  m.degradations = state.degradations();
  m.cf_activations = state.cf_activations();
  m.dqo_splits = state.dqo_splits();
  m.operand_spills = dqo.spills();
  m.timeouts = counters.timeouts;
  m.rate_change_events = counters.rate_changes;
  m.peak_memory_bytes = ctx.memory.peak();
  m.disk = ctx.disk.stats();
  m.network = ctx.net.stats();
  m.temps = ctx.temps.stats();
  // Fault layer: all-zero unless a fault schedule / failure detection ran.
  m.fault.sources_suspected = ctx.comm.fault_suspicions();
  m.fault.sources_dead = ctx.comm.fault_declared_dead();
  m.fault.recoveries = ctx.comm.fault_recoveries();
  m.fault.replays_discarded = ctx.comm.replay_discarded_total();
  m.fault.source_down_events = counters.source_down_events;
  m.fault.source_recovered_events = counters.source_recovered_events;
  m.fault.sources_abandoned = counters.sources_abandoned;
  m.fault.partial_result = counters.partial_result;
  m.fault.deadline_hit = counters.deadline_hit;
  for (SourceId s = 0; s < ctx.comm.num_sources(); ++s) {
    const wrapper::FaultInjectionStats* fs = ctx.comm.wrapper(s).fault_stats();
    if (fs == nullptr) continue;
    m.fault.stalls_injected += fs->stalls;
    m.fault.disconnects_injected += fs->disconnects;
    m.fault.reconnects += fs->reconnects;
    if (fs->died) ++m.fault.sources_killed;
  }
  return m;
}

Status DriveChain(ChainId chain, ExecutionState& state,
                  exec::ExecContext& ctx, Dqp& dqp, Dqo& dqo,
                  StrategyCounters* counters) {
  int64_t guard = 0;
  while (!state.ChainDone(chain)) {
    DQS_CHECK_MSG(++guard < (1LL << 40), "DriveChain livelock on chain %d",
                  chain);
    SchedulingPlan sp;
    sp.fragments.push_back(state.ChainFragment(chain));
    sp.critical_ns.push_back(0.0);
    Result<Event> evt = dqp.RunPhase(state, sp, ctx);
    if (!evt.ok()) return evt.status();
    switch (evt->kind) {
      case EventKind::kEndOfQf:
        state.OnFragmentFinished(evt->fragment, ctx);
        break;
      case EventKind::kMemoryOverflow:
        DQS_RETURN_IF_ERROR(dqo.HandleMemoryOverflow(state, ctx, chain));
        break;
      case EventKind::kRateChange:
        ++counters->rate_changes;
        ctx.comm.MarkPlanned(ctx.clock.now());
        break;
      case EventKind::kTimeout:
        ++counters->timeouts;
        dqo.OnTimeout();
        break;
      case EventKind::kPlanExhausted:
        return Status::Internal("chain " + std::to_string(chain) +
                                " cannot make progress");
      case EventKind::kSourceDown:
        // Sequential execution has no useful partial answer: a declared
        // death aborts the run; mere suspicion keeps waiting (the stream
        // may recover, and the detector will escalate if not).
        ++counters->source_down_events;
        if (ctx.comm.SourceDead(evt->source)) {
          return Status::Unavailable("source " + std::to_string(evt->source) +
                                     " declared dead");
        }
        break;
      case EventKind::kSourceRecovered:
        ++counters->source_recovered_events;
        break;
      case EventKind::kDeadlineExceeded:
        counters->deadline_hit = true;
        return Status::DeadlineExceeded("query deadline expired on chain " +
                                        std::to_string(chain));
      case EventKind::kSliceEnd:
      case EventKind::kStarved:
        return Status::Internal("multi-query event in DriveChain");
    }
  }
  return Status::Ok();
}

}  // namespace internal
}  // namespace dqsched::core
