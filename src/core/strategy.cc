#include "core/strategy.h"

#include "common/macros.h"
#include "core/strategy_internal.h"

namespace dqsched::core {

const char* StrategyName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kSeq:
      return "SEQ";
    case StrategyKind::kDse:
      return "DSE";
    case StrategyKind::kMa:
      return "MA";
  }
  return "unknown";
}

ExecutionOptions OptionsFor(StrategyKind kind) {
  ExecutionOptions options;
  // MA, as described in [1], is a simple two-phase strategy; it performs
  // its materialization and re-read I/O synchronously. DSE's fragments
  // overlap I/O with CPU (the assumption behind the paper's bmi formula).
  options.async_io = kind != StrategyKind::kMa;
  return options;
}

Result<ExecutionMetrics> RunStrategy(StrategyKind kind, ExecutionState& state,
                                     exec::ExecContext& ctx,
                                     const StrategyConfig& config) {
  switch (kind) {
    case StrategyKind::kSeq:
      return internal::RunSeqImpl(state, ctx, config);
    case StrategyKind::kDse:
      return internal::RunDseImpl(state, ctx, config);
    case StrategyKind::kMa:
      return internal::RunMaImpl(state, ctx, config);
  }
  return Status::InvalidArgument("unknown strategy");
}

namespace internal {

ExecutionMetrics CollectMetrics(const exec::ExecContext& ctx,
                                const ExecutionState& state, const Dqs* dqs,
                                const Dqp& dqp, const Dqo& dqo,
                                const StrategyCounters& counters) {
  ExecutionMetrics m;
  m.response_time = ctx.clock.now();
  m.busy_time = ctx.clock.busy_time();
  m.stalled_time = ctx.clock.stalled_time();
  m.result_count = ctx.result.count();
  m.result_checksum = ctx.result.checksum().value();
  if (dqs != nullptr) {
    m.planning_phases = dqs->planning_phases();
    m.planning_host_seconds = dqs->planning_host_seconds();
  }
  m.execution_phases = dqp.execution_phases();
  m.degradations = state.degradations();
  m.cf_activations = state.cf_activations();
  m.dqo_splits = state.dqo_splits();
  m.operand_spills = dqo.spills();
  m.timeouts = counters.timeouts;
  m.rate_change_events = counters.rate_changes;
  m.peak_memory_bytes = ctx.memory.peak();
  m.disk = ctx.disk.stats();
  m.network = ctx.net.stats();
  m.temps = ctx.temps.stats();
  return m;
}

Status DriveChain(ChainId chain, ExecutionState& state,
                  exec::ExecContext& ctx, Dqp& dqp, Dqo& dqo,
                  StrategyCounters* counters) {
  int64_t guard = 0;
  while (!state.ChainDone(chain)) {
    DQS_CHECK_MSG(++guard < (1LL << 40), "DriveChain livelock on chain %d",
                  chain);
    SchedulingPlan sp;
    sp.fragments.push_back(state.ChainFragment(chain));
    sp.critical_ns.push_back(0.0);
    Result<Event> evt = dqp.RunPhase(state, sp, ctx);
    if (!evt.ok()) return evt.status();
    switch (evt->kind) {
      case EventKind::kEndOfQf:
        state.OnFragmentFinished(evt->fragment, ctx);
        break;
      case EventKind::kMemoryOverflow:
        DQS_RETURN_IF_ERROR(dqo.HandleMemoryOverflow(state, ctx, chain));
        break;
      case EventKind::kRateChange:
        ++counters->rate_changes;
        ctx.comm.MarkPlanned(ctx.clock.now());
        break;
      case EventKind::kTimeout:
        ++counters->timeouts;
        dqo.OnTimeout();
        break;
      case EventKind::kPlanExhausted:
        return Status::Internal("chain " + std::to_string(chain) +
                                " cannot make progress");
      case EventKind::kSliceEnd:
      case EventKind::kStarved:
        return Status::Internal("multi-query event in DriveChain");
    }
  }
  return Status::Ok();
}

}  // namespace internal
}  // namespace dqsched::core
