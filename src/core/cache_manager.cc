#include "core/cache_manager.h"

#include <cstring>
#include <string>
#include <vector>

#include "common/macros.h"
#include "core/execution_state.h"
#include "exec/exec_context.h"
#include "plan/compiled_plan.h"
#include "storage/memory_accountant.h"

namespace dqsched::core {

namespace {

// Domain-separation tags so segment and result fingerprints can never
// collide with each other.
constexpr uint64_t kSegmentTag = 0x5e6d656e74a11feeULL;
constexpr uint64_t kResultTag = 0x4e5d1675a1fca5eULL;

uint64_t FoldU64(uint64_t h, uint64_t v) {
  return storage::Mix64(h ^ (v + 0x9e3779b97f4a7c15ULL));
}

uint64_t FoldDouble(uint64_t h, double d) {
  uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return FoldU64(h, bits);
}

uint64_t FoldOp(uint64_t h, const plan::ChainOp& op) {
  h = FoldU64(h, static_cast<uint64_t>(op.kind));
  h = FoldU64(h, static_cast<uint64_t>(op.node));
  if (op.kind == plan::ChainOpKind::kFilter) {
    h = FoldDouble(h, op.selectivity);
  } else {
    h = FoldU64(h, static_cast<uint64_t>(op.join));
    h = FoldU64(h, static_cast<uint64_t>(op.probe_key_field));
  }
  return h;
}

}  // namespace

void CacheManager::MapSource(SourceId global, int64_t logical_key) {
  logical_key_of_[global] = logical_key;
}

uint64_t CacheManager::LogicalKey(SourceId global) const {
  auto it = logical_key_of_.find(global);
  if (it == logical_key_of_.end()) return static_cast<uint64_t>(global);
  return static_cast<uint64_t>(it->second);
}

uint64_t CacheManager::VersionOf(uint64_t logical_key) const {
  auto it = versions_.find(static_cast<int64_t>(logical_key));
  return it == versions_.end() ? 0 : it->second;
}

uint64_t CacheManager::SegmentFingerprint(const plan::CompiledPlan& compiled,
                                          ChainId chain) const {
  const plan::ChainInfo& info = compiled.chain(chain);
  uint64_t h = FoldU64(kSegmentTag, LogicalKey(info.source));
  int leading = 0;
  for (const plan::ChainOp& op : info.ops) {
    if (op.kind != plan::ChainOpKind::kFilter) break;
    h = FoldOp(h, op);
    ++leading;
  }
  return FoldU64(h, static_cast<uint64_t>(leading));
}

uint64_t CacheManager::SegmentVersionHash(SourceId global) const {
  const uint64_t lk = LogicalKey(global);
  return FoldU64(lk, VersionOf(lk));
}

uint64_t CacheManager::QueryFingerprint(
    const plan::CompiledPlan& compiled) const {
  uint64_t h = FoldU64(kResultTag, static_cast<uint64_t>(compiled.num_chains()));
  h = FoldU64(h, static_cast<uint64_t>(compiled.num_joins));
  h = FoldU64(h, static_cast<uint64_t>(compiled.result_chain));
  for (const plan::ChainInfo& info : compiled.chains) {
    h = FoldU64(h, LogicalKey(info.source));
    h = FoldU64(h, info.is_result ? 1 : 0);
    h = FoldU64(h, static_cast<uint64_t>(info.sink_join));
    h = FoldU64(h, static_cast<uint64_t>(info.build_key_field));
    h = FoldU64(h, info.ops.size());
    for (const plan::ChainOp& op : info.ops) h = FoldOp(h, op);
  }
  return h;
}

uint64_t CacheManager::QueryVersionHash(
    const plan::CompiledPlan& compiled) const {
  uint64_t h = kResultTag;
  for (const plan::ChainInfo& info : compiled.chains) {
    const uint64_t lk = LogicalKey(info.source);
    h = FoldU64(h, lk);
    h = FoldU64(h, VersionOf(lk));
  }
  return h;
}

void CacheManager::AttachAccountant(storage::MemoryAccountant* accountant) {
  DQS_CHECK_MSG(accountant_ == nullptr, "accountant attached twice");
  DQS_CHECK(accountant != nullptr);
  // Trim before hooking up: these evictions have no reclaimable grant
  // backing them yet.
  cache_.SetEvictHook(nullptr);
  if (cache_.resident_bytes() > accountant->headroom()) {
    cache_.TrimTo(accountant->headroom());
  }
  accountant_ = accountant;
  accountant_->GrantReclaimable(cache_.resident_bytes());
  cache_.SetEvictHook(
      [this](int64_t freed) { accountant_->ReleaseReclaimable(freed); });
  accountant_->SetReclaimer(
      [this](int64_t deficit) { cache_.EvictLru(deficit); });
}

void CacheManager::DetachAccountant() {
  if (accountant_ == nullptr) return;
  accountant_->SetReclaimer(nullptr);
  cache_.SetEvictHook(nullptr);
  accountant_->ReleaseReclaimable(cache_.resident_bytes());
  accountant_ = nullptr;
}

void CacheManager::BeginRun() {
  cache_.BeginEpoch();
  cache_.ResetCounters();
}

bool CacheManager::EnsureHeadroom(int64_t bytes) {
  if (accountant_ == nullptr) return true;
  if (accountant_->headroom() >= bytes) return true;
  cache_.EvictLru(bytes - accountant_->headroom());
  return accountant_->headroom() >= bytes;
}

bool CacheManager::LookupResult(const plan::CompiledPlan& compiled,
                                int64_t* count, uint64_t* checksum) {
  if (!config_.enabled || !config_.cache_results) return false;
  return cache_.LookupResult(QueryFingerprint(compiled),
                             QueryVersionHash(compiled), count, checksum);
}

void CacheManager::TrySegmentHits(ExecutionState& state,
                                  exec::ExecContext& ctx) {
  if (!config_.enabled || !config_.cache_segments) return;
  const plan::CompiledPlan& compiled = state.compiled();
  for (ChainId c = 0; c < compiled.num_chains(); ++c) {
    if (state.CacheProbed(c)) continue;
    state.SetCacheProbed(c);
    if (state.ChainDone(c) || state.Degraded(c) || state.CacheBound(c)) {
      continue;
    }
    if (state.fragment(state.ChainFragment(c)).stats().consumed != 0) {
      continue;
    }
    const SourceId src = compiled.chain(c).source;
    // Binding closes the source; only safe when no other live chain
    // drains the same queue (never the case for compiled plans, but
    // hand-built ones may share).
    bool exclusive = true;
    for (ChainId o = 0; o < compiled.num_chains(); ++o) {
      if (o != c && compiled.chain(o).source == src && !state.ChainDone(o) &&
          !state.CacheBound(o)) {
        exclusive = false;
        break;
      }
    }
    if (!exclusive) continue;
    const std::vector<storage::Tuple>* segment = cache_.LookupSegment(
        SegmentFingerprint(compiled, c), SegmentVersionHash(src));
    if (segment == nullptr) continue;
    const TempId temp = ctx.temps.AdoptSealed(
        "cached_" + compiled.chain(c).name, segment->data(),
        static_cast<int64_t>(segment->size()));
    state.BindChainToCachedSegment(c, temp, ctx);
    // No live remainder: the cached segment IS the (filtered) stream.
    // Closing zeroes RemainingTuples, so the rebound chain can never
    // degrade or stall on its wrapper again.
    ctx.comm.CloseSource(src);
  }
}

void CacheManager::AdmitQuery(const ExecutionState& state,
                              exec::ExecContext& ctx, bool result_complete) {
  if (!config_.enabled) return;
  if (state.cancelled()) return;  // cancelled segments never enter
  const plan::CompiledPlan& compiled = state.compiled();
  if (config_.cache_segments) {
    for (ChainId c = 0; c < compiled.num_chains(); ++c) {
      if (!state.MfComplete(c)) continue;
      const SourceId src = compiled.chain(c).source;
      // A closed/abandoned source means the MF's "end of stream" was the
      // abandonment, not the real end — the prefix is partial.
      if (ctx.comm.SourceClosed(src)) continue;
      const TempId temp = state.MfTemp(c);
      if (ctx.temps.IsDropped(temp) || !ctx.temps.IsSealed(temp)) continue;
      const std::vector<storage::Tuple>& tuples = ctx.temps.Tuples(temp);
      const int64_t need =
          storage::ResultCache::SegmentBytes(static_cast<int64_t>(tuples.size()));
      if (!EnsureHeadroom(need)) continue;
      const int64_t admitted = cache_.InsertSegment(
          SegmentFingerprint(compiled, c), SegmentVersionHash(src), tuples);
      if (admitted > 0 && accountant_ != nullptr) {
        accountant_->GrantReclaimable(admitted);
      }
    }
  }
  if (config_.cache_results && result_complete) {
    if (!EnsureHeadroom(storage::ResultCache::SegmentBytes(0))) return;
    const int64_t admitted = cache_.InsertResult(
        QueryFingerprint(compiled), QueryVersionHash(compiled),
        state.result().count(), state.result().checksum().value());
    if (admitted > 0 && accountant_ != nullptr) {
      accountant_->GrantReclaimable(admitted);
    }
  }
}

void CacheManager::TrimTo(int64_t target_bytes) {
  cache_.TrimTo(target_bytes);
}

void CacheManager::Clear() {
  cache_.Clear();
  if (accountant_ != nullptr) {
    DQS_CHECK(cache_.resident_bytes() == 0);
  }
}

CacheStats CacheManager::stats() const {
  const storage::ResultCacheCounters& c = cache_.counters();
  CacheStats out;
  out.segment_hits = c.segment_hits;
  out.segment_misses = c.segment_misses;
  out.result_hits = c.result_hits;
  out.result_misses = c.result_misses;
  out.admitted_segments = c.admitted_segments;
  out.admitted_results = c.admitted_results;
  out.stale_invalidations = c.stale_invalidations;
  out.evictions = c.evictions;
  return out;
}

}  // namespace dqsched::core
