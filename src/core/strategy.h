// The three execution strategies compared in the paper's evaluation
// (Section 5.1.2):
//
//  * SEQ — the classical iterator model: chains run sequentially in
//    build-before-probe order; the baseline that stalls on any delay.
//  * DSE — Dynamic Scheduling Execution: the paper's contribution; the
//    DQS/DQP/DQO loop with degradation and batch interleaving.
//  * MA  — Materialize All [1]: phase 1 materializes every remote relation
//    to local disk simultaneously, phase 2 executes the query from disk.
//
// All three share the operator library, queue machinery, disk and cost
// model, "so the performance difference can only stem from the execution
// strategies".

#ifndef DQSCHED_CORE_STRATEGY_H_
#define DQSCHED_CORE_STRATEGY_H_

#include "common/status.h"
#include "core/dqp.h"
#include "core/dqs.h"
#include "core/execution_state.h"
#include "core/metrics.h"
#include "exec/exec_context.h"

namespace dqsched::core {

enum class StrategyKind { kSeq, kDse, kMa };

const char* StrategyName(StrategyKind kind);

/// How a strategy resolves unrecoverable faults (declared-dead sources,
/// query-deadline expiry). See DESIGN.md §8.
struct FaultPolicy {
  /// DSE only: degrade gracefully instead of failing. A declared-dead
  /// source is abandoned (its chain completes from what arrived) rather
  /// than aborting with kUnavailable; a deadline expiry returns the
  /// metrics accumulated so far rather than kDeadlineExceeded. Either way
  /// the result is flagged FaultStats::partial_result and skips reference
  /// verification. SEQ and MA are strict regardless: their all-or-nothing
  /// structure has no useful partial answer.
  bool partial_results = false;
};

/// Shared strategy tunables.
struct StrategyConfig {
  DqsConfig dqs;
  DqpConfig dqp;
  FaultPolicy fault;
};

/// Runs one strategy to completion over freshly constructed state.
/// The context's clock must be at zero.
Result<ExecutionMetrics> RunStrategy(StrategyKind kind, ExecutionState& state,
                                     exec::ExecContext& ctx,
                                     const StrategyConfig& config);

/// The ExecutionOptions a strategy requires (MA runs its temp I/O
/// synchronously; see DESIGN.md's substitution notes).
ExecutionOptions OptionsFor(StrategyKind kind);

}  // namespace dqsched::core

#endif  // DQSCHED_CORE_STRATEGY_H_
