#include "core/fleet_executor.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <utility>

#include "common/macros.h"
#include "common/parallel_runner.h"
#include "common/random.h"
#include "core/shared_loop.h"
#include "exec/exec_context.h"
#include "storage/tuple.h"
#include "wrapper/wrapper.h"

namespace dqsched::core {

namespace {

/// Salt of the storm-compilation rng stream (schedule jitter and the
/// FaultModel's own draws). Equal to the mediator's kFaultSalt so both
/// drivers carve their fault randomness out of the same family.
constexpr uint64_t kFleetFaultSalt = 0xa0761d6478bd642fULL;
/// Salt of the retry-backoff jitter stream: dedicated, so arming retries
/// perturbs no data/delay/fault draw anywhere else (DESIGN.md §13).
constexpr uint64_t kFleetRetrySalt = 0x8bb84b93962eacc9ULL;

uint64_t MixSeed(uint64_t base, uint64_t a, uint64_t b) {
  return storage::Mix64(base ^ (a + 1) * 0x9e3779b97f4a7c15ULL ^
                        (b + 1) * 0xc2b2ae3d27d4eb4fULL);
}

/// Admission estimate of one compiled template: the annotated hard +
/// spillable memory of every chain, never below one byte (the broker
/// rejects zero-weight admissions).
int64_t EstimateBytes(const plan::CompiledPlan& compiled) {
  double est = 0.0;
  for (const plan::ChainInfo& chain : compiled.chains) {
    est += std::ceil(chain.est_mem_bytes + chain.est_sink_mem_bytes);
  }
  return std::max<int64_t>(1, static_cast<int64_t>(est));
}

bool GrantBefore(const MemoryBroker::Grant& a, const MemoryBroker::Grant& b) {
  return a.granted_at != b.granted_at ? a.granted_at < b.granted_at
                                      : a.uid < b.uid;
}

}  // namespace

Result<FleetExecutor> FleetExecutor::Create(
    std::vector<plan::QuerySetup> templates,
    std::vector<FleetQuerySpec> workload, FleetConfig config) {
  DQS_RETURN_IF_ERROR(config.cost.Validate());
  if (templates.empty()) {
    return Status::InvalidArgument("no query templates");
  }
  if (workload.empty()) {
    return Status::InvalidArgument("empty fleet workload");
  }
  if (config.num_shards <= 0 || config.sync_turns <= 0 ||
      config.slice_batches <= 0 || config.memory_budget_bytes <= 0) {
    return Status::InvalidArgument(
        "shards, sync turns, slice and budget must be > 0");
  }
  DQS_RETURN_IF_ERROR(config.storm.Validate());
  if (config.max_attempts < 1) {
    return Status::InvalidArgument("fleet max_attempts must be >= 1");
  }
  if (config.deadline_budget < 0 || config.retry_backoff_initial <= 0 ||
      config.retry_jitter < 0 || config.retry_jitter >= 1.0) {
    return Status::InvalidArgument(
        "fleet lifecycle: deadline budget >= 0, backoff > 0, jitter in "
        "[0, 1)");
  }

  std::vector<PreparedTemplate> prepared;
  prepared.reserve(templates.size());
  for (size_t t = 0; t < templates.size(); ++t) {
    plan::QuerySetup& setup = templates[t];
    PreparedTemplate tpl;
    Result<plan::CompiledPlan> compiled =
        plan::Compile(setup.plan, setup.catalog);
    if (!compiled.ok()) return compiled.status();
    tpl.compiled = std::move(compiled.value());
    DQS_RETURN_IF_ERROR(
        plan::Annotate(&tpl.compiled, setup.catalog, config.cost));
    tpl.data.reserve(static_cast<size_t>(setup.catalog.num_sources()));
    for (SourceId s = 0; s < setup.catalog.num_sources(); ++s) {
      tpl.data.push_back(storage::GenerateRelation(
          setup.catalog.source(s).relation, s,
          Rng(MixSeed(config.seed, 0x7E3D + t, static_cast<uint64_t>(s)))));
    }
    tpl.reference = plan::ExecuteReference(tpl.compiled, tpl.data);
    tpl.est_bytes = EstimateBytes(tpl.compiled);
    tpl.catalog = std::move(setup.catalog);
    prepared.push_back(std::move(tpl));
  }

  std::vector<PreparedInstance> instances;
  instances.reserve(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    const FleetQuerySpec& spec = workload[i];
    if (spec.template_idx < 0 ||
        spec.template_idx >= static_cast<int>(prepared.size())) {
      return Status::InvalidArgument("fleet spec names an unknown template");
    }
    if (spec.arrival < 0) {
      return Status::InvalidArgument("fleet arrival times must be >= 0");
    }
    PreparedInstance inst;
    inst.spec = spec;
    inst.uid = static_cast<int64_t>(i);
    // Stable hash placement: depends only on (seed, uid), never on load.
    inst.shard = static_cast<int>(
        MixSeed(config.seed, static_cast<uint64_t>(i), 0xF1EE7) %
        static_cast<uint64_t>(config.num_shards));
    instances.push_back(std::move(inst));
  }

  // Shard-local source id spaces: each shard's instances get contiguous
  // ranges in admission order (arrival, uid), and each instance runs a
  // template copy remapped into its range.
  std::vector<std::vector<int>> shard_instances(
      static_cast<size_t>(config.num_shards));
  for (const PreparedInstance& inst : instances) {
    shard_instances[static_cast<size_t>(inst.shard)].push_back(
        static_cast<int>(inst.uid));
  }
  for (std::vector<int>& order : shard_instances) {
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const SimTime aa = instances[static_cast<size_t>(a)].spec.arrival;
      const SimTime bb = instances[static_cast<size_t>(b)].spec.arrival;
      return aa != bb ? aa < bb : a < b;
    });
    SourceId offset = 0;
    for (int idx : order) {
      PreparedInstance& inst = instances[static_cast<size_t>(idx)];
      const PreparedTemplate& tpl =
          prepared[static_cast<size_t>(inst.spec.template_idx)];
      inst.compiled = tpl.compiled;
      for (plan::ChainInfo& chain : inst.compiled.chains) {
        chain.source += offset;
      }
      inst.source_lo = offset;
      inst.source_hi = offset + tpl.catalog.num_sources();
      offset = inst.source_hi;
    }
  }

  return FleetExecutor(std::move(prepared), std::move(instances),
                       std::move(shard_instances), std::move(config));
}

Result<FleetMetrics> FleetExecutor::Execute(StrategyKind strategy,
                                            int jobs) const {
  if (strategy == StrategyKind::kMa) {
    return Status::InvalidArgument(
        "fleet execution supports SEQ and DSE per-query strategies");
  }
  const int num_shards = config_.num_shards;
  const int total = num_queries();

  // The lifecycle gate (DESIGN.md §13): when neither deadlines nor a
  // storm are configured, every branch below collapses to the
  // pre-lifecycle fleet — same turns, same stalls, same broker traffic —
  // so disarmed runs stay byte-identical to the old baselines.
  const bool lifecycle =
      config_.deadline_budget > 0 || config_.storm.active();
  comm::CommConfig comm_config = config_.comm;
  // A storm is pointless without the detector watching for it.
  if (config_.storm.active()) comm_config.failure_detection = true;

  // Logical source keys: breakers, storm regions and result-cache entries
  // are per *logical* source (template-relative relation), shared by every
  // query instance reading it, and identically laid out on every shard.
  std::vector<int> tpl_key_offset(templates_.size(), 0);
  int total_keys = 0;
  for (size_t t = 0; t < templates_.size(); ++t) {
    tpl_key_offset[t] = total_keys;
    total_keys += templates_[t].catalog.num_sources();
  }

  // Result cache (DESIGN.md §14): one CacheManager per shard, created on
  // the first cache-enabled Execute and kept across Execute calls — the
  // warmth is the whole point. Epoch gating inside the cache keeps every
  // entry admitted *this* run invisible until the next one, so run 1 is
  // always cold.
  const bool caching = config_.cache.enabled;
  if (caching && caches_.empty()) {
    caches_.resize(static_cast<size_t>(num_shards));
    for (int s = 0; s < num_shards; ++s) {
      caches_[static_cast<size_t>(s)] =
          std::make_unique<CacheManager>(config_.cache);
    }
  }
  // Per-query lifecycle state. Each entry is touched by its owning
  // shard's advance task mid-round and by the coordinator at barriers
  // (shed marking); ParallelRunner::Run joining its workers orders the
  // two, exactly like the shards' own state.
  struct LifeState {
    int attempts = 0;  // attempts that joined a shard loop
    bool terminal = false;
    SimTime deadline = 0;  // current attempt's absolute deadline (0=none)
    bool partial = false;  // current attempt degraded (breaker-closed src)
  };
  std::vector<LifeState> life(static_cast<size_t>(total));
  // Fault activity per query, accumulated over its attempts: injection
  // counters harvested from each attempt's wrappers at attempt end,
  // detection/resolution counters counted from lifecycle turns.
  std::vector<FaultStats> fault_acc(static_cast<size_t>(total));

  // Per-shard run state. The ExecContext/loop/mailbox of shard s are
  // touched only by the coordinator (between rounds) and by whichever
  // worker runs s's advance task (during a round); ParallelRunner::Run
  // joining its workers is the barrier that orders the two.
  struct ShardRun {
    std::unique_ptr<exec::ExecContext> ctx;
    std::unique_ptr<SharedQueryLoop> loop;
    /// Granted-but-not-joined queries, sorted by (granted_at, uid).
    std::deque<MemoryBroker::Grant> mailbox;
    /// Loop slot -> query uid (retried queries own several slots).
    std::vector<int64_t> slot_uid;
    /// Sum of joined-but-not-released admission estimates.
    int64_t outstanding_est = 0;
    /// Queries retired in a terminal status on this shard.
    int retired = 0;
    Status status = Status::Ok();
    /// Lifecycle: per-logical-source breakers, the shard-local source ->
    /// logical key map, and which uid holds each key's half-open probe.
    std::unique_ptr<BreakerPanel> breakers;
    std::vector<int> source_key;
    std::vector<int64_t> probe_owner;
    /// Shard-remapped plan copies of retry attempts (deque: AddQuery
    /// keeps pointers into elements, so no reallocation is allowed).
    std::deque<plan::CompiledPlan> retry_plans;
  };
  std::vector<ShardRun> shards(static_cast<size_t>(num_shards));
  // Return the reclaimable grants on every exit path. Declared after
  // `shards` so it is destroyed first — the accountants the managers
  // must release into live inside the shard ExecContexts. Entries stay
  // resident across runs.
  struct CacheDetach {
    std::vector<std::unique_ptr<CacheManager>>* caches = nullptr;
    ~CacheDetach() {
      if (caches == nullptr) return;
      for (std::unique_ptr<CacheManager>& c : *caches) c->DetachAccountant();
    }
  } cache_detach;
  if (caching) cache_detach.caches = &caches_;
  for (int s = 0; s < num_shards; ++s) {
    ShardRun& sr = shards[static_cast<size_t>(s)];
    sr.ctx = std::make_unique<exec::ExecContext>(
        &config_.cost, comm_config, config_.memory_budget_bytes);
    sr.breakers = std::make_unique<BreakerPanel>(total_keys, config_.breaker);
    sr.probe_owner.assign(static_cast<size_t>(total_keys), -1);
    // Register every wrapper of every query this shard will ever run, in
    // shard-local source id order, held: a held wrapper delivers nothing
    // and reports no arrival until its query is admitted and StartSource
    // releases it at the join time.
    CacheManager* const shard_cache =
        caching ? caches_[static_cast<size_t>(s)].get() : nullptr;
    for (int idx : shard_instances_[static_cast<size_t>(s)]) {
      const PreparedInstance& inst = instances_[static_cast<size_t>(idx)];
      const PreparedTemplate& tpl =
          templates_[static_cast<size_t>(inst.spec.template_idx)];
      for (SourceId src = 0; src < tpl.catalog.num_sources(); ++src) {
        auto w = std::make_unique<wrapper::SimWrapper>(
            inst.source_lo + src, &tpl.data[static_cast<size_t>(src)],
            tpl.catalog.source(src).delay,
            MixSeed(config_.seed, static_cast<uint64_t>(inst.uid),
                    static_cast<uint64_t>(src) + 977));
        w->Hold();
        sr.ctx->comm.AddSource(
            std::move(w), static_cast<double>(config_.cost.MinWaitingTime()));
        const int key =
            tpl_key_offset[static_cast<size_t>(inst.spec.template_idx)] +
            static_cast<int>(src);
        sr.source_key.push_back(key);
        // Instances of a template hash to the same cache entries: the
        // fingerprint sees the logical key, not the shard-local id.
        if (shard_cache != nullptr) {
          shard_cache->MapSource(inst.source_lo + src, key);
        }
      }
    }
    SharedQueryLoop::Options loop_options;
    loop_options.strategy = strategy;
    loop_options.config = config_.strategy;
    loop_options.slice_batches = config_.slice_batches;
    loop_options.targeted_replans = config_.targeted_replans;
    loop_options.surface_lifecycle = lifecycle;
    loop_options.kernels = config_.kernels;
    loop_options.cache = shard_cache;
    sr.loop = std::make_unique<SharedQueryLoop>(sr.ctx.get(), loop_options);
    if (shard_cache != nullptr) {
      shard_cache->AttachAccountant(&sr.ctx->memory);
      shard_cache->BeginRun();
    }
  }

  MemoryBroker broker(MemoryBroker::Config{config_.memory_budget_bytes});
  // The whole open-loop stream is known upfront, so every admission
  // request is submitted before the first round; arrival times ride along
  // and the broker's virtual grant stamps never precede them.
  for (const PreparedInstance& inst : instances_) {
    MemoryBroker::Request req;
    req.uid = inst.uid;
    req.shard = inst.shard;
    req.est_bytes =
        templates_[static_cast<size_t>(inst.spec.template_idx)].est_bytes;
    req.fairness = inst.spec.fairness;
    req.arrival = inst.spec.arrival;
    if (config_.deadline_budget > 0) {
      req.deadline = req.arrival + config_.deadline_budget;
      life[static_cast<size_t>(inst.uid)].deadline = req.deadline;
    }
    broker.Submit(req);
  }

  std::vector<FleetQueryOutcome> outcomes(static_cast<size_t>(total));
  for (const PreparedInstance& inst : instances_) {
    FleetQueryOutcome& oc = outcomes[static_cast<size_t>(inst.uid)];
    oc.uid = inst.uid;
    oc.shard = inst.shard;
    oc.template_idx = inst.spec.template_idx;
    oc.fairness = inst.spec.fairness;
    oc.est_bytes =
        templates_[static_cast<size_t>(inst.spec.template_idx)].est_bytes;
    oc.arrival = inst.spec.arrival;
  }

  // One shard advance: deliver due grants, run up to sync_turns loop
  // turns, stall only the shard's own clock. Completion releases go to
  // the broker mid-round (append only); new grants arrive at the barrier.
  auto advance = [&](int s) {
    ShardRun& sr = shards[static_cast<size_t>(s)];
    exec::ExecContext& ctx = *sr.ctx;
    CacheManager* const cache =
        caching ? caches_[static_cast<size_t>(s)].get() : nullptr;

    // Fold the injection-side fault counters of one attempt's sources
    // into the query's accumulator (called exactly once per attempt, at
    // its end — each attempt owns fresh wrappers, so nothing double
    // counts).
    auto harvest = [&](int slot) {
      const SharedQueryDesc& d = sr.loop->desc(slot);
      FaultStats& f =
          fault_acc[static_cast<size_t>(sr.slot_uid[static_cast<size_t>(
              slot)])];
      for (SourceId src = d.source_lo; src < d.source_hi; ++src) {
        const wrapper::FaultInjectionStats* fs =
            ctx.comm.wrapper(src).fault_stats();
        if (fs != nullptr) {
          f.stalls_injected += fs->stalls;
          f.disconnects_injected += fs->disconnects;
          f.reconnects += fs->reconnects;
          if (fs->died) ++f.sources_killed;
        }
        f.replays_discarded += ctx.comm.ReplayDiscarded(src);
      }
    };

    // A cancelled query abandons any half-open probe it held: the probe
    // proved nothing, so the breaker reopens (with its cooldown backed
    // off) instead of wedging with a probe slot nobody will ever clear.
    auto abort_probes = [&](int slot, int64_t uid) {
      const SharedQueryDesc& d = sr.loop->desc(slot);
      for (SourceId src = d.source_lo; src < d.source_hi; ++src) {
        const int key = sr.source_key[static_cast<size_t>(src)];
        if (sr.probe_owner[static_cast<size_t>(key)] == uid) {
          sr.breakers->Of(key).OnProbeAborted(ctx.clock.now());
          sr.probe_owner[static_cast<size_t>(key)] = -1;
        }
      }
    };

    // Kill the attempt in `slot` (source death or deadline expiry):
    // cancel cooperatively — ExecutionState::Cancel releases every
    // operand grant and temp, CancelQuery closes the comm sources — give
    // the broker its memory back, then either requeue with exponential
    // backoff or retire in a terminal status.
    auto kill_attempt = [&](int slot, bool deadline_kill) {
      const int64_t uid = sr.slot_uid[static_cast<size_t>(slot)];
      LifeState& ls = life[static_cast<size_t>(uid)];
      FleetQueryOutcome& oc = outcomes[static_cast<size_t>(uid)];
      const SimTime now = ctx.clock.now();
      harvest(slot);
      abort_probes(slot, uid);
      sr.loop->CancelQuery(slot);
      MemoryBroker::Release rel;
      rel.uid = uid;
      rel.bytes = oc.est_bytes;
      rel.completed_at = now;
      broker.Submit(rel);
      sr.outstanding_est -= oc.est_bytes;
      if (deadline_kill) fault_acc[static_cast<size_t>(uid)].deadline_hit = true;
      if (ls.attempts < config_.max_attempts) {
        // Requeue through the broker. The jitter comes off a dedicated
        // salted stream keyed by (uid, attempt): deterministic across
        // --jobs, and arming retries perturbs no other draw.
        Rng rng(MixSeed(config_.seed ^ kFleetRetrySalt,
                        static_cast<uint64_t>(uid),
                        static_cast<uint64_t>(ls.attempts)));
        const double scale =
            1.0 + config_.retry_jitter * (2.0 * rng.NextDouble() - 1.0);
        const SimDuration backoff = static_cast<SimDuration>(std::ceil(
            static_cast<double>(config_.retry_backoff_initial) *
            std::ldexp(1.0, ls.attempts - 1) * scale));
        MemoryBroker::Request req;
        req.uid = uid;
        req.shard = s;
        req.est_bytes = oc.est_bytes;
        req.fairness = oc.fairness;
        req.arrival = now + backoff;
        if (config_.deadline_budget > 0) {
          req.deadline = req.arrival + config_.deadline_budget;
          ls.deadline = req.deadline;
        }
        ls.partial = false;
        broker.Submit(req);
      } else {
        ls.terminal = true;
        oc.status = deadline_kill ? QueryStatus::kDeadlineCancelled
                                  : QueryStatus::kRetriesExhausted;
        oc.completed = now;
        oc.completion_latency = now - oc.arrival;
        ++sr.retired;
      }
    };

    auto join_front = [&] {
      const MemoryBroker::Grant grant = sr.mailbox.front();
      sr.mailbox.pop_front();
      const int64_t uid = grant.uid;
      const PreparedInstance& inst = instances_[static_cast<size_t>(uid)];
      const PreparedTemplate& tpl =
          templates_[static_cast<size_t>(inst.spec.template_idx)];
      LifeState& ls = life[static_cast<size_t>(uid)];
      FleetQueryOutcome& oc = outcomes[static_cast<size_t>(uid)];
      const SimTime now = ctx.clock.now();
      if (lifecycle && ls.deadline > 0 && now >= ls.deadline) {
        // The grant outlived its usefulness while it sat in the mailbox
        // (the shard's clock outran the deadline): shed at join — the
        // grant is returned unused, the query never runs.
        MemoryBroker::Release rel;
        rel.uid = uid;
        rel.bytes = grant.est_bytes;
        rel.completed_at = now;
        broker.Submit(rel);
        ls.terminal = true;
        oc.status = QueryStatus::kShed;
        ++sr.retired;
        return;
      }
      if (cache != nullptr) {
        // Whole-query result hit (DESIGN.md §14): the fingerprint sees
        // logical keys, so the first attempt's plan stands in for any
        // attempt. The query joins already answered — its sources are
        // never started (they stay held, like a shed query's), no storm
        // schedule is compiled, no breaker is consulted — and the grant
        // goes straight back to the broker.
        int64_t hit_count = 0;
        uint64_t hit_checksum = 0;
        if (cache->LookupResult(inst.compiled, &hit_count, &hit_checksum)) {
          ++ls.attempts;
          SharedQueryDesc desc;
          desc.compiled = &inst.compiled;
          desc.source_lo = inst.source_lo;
          desc.source_hi = inst.source_hi;
          desc.deadline = ls.deadline;
          desc.resolved = true;
          desc.resolved_count = hit_count;
          desc.resolved_checksum = hit_checksum;
          const int slot = sr.loop->AddQuery(desc);
          DQS_CHECK(slot == static_cast<int>(sr.slot_uid.size()));
          sr.slot_uid.push_back(uid);
          oc.joined = now;
          oc.completed = now;
          oc.completion_latency = now - oc.arrival;
          oc.status = QueryStatus::kOk;
          ls.terminal = true;
          MemoryBroker::Release rel;
          rel.uid = uid;
          rel.bytes = grant.est_bytes;
          rel.completed_at = now;
          broker.Submit(rel);
          ++sr.retired;
          return;
        }
      }
      ++ls.attempts;
      SourceId lo = inst.source_lo;
      SourceId hi = inst.source_hi;
      const plan::CompiledPlan* compiled = &inst.compiled;
      if (ls.attempts > 1) {
        // A retry runs fresh wrappers in a fresh shard-local source
        // range; the first attempt's closed range stays retired. The
        // wrapper seed folds the attempt in, so retries replay the same
        // *data* through new delay/fault draws.
        const SourceId n_src = tpl.catalog.num_sources();
        lo = ctx.comm.num_sources();
        hi = lo + n_src;
        sr.retry_plans.push_back(tpl.compiled);
        plan::CompiledPlan& copy = sr.retry_plans.back();
        for (plan::ChainInfo& chain : copy.chains) chain.source += lo;
        compiled = &copy;
        for (SourceId src = 0; src < n_src; ++src) {
          auto w = std::make_unique<wrapper::SimWrapper>(
              lo + src, &tpl.data[static_cast<size_t>(src)],
              tpl.catalog.source(src).delay,
              MixSeed(config_.seed, static_cast<uint64_t>(uid),
                      static_cast<uint64_t>(src) + 977 +
                          static_cast<uint64_t>(ls.attempts) * 7919));
          w->Hold();
          ctx.comm.AddSource(std::move(w),
                             static_cast<double>(config_.cost.MinWaitingTime()));
          const int key =
              tpl_key_offset[static_cast<size_t>(inst.spec.template_idx)] +
              static_cast<int>(src);
          sr.source_key.push_back(key);
          if (cache != nullptr) cache->MapSource(lo + src, key);
        }
      }
      for (SourceId src = lo; src < hi; ++src) {
        const int key = sr.source_key[static_cast<size_t>(src)];
        if (config_.storm.active()) {
          // Compile the absolute-time storm spec into this attempt's
          // tuple-index schedule: an attempt starting after the storm
          // passed gets an empty schedule, which is what makes
          // retry-after-recovery succeed.
          Rng rng(MixSeed(config_.seed ^ kFleetFaultSalt,
                          static_cast<uint64_t>(uid) * 64 +
                              static_cast<uint64_t>(ls.attempts),
                          static_cast<uint64_t>(key)));
          wrapper::FaultSchedule schedule = wrapper::BuildStormSchedule(
              config_.storm, key, total_keys, now,
              ctx.comm.wrapper(src).MeanDelayNs(),
              tpl.data[static_cast<size_t>(src - lo)].cardinality(), &rng);
          ctx.comm.InstallFaultSchedule(
              src, std::move(schedule),
              MixSeed(config_.seed ^ kFleetFaultSalt,
                      static_cast<uint64_t>(uid) * 64 +
                          static_cast<uint64_t>(ls.attempts),
                      static_cast<uint64_t>(key) + 0x5151));
        }
        bool admit = true;
        if (lifecycle) {
          CircuitBreaker& breaker = sr.breakers->Of(key);
          const bool probing =
              breaker.state(now) == BreakerState::kHalfOpen;
          admit = breaker.Allow(now);
          if (admit && probing) {
            sr.probe_owner[static_cast<size_t>(key)] = uid;
          }
        }
        if (admit) {
          ctx.comm.StartSource(src, now);
        } else {
          // Open breaker: degrade immediately instead of burning the
          // deadline budget rediscovering a known outage. The source
          // contributes nothing; the query finishes partial.
          ctx.comm.CloseSource(src);
          ls.partial = true;
          ++fault_acc[static_cast<size_t>(uid)].sources_abandoned;
        }
      }
      SharedQueryDesc desc;
      desc.compiled = compiled;
      desc.source_lo = lo;
      desc.source_hi = hi;
      desc.deadline = ls.deadline;
      const int slot = sr.loop->AddQuery(desc);
      DQS_CHECK(slot == static_cast<int>(sr.slot_uid.size()));
      sr.slot_uid.push_back(uid);
      oc.joined = now;
      sr.outstanding_est += grant.est_bytes;
    };

    for (int64_t turns = 0; turns < config_.sync_turns;) {
      while (!sr.mailbox.empty() &&
             sr.mailbox.front().granted_at <= ctx.clock.now()) {
        join_front();
      }
      if (sr.loop->active() == 0) {
        // Nothing running: jump the idle shard's clock to its next
        // admission, or yield to the barrier (waiting or finished).
        if (sr.mailbox.empty()) return;
        ctx.clock.StallUntil(sr.mailbox.front().granted_at);
        continue;
      }
      Result<SharedQueryLoop::Turn> turn = sr.loop->Step();
      ++turns;
      if (!turn.ok()) {
        sr.status = turn.status();
        return;
      }
      switch (turn->kind) {
        case SharedQueryLoop::Turn::Kind::kQueryDone: {
          const int slot = turn->query;
          const int64_t uid = sr.slot_uid[static_cast<size_t>(slot)];
          LifeState& ls = life[static_cast<size_t>(uid)];
          FleetQueryOutcome& oc = outcomes[static_cast<size_t>(uid)];
          oc.completed = sr.loop->done_at(slot);
          oc.completion_latency = oc.completed - oc.arrival;
          if (lifecycle) {
            harvest(slot);
            // Completion is the probe-success signal: every source the
            // query actually read to the end is demonstrably alive, so a
            // non-closed breaker guarding one resets.
            const SharedQueryDesc& d = sr.loop->desc(slot);
            for (SourceId src = d.source_lo; src < d.source_hi; ++src) {
              if (ctx.comm.SourceClosed(src)) continue;
              const int key = sr.source_key[static_cast<size_t>(src)];
              CircuitBreaker& breaker = sr.breakers->Of(key);
              if (breaker.state(ctx.clock.now()) != BreakerState::kClosed) {
                breaker.OnRecovered(ctx.clock.now());
              }
              if (sr.probe_owner[static_cast<size_t>(key)] == uid) {
                sr.probe_owner[static_cast<size_t>(key)] = -1;
              }
            }
            if (ls.partial) {
              fault_acc[static_cast<size_t>(uid)].partial_result = true;
            }
          }
          oc.status =
              ls.partial ? QueryStatus::kPartial : QueryStatus::kOk;
          if (cache != nullptr) {
            // Harvest the clean completion: finished MFs whose sources
            // were never closed become cached segments; a full (non-
            // partial) answer also caches its result digest. Visible only
            // from the next run on (epoch gating).
            cache->AdmitQuery(sr.loop->state(slot), ctx,
                              oc.status == QueryStatus::kOk);
          }
          ls.terminal = true;
          MemoryBroker::Release rel;
          rel.uid = uid;
          rel.bytes = oc.est_bytes;
          rel.completed_at = oc.completed;
          broker.Submit(rel);
          sr.outstanding_est -= oc.est_bytes;
          ++sr.retired;
          break;
        }
        case SharedQueryLoop::Turn::Kind::kQueryDeadline: {
          kill_attempt(turn->query, /*deadline_kill=*/true);
          break;
        }
        case SharedQueryLoop::Turn::Kind::kSourceSuspected: {
          const int key = sr.source_key[static_cast<size_t>(turn->source)];
          sr.breakers->Of(key).OnSuspected(ctx.clock.now());
          if (turn->query >= 0) {
            FaultStats& f = fault_acc[static_cast<size_t>(
                sr.slot_uid[static_cast<size_t>(turn->query)])];
            ++f.sources_suspected;
            ++f.source_down_events;
          }
          break;
        }
        case SharedQueryLoop::Turn::Kind::kSourceDead: {
          const int key = sr.source_key[static_cast<size_t>(turn->source)];
          sr.breakers->Of(key).OnDead(ctx.clock.now());  // also clears probe
          sr.probe_owner[static_cast<size_t>(key)] = -1;
          const int owner = turn->query;
          if (owner >= 0 && !sr.loop->done(owner)) {
            FaultStats& f = fault_acc[static_cast<size_t>(
                sr.slot_uid[static_cast<size_t>(owner)])];
            ++f.sources_dead;
            ++f.source_down_events;
            kill_attempt(owner, /*deadline_kill=*/false);
          }
          break;
        }
        case SharedQueryLoop::Turn::Kind::kSourceRecovered: {
          const int key = sr.source_key[static_cast<size_t>(turn->source)];
          sr.breakers->Of(key).OnRecovered(ctx.clock.now());
          sr.probe_owner[static_cast<size_t>(key)] = -1;
          if (turn->query >= 0) {
            FaultStats& f = fault_acc[static_cast<size_t>(
                sr.slot_uid[static_cast<size_t>(turn->query)])];
            ++f.recoveries;
            ++f.source_recovered_events;
          }
          break;
        }
        case SharedQueryLoop::Turn::Kind::kAllStarved: {
          SimTime next = turn->stall_until;
          if (!sr.mailbox.empty()) {
            next = std::min(next, sr.mailbox.front().granted_at);
          }
          if (lifecycle) {
            // A wedged mix is no longer an error: the detector's next
            // threshold and the earliest live deadline bound the stall,
            // so every query terminates in a documented status instead.
            next = std::min(next, ctx.comm.NextFaultDeadline(ctx.clock.now()));
            for (int q = 0; q < sr.loop->num_queries(); ++q) {
              if (sr.loop->done(q)) continue;
              const SimTime dl = sr.loop->desc(q).deadline;
              if (dl > 0) next = std::min(next, dl);
            }
          }
          if (next == kSimTimeNever) {
            sr.status = Status::Internal("fleet shard cannot make progress");
            return;
          }
          ctx.clock.StallUntil(next);
          break;
        }
        default:
          break;  // kProgress / kIdle
      }
    }
  };

  auto deliver = [&](const std::vector<std::vector<MemoryBroker::Grant>>&
                         grants) {
    size_t delivered = 0;
    for (int s = 0; s < num_shards; ++s) {
      ShardRun& sr = shards[static_cast<size_t>(s)];
      for (const MemoryBroker::Grant& grant : grants[static_cast<size_t>(s)]) {
        outcomes[static_cast<size_t>(grant.uid)].admitted = grant.granted_at;
        sr.mailbox.push_back(grant);
        ++delivered;
      }
      std::sort(sr.mailbox.begin(), sr.mailbox.end(), GrantBefore);
    }
    return delivered;
  };

  // Conservation audit (barrier-side): everything the broker thinks is
  // admitted must sit in exactly one place — running in a shard, waiting
  // in a shard's mailbox. Anything else is a leaked or double-counted
  // grant.
  auto audit = [&] {
    int64_t accounted = 0;
    for (const ShardRun& sr : shards) {
      accounted += sr.outstanding_est;
      for (const MemoryBroker::Grant& grant : sr.mailbox) {
        accounted += grant.est_bytes;
      }
    }
    DQS_CHECK_MSG(broker.outstanding_bytes() == accounted,
                  "fleet memory accounting mismatch: broker=%lld shards=%lld",
                  static_cast<long long>(broker.outstanding_bytes()),
                  static_cast<long long>(accounted));
  };

  // Barrier-side cache arbitration: report every shard's cached bytes,
  // then trim where firm grants plus the fleet's caches overflow the
  // global budget. Fits() never saw the cached bytes, so admission —
  // and with it the grant sequence — is untouched (work conservation).
  auto reclaim = [&] {
    if (!caching) return;
    for (int s = 0; s < num_shards; ++s) {
      broker.ReportReclaimable(
          s, caches_[static_cast<size_t>(s)]->resident_bytes());
    }
    const std::vector<int64_t> trims = broker.ReclaimTargets(num_shards);
    for (int s = 0; s < num_shards; ++s) {
      if (trims[static_cast<size_t>(s)] > 0) {
        CacheManager& c = *caches_[static_cast<size_t>(s)];
        c.TrimTo(c.resident_bytes() - trims[static_cast<size_t>(s)]);
      }
    }
  };

  ParallelRunner runner(jobs);
  int64_t rounds = 0;
  int shed_total = 0;  // terminals the broker retired (never joined)
  std::vector<MemoryBroker::Request> shed;
  while (true) {
    int terminal_total = shed_total;
    for (const ShardRun& sr : shards) terminal_total += sr.retired;
    if (terminal_total == total) break;
    DQS_CHECK_MSG(++rounds < (1LL << 32), "fleet livelock");

    std::vector<std::function<void()>> tasks;
    for (int s = 0; s < num_shards; ++s) {
      const ShardRun& sr = shards[static_cast<size_t>(s)];
      if (sr.loop->active() > 0 || !sr.mailbox.empty()) {
        tasks.push_back([&advance, s] { advance(s); });
      }
    }
    runner.Run(tasks);
    for (const ShardRun& sr : shards) {
      if (!sr.status.ok()) return sr.status;
    }

    shed.clear();
    size_t delivered = deliver(broker.Arbitrate(num_shards, &shed));
    // Deadline-aware admission: a queued request whose earliest possible
    // grant stamp reached its deadline was dropped by the broker. It was
    // never granted, so the only bookkeeping is its terminal status.
    for (const MemoryBroker::Request& req : shed) {
      LifeState& ls = life[static_cast<size_t>(req.uid)];
      DQS_CHECK(!ls.terminal);
      ls.terminal = true;
      outcomes[static_cast<size_t>(req.uid)].status = QueryStatus::kShed;
      ++shed_total;
    }
    audit();
    reclaim();
    if (tasks.empty() && delivered == 0 && shed.empty()) {
      // No shard could run and arbitration admitted nothing: only an
      // over-budget head can block the queue. Force it through (the
      // execution-level accountant still enforces; DQO spills).
      if (!broker.HasQueued()) {
        return Status::Internal("fleet cannot make progress");
      }
      deliver(broker.ForceAdmit(num_shards));
      audit();
      reclaim();
    }
  }
  DQS_CHECK_MSG(broker.outstanding_bytes() == 0 && !broker.HasQueued(),
                "fleet ended with outstanding grants");

  FleetMetrics out;
  out.rounds = rounds;
  out.broker = broker.stats();
  out.queries = std::move(outcomes);
  out.shards.resize(static_cast<size_t>(num_shards));
  // Aggregation order is part of the determinism contract: shards in
  // ascending id, and within a shard the loop's slot order (= admission
  // order).
  for (int s = 0; s < num_shards; ++s) {
    const ShardRun& sr = shards[static_cast<size_t>(s)];
    for (int slot = 0; slot < sr.loop->num_queries(); ++slot) {
      const int64_t uid = sr.slot_uid[static_cast<size_t>(slot)];
      FleetQueryOutcome& oc = out.queries[static_cast<size_t>(uid)];
      const PreparedTemplate& tpl =
          templates_[static_cast<size_t>(oc.template_idx)];
      // Slot order is join order, so a retried query's later attempts
      // overwrite the earlier ones: the final attempt's metrics win.
      oc.metrics = sr.loop->QueryMetrics(slot);
      if (oc.completed > 0 && oc.joined > 0) {
        oc.metrics.response_time = oc.completed - oc.joined;
      }
      // Only a clean completion promises the reference answer: partial
      // results dropped sources by design, cancelled attempts never
      // sealed their sinks.
      if (config_.verify_results && oc.status == QueryStatus::kOk &&
          !sr.loop->cancelled(slot)) {
        const exec::ResultCollector& result = sr.loop->result(slot);
        if (result.count() != tpl.reference.result_card ||
            result.checksum().value() != tpl.reference.checksum.value()) {
          return Status::Internal("fleet result mismatch in query " +
                                  std::to_string(uid));
        }
      }
    }
    FleetShardOutcome& so = out.shards[static_cast<size_t>(s)];
    so.queries = sr.loop->num_queries();
    so.makespan = sr.loop->num_queries() > 0 ? sr.ctx->clock.now() : 0;
    so.busy_time = sr.ctx->clock.busy_time();
    so.stalled_time = sr.ctx->clock.stalled_time();
    so.peak_memory_bytes = sr.ctx->memory.peak();
    so.disk = sr.ctx->disk.stats();
    so.network = sr.ctx->net.stats();
    so.temps = sr.ctx->temps.stats();
    out.makespan = std::max(out.makespan, so.makespan);
    out.breakers += sr.breakers->TotalStats();
    if (caching) {
      out.cache += caches_[static_cast<size_t>(s)]->stats();
    }
  }
  for (int64_t uid = 0; uid < total; ++uid) {
    FleetQueryOutcome& oc = out.queries[static_cast<size_t>(uid)];
    const LifeState& ls = life[static_cast<size_t>(uid)];
    oc.attempts = ls.attempts;
    oc.deadline = ls.deadline;
    oc.metrics.fault = fault_acc[static_cast<size_t>(uid)];
    out.fault += fault_acc[static_cast<size_t>(uid)];
    ++out.status_counts[static_cast<size_t>(oc.status)];
  }
  return out;
}

void FleetExecutor::ResetCache() const {
  for (const std::unique_ptr<CacheManager>& c : caches_) {
    if (c != nullptr) c->Clear();
  }
}

void FleetExecutor::BumpCacheVersion(int64_t logical_key) const {
  for (const std::unique_ptr<CacheManager>& c : caches_) {
    if (c != nullptr) c->BumpVersion(logical_key);
  }
}

}  // namespace dqsched::core
