#include "core/fleet_executor.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <utility>

#include "common/macros.h"
#include "common/parallel_runner.h"
#include "core/shared_loop.h"
#include "exec/exec_context.h"
#include "storage/tuple.h"
#include "wrapper/wrapper.h"

namespace dqsched::core {

namespace {

uint64_t MixSeed(uint64_t base, uint64_t a, uint64_t b) {
  return storage::Mix64(base ^ (a + 1) * 0x9e3779b97f4a7c15ULL ^
                        (b + 1) * 0xc2b2ae3d27d4eb4fULL);
}

/// Admission estimate of one compiled template: the annotated hard +
/// spillable memory of every chain, never below one byte (the broker
/// rejects zero-weight admissions).
int64_t EstimateBytes(const plan::CompiledPlan& compiled) {
  double est = 0.0;
  for (const plan::ChainInfo& chain : compiled.chains) {
    est += std::ceil(chain.est_mem_bytes + chain.est_sink_mem_bytes);
  }
  return std::max<int64_t>(1, static_cast<int64_t>(est));
}

bool GrantBefore(const MemoryBroker::Grant& a, const MemoryBroker::Grant& b) {
  return a.granted_at != b.granted_at ? a.granted_at < b.granted_at
                                      : a.uid < b.uid;
}

}  // namespace

Result<FleetExecutor> FleetExecutor::Create(
    std::vector<plan::QuerySetup> templates,
    std::vector<FleetQuerySpec> workload, FleetConfig config) {
  DQS_RETURN_IF_ERROR(config.cost.Validate());
  if (templates.empty()) {
    return Status::InvalidArgument("no query templates");
  }
  if (workload.empty()) {
    return Status::InvalidArgument("empty fleet workload");
  }
  if (config.num_shards <= 0 || config.sync_turns <= 0 ||
      config.slice_batches <= 0 || config.memory_budget_bytes <= 0) {
    return Status::InvalidArgument(
        "shards, sync turns, slice and budget must be > 0");
  }

  std::vector<PreparedTemplate> prepared;
  prepared.reserve(templates.size());
  for (size_t t = 0; t < templates.size(); ++t) {
    plan::QuerySetup& setup = templates[t];
    PreparedTemplate tpl;
    Result<plan::CompiledPlan> compiled =
        plan::Compile(setup.plan, setup.catalog);
    if (!compiled.ok()) return compiled.status();
    tpl.compiled = std::move(compiled.value());
    DQS_RETURN_IF_ERROR(
        plan::Annotate(&tpl.compiled, setup.catalog, config.cost));
    tpl.data.reserve(static_cast<size_t>(setup.catalog.num_sources()));
    for (SourceId s = 0; s < setup.catalog.num_sources(); ++s) {
      tpl.data.push_back(storage::GenerateRelation(
          setup.catalog.source(s).relation, s,
          Rng(MixSeed(config.seed, 0x7E3D + t, static_cast<uint64_t>(s)))));
    }
    tpl.reference = plan::ExecuteReference(tpl.compiled, tpl.data);
    tpl.est_bytes = EstimateBytes(tpl.compiled);
    tpl.catalog = std::move(setup.catalog);
    prepared.push_back(std::move(tpl));
  }

  std::vector<PreparedInstance> instances;
  instances.reserve(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    const FleetQuerySpec& spec = workload[i];
    if (spec.template_idx < 0 ||
        spec.template_idx >= static_cast<int>(prepared.size())) {
      return Status::InvalidArgument("fleet spec names an unknown template");
    }
    if (spec.arrival < 0) {
      return Status::InvalidArgument("fleet arrival times must be >= 0");
    }
    PreparedInstance inst;
    inst.spec = spec;
    inst.uid = static_cast<int64_t>(i);
    // Stable hash placement: depends only on (seed, uid), never on load.
    inst.shard = static_cast<int>(
        MixSeed(config.seed, static_cast<uint64_t>(i), 0xF1EE7) %
        static_cast<uint64_t>(config.num_shards));
    instances.push_back(std::move(inst));
  }

  // Shard-local source id spaces: each shard's instances get contiguous
  // ranges in admission order (arrival, uid), and each instance runs a
  // template copy remapped into its range.
  std::vector<std::vector<int>> shard_instances(
      static_cast<size_t>(config.num_shards));
  for (const PreparedInstance& inst : instances) {
    shard_instances[static_cast<size_t>(inst.shard)].push_back(
        static_cast<int>(inst.uid));
  }
  for (std::vector<int>& order : shard_instances) {
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const SimTime aa = instances[static_cast<size_t>(a)].spec.arrival;
      const SimTime bb = instances[static_cast<size_t>(b)].spec.arrival;
      return aa != bb ? aa < bb : a < b;
    });
    SourceId offset = 0;
    for (int idx : order) {
      PreparedInstance& inst = instances[static_cast<size_t>(idx)];
      const PreparedTemplate& tpl =
          prepared[static_cast<size_t>(inst.spec.template_idx)];
      inst.compiled = tpl.compiled;
      for (plan::ChainInfo& chain : inst.compiled.chains) {
        chain.source += offset;
      }
      inst.source_lo = offset;
      inst.source_hi = offset + tpl.catalog.num_sources();
      offset = inst.source_hi;
    }
  }

  return FleetExecutor(std::move(prepared), std::move(instances),
                       std::move(shard_instances), std::move(config));
}

Result<FleetMetrics> FleetExecutor::Execute(StrategyKind strategy,
                                            int jobs) const {
  if (strategy == StrategyKind::kMa) {
    return Status::InvalidArgument(
        "fleet execution supports SEQ and DSE per-query strategies");
  }
  const int num_shards = config_.num_shards;
  const int total = num_queries();

  // Per-shard run state. The ExecContext/loop/mailbox of shard s are
  // touched only by the coordinator (between rounds) and by whichever
  // worker runs s's advance task (during a round); ParallelRunner::Run
  // joining its workers is the barrier that orders the two.
  struct ShardRun {
    std::unique_ptr<exec::ExecContext> ctx;
    std::unique_ptr<SharedQueryLoop> loop;
    /// Granted-but-not-joined queries, sorted by (granted_at, uid).
    std::deque<MemoryBroker::Grant> mailbox;
    /// Loop slot -> query uid.
    std::vector<int64_t> slot_uid;
    /// Sum of joined-but-not-released admission estimates.
    int64_t outstanding_est = 0;
    int completed = 0;
    Status status = Status::Ok();
  };
  std::vector<ShardRun> shards(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    ShardRun& sr = shards[static_cast<size_t>(s)];
    sr.ctx = std::make_unique<exec::ExecContext>(
        &config_.cost, config_.comm, config_.memory_budget_bytes);
    // Register every wrapper of every query this shard will ever run, in
    // shard-local source id order, held: a held wrapper delivers nothing
    // and reports no arrival until its query is admitted and StartSource
    // releases it at the join time.
    for (int idx : shard_instances_[static_cast<size_t>(s)]) {
      const PreparedInstance& inst = instances_[static_cast<size_t>(idx)];
      const PreparedTemplate& tpl =
          templates_[static_cast<size_t>(inst.spec.template_idx)];
      for (SourceId src = 0; src < tpl.catalog.num_sources(); ++src) {
        auto w = std::make_unique<wrapper::SimWrapper>(
            inst.source_lo + src, &tpl.data[static_cast<size_t>(src)],
            tpl.catalog.source(src).delay,
            MixSeed(config_.seed, static_cast<uint64_t>(inst.uid),
                    static_cast<uint64_t>(src) + 977));
        w->Hold();
        sr.ctx->comm.AddSource(
            std::move(w), static_cast<double>(config_.cost.MinWaitingTime()));
      }
    }
    SharedQueryLoop::Options loop_options;
    loop_options.strategy = strategy;
    loop_options.config = config_.strategy;
    loop_options.slice_batches = config_.slice_batches;
    loop_options.targeted_replans = config_.targeted_replans;
    loop_options.kernels = config_.kernels;
    sr.loop = std::make_unique<SharedQueryLoop>(sr.ctx.get(), loop_options);
  }

  MemoryBroker broker(MemoryBroker::Config{config_.memory_budget_bytes});
  // The whole open-loop stream is known upfront, so every admission
  // request is submitted before the first round; arrival times ride along
  // and the broker's virtual grant stamps never precede them.
  for (const PreparedInstance& inst : instances_) {
    MemoryBroker::Request req;
    req.uid = inst.uid;
    req.shard = inst.shard;
    req.est_bytes =
        templates_[static_cast<size_t>(inst.spec.template_idx)].est_bytes;
    req.fairness = inst.spec.fairness;
    req.arrival = inst.spec.arrival;
    broker.Submit(req);
  }

  std::vector<FleetQueryOutcome> outcomes(static_cast<size_t>(total));
  for (const PreparedInstance& inst : instances_) {
    FleetQueryOutcome& oc = outcomes[static_cast<size_t>(inst.uid)];
    oc.uid = inst.uid;
    oc.shard = inst.shard;
    oc.template_idx = inst.spec.template_idx;
    oc.fairness = inst.spec.fairness;
    oc.est_bytes =
        templates_[static_cast<size_t>(inst.spec.template_idx)].est_bytes;
    oc.arrival = inst.spec.arrival;
  }

  // One shard advance: deliver due grants, run up to sync_turns loop
  // turns, stall only the shard's own clock. Completion releases go to
  // the broker mid-round (append only); new grants arrive at the barrier.
  auto advance = [&](int s) {
    ShardRun& sr = shards[static_cast<size_t>(s)];
    exec::ExecContext& ctx = *sr.ctx;
    auto join_front = [&] {
      const MemoryBroker::Grant grant = sr.mailbox.front();
      sr.mailbox.pop_front();
      const PreparedInstance& inst =
          instances_[static_cast<size_t>(grant.uid)];
      SharedQueryDesc desc;
      desc.compiled = &inst.compiled;
      desc.source_lo = inst.source_lo;
      desc.source_hi = inst.source_hi;
      const int slot = sr.loop->AddQuery(desc);
      DQS_CHECK(slot == static_cast<int>(sr.slot_uid.size()));
      sr.slot_uid.push_back(grant.uid);
      for (SourceId src = inst.source_lo; src < inst.source_hi; ++src) {
        ctx.comm.StartSource(src, ctx.clock.now());
      }
      outcomes[static_cast<size_t>(grant.uid)].joined = ctx.clock.now();
      sr.outstanding_est += grant.est_bytes;
    };
    for (int64_t turns = 0; turns < config_.sync_turns;) {
      while (!sr.mailbox.empty() &&
             sr.mailbox.front().granted_at <= ctx.clock.now()) {
        join_front();
      }
      if (sr.loop->active() == 0) {
        // Nothing running: jump the idle shard's clock to its next
        // admission, or yield to the barrier (waiting or finished).
        if (sr.mailbox.empty()) return;
        ctx.clock.StallUntil(sr.mailbox.front().granted_at);
        continue;
      }
      Result<SharedQueryLoop::Turn> turn = sr.loop->Step();
      ++turns;
      if (!turn.ok()) {
        sr.status = turn.status();
        return;
      }
      if (turn->kind == SharedQueryLoop::Turn::Kind::kQueryDone) {
        const int64_t uid = sr.slot_uid[static_cast<size_t>(turn->query)];
        FleetQueryOutcome& oc = outcomes[static_cast<size_t>(uid)];
        oc.completed = sr.loop->done_at(turn->query);
        oc.completion_latency = oc.completed - oc.arrival;
        MemoryBroker::Release rel;
        rel.uid = uid;
        rel.bytes = oc.est_bytes;
        rel.completed_at = oc.completed;
        broker.Submit(rel);
        sr.outstanding_est -= oc.est_bytes;
        ++sr.completed;
      } else if (turn->kind == SharedQueryLoop::Turn::Kind::kAllStarved) {
        SimTime next = turn->stall_until;
        if (!sr.mailbox.empty()) {
          next = std::min(next, sr.mailbox.front().granted_at);
        }
        if (next == kSimTimeNever) {
          sr.status = Status::Internal("fleet shard cannot make progress");
          return;
        }
        ctx.clock.StallUntil(next);
      }
    }
  };

  auto deliver = [&](const std::vector<std::vector<MemoryBroker::Grant>>&
                         grants) {
    size_t delivered = 0;
    for (int s = 0; s < num_shards; ++s) {
      ShardRun& sr = shards[static_cast<size_t>(s)];
      for (const MemoryBroker::Grant& grant : grants[static_cast<size_t>(s)]) {
        outcomes[static_cast<size_t>(grant.uid)].admitted = grant.granted_at;
        sr.mailbox.push_back(grant);
        ++delivered;
      }
      std::sort(sr.mailbox.begin(), sr.mailbox.end(), GrantBefore);
    }
    return delivered;
  };

  // Conservation audit (barrier-side): everything the broker thinks is
  // admitted must sit in exactly one place — running in a shard, waiting
  // in a shard's mailbox. Anything else is a leaked or double-counted
  // grant.
  auto audit = [&] {
    int64_t accounted = 0;
    for (const ShardRun& sr : shards) {
      accounted += sr.outstanding_est;
      for (const MemoryBroker::Grant& grant : sr.mailbox) {
        accounted += grant.est_bytes;
      }
    }
    DQS_CHECK_MSG(broker.outstanding_bytes() == accounted,
                  "fleet memory accounting mismatch: broker=%lld shards=%lld",
                  static_cast<long long>(broker.outstanding_bytes()),
                  static_cast<long long>(accounted));
  };

  ParallelRunner runner(jobs);
  int64_t rounds = 0;
  while (true) {
    int completed_total = 0;
    for (const ShardRun& sr : shards) completed_total += sr.completed;
    if (completed_total == total) break;
    DQS_CHECK_MSG(++rounds < (1LL << 32), "fleet livelock");

    std::vector<std::function<void()>> tasks;
    for (int s = 0; s < num_shards; ++s) {
      const ShardRun& sr = shards[static_cast<size_t>(s)];
      if (sr.loop->active() > 0 || !sr.mailbox.empty()) {
        tasks.push_back([&advance, s] { advance(s); });
      }
    }
    runner.Run(tasks);
    for (const ShardRun& sr : shards) {
      if (!sr.status.ok()) return sr.status;
    }

    size_t delivered = deliver(broker.Arbitrate(num_shards));
    audit();
    if (tasks.empty() && delivered == 0) {
      // No shard could run and arbitration admitted nothing: only an
      // over-budget head can block the queue. Force it through (the
      // execution-level accountant still enforces; DQO spills).
      if (!broker.HasQueued()) {
        return Status::Internal("fleet cannot make progress");
      }
      deliver(broker.ForceAdmit(num_shards));
      audit();
    }
  }
  DQS_CHECK_MSG(broker.outstanding_bytes() == 0 && !broker.HasQueued(),
                "fleet ended with outstanding grants");

  FleetMetrics out;
  out.rounds = rounds;
  out.broker = broker.stats();
  out.queries = std::move(outcomes);
  out.shards.resize(static_cast<size_t>(num_shards));
  // Aggregation order is part of the determinism contract: shards in
  // ascending id, and within a shard the loop's slot order (= admission
  // order).
  for (int s = 0; s < num_shards; ++s) {
    const ShardRun& sr = shards[static_cast<size_t>(s)];
    for (int slot = 0; slot < sr.loop->num_queries(); ++slot) {
      const int64_t uid = sr.slot_uid[static_cast<size_t>(slot)];
      FleetQueryOutcome& oc = out.queries[static_cast<size_t>(uid)];
      const PreparedTemplate& tpl =
          templates_[static_cast<size_t>(oc.template_idx)];
      const exec::ResultCollector& result = sr.loop->result(slot);
      if (config_.verify_results &&
          (result.count() != tpl.reference.result_card ||
           result.checksum().value() != tpl.reference.checksum.value())) {
        return Status::Internal("fleet result mismatch in query " +
                                std::to_string(uid));
      }
      oc.metrics = sr.loop->QueryMetrics(slot);
      oc.metrics.response_time = oc.completed - oc.joined;
    }
    FleetShardOutcome& so = out.shards[static_cast<size_t>(s)];
    so.queries = sr.loop->num_queries();
    so.makespan = sr.loop->num_queries() > 0 ? sr.ctx->clock.now() : 0;
    so.busy_time = sr.ctx->clock.busy_time();
    so.stalled_time = sr.ctx->clock.stalled_time();
    so.peak_memory_bytes = sr.ctx->memory.peak();
    so.disk = sr.ctx->disk.stats();
    so.network = sr.ctx->net.stats();
    so.temps = sr.ctx->temps.stats();
    out.makespan = std::max(out.makespan, so.makespan);
  }
  return out;
}

}  // namespace dqsched::core
