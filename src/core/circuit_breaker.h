// Per-shard source circuit breakers (DESIGN.md §13). A breaker guards one
// *logical* source (catalog relation of one template) and is shared by
// every query instance the shard runs against it, so the first query to
// discover an outage spares the rest from burning their deadline budget
// rediscovering it — the observation-sharing idea of ADQUEX
// (arXiv:1505.04880) applied at admission time.
//
// State machine (classic closed/open/half-open):
//
//   closed ---- trip_suspicions consecutive suspicions, or a death ----+
//     ^                                                                v
//     |  probe success                                               open
//     +------------- half-open <------- cooldown elapsed --------------+
//            probe failure reopens with the cooldown doubled
//
// All transitions are driven by the shard's virtual clock and its own
// detector signals, never by host threads, so breaker decisions are
// byte-identical across --jobs (DESIGN.md §11).

#ifndef DQSCHED_CORE_CIRCUIT_BREAKER_H_
#define DQSCHED_CORE_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <vector>

#include "common/sim_time.h"

namespace dqsched::core {

enum class BreakerState { kClosed, kOpen, kHalfOpen };

/// Short stable name ("closed", "open", "half-open").
const char* BreakerStateName(BreakerState state);

struct BreakerConfig {
  /// Consecutive suspicion signals (without an intervening recovery) that
  /// trip a closed breaker. A death signal trips immediately.
  int trip_suspicions = 2;
  /// Virtual time an open breaker waits before admitting a probe.
  SimDuration cooldown = Seconds(1);
  /// Each probe failure scales the next cooldown by this factor ...
  double cooldown_backoff = 2.0;
  /// ... capped here.
  SimDuration max_cooldown = Seconds(30);
};

struct BreakerStats {
  int64_t trips = 0;    // closed -> open transitions
  int64_t probes = 0;   // half-open admissions
  int64_t reopens = 0;  // failed probes (half-open -> open)
  int64_t resets = 0;   // successful probes (half-open -> closed)

  BreakerStats& operator+=(const BreakerStats& other) {
    trips += other.trips;
    probes += other.probes;
    reopens += other.reopens;
    resets += other.resets;
    return *this;
  }
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(const BreakerConfig& config) : config_(config) {}

  /// The state at `now` (an open breaker whose cooldown elapsed reads as
  /// half-open; the transition is committed lazily by Allow()).
  BreakerState state(SimTime now) const;

  /// Detector signals observed by any query on the shard.
  void OnSuspected(SimTime now);
  void OnDead(SimTime now);
  void OnRecovered(SimTime now);
  /// The in-flight probe query was cancelled for an unrelated reason
  /// (deadline, retry) before it could prove anything: reopen — the
  /// source's recovery is still unestablished, and leaving the probe
  /// slot occupied would wedge the breaker open forever. No-op when no
  /// probe is in flight.
  void OnProbeAborted(SimTime now);

  /// A query is about to start this source. True admits it normally
  /// (closed, or half-open probe — at most one in flight); false means
  /// the breaker is open and admission must degrade or defer the query.
  bool Allow(SimTime now);

  const BreakerStats& stats() const { return stats_; }

 private:
  void Trip(SimTime now);

  BreakerConfig config_;
  BreakerState state_ = BreakerState::kClosed;
  SimTime opened_at_ = 0;
  SimDuration current_cooldown_ = 0;  // 0 = config base
  int consecutive_suspicions_ = 0;
  bool probe_in_flight_ = false;
  BreakerStats stats_;
};

/// The shard's breakers, keyed by a dense logical-source index the owner
/// assigns (the fleet uses template-relative source ids offset per
/// template).
class BreakerPanel {
 public:
  BreakerPanel(int num_keys, const BreakerConfig& config);

  CircuitBreaker& Of(int key);
  const CircuitBreaker& Of(int key) const;
  int size() const { return static_cast<int>(breakers_.size()); }

  /// Sum of every breaker's counters, in key order.
  BreakerStats TotalStats() const;
  /// Breakers currently not closed at `now`.
  int OpenCount(SimTime now) const;

 private:
  std::vector<CircuitBreaker> breakers_;
};

}  // namespace dqsched::core

#endif  // DQSCHED_CORE_CIRCUIT_BREAKER_H_
