// The Dynamic QEP Optimizer (paper Sections 3.1 and 4.2).
//
// The full DQO of the paper's architecture hosts arbitrary re-optimization
// strategies [4,9,15]. This implementation provides the one module the
// paper declares mandatory: memory-overflow handling — "the dynamic
// optimizer must, at least, include a module which deals with these memory
// problems ... modifying the QEP by replacing p by two fragments,
// inserting a materialize operator at the highest possible point"
// (Section 4.2) — plus hooks that record timeout escalations (where
// phase-2 scrambling re-optimization [15] would plug in).

#ifndef DQSCHED_CORE_DQO_H_
#define DQSCHED_CORE_DQO_H_

#include "common/ids.h"
#include "common/status.h"
#include "core/execution_state.h"
#include "exec/exec_context.h"

namespace dqsched::core {

/// Memory-overflow handler + re-optimization hooks.
class Dqo {
 public:
  Dqo() = default;

  /// Revises the execution so `chain` becomes executable: first evicts
  /// resident operands the chain does not probe (they reload later), then,
  /// if the chain still cannot open, splits it into stages materialized
  /// through disk temps (the technique of the paper's [4]). Fails with
  /// kResourceExhausted when nothing helps (a single join's operand plus
  /// index exceeds the total budget — the query is infeasible under this
  /// memory model).
  Status HandleMemoryOverflow(ExecutionState& state, exec::ExecContext& ctx,
                              ChainId chain);

  /// Called when the DQP starved past its stall timeout. A production DQO
  /// would trigger phase-2 re-optimization here; we record and continue
  /// (waiting is the only sound action without re-optimization).
  void OnTimeout() { ++timeouts_; }

  int64_t timeouts() const { return timeouts_; }
  /// Operand evictions performed to relieve memory pressure.
  int64_t spills() const { return spills_; }

 private:
  int64_t timeouts_ = 0;
  int64_t spills_ = 0;
};

}  // namespace dqsched::core

#endif  // DQSCHED_CORE_DQO_H_
