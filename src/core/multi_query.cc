#include "core/multi_query.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <queue>
#include <utility>

#include "common/macros.h"
#include "core/dqo.h"
#include "core/dqp.h"
#include "core/dqs.h"
#include "core/execution_state.h"
#include "exec/exec_context.h"
#include "wrapper/wrapper.h"

namespace dqsched::core {

namespace {

uint64_t MixSeed(uint64_t base, uint64_t a, uint64_t b) {
  return storage::Mix64(base ^ (a + 1) * 0x9e3779b97f4a7c15ULL ^
                        (b + 1) * 0xc2b2ae3d27d4eb4fULL);
}

}  // namespace

const char* MultiModeName(MultiMode mode) {
  switch (mode) {
    case MultiMode::kSerial:
      return "serial";
    case MultiMode::kShared:
      return "shared";
  }
  return "unknown";
}

Result<MultiQueryMediator> MultiQueryMediator::Create(
    std::vector<plan::QuerySetup> setups, MultiQueryConfig config) {
  DQS_RETURN_IF_ERROR(config.cost.Validate());
  if (setups.empty()) {
    return Status::InvalidArgument("no queries in the mix");
  }
  if (config.memory_budget_bytes <= 0 || config.slice_batches <= 0) {
    return Status::InvalidArgument("budget and slice must be > 0");
  }

  std::vector<PreparedQuery> prepared;
  SourceId offset = 0;
  for (size_t qi = 0; qi < setups.size(); ++qi) {
    plan::QuerySetup& setup = setups[qi];
    PreparedQuery q;
    Result<plan::CompiledPlan> compiled =
        plan::Compile(setup.plan, setup.catalog);
    if (!compiled.ok()) return compiled.status();
    q.compiled = std::move(compiled.value());
    DQS_RETURN_IF_ERROR(
        plan::Annotate(&q.compiled, setup.catalog, config.cost));

    q.data.reserve(static_cast<size_t>(setup.catalog.num_sources()));
    for (SourceId s = 0; s < setup.catalog.num_sources(); ++s) {
      q.data.push_back(storage::GenerateRelation(
          setup.catalog.source(s).relation, offset + s,
          Rng(MixSeed(config.seed, qi, static_cast<uint64_t>(s)))));
    }
    q.reference = plan::ExecuteReference(q.compiled, q.data);

    // Remap chain sources into the shared mediator's global id space.
    q.source_offset = offset;
    for (plan::ChainInfo& chain : q.compiled.chains) {
      chain.source += offset;
    }
    offset += setup.catalog.num_sources();
    q.catalog = std::move(setup.catalog);
    prepared.push_back(std::move(q));
  }
  return MultiQueryMediator(std::move(prepared), std::move(config));
}

Result<MultiQueryMetrics> MultiQueryMediator::Execute(StrategyKind strategy,
                                                      MultiMode mode) const {
  if (strategy == StrategyKind::kMa) {
    return Status::InvalidArgument(
        "multi-query execution supports SEQ and DSE per-query strategies");
  }
  return mode == MultiMode::kShared ? ExecuteShared(strategy)
                                    : ExecuteSerial(strategy);
}

Result<MultiQueryMetrics> MultiQueryMediator::ExecuteSerial(
    StrategyKind strategy) const {
  MultiQueryMetrics out;
  SimDuration offset = 0;
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    const PreparedQuery& q = queries_[qi];
    exec::ExecContext ctx(&config_.cost, config_.comm,
                          config_.memory_budget_bytes);
    // Every wrapper registers (global ids must resolve), but only this
    // query's are consumed; the window protocol holds the others.
    for (size_t qj = 0; qj < queries_.size(); ++qj) {
      const PreparedQuery& other = queries_[qj];
      for (SourceId s = 0; s < other.catalog.num_sources(); ++s) {
        ctx.comm.AddSource(
            std::make_unique<wrapper::SimWrapper>(
                other.source_offset + s,
                &other.data[static_cast<size_t>(s)],
                other.catalog.source(s).delay,
                MixSeed(config_.seed, qj, static_cast<uint64_t>(s) + 977)),
            static_cast<double>(config_.cost.MinWaitingTime()));
      }
    }
    ExecutionOptions options = OptionsFor(strategy);
    options.kernels = config_.kernels;
    ExecutionState state(&q.compiled, &ctx, options);
    Result<ExecutionMetrics> metrics =
        RunStrategy(strategy, state, ctx, config_.strategy);
    if (!metrics.ok()) return metrics.status();
    if (config_.verify_results &&
        (metrics->result_count != q.reference.result_card ||
         metrics->result_checksum != q.reference.checksum.value())) {
      return Status::Internal("serial multi-query result mismatch in query " +
                              std::to_string(qi));
    }
    offset += metrics->response_time;
    out.response_times.push_back(offset);
    out.total_degradations += metrics->degradations;
    out.total_result_tuples += metrics->result_count;
    out.peak_memory_bytes =
        std::max(out.peak_memory_bytes, metrics->peak_memory_bytes);
    out.disk += metrics->disk;
  }
  out.makespan = offset;
  SimDuration sum = 0;
  for (SimDuration r : out.response_times) sum += r;
  out.mean_response = sum / static_cast<SimDuration>(queries_.size());
  return out;
}

Result<MultiQueryMetrics> MultiQueryMediator::ExecuteShared(
    StrategyKind strategy) const {
  const int nq = num_queries();
  exec::ExecContext ctx(&config_.cost, config_.comm,
                        config_.memory_budget_bytes);
  for (size_t qj = 0; qj < queries_.size(); ++qj) {
    const PreparedQuery& other = queries_[qj];
    for (SourceId s = 0; s < other.catalog.num_sources(); ++s) {
      ctx.comm.AddSource(
          std::make_unique<wrapper::SimWrapper>(
              other.source_offset + s, &other.data[static_cast<size_t>(s)],
              other.catalog.source(s).delay,
              MixSeed(config_.seed, qj, static_cast<uint64_t>(s) + 977)),
          static_cast<double>(config_.cost.MinWaitingTime()));
    }
  }

  // Per-query machinery.
  struct QueryRun {
    std::unique_ptr<exec::ResultCollector> result;
    std::unique_ptr<ExecutionState> state;
    std::unique_ptr<Dqs> dqs;
    std::unique_ptr<Dqp> dqp;
    std::unique_ptr<Dqo> dqo;
    SchedulingPlan sp;
    bool need_replan = true;
    bool done = false;
    SimTime done_at = 0;
    // kSeq: iterator-model chain order and position.
    std::vector<ChainId> seq_order;
    size_t seq_cursor = 0;
    // Cached minimum NextArrival over this query's active fragments (the
    // all-starved scan). Valid while `arrival_epoch` — the query's
    // structural version plus the sum of its sources' delivery versions —
    // holds and no contributing source answers time-dependently
    // (TimeDependentArrival: temp-backed values drift with the clock).
    SimTime arrival_min = 0;
    uint64_t arrival_epoch = 0;
    bool arrival_valid = false;
    bool arrival_volatile = false;
  };
  std::vector<QueryRun> runs(static_cast<size_t>(nq));
  for (int qi = 0; qi < nq; ++qi) {
    QueryRun& run = runs[static_cast<size_t>(qi)];
    run.result = std::make_unique<exec::ResultCollector>();
    ExecutionOptions options = OptionsFor(strategy);
    options.result_override = run.result.get();
    options.shared_context = true;
    options.kernels = config_.kernels;
    run.state = std::make_unique<ExecutionState>(
        &queries_[static_cast<size_t>(qi)].compiled, &ctx, options);
    run.dqs = std::make_unique<Dqs>(config_.strategy.dqs);
    DqpConfig dqp_config = config_.strategy.dqp;
    dqp_config.slice_batches = config_.slice_batches;
    dqp_config.yield_on_starvation = true;
    run.dqp = std::make_unique<Dqp>(dqp_config);
    run.dqo = std::make_unique<Dqo>();
    if (strategy == StrategyKind::kSeq) {
      run.seq_order = queries_[static_cast<size_t>(qi)]
                          .compiled.IteratorModelOrder();
    }
  }

  auto build_sp = [&](QueryRun& run) -> Status {
    if (strategy == StrategyKind::kDse) {
      Result<SchedulingPlan> sp =
          run.dqs->ComputePlan(*run.state, ctx, *run.dqo);
      if (!sp.ok()) return sp.status();
      run.sp = std::move(sp.value());
      return Status::Ok();
    }
    // kSeq: the current chain of the iterator order, alone.
    while (run.seq_cursor < run.seq_order.size() &&
           run.state->ChainDone(run.seq_order[run.seq_cursor])) {
      ++run.seq_cursor;
    }
    DQS_CHECK(run.seq_cursor < run.seq_order.size());
    run.sp = SchedulingPlan{};
    run.sp.fragments.push_back(
        run.state->ChainFragment(run.seq_order[run.seq_cursor]));
    run.sp.critical_ns.push_back(0.0);
    return Status::Ok();
  };

  // Every global source id maps to exactly one owning query (catalogs are
  // disjoint and offsets contiguous): the targeted-replan subscription.
  std::vector<int> source_owner;
  source_owner.reserve(static_cast<size_t>(ctx.comm.num_sources()));
  for (int qi = 0; qi < nq; ++qi) {
    const int ns = queries_[static_cast<size_t>(qi)].catalog.num_sources();
    source_owner.insert(source_owner.end(), static_cast<size_t>(ns), qi);
  }

  // The per-query epoch guarding the arrival cache: any mutation that can
  // move the query's earliest arrival bumps one of these monotone
  // counters, so an unchanged sum proves the cached minimum still holds.
  auto query_epoch = [&](int qi) {
    const QueryRun& r = runs[static_cast<size_t>(qi)];
    const PreparedQuery& q = queries_[static_cast<size_t>(qi)];
    uint64_t e = r.state->structural_version();
    const SourceId lo = q.source_offset;
    const SourceId hi = lo + q.catalog.num_sources();
    for (SourceId s = lo; s < hi; ++s) e += ctx.comm.SourceVersion(s);
    return e;
  };

  // Lazy min-heap over per-query earliest arrivals (same stale-entry
  // pattern as CommManager's pump heap): `arrival_key[qi]` is the only
  // live key for query qi; entries whose key differs are skipped on pop.
  std::priority_queue<std::pair<SimTime, int>,
                      std::vector<std::pair<SimTime, int>>, std::greater<>>
      arrival_heap;
  std::vector<SimTime> arrival_key(static_cast<size_t>(nq), kSimTimeNever);

  // Round-robin over the undone queries as a circular list: identical
  // visit order to indexing turn % nq, but finished queries cost nothing
  // to skip.
  std::vector<int> ring_next(static_cast<size_t>(nq));
  for (int qi = 0; qi < nq; ++qi) {
    ring_next[static_cast<size_t>(qi)] = (qi + 1) % nq;
  }
  int ring_prev = nq - 1;  // first visit: ring_next[nq - 1] == 0

  int remaining = nq;
  int starved_streak = 0;
  int64_t guard = 0;
  while (remaining > 0) {
    DQS_CHECK_MSG(++guard < (1LL << 40), "multi-query livelock");
    const int cur = ring_next[static_cast<size_t>(ring_prev)];
    QueryRun& run = runs[static_cast<size_t>(cur)];

    if (run.need_replan) {
      DQS_RETURN_IF_ERROR(build_sp(run));
      run.need_replan = false;
    }
    Result<Event> evt = run.dqp->RunPhase(*run.state, run.sp, ctx);
    if (!evt.ok()) return evt.status();
#ifdef DQS_MQ_DEBUG
    if ((guard & ((1LL << 20) - 1)) == 0) {
      std::fprintf(stderr,
                   "[mq] it=%lld t=%.6fms q=%d evt=%s frag=%d streak=%d "
                   "rem=%d heap=%zu\n",
                   static_cast<long long>(guard), ToMillis(ctx.clock.now()),
                   cur, EventKindName(evt->kind), evt->fragment,
                   starved_streak, remaining, arrival_heap.size());
    }
#endif
    if (evt->kind != EventKind::kStarved) starved_streak = 0;
    switch (evt->kind) {
      case EventKind::kEndOfQf:
        run.state->OnFragmentFinished(evt->fragment, ctx);
        run.need_replan = true;
        if (run.state->QueryDone()) {
          run.done = true;
          run.done_at = ctx.clock.now();
          --remaining;
        }
        break;
      case EventKind::kRateChange:
        // DSE refreshes the snapshot inside ComputePlan; SEQ has no
        // planning phase, so acknowledge the new estimates here or the
        // same signal fires forever.
        if (strategy == StrategyKind::kSeq) {
          ctx.comm.MarkPlanned(ctx.clock.now());
        }
        if (config_.targeted_replans) {
          // Route the replan to the query subscribed to the drifting
          // source rather than the one that happened to observe the
          // signal. Unattributable or orphaned signals fall back to the
          // observer so the estimate snapshot is always re-acknowledged.
          const SourceId src = ctx.comm.LastRateChangeSource();
          const int owner =
              src == kInvalidId ? -1 : source_owner[static_cast<size_t>(src)];
          if (owner >= 0 && !runs[static_cast<size_t>(owner)].done) {
            runs[static_cast<size_t>(owner)].need_replan = true;
          } else {
            run.need_replan = true;
          }
        } else {
          run.need_replan = true;
        }
        break;
      case EventKind::kTimeout:
      case EventKind::kPlanExhausted:
        run.need_replan = true;
        break;
      case EventKind::kMemoryOverflow:
        DQS_RETURN_IF_ERROR(run.dqo->HandleMemoryOverflow(
            *run.state, ctx, run.state->FragmentChain(evt->fragment)));
        run.need_replan = true;
        break;
      case EventKind::kSourceDown:
        if (ctx.comm.SourceDead(evt->source)) {
          return Status::Unavailable("source " + std::to_string(evt->source) +
                                     " declared dead in multi-query mix");
        }
        run.need_replan = true;
        break;
      case EventKind::kSourceRecovered:
        run.need_replan = true;
        break;
      case EventKind::kDeadlineExceeded:
        return Status::DeadlineExceeded(
            "query deadline expired in multi-query mix");
      case EventKind::kSliceEnd:
        break;  // keep the plan, yield the CPU
      case EventKind::kStarved: {
        run.need_replan = true;
        if (++starved_streak < remaining) break;
        // Every unfinished query starves: advance the shared clock to the
        // earliest arrival any of them waits for. Per-query minima come
        // from the arrival cache; only queries whose epoch drifted (or
        // whose minimum is time-dependent) rescan their fragments.
        for (int qi = 0; qi < nq; ++qi) {
          QueryRun& other = runs[static_cast<size_t>(qi)];
          if (other.done) continue;
          const uint64_t epoch = query_epoch(qi);
          if (other.arrival_valid && !other.arrival_volatile &&
              other.arrival_epoch == epoch) {
            continue;
          }
          SimTime q_min = kSimTimeNever;
          bool is_volatile = false;
          const ExecutionState& state = *other.state;
          for (int f = 0; f < state.num_fragments(); ++f) {
            if (!state.FragmentActive(f)) continue;
            const exec::FragmentRuntime& rt = state.fragment(f);
            q_min = std::min(q_min, rt.NextArrival(ctx));
            is_volatile = is_volatile || rt.TimeDependentArrival();
          }
          other.arrival_min = q_min;
          other.arrival_epoch = epoch;
          other.arrival_valid = true;
          other.arrival_volatile = is_volatile;
          arrival_key[static_cast<size_t>(qi)] = q_min;
          if (q_min != kSimTimeNever) arrival_heap.push({q_min, qi});
        }
        SimTime next = kSimTimeNever;
        while (!arrival_heap.empty()) {
          const auto [at, qi] = arrival_heap.top();
          if (runs[static_cast<size_t>(qi)].done ||
              arrival_key[static_cast<size_t>(qi)] != at) {
            arrival_heap.pop();  // stale entry, a newer key superseded it
            continue;
          }
          next = at;
          break;
        }
        if (next == kSimTimeNever) {
          return Status::Internal("multi-query mix cannot make progress");
        }
        ctx.clock.StallUntil(next);
        starved_streak = 0;
        break;
      }
    }

    if (run.done) {
      ring_next[static_cast<size_t>(ring_prev)] =
          ring_next[static_cast<size_t>(cur)];
    } else {
      ring_prev = cur;
    }
  }

  MultiQueryMetrics out;
  out.makespan = ctx.clock.now();
  SimDuration sum = 0;
  for (int qi = 0; qi < nq; ++qi) {
    const QueryRun& run = runs[static_cast<size_t>(qi)];
    const PreparedQuery& q = queries_[static_cast<size_t>(qi)];
    if (config_.verify_results &&
        (run.result->count() != q.reference.result_card ||
         run.result->checksum().value() != q.reference.checksum.value())) {
      return Status::Internal("shared multi-query result mismatch in query " +
                              std::to_string(qi));
    }
    out.response_times.push_back(run.done_at);
    sum += run.done_at;
    out.total_degradations += run.state->degradations();
    out.total_result_tuples += run.result->count();
  }
  out.mean_response = sum / static_cast<SimDuration>(nq);
  out.peak_memory_bytes = ctx.memory.peak();
  out.disk = ctx.disk.stats();
  return out;
}

}  // namespace dqsched::core
