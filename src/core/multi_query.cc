#include "core/multi_query.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>

#include "common/macros.h"
#include "core/execution_state.h"
#include "core/shared_loop.h"
#include "exec/exec_context.h"
#include "wrapper/wrapper.h"

namespace dqsched::core {

namespace {

uint64_t MixSeed(uint64_t base, uint64_t a, uint64_t b) {
  return storage::Mix64(base ^ (a + 1) * 0x9e3779b97f4a7c15ULL ^
                        (b + 1) * 0xc2b2ae3d27d4eb4fULL);
}

/// Returns the cache's reclaimable grant before the accountant it was
/// charged to dies, on every exit path.
struct CacheDetach {
  CacheManager* cache = nullptr;
  ~CacheDetach() {
    if (cache != nullptr) cache->DetachAccountant();
  }
};

}  // namespace

const char* MultiModeName(MultiMode mode) {
  switch (mode) {
    case MultiMode::kSerial:
      return "serial";
    case MultiMode::kShared:
      return "shared";
  }
  return "unknown";
}

Result<MultiQueryMediator> MultiQueryMediator::Create(
    std::vector<plan::QuerySetup> setups, MultiQueryConfig config) {
  DQS_RETURN_IF_ERROR(config.cost.Validate());
  if (setups.empty()) {
    return Status::InvalidArgument("no queries in the mix");
  }
  if (config.memory_budget_bytes <= 0 || config.slice_batches <= 0) {
    return Status::InvalidArgument("budget and slice must be > 0");
  }

  std::vector<PreparedQuery> prepared;
  SourceId offset = 0;
  for (size_t qi = 0; qi < setups.size(); ++qi) {
    plan::QuerySetup& setup = setups[qi];
    PreparedQuery q;
    Result<plan::CompiledPlan> compiled =
        plan::Compile(setup.plan, setup.catalog);
    if (!compiled.ok()) return compiled.status();
    q.compiled = std::move(compiled.value());
    DQS_RETURN_IF_ERROR(
        plan::Annotate(&q.compiled, setup.catalog, config.cost));

    q.data.reserve(static_cast<size_t>(setup.catalog.num_sources()));
    for (SourceId s = 0; s < setup.catalog.num_sources(); ++s) {
      q.data.push_back(storage::GenerateRelation(
          setup.catalog.source(s).relation, offset + s,
          Rng(MixSeed(config.seed, qi, static_cast<uint64_t>(s)))));
    }
    q.reference = plan::ExecuteReference(q.compiled, q.data);

    // Remap chain sources into the shared mediator's global id space.
    q.source_offset = offset;
    for (plan::ChainInfo& chain : q.compiled.chains) {
      chain.source += offset;
    }
    offset += setup.catalog.num_sources();
    q.catalog = std::move(setup.catalog);
    prepared.push_back(std::move(q));
  }
  return MultiQueryMediator(std::move(prepared), std::move(config));
}

Result<MultiQueryMetrics> MultiQueryMediator::Execute(StrategyKind strategy,
                                                      MultiMode mode) const {
  if (strategy == StrategyKind::kMa) {
    return Status::InvalidArgument(
        "multi-query execution supports SEQ and DSE per-query strategies");
  }
  return mode == MultiMode::kShared ? ExecuteShared(strategy)
                                    : ExecuteSerial(strategy);
}

Result<MultiQueryMetrics> MultiQueryMediator::ExecuteSerial(
    StrategyKind strategy) const {
  CacheManager* cache = nullptr;
  if (config_.cache.enabled) {
    if (cache_ == nullptr) {
      cache_ = std::make_unique<CacheManager>(config_.cache);
    }
    cache = cache_.get();
    cache->BeginRun();
  }
  MultiQueryMetrics out;
  SimDuration offset = 0;
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    const PreparedQuery& q = queries_[qi];
    if (cache != nullptr) {
      // Whole-query result hit: the answer is served instantly, no
      // context is even built — the query's user waits zero virtual time
      // beyond the mix's current offset.
      int64_t hit_count = 0;
      uint64_t hit_checksum = 0;
      if (cache->LookupResult(q.compiled, &hit_count, &hit_checksum)) {
        if (config_.verify_results &&
            (hit_count != q.reference.result_card ||
             hit_checksum != q.reference.checksum.value())) {
          return Status::Internal(
              "serial multi-query cached result mismatch in query " +
              std::to_string(qi));
        }
        out.response_times.push_back(offset);
        out.statuses.push_back(QueryStatus::kOk);
        out.total_result_tuples += hit_count;
        continue;
      }
    }
    exec::ExecContext ctx(&config_.cost, config_.comm,
                          config_.memory_budget_bytes);
    // Every wrapper registers (global ids must resolve), but only this
    // query's are consumed; the window protocol holds the others.
    for (size_t qj = 0; qj < queries_.size(); ++qj) {
      const PreparedQuery& other = queries_[qj];
      for (SourceId s = 0; s < other.catalog.num_sources(); ++s) {
        ctx.comm.AddSource(
            std::make_unique<wrapper::SimWrapper>(
                other.source_offset + s,
                &other.data[static_cast<size_t>(s)],
                other.catalog.source(s).delay,
                MixSeed(config_.seed, qj, static_cast<uint64_t>(s) + 977)),
            static_cast<double>(config_.cost.MinWaitingTime()));
      }
    }
    ExecutionOptions options = OptionsFor(strategy);
    options.kernels = config_.kernels;
    options.cache = cache;
    // Destroyed before ctx: the reclaimable grant must leave the
    // accountant while it still exists.
    CacheDetach detach;
    if (cache != nullptr) {
      cache->AttachAccountant(&ctx.memory);
      detach.cache = cache;
    }
    ExecutionState state(&q.compiled, &ctx, options);
    Result<ExecutionMetrics> metrics =
        RunStrategy(strategy, state, ctx, config_.strategy);
    if (!metrics.ok()) return metrics.status();
    if (config_.verify_results &&
        (metrics->result_count != q.reference.result_card ||
         metrics->result_checksum != q.reference.checksum.value())) {
      return Status::Internal("serial multi-query result mismatch in query " +
                              std::to_string(qi));
    }
    if (cache != nullptr) {
      cache->AdmitQuery(state, ctx, !metrics->fault.partial_result);
    }
    offset += metrics->response_time;
    out.response_times.push_back(offset);
    out.statuses.push_back(metrics->fault.partial_result
                               ? QueryStatus::kPartial
                               : QueryStatus::kOk);
    out.total_degradations += metrics->degradations;
    out.total_result_tuples += metrics->result_count;
    out.peak_memory_bytes =
        std::max(out.peak_memory_bytes, metrics->peak_memory_bytes);
    // Stable merge order: ascending query index (this loop).
    out.disk += metrics->disk;
    out.network += metrics->network;
    out.temps += metrics->temps;
    out.fault += metrics->fault;
  }
  out.makespan = offset;
  SimDuration sum = 0;
  for (SimDuration r : out.response_times) sum += r;
  out.mean_response = sum / static_cast<SimDuration>(queries_.size());
  if (cache != nullptr) out.cache = cache->stats();
  return out;
}

Result<MultiQueryMetrics> MultiQueryMediator::ExecuteShared(
    StrategyKind strategy) const {
  CacheManager* cache = nullptr;
  if (config_.cache.enabled) {
    if (cache_ == nullptr) {
      cache_ = std::make_unique<CacheManager>(config_.cache);
    }
    cache = cache_.get();
    cache->BeginRun();
  }
  const int nq = num_queries();
  exec::ExecContext ctx(&config_.cost, config_.comm,
                        config_.memory_budget_bytes);
  // Destroyed before ctx: the reclaimable grant must leave the
  // accountant while it still exists.
  CacheDetach detach;
  if (cache != nullptr) {
    cache->AttachAccountant(&ctx.memory);
    detach.cache = cache;
  }
  for (size_t qj = 0; qj < queries_.size(); ++qj) {
    const PreparedQuery& other = queries_[qj];
    for (SourceId s = 0; s < other.catalog.num_sources(); ++s) {
      ctx.comm.AddSource(
          std::make_unique<wrapper::SimWrapper>(
              other.source_offset + s, &other.data[static_cast<size_t>(s)],
              other.catalog.source(s).delay,
              MixSeed(config_.seed, qj, static_cast<uint64_t>(s) + 977)),
          static_cast<double>(config_.cost.MinWaitingTime()));
    }
  }

  SharedQueryLoop::Options loop_options;
  loop_options.strategy = strategy;
  loop_options.config = config_.strategy;
  loop_options.slice_batches = config_.slice_batches;
  loop_options.targeted_replans = config_.targeted_replans;
  loop_options.kernels = config_.kernels;
  loop_options.cache = cache;
  SharedQueryLoop loop(&ctx, loop_options);
  for (int qi = 0; qi < nq; ++qi) {
    const PreparedQuery& q = queries_[static_cast<size_t>(qi)];
    SharedQueryDesc desc;
    desc.compiled = &q.compiled;
    desc.source_lo = q.source_offset;
    desc.source_hi = q.source_offset + q.catalog.num_sources();
    if (cache != nullptr) {
      // Whole-query result hit: the slot joins already answered and never
      // enters the rotation; its wrappers are never drained.
      int64_t hit_count = 0;
      uint64_t hit_checksum = 0;
      if (cache->LookupResult(q.compiled, &hit_count, &hit_checksum)) {
        desc.resolved = true;
        desc.resolved_count = hit_count;
        desc.resolved_checksum = hit_checksum;
      }
    }
    loop.AddQuery(desc);
  }

  while (loop.active() > 0) {
    Result<SharedQueryLoop::Turn> turn = loop.Step();
    if (!turn.ok()) return turn.status();
    if (turn->kind == SharedQueryLoop::Turn::Kind::kQueryDone) {
      // The shared mode has no partial completions (no lifecycle layer):
      // every finished query carries the full answer.
      if (cache != nullptr) {
        cache->AdmitQuery(loop.state(turn->query), ctx,
                          /*result_complete=*/true);
      }
      continue;
    }
    if (turn->kind != SharedQueryLoop::Turn::Kind::kAllStarved) continue;
    // Every unfinished query starves: advance the shared clock to the
    // earliest arrival any of them waits for. The loop never touches the
    // clock — the stall (and the charge-order discipline around it) lives
    // here in the driver.
    if (turn->stall_until == kSimTimeNever) {
      return Status::Internal("multi-query mix cannot make progress");
    }
    ctx.clock.StallUntil(turn->stall_until);
  }

  MultiQueryMetrics out;
  out.makespan = ctx.clock.now();
  SimDuration sum = 0;
  for (int qi = 0; qi < nq; ++qi) {
    const PreparedQuery& q = queries_[static_cast<size_t>(qi)];
    const exec::ResultCollector& result = loop.result(qi);
    if (config_.verify_results &&
        (result.count() != q.reference.result_card ||
         result.checksum().value() != q.reference.checksum.value())) {
      return Status::Internal("shared multi-query result mismatch in query " +
                              std::to_string(qi));
    }
    out.response_times.push_back(loop.done_at(qi));
    out.statuses.push_back(QueryStatus::kOk);
    sum += loop.done_at(qi);
    out.total_degradations += loop.degradations(qi);
    out.total_result_tuples += result.count();
  }
  out.mean_response = sum / static_cast<SimDuration>(nq);
  out.peak_memory_bytes = ctx.memory.peak();
  // Shared-device aggregates come from the one shared context; the
  // per-wrapper injection counters fold in ascending source id.
  out.disk = ctx.disk.stats();
  out.network = ctx.net.stats();
  out.temps = ctx.temps.stats();
  out.fault.sources_suspected = ctx.comm.fault_suspicions();
  out.fault.sources_dead = ctx.comm.fault_declared_dead();
  out.fault.recoveries = ctx.comm.fault_recoveries();
  out.fault.replays_discarded = ctx.comm.replay_discarded_total();
  for (SourceId s = 0; s < ctx.comm.num_sources(); ++s) {
    const wrapper::FaultInjectionStats* fs = ctx.comm.wrapper(s).fault_stats();
    if (fs == nullptr) continue;
    out.fault.stalls_injected += fs->stalls;
    out.fault.disconnects_injected += fs->disconnects;
    out.fault.reconnects += fs->reconnects;
    if (fs->died) ++out.fault.sources_killed;
  }
  if (cache != nullptr) out.cache = cache->stats();
  return out;
}

void MultiQueryMediator::ResetCache() const {
  if (cache_ != nullptr) cache_->Clear();
}

void MultiQueryMediator::BumpCacheVersion(int64_t logical_key) const {
  if (cache_ != nullptr) cache_->BumpVersion(logical_key);
}

}  // namespace dqsched::core
