// Execution tracing. The paper's authors diagnosed their scheduler by
// "checking the execution traces" (Section 5.3); this module makes those
// traces a first-class artifact: every scheduling decision (planning
// phases, degradations, CF activations, DQO revisions) and every
// interruption event is recorded with its virtual timestamp, and the
// per-fragment batch activity can be rendered as an ASCII timeline.
//
// Tracing is off by default (zero overhead beyond a branch); enable it
// via MediatorConfig::trace or ExecutionTrace::set_enabled.

#ifndef DQSCHED_CORE_TRACE_H_
#define DQSCHED_CORE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"

namespace dqsched::core {

enum class TraceEventKind {
  kPlanningPhase,  // DQS computed a scheduling plan
  kDegradation,    // MF(p) created (Section 4.4)
  kCfActivation,   // degraded chain resumed as CF(p)
  kDqoSplit,       // memory-overflow chain split (Section 4.2)
  kOperandSpill,   // operand evicted to disk under pressure
  kEndOfQf,        // a query fragment finished
  kRateChange,     // delivery-rate estimates drifted; replanning
  kTimeout,        // every scheduled fragment starved past the budget
  kMemoryOverflow, // a fragment failed to open in the budget
  kSourceDown,     // the failure detector suspects/declared a source down
  kSourceRecovered,// a suspected source delivered again
  kDeadline,       // the query's virtual-time budget expired
  kCancelled,      // lifecycle cancellation released the query's resources
  kCacheHit,       // a chain was rebound to a cached segment (DESIGN.md §14)
  kQueryDone,
};

const char* TraceEventKindName(TraceEventKind kind);

/// One recorded decision/event.
struct TraceEvent {
  SimTime time = 0;
  TraceEventKind kind = TraceEventKind::kPlanningPhase;
  /// Subject fragment id (-1 when not applicable).
  int fragment = -1;
  /// Free-form context ("MF(p_C)", "4 fragments scheduled", ...).
  std::string detail;
};

/// One batch execution, for the activity timeline.
struct TraceBatch {
  SimTime time = 0;
  int fragment = -1;
  int64_t consumed = 0;
};

/// Collects events and batch activity for one execution.
class ExecutionTrace {
 public:
  ExecutionTrace() = default;

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void Record(SimTime time, TraceEventKind kind, int fragment,
              std::string detail);
  void RecordBatch(SimTime time, int fragment, int64_t consumed);

  const std::vector<TraceEvent>& events() const { return events_; }
  const std::vector<TraceBatch>& batches() const { return batches_; }

  /// Number of recorded events of `kind`.
  int64_t CountOf(TraceEventKind kind) const;

  /// Human-readable event log: one line per event, time-ordered
  /// (they are recorded in time order; the virtual clock is monotonic).
  /// `limit` truncates long logs (0 = everything).
  std::string RenderEventLog(size_t limit = 0) const;

  /// ASCII activity timeline: one row per fragment that executed batches,
  /// `columns` time buckets wide; cell shading reflects tuples consumed in
  /// the bucket (' ' none, '.' light, ':' medium, '#' heavy). Fragment
  /// names come from `names` (indexed by fragment id; missing entries
  /// render as #id).
  std::string RenderTimeline(const std::vector<std::string>& names,
                             int columns = 72) const;

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
  std::vector<TraceBatch> batches_;
};

}  // namespace dqsched::core

#endif  // DQSCHED_CORE_TRACE_H_
