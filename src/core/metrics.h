// Execution metrics reported by the mediator for one strategy run.

#ifndef DQSCHED_CORE_METRICS_H_
#define DQSCHED_CORE_METRICS_H_

#include <cstdint>
#include <string>

#include "common/sim_time.h"
#include "sim/disk.h"
#include "sim/network.h"
#include "storage/temp_store.h"

namespace dqsched::core {

/// Terminal lifecycle status of one query (DESIGN.md §13). Every query
/// ends in exactly one of these; "completes or wedges" is not a state.
enum class QueryStatus {
  /// Full result delivered and verified.
  kOk,
  /// Finished after abandoning one or more dead/broken sources — the
  /// PR 4 partial-result policy, now a first-class terminal status.
  kPartial,
  /// The virtual-time deadline expired mid-flight; the query was
  /// cancelled cooperatively and its resources released.
  kDeadlineCancelled,
  /// Killed by source death or deadline on every attempt; the retry
  /// budget ran out before the sources recovered.
  kRetriesExhausted,
  /// Never ran: admission shed it because its queue wait already
  /// exceeded the deadline (or its admission target was hopeless).
  kShed,
};

/// Short stable name ("ok", "partial", "deadline", "retries", "shed").
const char* QueryStatusName(QueryStatus status);

/// Count of terminal statuses, in enum order.
inline constexpr int kNumQueryStatuses = 5;

/// Fault-layer activity of one execution: what was injected into the
/// wrappers, what the CM's failure detector concluded, and how the
/// strategy resolved it. All-zero (any() == false) for fault-free runs.
struct FaultStats {
  // Injection side (from the wrappers' fault models).
  int64_t stalls_injected = 0;
  int64_t disconnects_injected = 0;
  int64_t reconnects = 0;
  int64_t sources_killed = 0;  // wrappers hit by a kDeath fault

  // Detection side (from the CM).
  int64_t sources_suspected = 0;  // healthy->suspected transitions
  int64_t sources_dead = 0;       // suspected->dead declarations
  int64_t recoveries = 0;         // suspected/dead->healthy transitions
  int64_t replays_discarded = 0;  // duplicate tuples dropped on pop

  // Resolution side (from the strategy).
  int64_t source_down_events = 0;
  int64_t source_recovered_events = 0;
  int64_t sources_abandoned = 0;
  /// The result was produced without every source's full stream.
  bool partial_result = false;
  /// The run ended because the query deadline expired.
  bool deadline_hit = false;

  /// Aggregates fault activity across executions (multi-query / fleet
  /// accounting): counters sum, the two terminal flags OR. The merge is
  /// commutative, but aggregators apply it in a documented stable order
  /// (ascending query / shard index) so intermediate snapshots are
  /// reproducible too.
  FaultStats& operator+=(const FaultStats& other) {
    stalls_injected += other.stalls_injected;
    disconnects_injected += other.disconnects_injected;
    reconnects += other.reconnects;
    sources_killed += other.sources_killed;
    sources_suspected += other.sources_suspected;
    sources_dead += other.sources_dead;
    recoveries += other.recoveries;
    replays_discarded += other.replays_discarded;
    source_down_events += other.source_down_events;
    source_recovered_events += other.source_recovered_events;
    sources_abandoned += other.sources_abandoned;
    partial_result = partial_result || other.partial_result;
    deadline_hit = deadline_hit || other.deadline_hit;
    return *this;
  }

  bool any() const {
    return stalls_injected != 0 || disconnects_injected != 0 ||
           reconnects != 0 || sources_killed != 0 || sources_suspected != 0 ||
           sources_dead != 0 || recoveries != 0 || replays_discarded != 0 ||
           source_down_events != 0 || source_recovered_events != 0 ||
           sources_abandoned != 0 || partial_result || deadline_hit;
  }
};

/// Result-cache activity of one execution (or one shard/run aggregate).
/// Like planning_host_seconds, the cache counters sit OUTSIDE the
/// byte-identity contract between cache-off and cold-cache runs — a cold
/// run records misses and admissions where an off run records nothing —
/// but they are deterministic across `--jobs` like every other field.
/// All-zero (any() == false) whenever caching is off.
struct CacheStats {
  int64_t segment_hits = 0;
  int64_t segment_misses = 0;
  int64_t result_hits = 0;
  int64_t result_misses = 0;
  int64_t admitted_segments = 0;
  int64_t admitted_results = 0;
  /// Lookups that found their fingerprint under a stale version (the
  /// entry was lazily evicted; the lookup also counts as a miss).
  int64_t stale_invalidations = 0;
  /// Entries removed by LRU budget pressure, accountant reclaim, or a
  /// broker trim directive.
  int64_t evictions = 0;

  /// Aggregates across queries/shards in ascending index order (same
  /// discipline as FaultStats).
  CacheStats& operator+=(const CacheStats& other) {
    segment_hits += other.segment_hits;
    segment_misses += other.segment_misses;
    result_hits += other.result_hits;
    result_misses += other.result_misses;
    admitted_segments += other.admitted_segments;
    admitted_results += other.admitted_results;
    stale_invalidations += other.stale_invalidations;
    evictions += other.evictions;
    return *this;
  }

  bool any() const {
    return segment_hits != 0 || segment_misses != 0 || result_hits != 0 ||
           result_misses != 0 || admitted_segments != 0 ||
           admitted_results != 0 || stale_invalidations != 0 ||
           evictions != 0;
  }
};

/// Everything measured during one execution. Response time is virtual
/// (simulated) time from query start to the last result tuple.
struct ExecutionMetrics {
  SimDuration response_time = 0;
  /// Virtual time the engine did useful work (CPU + synchronous I/O).
  SimDuration busy_time = 0;
  /// Virtual time the engine starved waiting for data.
  SimDuration stalled_time = 0;

  int64_t result_count = 0;
  uint64_t result_checksum = 0;

  // Dynamic-engine activity.
  int64_t planning_phases = 0;
  int64_t execution_phases = 0;
  int64_t degradations = 0;     // MF(p) creations (paper Section 4.4)
  int64_t cf_activations = 0;   // degraded chains resumed as CF(p)
  int64_t dqo_splits = 0;       // memory-overflow plan revisions (4.2)
  int64_t operand_spills = 0;   // DQO operand evictions under pressure
  int64_t timeouts = 0;
  int64_t rate_change_events = 0;

  int64_t peak_memory_bytes = 0;

  sim::DiskStats disk;
  sim::NetworkStats network;
  storage::TempStoreStats temps;
  FaultStats fault;
  /// Result-cache activity attributed to this query: hits it consumed,
  /// misses it probed, segments/results it contributed. Outside the
  /// off-vs-cold byte-identity contract (see CacheStats).
  CacheStats cache;

  /// Host (wall-clock) seconds spent inside the DQS planning — the
  /// scheduling overhead the paper argues must be small (Section 3.3).
  double planning_host_seconds = 0.0;

  /// Multi-line human-readable summary.
  std::string ToString() const;
};

}  // namespace dqsched::core

#endif  // DQSCHED_CORE_METRICS_H_
