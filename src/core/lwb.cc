#include "core/lwb.h"

#include <algorithm>

#include "common/macros.h"
#include "wrapper/delay_model.h"

namespace dqsched::core {

LwbBreakdown ComputeLwb(const plan::CompiledPlan& compiled,
                        const plan::ReferenceResult& exact,
                        const wrapper::Catalog& catalog,
                        const sim::CostModel& cost,
                        const std::vector<double>& realized_retrieval_ns) {
  LwbBreakdown out;
  double cpu = 0.0;
  double max_retrieval = 0.0;

  for (ChainId c = 0; c < compiled.num_chains(); ++c) {
    const plan::ChainInfo& chain = compiled.chain(c);
    const auto& ops_out = exact.op_outputs[static_cast<size_t>(c)];
    DQS_CHECK(ops_out.size() == chain.ops.size());
    const int64_t n_in = exact.chains[static_cast<size_t>(c)].input_card;
    const int64_t n_out = exact.chains[static_cast<size_t>(c)].output_card;

    // Receive (whole messages, matching the engine's per-message
    // accounting) + scan move for every input tuple.
    cpu += static_cast<double>(
        cost.InstrTime((n_in / cost.tuples_per_message) *
                       cost.instr_per_message));
    cpu += static_cast<double>(n_in) *
           static_cast<double>(cost.InstrTime(cost.instr_move_tuple));
    int64_t before = n_in;
    for (size_t i = 0; i < chain.ops.size(); ++i) {
      const plan::ChainOp& op = chain.ops[i];
      const int64_t after = ops_out[i];
      switch (op.kind) {
        case plan::ChainOpKind::kFilter:
          cpu += static_cast<double>(before) *
                 static_cast<double>(cost.InstrTime(cost.instr_move_tuple));
          break;
        case plan::ChainOpKind::kProbe:
          cpu += static_cast<double>(before) *
                 static_cast<double>(cost.InstrTime(cost.instr_hash_probe));
          cpu += static_cast<double>(after) *
                 static_cast<double>(
                     cost.InstrTime(cost.instr_produce_result));
          break;
      }
      before = after;
    }
    // Sink move, plus the eventual hash-index build over operand chains.
    cpu += static_cast<double>(n_out) *
           static_cast<double>(cost.InstrTime(cost.instr_move_tuple));
    if (!chain.is_result) {
      cpu += static_cast<double>(n_out) *
             static_cast<double>(cost.InstrTime(cost.instr_hash_insert));
    }

    // Retrieval term: total delivery time of this chain's source —
    // realized when known, expected otherwise.
    if (static_cast<size_t>(chain.source) < realized_retrieval_ns.size()) {
      max_retrieval = std::max(
          max_retrieval,
          realized_retrieval_ns[static_cast<size_t>(chain.source)]);
    } else {
      const auto& spec = catalog.source(chain.source);
      const auto model = wrapper::MakeDelayModel(spec.delay);
      max_retrieval = std::max(
          max_retrieval, model->ExpectedTotalNs(spec.relation.cardinality));
    }
  }

  out.cpu_total = static_cast<SimDuration>(cpu);
  out.max_retrieval = static_cast<SimDuration>(max_retrieval);
  return out;
}

}  // namespace dqsched::core
