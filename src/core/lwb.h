// Analytic lower bound LWB on the response time (paper Section 5.1.2):
//
//   LWB(Q) = max( sum_p n_p * c_p ,  max_p n_p * w_p )
//
// i.e. no strategy can respond faster than the total mediator CPU work,
// nor faster than the slowest single source can deliver its relation. The
// CPU term uses exact cardinalities from the reference executor; the
// retrieval term uses the delay models' analytic expectations.

#ifndef DQSCHED_CORE_LWB_H_
#define DQSCHED_CORE_LWB_H_

#include "common/sim_time.h"
#include "plan/compiled_plan.h"
#include "plan/reference_executor.h"
#include "sim/cost_model.h"
#include "wrapper/catalog.h"

namespace dqsched::core {

/// Both terms of the bound, for diagnostics.
struct LwbBreakdown {
  SimDuration cpu_total = 0;
  SimDuration max_retrieval = 0;
  SimDuration bound() const {
    return cpu_total > max_retrieval ? cpu_total : max_retrieval;
  }
};

/// Computes the bound for `compiled` over the concrete data summarized by
/// `exact`. `realized_retrieval_ns` (indexed by source id) supplies each
/// wrapper's *realized* total delivery time — the sum of its actual delay
/// draws for this seed; when empty, the delay models' analytic
/// expectations are used instead (a looser, seed-independent bound: a
/// realization can undershoot its expectation).
LwbBreakdown ComputeLwb(const plan::CompiledPlan& compiled,
                        const plan::ReferenceResult& exact,
                        const wrapper::Catalog& catalog,
                        const sim::CostModel& cost,
                        const std::vector<double>& realized_retrieval_ns =
                            {});

}  // namespace dqsched::core

#endif  // DQSCHED_CORE_LWB_H_
