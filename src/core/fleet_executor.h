// Sharded mediator fleet: an open-loop query stream partitioned across N
// mediator shards that run on real host threads.
//
// Each shard owns a full mediator stack — virtual clock, devices,
// CommManager, and a SharedQueryLoop over its admitted queries — so
// shards share *no* execution state. The only cross-shard object is the
// admission-control MemoryBroker: a query enters its shard's loop only
// once the broker granted its memory estimate against the global budget
// (core/memory_broker.h).
//
// Execution is round-based bulk-synchronous. Every round, each runnable
// shard advances up to `sync_turns` loop turns on a worker thread
// (bench/parallel_runner's work stealing), submitting completion
// releases to the broker mid-round and returning early when it can only
// wait for a grant. At the barrier the coordinator arbitrates
// admissions single-threaded and delivers the new grants to per-shard
// mailboxes. Shard count — and with it every shard's query set, clocks,
// and metrics — is fixed by FleetConfig::num_shards; the --jobs knob
// only chooses how many host threads execute the shard advances, so all
// virtual results are byte-identical across job counts by construction
// (the determinism argument is spelled out in DESIGN.md §12).
//
// Workloads are template-based: each distinct query shape is prepared
// once (compile, annotate, generate data, reference answer) and every
// stream instance runs a shard-remapped copy of the compiled plan over
// the shared read-only data — the warm plan cache of a mediator serving
// a recurring query mix.

#ifndef DQSCHED_CORE_FLEET_EXECUTOR_H_
#define DQSCHED_CORE_FLEET_EXECUTOR_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "comm/comm_manager.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "core/cache_manager.h"
#include "core/circuit_breaker.h"
#include "core/memory_broker.h"
#include "core/metrics.h"
#include "core/strategy.h"
#include "plan/canonical_plans.h"
#include "plan/compiled_plan.h"
#include "plan/reference_executor.h"
#include "sim/cost_model.h"
#include "storage/relation.h"
#include "wrapper/catalog.h"
#include "wrapper/fault_model.h"

namespace dqsched::core {

/// One query instance of the open-loop stream.
struct FleetQuerySpec {
  /// Index into the template vector passed to Create.
  int template_idx = 0;
  /// Workload arrival time (virtual).
  SimTime arrival = 0;
  FairnessClass fairness = FairnessClass::kInteractive;
};

struct FleetConfig {
  sim::CostModel cost;
  /// Global admission budget (the broker's) and each shard's execution
  /// budget. Admission throttles by estimates; the per-shard accountant
  /// enforces at runtime, with DQO spilling under pressure.
  int64_t memory_budget_bytes = 256LL * 1024 * 1024;
  comm::CommConfig comm;
  StrategyConfig strategy;
  /// Fixed shard count (NOT the thread count — see the header comment).
  int num_shards = 4;
  /// Batches one query executes before yielding within a shard's loop.
  int64_t slice_batches = 32;
  /// Loop turns a shard advances per round between broker barriers.
  int64_t sync_turns = 1024;
  uint64_t seed = 42;
  bool verify_results = true;
  bool targeted_replans = false;
  exec::KernelConfig kernels;

  // ---- Query lifecycle (DESIGN.md §13) ----------------------------------
  // The lifecycle manager is armed when deadline_budget > 0 or a storm is
  // configured; otherwise the fleet behaves exactly as before (and its
  // non-wall metrics stay byte-identical to the pre-lifecycle baselines).

  /// Per-attempt virtual-time budget, measured from the attempt's
  /// admission-request arrival: attempt deadline = request arrival +
  /// budget. 0 disables deadlines (and, absent a storm, the whole
  /// lifecycle layer).
  SimDuration deadline_budget = 0;
  /// Attempts a query killed by source death or deadline expiry may
  /// consume before it terminates kRetriesExhausted (>= 1).
  int max_attempts = 3;
  /// Base of the exponential requeue backoff: attempt k (1-based) that
  /// fails is requeued at now + initial * 2^(k-1), scaled by a
  /// deterministic jitter in [1-retry_jitter, 1+retry_jitter] drawn from
  /// the dedicated retry stream (kFleetRetrySalt).
  SimDuration retry_backoff_initial = Milliseconds(50);
  double retry_jitter = 0.25;
  /// Per-logical-source circuit breakers, shared by every query instance
  /// on a shard that reads the same template source.
  BreakerConfig breaker;
  /// Correlated fault-storm scenario compiled into per-attempt fault
  /// schedules (wrapper/fault_model.h). kNone = no storm.
  wrapper::StormConfig storm;

  // ---- Result cache (DESIGN.md §14) -------------------------------------
  /// Per-shard materialized-fragment/result cache. Entries admitted in one
  /// Execute become visible to the next Execute on the same FleetExecutor
  /// (epoch gating), so a single run — and the first run of any sequence —
  /// is byte-identical to cache=off on every non-wall metric except the
  /// CacheStats counters themselves.
  CacheConfig cache;
};

/// Per-query outcome, indexed by the query's stream uid.
struct FleetQueryOutcome {
  int64_t uid = 0;
  int shard = 0;
  int template_idx = 0;
  FairnessClass fairness = FairnessClass::kInteractive;
  int64_t est_bytes = 0;
  SimTime arrival = 0;
  /// Broker admission time (>= arrival; > arrival means it queued).
  SimTime admitted = 0;
  /// When the shard actually spliced it into its loop (>= admitted).
  SimTime joined = 0;
  SimTime completed = 0;
  /// completed - arrival: what the stream's client observes.
  SimDuration completion_latency = 0;
  /// Per-query-attributable metrics (loop slice); response_time is
  /// completed - joined, shared-device fields stay zero, and
  /// planning_host_seconds is host wall time (excluded from the
  /// byte-identity contract). metrics.fault accumulates over every
  /// attempt of the query.
  ExecutionMetrics metrics;
  /// Terminal lifecycle status. Always kOk or kPartial when the
  /// lifecycle layer is disarmed.
  QueryStatus status = QueryStatus::kOk;
  /// Admission attempts consumed (1 for a first-try success; 0 only for
  /// kShed queries, which never joined a shard).
  int attempts = 0;
  /// Absolute deadline of the final attempt (0 = unlimited).
  SimTime deadline = 0;
};

/// Per-shard aggregate, indexed by shard id.
struct FleetShardOutcome {
  int queries = 0;
  /// The shard clock when its last query finished.
  SimTime makespan = 0;
  SimDuration busy_time = 0;
  SimDuration stalled_time = 0;
  int64_t peak_memory_bytes = 0;
  sim::DiskStats disk;
  sim::NetworkStats network;
  storage::TempStoreStats temps;
};

struct FleetMetrics {
  std::vector<FleetQueryOutcome> queries;  // by uid
  std::vector<FleetShardOutcome> shards;   // by shard id
  /// max over shards of their makespans.
  SimDuration makespan = 0;
  MemoryBroker::Stats broker;
  /// Barrier rounds the coordinator ran.
  int64_t rounds = 0;
  /// Terminal statuses, indexed by QueryStatus enum value.
  std::array<int64_t, kNumQueryStatuses> status_counts{};
  /// Circuit-breaker activity, summed over shards in ascending id.
  BreakerStats breakers;
  /// Fault activity, summed over queries in ascending uid.
  FaultStats fault;
  /// Result-cache activity, summed over shards in ascending id. Excluded
  /// from the cache-off byte-identity contract (like planning_host_seconds).
  CacheStats cache;
};

class FleetExecutor {
 public:
  /// Prepares the templates (compile, annotate, generate data, reference)
  /// and partitions `workload` across shards by a stable hash of each
  /// query's uid (= its index in `workload`), so the placement — like
  /// everything downstream of it — depends only on (config, workload).
  static Result<FleetExecutor> Create(std::vector<plan::QuerySetup> templates,
                                      std::vector<FleetQuerySpec> workload,
                                      FleetConfig config);

  FleetExecutor(FleetExecutor&&) = default;
  FleetExecutor& operator=(FleetExecutor&&) = default;

  /// Runs the stream to completion on `jobs` worker threads (<= 0: one
  /// per hardware thread). Virtual results are independent of `jobs`.
  Result<FleetMetrics> Execute(StrategyKind strategy, int jobs) const;

  int num_queries() const { return static_cast<int>(instances_.size()); }
  int num_shards() const { return config_.num_shards; }

  /// Drops every shard cache (entries and counters). A following Execute
  /// runs cold: byte-identical to cache=off on every non-wall metric.
  void ResetCache() const;
  /// Bumps the data version of logical source key `logical_key` on every
  /// shard: cached entries derived from it become stale (lazy eviction on
  /// the next probe). Test/driver hook for source-data churn.
  void BumpCacheVersion(int64_t logical_key) const;

 private:
  struct PreparedTemplate {
    wrapper::Catalog catalog;
    plan::CompiledPlan compiled;  // unremapped (shard copies remap)
    std::vector<storage::Relation> data;
    plan::ReferenceResult reference;
    int64_t est_bytes = 1;  // admission estimate from the annotations
  };

  struct PreparedInstance {
    FleetQuerySpec spec;
    int64_t uid = 0;
    int shard = 0;
    /// Template copy with chain sources remapped into the shard's local
    /// id space.
    plan::CompiledPlan compiled;
    SourceId source_lo = 0;  // shard-local
    SourceId source_hi = 0;
  };

  FleetExecutor(std::vector<PreparedTemplate> templates,
                std::vector<PreparedInstance> instances,
                std::vector<std::vector<int>> shard_instances,
                FleetConfig config)
      : templates_(std::move(templates)),
        instances_(std::move(instances)),
        shard_instances_(std::move(shard_instances)),
        config_(std::move(config)) {}

  std::vector<PreparedTemplate> templates_;
  /// By uid.
  std::vector<PreparedInstance> instances_;
  /// Per shard: its instances in admission order (arrival, uid) — also
  /// the shard-local source id order and wrapper registration order.
  std::vector<std::vector<int>> shard_instances_;
  FleetConfig config_;
  /// Per-shard result caches, created lazily on the first Execute with
  /// caching enabled and retained across Execute calls (warm runs).
  /// mutable: the caches are a memo, not part of the fleet's identity —
  /// Execute stays const and results stay a function of (config, workload,
  /// cache contents at entry).
  mutable std::vector<std::unique_ptr<CacheManager>> caches_;
};

}  // namespace dqsched::core

#endif  // DQSCHED_CORE_FLEET_EXECUTOR_H_
