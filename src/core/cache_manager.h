// Policy layer of the mediator's materialized-fragment result cache
// (DESIGN.md §14). storage/result_cache.h stores bytes; this class decides
// what those bytes mean:
//
//  * fingerprints — a segment key is (logical source, leading-filter
//    prefix); a result key folds the whole compiled plan. Logical source
//    ids abstract over the per-instance global SourceId spaces so repeated
//    template instances (fleet) and repeated runs (multi-query) hash to
//    the same entries;
//  * versions — a per-logical-source data-version registry. Entries store
//    the version hash they were computed under; any BumpVersion makes
//    every dependent entry a stale miss (lazily evicted). The comm layer's
//    SourceVersion is a *delivery* version (it bumps on every pop), so the
//    data-version registry is deliberately separate: it bumps only when a
//    source's contents change;
//  * memory — cached bytes are registered with the shard's accountant as
//    a *reclaimable* grant: invisible to available()/peak() (so no
//    scheduling decision ever changes) and stolen back by the accountant's
//    reclaimer whenever a live grant needs the space. Work conservation:
//    the cache can never make a query wait.
//
// One CacheManager per mediator shard; entries survive across runs within
// the shard and never cross shards.

#ifndef DQSCHED_CORE_CACHE_MANAGER_H_
#define DQSCHED_CORE_CACHE_MANAGER_H_

#include <cstdint>
#include <unordered_map>

#include "common/ids.h"
#include "core/metrics.h"
#include "storage/result_cache.h"

namespace dqsched::plan {
struct CompiledPlan;
}
namespace dqsched::exec {
class ExecContext;
}
namespace dqsched::storage {
class MemoryAccountant;
}

namespace dqsched::core {

class ExecutionState;

/// Cache knobs, carried by MediatorConfig / MultiQueryConfig / FleetConfig.
struct CacheConfig {
  /// Master switch; everything below is ignored when false.
  bool enabled = false;
  /// LRU byte budget of one shard's cache. The effective ceiling is the
  /// minimum of this and the accountant's headroom — live queries always
  /// win the shared budget.
  int64_t budget_bytes = 64ll << 20;
  /// Cache final result digests (count + checksum), served at join time.
  bool cache_results = true;
  /// Cache completed MF segments, served at plan time by chain rebinding.
  bool cache_segments = true;
};

/// Per-shard cache policy: fingerprinting, version guarding, accountant
/// integration, and the plan-time / admission hooks. Single-threaded,
/// like the shard it belongs to.
class CacheManager {
 public:
  explicit CacheManager(const CacheConfig& config)
      : config_(config), cache_(config.budget_bytes) {}

  CacheManager(const CacheManager&) = delete;
  CacheManager& operator=(const CacheManager&) = delete;

  const CacheConfig& config() const { return config_; }

  // --- Logical keys and data versions -----------------------------------
  /// Maps a run's global source id to its logical source. Unmapped
  /// sources use the global id itself (multi-query: source spaces are
  /// stable across runs); the fleet maps every instance source to its
  /// template-relative key so instances share entries.
  void MapSource(SourceId global, int64_t logical_key);
  void ClearSourceMap() { logical_key_of_.clear(); }

  /// Declares that the logical source's *contents* changed: every cached
  /// entry computed from it becomes a stale miss on its next lookup.
  void BumpVersion(int64_t logical_key) { ++versions_[logical_key]; }

  // --- Accountant integration -------------------------------------------
  /// Registers the resident bytes as a reclaimable grant on `accountant`
  /// (trimming first if they exceed its headroom) and wires the steal
  /// path: accountant reclaim -> LRU eviction -> reclaimable release.
  /// While attached, reclaimable() == resident_bytes() at every quiescent
  /// point.
  void AttachAccountant(storage::MemoryAccountant* accountant);
  /// Returns the reclaimable grant and unhooks; entries stay resident.
  void DetachAccountant();

  // --- Run lifecycle -----------------------------------------------------
  /// Starts a run: entries admitted by earlier runs become visible,
  /// entries this run admits stay invisible until the next BeginRun, and
  /// the per-run counters reset. This is what makes a cold run byte-
  /// identical to a cache-off run by construction.
  void BeginRun();

  // --- Lookups ------------------------------------------------------------
  /// Join-time whole-query hit: serves the cached result digest of
  /// `compiled` if present, fresh, and visible.
  bool LookupResult(const plan::CompiledPlan& compiled, int64_t* count,
                    uint64_t* checksum);

  /// Plan-time segment hits: probes the cache once per eligible chain
  /// (untouched: not started, not done, not degraded) and rebinds each
  /// hit to an adopted sealed temp, closing the chain's source. Called by
  /// Dqs::ComputePlan before the degradation pass.
  void TrySegmentHits(ExecutionState& state, exec::ExecContext& ctx);

  // --- Admission ----------------------------------------------------------
  /// Harvests a cleanly finished query: every naturally completed MF
  /// whose source was never closed becomes a cached segment, and — when
  /// `result_complete` (full, non-partial answer) — the result digest is
  /// cached too. Callers must not admit cancelled or partial queries'
  /// results; cancelled states are rejected here as a backstop.
  void AdmitQuery(const ExecutionState& state, exec::ExecContext& ctx,
                  bool result_complete);

  // --- Broker / maintenance ----------------------------------------------
  /// Evicts LRU entries until at most `target_bytes` stay resident (a
  /// broker trim directive from fleet barrier arbitration).
  void TrimTo(int64_t target_bytes);
  void Clear();

  int64_t resident_bytes() const { return cache_.resident_bytes(); }
  int64_t entries() const { return cache_.entries(); }
  /// Counters since the last BeginRun, as the metrics-layer struct.
  CacheStats stats() const;

 private:
  uint64_t LogicalKey(SourceId global) const;
  uint64_t VersionOf(uint64_t logical_key) const;
  uint64_t SegmentFingerprint(const plan::CompiledPlan& compiled,
                              ChainId chain) const;
  uint64_t SegmentVersionHash(SourceId global) const;
  uint64_t QueryFingerprint(const plan::CompiledPlan& compiled) const;
  uint64_t QueryVersionHash(const plan::CompiledPlan& compiled) const;
  /// Makes sure the accountant (when attached) can host `bytes` more
  /// reclaimable bytes, evicting LRU entries if needed. False when even
  /// an empty cache lacks the headroom.
  bool EnsureHeadroom(int64_t bytes);

  CacheConfig config_;
  storage::ResultCache cache_;
  storage::MemoryAccountant* accountant_ = nullptr;
  std::unordered_map<SourceId, int64_t> logical_key_of_;
  std::unordered_map<int64_t, uint64_t> versions_;
};

}  // namespace dqsched::core

#endif  // DQSCHED_CORE_CACHE_MANAGER_H_
