#include "core/dqo.h"

#include <algorithm>
#include <vector>

namespace dqsched::core {

Status Dqo::HandleMemoryOverflow(ExecutionState& state,
                                 exec::ExecContext& ctx, ChainId chain) {
  exec::FragmentRuntime& rt = state.fragment(state.ChainFragment(chain));

  // Step 1: evict resident operands this chain does NOT probe (largest
  // first) until the chain fits the available memory. Their probers reload
  // them later, when this chain's grants are gone.
  std::vector<bool> probed(static_cast<size_t>(state.operands().count()),
                           false);
  for (const plan::ChainOp& op : rt.spec().ops) {
    if (op.kind == plan::ChainOpKind::kProbe) {
      probed[static_cast<size_t>(op.join)] = true;
    }
  }
  auto fits_available = [&] {
    return rt.BytesToOpen(ctx) <= ctx.memory.available();
  };
  while (!fits_available()) {
    exec::Operand* victim = nullptr;
    for (JoinId j = 0; j < state.operands().count(); ++j) {
      if (probed[static_cast<size_t>(j)]) continue;
      exec::Operand& candidate = state.operands().Get(j);
      if (!candidate.sealed() || candidate.loaded() ||
          candidate.resident_bytes() == 0) {
        continue;
      }
      if (victim == nullptr ||
          candidate.resident_bytes() > victim->resident_bytes()) {
        victim = &candidate;
      }
    }
    if (victim == nullptr) break;
    state.trace().Record(ctx.clock.now(), TraceEventKind::kOperandSpill, -1,
                         victim->name() + " evicted (" +
                             std::to_string(victim->cardinality()) +
                             " tuples)");
    victim->SpillToDisk(ctx);
    ++spills_;
  }
  if (fits_available()) return Status::Ok();  // retry without a split

  // Step 2: split the chain so each stage's operands fit against what is
  // available now (later stages run after earlier grants are released).
  if (state.SplitForMemory(chain, ctx, ctx.memory.available()).ok()) {
    return Status::Ok();
  }

  // Step 3: last resort — evict this chain's own unloaded operands too.
  // Each stage then reloads exactly the operands it probes (extra I/O in
  // exchange for feasibility), which shrinks the resident footprint to
  // one stage's worth.
  for (const plan::ChainOp& op : rt.spec().ops) {
    if (op.kind != plan::ChainOpKind::kProbe) continue;
    exec::Operand& operand = state.operands().Get(op.join);
    if (operand.sealed() && !operand.loaded() &&
        operand.resident_bytes() > 0) {
      state.trace().Record(ctx.clock.now(), TraceEventKind::kOperandSpill,
                           -1, operand.name() + " evicted for staged "
                           "reload");
      operand.SpillToDisk(ctx);
      ++spills_;
    }
  }
  if (fits_available()) return Status::Ok();
  Status split = state.SplitForMemory(chain, ctx, ctx.memory.available());
  if (split.ok()) return split;
  // Only fails when a single operand + index exceeds the whole budget.
  return state.SplitForMemory(chain, ctx, ctx.memory.budget());
}

}  // namespace dqsched::core
