// MA: Materialize All, the strategy of the paper's [1] as described in
// Section 5.1.2 — "In the first phase, MA materializes simultaneously on
// the disk of the mediator all the remote relations. Then, in the second
// phase, it executes the query with local data stored on disk. Therefore,
// MA can overlap the delays of several input relations, however at a high
// I/O overhead."

#include "core/strategy_internal.h"

#include "common/macros.h"

namespace dqsched::core::internal {

Result<ExecutionMetrics> RunMaImpl(ExecutionState& state,
                                   exec::ExecContext& ctx,
                                   const StrategyConfig& config) {
  Dqo dqo;
  StrategyCounters counters;

  // Phase 1: one raw materialization fragment per source, serviced
  // round-robin so every relation is retrieved simultaneously.
  DqpConfig phase1_config = config.dqp;
  phase1_config.round_robin = true;
  Dqp phase1(phase1_config);

  SchedulingPlan sp;
  for (SourceId s = 0; s < ctx.comm.num_sources(); ++s) {
    sp.fragments.push_back(state.CreateMaterializeAll(s, ctx));
    sp.critical_ns.push_back(0.0);
  }
  int64_t guard = 0;
  for (;;) {
    DQS_CHECK_MSG(++guard < (1LL << 40), "MA phase-1 livelock");
    bool any_active = false;
    for (int f : sp.fragments) any_active |= state.FragmentActive(f);
    if (!any_active) break;

    Result<Event> evt = phase1.RunPhase(state, sp, ctx);
    if (!evt.ok()) return evt.status();
    switch (evt->kind) {
      case EventKind::kEndOfQf:
        state.OnFragmentFinished(evt->fragment, ctx);
        break;
      case EventKind::kRateChange:
        ++counters.rate_changes;
        ctx.comm.MarkPlanned(ctx.clock.now());
        break;
      case EventKind::kTimeout:
        ++counters.timeouts;
        break;
      case EventKind::kMemoryOverflow:
        return Status::Internal("materialization cannot overflow memory");
      case EventKind::kPlanExhausted:
        break;  // re-check the active set
      case EventKind::kSourceDown:
        // MA needs every relation fully on disk; a dead source is fatal,
        // a suspected one may still recover.
        ++counters.source_down_events;
        if (ctx.comm.SourceDead(evt->source)) {
          return Status::Unavailable("source " + std::to_string(evt->source) +
                                     " declared dead during materialization");
        }
        break;
      case EventKind::kSourceRecovered:
        ++counters.source_recovered_events;
        break;
      case EventKind::kDeadlineExceeded:
        counters.deadline_hit = true;
        return Status::DeadlineExceeded(
            "query deadline expired during materialization");
      case EventKind::kSliceEnd:
      case EventKind::kStarved:
        return Status::Internal("multi-query event in MA phase 1");
    }
  }

  // Phase 2: rebind every chain to its local temp, then run the iterator
  // model from disk.
  Dqp phase2(config.dqp);
  const auto order = state.compiled().IteratorModelOrder();
  for (ChainId chain : order) {
    state.RebindChainToTemp(chain,
                            state.MaTempOf(state.compiled().chain(chain).source),
                            ctx);
  }
  for (ChainId chain : order) {
    DQS_RETURN_IF_ERROR(
        DriveChain(chain, state, ctx, phase2, dqo, &counters));
  }
  if (!state.QueryDone()) {
    return Status::Internal("MA finished every chain but the query is not "
                            "done");
  }
  ExecutionMetrics m =
      CollectMetrics(ctx, state, /*dqs=*/nullptr, phase2, dqo, counters);
  m.execution_phases += phase1.execution_phases();
  return m;
}

}  // namespace dqsched::core::internal
