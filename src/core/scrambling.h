// SCR: query scrambling, phase 1 (the paper's Section 1.2, after
// Amsaleg/Franklin/Urhan [1,2,15]) — the main prior art DSE argues
// against, implemented here so the comparison is measurable.
//
// Scrambling executes the classical iterator model and *reacts*: when the
// current operator starves past a timeout, a scrambling step (i) suspends
// it and (ii) picks other work — another runnable pipeline chain if one
// exists, otherwise the materialization of some not-yet-consumed wrapper's
// output to local disk (so its delayed/future consumer reads locally).
// The suspended operator resumes as soon as its data arrives.
//
// The paper's two criticisms are reproduced faithfully:
//  * detection is timeout-driven, so a delay on the *last* accessed source
//    finds "no more work to scramble";
//  * the timeout is hard to tune: too large and scrambling never triggers,
//    too small and it materializes eagerly where waiting was cheaper (see
//    bench_scrambling).
// Phase 2 (run-time re-optimization of the remaining plan) is out of
// scope here exactly as it is for the paper's own evaluation.

#ifndef DQSCHED_CORE_SCRAMBLING_H_
#define DQSCHED_CORE_SCRAMBLING_H_

#include "common/status.h"
#include "core/execution_state.h"
#include "core/metrics.h"
#include "core/strategy.h"
#include "exec/exec_context.h"

namespace dqsched::core {

/// Scrambling tunables.
struct ScramblingConfig {
  /// Starvation budget before a scrambling step triggers — THE parameter
  /// the paper calls difficult to configure.
  SimDuration timeout = Milliseconds(100);
  /// Batch size of the processor (as elsewhere).
  int64_t batch_size = 128;
  /// Absolute virtual-time budget for the query (0 = unlimited); raises
  /// kDeadlineExceeded like the other strategies.
  SimTime deadline = 0;
};

/// Runs the query with scrambling phase 1 over freshly constructed state.
Result<ExecutionMetrics> RunScrambling(ExecutionState& state,
                                       exec::ExecContext& ctx,
                                       const ScramblingConfig& config);

}  // namespace dqsched::core

#endif  // DQSCHED_CORE_SCRAMBLING_H_
