// Shared plumbing of the strategy implementations. Internal header: not
// part of the public API.

#ifndef DQSCHED_CORE_STRATEGY_INTERNAL_H_
#define DQSCHED_CORE_STRATEGY_INTERNAL_H_

#include "core/dqo.h"
#include "core/dqp.h"
#include "core/dqs.h"
#include "core/execution_state.h"
#include "core/metrics.h"
#include "core/strategy.h"
#include "exec/exec_context.h"

namespace dqsched::core::internal {

/// Event tallies a strategy accumulates outside the DQS/DQP counters.
struct StrategyCounters {
  int64_t timeouts = 0;
  int64_t rate_changes = 0;
  int64_t source_down_events = 0;
  int64_t source_recovered_events = 0;
  int64_t sources_abandoned = 0;
  bool partial_result = false;
  bool deadline_hit = false;
};

/// Assembles the metrics of a finished run.
ExecutionMetrics CollectMetrics(const exec::ExecContext& ctx,
                                const ExecutionState& state, const Dqs* dqs,
                                const Dqp& dqp, const Dqo& dqo,
                                const StrategyCounters& counters);

/// Runs `chain` (and any staged splits) to completion with a
/// single-fragment scheduling plan — the inner loop of SEQ and of MA's
/// phase 2.
Status DriveChain(ChainId chain, ExecutionState& state,
                  exec::ExecContext& ctx, Dqp& dqp, Dqo& dqo,
                  StrategyCounters* counters);

Result<ExecutionMetrics> RunSeqImpl(ExecutionState& state,
                                    exec::ExecContext& ctx,
                                    const StrategyConfig& config);
Result<ExecutionMetrics> RunDseImpl(ExecutionState& state,
                                    exec::ExecContext& ctx,
                                    const StrategyConfig& config);
Result<ExecutionMetrics> RunMaImpl(ExecutionState& state,
                                   exec::ExecContext& ctx,
                                   const StrategyConfig& config);

}  // namespace dqsched::core::internal

#endif  // DQSCHED_CORE_STRATEGY_INTERNAL_H_
