#include "core/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace dqsched::core {

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kPlanningPhase:
      return "plan";
    case TraceEventKind::kDegradation:
      return "degrade";
    case TraceEventKind::kCfActivation:
      return "activate-cf";
    case TraceEventKind::kDqoSplit:
      return "dqo-split";
    case TraceEventKind::kOperandSpill:
      return "spill";
    case TraceEventKind::kEndOfQf:
      return "end-of-qf";
    case TraceEventKind::kRateChange:
      return "rate-change";
    case TraceEventKind::kTimeout:
      return "timeout";
    case TraceEventKind::kMemoryOverflow:
      return "mem-overflow";
    case TraceEventKind::kSourceDown:
      return "source-down";
    case TraceEventKind::kSourceRecovered:
      return "source-recovered";
    case TraceEventKind::kDeadline:
      return "deadline";
    case TraceEventKind::kCancelled:
      return "cancelled";
    case TraceEventKind::kCacheHit:
      return "cache-hit";
    case TraceEventKind::kQueryDone:
      return "query-done";
  }
  return "unknown";
}

void ExecutionTrace::Record(SimTime time, TraceEventKind kind, int fragment,
                            std::string detail) {
  if (!enabled_) return;
  events_.push_back(TraceEvent{time, kind, fragment, std::move(detail)});
}

void ExecutionTrace::RecordBatch(SimTime time, int fragment,
                                 int64_t consumed) {
  if (!enabled_) return;
  batches_.push_back(TraceBatch{time, fragment, consumed});
}

int64_t ExecutionTrace::CountOf(TraceEventKind kind) const {
  int64_t n = 0;
  for (const TraceEvent& e : events_) n += e.kind == kind;
  return n;
}

std::string ExecutionTrace::RenderEventLog(size_t limit) const {
  std::string out;
  char line[256];
  size_t shown = 0;
  for (const TraceEvent& e : events_) {
    if (limit != 0 && shown++ >= limit) {
      std::snprintf(line, sizeof(line), "... (%zu more events)\n",
                    events_.size() - limit);
      out += line;
      break;
    }
    std::snprintf(line, sizeof(line), "%12s  %-12s %s%s\n",
                  FormatDuration(e.time).c_str(), TraceEventKindName(e.kind),
                  e.detail.c_str(),
                  e.fragment >= 0
                      ? (" [frag " + std::to_string(e.fragment) + "]").c_str()
                      : "");
    out += line;
  }
  return out;
}

std::string ExecutionTrace::RenderTimeline(
    const std::vector<std::string>& names, int columns) const {
  if (batches_.empty()) return "(no batch activity recorded)\n";
  columns = std::max(columns, 8);
  SimTime end = 0;
  for (const TraceBatch& b : batches_) end = std::max(end, b.time);
  if (end == 0) end = 1;

  // Per-fragment tuple counts per time bucket.
  std::map<int, std::vector<int64_t>> rows;
  for (const TraceBatch& b : batches_) {
    auto& row = rows[b.fragment];
    if (row.empty()) row.assign(static_cast<size_t>(columns), 0);
    int bucket = static_cast<int>((b.time * columns) / (end + 1));
    bucket = std::min(bucket, columns - 1);
    row[static_cast<size_t>(bucket)] += b.consumed;
  }
  int64_t max_cell = 1;
  for (const auto& [frag, row] : rows) {
    for (int64_t v : row) max_cell = std::max(max_cell, v);
  }

  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-14s0s%*s\n", "", columns - 4,
                FormatDuration(end).c_str());
  out += "fragment activity (tuples consumed per time bucket)\n";
  out += buf;
  for (const auto& [frag, row] : rows) {
    std::string name = frag >= 0 && static_cast<size_t>(frag) < names.size()
                           ? names[static_cast<size_t>(frag)]
                           : "#" + std::to_string(frag);
    if (name.size() > 12) name.resize(12);
    std::snprintf(buf, sizeof(buf), "%-12s |", name.c_str());
    out += buf;
    for (int64_t v : row) {
      if (v == 0) {
        out += ' ';
      } else if (v * 8 < max_cell) {
        out += '.';
      } else if (v * 2 < max_cell) {
        out += ':';
      } else {
        out += '#';
      }
    }
    out += "|\n";
  }
  return out;
}

}  // namespace dqsched::core
