// DPHJ: double-pipelined (symmetric) hash-join execution.
//
// The paper positions three levels of adaptation to unpredictable delivery
// (Section 1.1); DSE works at the *scheduling* level, and contrasts with
// the *operator* level: "[8] has adapted the double-pipelined hash join
// [16], originally designed for parallel databases. However, such an
// approach is restricted to hash-based queries". This module implements
// that alternative as a fourth comparison strategy.
//
// Every join keeps hash tables over BOTH inputs; a tuple arriving on
// either side is inserted into its own table, probes the opposite one,
// and matches flow on immediately. No input ever blocks, so any arrival
// order is processable — at the price of roughly twice the hash-table
// memory (both sides stay resident until their streams end) and no
// disk-backed escape hatch (XJoin's spilling is out of scope here, as it
// was for the paper).
//
// Results are bit-identical to the other strategies: a match always emits
// the probe-side tuple's attributes with CombineRowid(build, probe),
// where build/probe refer to the original plan's asymmetric roles.

#ifndef DQSCHED_CORE_DPHJ_H_
#define DQSCHED_CORE_DPHJ_H_

#include "common/status.h"
#include "core/metrics.h"
#include "exec/exec_context.h"
#include "plan/compiled_plan.h"

namespace dqsched::core {

/// DPHJ tunables.
struct DphjConfig {
  /// Tuples consumed from one source before rotating to the next.
  int64_t batch_size = 128;
};

/// Executes `compiled` with symmetric hash joins over the context's
/// sources. Fails with kResourceExhausted if the two-sided tables do not
/// fit the memory budget (DPHJ has no spill path).
Result<ExecutionMetrics> RunDphj(const plan::CompiledPlan& compiled,
                                 exec::ExecContext& ctx,
                                 const DphjConfig& config);

}  // namespace dqsched::core

#endif  // DQSCHED_CORE_DPHJ_H_
