// The Dynamic Query Processor (paper Section 3.2).
//
// One execution phase: repeatedly scan the scheduling plan's fragments in
// priority order, process a batch of tuples from the first fragment with
// sufficient input, return to the highest priority after every batch.
// The phase ends with an interruption event: EndOfQF, RateChange, TimeOut,
// MemoryOverflow, or PlanExhausted.

#ifndef DQSCHED_CORE_DQP_H_
#define DQSCHED_CORE_DQP_H_

#include "common/sim_time.h"
#include "common/status.h"
#include "core/dqs.h"
#include "core/events.h"
#include "core/execution_state.h"
#include "exec/exec_context.h"

namespace dqsched::core {

/// Processor tunables.
struct DqpConfig {
  /// Preferred tuples per batch ("the rationale behind considering batches
  /// ... is to reduce the potential overheads due to frequent switches").
  int64_t batch_size = 128;
  /// Stall budget before a TimeOut interruption (the hook for phase-2
  /// re-optimization [15]).
  SimDuration stall_timeout = Seconds(5);
  /// Round-robin instead of strict priority (used by MA's phase 1, which
  /// materializes all relations simultaneously).
  bool round_robin = false;
  /// Multi-query time slicing: end the phase with kSliceEnd after this
  /// many batches (0 = unlimited; single-query strategies).
  int64_t slice_batches = 0;
  /// Multi-query mode: return kStarved instead of stalling the global
  /// clock when no scheduled fragment has data — another query may have
  /// work.
  bool yield_on_starvation = false;
  /// Absolute virtual-time budget for the whole query (0 = unlimited).
  /// Crossing it raises kDeadlineExceeded; the strategy decides between
  /// aborting and returning a partial result. Plumbed from
  /// MediatorConfig::query_deadline.
  SimTime deadline = 0;
};

/// The processor. Owns no state besides counters; fragments live in the
/// ExecutionState.
class Dqp {
 public:
  explicit Dqp(const DqpConfig& config) : config_(config) {}

  /// Runs one execution phase against `sp`. Never returns without an
  /// event; the virtual clock advances by CPU charges and stalls.
  Result<Event> RunPhase(ExecutionState& state, const SchedulingPlan& sp,
                         exec::ExecContext& ctx);

  int64_t execution_phases() const { return execution_phases_; }
  int64_t batches() const { return batches_; }

 private:
  DqpConfig config_;
  int64_t execution_phases_ = 0;
  int64_t batches_ = 0;
  int rr_cursor_ = 0;
};

}  // namespace dqsched::core

#endif  // DQSCHED_CORE_DQP_H_
