#include "core/shared_loop.h"

#include <algorithm>
#include <utility>

#ifdef DQS_MQ_DEBUG
#include <cstdio>
#endif

#include "common/macros.h"

namespace dqsched::core {

SharedQueryLoop::SharedQueryLoop(exec::ExecContext* ctx, Options options)
    : ctx_(ctx), options_(std::move(options)) {
  DQS_CHECK(ctx_ != nullptr);
  DQS_CHECK(options_.strategy != StrategyKind::kMa);
  DQS_CHECK(options_.slice_batches > 0);
}

int SharedQueryLoop::AddQuery(const SharedQueryDesc& desc) {
  DQS_CHECK(desc.compiled != nullptr);
  DQS_CHECK(desc.source_lo <= desc.source_hi);
  const int q = num_queries();
  auto run = std::make_unique<QueryRun>();
  run->desc = desc;
  run->result = std::make_unique<exec::ResultCollector>();
  ExecutionOptions exec_options = OptionsFor(options_.strategy);
  exec_options.result_override = run->result.get();
  exec_options.shared_context = true;
  exec_options.kernels = options_.kernels;
  exec_options.cache = options_.cache;
  run->state =
      std::make_unique<ExecutionState>(desc.compiled, ctx_, exec_options);
  run->dqs = std::make_unique<Dqs>(options_.config.dqs);
  DqpConfig dqp_config = options_.config.dqp;
  dqp_config.slice_batches = options_.slice_batches;
  dqp_config.yield_on_starvation = true;
  dqp_config.deadline = desc.deadline;
  run->dqp = std::make_unique<Dqp>(dqp_config);
  run->dqo = std::make_unique<Dqo>();
  if (options_.strategy == StrategyKind::kSeq && !desc.resolved) {
    run->seq_order = desc.compiled->IteratorModelOrder();
  }
  runs_.push_back(std::move(run));

  if (source_owner_.size() < static_cast<size_t>(desc.source_hi)) {
    source_owner_.resize(static_cast<size_t>(desc.source_hi), -1);
  }
  for (SourceId s = desc.source_lo; s < desc.source_hi; ++s) {
    source_owner_[static_cast<size_t>(s)] = q;
  }

  arrival_key_.push_back(kSimTimeNever);
  ring_next_.push_back(q);
  if (desc.resolved) {
    // Whole-query result-cache hit: the slot joins already done, with the
    // cached digest adopted. It never enters the rotation — its sources
    // stay untouched and cost the loop nothing.
    QueryRun& done_run = *runs_.back();
    done_run.result->AdoptCached(desc.resolved_count,
                                 desc.resolved_checksum);
    done_run.done = true;
    done_run.done_at = ctx_->clock.now();
    ring_next_[static_cast<size_t>(q)] = q;
    return q;
  }
  if (active_ == 0) {
    // First (or first-after-drain) query: a self-loop it alone occupies.
    ring_next_[static_cast<size_t>(q)] = q;
    ring_tail_ = q;
    ring_prev_ = q;
  } else {
    // Splice behind the tail. When the next visit was due at the ring
    // head (ring_prev_ == tail), keep it there: an all-upfront batch is
    // then visited exactly in registration order 0, 1, ..., N-1.
    ring_next_[static_cast<size_t>(q)] =
        ring_next_[static_cast<size_t>(ring_tail_)];
    ring_next_[static_cast<size_t>(ring_tail_)] = q;
    if (ring_prev_ == ring_tail_) ring_prev_ = q;
    ring_tail_ = q;
  }
  ++active_;
  return q;
}

Status SharedQueryLoop::BuildPlan(QueryRun& run) {
  if (options_.strategy == StrategyKind::kDse) {
    Result<SchedulingPlan> sp = run.dqs->ComputePlan(*run.state, *ctx_,
                                                     *run.dqo);
    if (!sp.ok()) return sp.status();
    run.sp = std::move(sp.value());
    return Status::Ok();
  }
  // kSeq: the current chain of the iterator order, alone.
  while (run.seq_cursor < run.seq_order.size() &&
         run.state->ChainDone(run.seq_order[run.seq_cursor])) {
    ++run.seq_cursor;
  }
  DQS_CHECK(run.seq_cursor < run.seq_order.size());
  run.sp = SchedulingPlan{};
  run.sp.fragments.push_back(
      run.state->ChainFragment(run.seq_order[run.seq_cursor]));
  run.sp.critical_ns.push_back(0.0);
  return Status::Ok();
}

uint64_t SharedQueryLoop::QueryEpoch(const QueryRun& run) const {
  // Any mutation that can move the query's earliest arrival bumps one of
  // these monotone counters, so an unchanged sum proves the cached
  // minimum still holds.
  uint64_t e = run.state->structural_version();
  for (SourceId s = run.desc.source_lo; s < run.desc.source_hi; ++s) {
    e += ctx_->comm.SourceVersion(s);
  }
  return e;
}

SimTime SharedQueryLoop::EarliestArrival() {
  // Per-query minima come from the arrival cache; only queries whose
  // epoch drifted (or whose minimum is time-dependent) rescan their
  // fragments.
  for (int qi = 0; qi < num_queries(); ++qi) {
    QueryRun& other = *runs_[static_cast<size_t>(qi)];
    if (other.done) continue;
    const uint64_t epoch = QueryEpoch(other);
    if (other.arrival_valid && !other.arrival_volatile &&
        other.arrival_epoch == epoch) {
      continue;
    }
    SimTime q_min = kSimTimeNever;
    bool is_volatile = false;
    const ExecutionState& state = *other.state;
    for (int f = 0; f < state.num_fragments(); ++f) {
      if (!state.FragmentActive(f)) continue;
      const exec::FragmentRuntime& rt = state.fragment(f);
      q_min = std::min(q_min, rt.NextArrival(*ctx_));
      is_volatile = is_volatile || rt.TimeDependentArrival();
    }
    other.arrival_min = q_min;
    other.arrival_epoch = epoch;
    other.arrival_valid = true;
    other.arrival_volatile = is_volatile;
    arrival_key_[static_cast<size_t>(qi)] = q_min;
    if (q_min != kSimTimeNever) arrival_heap_.push({q_min, qi});
  }
  while (!arrival_heap_.empty()) {
    const auto [at, qi] = arrival_heap_.top();
    if (runs_[static_cast<size_t>(qi)]->done ||
        arrival_key_[static_cast<size_t>(qi)] != at) {
      arrival_heap_.pop();  // stale entry, a newer key superseded it
      continue;
    }
    return at;
  }
  return kSimTimeNever;
}

Result<SharedQueryLoop::Turn> SharedQueryLoop::Step() {
  if (active_ == 0) {
    Turn idle;
    idle.kind = Turn::Kind::kIdle;
    return idle;
  }
  DQS_CHECK_MSG(++guard_ < (1LL << 40), "multi-query livelock");
  // Retire slots cancelled between turns: CancelQuery marks them done but
  // cannot unlink from a singly-linked ring without the predecessor.
  int cur = ring_next_[static_cast<size_t>(ring_prev_)];
  while (runs_[static_cast<size_t>(cur)]->done) {
    ring_next_[static_cast<size_t>(ring_prev_)] =
        ring_next_[static_cast<size_t>(cur)];
    if (ring_tail_ == cur) ring_tail_ = ring_prev_;
    cur = ring_next_[static_cast<size_t>(ring_prev_)];
  }
  QueryRun& run = *runs_[static_cast<size_t>(cur)];

  if (run.need_replan) {
    DQS_RETURN_IF_ERROR(BuildPlan(run));
    run.need_replan = false;
  }
  Result<Event> evt = run.dqp->RunPhase(*run.state, run.sp, *ctx_);
  if (!evt.ok()) return evt.status();
#ifdef DQS_MQ_DEBUG
  if ((guard_ & ((1LL << 20) - 1)) == 0) {
    std::fprintf(stderr,
                 "[mq] it=%lld t=%.6fms q=%d evt=%s frag=%d streak=%d "
                 "act=%d heap=%zu\n",
                 static_cast<long long>(guard_), ToMillis(ctx_->clock.now()),
                 cur, EventKindName(evt->kind), evt->fragment,
                 starved_streak_, active_, arrival_heap_.size());
  }
#endif
  Turn turn;
  if (evt->kind != EventKind::kStarved) starved_streak_ = 0;
  switch (evt->kind) {
    case EventKind::kEndOfQf:
      run.state->OnFragmentFinished(evt->fragment, *ctx_);
      run.need_replan = true;
      if (run.state->QueryDone()) {
        run.done = true;
        run.done_at = ctx_->clock.now();
        --active_;
        turn.kind = Turn::Kind::kQueryDone;
        turn.query = cur;
      }
      break;
    case EventKind::kRateChange:
      ++run.rate_change_events;
      // DSE refreshes the snapshot inside ComputePlan; SEQ has no
      // planning phase, so acknowledge the new estimates here or the
      // same signal fires forever.
      if (options_.strategy == StrategyKind::kSeq) {
        ctx_->comm.MarkPlanned(ctx_->clock.now());
      }
      if (options_.targeted_replans) {
        // Route the replan to the query subscribed to the drifting
        // source rather than the one that happened to observe the
        // signal. Unattributable or orphaned signals fall back to the
        // observer so the estimate snapshot is always re-acknowledged.
        const SourceId src = ctx_->comm.LastRateChangeSource();
        const int owner =
            src == kInvalidId ? -1 : source_owner_[static_cast<size_t>(src)];
        if (owner >= 0 && !runs_[static_cast<size_t>(owner)]->done) {
          runs_[static_cast<size_t>(owner)]->need_replan = true;
        } else {
          run.need_replan = true;
        }
      } else {
        run.need_replan = true;
      }
      break;
    case EventKind::kTimeout:
      ++run.timeouts;
      run.need_replan = true;
      break;
    case EventKind::kPlanExhausted:
      run.need_replan = true;
      break;
    case EventKind::kMemoryOverflow:
      DQS_RETURN_IF_ERROR(run.dqo->HandleMemoryOverflow(
          *run.state, *ctx_, run.state->FragmentChain(evt->fragment)));
      run.need_replan = true;
      break;
    case EventKind::kSourceDown:
      run.need_replan = true;
      if (options_.surface_lifecycle) {
        turn.kind = ctx_->comm.SourceDead(evt->source)
                        ? Turn::Kind::kSourceDead
                        : Turn::Kind::kSourceSuspected;
        turn.source = evt->source;
        turn.query = SourceOwner(evt->source);
        break;
      }
      if (ctx_->comm.SourceDead(evt->source)) {
        return Status::Unavailable("source " + std::to_string(evt->source) +
                                   " declared dead in multi-query mix");
      }
      break;
    case EventKind::kSourceRecovered:
      run.need_replan = true;
      if (options_.surface_lifecycle) {
        turn.kind = Turn::Kind::kSourceRecovered;
        turn.source = evt->source;
        turn.query = SourceOwner(evt->source);
      }
      break;
    case EventKind::kDeadlineExceeded:
      if (options_.surface_lifecycle) {
        turn.kind = Turn::Kind::kQueryDeadline;
        turn.query = cur;
        break;
      }
      return Status::DeadlineExceeded(
          "query deadline expired in multi-query mix");
    case EventKind::kSliceEnd:
      break;  // keep the plan, yield the CPU
    case EventKind::kStarved:
      run.need_replan = true;
      if (++starved_streak_ >= active_) {
        // Every active query starves: report the earliest arrival any of
        // them waits for; the caller advances the shared clock (or caps
        // the stall at its own next event).
        turn.kind = Turn::Kind::kAllStarved;
        turn.stall_until = EarliestArrival();
        starved_streak_ = 0;
      }
      break;
  }

  if (run.done) {
    ring_next_[static_cast<size_t>(ring_prev_)] =
        ring_next_[static_cast<size_t>(cur)];
    if (ring_tail_ == cur) ring_tail_ = ring_prev_;
  } else {
    ring_prev_ = cur;
  }
  return turn;
}

void SharedQueryLoop::CancelQuery(int query) {
  QueryRun& run = *runs_[static_cast<size_t>(query)];
  DQS_CHECK_MSG(!run.done, "cancel of finished query %d", query);
  run.state->Cancel(*ctx_);
  // Quiesce the query's wrappers: nobody will drain those queues again.
  for (SourceId s = run.desc.source_lo; s < run.desc.source_hi; ++s) {
    ctx_->comm.CloseSource(s);
  }
  run.done = true;
  run.done_at = ctx_->clock.now();
  --active_;
  // The ring unlink happens lazily at the top of the next Step.
}

ExecutionMetrics SharedQueryLoop::QueryMetrics(int query) const {
  const QueryRun& run = *runs_[static_cast<size_t>(query)];
  ExecutionMetrics m;
  m.result_count = run.result->count();
  m.result_checksum = run.result->checksum().value();
  m.planning_phases = run.dqs->planning_phases();
  m.planning_host_seconds = run.dqs->planning_host_seconds();
  m.execution_phases = run.dqp->execution_phases();
  m.degradations = run.state->degradations();
  m.cf_activations = run.state->cf_activations();
  m.dqo_splits = run.state->dqo_splits();
  m.operand_spills = run.dqo->spills();
  m.timeouts = run.timeouts;
  m.rate_change_events = run.rate_change_events;
  // Per-query cache attribution: chains this query served from cached
  // segments, and whether the whole query was a result hit. Admission and
  // miss counters live on the shard aggregate (the driver's CacheStats).
  m.cache.segment_hits = run.state->cache_bound();
  m.cache.result_hits = run.desc.resolved ? 1 : 0;
  return m;
}

}  // namespace dqsched::core
