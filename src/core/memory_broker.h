// Admission-control memory broker for the sharded mediator fleet.
//
// The fleet's shards run on real threads, each against its own virtual
// clock and ExecContext; the broker is the single piece of cross-shard
// mutable state. Shards *submit* admission requests and completion
// releases at any point of a round (a mutex-protected append — no
// response is produced mid-round); the coordinator calls Arbitrate()
// alone at the round barrier, where the broker sorts the round's events
// into a canonical order and decides admissions against the global
// memory budget. Because decisions happen only at barriers over sorted
// event sets, they are independent of thread interleaving: the grant
// sequence — and therefore every shard's execution — is byte-identical
// across --jobs counts.
//
// Fairness: two admission classes, interactive and batch. Queued
// interactive requests are always considered first; a batch request is
// admitted when no queued interactive request fits (work-conserving, so
// a huge interactive query cannot idle the budget that a small batch
// query could use).
//
// Grant timestamps are virtual times with round granularity: a request
// admitted in the same Arbitrate it was submitted, with no queued
// request ahead of it in its class and no release needed to make room,
// is stamped at its arrival time; any request that had to wait is
// stamped max(arrival, completion time of the latest release applied) —
// the broker cannot know the exact virtual instant headroom appeared
// without serializing the shard clocks, so the latest applied release
// stands in for it (documented in DESIGN.md §12).

#ifndef DQSCHED_CORE_MEMORY_BROKER_H_
#define DQSCHED_CORE_MEMORY_BROKER_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "common/sim_time.h"

namespace dqsched::core {

/// Admission class of a fleet query.
enum class FairnessClass {
  kInteractive,  // admitted first: latency-sensitive
  kBatch,        // fills remaining budget
};

const char* FairnessClassName(FairnessClass c);

class MemoryBroker {
 public:
  struct Config {
    /// Global budget the sum of admitted queries' estimates must respect.
    /// A query is always admitted when nothing is outstanding, even if
    /// its estimate alone exceeds the budget (work conservation: the
    /// per-shard execution engine spills under pressure; refusing forever
    /// would wedge the fleet).
    int64_t total_budget_bytes = 256LL * 1024 * 1024;
  };

  struct Request {
    int64_t uid = 0;  // fleet-wide query id, unique
    int shard = 0;
    int64_t est_bytes = 0;  // admission estimate (>= 1)
    FairnessClass fairness = FairnessClass::kInteractive;
    SimTime arrival = 0;  // the query's workload arrival time
    /// Absolute virtual-time deadline (0 = none). A queued request whose
    /// earliest possible grant stamp reaches this is shed: granting
    /// memory to a query that cannot finish in time only steals budget
    /// from queries that still can (deadline-aware admission, §13).
    SimTime deadline = 0;
  };

  struct Release {
    int64_t uid = 0;
    int64_t bytes = 0;  // must equal the granted estimate
    SimTime completed_at = 0;
  };

  struct Grant {
    int64_t uid = 0;
    int64_t est_bytes = 0;
    /// Virtual admission time: >= the request's arrival; > arrival means
    /// the query queued for memory.
    SimTime granted_at = 0;
  };

  struct Stats {
    int64_t grants_issued = 0;
    int64_t releases_applied = 0;
    /// Grants whose granted_at exceeds their arrival (queued for memory).
    int64_t queued_admissions = 0;
    /// Grants issued by ForceAdmit (progress backstop).
    int64_t forced_admissions = 0;
    /// Queued requests dropped because their earliest grant stamp could
    /// no longer beat their deadline. Shed requests are never granted,
    /// so they do not participate in the grants == releases law.
    int64_t shed_requests = 0;
    int64_t peak_outstanding_bytes = 0;
    int64_t peak_queued_requests = 0;
  };

  explicit MemoryBroker(const Config& config) : config_(config) {}

  MemoryBroker(const MemoryBroker&) = delete;
  MemoryBroker& operator=(const MemoryBroker&) = delete;

  /// Thread-safe append; decided at the next Arbitrate.
  void Submit(const Request& request);
  /// Thread-safe append; applied (budget freed) at the next Arbitrate.
  void Submit(const Release& release);

  /// Round barrier (single-threaded by contract): applies the pending
  /// releases in (completed_at, uid) order, enqueues the pending requests
  /// in (arrival, uid) order onto their class queues, sheds queued
  /// requests whose earliest grant stamp has reached their deadline
  /// (appended to `*shed` in queue order, interactive first, when
  /// non-null), and admits queue heads while the budget allows. Returns
  /// the new grants bucketed by shard (outer index = shard id).
  std::vector<std::vector<Grant>> Arbitrate(
      int num_shards, std::vector<Request>* shed = nullptr);

  /// Progress backstop: admits the head queued request (interactive
  /// first) regardless of budget. Only legal when HasQueued(); the
  /// coordinator calls it when no shard can advance otherwise.
  std::vector<std::vector<Grant>> ForceAdmit(int num_shards);

  bool HasQueued() const;
  /// Sum of granted-but-not-released estimates.
  int64_t outstanding_bytes() const { return outstanding_bytes_; }
  const Stats& stats() const { return stats_; }

  // --- Reclaimable (cached) bytes, DESIGN.md §14 -------------------------
  // Cached bytes never influence admission — Fits() ignores them entirely
  // (they are stealable at any instant, so refusing a query over them
  // would break work conservation). The broker's only cache duty is the
  // inverse: when firm outstanding grants plus the fleet's caches exceed
  // the global budget, it directs shards to trim. Barrier-side API, same
  // single-threaded contract as Arbitrate.

  /// Reports shard `shard`'s current cached (reclaimable) bytes. Called
  /// by the coordinator at the barrier, after Arbitrate.
  void ReportReclaimable(int shard, int64_t bytes);

  /// Per-shard trim directives: bytes each shard must evict so that
  /// outstanding + total cached fits the budget. Deterministic greedy:
  /// largest cache first, shard id as tie-break. Zero-filled when
  /// everything fits.
  std::vector<int64_t> ReclaimTargets(int num_shards) const;

 private:
  struct QueuedRequest {
    Request request;
    /// False only while the request has never survived an Arbitrate:
    /// controls the arrival-stamped "immediate admission" carve-out.
    bool waited = false;
  };

  /// True when `request` fits the remaining budget (or nothing is
  /// outstanding — see Config::total_budget_bytes).
  bool Fits(const QueuedRequest& qr) const;
  /// Drops doomed queued requests from `queue` into `*shed`.
  void ShedExpired(std::deque<QueuedRequest>* queue,
                   std::vector<Request>* shed);
  void Admit(std::deque<QueuedRequest>* queue,
             std::vector<std::vector<Grant>>* out, bool forced);

  Config config_;

  std::mutex mu_;  // guards the two pending inboxes only
  std::vector<Request> pending_requests_;
  std::vector<Release> pending_releases_;

  // Barrier-side state: touched only inside Arbitrate/ForceAdmit.
  std::deque<QueuedRequest> interactive_;
  std::deque<QueuedRequest> batch_;
  int64_t outstanding_bytes_ = 0;
  /// Completion time of the latest release applied so far: the stamp
  /// base for grants that waited.
  SimTime last_freed_at_ = 0;
  /// Last-reported cached bytes per shard (barrier-side only).
  std::vector<int64_t> reclaimable_by_shard_;
  Stats stats_;
};

}  // namespace dqsched::core

#endif  // DQSCHED_CORE_MEMORY_BROKER_H_
