// The public entry point of dqsched: the mediator of the paper's
// data-integration architecture (Section 2.1). Construct one from a
// catalog + plan + configuration, then Execute() any strategy; repeated
// executions reuse identical generated data and identical per-tuple delay
// draws, so strategies are compared on exactly the same workload.

#ifndef DQSCHED_CORE_MEDIATOR_H_
#define DQSCHED_CORE_MEDIATOR_H_

#include <vector>

#include "comm/comm_manager.h"
#include "common/status.h"
#include "core/cache_manager.h"
#include "core/lwb.h"
#include "core/trace.h"
#include "core/metrics.h"
#include "core/strategy.h"
#include "exec/kernel_config.h"
#include "plan/compiled_plan.h"
#include "plan/plan_node.h"
#include "plan/reference_executor.h"
#include "sim/cost_model.h"
#include "storage/relation.h"
#include "wrapper/catalog.h"

namespace dqsched::core {

/// Everything configurable about one mediator.
struct MediatorConfig {
  /// Simulation cost parameters (paper Table 1 defaults).
  sim::CostModel cost;
  /// Total memory available for the query execution, bytes.
  int64_t memory_budget_bytes = 256LL * 1024 * 1024;
  /// Communication layer (queue capacity, rate-change detection).
  comm::CommConfig comm;
  /// Scheduler (bmt) and processor (batch size, stall timeout) tunables.
  StrategyConfig strategy;
  /// Seed for data generation and delay draws; one seed = one workload.
  uint64_t seed = 42;
  /// Verify every execution's result against the reference executor.
  /// (Partial results under FaultPolicy::partial_results are exempt.)
  bool verify_results = true;
  /// Virtual-time budget for each execution (0 = unlimited). Expiry
  /// raises kDeadlineExceeded, resolved per StrategyConfig::fault.
  SimDuration query_deadline = 0;
  /// Operator kernels (vectorized by default; scalar for A/B runs).
  exec::KernelConfig kernels;
  /// Result cache (DESIGN.md §14). The single-query mediator wires a
  /// fresh per-run CacheManager, so every Execute is a cold run: the
  /// admission/lookup paths are exercised, but Execute keeps its
  /// "same mediator + strategy = same metrics" contract. Warm reuse lives
  /// in the multi-query and fleet drivers, which persist their caches.
  CacheConfig cache;
};

/// An integration query ready to execute.
class Mediator {
 public:
  /// Validates everything, compiles + annotates the plan, generates the
  /// data, and computes the exact reference answer.
  static Result<Mediator> Create(wrapper::Catalog catalog, plan::Plan plan,
                                 MediatorConfig config);

  Mediator(Mediator&&) = default;
  Mediator& operator=(Mediator&&) = default;

  /// Executes the query under `kind` on a fresh context. Deterministic:
  /// the same mediator + strategy always yields the same metrics.
  Result<ExecutionMetrics> Execute(StrategyKind kind) const;

  /// Like Execute, but records and returns the execution trace (paper
  /// Section 5.3's diagnostic tool): scheduler decisions, interruption
  /// events, per-fragment batch activity, plus fragment display names for
  /// rendering.
  struct TracedExecution {
    ExecutionMetrics metrics;
    ExecutionTrace trace;
    std::vector<std::string> fragment_names;
  };
  Result<TracedExecution> ExecuteTraced(StrategyKind kind) const;

  /// Executes with query scrambling, phase 1 (core/scrambling.h) — the
  /// paper's main prior art, for measurable comparison. `timeout` is the
  /// scrambling trigger the paper calls hard to tune.
  Result<ExecutionMetrics> ExecuteScrambling(
      SimDuration timeout = Milliseconds(100)) const;

  /// Executes with double-pipelined (symmetric) hash joins — the
  /// operator-level adaptation of paper Section 1.1 (core/dphj.h) — for
  /// comparison against the scheduling-level DSE. Verified against the
  /// reference like every other strategy.
  Result<ExecutionMetrics> ExecuteDphj() const;

  /// The analytic lower bound LWB (paper Section 5.1.2).
  LwbBreakdown LowerBound() const;

  const wrapper::Catalog& catalog() const { return catalog_; }
  const plan::CompiledPlan& compiled() const { return compiled_; }
  const plan::ReferenceResult& reference() const { return reference_; }
  const std::vector<storage::Relation>& data() const { return data_; }
  const MediatorConfig& config() const { return config_; }

 private:
  Result<TracedExecution> ExecuteWithOptions(StrategyKind kind,
                                             bool trace) const;
  void SetupContext(exec::ExecContext& ctx) const;
  Status VerifyAgainstReference(const ExecutionMetrics& metrics,
                                const char* label) const;

  Mediator(wrapper::Catalog catalog, MediatorConfig config,
           plan::CompiledPlan compiled, std::vector<storage::Relation> data,
           plan::ReferenceResult reference,
           std::vector<double> realized_retrieval_ns)
      : catalog_(std::move(catalog)),
        config_(std::move(config)),
        compiled_(std::move(compiled)),
        data_(std::move(data)),
        reference_(std::move(reference)),
        realized_retrieval_ns_(std::move(realized_retrieval_ns)) {}

  wrapper::Catalog catalog_;
  MediatorConfig config_;
  plan::CompiledPlan compiled_;
  std::vector<storage::Relation> data_;
  plan::ReferenceResult reference_;
  /// Per-source realized total delivery time (sum of this seed's actual
  /// delay draws), nanoseconds — makes the LWB tight per workload.
  std::vector<double> realized_retrieval_ns_;
};

}  // namespace dqsched::core

#endif  // DQSCHED_CORE_MEDIATOR_H_
