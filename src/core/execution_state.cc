#include "core/execution_state.h"

#include "common/macros.h"
#include "core/invariant_auditor.h"

namespace dqsched::core {

using exec::ChainSource;
using exec::ConcatSource;
using exec::FragmentRuntime;
using exec::FragmentSpec;
using exec::QueueSource;
using exec::SinkKind;
using exec::TempSource;

ExecutionState::ExecutionState(const plan::CompiledPlan* compiled,
                               exec::ExecContext* ctx,
                               const ExecutionOptions& options)
    : compiled_(compiled),
      ctx_(ctx),
      options_(options),
      result_(options.result_override != nullptr ? options.result_override
                                                 : &ctx->result),
      operands_(compiled->num_joins) {
  trace_.set_enabled(options.trace);
  // Operands register in join-id order; join ids were assigned in compile
  // order, and operand_of_join names the producing chain.
  for (JoinId j = 0; j < compiled_->num_joins; ++j) {
    const ChainId producer =
        compiled_->operand_of_join[static_cast<size_t>(j)];
    operands_.Register(
        j, "J" + std::to_string(j) + "<-" + compiled_->chain(producer).name,
        compiled_->join_build_field[static_cast<size_t>(j)]);
  }
  chain_states_.resize(static_cast<size_t>(compiled_->num_chains()));
  for (ChainId c = 0; c < compiled_->num_chains(); ++c) {
    ChainState& st = chain_states_[static_cast<size_t>(c)];
    for (const plan::ChainOp& op : compiled_->chain(c).ops) {
      if (op.kind != plan::ChainOpKind::kFilter) break;
      ++st.leading_filters;
    }
    FragmentSlot slot;
    slot.runtime = MakeChainFragment(c);
    slot.chain = c;
    fragments_.push_back(std::move(slot));
  }
}

exec::FragmentSpec ExecutionState::BaseSpecFor(ChainId chain) const {
  const plan::ChainInfo& info = compiled_->chain(chain);
  FragmentSpec spec;
  spec.name = info.name;
  spec.ops = info.ops;
  spec.sink = info.is_result ? SinkKind::kResult : SinkKind::kOperand;
  spec.sink_join = info.sink_join;
  spec.origin_chain = chain;
  spec.async_io = options_.async_io;
  spec.kernels = options_.kernels;
  return spec;
}

std::unique_ptr<FragmentRuntime> ExecutionState::MakeChainFragment(
    ChainId chain) {
  const plan::ChainInfo& info = compiled_->chain(chain);
  return std::make_unique<FragmentRuntime>(
      BaseSpecFor(chain), std::make_unique<QueueSource>(info.source),
      &operands_, result_);
}

exec::FragmentRuntime& ExecutionState::fragment(int id) {
  DQS_CHECK_MSG(id >= 0 && id < num_fragments(), "bad fragment id %d", id);
  return *fragments_[static_cast<size_t>(id)].runtime;
}

const exec::FragmentRuntime& ExecutionState::fragment(int id) const {
  return const_cast<ExecutionState*>(this)->fragment(id);
}

bool ExecutionState::FragmentActive(int id) const {
  const FragmentSlot& slot = fragments_[static_cast<size_t>(id)];
  return slot.active && !slot.runtime->closed();
}

ChainId ExecutionState::FragmentChain(int id) const {
  return fragments_[static_cast<size_t>(id)].chain;
}

bool ExecutionState::IsMf(int id) const {
  return fragments_[static_cast<size_t>(id)].is_mf;
}

bool ExecutionState::ChainDone(ChainId chain) const {
  return chain_states_[static_cast<size_t>(chain)].done;
}

bool ExecutionState::CSchedulable(ChainId chain) const {
  for (ChainId b : compiled_->chain(chain).blockers) {
    if (!ChainDone(b)) return false;
  }
  return true;
}

bool ExecutionState::Degraded(ChainId chain) const {
  return chain_states_[static_cast<size_t>(chain)].degraded;
}

bool ExecutionState::CfActivated(ChainId chain) const {
  return chain_states_[static_cast<size_t>(chain)].cf_activated;
}

int ExecutionState::MfFragment(ChainId chain) const {
  return chain_states_[static_cast<size_t>(chain)].mf_fragment;
}

TempId ExecutionState::MfTemp(ChainId chain) const {
  return chain_states_[static_cast<size_t>(chain)].mf_temp;
}

int ExecutionState::LeadingFilters(ChainId chain) const {
  return chain_states_[static_cast<size_t>(chain)].leading_filters;
}

int64_t ExecutionState::RetiredLiveConsumed(ChainId chain) const {
  return chain_states_[static_cast<size_t>(chain)].retired_live_consumed;
}

int ExecutionState::Degrade(ChainId chain, exec::ExecContext& ctx) {
  ChainState& st = chain_states_[static_cast<size_t>(chain)];
  const plan::ChainInfo& info = compiled_->chain(chain);
  DQS_CHECK_MSG(!st.done && !st.degraded && !CSchedulable(chain),
                "illegal degradation of chain %s", info.name.c_str());
  DQS_CHECK_MSG(fragment(chain).stats().consumed == 0,
                "degradation of started chain %s", info.name.c_str());

  st.degraded = true;
  st.mf_temp = ctx.temps.Create("mf_" + info.name);
  owned_temps_.push_back(st.mf_temp);
  ++degradations_;
  ++structural_version_;

  // MF(p): the wrapper's output through the chain's leading filters ("the
  // first scan operator of p, if any") into the temp.
  FragmentSpec spec;
  spec.name = "MF(" + info.name + ")";
  spec.ops.assign(info.ops.begin(),
                  info.ops.begin() + st.leading_filters);
  spec.sink = SinkKind::kTemp;
  spec.sink_temp = st.mf_temp;
  spec.origin_chain = chain;
  spec.async_io = options_.async_io;
  spec.kernels = options_.kernels;

  FragmentSlot slot;
  slot.runtime = std::make_unique<FragmentRuntime>(
      std::move(spec), std::make_unique<QueueSource>(info.source),
      &operands_, result_);
  slot.chain = chain;
  slot.is_mf = true;
  fragments_.push_back(std::move(slot));
  st.mf_fragment = num_fragments() - 1;
  trace_.Record(ctx.clock.now(), TraceEventKind::kDegradation,
                st.mf_fragment, "MF(" + info.name + ") created");
  return st.mf_fragment;
}

void ExecutionState::ActivateCf(ChainId chain, exec::ExecContext& ctx) {
  ChainState& st = chain_states_[static_cast<size_t>(chain)];
  const plan::ChainInfo& info = compiled_->chain(chain);
  DQS_CHECK_MSG(st.degraded && !st.cf_activated && !st.done,
                "illegal CF activation of chain %s", info.name.c_str());
  st.cf_activated = true;
  ++cf_activations_;
  ++structural_version_;

  FragmentSlot& mf_slot = fragments_[static_cast<size_t>(st.mf_fragment)];
  if (!mf_slot.runtime->closed()) {
    mf_slot.runtime->Stop(ctx);  // seals the materialized prefix
  }
  mf_slot.active = false;

  // CF(p): materialized prefix (leading filters pre-applied) then the live
  // remainder of the wrapper stream, through the full op list.
  FragmentSpec spec = BaseSpecFor(chain);
  spec.name = "CF(" + info.name + ")";
  spec.temp_skip_ops = st.leading_filters;
  auto source = std::make_unique<ConcatSource>(
      std::make_unique<TempSource>(st.mf_temp, options_.async_io),
      std::make_unique<QueueSource>(info.source));

  FragmentSlot& slot = fragments_[static_cast<size_t>(chain)];
  DQS_CHECK_MSG(slot.runtime->stats().consumed == 0,
                "CF activation over a started chain %s", info.name.c_str());
  slot.runtime = std::make_unique<FragmentRuntime>(
      std::move(spec), std::move(source), &operands_, result_);
  trace_.Record(ctx.clock.now(), TraceEventKind::kCfActivation, chain,
                "CF(" + info.name + ") resumes from the materialized "
                "prefix");
}

Status ExecutionState::SplitForMemory(ChainId chain, exec::ExecContext& ctx,
                                      int64_t budget_bytes) {
  ChainState& st = chain_states_[static_cast<size_t>(chain)];
  const plan::ChainInfo& info = compiled_->chain(chain);
  FragmentSlot& slot = fragments_[static_cast<size_t>(chain)];
  FragmentRuntime& current = *slot.runtime;
  DQS_CHECK_MSG(!st.done, "illegal split of finished chain %s",
                info.name.c_str());
  const FragmentSpec base = current.spec();

  // Cut the op list so each stage's probe-operand memory fits the budget.
  struct StageDraft {
    std::vector<plan::ChainOp> ops;
    int64_t bytes = 0;
    bool has_probe = false;
  };
  std::vector<StageDraft> drafts(1);
  for (const plan::ChainOp& op : base.ops) {
    if (op.kind == plan::ChainOpKind::kProbe) {
      const int64_t need = operands_.Get(op.join).BytesToLoad(ctx);
      if (need > budget_bytes) {
        return Status::ResourceExhausted(
            "operand of join " + std::to_string(op.join) + " needs " +
            std::to_string(need) + " bytes alone; budget " +
            std::to_string(budget_bytes));
      }
      StageDraft& cur = drafts.back();
      if (cur.has_probe && cur.bytes + need > budget_bytes) {
        drafts.emplace_back();
      }
      drafts.back().bytes += need;
      drafts.back().has_probe = true;
    }
    drafts.back().ops.push_back(op);
  }
  if (drafts.size() < 2) {
    return Status::ResourceExhausted(
        "splitting chain " + info.name +
        " cannot relieve the overflow: its probe operands already fit " +
        std::to_string(budget_bytes) + " bytes together");
  }
  ++dqo_splits_;
  ++structural_version_;

  // Materialize drafts into fragment specs chained through temps. New
  // stages go to the FRONT of the pending queue: a re-split of the current
  // stage must run before previously staged work.
  std::unique_ptr<ChainSource> first_source = current.TakeSource();
  std::vector<PendingStage> new_stages;
  TempId prev_temp = kInvalidId;
  for (size_t i = 0; i < drafts.size(); ++i) {
    FragmentSpec spec;
    spec.name = base.name + "/s" + std::to_string(split_serial_++);
    spec.ops = std::move(drafts[i].ops);
    spec.origin_chain = chain;
    spec.async_io = base.async_io;
    spec.kernels = base.kernels;
    if (i + 1 < drafts.size()) {
      spec.sink = SinkKind::kTemp;
      spec.sink_temp = ctx.temps.Create("split_" + spec.name);
      owned_temps_.push_back(spec.sink_temp);
    } else {
      spec.sink = base.sink;
      spec.sink_join = base.sink_join;
      spec.sink_temp = base.sink_temp;
    }
    if (i == 0) {
      spec.temp_skip_ops = base.temp_skip_ops;
      slot.runtime = std::make_unique<FragmentRuntime>(
          std::move(spec), std::move(first_source), &operands_,
          &ctx_->result);
      prev_temp = slot.runtime->spec().sink_temp;
    } else {
      PendingStage stage;
      stage.input_temp = prev_temp;
      prev_temp = spec.sink_temp;
      stage.spec = std::move(spec);
      new_stages.push_back(std::move(stage));
    }
  }
  st.stages.insert(st.stages.begin(),
                   std::make_move_iterator(new_stages.begin()),
                   std::make_move_iterator(new_stages.end()));
  trace_.Record(ctx.clock.now(), TraceEventKind::kDqoSplit, chain,
                info.name + " split into " +
                    std::to_string(new_stages.size() + 1) + " stages");
  return Status::Ok();
}

void ExecutionState::RebindChainToTemp(ChainId chain, TempId temp,
                                       exec::ExecContext& ctx) {
  FragmentSlot& slot = fragments_[static_cast<size_t>(chain)];
  DQS_CHECK_MSG(slot.runtime->stats().consumed == 0,
                "rebind of started chain %d", chain);
  (void)ctx;
  ++structural_version_;
  slot.runtime = std::make_unique<FragmentRuntime>(
      BaseSpecFor(chain),
      std::make_unique<TempSource>(temp, options_.async_io), &operands_,
      &ctx_->result);
}

void ExecutionState::BindChainToCachedSegment(ChainId chain, TempId temp,
                                              exec::ExecContext& ctx) {
  ChainState& st = chain_states_[static_cast<size_t>(chain)];
  const plan::ChainInfo& info = compiled_->chain(chain);
  FragmentSlot& slot = fragments_[static_cast<size_t>(chain)];
  DQS_CHECK_MSG(!st.done && !st.degraded && !st.cache_bound,
                "illegal cache bind of chain %s", info.name.c_str());
  DQS_CHECK_MSG(slot.runtime->stats().consumed == 0,
                "cache bind of started chain %s", info.name.c_str());
  DQS_CHECK_MSG(ctx.temps.IsSealed(temp), "cache bind to unsealed temp %d",
                temp);
  st.cache_bound = true;
  ++cache_bound_;
  ++structural_version_;
  owned_temps_.push_back(temp);

  // Same shape as CF(p) over a finished MF: the segment carries the
  // leading filters pre-applied, so the fragment skips them on temp
  // batches. There is no live remainder — the caller closed the source.
  FragmentSpec spec = BaseSpecFor(chain);
  spec.name = info.name + "/cached";
  spec.temp_skip_ops = st.leading_filters;
  slot.runtime = std::make_unique<FragmentRuntime>(
      std::move(spec), std::make_unique<TempSource>(temp, options_.async_io),
      &operands_, result_);
  trace_.Record(ctx.clock.now(), TraceEventKind::kCacheHit, chain,
                info.name + " rebound to cached segment");
}

bool ExecutionState::CacheBound(ChainId chain) const {
  return chain_states_[static_cast<size_t>(chain)].cache_bound;
}

bool ExecutionState::CacheProbed(ChainId chain) const {
  return chain_states_[static_cast<size_t>(chain)].cache_probed;
}

void ExecutionState::SetCacheProbed(ChainId chain) {
  chain_states_[static_cast<size_t>(chain)].cache_probed = true;
}

bool ExecutionState::MfComplete(ChainId chain) const {
  return chain_states_[static_cast<size_t>(chain)].mf_complete;
}

int ExecutionState::CreateMaterializeAll(SourceId source,
                                         exec::ExecContext& ctx) {
  if (ma_temps_.empty()) {
    ma_temps_.assign(static_cast<size_t>(ctx.comm.num_sources()), kInvalidId);
  }
  DQS_CHECK_MSG(MaTempOf(source) == kInvalidId,
                "source %d materialized twice", source);
  ++structural_version_;
  FragmentSpec spec;
  spec.name = "MA(src" + std::to_string(source) + ")";
  spec.sink = SinkKind::kTemp;
  spec.sink_temp = ctx.temps.Create(spec.name);
  owned_temps_.push_back(spec.sink_temp);
  spec.async_io = options_.async_io;
  spec.kernels = options_.kernels;
  ma_temps_[static_cast<size_t>(source)] = spec.sink_temp;

  FragmentSlot slot;
  slot.runtime = std::make_unique<FragmentRuntime>(
      std::move(spec), std::make_unique<QueueSource>(source), &operands_,
      &ctx_->result);
  slot.chain = kInvalidId;
  slot.is_mf = true;
  fragments_.push_back(std::move(slot));
  return num_fragments() - 1;
}

TempId ExecutionState::MaTempOf(SourceId source) const {
  if (ma_temps_.empty()) return kInvalidId;
  return ma_temps_[static_cast<size_t>(source)];
}

void ExecutionState::OnFragmentFinished(int id, exec::ExecContext& ctx) {
  FragmentSlot& slot = fragments_[static_cast<size_t>(id)];
  DQS_CHECK_MSG(!slot.runtime->closed(), "fragment %d finished twice", id);
  ++structural_version_;
  slot.runtime->Close(ctx);
  slot.active = false;
  if (slot.is_mf && slot.chain != kInvalidId) {
    // A naturally finished MF sealed the chain's full filtered prefix —
    // exactly what the result cache may admit as a reusable segment (an
    // MF stopped by CF activation never reaches this path).
    chain_states_[static_cast<size_t>(slot.chain)].mf_complete = true;
  }
  if (!slot.is_mf && slot.chain != kInvalidId) {
    ChainState& st = chain_states_[static_cast<size_t>(slot.chain)];
    if (!st.stages.empty()) {
      PendingStage stage = std::move(st.stages.front());
      st.stages.pop_front();
      // The retiring stage's live-queue consumption must survive the
      // runtime swap or the conservation audit loses those tuples.
      st.retired_live_consumed += slot.runtime->stats().consumed_live;
      slot.runtime = std::make_unique<FragmentRuntime>(
          std::move(stage.spec),
          std::make_unique<TempSource>(stage.input_temp, options_.async_io),
          &operands_, result_);
      slot.active = true;
    } else {
      st.done = true;
    }
  }
  // Audit point (DQSCHED_AUDIT builds): fragment completion is where chain
  // states flip and operand grants are released — the conservation laws
  // must balance here.
  DQS_AUDIT(AuditExecutionState(*this, ctx));
}

void ExecutionState::Cancel(exec::ExecContext& ctx) {
  if (cancelled_) return;
  cancelled_ = true;
  ++structural_version_;
  // Release every operand grant — build- and probe-side alike. ReleaseAll
  // is idempotent and also drops operand spill temps.
  for (JoinId j = 0; j < compiled_->num_joins; ++j) {
    operands_.Get(j).ReleaseAll(ctx);
  }
  // Close every fragment without sealing its sink; the husks never
  // execute again but their stats stay readable.
  for (FragmentSlot& slot : fragments_) {
    slot.runtime->Abort();
    slot.active = false;
  }
  // Return the temp-store space of everything this query materialized.
  for (TempId t : owned_temps_) {
    if (!ctx.temps.IsDropped(t)) ctx.temps.Drop(t);
  }
  trace_.Record(ctx.clock.now(), TraceEventKind::kCancelled, kInvalidId,
                "query cancelled; grants released, temps dropped");
  // The conservation laws must still balance on the cancelled husk.
  DQS_AUDIT(AuditExecutionState(*this, ctx));
}

std::vector<std::string> ExecutionState::FragmentNames() const {
  std::vector<std::string> names;
  names.reserve(fragments_.size());
  for (const FragmentSlot& slot : fragments_) {
    names.push_back(slot.runtime->name());
  }
  return names;
}

double ExecutionState::FragmentCpuPerTupleNs(int id) const {
  const FragmentSlot& slot = fragments_[static_cast<size_t>(id)];
  const auto& cost = *ctx_->cost;
  if (slot.is_mf || slot.chain == kInvalidId) {
    // Receive + scan move + sink move + amortized I/O issue cost.
    return static_cast<double>(cost.ReceiveTupleCpuTime()) +
           2.0 * static_cast<double>(cost.InstrTime(cost.instr_move_tuple)) +
           static_cast<double>(cost.InstrTime(cost.instr_per_io)) /
               (static_cast<double>(cost.disk_chunk_pages) *
                cost.TuplesPerPage());
  }
  return compiled_->chain(slot.chain).est_cpu_per_tuple_ns;
}

int64_t ExecutionState::FragmentRemainingLive(
    int id, const exec::ExecContext& ctx) const {
  const FragmentSlot& slot = fragments_[static_cast<size_t>(id)];
  const SourceId src = slot.runtime->source().remote_source();
  if (src == kInvalidId) return 0;
  return ctx.comm.RemainingTuples(src);
}

}  // namespace dqsched::core
