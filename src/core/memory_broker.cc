#include "core/memory_broker.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"

namespace dqsched::core {

const char* FairnessClassName(FairnessClass c) {
  switch (c) {
    case FairnessClass::kInteractive:
      return "interactive";
    case FairnessClass::kBatch:
      return "batch";
  }
  return "unknown";
}

void MemoryBroker::Submit(const Request& request) {
  DQS_CHECK(request.est_bytes >= 1);
  std::lock_guard<std::mutex> lock(mu_);
  pending_requests_.push_back(request);
}

void MemoryBroker::Submit(const Release& release) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_releases_.push_back(release);
}

bool MemoryBroker::Fits(const QueuedRequest& qr) const {
  if (outstanding_bytes_ == 0) return true;
  return outstanding_bytes_ + qr.request.est_bytes <=
         config_.total_budget_bytes;
}

void MemoryBroker::Admit(std::deque<QueuedRequest>* queue,
                         std::vector<std::vector<Grant>>* out, bool forced) {
  QueuedRequest qr = std::move(queue->front());
  queue->pop_front();
  Grant grant;
  grant.uid = qr.request.uid;
  grant.est_bytes = qr.request.est_bytes;
  grant.granted_at = qr.waited
                         ? std::max(qr.request.arrival, last_freed_at_)
                         : qr.request.arrival;
  outstanding_bytes_ += qr.request.est_bytes;
  stats_.peak_outstanding_bytes =
      std::max(stats_.peak_outstanding_bytes, outstanding_bytes_);
  ++stats_.grants_issued;
  if (grant.granted_at > qr.request.arrival) ++stats_.queued_admissions;
  if (forced) ++stats_.forced_admissions;
  (*out)[static_cast<size_t>(qr.request.shard)].push_back(grant);
}

void MemoryBroker::ShedExpired(std::deque<QueuedRequest>* queue,
                               std::vector<Request>* shed) {
  std::deque<QueuedRequest> kept;
  for (QueuedRequest& qr : *queue) {
    // The earliest stamp this request can still be granted at; monotone
    // in last_freed_at_, so once it reaches the deadline it stays there.
    const SimTime earliest =
        qr.waited ? std::max(qr.request.arrival, last_freed_at_)
                  : qr.request.arrival;
    if (qr.request.deadline > 0 && earliest >= qr.request.deadline) {
      ++stats_.shed_requests;
      if (shed != nullptr) shed->push_back(qr.request);
    } else {
      kept.push_back(std::move(qr));
    }
  }
  queue->swap(kept);
}

std::vector<std::vector<MemoryBroker::Grant>> MemoryBroker::Arbitrate(
    int num_shards, std::vector<Request>* shed) {
  std::vector<Request> requests;
  std::vector<Release> releases;
  {
    std::lock_guard<std::mutex> lock(mu_);
    requests.swap(pending_requests_);
    releases.swap(pending_releases_);
  }
  // Canonical event order: thread interleaving decided only *when* an
  // event landed in the inbox, never its position here.
  std::sort(releases.begin(), releases.end(),
            [](const Release& a, const Release& b) {
              return a.completed_at != b.completed_at
                         ? a.completed_at < b.completed_at
                         : a.uid < b.uid;
            });
  std::sort(requests.begin(), requests.end(),
            [](const Request& a, const Request& b) {
              return a.arrival != b.arrival ? a.arrival < b.arrival
                                            : a.uid < b.uid;
            });

  for (const Release& r : releases) {
    DQS_CHECK_MSG(outstanding_bytes_ >= r.bytes,
                  "broker released more than outstanding");
    outstanding_bytes_ -= r.bytes;
    last_freed_at_ = std::max(last_freed_at_, r.completed_at);
    ++stats_.releases_applied;
  }
  const bool freed_this_round = !releases.empty();
  for (Request& r : requests) {
    std::deque<QueuedRequest>& queue =
        r.fairness == FairnessClass::kInteractive ? interactive_ : batch_;
    QueuedRequest qr;
    qr.request = r;
    // The arrival-stamped carve-out: only a request that joins an empty
    // class queue in a round that needed no release can claim it found
    // room the moment it arrived.
    qr.waited = freed_this_round || !queue.empty();
    queue.push_back(std::move(qr));
  }
  stats_.peak_queued_requests = std::max(
      stats_.peak_queued_requests,
      static_cast<int64_t>(interactive_.size() + batch_.size()));

  // Deadline-aware admission: drop requests that can no longer win
  // before spending budget on them.
  ShedExpired(&interactive_, shed);
  ShedExpired(&batch_, shed);

  std::vector<std::vector<Grant>> out(static_cast<size_t>(num_shards));
  while (true) {
    if (!interactive_.empty() && Fits(interactive_.front())) {
      Admit(&interactive_, &out, /*forced=*/false);
    } else if (!batch_.empty() && Fits(batch_.front())) {
      Admit(&batch_, &out, /*forced=*/false);
    } else {
      break;
    }
  }
  for (QueuedRequest& qr : interactive_) qr.waited = true;
  for (QueuedRequest& qr : batch_) qr.waited = true;
  return out;
}

std::vector<std::vector<MemoryBroker::Grant>> MemoryBroker::ForceAdmit(
    int num_shards) {
  DQS_CHECK_MSG(HasQueued(), "ForceAdmit with no queued request");
  std::vector<std::vector<Grant>> out(static_cast<size_t>(num_shards));
  Admit(interactive_.empty() ? &batch_ : &interactive_, &out,
        /*forced=*/true);
  return out;
}

bool MemoryBroker::HasQueued() const {
  return !interactive_.empty() || !batch_.empty();
}

void MemoryBroker::ReportReclaimable(int shard, int64_t bytes) {
  DQS_CHECK(shard >= 0 && bytes >= 0);
  if (reclaimable_by_shard_.size() <= static_cast<size_t>(shard)) {
    reclaimable_by_shard_.resize(static_cast<size_t>(shard) + 1, 0);
  }
  reclaimable_by_shard_[static_cast<size_t>(shard)] = bytes;
}

std::vector<int64_t> MemoryBroker::ReclaimTargets(int num_shards) const {
  std::vector<int64_t> targets(static_cast<size_t>(num_shards), 0);
  int64_t cached_total = 0;
  for (size_t s = 0; s < reclaimable_by_shard_.size(); ++s) {
    cached_total += reclaimable_by_shard_[s];
  }
  int64_t excess = outstanding_bytes_ + cached_total -
                   config_.total_budget_bytes;
  if (excess <= 0) return targets;
  // Greedy largest-cache-first (shard id breaks ties), so trims
  // concentrate on the shards hoarding the most — and the order is a
  // pure function of the reported sizes.
  std::vector<int> order;
  for (int s = 0; s < num_shards &&
                  static_cast<size_t>(s) < reclaimable_by_shard_.size();
       ++s) {
    if (reclaimable_by_shard_[static_cast<size_t>(s)] > 0) {
      order.push_back(s);
    }
  }
  std::sort(order.begin(), order.end(), [this](int a, int b) {
    const int64_t ca = reclaimable_by_shard_[static_cast<size_t>(a)];
    const int64_t cb = reclaimable_by_shard_[static_cast<size_t>(b)];
    return ca != cb ? ca > cb : a < b;
  });
  for (int s : order) {
    if (excess <= 0) break;
    const int64_t take =
        std::min(excess, reclaimable_by_shard_[static_cast<size_t>(s)]);
    targets[static_cast<size_t>(s)] = take;
    excess -= take;
  }
  return targets;
}

}  // namespace dqsched::core
