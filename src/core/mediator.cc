#include "core/mediator.h"

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "common/macros.h"
#include "core/dphj.h"
#include "core/scrambling.h"
#include "core/execution_state.h"
#include "exec/exec_context.h"
#include "wrapper/wrapper.h"

namespace dqsched::core {

namespace {

/// Stable per-source seed derivation: data and delay draws must be
/// identical across strategies and across hosts.
uint64_t SourceSeed(uint64_t base, SourceId source, uint64_t salt) {
  return storage::Mix64(base ^ (static_cast<uint64_t>(source) + 1) * salt);
}

constexpr uint64_t kDataSalt = 0x9e3779b97f4a7c15ULL;
constexpr uint64_t kDelaySalt = 0xc2b2ae3d27d4eb4fULL;
// Fault models draw from their own salted stream: arming a fault schedule
// must not shift a single data or delay draw.
constexpr uint64_t kFaultSalt = 0xa0761d6478bd642fULL;

/// Serializes everything the oracle's answer depends on: the data
/// generator inputs (relation specs + seed) and the compiled chain
/// structure. Annotations are excluded — the reference executor never
/// reads estimates. Valid only because Create() derives `data` from
/// exactly these inputs.
std::string ReferenceKey(const plan::CompiledPlan& compiled,
                         const wrapper::Catalog& catalog, uint64_t seed) {
  std::string key;
  key.reserve(512);
  auto raw = [&key](const void* p, size_t n) {
    key.append(static_cast<const char*>(p), n);
  };
  auto i64 = [&raw](int64_t v) { raw(&v, sizeof v); };
  auto f64 = [&raw](double v) { raw(&v, sizeof v); };
  i64(static_cast<int64_t>(seed));
  i64(catalog.num_sources());
  for (const wrapper::SourceSpec& s : catalog.sources) {
    i64(s.relation.cardinality);
    for (int64_t d : s.relation.key_domain) i64(d);
  }
  i64(compiled.result_chain);
  i64(compiled.num_joins);
  for (ChainId c : compiled.operand_of_join) i64(c);
  for (int f : compiled.join_build_field) i64(f);
  for (const plan::ChainInfo& c : compiled.chains) {
    i64(c.source);
    i64(c.is_result ? 1 : 0);
    i64(c.sink_join);
    i64(c.build_key_field);
    i64(static_cast<int64_t>(c.ops.size()));
    for (const plan::ChainOp& op : c.ops) {
      i64(static_cast<int64_t>(op.kind));
      i64(op.node);
      f64(op.selectivity);
      i64(op.join);
      i64(op.probe_key_field);
    }
  }
  return key;
}

/// Bench grids build many Mediators whose cells differ only in delay or
/// strategy configuration; the oracle run (and its exact result) is
/// identical across all of them. Memoize it process-wide — the reference
/// executor is host-side verification with no simulated cost attached, so
/// this changes no metric. The miss path runs outside the lock; a losing
/// racer simply discards its duplicate. Entries are never erased, so the
/// returned reference stays valid for the process lifetime.
const plan::ReferenceResult& CachedReference(
    const plan::CompiledPlan& compiled,
    const std::vector<storage::Relation>& data,
    const wrapper::Catalog& catalog, uint64_t seed) {
  static std::mutex mu;
  // Sorted keys (std::map), not a hash map: lookup cost is irrelevant for
  // a per-grid memo, and no unordered container sits anywhere near result
  // state (dqs-analyze rule unordered-iter keeps it that way).
  static std::map<std::string, std::unique_ptr<plan::ReferenceResult>> memo;
  std::string key = ReferenceKey(compiled, catalog, seed);
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = memo.find(key);
    if (it != memo.end()) return *it->second;
  }
  auto computed = std::make_unique<plan::ReferenceResult>(
      plan::ExecuteReference(compiled, data));
  std::lock_guard<std::mutex> lock(mu);
  auto [it, inserted] = memo.emplace(std::move(key), std::move(computed));
  return *it->second;
}

}  // namespace

Result<Mediator> Mediator::Create(wrapper::Catalog catalog, plan::Plan plan,
                                  MediatorConfig config) {
  DQS_RETURN_IF_ERROR(config.cost.Validate());
  DQS_RETURN_IF_ERROR(catalog.Validate());
  if (config.memory_budget_bytes <= 0) {
    return Status::InvalidArgument("memory budget must be > 0");
  }
  if (config.strategy.dqp.batch_size <= 0) {
    return Status::InvalidArgument("batch size must be > 0");
  }
  if (config.query_deadline < 0) {
    return Status::InvalidArgument("query deadline must be >= 0");
  }
  // Arm the failure detector exactly when a source can misbehave: with no
  // schedule anywhere, every fault code path stays dormant and the run is
  // bit-identical to a build without the fault layer.
  for (const wrapper::SourceSpec& s : catalog.sources) {
    if (!s.faults.empty()) {
      config.comm.failure_detection = true;
      break;
    }
  }

  Result<plan::CompiledPlan> compiled = plan::Compile(plan, catalog);
  if (!compiled.ok()) return compiled.status();
  DQS_RETURN_IF_ERROR(plan::Annotate(&compiled.value(), catalog, config.cost));

  std::vector<storage::Relation> data;
  data.reserve(static_cast<size_t>(catalog.num_sources()));
  for (SourceId s = 0; s < catalog.num_sources(); ++s) {
    data.push_back(storage::GenerateRelation(
        catalog.source(s).relation, s,
        Rng(SourceSeed(config.seed, s, kDataSalt))));
  }

  plan::ReferenceResult reference =
      CachedReference(compiled.value(), data, catalog, config.seed);

  // Replay each wrapper's delay draws: the realized retrieval totals make
  // the lower bound tight for this exact workload instance.
  std::vector<double> realized;
  realized.reserve(static_cast<size_t>(catalog.num_sources()));
  for (SourceId s = 0; s < catalog.num_sources(); ++s) {
    Rng rng(SourceSeed(config.seed, s, kDelaySalt));
    auto model = wrapper::MakeDelayModel(catalog.source(s).delay);
    double total = 0.0;
    const int64_t n = catalog.source(s).relation.cardinality;
    for (int64_t i = 0; i < n; ++i) {
      total += static_cast<double>(model->NextDelay(i, rng));
    }
    realized.push_back(total);
  }

  return Mediator(std::move(catalog), std::move(config),
                  std::move(compiled.value()), std::move(data),
                  std::move(reference), std::move(realized));
}

void Mediator::SetupContext(exec::ExecContext& ctx) const {
  for (SourceId s = 0; s < catalog_.num_sources(); ++s) {
    auto w = std::make_unique<wrapper::SimWrapper>(
        s, &data_[static_cast<size_t>(s)], catalog_.source(s).delay,
        SourceSeed(config_.seed, s, kDelaySalt));
    if (!catalog_.source(s).faults.empty()) {
      w->SetFaultSchedule(catalog_.source(s).faults,
                          SourceSeed(config_.seed, s, kFaultSalt));
    }
    // The pre-observation prior a static optimizer would assume: delivery
    // at full speed (the paper's w_min).
    ctx.comm.AddSource(std::move(w),
                       static_cast<double>(config_.cost.MinWaitingTime()));
  }
}

Status Mediator::VerifyAgainstReference(const ExecutionMetrics& metrics,
                                        const char* label) const {
  if (!config_.verify_results) return Status::Ok();
  if (metrics.result_count != reference_.result_card ||
      metrics.result_checksum != reference_.checksum.value()) {
    return Status::Internal(std::string("result mismatch under ") + label +
                            ": got " + std::to_string(metrics.result_count) +
                            " tuples, expected " +
                            std::to_string(reference_.result_card));
  }
  return Status::Ok();
}

Result<Mediator::TracedExecution> Mediator::ExecuteWithOptions(
    StrategyKind kind, bool trace) const {
  exec::ExecContext ctx(&config_.cost, config_.comm,
                        config_.memory_budget_bytes);
  SetupContext(ctx);

  // Per-run cache (see MediatorConfig::cache): fresh, so the run is
  // always cold — epoch gating keeps its own admissions invisible — and
  // Execute's determinism contract holds with caching on or off.
  CacheManager run_cache(config_.cache);
  struct Detach {
    CacheManager* cache = nullptr;
    ~Detach() {
      if (cache != nullptr) cache->DetachAccountant();
    }
  } detach;

  ExecutionOptions options = OptionsFor(kind);
  options.trace = trace;
  options.kernels = config_.kernels;
  if (config_.cache.enabled) {
    run_cache.AttachAccountant(&ctx.memory);
    detach.cache = &run_cache;
    run_cache.BeginRun();
    options.cache = &run_cache;
  }
  ExecutionState state(&compiled_, &ctx, options);
  StrategyConfig strategy = config_.strategy;
  if (config_.query_deadline > 0) {
    strategy.dqp.deadline = config_.query_deadline;
  }
  Result<ExecutionMetrics> metrics = RunStrategy(kind, state, ctx, strategy);
  if (!metrics.ok()) return metrics.status();
  if (!metrics->fault.partial_result) {
    DQS_RETURN_IF_ERROR(VerifyAgainstReference(*metrics, StrategyName(kind)));
  }
  if (config_.cache.enabled) {
    run_cache.AdmitQuery(state, ctx, !metrics->fault.partial_result);
    metrics->cache = run_cache.stats();
  }
  TracedExecution out;
  out.metrics = std::move(metrics.value());
  out.trace = std::move(state.trace());
  out.fragment_names = state.FragmentNames();
  return out;
}

Result<ExecutionMetrics> Mediator::Execute(StrategyKind kind) const {
  Result<TracedExecution> run = ExecuteWithOptions(kind, /*trace=*/false);
  if (!run.ok()) return run.status();
  return std::move(run->metrics);
}

Result<Mediator::TracedExecution> Mediator::ExecuteTraced(
    StrategyKind kind) const {
  return ExecuteWithOptions(kind, /*trace=*/true);
}

Result<ExecutionMetrics> Mediator::ExecuteScrambling(
    SimDuration timeout) const {
  exec::ExecContext ctx(&config_.cost, config_.comm,
                        config_.memory_budget_bytes);
  SetupContext(ctx);
  // Scrambling shares DSE's asynchronous-I/O fragments (it also
  // materializes to overlap), but not its rate-driven planning.
  ExecutionOptions options = OptionsFor(StrategyKind::kDse);
  options.kernels = config_.kernels;
  ExecutionState state(&compiled_, &ctx, options);
  ScramblingConfig scr;
  scr.timeout = timeout;
  scr.batch_size = config_.strategy.dqp.batch_size;
  scr.deadline = config_.query_deadline;
  Result<ExecutionMetrics> metrics = RunScrambling(state, ctx, scr);
  if (!metrics.ok()) return metrics;
  if (!metrics->fault.partial_result) {
    DQS_RETURN_IF_ERROR(VerifyAgainstReference(*metrics, "SCR"));
  }
  return metrics;
}

Result<ExecutionMetrics> Mediator::ExecuteDphj() const {
  exec::ExecContext ctx(&config_.cost, config_.comm,
                        config_.memory_budget_bytes);
  SetupContext(ctx);
  DphjConfig dphj;
  dphj.batch_size = config_.strategy.dqp.batch_size;
  Result<ExecutionMetrics> metrics = RunDphj(compiled_, ctx, dphj);
  if (!metrics.ok()) return metrics;
  DQS_RETURN_IF_ERROR(VerifyAgainstReference(*metrics, "DPHJ"));
  return metrics;
}

LwbBreakdown Mediator::LowerBound() const {
  return ComputeLwb(compiled_, reference_, catalog_, config_.cost,
                    realized_retrieval_ns_);
}

}  // namespace dqsched::core
