#include "core/circuit_breaker.h"

#include <algorithm>

#include "common/macros.h"

namespace dqsched::core {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

BreakerState CircuitBreaker::state(SimTime now) const {
  if (state_ == BreakerState::kOpen &&
      now >= opened_at_ + (current_cooldown_ > 0 ? current_cooldown_
                                                 : config_.cooldown)) {
    return BreakerState::kHalfOpen;
  }
  return state_;
}

void CircuitBreaker::Trip(SimTime now) {
  const SimDuration base =
      current_cooldown_ > 0 ? current_cooldown_ : config_.cooldown;
  if (state_ == BreakerState::kHalfOpen ||
      (state_ == BreakerState::kOpen && probe_in_flight_)) {
    // A probe failed: back the cooldown off before the next one.
    current_cooldown_ = std::min(
        config_.max_cooldown,
        static_cast<SimDuration>(static_cast<double>(base) *
                                 config_.cooldown_backoff));
    ++stats_.reopens;
  } else {
    current_cooldown_ = config_.cooldown;
    ++stats_.trips;
  }
  state_ = BreakerState::kOpen;
  opened_at_ = now;
  probe_in_flight_ = false;
  consecutive_suspicions_ = 0;
}

void CircuitBreaker::OnSuspected(SimTime now) {
  switch (state(now)) {
    case BreakerState::kClosed:
      if (++consecutive_suspicions_ >= config_.trip_suspicions) Trip(now);
      break;
    case BreakerState::kHalfOpen:
      Trip(now);  // the probe ran into the outage again
      break;
    case BreakerState::kOpen:
      break;  // already known-bad
  }
}

void CircuitBreaker::OnDead(SimTime now) {
  if (state(now) == BreakerState::kOpen) return;
  Trip(now);
}

void CircuitBreaker::OnRecovered(SimTime now) {
  consecutive_suspicions_ = 0;
  if (state(now) == BreakerState::kHalfOpen ||
      (state_ == BreakerState::kOpen && probe_in_flight_)) {
    ++stats_.resets;
  } else if (state_ != BreakerState::kClosed) {
    // Recovery observed by a query that was already running against the
    // source (not a probe): take it — the outage is over.
    ++stats_.resets;
  }
  state_ = BreakerState::kClosed;
  probe_in_flight_ = false;
  current_cooldown_ = 0;
}

void CircuitBreaker::OnProbeAborted(SimTime now) {
  if (!probe_in_flight_) return;
  Trip(now);  // counted as a reopen: the probe failed to prove recovery
}

bool CircuitBreaker::Allow(SimTime now) {
  switch (state(now)) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kHalfOpen:
      if (probe_in_flight_) return false;
      // Commit the lazy open -> half-open transition and admit the probe.
      state_ = BreakerState::kHalfOpen;
      probe_in_flight_ = true;
      ++stats_.probes;
      return true;
    case BreakerState::kOpen:
      return false;
  }
  return true;
}

BreakerPanel::BreakerPanel(int num_keys, const BreakerConfig& config) {
  DQS_CHECK(num_keys >= 0);
  breakers_.assign(static_cast<size_t>(num_keys), CircuitBreaker(config));
}

CircuitBreaker& BreakerPanel::Of(int key) {
  DQS_CHECK_MSG(key >= 0 && key < size(), "bad breaker key %d", key);
  return breakers_[static_cast<size_t>(key)];
}

const CircuitBreaker& BreakerPanel::Of(int key) const {
  return const_cast<BreakerPanel*>(this)->Of(key);
}

BreakerStats BreakerPanel::TotalStats() const {
  BreakerStats total;
  for (const CircuitBreaker& b : breakers_) total += b.stats();
  return total;
}

int BreakerPanel::OpenCount(SimTime now) const {
  int open = 0;
  for (const CircuitBreaker& b : breakers_) {
    if (b.state(now) != BreakerState::kClosed) ++open;
  }
  return open;
}

}  // namespace dqsched::core
