// DSE: Dynamic Scheduling Execution — the paper's contribution. The
// general loop of Section 3.1: planning phases (DQS) interleaved with
// execution phases (DQP), with the DQO revising the plan on memory
// overflow and recording timeout escalations.

#include "core/strategy_internal.h"

#include "common/macros.h"

namespace dqsched::core::internal {

Result<ExecutionMetrics> RunDseImpl(ExecutionState& state,
                                    exec::ExecContext& ctx,
                                    const StrategyConfig& config) {
  Dqs dqs(config.dqs);
  Dqp dqp(config.dqp);
  Dqo dqo;
  StrategyCounters counters;

  int64_t guard = 0;
  while (!state.QueryDone()) {
    DQS_CHECK_MSG(++guard < (1LL << 40), "DSE livelock");
    Result<SchedulingPlan> sp = dqs.ComputePlan(state, ctx, dqo);
    if (!sp.ok()) return sp.status();
    Result<Event> evt = dqp.RunPhase(state, *sp, ctx);
    if (!evt.ok()) return evt.status();
    switch (evt->kind) {
      case EventKind::kEndOfQf:
        state.OnFragmentFinished(evt->fragment, ctx);
        break;
      case EventKind::kRateChange:
        ++counters.rate_changes;
        break;  // replan with fresh estimates
      case EventKind::kTimeout:
        ++counters.timeouts;
        dqo.OnTimeout();  // phase-2 re-optimization hook
        break;
      case EventKind::kMemoryOverflow:
        DQS_RETURN_IF_ERROR(dqo.HandleMemoryOverflow(
            state, ctx, state.FragmentChain(evt->fragment)));
        break;
      case EventKind::kPlanExhausted:
        break;  // replan
      case EventKind::kSliceEnd:
      case EventKind::kStarved:
        return Status::Internal("multi-query event in single-query DSE");
    }
  }
  return CollectMetrics(ctx, state, &dqs, dqp, dqo, counters);
}

}  // namespace dqsched::core::internal
