// DSE: Dynamic Scheduling Execution — the paper's contribution. The
// general loop of Section 3.1: planning phases (DQS) interleaved with
// execution phases (DQP), with the DQO revising the plan on memory
// overflow and recording timeout escalations.

#include "core/strategy_internal.h"

#include "common/macros.h"

namespace dqsched::core::internal {

Result<ExecutionMetrics> RunDseImpl(ExecutionState& state,
                                    exec::ExecContext& ctx,
                                    const StrategyConfig& config) {
  Dqs dqs(config.dqs);
  Dqp dqp(config.dqp);
  Dqo dqo;
  StrategyCounters counters;

  int64_t guard = 0;
  while (!state.QueryDone()) {
    DQS_CHECK_MSG(++guard < (1LL << 40), "DSE livelock");
    Result<SchedulingPlan> sp = dqs.ComputePlan(state, ctx, dqo);
    if (!sp.ok()) return sp.status();
    Result<Event> evt = dqp.RunPhase(state, *sp, ctx);
    if (!evt.ok()) return evt.status();
    switch (evt->kind) {
      case EventKind::kEndOfQf:
        state.OnFragmentFinished(evt->fragment, ctx);
        break;
      case EventKind::kRateChange:
        ++counters.rate_changes;
        break;  // replan with fresh estimates
      case EventKind::kTimeout:
        ++counters.timeouts;
        dqo.OnTimeout();  // phase-2 re-optimization hook
        break;
      case EventKind::kMemoryOverflow:
        DQS_RETURN_IF_ERROR(dqo.HandleMemoryOverflow(
            state, ctx, state.FragmentChain(evt->fragment)));
        break;
      case EventKind::kPlanExhausted:
        break;  // replan
      case EventKind::kSourceDown:
        ++counters.source_down_events;
        if (ctx.comm.SourceDead(evt->source)) {
          if (!config.fault.partial_results) {
            return Status::Unavailable("source " +
                                       std::to_string(evt->source) +
                                       " declared dead");
          }
          // Partial-result policy: give the stream up. Its chain drains
          // what arrived and completes; downstream joins see a subset.
          ctx.comm.AbandonSource(evt->source);
          ++counters.sources_abandoned;
          counters.partial_result = true;
        }
        // Mere suspicion: replan — the suspected chain has lost its
        // critical priority and blocked chains may degrade to MFs.
        break;
      case EventKind::kSourceRecovered:
        ++counters.source_recovered_events;
        break;  // replan with the chain's priority restored
      case EventKind::kDeadlineExceeded:
        counters.deadline_hit = true;
        if (!config.fault.partial_results) {
          return Status::DeadlineExceeded("query deadline expired");
        }
        counters.partial_result = true;
        return CollectMetrics(ctx, state, &dqs, dqp, dqo, counters);
      case EventKind::kSliceEnd:
      case EventKind::kStarved:
        return Status::Internal("multi-query event in single-query DSE");
    }
  }
  return CollectMetrics(ctx, state, &dqs, dqp, dqo, counters);
}

}  // namespace dqsched::core::internal
