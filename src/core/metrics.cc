#include "core/metrics.h"

#include <cstdio>

namespace dqsched::core {

const char* QueryStatusName(QueryStatus status) {
  switch (status) {
    case QueryStatus::kOk:
      return "ok";
    case QueryStatus::kPartial:
      return "partial";
    case QueryStatus::kDeadlineCancelled:
      return "deadline";
    case QueryStatus::kRetriesExhausted:
      return "retries";
    case QueryStatus::kShed:
      return "shed";
  }
  return "unknown";
}

std::string ExecutionMetrics::ToString() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "response %s (busy %s, stalled %s)\n"
      "result: %lld tuples, checksum %016llx\n"
      "planning: %lld phases (%.3f ms host), execution: %lld phases\n"
      "dynamics: %lld degradations, %lld CF activations, %lld DQO splits, "
      "%lld timeouts, %lld rate changes\n"
      "memory peak: %.1f MB | disk: %lld pages written, %lld read, "
      "%lld positionings | net: %lld msgs",
      FormatDuration(response_time).c_str(),
      FormatDuration(busy_time).c_str(),
      FormatDuration(stalled_time).c_str(),
      static_cast<long long>(result_count),
      static_cast<unsigned long long>(result_checksum),
      static_cast<long long>(planning_phases), planning_host_seconds * 1e3,
      static_cast<long long>(execution_phases),
      static_cast<long long>(degradations),
      static_cast<long long>(cf_activations),
      static_cast<long long>(dqo_splits), static_cast<long long>(timeouts),
      static_cast<long long>(rate_change_events),
      static_cast<double>(peak_memory_bytes) / (1024.0 * 1024.0),
      static_cast<long long>(disk.pages_written),
      static_cast<long long>(disk.pages_read),
      static_cast<long long>(disk.positionings),
      static_cast<long long>(network.messages_received));
  std::string out = buf;
  if (fault.any()) {
    std::snprintf(
        buf, sizeof(buf),
        "\nfaults: %lld stalls, %lld disconnects (%lld reconnects), "
        "%lld killed | detector: %lld suspected, %lld dead, %lld recovered, "
        "%lld replays discarded | %lld abandoned%s%s",
        static_cast<long long>(fault.stalls_injected),
        static_cast<long long>(fault.disconnects_injected),
        static_cast<long long>(fault.reconnects),
        static_cast<long long>(fault.sources_killed),
        static_cast<long long>(fault.sources_suspected),
        static_cast<long long>(fault.sources_dead),
        static_cast<long long>(fault.recoveries),
        static_cast<long long>(fault.replays_discarded),
        static_cast<long long>(fault.sources_abandoned),
        fault.partial_result ? ", PARTIAL RESULT" : "",
        fault.deadline_hit ? ", DEADLINE HIT" : "");
    out += buf;
  }
  if (cache.any()) {
    std::snprintf(buf, sizeof(buf),
                  "\ncache: %lld/%lld segment hits, %lld/%lld result hits, "
                  "%lld+%lld admitted, %lld stale, %lld evicted",
                  static_cast<long long>(cache.segment_hits),
                  static_cast<long long>(cache.segment_hits +
                                         cache.segment_misses),
                  static_cast<long long>(cache.result_hits),
                  static_cast<long long>(cache.result_hits +
                                         cache.result_misses),
                  static_cast<long long>(cache.admitted_segments),
                  static_cast<long long>(cache.admitted_results),
                  static_cast<long long>(cache.stale_invalidations),
                  static_cast<long long>(cache.evictions));
    out += buf;
  }
  return out;
}

}  // namespace dqsched::core
