// The shared multi-query event loop, extracted from
// MultiQueryMediator::ExecuteShared so one implementation serves both the
// single-mediator shared mode and the fleet executor's per-shard loops.
//
// N queries share one ExecContext (clock, devices, CM). Each query keeps
// its own DQS/DQP/DQO machinery and result collector; the loop round-robins
// batch slices over the undone queries (a circular ring, so finished
// queries cost nothing to skip) and detects the all-starved condition with
// an epoch-guarded per-query arrival cache plus a lazy min-heap.
//
// The loop itself never mutates the virtual clock: Step() reports the
// stall target (Turn::kAllStarved) and the *caller* owns the
// StallUntil — that keeps the charge-order discipline (DESIGN §10) in the
// two reviewed driver files (core/multi_query.cc, core/fleet_executor.cc)
// and lets the fleet cap a stall at its next query arrival.
//
// Queries may join dynamically (AddQuery between Step() calls): the fleet
// admits queries as its memory broker grants them. A joining query is
// spliced into the ring behind the current tail, so the visit order of an
// all-upfront batch is exactly the historical 0, 1, ..., N-1.

#ifndef DQSCHED_CORE_SHARED_LOOP_H_
#define DQSCHED_CORE_SHARED_LOOP_H_

#include <cstdint>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "core/dqo.h"
#include "core/dqp.h"
#include "core/dqs.h"
#include "core/execution_state.h"
#include "core/metrics.h"
#include "core/strategy.h"
#include "exec/exec_context.h"
#include "plan/compiled_plan.h"

namespace dqsched::core {

/// One query's registration in the shared loop. The compiled plan must be
/// annotated, its chain sources remapped into the context's global id
/// space, and it must outlive the loop; [source_lo, source_hi) is the
/// query's contiguous range of global source ids (the arrival cache's
/// epoch and the targeted-replan subscription read it).
struct SharedQueryDesc {
  const plan::CompiledPlan* compiled = nullptr;
  SourceId source_lo = 0;
  SourceId source_hi = 0;
  /// Absolute virtual-time deadline forced into the query's DqpConfig
  /// (0 = unlimited). Only meaningful with Options::surface_lifecycle —
  /// the loop reports the expiry; the caller decides cancel vs retry.
  SimTime deadline = 0;
  /// Result-cache whole-query hit (DESIGN.md §14): the query joins
  /// already answered. Its slot is registered done with the cached digest
  /// adopted into its collector; it never enters the rotation and its
  /// sources are never drained. The caller does its own completion
  /// bookkeeping (grants, latencies) on return from AddQuery.
  bool resolved = false;
  int64_t resolved_count = 0;
  uint64_t resolved_checksum = 0;
};

class SharedQueryLoop {
 public:
  struct Options {
    StrategyKind strategy = StrategyKind::kDse;
    /// Per-query DQS/DQP tunables; the loop forces slice_batches and
    /// yield_on_starvation onto every query's DqpConfig.
    StrategyConfig config;
    /// Batches one query executes before yielding to the next.
    int64_t slice_batches = 32;
    /// Route RateChange replans to the subscribed query (DESIGN §9).
    bool targeted_replans = false;
    /// Surface lifecycle events (deadline expiry, source suspicion /
    /// death / recovery) as Turn kinds for the caller's lifecycle manager
    /// instead of failing the whole loop (the pre-§13 behaviour, kept as
    /// the default for the single-mediator multi-query mode).
    bool surface_lifecycle = false;
    exec::KernelConfig kernels;
    /// The shard's result cache; nullptr = caching off. Wired into every
    /// query's ExecutionOptions so Dqs::ComputePlan probes segments.
    CacheManager* cache = nullptr;
  };

  /// `ctx` must outlive the loop. Every wrapper the registered queries
  /// read must already be added to ctx->comm (held wrappers are fine).
  SharedQueryLoop(exec::ExecContext* ctx, Options options);

  SharedQueryLoop(const SharedQueryLoop&) = delete;
  SharedQueryLoop& operator=(const SharedQueryLoop&) = delete;

  /// Registers a query and splices it into the rotation; returns its slot.
  int AddQuery(const SharedQueryDesc& desc);

  /// The outcome of one round-robin turn.
  struct Turn {
    enum class Kind {
      kProgress,    // a slice ran (or a replan was absorbed)
      kQueryDone,   // `query` finished on this turn
      kAllStarved,  // every active query starves until `stall_until`
      kIdle,        // no active queries registered
      // The remaining kinds fire only with Options::surface_lifecycle.
      kQueryDeadline,    // `query`'s virtual deadline expired
      kSourceSuspected,  // the detector suspects `source` (owner `query`)
      kSourceDead,       // the detector declared `source` dead
      kSourceRecovered,  // a suspected/dead `source` delivered again
    };
    Kind kind = Kind::kProgress;
    int query = -1;
    /// kSource*: the global source id the detector signalled.
    SourceId source = kInvalidId;
    /// kAllStarved: the earliest arrival any active query waits for;
    /// kSimTimeNever when none exists (the mix is wedged). The caller
    /// stalls the clock (or errors) — the loop does not touch it.
    SimTime stall_until = kSimTimeNever;
  };

  /// Runs one turn of the current query. Never stalls the clock.
  Result<Turn> Step();

  /// Cooperative cancellation (surface_lifecycle callers): releases the
  /// query's operand grants and temps (ExecutionState::Cancel), closes
  /// its comm sources so their wrappers go quiet, and retires the slot
  /// from the rotation. The slot reads as done (done_at = now) with
  /// cancelled() true; its metrics stay readable.
  void CancelQuery(int query);
  bool cancelled(int query) const {
    return runs_[static_cast<size_t>(query)]->state->cancelled();
  }
  const SharedQueryDesc& desc(int query) const {
    return runs_[static_cast<size_t>(query)]->desc;
  }
  /// The slot owning global source `s`; -1 when unowned.
  int SourceOwner(SourceId s) const {
    return s >= 0 && static_cast<size_t>(s) < source_owner_.size()
               ? source_owner_[static_cast<size_t>(s)]
               : -1;
  }

  int num_queries() const { return static_cast<int>(runs_.size()); }
  /// Registered queries not yet finished.
  int active() const { return active_; }
  bool done(int query) const {
    return runs_[static_cast<size_t>(query)]->done;
  }
  /// Virtual completion time (valid once done).
  SimTime done_at(int query) const {
    return runs_[static_cast<size_t>(query)]->done_at;
  }
  const exec::ResultCollector& result(int query) const {
    return *runs_[static_cast<size_t>(query)]->result;
  }
  int64_t degradations(int query) const {
    return runs_[static_cast<size_t>(query)]->state->degradations();
  }
  /// The query's execution state (cache admission walks its completed
  /// MFs; read-only).
  const ExecutionState& state(int query) const {
    return *runs_[static_cast<size_t>(query)]->state;
  }

  /// The per-query-attributable slice of ExecutionMetrics: result,
  /// planning/execution phase counts, degradation/overflow/timeout
  /// activity. Shared-device fields (busy/stalled time, disk, network,
  /// temps, peak memory) stay zero — they belong to the owning context
  /// and are aggregated by the driver in its documented merge order.
  ExecutionMetrics QueryMetrics(int query) const;

 private:
  struct QueryRun {
    SharedQueryDesc desc;
    std::unique_ptr<exec::ResultCollector> result;
    std::unique_ptr<ExecutionState> state;
    std::unique_ptr<Dqs> dqs;
    std::unique_ptr<Dqp> dqp;
    std::unique_ptr<Dqo> dqo;
    SchedulingPlan sp;
    bool need_replan = true;
    bool done = false;
    SimTime done_at = 0;
    // kSeq: iterator-model chain order and position.
    std::vector<ChainId> seq_order;
    size_t seq_cursor = 0;
    // Cached minimum NextArrival over this query's active fragments (the
    // all-starved scan). Valid while `arrival_epoch` — the query's
    // structural version plus the sum of its sources' delivery versions —
    // holds and no contributing source answers time-dependently
    // (TimeDependentArrival: temp-backed values drift with the clock).
    SimTime arrival_min = 0;
    uint64_t arrival_epoch = 0;
    bool arrival_valid = false;
    bool arrival_volatile = false;
    // Event counters surfaced through QueryMetrics.
    int64_t timeouts = 0;
    int64_t rate_change_events = 0;
  };

  Status BuildPlan(QueryRun& run);
  uint64_t QueryEpoch(const QueryRun& run) const;
  /// The all-starved stall target: refreshes stale per-query minima and
  /// pops the lazy heap. kSimTimeNever when no active query ever receives
  /// another tuple.
  SimTime EarliestArrival();

  exec::ExecContext* ctx_;
  Options options_;
  std::vector<std::unique_ptr<QueryRun>> runs_;
  /// Global source id -> owning slot (targeted replans); -1 = unowned.
  std::vector<int> source_owner_;
  /// Lazy min-heap over per-query earliest arrivals (same stale-entry
  /// pattern as CommManager's pump heap): `arrival_key_[q]` is the only
  /// live key for slot q; entries whose key differs are skipped on pop.
  std::priority_queue<std::pair<SimTime, int>,
                      std::vector<std::pair<SimTime, int>>, std::greater<>>
      arrival_heap_;
  std::vector<SimTime> arrival_key_;
  /// Round-robin ring over the active queries. ring_next_[tail_] is the
  /// ring head; ring_prev_ is the slot visited last (the next visit is
  /// ring_next_[ring_prev_]).
  std::vector<int> ring_next_;
  int ring_tail_ = -1;
  int ring_prev_ = -1;
  int active_ = 0;
  int starved_streak_ = 0;
  int64_t guard_ = 0;
};

}  // namespace dqsched::core

#endif  // DQSCHED_CORE_SHARED_LOOP_H_
