// Machine-checked invariants of the PC decomposition and the DQS/DQP/DQO
// runtime (paper Sections 2.2, 3.3, and 4).
//
// The paper's correctness argument rests on properties the engine itself
// never re-derives: the pipeline chains partition the plan's operators
// (Section 2.2), the blocking-edge DAG is acyclic so ancestors* and the
// iterator order terminate (Section 4.1), a fragment enters the scheduling
// plan only when C- and M-schedulable (Sections 4.1-4.2), degradation
// splits p into MF(p)/CF(p) without losing tuples (Section 4.4), and the
// memory accountant balances the live operand grants at every plan
// recomputation (Section 3.3). This header provides auditors for each
// layer. They return Status (never abort) so tests can feed them
// hand-corrupted structures; the DQS_AUDIT macro wires them into the
// scheduler and the fragment-completion path in DQSCHED_AUDIT builds and
// compiles to nothing otherwise — release benches pay zero cost.

#ifndef DQSCHED_CORE_INVARIANT_AUDITOR_H_
#define DQSCHED_CORE_INVARIANT_AUDITOR_H_

#include "common/macros.h"
#include "common/status.h"
#include "core/dqs.h"
#include "core/execution_state.h"
#include "exec/exec_context.h"
#include "plan/compiled_plan.h"

namespace dqsched::core {

/// Static invariants of a compiled plan (paper Sections 2.2 and 4.1):
///  * exactly one result chain, and ids are positional;
///  * the chains partition the operators — every filter node and every
///    join probe appears in exactly one chain;
///  * every join's build operand is produced by exactly one non-result
///    chain, with a consistent build key field;
///  * each chain's blocker list is exactly the set of operand producers of
///    its probe ops, and the blocking-edge DAG is acyclic;
///  * annotations are sane (selectivities in [0,1], non-negative finite
///    cost/memory estimates — the critical degree's inputs).
Status AuditCompiledPlan(const plan::CompiledPlan& compiled);

/// Invariants of one scheduling plan against the state it was computed
/// from (paper Sections 4.1-4.3): parallel arrays, valid + active + unique
/// fragment ids, C-schedulability of every scheduled chain fragment,
/// finite priorities, and M-schedulability of the admitted set — the
/// unopened fragments' open costs fit the accountant's available memory
/// (a single-fragment plan is exempt: the progress guarantee of Section
/// 4.2 runs the top candidate alone and lets the DQO revise on overflow).
Status AuditSchedulingPlan(const ExecutionState& state,
                           const SchedulingPlan& sp,
                           const exec::ExecContext& ctx);

/// Runtime conservation laws over the live execution state (paper
/// Sections 3.3 and 4.4):
///  * memory balance — the accountant's granted bytes equal the sum of
///    the operands' live grants (a lower bound when the context is shared
///    across queries), and never exceed the budget;
///  * tuple conservation — every tuple popped from a source's queue is
///    accounted for by a fragment runtime of that source (current or
///    retired), and each queue/wrapper pair conserves its sequence;
///  * MF/CF complementarity — a degraded chain's MF applies exactly the
///    chain's leading filters, its sealed temp holds exactly what the MF
///    produced, and the CF skips exactly those pre-applied filters;
///  * critical-degree inputs non-negative — remaining tuples and waiting
///    time estimates of every unfinished chain;
///  * structural consistency — done chains have inactive fragments, every
///    fragment's origin chain matches its slot.
Status AuditExecutionState(const ExecutionState& state,
                           const exec::ExecContext& ctx);

/// All three layers in one call (compiled plan, execution state, and the
/// current scheduling plan).
Status AuditAll(const ExecutionState& state, const SchedulingPlan& sp,
                const exec::ExecContext& ctx);

}  // namespace dqsched::core

// Runs a Status-returning audit expression in DQSCHED_AUDIT builds and
// aborts with the auditor's diagnosis on failure; compiles to nothing
// (argument unevaluated) otherwise.
#ifdef DQSCHED_AUDIT
#define DQS_AUDIT(expr)                                                \
  do {                                                                 \
    ::dqsched::Status dqs_audit_status_ = (expr);                      \
    DQS_CHECK_MSG(dqs_audit_status_.ok(), "invariant audit failed: %s", \
                  dqs_audit_status_.ToString().c_str());               \
  } while (0)
#else
#define DQS_AUDIT(expr) \
  do {                  \
  } while (0)
#endif

#endif  // DQSCHED_CORE_INVARIANT_AUDITOR_H_
