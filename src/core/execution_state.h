// Runtime bookkeeping of one query execution: the fragments realizing each
// pipeline chain, the operand registry, chain completion, PC degradation
// (MF/CF, paper Section 4.4), and memory-overflow plan splits (Section 4.2).
//
// Fragment id space: ids [0, num_chains) are the *chain slots* — the
// fragment currently realizing that chain (the PC itself, its CF after
// degradation, or the current stage after a DQO split). Ids >= num_chains
// are auxiliary fragments (MFs, MA phase-1 materializations), appended as
// they are created.

#ifndef DQSCHED_CORE_EXECUTION_STATE_H_
#define DQSCHED_CORE_EXECUTION_STATE_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "exec/chain_executor.h"
#include "exec/chain_source.h"
#include "exec/exec_context.h"
#include "exec/kernel_config.h"
#include "core/trace.h"
#include "exec/operand.h"
#include "plan/compiled_plan.h"

namespace dqsched::core {

class CacheManager;

/// Per-strategy knobs that shape fragment construction.
struct ExecutionOptions {
  /// Temp I/O mode for fragments (DSE overlaps I/O with CPU; MA runs
  /// synchronously, which is part of why it loses — see DESIGN.md).
  bool async_io = true;
  /// Record scheduling decisions and batch activity (core/trace.h).
  bool trace = false;
  /// Destination for result tuples; defaults to the context's collector.
  /// Multi-query execution gives each query its own collector so answers
  /// verify independently.
  exec::ResultCollector* result_override = nullptr;
  /// True when other queries share this context (multi-query kShared):
  /// the invariant auditor then checks the memory accountant against this
  /// state's operands as a lower bound instead of an exact balance.
  bool shared_context = false;
  /// Operator kernel selection, copied into every FragmentSpec.
  exec::KernelConfig kernels;
  /// The shard's result cache, or nullptr when caching is off. The DQS
  /// probes it at plan time (segment hits rebind chains to cached temps);
  /// drivers admit completed MFs and result digests through it.
  CacheManager* cache = nullptr;
};

/// All mutable execution state of one run.
class ExecutionState {
 public:
  /// `compiled` must be annotated and must outlive the state; `ctx` is the
  /// run's context.
  ExecutionState(const plan::CompiledPlan* compiled, exec::ExecContext* ctx,
                 const ExecutionOptions& options);

  ExecutionState(const ExecutionState&) = delete;
  ExecutionState& operator=(const ExecutionState&) = delete;

  const plan::CompiledPlan& compiled() const { return *compiled_; }
  int num_chains() const { return compiled_->num_chains(); }
  int num_fragments() const { return static_cast<int>(fragments_.size()); }

  exec::FragmentRuntime& fragment(int id);
  const exec::FragmentRuntime& fragment(int id) const;
  /// False for fragments that were closed/stopped/replaced.
  bool FragmentActive(int id) const;
  ChainId FragmentChain(int id) const;
  bool IsMf(int id) const;

  /// The fragment currently realizing `chain` (slot id == chain id).
  int ChainFragment(ChainId chain) const { return chain; }

  bool ChainDone(ChainId chain) const;
  /// All ancestor chains finished (paper Section 4.1).
  bool CSchedulable(ChainId chain) const;
  bool QueryDone() const { return ChainDone(compiled_->result_chain); }

  bool Degraded(ChainId chain) const;
  bool CfActivated(ChainId chain) const;
  /// The materialization fragment of a degraded chain (kInvalidId before
  /// degradation) and the temp it materializes into.
  int MfFragment(ChainId chain) const;
  TempId MfTemp(ChainId chain) const;
  /// Leading filter ops of the chain (what MF(p) applies before its temp).
  int LeadingFilters(ChainId chain) const;
  /// Splits chain p into MF(p) + (later) CF(p): creates the
  /// materialization fragment and returns its id. Requires p not done, not
  /// C-schedulable, not yet degraded, and its fragment never started.
  int Degrade(ChainId chain, exec::ExecContext& ctx);
  /// Stops MF(p) and swaps the chain slot to CF(p), whose input is the
  /// materialized prefix followed by the live remainder.
  void ActivateCf(ChainId chain, exec::ExecContext& ctx);

  /// Memory-overflow revision (DQO, paper Section 4.2): replaces the
  /// chain's fragment by a sequence of stages, each of whose probe
  /// operands fit within `budget_bytes`, materializing intermediates to
  /// disk between stages. Fails when even a single operand exceeds the
  /// budget.
  Status SplitForMemory(ChainId chain, exec::ExecContext& ctx,
                        int64_t budget_bytes);

  /// Replaces the chain's input by a sealed temp (MA phase 2).
  void RebindChainToTemp(ChainId chain, TempId temp, exec::ExecContext& ctx);

  /// Result-cache segment hit: replaces the chain's input by the adopted
  /// sealed temp holding the cached MF segment — the source stream with
  /// the chain's leading filters pre-applied, so the fragment skips them
  /// (same complementarity as CF(p)). Requires the chain untouched: not
  /// done, not degraded, never started. The caller closes the chain's
  /// source so no live tuples race the cached copy.
  void BindChainToCachedSegment(ChainId chain, TempId temp,
                                exec::ExecContext& ctx);
  /// True once BindChainToCachedSegment rebound this chain.
  bool CacheBound(ChainId chain) const;
  /// Marks the chain as cache-probed so the per-plan lookup runs at most
  /// once per chain (deterministic hit/miss counters).
  bool CacheProbed(ChainId chain) const;
  void SetCacheProbed(ChainId chain);
  /// True once the chain's MF ran to natural completion (its temp holds
  /// the full filtered prefix of the source stream) — the admission
  /// criterion for caching the segment.
  bool MfComplete(ChainId chain) const;
  int64_t cache_bound() const { return cache_bound_; }

  /// Creates an auxiliary materialize-everything fragment for `source`
  /// (MA phase 1): no operators, raw wrapper output to a temp. Returns the
  /// fragment id; the temp is recorded and retrievable via MaTempOf().
  int CreateMaterializeAll(SourceId source, exec::ExecContext& ctx);
  TempId MaTempOf(SourceId source) const;

  /// Handles a finished fragment: closes it, advances chain staging, marks
  /// chains done. Must be called exactly once per EndOfQF event.
  void OnFragmentFinished(int id, exec::ExecContext& ctx);

  /// Cooperative cancellation (DESIGN.md §13): releases every operand
  /// grant back to the memory accountant, closes every fragment without
  /// sealing, and drops every temp this query created — leaving the state
  /// readable for metrics and still satisfying the conservation laws.
  /// Idempotent; the query must not be stepped afterwards.
  void Cancel(exec::ExecContext& ctx);
  bool cancelled() const { return cancelled_; }

  /// Estimated CPU per *live* input tuple of the fragment, nanoseconds
  /// (the scheduler's c_p).
  double FragmentCpuPerTupleNs(int id) const;
  /// Tuples still to come from the fragment's remote source (n_p of the
  /// critical degree; 0 for pure-temp inputs which never stall).
  int64_t FragmentRemainingLive(int id, const exec::ExecContext& ctx) const;

  int64_t degradations() const { return degradations_; }
  int64_t cf_activations() const { return cf_activations_; }
  int64_t dqo_splits() const { return dqo_splits_; }

  /// Bumped by every mutation that can change chain done-ness, fragment
  /// membership/activity, or degradation state (Degrade, ActivateCf,
  /// SplitForMemory, OnFragmentFinished, RebindChainToTemp,
  /// CreateMaterializeAll). The DQS plan cache keys its candidate set and
  /// sorted order on this: an unchanged version guarantees the structural
  /// inputs of planning are unchanged (delivery-side drift is tracked
  /// separately via CommManager::SourceVersion).
  uint64_t structural_version() const { return structural_version_; }

  exec::OperandRegistry& operands() { return operands_; }
  const exec::OperandRegistry& operands() const { return operands_; }
  const ExecutionOptions& options() const { return options_; }

  /// Live-queue tuples consumed by fragment runtimes of `chain` that were
  /// since retired (a finished split stage replaced by its successor).
  /// The per-source conservation law sums this with the live runtimes'
  /// FragmentStats::consumed_live against the queue's total_popped().
  int64_t RetiredLiveConsumed(ChainId chain) const;

  /// The execution trace (empty unless ExecutionOptions::trace was set).
  ExecutionTrace& trace() { return trace_; }
  const ExecutionTrace& trace() const { return trace_; }
  /// Display names per fragment id, for trace rendering.
  std::vector<std::string> FragmentNames() const;
  /// The collector this execution's result tuples flow into.
  const exec::ResultCollector& result() const { return *result_; }

 private:
  struct PendingStage {
    exec::FragmentSpec spec;
    TempId input_temp = kInvalidId;
  };

  struct FragmentSlot {
    std::unique_ptr<exec::FragmentRuntime> runtime;
    ChainId chain = kInvalidId;
    bool is_mf = false;
    bool active = true;
  };

  struct ChainState {
    bool done = false;
    bool degraded = false;
    bool cf_activated = false;
    /// The MF fragment finished naturally (full filtered prefix sealed in
    /// mf_temp) — distinguishes it from an MF stopped by CF activation,
    /// whose temp holds only a partial prefix.
    bool mf_complete = false;
    /// The chain's input was rebound to a cached segment at plan time.
    bool cache_bound = false;
    /// The segment cache was already probed for this chain this run.
    bool cache_probed = false;
    int mf_fragment = kInvalidId;
    TempId mf_temp = kInvalidId;
    /// Number of leading filter ops (what MF(p) applies before
    /// materializing).
    int leading_filters = 0;
    /// Live-queue consumption of retired stage runtimes (conservation
    /// accounting survives runtime replacement).
    int64_t retired_live_consumed = 0;
    std::deque<PendingStage> stages;
  };

  /// Builds the initial fragment realizing `chain` (full PC from its
  /// wrapper queue).
  std::unique_ptr<exec::FragmentRuntime> MakeChainFragment(ChainId chain);
  exec::FragmentSpec BaseSpecFor(ChainId chain) const;

  const plan::CompiledPlan* compiled_;
  exec::ExecContext* ctx_;
  ExecutionOptions options_;
  exec::ResultCollector* result_;
  exec::OperandRegistry operands_;
  std::vector<FragmentSlot> fragments_;
  std::vector<ChainState> chain_states_;
  std::vector<TempId> ma_temps_;  // per source, MA phase 1
  /// Every temp this query created (MF prefixes, DQO split links, MA
  /// materializations, not operand spills — those belong to the operand),
  /// so cancellation can return their space.
  std::vector<TempId> owned_temps_;
  ExecutionTrace trace_;
  bool cancelled_ = false;
  int64_t split_serial_ = 0;      // unique suffixes for split stage names
  uint64_t structural_version_ = 0;
  int64_t cache_bound_ = 0;
  int64_t degradations_ = 0;
  int64_t cf_activations_ = 0;
  int64_t dqo_splits_ = 0;
};

}  // namespace dqsched::core

#endif  // DQSCHED_CORE_EXECUTION_STATE_H_
