#include "storage/relation.h"

#include "common/macros.h"

namespace dqsched::storage {

Relation GenerateRelation(const RelationSpec& spec, SourceId source, Rng rng) {
  DQS_CHECK_MSG(spec.cardinality >= 0, "negative cardinality for %s",
                spec.name.c_str());
  Relation rel;
  rel.name = spec.name;
  rel.tuples.resize(static_cast<size_t>(spec.cardinality));
  for (int64_t i = 0; i < spec.cardinality; ++i) {
    Tuple& t = rel.tuples[static_cast<size_t>(i)];
    for (int f = 0; f < kTupleKeyFields; ++f) {
      const int64_t domain = spec.key_domain[static_cast<size_t>(f)];
      t.keys[f] = domain > 1
                      ? static_cast<int64_t>(
                            rng.Uniform(static_cast<uint64_t>(domain)))
                      : 0;
    }
    t.rowid = MakeRowid(source, i);
  }
  return rel;
}

}  // namespace dqsched::storage
