// Memory accounting for the mediator's query execution.
//
// The scheduler's M-schedulability test and the scheduling plan's memory
// admission (paper Sections 4.1-4.2) both consult this accountant: the
// total budget models "the total available memory for the query execution,
// which is assumed not to change during the query execution" (Section 3.3).

#ifndef DQSCHED_STORAGE_MEMORY_ACCOUNTANT_H_
#define DQSCHED_STORAGE_MEMORY_ACCOUNTANT_H_

#include <cstdint>

#include "common/status.h"

namespace dqsched::storage {

/// Tracks grants against a fixed byte budget. Single-threaded.
class MemoryAccountant {
 public:
  explicit MemoryAccountant(int64_t budget_bytes) : budget_(budget_bytes) {}

  /// Attempts to reserve `bytes`. Fails with kResourceExhausted (and grants
  /// nothing) when the budget would be exceeded.
  Status Grant(int64_t bytes);

  /// Returns a previous grant. Aborts if more is released than was granted
  /// (a library bug).
  void Release(int64_t bytes);

  int64_t budget() const { return budget_; }
  int64_t granted() const { return granted_; }
  int64_t available() const { return budget_ - granted_; }
  /// Largest `granted()` ever observed; the memory-safety invariant tests
  /// assert peak() <= budget().
  int64_t peak() const { return peak_; }

  void Reset() {
    granted_ = 0;
    peak_ = 0;
  }

 private:
  int64_t budget_;
  int64_t granted_ = 0;
  int64_t peak_ = 0;
};

}  // namespace dqsched::storage

#endif  // DQSCHED_STORAGE_MEMORY_ACCOUNTANT_H_
