// Memory accounting for the mediator's query execution.
//
// The scheduler's M-schedulability test and the scheduling plan's memory
// admission (paper Sections 4.1-4.2) both consult this accountant: the
// total budget models "the total available memory for the query execution,
// which is assumed not to change during the query execution" (Section 3.3).

#ifndef DQSCHED_STORAGE_MEMORY_ACCOUNTANT_H_
#define DQSCHED_STORAGE_MEMORY_ACCOUNTANT_H_

#include <cstdint>
#include <functional>
#include <utility>

#include "common/status.h"

namespace dqsched::storage {

/// Tracks grants against a fixed byte budget. Single-threaded.
///
/// Two grant classes share the budget:
///  * firm grants (Grant/Release) — live execution memory: operands,
///    buffered temps. Success/failure, available() and peak() depend on
///    firm grants ALONE, so wiring a cache underneath never changes a
///    scheduling or spill decision.
///  * reclaimable grants (GrantReclaimable/ReleaseReclaimable) — cached
///    bytes that are always stealable: whenever firm + reclaimable would
///    exceed the budget, the reclaimer callback is asked to free the
///    difference (the cache evicts LRU entries), so live queries always
///    win the budget (work conservation, DESIGN.md §14).
class MemoryAccountant {
 public:
  explicit MemoryAccountant(int64_t budget_bytes) : budget_(budget_bytes) {}

  /// Attempts to reserve `bytes`. Fails with kResourceExhausted (and grants
  /// nothing) when the budget would be exceeded. On success, reclaimable
  /// bytes are stolen (via the reclaimer) until firm + reclaimable fits
  /// the budget again.
  Status Grant(int64_t bytes);

  /// Returns a previous grant. Aborts if more is released than was granted
  /// (a library bug).
  void Release(int64_t bytes);

  /// Registers `bytes` of reclaimable (cached) memory. The caller must
  /// keep reclaimable() within headroom() — the cache evicts before it
  /// admits.
  void GrantReclaimable(int64_t bytes);
  void ReleaseReclaimable(int64_t bytes);

  /// The function invoked (with a byte deficit) when firm grants need
  /// reclaimable space back; it must free at least the requested amount
  /// if it can, returning the bytes actually freed via
  /// ReleaseReclaimable calls it makes.
  void SetReclaimer(std::function<void(int64_t)> reclaimer) {
    reclaimer_ = std::move(reclaimer);
  }

  int64_t budget() const { return budget_; }
  int64_t granted() const { return granted_; }
  int64_t available() const { return budget_ - granted_; }
  int64_t reclaimable() const { return reclaimable_; }
  /// Budget space a new reclaimable grant may take right now.
  int64_t headroom() const { return budget_ - granted_ - reclaimable_; }
  /// Largest `granted()` ever observed; the memory-safety invariant tests
  /// assert peak() <= budget(). Reclaimable bytes are excluded — they are
  /// evictable at any instant, so they never endanger the invariant.
  int64_t peak() const { return peak_; }

  void Reset() {
    granted_ = 0;
    peak_ = 0;
  }

 private:
  int64_t budget_;
  int64_t granted_ = 0;
  int64_t reclaimable_ = 0;
  int64_t peak_ = 0;
  std::function<void(int64_t)> reclaimer_;
};

}  // namespace dqsched::storage

#endif  // DQSCHED_STORAGE_MEMORY_ACCOUNTANT_H_
