// In-memory relations and synthetic data generation.
//
// A relation's content is fully determined by a RelationSpec and a seed:
// key field f of every tuple is uniform over [0, key_domain[f]), and the
// rowid encodes (source id, sequence number). Join selectivities are
// therefore controlled by key domains: probing a build side of cardinality
// n_b on a shared domain D yields an expected fanout of n_b / D per probe
// tuple.

#ifndef DQSCHED_STORAGE_RELATION_H_
#define DQSCHED_STORAGE_RELATION_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/random.h"
#include "storage/tuple.h"

namespace dqsched::storage {

/// Static description of a base relation's data distribution.
struct RelationSpec {
  std::string name;
  int64_t cardinality = 0;
  /// Domain size of each key field; fields with domain <= 1 always hold 0
  /// (unused by any join).
  std::array<int64_t, kTupleKeyFields> key_domain = {1, 1, 1, 1};
};

/// Materialized relation instance.
struct Relation {
  std::string name;
  std::vector<Tuple> tuples;

  int64_t cardinality() const { return static_cast<int64_t>(tuples.size()); }
};

/// Encodes a globally unique rowid for tuple `seq` of source `source`.
inline uint64_t MakeRowid(SourceId source, int64_t seq) {
  return (static_cast<uint64_t>(source) << 40) | static_cast<uint64_t>(seq);
}

/// Generates the relation described by `spec` deterministically from `rng`.
/// `source` tags the rowids.
Relation GenerateRelation(const RelationSpec& spec, SourceId source, Rng rng);

}  // namespace dqsched::storage

#endif  // DQSCHED_STORAGE_RELATION_H_
