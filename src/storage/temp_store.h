// Temporary relations on the mediator's local disk.
//
// Used by: partial materialization fragments (MF(p), paper Section 4.4),
// the Materialize-All strategy's phase 1, operand spilling, and the plan
// splits performed by the dynamic optimizer under memory pressure
// (Section 4.2).
//
// Simulation note: tuple bytes live in host memory (this is a simulator),
// but every access is charged to the simulated disk in multi-page chunks.
// A temp whose total size fits the Table 1 I/O cache (8 pages) is read back
// for free — it never left the cache.

#ifndef DQSCHED_STORAGE_TEMP_STORE_H_
#define DQSCHED_STORAGE_TEMP_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "sim/cost_model.h"
#include "sim/disk.h"
#include "sim/sim_clock.h"
#include "storage/tuple.h"

namespace dqsched::storage {

/// Aggregate temp-store statistics for one execution.
struct TempStoreStats {
  int64_t temps_created = 0;
  int64_t tuples_written = 0;
  int64_t tuples_read = 0;
  int64_t cache_served_reads = 0;  // reads served from the I/O cache

  /// Aggregates stats across executions (multi-query accounting).
  TempStoreStats& operator+=(const TempStoreStats& other) {
    temps_created += other.temps_created;
    tuples_written += other.tuples_written;
    tuples_read += other.tuples_read;
    cache_served_reads += other.cache_served_reads;
    return *this;
  }
};

/// Manages simulated on-disk temporary relations. Single-threaded; all
/// methods charge the mediator clock (per-I/O CPU; synchronous I/O waits)
/// and the shared disk.
class TempStore {
 public:
  TempStore(const sim::CostModel* cost, sim::SimDisk* disk,
            sim::SimClock* clock)
      : cost_(cost), disk_(disk), clock_(clock) {}

  TempStore(const TempStore&) = delete;
  TempStore& operator=(const TempStore&) = delete;

  /// Creates an empty, unsealed temp relation.
  TempId Create(std::string name);

  /// Appends `n` tuples to an unsealed temp. Full chunks are written to the
  /// simulated disk; `async_io` selects write-behind (CPU continues) vs
  /// synchronous writes (CPU blocks until the arm finishes).
  void Append(TempId id, const Tuple* data, int64_t n, bool async_io);

  /// Flushes any buffered remainder and freezes the cardinality. Reading is
  /// only allowed on sealed temps.
  void Seal(TempId id);

  /// Materializes a pre-sealed temp from an already-resident tuple block (a
  /// result-cache hit). No disk writes are charged: the bytes were written
  /// (and paid for) when the segment was originally materialized; the cache
  /// only restores the mapping. Reads charge normally.
  TempId AdoptSealed(std::string name, const Tuple* data, int64_t n);

  /// Direct read-only access to a sealed temp's tuples (cache admission
  /// snapshots a completed MF through this; no simulated charge — admission
  /// is host-side bookkeeping, like planning_host_seconds).
  const std::vector<Tuple>& Tuples(TempId id) const;

  bool IsSealed(TempId id) const;
  int64_t Cardinality(TempId id) const;
  const std::string& Name(TempId id) const;
  /// Pages the sealed temp occupies on disk.
  int64_t Pages(TempId id) const;

  /// Copies up to `max` tuples starting at `cursor` into `out`, charging
  /// chunk reads to the disk. Returns the count; `*ready` receives the
  /// simulated time at which the data is available (>= now for async reads;
  /// with synchronous reads the clock itself is advanced instead).
  int64_t Read(TempId id, int64_t cursor, Tuple* out, int64_t max,
               bool async_io, SimTime* ready);

  // --- Prefetching read path (used by asynchronous TempSources) ---------
  /// True when the whole sealed temp fits the Table 1 I/O cache: it never
  /// left memory and reads are free.
  bool FitsIoCache(TempId id) const;

  /// Issues an asynchronous disk read of `tuples` tuples (rounded up to
  /// whole pages) of the sealed temp; charges the per-I/O CPU cost and
  /// returns the transfer's completion time. The caller tracks which tuple
  /// ranges each issue covers.
  SimTime IssueRead(TempId id, int64_t tuples);

  /// Copies `n` tuples at `cursor` into `out` with no device charge — the
  /// data must have been transferred by a prior IssueRead (the caller's
  /// responsibility).
  void Copy(TempId id, int64_t cursor, Tuple* out, int64_t n);

  /// Releases the temp's storage. Reading or appending after Drop aborts.
  void Drop(TempId id);
  /// True once Drop was applied (the temp no longer participates in
  /// cardinality conservation laws).
  bool IsDropped(TempId id) const;

  const TempStoreStats& stats() const { return stats_; }

 private:
  struct TempRel {
    std::string name;
    std::vector<Tuple> tuples;
    bool sealed = false;
    bool dropped = false;
    int64_t flushed_tuples = 0;   // write watermark charged to disk
    int64_t fetched_tuples = 0;   // read watermark charged to disk
    SimTime last_read_ready = 0;  // completion of the latest chunk read
  };

  TempRel& Get(TempId id);
  const TempRel& Get(TempId id) const;
  /// Charges one Transfer of `pages` pages plus the per-I/O CPU cost.
  SimTime ChargeIo(TempId id, int64_t pages, bool is_write, bool async_io);

  const sim::CostModel* cost_;
  sim::SimDisk* disk_;
  sim::SimClock* clock_;
  std::vector<TempRel> temps_;
  TempStoreStats stats_;
};

}  // namespace dqsched::storage

#endif  // DQSCHED_STORAGE_TEMP_STORE_H_
