#include "storage/tuple.h"

// Tuple helpers are header-only; this file anchors the header in the build.
