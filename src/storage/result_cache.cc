#include "storage/result_cache.h"

#include <utility>

#include "common/macros.h"

namespace dqsched::storage {

ResultCache::Entry* ResultCache::Probe(uint64_t fingerprint,
                                       uint64_t version_hash) {
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) return nullptr;
  Entry& entry = it->second;
  if (entry.version_hash != version_hash) {
    // A source the entry depends on moved on: the entry can never be
    // served again (versions are monotone), so drop it now instead of
    // letting it squat on the budget until LRU gets around to it.
    ++counters_.stale_invalidations;
    Erase(fingerprint, /*count_eviction=*/false);
    return nullptr;
  }
  if (entry.admitted_epoch >= epoch_) {
    // Admitted during the current run: invisible until the next
    // BeginEpoch, so a cold run can never serve its own admissions.
    return nullptr;
  }
  return &entry;
}

void ResultCache::Touch(uint64_t fingerprint, Entry& entry) {
  recency_.erase(entry.last_used);
  entry.last_used = ++tick_;
  recency_.emplace(entry.last_used, fingerprint);
}

const std::vector<Tuple>* ResultCache::LookupSegment(uint64_t fingerprint,
                                                     uint64_t version_hash) {
  Entry* entry = Probe(fingerprint, version_hash);
  if (entry == nullptr || !entry->is_segment) {
    ++counters_.segment_misses;
    return nullptr;
  }
  ++counters_.segment_hits;
  Touch(fingerprint, *entry);
  return &entry->tuples;
}

bool ResultCache::LookupResult(uint64_t fingerprint, uint64_t version_hash,
                               int64_t* count, uint64_t* checksum) {
  Entry* entry = Probe(fingerprint, version_hash);
  if (entry == nullptr || entry->is_segment) {
    ++counters_.result_misses;
    return false;
  }
  ++counters_.result_hits;
  Touch(fingerprint, *entry);
  *count = entry->count;
  *checksum = entry->checksum;
  return true;
}

void ResultCache::Erase(uint64_t fingerprint, bool count_eviction) {
  auto it = entries_.find(fingerprint);
  DQS_CHECK(it != entries_.end());
  const int64_t freed = it->second.bytes;
  recency_.erase(it->second.last_used);
  entries_.erase(it);
  resident_bytes_ -= freed;
  if (count_eviction) ++counters_.evictions;
  if (evict_hook_) evict_hook_(freed);
}

bool ResultCache::ReserveRoom(int64_t bytes) {
  if (bytes > budget_bytes_) return false;
  while (resident_bytes_ + bytes > budget_bytes_) {
    DQS_CHECK(!recency_.empty());
    Erase(recency_.begin()->second, /*count_eviction=*/true);
  }
  return true;
}

int64_t ResultCache::Admit(uint64_t fingerprint, Entry entry) {
  auto it = entries_.find(fingerprint);
  if (it != entries_.end()) {
    // Replacement (e.g. a re-admission after a version bump): the old
    // entry leaves silently — it is superseded, not evicted.
    Erase(fingerprint, /*count_eviction=*/false);
  }
  if (!ReserveRoom(entry.bytes)) return 0;
  entry.admitted_epoch = epoch_;
  entry.last_used = ++tick_;
  resident_bytes_ += entry.bytes;
  recency_.emplace(entry.last_used, fingerprint);
  entries_.emplace(fingerprint, std::move(entry));
  return entries_.at(fingerprint).bytes;
}

int64_t ResultCache::InsertSegment(uint64_t fingerprint,
                                   uint64_t version_hash,
                                   std::vector<Tuple> tuples) {
  Entry entry;
  entry.is_segment = true;
  entry.version_hash = version_hash;
  entry.bytes = SegmentBytes(static_cast<int64_t>(tuples.size()));
  entry.tuples = std::move(tuples);
  const int64_t admitted = Admit(fingerprint, std::move(entry));
  if (admitted > 0) ++counters_.admitted_segments;
  return admitted;
}

int64_t ResultCache::InsertResult(uint64_t fingerprint,
                                  uint64_t version_hash, int64_t count,
                                  uint64_t checksum) {
  Entry entry;
  entry.is_segment = false;
  entry.version_hash = version_hash;
  entry.bytes = kEntryOverheadBytes;
  entry.count = count;
  entry.checksum = checksum;
  const int64_t admitted = Admit(fingerprint, std::move(entry));
  if (admitted > 0) ++counters_.admitted_results;
  return admitted;
}

int64_t ResultCache::EvictLru(int64_t bytes) {
  int64_t freed = 0;
  while (freed < bytes && !recency_.empty()) {
    const uint64_t victim = recency_.begin()->second;
    freed += entries_.at(victim).bytes;
    Erase(victim, /*count_eviction=*/true);
  }
  return freed;
}

void ResultCache::TrimTo(int64_t target_bytes) {
  while (resident_bytes_ > target_bytes && !recency_.empty()) {
    Erase(recency_.begin()->second, /*count_eviction=*/true);
  }
}

void ResultCache::Clear() {
  while (!recency_.empty()) {
    Erase(recency_.begin()->second, /*count_eviction=*/false);
  }
  DQS_CHECK(resident_bytes_ == 0 && entries_.empty());
}

}  // namespace dqsched::storage
