// Materialized-fragment result cache: the storage-side mechanism of the
// mediator's cross-query cache (DESIGN.md §14).
//
// The cache maps a 64-bit plan-fragment fingerprint to either a
// materialized tuple segment (a completed MF(p): the source stream with
// the chain's leading filters pre-applied) or a final result digest
// (count + order-independent checksum). Entries carry the version hash of
// the logical sources they were computed from; a lookup whose current
// version hash differs is a miss and lazily evicts the stale entry —
// invalidation is purely version-driven, there is no TTL and no sweeper.
//
// Visibility is epoch-gated: an entry admitted during epoch E is served
// only once BeginEpoch() advanced past E. Drivers call BeginEpoch() once
// per run, so a cold run (cache enabled, nothing admitted before it) can
// never hit — by construction it is byte-identical to a cache-off run on
// every simulated metric, which is what the equivalence tests enforce.
//
// Retention is LRU under a byte budget. Recency is a deterministic access
// counter (no host clocks), so eviction order — like everything else in
// here — is a pure function of the virtual execution history. Policy
// (fingerprints, logical keys, accountant and broker integration) lives
// in core/cache_manager.*; this layer only stores bytes.

#ifndef DQSCHED_STORAGE_RESULT_CACHE_H_
#define DQSCHED_STORAGE_RESULT_CACHE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "storage/tuple.h"

namespace dqsched::storage {

/// Activity counters of one ResultCache. Like planning_host_seconds, the
/// cache counters are OUTSIDE the byte-identity contract between cache-off
/// and cold-cache runs (a cold run records misses and admissions where an
/// off run records nothing); everything the counters describe, however, is
/// deterministic across --jobs values.
struct ResultCacheCounters {
  int64_t segment_hits = 0;
  int64_t segment_misses = 0;
  int64_t result_hits = 0;
  int64_t result_misses = 0;
  int64_t admitted_segments = 0;
  int64_t admitted_results = 0;
  /// Lookups that found the fingerprint with a stale version hash (the
  /// entry was lazily evicted; the lookup also counts as a miss).
  int64_t stale_invalidations = 0;
  /// Entries removed by LRU budget pressure, accountant reclaim, or a
  /// broker trim directive.
  int64_t evictions = 0;

  ResultCacheCounters& operator+=(const ResultCacheCounters& other) {
    segment_hits += other.segment_hits;
    segment_misses += other.segment_misses;
    result_hits += other.result_hits;
    result_misses += other.result_misses;
    admitted_segments += other.admitted_segments;
    admitted_results += other.admitted_results;
    stale_invalidations += other.stale_invalidations;
    evictions += other.evictions;
    return *this;
  }
};

/// Fingerprint-keyed LRU store of materialized segments and result
/// digests. Single-threaded, like the shard state it belongs to.
class ResultCache {
 public:
  explicit ResultCache(int64_t budget_bytes) : budget_bytes_(budget_bytes) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Makes every entry admitted before this call servable. Called once
  /// per run by the owning CacheManager.
  void BeginEpoch() { ++epoch_; }

  /// Eviction notification: invoked with the freed byte count every time
  /// an entry leaves the cache (the CacheManager keeps the memory
  /// accountant's reclaimable pool in sync through this).
  void SetEvictHook(std::function<void(int64_t)> hook) {
    evict_hook_ = std::move(hook);
  }

  /// Serves the cached segment for `fingerprint` if it is visible in the
  /// current epoch and its version hash matches; nullptr otherwise. A
  /// version mismatch lazily evicts the entry.
  const std::vector<Tuple>* LookupSegment(uint64_t fingerprint,
                                          uint64_t version_hash);

  /// Serves the cached result digest; same visibility and version rules.
  bool LookupResult(uint64_t fingerprint, uint64_t version_hash,
                    int64_t* count, uint64_t* checksum);

  /// Admits a segment (replacing any entry under the same fingerprint),
  /// evicting LRU entries to respect the byte budget. An entry larger
  /// than the whole budget is rejected. Returns the admitted byte size
  /// (0 when rejected).
  int64_t InsertSegment(uint64_t fingerprint, uint64_t version_hash,
                        std::vector<Tuple> tuples);

  /// Admits a result digest under the same replacement/budget rules.
  int64_t InsertResult(uint64_t fingerprint, uint64_t version_hash,
                       int64_t count, uint64_t checksum);

  /// Evicts LRU entries until at least `bytes` were freed (or the cache
  /// is empty). Returns the bytes actually freed. This is the accountant
  /// reclaim path: live grants steal cached bytes through it.
  int64_t EvictLru(int64_t bytes);

  /// Evicts LRU entries until the resident size is <= `target_bytes`
  /// (a broker trim directive).
  void TrimTo(int64_t target_bytes);

  void Clear();

  int64_t resident_bytes() const { return resident_bytes_; }
  int64_t budget_bytes() const { return budget_bytes_; }
  int64_t entries() const { return static_cast<int64_t>(entries_.size()); }
  const ResultCacheCounters& counters() const { return counters_; }
  /// Zeroes the counters (per-run reporting); entries stay resident.
  void ResetCounters() { counters_ = ResultCacheCounters{}; }

  /// Accounted footprint of a segment of `n` tuples (payload + fixed
  /// per-entry overhead).
  static int64_t SegmentBytes(int64_t n) {
    return n * static_cast<int64_t>(sizeof(Tuple)) + kEntryOverheadBytes;
  }

 private:
  static constexpr int64_t kEntryOverheadBytes = 64;

  struct Entry {
    bool is_segment = false;
    uint64_t version_hash = 0;
    uint64_t admitted_epoch = 0;
    int64_t bytes = 0;
    int64_t last_used = 0;  // deterministic recency tick
    std::vector<Tuple> tuples;  // is_segment
    int64_t count = 0;          // !is_segment
    uint64_t checksum = 0;      // !is_segment
  };

  /// Returns the entry if visible-and-fresh; nullptr otherwise (evicting
  /// stale versions, counting stale_invalidations).
  Entry* Probe(uint64_t fingerprint, uint64_t version_hash);
  void Touch(uint64_t fingerprint, Entry& entry);
  void Erase(uint64_t fingerprint, bool count_eviction);
  /// Makes room for `bytes` within the budget; false when impossible.
  bool ReserveRoom(int64_t bytes);
  int64_t Admit(uint64_t fingerprint, Entry entry);

  int64_t budget_bytes_;
  uint64_t epoch_ = 0;
  int64_t resident_bytes_ = 0;
  int64_t tick_ = 0;
  std::unordered_map<uint64_t, Entry> entries_;
  /// Recency index: tick -> fingerprint. Ticks are unique, so LRU order
  /// is a strict, deterministic total order.
  std::map<int64_t, uint64_t> recency_;
  std::function<void(int64_t)> evict_hook_;
  ResultCacheCounters counters_;
};

}  // namespace dqsched::storage

#endif  // DQSCHED_STORAGE_RESULT_CACHE_H_
