#include "storage/temp_store.h"

#include <algorithm>

#include "common/macros.h"

namespace dqsched::storage {

TempId TempStore::Create(std::string name) {
  TempRel rel;
  rel.name = std::move(name);
  temps_.push_back(std::move(rel));
  ++stats_.temps_created;
  return static_cast<TempId>(temps_.size() - 1);
}

TempStore::TempRel& TempStore::Get(TempId id) {
  DQS_CHECK_MSG(id >= 0 && static_cast<size_t>(id) < temps_.size(),
                "bad temp id %d", id);
  TempRel& rel = temps_[static_cast<size_t>(id)];
  DQS_CHECK_MSG(!rel.dropped, "access to dropped temp %d (%s)", id,
                rel.name.c_str());
  return rel;
}

const TempStore::TempRel& TempStore::Get(TempId id) const {
  return const_cast<TempStore*>(this)->Get(id);
}

SimTime TempStore::ChargeIo(TempId id, int64_t pages, bool is_write,
                            bool async_io) {
  clock_->Advance(cost_->InstrTime(cost_->instr_per_io));
  const sim::SimDisk::IoResult io =
      disk_->Transfer(clock_->now(), id, pages, is_write);
  if (!async_io) clock_->BusyUntil(io.data_done);
  return io.data_done;
}

void TempStore::Append(TempId id, const Tuple* data, int64_t n,
                       bool async_io) {
  if (n <= 0) return;
  TempRel& rel = Get(id);
  DQS_CHECK_MSG(!rel.sealed, "append to sealed temp %d (%s)", id,
                rel.name.c_str());
  rel.tuples.insert(rel.tuples.end(), data, data + n);
  stats_.tuples_written += n;
  // Flush whole chunks behind the write watermark.
  const int64_t chunk_tuples =
      static_cast<int64_t>(cost_->disk_chunk_pages) * cost_->TuplesPerPage();
  while (static_cast<int64_t>(rel.tuples.size()) - rel.flushed_tuples >=
         chunk_tuples) {
    ChargeIo(id, cost_->disk_chunk_pages, /*is_write=*/true, async_io);
    rel.flushed_tuples += chunk_tuples;
  }
}

void TempStore::Seal(TempId id) {
  TempRel& rel = Get(id);
  if (rel.sealed) return;
  const int64_t remainder =
      static_cast<int64_t>(rel.tuples.size()) - rel.flushed_tuples;
  if (remainder > 0) {
    // Asynchronous flush of the tail: sealing never blocks the CPU; any
    // subsequent read is serialized behind it by the disk's busy queue.
    ChargeIo(id, cost_->PagesForTuples(remainder), /*is_write=*/true,
             /*async_io=*/true);
    rel.flushed_tuples = static_cast<int64_t>(rel.tuples.size());
  }
  rel.sealed = true;
}

TempId TempStore::AdoptSealed(std::string name, const Tuple* data,
                              int64_t n) {
  const TempId id = Create(std::move(name));
  TempRel& rel = Get(id);
  rel.tuples.assign(data, data + n);
  rel.flushed_tuples = n;  // on disk already: adopted segments were
                           // flushed when first materialized
  rel.sealed = true;
  return id;
}

const std::vector<Tuple>& TempStore::Tuples(TempId id) const {
  const TempRel& rel = Get(id);
  DQS_CHECK_MSG(rel.sealed, "Tuples() of unsealed temp %d", id);
  return rel.tuples;
}

bool TempStore::IsSealed(TempId id) const { return Get(id).sealed; }

int64_t TempStore::Cardinality(TempId id) const {
  const TempRel& rel = Get(id);
  DQS_CHECK_MSG(rel.sealed, "cardinality of unsealed temp %d", id);
  return static_cast<int64_t>(rel.tuples.size());
}

const std::string& TempStore::Name(TempId id) const { return Get(id).name; }

int64_t TempStore::Pages(TempId id) const {
  return cost_->PagesForTuples(Cardinality(id));
}

int64_t TempStore::Read(TempId id, int64_t cursor, Tuple* out, int64_t max,
                        bool async_io, SimTime* ready) {
  TempRel& rel = Get(id);
  DQS_CHECK_MSG(rel.sealed, "read of unsealed temp %d (%s)", id,
                rel.name.c_str());
  const int64_t card = static_cast<int64_t>(rel.tuples.size());
  DQS_CHECK_MSG(cursor >= 0 && cursor <= card, "bad cursor %lld",
                static_cast<long long>(cursor));
  const int64_t n = std::min(max, card - cursor);
  if (n <= 0) {
    *ready = clock_->now();
    return 0;
  }
  std::copy_n(rel.tuples.begin() + cursor, n, out);
  stats_.tuples_read += n;

  // Whole temp fits the I/O cache: it never left memory, reads are free.
  if (cost_->PagesForTuples(card) <= cost_->io_cache_pages) {
    ++stats_.cache_served_reads;
    *ready = clock_->now();
    return n;
  }

  // Fetch chunks covering [fetched, cursor + n).
  SimTime latest = rel.last_read_ready;
  const int64_t chunk_tuples =
      static_cast<int64_t>(cost_->disk_chunk_pages) * cost_->TuplesPerPage();
  while (rel.fetched_tuples < cursor + n) {
    const int64_t take = std::min(chunk_tuples, card - rel.fetched_tuples);
    latest = ChargeIo(id, cost_->PagesForTuples(take), /*is_write=*/false,
                      async_io);
    rel.fetched_tuples += take;
  }
  rel.last_read_ready = latest;
  *ready = std::max(latest, clock_->now());
  return n;
}

bool TempStore::FitsIoCache(TempId id) const {
  return cost_->PagesForTuples(Cardinality(id)) <= cost_->io_cache_pages;
}

SimTime TempStore::IssueRead(TempId id, int64_t tuples) {
  TempRel& rel = Get(id);
  DQS_CHECK_MSG(rel.sealed, "IssueRead of unsealed temp %d (%s)", id,
                rel.name.c_str());
  DQS_CHECK_MSG(tuples > 0, "IssueRead of %lld tuples",
                static_cast<long long>(tuples));
  return ChargeIo(id, cost_->PagesForTuples(tuples), /*is_write=*/false,
                  /*async_io=*/true);
}

void TempStore::Copy(TempId id, int64_t cursor, Tuple* out, int64_t n) {
  TempRel& rel = Get(id);
  DQS_CHECK_MSG(rel.sealed, "Copy of unsealed temp %d", id);
  DQS_CHECK_MSG(cursor >= 0 &&
                    cursor + n <= static_cast<int64_t>(rel.tuples.size()),
                "Copy out of range");
  std::copy_n(rel.tuples.begin() + cursor, n, out);
  stats_.tuples_read += n;
}

void TempStore::Drop(TempId id) {
  TempRel& rel = Get(id);
  rel.tuples.clear();
  rel.tuples.shrink_to_fit();
  rel.dropped = true;
}

bool TempStore::IsDropped(TempId id) const {
  // Deliberately not through Get(): this is the one accessor that must be
  // callable on a dropped temp — cancellation paths and the invariant
  // auditor use it to decide whether the temp may be touched at all.
  DQS_CHECK_MSG(id >= 0 && static_cast<size_t>(id) < temps_.size(),
                "bad temp id %d", id);
  return temps_[static_cast<size_t>(id)].dropped;
}

}  // namespace dqsched::storage
