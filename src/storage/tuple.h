// The 40-byte tuple of the paper's simulation (Table 1), made concrete.
//
// Unlike the paper's prototype — which simulated operators without data —
// dqsched moves real tuples through real hash joins so that end-to-end
// answer correctness is testable. A tuple carries four join-key attributes
// and a provenance fingerprint ("rowid") that composes through joins,
// giving every strategy an order-independent result checksum to agree on.

#ifndef DQSCHED_STORAGE_TUPLE_H_
#define DQSCHED_STORAGE_TUPLE_H_

#include <cstdint>

namespace dqsched::storage {

/// Number of join-key attributes per tuple.
inline constexpr int kTupleKeyFields = 4;

/// A 40-byte record: 4 x 8-byte keys + 8-byte provenance fingerprint.
struct Tuple {
  int64_t keys[kTupleKeyFields] = {0, 0, 0, 0};
  uint64_t rowid = 0;
};
static_assert(sizeof(Tuple) == 40, "Tuple must match Table 1's tuple size");

/// 64-bit finalizer (splitmix64-style). Used for filter predicates,
/// checksums, and rowid composition.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Deterministic, order-sensitive combination of two provenance ids; the
/// result of joining build tuple `b` with probe tuple `p` carries
/// CombineRowid(b.rowid, p.rowid). All strategies perform the same logical
/// joins, so result multisets are comparable via checksums.
inline uint64_t CombineRowid(uint64_t build, uint64_t probe) {
  return Mix64(build * 0x9e3779b97f4a7c15ULL + probe + 0x165667b19e3779f9ULL);
}

/// Deterministic pseudo-predicate: true with probability `selectivity` for
/// a given (rowid, filter id) pair, identical across strategies and the
/// reference executor.
inline bool FilterPasses(uint64_t rowid, int32_t filter_id,
                         double selectivity) {
  const uint64_t h = Mix64(rowid ^ (0x51ed2701d3c0ffeeULL +
                                    static_cast<uint64_t>(filter_id) *
                                        0x2545f4914f6cdd1dULL));
  // Compare against selectivity scaled to the full 64-bit range.
  return static_cast<double>(h) <
         selectivity * 18446744073709551616.0 /* 2^64 */;
}

/// Order-independent multiset checksum accumulator for result verification.
class ResultChecksum {
 public:
  /// Adds one tuple to the multiset.
  void Add(const Tuple& t) {
    uint64_t h = Mix64(t.rowid + 0x9e3779b97f4a7c15ULL);
    for (int64_t k : t.keys) h += Mix64(static_cast<uint64_t>(k) ^ h);
    sum_ += h;
    ++count_;
  }

  uint64_t value() const { return sum_; }
  int64_t count() const { return count_; }

  /// Replaces the accumulated state with a previously computed digest
  /// (a result-cache hit restoring the exact multiset summary it stored).
  void Adopt(uint64_t sum, int64_t count) {
    sum_ = sum;
    count_ = count;
  }

  friend bool operator==(const ResultChecksum& a, const ResultChecksum& b) {
    return a.sum_ == b.sum_ && a.count_ == b.count_;
  }

 private:
  uint64_t sum_ = 0;  // commutative: independent of tuple arrival order
  int64_t count_ = 0;
};

}  // namespace dqsched::storage

#endif  // DQSCHED_STORAGE_TUPLE_H_
