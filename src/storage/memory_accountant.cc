#include "storage/memory_accountant.h"

#include "common/macros.h"

namespace dqsched::storage {

Status MemoryAccountant::Grant(int64_t bytes) {
  DQS_CHECK_MSG(bytes >= 0, "negative grant %lld",
                static_cast<long long>(bytes));
  if (granted_ + bytes > budget_) {
    return Status::ResourceExhausted("memory grant of " +
                                     std::to_string(bytes) +
                                     " bytes exceeds budget (granted " +
                                     std::to_string(granted_) + " of " +
                                     std::to_string(budget_) + ")");
  }
  granted_ += bytes;
  if (granted_ > peak_) peak_ = granted_;
  return Status::Ok();
}

void MemoryAccountant::Release(int64_t bytes) {
  DQS_CHECK_MSG(bytes >= 0 && bytes <= granted_,
                "release %lld with granted %lld",
                static_cast<long long>(bytes),
                static_cast<long long>(granted_));
  granted_ -= bytes;
}

}  // namespace dqsched::storage
