#include "storage/memory_accountant.h"

#include "common/macros.h"

namespace dqsched::storage {

Status MemoryAccountant::Grant(int64_t bytes) {
  DQS_CHECK_MSG(bytes >= 0, "negative grant %lld",
                static_cast<long long>(bytes));
  if (granted_ + bytes > budget_) {
    return Status::ResourceExhausted("memory grant of " +
                                     std::to_string(bytes) +
                                     " bytes exceeds budget (granted " +
                                     std::to_string(granted_) + " of " +
                                     std::to_string(budget_) + ")");
  }
  granted_ += bytes;
  if (granted_ > peak_) peak_ = granted_;
  if (granted_ + reclaimable_ > budget_ && reclaimer_) {
    // The firm grant displaces cached bytes: ask the cache to evict the
    // deficit. The reclaimer calls ReleaseReclaimable per entry freed.
    reclaimer_(granted_ + reclaimable_ - budget_);
  }
  DQS_CHECK_MSG(granted_ + reclaimable_ <= budget_,
                "reclaimer left %lld reclaimable with %lld granted of %lld",
                static_cast<long long>(reclaimable_),
                static_cast<long long>(granted_),
                static_cast<long long>(budget_));
  return Status::Ok();
}

void MemoryAccountant::Release(int64_t bytes) {
  DQS_CHECK_MSG(bytes >= 0 && bytes <= granted_,
                "release %lld with granted %lld",
                static_cast<long long>(bytes),
                static_cast<long long>(granted_));
  granted_ -= bytes;
}

void MemoryAccountant::GrantReclaimable(int64_t bytes) {
  DQS_CHECK_MSG(bytes >= 0 && granted_ + reclaimable_ + bytes <= budget_,
                "reclaimable grant %lld exceeds headroom %lld",
                static_cast<long long>(bytes),
                static_cast<long long>(budget_ - granted_ - reclaimable_));
  reclaimable_ += bytes;
}

void MemoryAccountant::ReleaseReclaimable(int64_t bytes) {
  DQS_CHECK_MSG(bytes >= 0 && bytes <= reclaimable_,
                "reclaimable release %lld with reclaimable %lld",
                static_cast<long long>(bytes),
                static_cast<long long>(reclaimable_));
  reclaimable_ -= bytes;
}

}  // namespace dqsched::storage
